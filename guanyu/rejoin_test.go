package guanyu_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/guanyu"
)

// elasticOpts is the quorum-slack deployment the rejoin cycle needs: all
// honest with f=0 declared, so q=3 of 6 servers rides out one dead peer.
func elasticOpts(t *testing.T, extra ...guanyu.Option) []guanyu.Option {
	opts := []guanyu.Option{
		guanyu.WithWorkload(guanyu.BlobWorkload(600, 7)),
		guanyu.WithServers(6, 0),
		guanyu.WithWorkers(6, 0),
		guanyu.WithQuorums(3, 3),
		guanyu.WithRule("coordinate-median"),
		guanyu.WithParamRule("coordinate-median"),
		guanyu.WithSteps(30),
		guanyu.WithBatch(8),
		guanyu.WithLR(guanyu.InverseTimeLR(0.2, 100)),
		guanyu.WithSeed(11),
		guanyu.WithRuntime(guanyu.Live),
		guanyu.WithTimeout(time.Minute),
		// Keep the in-process run slow enough for the kill watcher to fire
		// mid-run (see the cluster-level churn test).
		guanyu.WithDelay(func(string, string) time.Duration { return 2 * time.Millisecond }),
		guanyu.WithCheckpointDir(t.TempDir(), 3),
	}
	return append(opts, extra...)
}

// TestNewValidatesRejoin covers the checkpoint/rejoin option surface: every
// illegal combination must be rejected at New, not at the first step.
func TestNewValidatesRejoin(t *testing.T) {
	base := []guanyu.Option{
		guanyu.WithWorkload(guanyu.BlobWorkload(200, 1)),
		guanyu.WithServers(6, 0),
		guanyu.WithWorkers(6, 0),
		guanyu.WithQuorums(3, 3),
		guanyu.WithSteps(30),
		guanyu.WithRuntime(guanyu.Live),
	}
	with := func(extra ...guanyu.Option) []guanyu.Option {
		return append(append([]guanyu.Option{}, base...), extra...)
	}
	dir := t.TempDir()
	cases := map[string][]guanyu.Option{
		"checkpoint on sim": {
			guanyu.WithWorkload(guanyu.BlobWorkload(200, 1)),
			guanyu.WithCheckpointDir(dir, 3),
		},
		"rejoin without checkpoint": with(guanyu.WithRejoin(0, 8)),
		"rejoin over tcp": with(guanyu.WithCheckpointDir(dir, 3),
			guanyu.WithRejoin(0, 8), guanyu.WithTCPTransport()),
		"rejoin with sharding": with(guanyu.WithCheckpointDir(dir, 3),
			guanyu.WithRejoin(0, 8), guanyu.WithShardSize(16)),
		"rejoin server out of range": with(guanyu.WithCheckpointDir(dir, 3),
			guanyu.WithRejoin(6, 8)),
		"rejoin byzantine victim": with(guanyu.WithCheckpointDir(dir, 3),
			guanyu.WithRejoin(0, 8), guanyu.WithServers(6, 1),
			guanyu.WithServerAttack(0, guanyu.Zero{})),
		"kill past the run": with(guanyu.WithCheckpointDir(dir, 3),
			guanyu.WithRejoin(0, 30)),
		"kill before first checkpoint": with(guanyu.WithCheckpointDir(dir, 9),
			guanyu.WithRejoin(0, 5)),
	}
	for name, opts := range cases {
		if _, err := guanyu.New(opts...); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := guanyu.New(guanyu.WithCheckpointDir("", 3)); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty checkpoint dir: got %v", err)
	}
	if _, err := guanyu.New(guanyu.WithCheckpointDir(dir, 0)); err == nil || !strings.Contains(err.Error(), "cadence") {
		t.Errorf("zero cadence: got %v", err)
	}
}

// TestLiveRejoinThroughBuilder drives the whole elastic path through the
// public façade: WithCheckpointDir + WithRejoin kill an honest server
// mid-run and bring it back through checkpoint restore + median catch-up,
// and the deployment still converges.
func TestLiveRejoinThroughBuilder(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 12-node live deployment with a restart")
	}
	d, err := guanyu.New(elasticOpts(t, guanyu.WithRejoin(0, 8))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ChurnRestarted {
		t.Fatal("rejoin cycle never fired: the victim outran the kill")
	}
	if len(res.ServerParams) != 6 {
		t.Fatalf("got %d honest finals, want 6 (did the churned server finish?)", len(res.ServerParams))
	}
	if res.FinalAccuracy < 0.85 {
		t.Fatalf("deployment with rejoin failed to converge: accuracy %.3f", res.FinalAccuracy)
	}
}

// TestRunNodeValidatesCheckpointConfig covers the per-process façade's
// checkpoint surface without booting any sockets: every rejection happens
// before the node listens.
func TestRunNodeValidatesCheckpointConfig(t *testing.T) {
	ctx := context.Background()
	base := guanyu.NodeConfig{
		Role: "worker", ID: "wrk0",
		Peers: map[string]string{"wrk0": "127.0.0.1:1"},
		Steps: 1, Batch: 1,
	}
	ckpt := &guanyu.CheckpointSpec{Dir: t.TempDir(), Every: 2}

	cfg := base
	cfg.Checkpoint = ckpt
	if _, err := guanyu.RunNode(ctx, cfg); err == nil || !strings.Contains(err.Error(), "server-side") {
		t.Errorf("worker checkpoint: got %v", err)
	}

	cfg = base
	cfg.Role, cfg.ID = "server", "ps0"
	cfg.Peers = map[string]string{"ps0": "127.0.0.1:1"}
	cfg.Rejoin = true
	if _, err := guanyu.RunNode(ctx, cfg); err == nil || !strings.Contains(err.Error(), "requires Checkpoint") {
		t.Errorf("rejoin without checkpoint: got %v", err)
	}

	cfg.Checkpoint = ckpt
	cfg.ShardSize = 16
	if _, err := guanyu.RunNode(ctx, cfg); err == nil || !strings.Contains(err.Error(), "whole-vector") {
		t.Errorf("rejoin with sharding: got %v", err)
	}

	cfg.ShardSize = 0
	cfg.Attack = guanyu.Zero{}
	if _, err := guanyu.RunNode(ctx, cfg); err == nil || !strings.Contains(err.Error(), "honest") {
		t.Errorf("byzantine rejoin: got %v", err)
	}

	cfg.Attack = nil
	cfg.Checkpoint = &guanyu.CheckpointSpec{Dir: "", Every: 2}
	if _, err := guanyu.RunNode(ctx, cfg); err == nil || !strings.Contains(err.Error(), "directory") {
		t.Errorf("empty checkpoint dir: got %v", err)
	}
}
