package guanyu

import (
	"fmt"
	"time"
)

// Option configures a Deployment under construction. Options report
// malformed arguments immediately; cross-field validation happens in New.
type Option func(*Deployment) error

// WithWorkload sets the model template and datasets. Required.
func WithWorkload(w Workload) Option {
	return func(d *Deployment) error {
		d.workload = w
		return nil
	}
}

// WithServers sets the parameter-server population n and the declared
// Byzantine count f. The theory requires n ≥ 3f+3; the paper's deployment
// is (6, 1).
func WithServers(n, f int) Option {
	return func(d *Deployment) error {
		d.numServers, d.fServers = n, f
		d.serversSet = true
		return nil
	}
}

// WithWorkers sets the worker population n̄ and the declared Byzantine
// count f̄. The theory requires n̄ ≥ 3f̄+3; the paper's deployment is (18, 5).
func WithWorkers(n, f int) Option {
	return func(d *Deployment) error {
		d.numWorkers, d.fWorkers = n, f
		return nil
	}
}

// WithQuorums overrides the quorums q (parameter vectors) and qBar
// (gradients). Zero keeps the legal minimum 2f+3. Larger quorums wait for
// more arrivals per step — slower but lower-variance.
func WithQuorums(q, qBar int) Option {
	return func(d *Deployment) error {
		d.qServers, d.qWorkers = q, qBar
		return nil
	}
}

// WithRule selects the gradient aggregation rule by registry name (the
// paper's F; default "multi-krum", or "mean" in vanilla mode). See
// guanyu/gar for the names.
func WithRule(name string) Option {
	return func(d *Deployment) error {
		if name == "" {
			return fmt.Errorf("WithRule: empty rule name")
		}
		d.ruleName = name
		return nil
	}
}

// WithParamRule selects the parameter aggregation rule by registry name
// (the paper's M; default "coordinate-median").
func WithParamRule(name string) Option {
	return func(d *Deployment) error {
		if name == "" {
			return fmt.Errorf("WithParamRule: empty rule name")
		}
		d.paramRuleName = name
		return nil
	}
}

// WithAttackedWorkers makes workers 0..count-1 actually Byzantine, each
// running the behaviour returned by mk (called once per node so stateful
// attacks don't share generators).
func WithAttackedWorkers(count int, mk func(i int) Attack) Option {
	return func(d *Deployment) error {
		if mk == nil {
			return fmt.Errorf("WithAttackedWorkers: nil attack factory")
		}
		if d.workerAttacks == nil {
			d.workerAttacks = make(map[int]Attack, count)
		}
		for i := 0; i < count; i++ {
			d.workerAttacks[i] = mk(i)
		}
		return nil
	}
}

// WithAttackedServers makes servers 0..count-1 actually Byzantine.
func WithAttackedServers(count int, mk func(i int) Attack) Option {
	return func(d *Deployment) error {
		if mk == nil {
			return fmt.Errorf("WithAttackedServers: nil attack factory")
		}
		if d.serverAttacks == nil {
			d.serverAttacks = make(map[int]Attack, count)
		}
		for i := 0; i < count; i++ {
			d.serverAttacks[i] = mk(i)
		}
		return nil
	}
}

// WithWorkerAttack makes one specific worker Byzantine.
func WithWorkerAttack(index int, a Attack) Option {
	return func(d *Deployment) error {
		if a == nil {
			return fmt.Errorf("WithWorkerAttack: nil attack")
		}
		if d.workerAttacks == nil {
			d.workerAttacks = make(map[int]Attack, 1)
		}
		d.workerAttacks[index] = a
		return nil
	}
}

// WithServerAttack makes one specific server Byzantine.
func WithServerAttack(index int, a Attack) Option {
	return func(d *Deployment) error {
		if a == nil {
			return fmt.Errorf("WithServerAttack: nil attack")
		}
		if d.serverAttacks == nil {
			d.serverAttacks = make(map[int]Attack, 1)
		}
		d.serverAttacks[index] = a
		return nil
	}
}

// WithSteps sets the number of learning steps.
func WithSteps(n int) Option {
	return func(d *Deployment) error {
		d.steps = n
		return nil
	}
}

// WithBatch sets the mini-batch size.
func WithBatch(n int) Option {
	return func(d *Deployment) error {
		d.batch = n
		return nil
	}
}

// WithLR installs a learning-rate schedule (default: InverseTimeLR per
// runtime; see Schedule).
func WithLR(s Schedule) Option {
	return func(d *Deployment) error {
		d.lr = s
		return nil
	}
}

// WithMomentum enables heavy-ball momentum β on server updates (an
// extension beyond the paper's plain SGD).
func WithMomentum(beta float64) Option {
	return func(d *Deployment) error {
		if beta < 0 || beta >= 1 {
			return fmt.Errorf("WithMomentum: β must be in [0, 1), got %v", beta)
		}
		d.momentum = beta
		return nil
	}
}

// WithParallelism pins the worker count of the shared kernel pool for this
// deployment's runs: Run applies it for the duration and restores the
// previous process-wide setting afterwards (see SetParallelism). n ≤ 0
// selects the default (runtime.NumCPU()); n = 1 reproduces the serial
// numerics exactly — parallelism never changes results, only wall-clock.
func WithParallelism(n int) Option {
	return func(d *Deployment) error {
		d.parallelism = n
		d.parallelismSet = true
		return nil
	}
}

// WithSeed seeds every generator in the run; equal seeds reproduce Sim runs
// bit-for-bit.
func WithSeed(seed uint64) Option {
	return func(d *Deployment) error {
		d.seed = seed
		return nil
	}
}

// WithVanilla selects the unreplicated baseline: one parameter server, mean
// aggregation, no Byzantine filtering ("vanilla GuanYu" in the paper).
// Simulation-only.
func WithVanilla() Option {
	return func(d *Deployment) error {
		d.vanilla = true
		return nil
	}
}

// WithOptimizedRuntime models the vanilla TensorFlow distributed runtime in
// the simulator's cost model: serialization overhead is absorbed by the
// framework. Combine with WithVanilla for the paper's "vanilla TF"
// baseline.
func WithOptimizedRuntime() Option {
	return func(d *Deployment) error {
		d.optimized = true
		return nil
	}
}

// WithRuntime selects the runner executing the deployment: Sim (default)
// or Live.
func WithRuntime(r Runner) Option {
	return func(d *Deployment) error {
		if r == nil {
			return fmt.Errorf("WithRuntime: nil runner")
		}
		d.runtime = r
		return nil
	}
}

// WithTCPTransport makes the Live runtime exchange messages over real
// loopback TCP sockets (binary-framed, hello-authenticated) instead of
// in-process channels.
func WithTCPTransport() Option {
	return func(d *Deployment) error {
		d.tcp = true
		return nil
	}
}

// WithShardSize streams every vector the Live runtime ships as chunk
// frames of n coordinates, aggregated incrementally as each shard's quorum
// fills (coordinate-wise rules shard-by-shard; multi-krum via a streaming
// two-pass distance fold). Results are bit-identical to whole-vector
// framing at any shard size and parallelism, and aggregation overlaps the
// network receive (see `guanyu-bench -exp memory`). Receive buffering
// drops from O(n·d) to O(q·shard) for coordinate-wise rules
// (coordinate-median, trimmed-mean, mean — each shard is aggregated and
// released as it completes); multi-krum's streamer must retain its q
// pinned inputs until the post-selection mean, so its resident floor is
// O(q·d) — still the n→q buffering drop plus the overlapped O(q²·d)
// distance pass, but not the coordinate-wise bound. n ≤ 0 or ≥ the model
// dimension keeps whole-vector framing. Live-only: the simulator prices
// the wire in its cost model rather than framing real traffic.
func WithShardSize(n int) Option {
	return func(d *Deployment) error {
		if n < 0 {
			n = 0
		}
		d.shardSize = n
		return nil
	}
}

// WithCompression selects the wire compression scheme for honest traffic by
// spec string: "none" (default), "float32", "delta" (or "delta:key=N" for
// the keyframe period), or "topk:k=F" (top-k sparsification keeping fraction
// F of coordinates, with error-feedback accumulation at the sender). Applies
// to both runtimes: the Live transports compress real frames (negotiated
// per connection on TCP), and the simulator round-trips every honest payload
// through the identical codec so its convergence curves reflect the lossy
// wire — and its cost model charges the smaller frames. Byzantine traffic is
// never compressed (the adversary's covert network is ideal by assumption).
func WithCompression(spec string) Option {
	return func(d *Deployment) error {
		cfg, err := ParseCompression(spec)
		if err != nil {
			return err
		}
		d.compression = cfg
		return nil
	}
}

// WithCheckpointDir makes every honest server of the Live runtime persist
// its protocol state — step counter, parameters, collector horizon,
// momentum — into dir every `every` steps, atomically (write-then-rename,
// one file per server ID; see the cluster checkpoint codec). The snapshots
// are what WithRejoin and NodeConfig.Rejoin restart from.
func WithCheckpointDir(dir string, every int) Option {
	return func(d *Deployment) error {
		if dir == "" {
			return fmt.Errorf("WithCheckpointDir: empty directory")
		}
		if every < 1 {
			return fmt.Errorf("WithCheckpointDir: cadence must be ≥ 1 step, got %d", every)
		}
		d.checkpointDir, d.checkpointEvery = dir, every
		return nil
	}
}

// WithRejoin arms the Live in-process runtime's crash-recovery cycle: the
// given honest server is killed mid-protocol once it completes killAtStep,
// then restarts under the same ID from its newest WithCheckpointDir
// snapshot and catches up by adopting the coordinate-wise median of a live
// peer quorum (elastic rejoin — the contraction argument's recovery path).
// The rest of the deployment rides the outage on its quorum slack, so
// declare quorums with room (e.g. f=0 with n=6 leaves q=3 of 5 live).
// Result.ChurnRestarted reports whether the kill actually fired.
func WithRejoin(server, killAtStep int) Option {
	return func(d *Deployment) error {
		if server < 0 {
			return fmt.Errorf("WithRejoin: negative server index %d", server)
		}
		if killAtStep <= 0 {
			return fmt.Errorf("WithRejoin: kill step must be positive, got %d", killAtStep)
		}
		d.rejoinServer, d.rejoinKill, d.rejoinSet = server, killAtStep, true
		return nil
	}
}

// WithTimeout bounds each quorum wait in the Live runtime (default 30 s;
// negative waits forever — the faithful asynchronous setting).
func WithTimeout(t time.Duration) Option {
	return func(d *Deployment) error {
		d.timeout = t
		return nil
	}
}

// WithMetricsAddr starts a /metrics + /healthz HTTP listener on addr for
// the duration of the Live run: GET /metrics returns every node's live
// hardening counters in Prometheus text format (guanyu_*_total families,
// plus guanyu_node_info carrying each TCP node's listen address), and GET
// /healthz reports 200 while every node keeps making quorum progress, 503
// once one stalls. Use ":0" (or "127.0.0.1:0") to bind an ephemeral port;
// the optional onListen callback receives the bound address once the
// listener is up, before the first node starts.
func WithMetricsAddr(addr string, onListen ...func(addr string)) Option {
	return func(d *Deployment) error {
		if addr == "" {
			return fmt.Errorf("guanyu: empty metrics address")
		}
		d.metricsAddr = addr
		if len(onListen) > 0 {
			d.onMetricsListen = onListen[0]
		}
		return nil
	}
}

// WithDelay injects per-message delivery delays into the Live in-process
// network (see NewLatencyModel for a realistic generator).
func WithDelay(f DelayFunc) Option {
	return func(d *Deployment) error {
		d.delay = f
		return nil
	}
}

// WithSuspicion shares an accountability accumulator across the Live
// runtime's honest servers: every gradient exclusion by a selective rule
// (e.g. multi-krum) is recorded per sender, surfacing the actually
// Byzantine workers (see Suspicion.Ranking).
func WithSuspicion(s *Suspicion) Option {
	return func(d *Deployment) error {
		d.suspicion = s
		return nil
	}
}

// WithEval controls accuracy sampling in the simulator: every `every`
// updates, on at most `examples` test examples (0 examples = 256).
func WithEval(every, examples int) Option {
	return func(d *Deployment) error {
		if every <= 0 {
			return fmt.Errorf("WithEval: period must be positive, got %d", every)
		}
		d.evalEvery = every
		d.evalExamples = examples
		return nil
	}
}

// WithAlignmentProbe enables the paper's Table-2 probe in the simulator:
// every `every` updates from update `after` on, record the cosine alignment
// between honest servers' parameter vectors.
func WithAlignmentProbe(every, after int) Option {
	return func(d *Deployment) error {
		if every <= 0 {
			return fmt.Errorf("WithAlignmentProbe: period must be positive, got %d", every)
		}
		d.alignEvery = every
		d.alignAfter = after
		return nil
	}
}

// WithoutServerExchange disables protocol phase 3 (the inter-server
// contraction round) — the ablation showing why the round is load-bearing.
func WithoutServerExchange() Option {
	return func(d *Deployment) error {
		d.noExchange = true
		return nil
	}
}
