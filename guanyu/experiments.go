package guanyu

import (
	"io"

	"repro/internal/experiments"
)

// The experiment suite regenerating the paper's evaluation — every table
// and figure of Section 5 plus the design-choice ablations — re-exported so
// benchmark harnesses and the guanyu-bench command drive it through the
// public façade.

// ExperimentScale sizes one experiment run (steps, batch, dataset size,
// seed).
type ExperimentScale = experiments.Scale

// QuickScale is the CI-sized scale; FullScale is closer to the paper's run
// lengths.
var (
	QuickScale = experiments.Quick
	FullScale  = experiments.Full
)

// ExperimentIDs returns the experiment identifiers in presentation order.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment executes one experiment at the given scale and writes its
// formatted tables to out.
func RunExperiment(id string, s ExperimentScale, out io.Writer) error {
	return experiments.Run(id, s, out)
}

// Typed experiment entry points, for harnesses that compute metrics from
// the results instead of printing tables.

// Fig3Result holds the five systems' convergence curves at two batch sizes.
type Fig3Result = experiments.Fig3Result

// Fig3 regenerates Figure 3 (convergence of the five systems).
func Fig3(s ExperimentScale) (*Fig3Result, error) { return experiments.Fig3(s) }

// Fig4Result holds the under-attack convergence curves.
type Fig4Result = experiments.Fig4Result

// Fig4 regenerates Figure 4 (Byzantine impact on vanilla vs GuanYu).
func Fig4(s ExperimentScale) (*Fig4Result, error) { return experiments.Fig4(s) }

// Table1 renders the Table-1 model architecture summary.
func Table1() string { return experiments.Table1() }

// Table2 regenerates the Table-2 alignment probes.
func Table2(s ExperimentScale) ([]AlignmentRecord, error) { return experiments.Table2(s) }

// OverheadResult holds the Section-5.3 overhead breakdown.
type OverheadResult = experiments.OverheadResult

// Overhead regenerates the Section-5.3 overhead measurements.
func Overhead(s ExperimentScale) (*OverheadResult, error) { return experiments.Overhead(s) }

// ContractionResult holds the phase-3 ablation drift measurements.
type ContractionResult = experiments.ContractionResult

// Contraction runs the phase-3 (server exchange) ablation.
func Contraction(s ExperimentScale) (*ContractionResult, error) { return experiments.Contraction(s) }

// QuorumSweepRow is one point of the declared-f̄ trade-off sweep.
type QuorumSweepRow = experiments.QuorumSweepRow

// QuorumSweep sweeps the declared Byzantine count f̄.
func QuorumSweep(s ExperimentScale) ([]QuorumSweepRow, error) { return experiments.QuorumSweep(s) }

// GARAblationRow compares server-side aggregation rules under attack.
type GARAblationRow = experiments.GARAblationRow

// GARAblation swaps the server-side rule while keeping 5 Byzantine workers.
func GARAblation(s ExperimentScale) ([]GARAblationRow, error) { return experiments.GARAblation(s) }

// AsyncSweepRow is one point of the latency-tail sweep.
type AsyncSweepRow = experiments.AsyncSweepRow

// AsyncSweep varies the network's latency tail weight.
func AsyncSweep(s ExperimentScale) ([]AsyncSweepRow, error) { return experiments.AsyncSweep(s) }

// NonIIDRow is one point of the federated (label-sharded) sweep.
type NonIIDRow = experiments.NonIIDRow

// NonIID probes behaviour outside the paper's IID assumption.
func NonIID(s ExperimentScale) ([]NonIIDRow, error) { return experiments.NonIID(s) }

// MatrixSpec selects the scenario-matrix grid axes: attack specs, gradient
// GAR names, and fault-profile specs (registry syntax, see AttackByName and
// FaultsByName).
type MatrixSpec = experiments.MatrixSpec

// MatrixResult is the scenario-matrix grid with per-cell accuracy or
// breakdown class.
type MatrixResult = experiments.MatrixResult

// MatrixCell is one scenario-matrix grid point.
type MatrixCell = experiments.MatrixCell

// DefaultMatrixSpec is the standard attack × GAR × fault grid.
func DefaultMatrixSpec() MatrixSpec { return experiments.DefaultMatrixSpec() }

// SmokeMatrixSpec is the smallest grid cell, sized for CI smoke jobs.
func SmokeMatrixSpec() MatrixSpec { return experiments.SmokeMatrixSpec() }

// Matrix runs the scenario-matrix experiment: every (attack, rule, fault,
// churn, compression) cell as an independent deterministic simulation, with
// per-cell breakdowns captured in the result instead of aborting the grid.
// Results are bit-identical at any parallelism and across reruns with the
// same seed.
func Matrix(s ExperimentScale, spec MatrixSpec) (*MatrixResult, error) {
	return experiments.Matrix(s, spec)
}

// ThroughputRow is one (cluster shape, payload dimension) wire measurement.
type ThroughputRow = experiments.ThroughputRow

// Throughput measures the wire codecs (binary frames vs the retired gob
// framing) on protocol-sized payloads and derives the serialization-bound
// steps/sec ceiling for representative cluster shapes. Timing-based: the
// absolute numbers are machine-dependent, the gob-vs-binary comparison is
// the point.
func Throughput(s ExperimentScale) ([]ThroughputRow, error) { return experiments.Throughput(s) }

// BandwidthRow is one (dimension, scheme) wire-volume measurement: exact
// steady-state bytes per vector under each compression scheme vs raw
// framing, plus advisory codec rates.
type BandwidthRow = experiments.BandwidthRow

// BandwidthCell is one (scheme, rule, attack) convergence outcome under
// the lossy wire.
type BandwidthCell = experiments.BandwidthCell

// BandwidthResult holds the bandwidth experiment's wire rows and
// Fig-4-style convergence grid.
type BandwidthResult = experiments.BandwidthResult

// Bandwidth measures each compression scheme's wire volume and codec rate
// at the harness and paper dimensions, then runs the convergence grid.
// Byte counts are exact and machine-independent; rates are advisory.
func Bandwidth(s ExperimentScale) (*BandwidthResult, error) { return experiments.Bandwidth(s) }

// WireRows measures only the bandwidth experiment's wire rows (no
// convergence grid) — the fast path behind guanyu-bench's -wire-json and
// -wire-check modes.
func WireRows(s ExperimentScale) ([]BandwidthRow, error) { return experiments.WireRows(s) }

// WireBenchJSON serialises bandwidth wire rows for committing as
// BENCH_wire.json (byte counts exact, rates advisory).
func WireBenchJSON(rows []BandwidthRow) ([]byte, error) { return experiments.WireBenchJSON(rows) }

// CheckWireBench verifies freshly measured wire rows against a committed
// BENCH_wire.json: exact byte counts must match; rates are ignored.
func CheckWireBench(committed []byte, rows []BandwidthRow) error {
	return experiments.CheckWireBench(committed, rows)
}

// MemoryRow is one dimension's whole-vs-sharded collector measurement.
type MemoryRow = experiments.MemoryRow

// Memory replays one deterministic arrival schedule through the
// whole-vector Collector and the chunk-streaming ShardCollector and
// reports peak buffered bytes, the receive→aggregate overlap, and a
// bit-identity check of the two aggregates. shardSize overrides the
// per-dimension default when positive (the -shard flag on guanyu-bench).
func Memory(s ExperimentScale, shardSize int) ([]MemoryRow, error) {
	return experiments.Memory(s, shardSize)
}

// FormatMemory renders the peak-memory comparison table.
func FormatMemory(rows []MemoryRow) string { return experiments.FormatMemory(rows) }

// ScaleRow is one population point of the scale sweep.
type ScaleRow = experiments.ScaleRow

// ScaleSweepResult is the full scale sweep plus its peak-heap verdict.
type ScaleSweepResult = experiments.ScaleSweepResult

// ScaleSweep runs the node-count sweep enabled by the bounded-mailbox actor
// runtime: the deterministic simulator at populations beyond 200 nodes and
// the live goroutine-per-node runtime at 100, reporting steps/sec and the
// sampled peak heap against a derived O(n·cap·frame) budget. smoke selects
// the CI sizing (64 sim / 24 live); the zero mbox arms the default
// drop-oldest bound on the live rows.
func ScaleSweep(s ExperimentScale, smoke bool, mbox MailboxConfig) (*ScaleSweepResult, error) {
	return experiments.ScaleSweep(s, smoke, mbox)
}

// ScaleBenchJSON serialises scale sweep rows for committing as
// BENCH_scale.json (timings machine-dependent, informational baseline).
func ScaleBenchJSON(r *ScaleSweepResult) ([]byte, error) { return experiments.ScaleBenchJSON(r) }

// SoakResult is one soak run's measurements and verdicts.
type SoakResult = experiments.SoakResult

// SoakOptions selects a soak run's mode: CI sizing, the /metrics listener,
// and the optional kill/restart churn cycle.
type SoakOptions = experiments.SoakOptions

// Soak runs the long-haul live deployment — an equivocating server, the
// "flaky" fault profile on every link, bounded drop-oldest mailboxes — while
// self-scraping its live metrics registry and checking counter
// monotonicity, full liveness, and the scale experiment's peak-heap budget.
// opts.Smoke selects the CI sizing. When opts.MetricsAddr is non-empty a
// /metrics + /healthz listener serves the run's registry and stays up
// opts.Linger after the run finishes, so external scrapers can read the
// final counters. opts.Churn kills one honest server mid-run and restarts
// it from its newest checkpoint with median rejoin, and the verdict then
// also requires the restart to have actually happened.
func Soak(s ExperimentScale, opts SoakOptions) (*SoakResult, error) {
	return experiments.Soak(s, opts)
}
