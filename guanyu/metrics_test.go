package guanyu_test

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/guanyu"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// TestWithMetricsAddrValidation: the ops surface scrapes a wall-clock run,
// so it is Live-only, and an empty address is rejected at build time.
func TestWithMetricsAddrValidation(t *testing.T) {
	if _, err := guanyu.New(quickOpts(
		guanyu.WithMetricsAddr("127.0.0.1:0"))...); err == nil ||
		!strings.Contains(err.Error(), "Live") {
		t.Fatalf("WithMetricsAddr under the Sim default: %v, want a Live-only error", err)
	}
	if _, err := guanyu.New(quickOpts(guanyu.WithRuntime(guanyu.Live),
		guanyu.WithMetricsAddr(""))...); err == nil {
		t.Fatal("empty metrics address accepted")
	}
}

// TestLiveResultSurfacesDroppedClosed is the regression for the
// dropped-counter plumbing bug: cluster.LiveResult counted overflow and
// after-close drops, but guanyu.Result silently zeroed them. One server's
// outbound frames are delayed past everyone's quorums, so its tail traffic
// lands on mailboxes that have already shut down — and that total must
// survive the trip through the façade.
func TestLiveResultSurfacesDroppedClosed(t *testing.T) {
	d, err := guanyu.New(quickOpts(
		guanyu.WithRuntime(guanyu.Live),
		guanyu.WithMailbox(8, guanyu.DropNewest),
		guanyu.WithDelay(func(from, to string) time.Duration {
			if from == "ps4" { // honest but slow: every quorum completes without it
				return 200 * time.Millisecond
			}
			return 0
		}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !guanyu.IsFinite(res.Final) {
		t.Fatal("non-finite final parameters")
	}
	if res.DroppedClosed == 0 {
		t.Fatal("Result.DroppedClosed = 0: the slow server's tail frames must surface through the façade")
	}
}

// scrapeFamilies fetches /metrics and returns the summed value per counter
// family, plus the node_info address labels.
func scrapeFamilies(t *testing.T, addr string) (map[string]float64, map[string]string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	sums := make(map[string]float64)
	addrs := make(map[string]string)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		brace := strings.IndexByte(line, '{')
		space := strings.LastIndexByte(line, ' ')
		if brace < 0 || space < brace {
			t.Fatalf("unparseable sample line %q", line)
		}
		family := line[:brace]
		var v float64
		if _, err := fmt.Sscanf(line[space+1:], "%g", &v); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		sums[family] += v
		if family == "guanyu_node_info" {
			labels := line[brace+1 : strings.IndexByte(line, '}')]
			var node, naddr string
			for _, kv := range strings.Split(labels, ",") {
				k, val, _ := strings.Cut(kv, "=")
				val = strings.Trim(val, `"`)
				switch k {
				case "node":
					node = val
				case "addr":
					naddr = val
				}
			}
			if node != "" && naddr != "" {
				addrs[node] = naddr
			}
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return sums, addrs
}

// TestLiveTCPMetricsAcceptance is the issue's acceptance scenario: a
// 12-node TCP deployment with an equivocating server and drop-oldest
// mailboxes, scraped over HTTP WHILE it runs. A rogue raw connection
// hellos as one identity and then forges another (guanyu_forged_dropped_total)
// and sprays junk under its own name at a capped mailbox
// (guanyu_mailbox_dropped_total). The scrape loop asserts every counter
// family is monotonic across reads, both families go nonzero live, and the
// same totals come back through guanyu.Result after the run.
func TestLiveTCPMetricsAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 12 TCP nodes plus an HTTP listener")
	}
	metricsAddr := make(chan string, 1)
	d, err := guanyu.New(quickOpts(
		guanyu.WithRuntime(guanyu.Live),
		guanyu.WithTCPTransport(),
		guanyu.WithSteps(60),
		guanyu.WithServerAttack(5, guanyu.Equivocate{Std: 0.5, Seed: 13}),
		guanyu.WithMailboxSpec("drop-oldest:cap=8"),
		guanyu.WithTimeout(2*time.Minute),
		guanyu.WithMetricsAddr("127.0.0.1:0", func(addr string) { metricsAddr <- addr }),
	)...)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		res *guanyu.Result
		err error
	}
	runDone := make(chan outcome, 1)
	go func() {
		res, err := d.Run(context.Background())
		runDone <- outcome{res, err}
	}()

	var addr string
	select {
	case addr = <-metricsAddr:
	case <-time.After(10 * time.Second):
		t.Fatal("metrics listener never came up")
	case o := <-runDone:
		t.Fatalf("run finished before the listener reported: %+v", o)
	}

	// Discover a worker's TCP address the way an operator would: from the
	// guanyu_node_info family of a live scrape. The target is a worker —
	// its mailbox sits idle during the local gradient computation, which
	// is the window the spray overflows.
	var targetAddr string
	deadline := time.Now().Add(10 * time.Second)
	for targetAddr == "" && time.Now().Before(deadline) {
		_, addrs := scrapeFamilies(t, addr)
		targetAddr = addrs["wrk0"]
		if targetAddr == "" {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if targetAddr == "" {
		t.Fatal("guanyu_node_info never published wrk0's address")
	}

	raw, err := net.Dial("tcp", targetAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	hello, err := transport.AppendHello(nil, "rogue", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(hello); err != nil {
		t.Fatal(err)
	}
	forged, err := transport.AppendMessage(nil, &transport.Message{
		From: "ps0", Kind: transport.KindGradient, Step: 0, Vec: tensor.Vector{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	junk, err := transport.AppendMessage(nil, &transport.Message{
		From: "rogue", Kind: transport.KindGradient, Step: 0, Vec: tensor.Vector{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One spray burst: forged identities (dropped at the read loop) plus a
	// burst of own-name junk deep enough to overflow the drop-oldest cap
	// whenever the worker is busy computing instead of draining.
	burst := append([]byte{}, forged...)
	for i := 0; i < 512; i++ {
		burst = append(burst, junk...)
	}

	stopSpray := make(chan struct{})
	sprayDone := make(chan struct{})
	go func() {
		defer close(sprayDone)
		for {
			select {
			case <-stopSpray:
				return
			default:
			}
			if _, err := raw.Write(burst); err != nil {
				return // run over, sockets down
			}
		}
	}()

	// The concurrent scrape loop: every family monotonic, both adversarial
	// families eventually nonzero while the cluster is still training.
	prev := make(map[string]float64)
	var sawForged, sawOverflow bool
	var out outcome
scrape:
	for {
		select {
		case out = <-runDone:
			break scrape
		default:
		}
		sums, _ := scrapeFamilies(t, addr)
		for fam, v := range sums {
			if strings.HasSuffix(fam, "_total") && v < prev[fam] {
				t.Fatalf("family %s regressed across scrapes: %g -> %g", fam, prev[fam], v)
			}
			prev[fam] = v
		}
		if sums["guanyu_forged_dropped_total"] > 0 {
			sawForged = true
		}
		if sums["guanyu_mailbox_dropped_total"] > 0 {
			sawOverflow = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stopSpray)
	<-sprayDone

	if out.err != nil {
		t.Fatalf("run failed under the rogue: %v", out.err)
	}
	if !guanyu.IsFinite(out.res.Final) {
		t.Fatal("non-finite final parameters")
	}
	if !sawForged {
		t.Error("guanyu_forged_dropped_total never went nonzero in a live scrape")
	}
	if !sawOverflow {
		t.Error("guanyu_mailbox_dropped_total never went nonzero in a live scrape")
	}
	// The same totals must surface through the façade result — at least
	// what the last scrape saw, since counters only grow.
	if out.res.ForgedDropped == 0 || float64(out.res.ForgedDropped) < prev["guanyu_forged_dropped_total"] {
		t.Errorf("Result.ForgedDropped = %d, scraped %g", out.res.ForgedDropped, prev["guanyu_forged_dropped_total"])
	}
	if out.res.DroppedOverflow == 0 || float64(out.res.DroppedOverflow) < prev["guanyu_mailbox_dropped_total"] {
		t.Errorf("Result.DroppedOverflow = %d, scraped %g", out.res.DroppedOverflow, prev["guanyu_mailbox_dropped_total"])
	}
}
