package guanyu

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	igar "repro/internal/gar"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Runner executes a validated Deployment. The two implementations are Sim
// (deterministic virtual time) and Live (one goroutine per node, real
// concurrency); select one with WithRuntime.
type Runner interface {
	// Run executes the deployment to completion, honouring ctx
	// cancellation.
	Run(ctx context.Context, d *Deployment) (*Result, error)
	// String names the runtime in logs.
	String() string
}

// Sim runs deployments under the deterministic discrete-event engine with
// an explicit virtual clock — the runtime that regenerates the paper's
// accuracy-vs-time figures reproducibly on any machine.
var Sim Runner = simRunner{}

// Live runs deployments with real concurrency: one goroutine per node over
// an asynchronous message transport — in-process channels, or loopback TCP
// sockets with WithTCPTransport.
var Live Runner = liveRunner{}

type simRunner struct{}

func (simRunner) String() string { return "sim" }

func (simRunner) Run(ctx context.Context, d *Deployment) (*Result, error) {
	mode := core.ModeGuanYu
	if d.vanilla {
		mode = core.ModeVanilla
	}
	cfg := core.Config{
		Mode:          mode,
		Model:         d.workload.Model,
		Train:         d.workload.Train,
		Test:          d.workload.Test,
		NumServers:    d.numServers,
		FServers:      d.fServers,
		NumWorkers:    d.numWorkers,
		FWorkers:      d.fWorkers,
		QuorumServers: d.qServers,
		QuorumWorkers: d.qWorkers,
		ServerAttacks: d.serverAttacks,
		WorkerAttacks: d.workerAttacks,
		Steps:         d.steps,
		Batch:         d.batch,
		LR:            d.lr,
		Momentum:      d.momentum,
		Rule:          d.gradRule(),
		ParamRule:     d.paramRule(),
		EvalEvery:     d.evalEvery,
		EvalExamples:  d.evalExamples,
		AlignEvery:    d.alignEvery,
		AlignAfter:    d.alignAfter,
		Seed:          d.seed,
	}
	cfg.DisableServerExchange = d.noExchange
	cfg.Cost.OptimizedRuntime = d.optimized
	cfg.Faults = d.faults
	cfg.Compression = d.compression
	res, err := core.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		Runtime:       Sim.String(),
		Curve:         res.Curve,
		Alignments:    res.Alignments,
		Final:         res.Final,
		FinalAccuracy: res.FinalAccuracy,
		VirtualTime:   res.VirtualTime,
		Updates:       res.Updates,
	}, nil
}

type liveRunner struct{}

func (liveRunner) String() string { return "live" }

// liveDrops carries a live run's deployment-wide drop totals into the
// Result — the counters that used to be discarded at this boundary.
type liveDrops struct {
	overflow, closed, forged, unnegotiated uint64
}

func (liveRunner) Run(ctx context.Context, d *Deployment) (*Result, error) {
	start := time.Now()
	// Every live run gets a registry — the per-node handles cost a few
	// atomics per event — and WithMetricsAddr additionally exposes it
	// over HTTP for the run's duration.
	reg := metrics.NewRegistry()
	if d.metricsAddr != "" {
		srv, serr := metrics.Serve(d.metricsAddr, reg, metrics.DefaultStallAfter)
		if serr != nil {
			return nil, serr
		}
		defer srv.Close()
		if d.onMetricsListen != nil {
			d.onMetricsListen(srv.Addr())
		}
	}
	var (
		final        tensor.Vector
		serverParams map[int]tensor.Vector
		drops        liveDrops
		restarted    bool
		err          error
	)
	if d.tcp {
		final, serverParams, drops, err = runLiveTCP(ctx, d, reg)
	} else {
		cfg := cluster.LiveConfig{
			Model:         d.workload.Model,
			Train:         d.workload.Train,
			NumServers:    d.numServers,
			FServers:      d.fServers,
			NumWorkers:    d.numWorkers,
			FWorkers:      d.fWorkers,
			QuorumServers: d.qServers,
			QuorumWorkers: d.qWorkers,
			ServerAttacks: d.serverAttacks,
			WorkerAttacks: d.workerAttacks,
			Steps:         d.steps,
			Batch:         d.batch,
			LR:            d.lr,
			Momentum:      d.momentum,
			Rule:          d.gradRule(),
			ParamRule:     d.paramRule(),
			Delay:         d.delay,
			Faults:        d.faults,
			Timeout:       d.timeout,
			Seed:          d.seed,
			Suspicion:     d.suspicion,
			ShardSize:     d.shardSize,
			Compression:   d.compression,
			Mailbox:       d.mailbox,
			Metrics:       reg,
		}
		if d.checkpointDir != "" {
			cfg.Checkpoint = &cluster.CheckpointSpec{Dir: d.checkpointDir, Every: d.checkpointEvery}
		}
		if d.rejoinSet {
			cfg.Churn = &cluster.LiveChurn{
				Server:          d.rejoinServer,
				KillAtStep:      d.rejoinKill,
				CheckpointEvery: d.checkpointEvery,
				Dir:             d.checkpointDir,
			}
		}
		var res *cluster.LiveResult
		res, err = cluster.RunLiveContext(ctx, cfg)
		if err == nil {
			final, serverParams = res.Final, res.ServerParams
			drops.overflow, drops.closed = res.DroppedOverflow, res.DroppedClosed
			restarted = res.ChurnRestarted
		}
	}
	if err != nil {
		return nil, err
	}
	out := &Result{
		Runtime:             Live.String(),
		Final:               final,
		ServerParams:        serverParams,
		Updates:             d.steps,
		WallTime:            time.Since(start),
		DroppedOverflow:     drops.overflow,
		DroppedClosed:       drops.closed,
		ForgedDropped:       drops.forged,
		DroppedUnnegotiated: drops.unnegotiated,
		ChurnRestarted:      restarted,
	}
	if d.workload.Test != nil {
		eval := d.workload.Model.Clone()
		if err := eval.SetParamVector(final); err != nil {
			return nil, err
		}
		out.FinalAccuracy = nn.Accuracy(eval, d.workload.Test.X, d.workload.Test.Labels)
	}
	return out, nil
}

// runLiveTCP executes the deployment as one node per goroutine over real
// loopback TCP sockets — the in-process equivalent of the paper's testbed,
// where every node is its own OS process (see RunNode for that shape).
// Every node publishes into reg, so a WithMetricsAddr scraper watches the
// run live; the returned liveDrops are the end-of-run totals.
func runLiveTCP(ctx context.Context, d *Deployment, reg *metrics.Registry) (
	tensor.Vector, map[int]tensor.Vector, liveDrops, error) {
	n := d.numServers + d.numWorkers
	serverIDs := make([]string, d.numServers)
	for i := range serverIDs {
		serverIDs[i] = cluster.ServerID(i)
	}
	workerIDs := make([]string, d.numWorkers)
	for j := range workerIDs {
		workerIDs[j] = cluster.WorkerID(j)
	}

	// Byzantine nodes keep raw framing and a legacy hello: compression is an
	// honest-traffic concern (the covert network is ideal by assumption),
	// and an uncompressing peer interoperates by construction.
	byzantine := make(map[string]bool, len(d.serverAttacks)+len(d.workerAttacks))
	for i := range d.serverAttacks {
		byzantine[cluster.ServerID(i)] = true
	}
	for j := range d.workerAttacks {
		byzantine[cluster.WorkerID(j)] = true
	}
	dim := d.workload.Model.ParamCount()

	// Start every listener on an ephemeral port, then exchange the address
	// book — the bootstrap a deployment tool would perform.
	nodes := make(map[string]*transport.TCPNode, n)
	addrs := make(map[string]string, n)
	closeAll := func() {
		for _, node := range nodes {
			node.Close()
		}
	}
	defer closeAll()
	for _, id := range append(append([]string{}, serverIDs...), workerIDs...) {
		node, err := transport.ListenTCP(id, "127.0.0.1:0", nil)
		if err != nil {
			return nil, nil, liveDrops{}, fmt.Errorf("guanyu: listen %s: %w", id, err)
		}
		if d.compression.Enabled() && !byzantine[id] {
			// Before AddPeer: the capability mask rides the hello frame.
			if err := node.SetCompression(d.compression, dim); err != nil {
				node.Close()
				return nil, nil, liveDrops{}, fmt.Errorf("guanyu: compression %s: %w", id, err)
			}
		}
		if d.mailbox.Bounded() {
			// Inbound bounding is each receiver's own defense, so every node —
			// Byzantine included — gets it, matching the in-process runtime.
			if err := node.SetMailbox(d.mailbox); err != nil {
				node.Close()
				return nil, nil, liveDrops{}, fmt.Errorf("guanyu: mailbox %s: %w", id, err)
			}
		}
		// Attach the registry handle before any peer can connect, so the
		// live counters are complete from the first frame; the address
		// rides /metrics as guanyu_node_info{node,addr}.
		h := reg.Node(id)
		node.SetMetrics(h)
		h.SetAddr(node.Addr())
		nodes[id] = node
		addrs[id] = node.Addr()
	}
	for _, node := range nodes {
		for id, addr := range addrs {
			if id != node.ID() {
				if err := node.AddPeer(id, addr); err != nil {
					return nil, nil, liveDrops{}, fmt.Errorf("guanyu: peer %s→%s: %w", node.ID(), id, err)
				}
			}
		}
	}

	// Cancellation tears down every socket, unblocking all quorum waits.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			closeAll()
		case <-watchDone:
		}
	}()

	theta0 := d.workload.Model.ParamVector()
	rng := tensor.NewRNG(d.seed)
	timeout := d.timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	lr := d.lr
	if lr == nil {
		lr = InverseTimeLR(0.05, 200)
	}

	serverView, workerView := cluster.AdversaryViews(
		d.fServers, d.serverAttacks, d.fWorkers, d.workerAttacks)

	type serverOut struct {
		index int
		theta tensor.Vector
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		outs     []serverOut
		runErrs  []error
		couriers []*transport.Couriers
	)
	for i := 0; i < d.numServers; i++ {
		peers := make([]string, 0, d.numServers-1)
		for k, id := range serverIDs {
			if k != i {
				peers = append(peers, id)
			}
		}
		scfg := cluster.ServerConfig{
			ID:              serverIDs[i],
			Workers:         workerIDs,
			Peers:           peers,
			Init:            theta0,
			GradRule:        d.gradRule(),
			ParamRule:       d.paramRule(),
			QuorumGradients: d.quorumWorkers(),
			QuorumParams:    d.quorumServers(),
			Steps:           d.steps,
			LR:              lr,
			Timeout:         timeout,
			Attack:          d.serverAttacks[i],
			Momentum:        d.momentum,
			View:            serverView,
			ShardSize:       d.shardSize,
			Metrics:         reg.Node(serverIDs[i]),
		}
		if scfg.Attack == nil {
			scfg.Suspicion = d.suspicion
			if d.checkpointDir != "" {
				scfg.Checkpoint = &cluster.CheckpointSpec{Dir: d.checkpointDir, Every: d.checkpointEvery}
			}
		}
		idx := i
		var sep transport.Endpoint = nodes[scfg.ID]
		if scfg.Attack == nil {
			// Faults hit honest traffic only (the adversary's covert network
			// is ideal, as in the simulator). Bounded deployments add per-link
			// couriers on top, so the node loop never blocks on a slow link.
			sep = d.faults.Wrap(sep)
			if d.mailbox.Bounded() {
				c := transport.NewCouriers(sep, d.mailbox)
				c.SetMetrics(scfg.Metrics)
				couriers = append(couriers, c)
				sep = c
			}
		}
		wg.Add(1)
		go func() {
			// Closing the wrapper flushes reorder-held and delay-spiked
			// messages while the sockets are still up; the raw nodes are
			// closed by the deferred closeAll.
			defer sep.Close()
			defer wg.Done()
			theta, err := cluster.RunServer(sep, scfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				runErrs = append(runErrs, err)
				return
			}
			if scfg.Attack == nil {
				outs = append(outs, serverOut{index: idx, theta: theta})
			}
		}()
	}
	for j := 0; j < d.numWorkers; j++ {
		wcfg := cluster.WorkerConfig{
			ID:           workerIDs[j],
			Servers:      serverIDs,
			Model:        d.workload.Model.Clone(),
			Sampler:      dataset.NewSampler(d.workload.Train, rng.Split()),
			Batch:        d.batch,
			ParamRule:    d.paramRule(),
			QuorumParams: d.quorumServers(),
			Steps:        d.steps,
			Timeout:      timeout,
			Attack:       d.workerAttacks[j],
			View:         workerView,
			ShardSize:    d.shardSize,
			Metrics:      reg.Node(workerIDs[j]),
		}
		var wep transport.Endpoint = nodes[wcfg.ID]
		if wcfg.Attack == nil {
			wep = d.faults.Wrap(wep)
			if d.mailbox.Bounded() {
				c := transport.NewCouriers(wep, d.mailbox)
				c.SetMetrics(wcfg.Metrics)
				couriers = append(couriers, c)
				wep = c
			}
		}
		wg.Add(1)
		go func() {
			defer wep.Close()
			defer wg.Done()
			if err := cluster.RunWorker(wep, wcfg); err != nil {
				mu.Lock()
				runErrs = append(runErrs, err)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Every node goroutine (and courier flush) is done: the drop totals
	// are final. Summed from the transport accessors, they equal what the
	// registry mirrored — the same numbers a /metrics scrape reports.
	var drops liveDrops
	for _, node := range nodes {
		drops.overflow += node.DroppedOverflow()
		drops.closed += node.DroppedClosed()
		drops.forged += node.ForgedDropped()
		drops.unnegotiated += node.DroppedUnnegotiated()
	}
	for _, c := range couriers {
		drops.overflow += c.DroppedOverflow()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, liveDrops{}, fmt.Errorf("guanyu: live TCP run cancelled: %w", err)
	}
	if len(runErrs) > 0 {
		return nil, nil, liveDrops{}, fmt.Errorf("guanyu: live TCP run failed: %w (and %d more)",
			runErrs[0], len(runErrs)-1)
	}
	if len(outs) == 0 {
		return nil, nil, liveDrops{}, fmt.Errorf("guanyu: no honest server completed")
	}
	serverParams := make(map[int]tensor.Vector, len(outs))
	finals := make([]tensor.Vector, 0, len(outs))
	for _, o := range outs {
		serverParams[o.index] = o.theta
		finals = append(finals, o.theta)
	}
	final, err := igar.Median{}.Aggregate(finals)
	if err != nil {
		return nil, nil, liveDrops{}, err
	}
	return final, serverParams, drops, nil
}
