package guanyu

import "repro/internal/parallel"

// Kernel parallelism. Every hot path of the reproduction — batch gradient
// estimation, the Krum score matrix, the coordinate-wise aggregation
// kernels, and the experiment suite's independent curves — executes through
// a shared, size-aware worker pool (internal/parallel). The worker count is
// a process-wide knob, exposed three ways: these functions, the
// WithParallelism deployment option, and the -parallel flag on the
// commands.
//
// Parallelism is a pure scheduling choice: every parallel kernel decomposes
// into element-independent work or fixed-boundary chunks folded in order, so
// results are bit-identical at every setting — SetParallelism(1) reproduces
// the serial numerics exactly, and the experiment determinism tests assert
// it.

// Parallelism returns the current worker count (default: runtime.NumCPU()).
func Parallelism() int { return parallel.Workers() }

// SetParallelism sets the process-wide worker count and returns the
// previous value. n ≤ 0 restores the default (runtime.NumCPU()); n = 1 is
// fully serial. Results are identical at every setting. Change it between
// runs, not while one is executing.
func SetParallelism(n int) int { return parallel.SetWorkers(n) }
