// Package guanyu is the public deployment API of the GuanYu reproduction —
// "Genuinely Distributed Byzantine Machine Learning" (El-Mhamdi, Guerraoui,
// Guirguis, Hoang, Rouault — PODC 2020): Byzantine-tolerant SGD with
// replicated parameter servers under full network asynchrony.
//
// One functional-options builder describes a deployment; one Runner
// interface executes it under either of the two runtimes:
//
//   - Sim — the deterministic virtual-time engine that regenerates the
//     paper's figures reproducibly on any machine;
//   - Live — one goroutine per node over an asynchronous message transport,
//     in-process channels by default or real TCP sockets with
//     WithTCPTransport.
//
// The minimal deployment, at the paper's scale (6 parameter servers of
// which 1 Byzantine, 18 workers of which 5 Byzantine):
//
//	d, err := guanyu.New(
//		guanyu.WithWorkload(guanyu.ImageWorkload(1200, 1)),
//		guanyu.WithServers(6, 1),
//		guanyu.WithWorkers(18, 5),
//		guanyu.WithRule("multi-krum"),
//		guanyu.WithAttackedWorkers(5, func(int) guanyu.Attack {
//			return guanyu.SignFlip{Scale: 30}
//		}),
//		guanyu.WithSteps(150),
//	)
//	if err != nil { ... }
//	res, err := d.Run(context.Background())
//
// Swapping guanyu.WithRuntime(guanyu.Live) executes the identical
// deployment with real concurrency instead of virtual time. Aggregation
// rules are selected by registry name (see guanyu/gar); Byzantine
// behaviours by value (see Attack and AttackByName).
package guanyu

import (
	"context"
	"fmt"
	"time"

	"repro/internal/compress"
	igar "repro/internal/gar"
	"repro/internal/transport"
)

// Deployment is a fully validated description of one GuanYu (or vanilla
// baseline) run. Build one with New; execute it with Run. A Deployment is
// immutable after New and may be run multiple times.
type Deployment struct {
	workload  Workload
	vanilla   bool
	optimized bool

	numServers, fServers int
	numWorkers, fWorkers int
	qServers, qWorkers   int
	serversSet           bool

	ruleName      string
	paramRuleName string

	serverAttacks map[int]Attack
	workerAttacks map[int]Attack

	steps    int
	batch    int
	lr       Schedule
	momentum float64
	seed     uint64

	evalEvery    int
	evalExamples int
	alignEvery   int
	alignAfter   int
	noExchange   bool

	runtime     Runner
	timeout     time.Duration
	delay       DelayFunc
	faults      *transport.FaultInjector
	suspicion   *Suspicion
	tcp         bool
	shardSize   int
	compression compress.Config
	mailbox     transport.MailboxConfig

	checkpointDir   string
	checkpointEvery int
	rejoinServer    int
	rejoinKill      int
	rejoinSet       bool

	metricsAddr     string
	onMetricsListen func(addr string)

	parallelism    int
	parallelismSet bool
}

// New builds and validates a deployment from the given options. Topology
// bounds (n ≥ 3f+3, 2f+3 ≤ q ≤ n−f per role), rule names and mode
// constraints are all checked here, so a non-nil Deployment is runnable.
func New(opts ...Option) (*Deployment, error) {
	d := &Deployment{
		numServers: PaperServers, fServers: PaperByzServers,
		numWorkers: PaperWorkers, fWorkers: PaperByzWorkers,
		ruleName:      "",
		paramRuleName: "coordinate-median",
		steps:         100,
		batch:         16,
		seed:          1,
		evalEvery:     10,
		runtime:       Sim,
	}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(d); err != nil {
			return nil, fmt.Errorf("guanyu: %w", err)
		}
	}
	if err := d.normalize(); err != nil {
		return nil, fmt.Errorf("guanyu: %w", err)
	}
	return d, nil
}

// normalize applies mode defaults and validates the full configuration.
func (d *Deployment) normalize() error {
	if d.workload.Model == nil || d.workload.Train == nil {
		return fmt.Errorf("a workload is required (use WithWorkload, e.g. ImageWorkload or BlobWorkload)")
	}
	if d.steps <= 0 || d.batch <= 0 {
		return fmt.Errorf("steps and batch must be positive (got %d, %d)", d.steps, d.batch)
	}
	if d.vanilla && !d.serversSet {
		d.numServers, d.fServers = 1, 0
	}
	if d.ruleName == "" {
		if d.vanilla {
			d.ruleName = "mean"
		} else {
			d.ruleName = "multi-krum"
		}
	}
	if _, err := igar.LookupSpec(d.ruleName); err != nil {
		return err
	}
	if _, err := igar.LookupSpec(d.paramRuleName); err != nil {
		return err
	}
	if d.vanilla {
		if d.numServers != 1 {
			return fmt.Errorf("vanilla mode runs exactly 1 server, got %d", d.numServers)
		}
		if d.numWorkers < 1 {
			return fmt.Errorf("vanilla mode needs ≥ 1 worker")
		}
	} else {
		if err := igar.CheckDeployment("server", d.numServers, d.fServers); err != nil {
			return err
		}
		if err := igar.CheckDeployment("worker", d.numWorkers, d.fWorkers); err != nil {
			return err
		}
		if err := igar.CheckQuorum("server", d.numServers, d.fServers, d.quorumServers()); err != nil {
			return err
		}
		if err := igar.CheckQuorum("worker", d.numWorkers, d.fWorkers, d.quorumWorkers()); err != nil {
			return err
		}
	}
	// The selected rules must be legal at the quorums they will aggregate
	// (e.g. Bulyan needs n ≥ 4f+3 inputs, more than the minimum gradient
	// quorum provides) — checked here so a validated Deployment cannot fail
	// its first step on a rule precondition.
	if min, err := igar.MinInputs(d.ruleName, d.fWorkers); err == nil && d.quorumWorkers() < min {
		return fmt.Errorf("rule %q needs ≥ %d inputs with f̄=%d, but the gradient quorum is %d (raise WithQuorums or the worker population)",
			d.ruleName, min, d.fWorkers, d.quorumWorkers())
	}
	if min, err := igar.MinInputs(d.paramRuleName, d.fServers); err == nil && d.quorumServers() < min {
		return fmt.Errorf("parameter rule %q needs ≥ %d inputs with f=%d, but the parameter quorum is %d",
			d.paramRuleName, min, d.fServers, d.quorumServers())
	}
	if len(d.serverAttacks) >= d.numServers {
		return fmt.Errorf("every server is Byzantine; nothing to measure")
	}
	if len(d.workerAttacks) >= d.numWorkers {
		return fmt.Errorf("every worker is Byzantine; nothing to measure")
	}
	for i := range d.serverAttacks {
		if i < 0 || i >= d.numServers {
			return fmt.Errorf("server attack index %d outside population [0, %d)", i, d.numServers)
		}
	}
	for j := range d.workerAttacks {
		if j < 0 || j >= d.numWorkers {
			return fmt.Errorf("worker attack index %d outside population [0, %d)", j, d.numWorkers)
		}
	}
	if d.vanilla && d.runtime == Live {
		return fmt.Errorf("the vanilla baseline is simulation-only; use the default Sim runtime")
	}
	if d.tcp && d.runtime != Live {
		return fmt.Errorf("WithTCPTransport applies to the Live runtime only")
	}
	if d.shardSize > 0 && d.runtime != Live {
		return fmt.Errorf("WithShardSize applies to the Live runtime only (the simulator models the wire in its cost model)")
	}
	if d.mailbox.Bounded() && d.runtime != Live {
		return fmt.Errorf("WithMailbox applies to the Live runtime only (virtual time admits no overflow to bound)")
	}
	if d.metricsAddr != "" && d.runtime != Live {
		return fmt.Errorf("WithMetricsAddr applies to the Live runtime only (the simulator has no wall-clock run to scrape)")
	}
	if d.checkpointDir != "" && d.runtime != Live {
		return fmt.Errorf("WithCheckpointDir applies to the Live runtime only (the simulator has no process state to persist)")
	}
	if d.rejoinSet {
		if d.checkpointDir == "" {
			return fmt.Errorf("WithRejoin requires WithCheckpointDir: the restart leg restores the newest on-disk snapshot")
		}
		if d.tcp {
			return fmt.Errorf("WithRejoin drives the in-process Live network; TCP nodes restart as real processes (see NodeConfig.Rejoin)")
		}
		if d.shardSize > 0 {
			return fmt.Errorf("WithRejoin needs whole-vector framing, not WithShardSize streaming")
		}
		if d.rejoinServer < 0 || d.rejoinServer >= d.numServers {
			return fmt.Errorf("WithRejoin targets server %d of %d", d.rejoinServer, d.numServers)
		}
		if d.serverAttacks[d.rejoinServer] != nil {
			return fmt.Errorf("WithRejoin victim %d is Byzantine; only honest servers churn", d.rejoinServer)
		}
		if d.rejoinKill <= 0 || d.rejoinKill >= d.steps {
			return fmt.Errorf("WithRejoin kill step %d outside (0, %d)", d.rejoinKill, d.steps)
		}
		if d.checkpointEvery > d.rejoinKill {
			return fmt.Errorf("WithRejoin kill step %d precedes the first checkpoint (cadence %d)", d.rejoinKill, d.checkpointEvery)
		}
	}
	return nil
}

func (d *Deployment) quorumServers() int {
	if d.vanilla {
		return 1
	}
	if d.qServers > 0 {
		return d.qServers
	}
	return igar.MinQuorum(d.fServers)
}

func (d *Deployment) quorumWorkers() int {
	if d.vanilla {
		return d.numWorkers
	}
	if d.qWorkers > 0 {
		return d.qWorkers
	}
	return igar.MinQuorum(d.fWorkers)
}

// gradRule and paramRule resolve the registry names into engine rules.
func (d *Deployment) gradRule() igar.Rule {
	f := d.fWorkers
	r, err := igar.FromName(d.ruleName, f)
	if err != nil {
		// normalize() validated the name; this cannot happen.
		panic(err)
	}
	return r
}

func (d *Deployment) paramRule() igar.Rule {
	r, err := igar.FromName(d.paramRuleName, d.fServers)
	if err != nil {
		panic(err)
	}
	return r
}

// Runtime returns the runner the deployment executes under.
func (d *Deployment) Runtime() Runner { return d.runtime }

// Run executes the deployment under its configured runtime (Sim unless
// WithRuntime changed it). The context cancels the run: the simulator
// checks it between steps, the live runtime tears the network down.
//
// When WithParallelism was given, Run pins the process-wide kernel worker
// count for the duration and restores the previous setting before
// returning; concurrent runs of differently-configured deployments should
// set the knob once via SetParallelism instead.
func (d *Deployment) Run(ctx context.Context) (*Result, error) {
	if d.parallelismSet {
		prev := SetParallelism(d.parallelism)
		defer SetParallelism(prev)
	}
	return d.runtime.Run(ctx, d)
}
