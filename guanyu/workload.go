package guanyu

import (
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Workload bundles a model template with its train/test datasets; every
// node clones the template, so one Workload describes the whole deployment.
type Workload = core.Workload

// Model is a feed-forward network (the template in a Workload).
type Model = nn.Sequential

// Dataset is a labelled example set.
type Dataset = dataset.Dataset

// The paper's testbed scale: 18 workers and, for GuanYu deployments, 6
// parameter servers (1 for the vanilla baselines); up to 5 Byzantine
// workers and 1 Byzantine server.
const (
	PaperWorkers    = core.PaperWorkers
	PaperServers    = core.PaperServers
	PaperByzWorkers = core.PaperByzWorkers
	PaperByzServers = core.PaperByzServers
)

// ImageWorkload builds the standard experiment workload: the SynthImg-10
// procedural image task (the CIFAR-10 substitute) with the tiny CNN sized
// for single-CPU runs.
func ImageWorkload(examples int, seed uint64) Workload {
	return core.ImageWorkload(examples, seed)
}

// BlobWorkload builds the fast low-dimensional workload (Gaussian blobs +
// a small MLP) used by tests, examples and quick local runs.
func BlobWorkload(examples int, seed uint64) Workload {
	return core.BlobWorkload(examples, seed)
}

// Schedule is a learning-rate schedule η_t. The paper's convergence proof
// requires the Robbins-Monro conditions Σ η_t = ∞ and Σ η_t² < ∞.
type Schedule = core.Schedule

// ConstantLR returns a constant schedule (finite-horizon experiments only).
func ConstantLR(eta float64) Schedule { return core.ConstantLR(eta) }

// InverseTimeLR returns η_t = eta0 / (1 + t/halfLife), the canonical
// Robbins-Monro-compliant schedule used throughout the experiments.
func InverseTimeLR(eta0, halfLife float64) Schedule { return core.InverseTimeLR(eta0, halfLife) }

// Accuracy returns the model's classification accuracy on the examples.
func Accuracy(m *Model, xs [][]float64, labels []int) float64 {
	return nn.Accuracy(m, xs, labels)
}

// SaveCheckpoint serialises a model (with its step counter) to w.
func SaveCheckpoint(w io.Writer, m *Model, step int) error {
	return nn.SaveCheckpoint(w, m, step)
}

// LoadCheckpoint restores a model saved by SaveCheckpoint into m (which
// must have the same architecture) and returns the saved step.
func LoadCheckpoint(r io.Reader, m *Model) (int, error) {
	return nn.LoadCheckpoint(r, m)
}

// IsFinite reports whether every coordinate of v is finite — false means a
// NaN/Inf payload destroyed the model (what happens to the unprotected
// baseline under a NaN injection).
func IsFinite(v []float64) bool { return tensor.IsFinite(v) }
