package guanyu

import (
	"fmt"

	"repro/internal/transport"
)

// MailboxConfig bounds a node's inbound mailbox per sender; the zero value
// is the unbounded mailbox of the pure asynchronous model. See WithMailbox
// and transport.MailboxConfig.
type MailboxConfig = transport.MailboxConfig

// OverflowPolicy selects what a bounded mailbox does when one sender's
// queue is full; see the Backpressure, DropNewest and DropOldest policies.
type OverflowPolicy = transport.OverflowPolicy

// The overflow policies, re-exported from the transport layer.
const (
	// Backpressure blocks the producer until the sender's queue drains —
	// per-connection flow control on TCP, never cluster-wide.
	Backpressure = transport.Backpressure
	// DropNewest discards the incoming frame, keeping what is queued.
	DropNewest = transport.DropNewest
	// DropOldest evicts the sender's oldest queued frame to admit the new
	// one — the right policy for this protocol's superseded-step traffic.
	DropOldest = transport.DropOldest
)

// ParseMailbox parses a -mailbox flag spec: "none" (unbounded, default) or
// "policy[:cap=N]" with policy ∈ {backpressure, drop-newest, drop-oldest}
// and the cap defaulting to transport.DefaultMailboxCap.
func ParseMailbox(spec string) (MailboxConfig, error) {
	return transport.ParseMailboxSpec(spec)
}

// WithMailbox bounds every node's inbound mailbox to cap frames per sender
// with the given overflow policy, and routes every honest node's sends
// through per-link courier goroutines with equally bounded outboxes. A fast
// or Byzantine peer can then occupy at most cap frames at each receiver,
// making a node's worst-case buffering O(n·cap) regardless of traffic
// rates — the actor runtime described in DESIGN.md. Overflow-free
// schedules are byte-for-byte unaffected by the bound. Live-only: the
// simulator's virtual time admits no overflow to bound.
func WithMailbox(cap int, policy OverflowPolicy) Option {
	return func(d *Deployment) error {
		cfg := MailboxConfig{Cap: cap, Policy: policy}
		if cap <= 0 {
			return fmt.Errorf("WithMailbox: cap must be positive, got %d", cap)
		}
		if err := cfg.Validate(); err != nil {
			return err
		}
		d.mailbox = cfg
		return nil
	}
}

// WithMailboxSpec is WithMailbox in the flag syntax accepted by
// ParseMailbox ("none" | "policy[:cap=N]").
func WithMailboxSpec(spec string) Option {
	return func(d *Deployment) error {
		cfg, err := ParseMailbox(spec)
		if err != nil {
			return err
		}
		d.mailbox = cfg
		return nil
	}
}
