package guanyu

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	igar "repro/internal/gar"
	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/transport"
)

func serverID(i int) string { return cluster.ServerID(i) }
func workerID(j int) string { return cluster.WorkerID(j) }

// CheckpointSpec names a server's checkpoint directory and cadence (see
// NodeConfig.Checkpoint and WithCheckpointDir).
type CheckpointSpec = cluster.CheckpointSpec

// NodeConfig describes ONE node of a multi-process deployment: a single
// parameter server or worker running in its own OS process over TCP, so a
// full deployment is N independent processes exactly as on the paper's
// testbed. Every process deterministically regenerates the same workload
// and model initialisation from Seed, so no data distribution step is
// needed.
type NodeConfig struct {
	// Role is "server" or "worker".
	Role string
	// ID is this node's network identifier; the naming convention ps<i> /
	// wrk<j> (see ServerID, WorkerID) assigns roles within Peers.
	ID string
	// Listen is the address to bind ("127.0.0.1:0" for an ephemeral port).
	Listen string
	// Peers maps every node ID of the deployment — this one included — to
	// its address.
	Peers map[string]string
	// FServers and FWorkers are the declared Byzantine counts.
	FServers, FWorkers int
	// Steps and Batch drive training.
	Steps, Batch int
	// Workload overrides the default workload; when nil every process
	// regenerates ImageWorkload(Examples, Seed).
	Workload *Workload
	// Examples sizes the default synthetic workload (default 1200).
	Examples int
	// Seed is the deployment seed, shared by all processes.
	Seed uint64
	// Attack, when non-nil, makes THIS node Byzantine. Omniscient attacks
	// degrade to their local-knowledge fallback here: an adversary spanning
	// OS processes would need its own covert channel, which this runtime
	// does not model (the in-process runtimes do; see WithFaults/Live).
	Attack Attack
	// Faults injects seeded network faults into THIS node's send path
	// (zero value: none). Arm all nodes with the same profile and seed for
	// a cluster-wide schedule. With a ShardSize set, faults hit each chunk
	// frame independently.
	Faults FaultProfile
	// ShardSize, when positive, streams this node's outbound vectors as
	// chunk frames of that many coordinates and aggregates inbound shards
	// incrementally (bit-identical to whole-vector framing; see
	// WithShardSize). Nodes with and without sharding interoperate, so a
	// deployment may mix — but arm every node identically to get the
	// memory and pipelining benefit cluster-wide.
	ShardSize int
	// Compression selects this node's outbound wire compression by spec
	// string: "none" (default), "float32", "delta[:key=N]" or "topk:k=F"
	// (see WithCompression). Negotiated per connection via the hello
	// capability mask, so compressing and plain nodes interoperate: a peer
	// that did not announce a scheme has this node's compressed frames
	// dropped as un-negotiated, never misdecoded. Composes with ShardSize —
	// each chunk frame is compressed as its own stream.
	Compression string
	// Mailbox bounds this node's inbound mailbox per sender and routes its
	// sends through per-link courier goroutines, by spec string: "none"
	// (default, unbounded) or "policy[:cap=N]" with policy ∈ {backpressure,
	// drop-newest, drop-oldest} (see WithMailbox). The bound is this node's
	// own defense — a spraying peer occupies at most cap frames here — so
	// arming nodes individually is meaningful, but arm every node to bound
	// the whole deployment.
	Mailbox string
	// Checkpoint, when non-nil, makes a server persist its protocol state
	// — step counter, parameters, collector horizon, momentum — into
	// Checkpoint.Dir every Checkpoint.Every steps, atomically
	// (write-then-rename, one file per node ID). Servers only.
	Checkpoint *CheckpointSpec
	// Rejoin, with Checkpoint set, restarts this server elastically: the
	// newest on-disk snapshot is restored before the loop starts, and the
	// node catches up by adopting the coordinate-wise median of a live
	// peer quorum at whatever step the cluster has reached, falling back
	// to the plain restored state if no quorum materialises within
	// Timeout. This is how a crashed ps<i> process re-enters a running
	// deployment under the same ID. Requires whole-vector framing
	// (ShardSize 0). Servers only.
	Rejoin bool
	// Timeout bounds each quorum wait (default 5 minutes).
	Timeout time.Duration
	// LR overrides the learning-rate schedule (servers only; default
	// InverseTimeLR(0.05, 300)).
	LR Schedule
	// OnListen, when non-nil, is invoked with the bound address once the
	// node is reachable — the hook deployment scripts use to publish
	// address books.
	OnListen func(addr string)
	// MetricsAddr, when non-empty, starts a /metrics + /healthz HTTP
	// listener on that address for this node's lifetime: live Prometheus
	// counters for every hardening drop class plus a quorum-liveness
	// health verdict (see WithMetricsAddr for the exposition). Use ":0"
	// for an ephemeral port; OnMetricsListen reports the bound address.
	MetricsAddr string
	// OnMetricsListen, when non-nil, receives the metrics listener's
	// bound address once it is up.
	OnMetricsListen func(addr string)
}

// NodeResult is the outcome of one node's run.
type NodeResult struct {
	// ID and Role echo the configuration.
	ID, Role string
	// Steps is the number of learning steps completed.
	Steps int
	// Theta is the server's final parameter vector (nil for workers).
	Theta []float64
	// Model is the evaluation model carrying Theta (nil for workers).
	Model *Model
	// Accuracy is Model's local test accuracy (servers only).
	Accuracy float64
}

// SplitPeers partitions a deployment address book into server and worker
// IDs by the ps*/wrk* naming convention, sorted for determinism.
func SplitPeers(peers map[string]string) (servers, workers []string, err error) {
	for id := range peers {
		switch {
		case strings.HasPrefix(id, "ps"):
			servers = append(servers, id)
		case strings.HasPrefix(id, "wrk"):
			workers = append(workers, id)
		default:
			return nil, nil, fmt.Errorf("guanyu: peer id %q matches neither ps* nor wrk*", id)
		}
	}
	sort.Strings(servers)
	sort.Strings(workers)
	return servers, workers, nil
}

// RunNode executes one node of a multi-process TCP deployment to
// completion. Cancelling ctx tears down the node's sockets, unblocking its
// quorum waits.
func RunNode(ctx context.Context, cfg NodeConfig) (*NodeResult, error) {
	if cfg.Role != "server" && cfg.Role != "worker" {
		return nil, fmt.Errorf("guanyu: node role must be server or worker, got %q", cfg.Role)
	}
	if cfg.ID == "" {
		return nil, fmt.Errorf("guanyu: node ID is required")
	}
	if _, ok := cfg.Peers[cfg.ID]; !ok {
		return nil, fmt.Errorf("guanyu: peers must include this node's id %q", cfg.ID)
	}
	if cfg.Steps <= 0 || cfg.Batch <= 0 {
		return nil, fmt.Errorf("guanyu: node Steps and Batch must be positive (got %d, %d)",
			cfg.Steps, cfg.Batch)
	}
	if cfg.Role == "worker" && (cfg.Checkpoint != nil || cfg.Rejoin) {
		return nil, fmt.Errorf("guanyu: checkpoint/rejoin are server-side (workers are stateless; restart them cold)")
	}
	if cfg.Checkpoint != nil && (cfg.Checkpoint.Dir == "" || cfg.Checkpoint.Every < 1) {
		return nil, fmt.Errorf("guanyu: node checkpointing needs a directory and a positive cadence")
	}
	if cfg.Rejoin {
		if cfg.Checkpoint == nil {
			return nil, fmt.Errorf("guanyu: Rejoin requires Checkpoint: the restart restores the newest on-disk snapshot")
		}
		if cfg.ShardSize > 0 {
			return nil, fmt.Errorf("guanyu: Rejoin needs whole-vector framing (ShardSize 0)")
		}
		if cfg.Attack != nil {
			return nil, fmt.Errorf("guanyu: Rejoin is an honest-recovery path; a Byzantine node needs no catch-up")
		}
	}
	servers, workers, err := SplitPeers(cfg.Peers)
	if err != nil {
		return nil, err
	}
	if err := igar.CheckDeployment("server", len(servers), cfg.FServers); err != nil {
		return nil, err
	}
	if err := igar.CheckDeployment("worker", len(workers), cfg.FWorkers); err != nil {
		return nil, err
	}

	w := cfg.Workload
	if w == nil {
		examples := cfg.Examples
		if examples <= 0 {
			examples = 1200
		}
		wl := ImageWorkload(examples, cfg.Seed)
		w = &wl
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 5 * time.Minute
	}
	lr := cfg.LR
	if lr == nil {
		lr = InverseTimeLR(0.05, 300)
	}
	listen := cfg.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}

	comp, err := ParseCompression(cfg.Compression)
	if err != nil {
		return nil, err
	}
	mbox, err := ParseMailbox(cfg.Mailbox)
	if err != nil {
		return nil, err
	}

	node, err := transport.ListenTCP(cfg.ID, listen, nil)
	if err != nil {
		return nil, err
	}
	defer node.Close()
	// The node's live ops surface: one registry handle that the transport,
	// couriers and the node loop all publish into, optionally exposed over
	// HTTP for the process's lifetime.
	reg := metrics.NewRegistry()
	handle := reg.Node(cfg.ID)
	node.SetMetrics(handle)
	handle.SetAddr(node.Addr())
	if cfg.MetricsAddr != "" {
		srv, err := metrics.Serve(cfg.MetricsAddr, reg, metrics.DefaultStallAfter)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		if cfg.OnMetricsListen != nil {
			cfg.OnMetricsListen(srv.Addr())
		}
	}
	if comp.Enabled() {
		// Before AddPeer: the capability mask rides the hello frame, and the
		// model dimension bounds inbound compressed expansions.
		if err := node.SetCompression(comp, w.Model.ParamCount()); err != nil {
			return nil, err
		}
	}
	if mbox.Bounded() {
		if err := node.SetMailbox(mbox); err != nil {
			return nil, err
		}
	}
	var ep transport.Endpoint = transport.NewFaultInjector(cfg.Faults).Wrap(node)
	if mbox.Bounded() {
		// Per-link couriers decouple this node's broadcast loop from its
		// slowest peer; closing the courier wrapper flushes queued frames.
		c := transport.NewCouriers(ep, mbox)
		c.SetMetrics(handle)
		ep = c
	}
	// Closing the wrapper first flushes reorder-held and delay-spiked
	// messages before the sockets go away: this process may be the last
	// sender its peers' final quorums are waiting on.
	defer ep.Close()
	for id, addr := range cfg.Peers {
		if id != cfg.ID {
			if err := node.AddPeer(id, addr); err != nil {
				return nil, err
			}
		}
	}
	if cfg.OnListen != nil {
		cfg.OnListen(node.Addr())
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			node.Close()
		case <-watchDone:
		}
	}()

	res := &NodeResult{ID: cfg.ID, Role: cfg.Role, Steps: cfg.Steps}
	switch cfg.Role {
	case "server":
		peersOnly := make([]string, 0, len(servers)-1)
		for _, id := range servers {
			if id != cfg.ID {
				peersOnly = append(peersOnly, id)
			}
		}
		scfg := cluster.ServerConfig{
			ID: cfg.ID, Workers: workers, Peers: peersOnly,
			Init:            w.Model.ParamVector(),
			GradRule:        igar.MultiKrum{F: cfg.FWorkers},
			ParamRule:       igar.Median{},
			QuorumGradients: igar.MinQuorum(cfg.FWorkers),
			QuorumParams:    igar.MinQuorum(cfg.FServers),
			Steps:           cfg.Steps,
			LR:              lr,
			Timeout:         timeout,
			Attack:          cfg.Attack,
			ShardSize:       cfg.ShardSize,
			Metrics:         handle,
		}
		if cfg.Attack == nil {
			scfg.Checkpoint = cfg.Checkpoint
		}
		if cfg.Rejoin {
			ckpt, err := cluster.LoadCheckpoint(cfg.Checkpoint.Dir, cfg.ID)
			if err != nil {
				return nil, fmt.Errorf("guanyu: node rejoin: %w", err)
			}
			scfg.Restore = &ckpt
			scfg.Rejoin = true
		}
		theta, err := cluster.RunServer(ep, scfg)
		if err != nil {
			return nil, wrapCancelled(ctx, err)
		}
		eval := w.Model.Clone()
		if err := eval.SetParamVector(theta); err != nil {
			return nil, err
		}
		res.Theta = theta
		res.Model = eval
		if w.Test != nil {
			res.Accuracy = Accuracy(eval, w.Test.X, w.Test.Labels)
		}
	case "worker":
		err := cluster.RunWorker(ep, cluster.WorkerConfig{
			ID: cfg.ID, Servers: servers,
			Model:        w.Model.Clone(),
			Sampler:      dataset.NewSampler(w.Train, tensor.NewRNG(cfg.Seed^hashID(cfg.ID))),
			Batch:        cfg.Batch,
			ParamRule:    igar.Median{},
			QuorumParams: igar.MinQuorum(cfg.FServers),
			Steps:        cfg.Steps,
			Timeout:      timeout,
			Attack:       cfg.Attack,
			ShardSize:    cfg.ShardSize,
			Metrics:      handle,
		})
		if err != nil {
			return nil, wrapCancelled(ctx, err)
		}
	}
	return res, nil
}

// wrapCancelled prefers the context's error over the node error it caused.
func wrapCancelled(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("guanyu: node cancelled: %w", cerr)
	}
	return err
}

// HashID derives a per-node seed offset from its name (FNV-1a), so
// deployment tools arm per-node generators the same way the node runtime
// does.
func HashID(s string) uint64 { return hashID(s) }

func hashID(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
