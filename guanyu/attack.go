package guanyu

import (
	"fmt"

	"repro/internal/attack"
)

// Attack is a Byzantine behaviour: it intercepts every outbound vector of a
// compromised node and may corrupt it per receiver (equivocation) or
// suppress it (silence). The catalogue below is re-exported from the
// attack layer; AttackByName selects one from a flag or config string.
type Attack = attack.Attack

// RandomGaussian replaces the vector with fresh Gaussian noise per receiver.
type RandomGaussian = attack.RandomGaussian

// SignFlip negates and scales the honest vector — gradient ascent.
type SignFlip = attack.SignFlip

// ScaledNorm multiplies the honest vector by a huge factor.
type ScaledNorm = attack.ScaledNorm

// Zero sends the zero vector (a stalling attack).
type Zero = attack.Zero

// NaNInjection poisons the vector with NaNs.
type NaNInjection = attack.NaNInjection

// TwoFaced equivocates: honest vector to half the receivers, the inner
// attack's corruption to the rest.
type TwoFaced = attack.TwoFaced

// Silent never sends anything.
type Silent = attack.Silent

// NewRandomGaussian builds a RandomGaussian attack with the given standard
// deviation and seed.
func NewRandomGaussian(std float64, seed uint64) *RandomGaussian {
	return attack.NewRandomGaussian(std, seed)
}

// AttackNames lists the names AttackByName accepts.
func AttackNames() []string {
	return []string{"random", "signflip", "scaled", "zero", "nan", "twofaced", "silent"}
}

// AttackByName returns a per-node factory for the named behaviour, so
// command-line flags and configs can arm deployments without switch
// statements. The factory takes the node index, ensuring stateful attacks
// don't share generators.
func AttackByName(name string, seed uint64) (func(i int) Attack, error) {
	switch name {
	case "random":
		return func(i int) Attack {
			return attack.NewRandomGaussian(100, seed+uint64(i))
		}, nil
	case "signflip":
		return func(int) Attack { return SignFlip{Scale: 2} }, nil
	case "scaled":
		return func(int) Attack { return ScaledNorm{Factor: 1e6} }, nil
	case "zero":
		return func(int) Attack { return Zero{} }, nil
	case "nan":
		return func(int) Attack { return NaNInjection{} }, nil
	case "twofaced":
		return func(i int) Attack {
			return TwoFaced{Inner: attack.NewRandomGaussian(100, seed+uint64(i))}
		}, nil
	case "silent":
		return func(int) Attack { return Silent{} }, nil
	default:
		return nil, fmt.Errorf("guanyu: unknown attack %q (known: %v)", name, AttackNames())
	}
}
