package guanyu

import (
	"repro/internal/attack"
)

// Attack is a Byzantine behaviour: it intercepts every outbound vector of a
// compromised node and may corrupt it per receiver (equivocation) or
// suppress it (silence). The catalogue below is re-exported from the
// attack layer; AttackByName selects one from a flag or config string.
type Attack = attack.Attack

// ClusterView is the omniscient adversary's window onto the honest cluster
// at one step: the honest vectors of the message class the Byzantine node
// is about to corrupt, plus the population's declared bound and the number
// of colluders. The runtimes feed it; attacks must treat it as read-only.
type ClusterView = attack.ClusterView

// Omniscient marks attacks that adapt to the honest cluster state: the
// runtimes call Observe with the current step's ClusterView before Corrupt.
// The adversary is omniscient but not omnipotent — it reads every honest
// value, yet can only speak through the nodes it controls, and in the live
// runtimes its view fills in only as honest nodes actually produce values.
type Omniscient = attack.Omniscient

// RandomGaussian replaces the vector with fresh Gaussian noise per receiver.
type RandomGaussian = attack.RandomGaussian

// SignFlip negates and scales the honest vector — gradient ascent.
type SignFlip = attack.SignFlip

// ScaledNorm multiplies the honest vector by a huge factor.
type ScaledNorm = attack.ScaledNorm

// Zero sends the zero vector (a stalling attack).
type Zero = attack.Zero

// NaNInjection poisons the vector with NaNs.
type NaNInjection = attack.NaNInjection

// TwoFaced equivocates: honest vector to half the receivers, the inner
// attack's corruption to the rest.
type TwoFaced = attack.TwoFaced

// Silent never sends anything.
type Silent = attack.Silent

// Delayed responds only every Period steps.
type Delayed = attack.Delayed

// ALIE is "A Little Is Enough": the colluders deviate from the honest
// coordinate mean by a few honest standard deviations — inside the honest
// point cloud, yet persistently biasing the aggregate (omniscient).
type ALIE = attack.ALIE

// InnerProduct sends −ε times the honest mean, dragging the aggregate
// toward a negative inner product with the true gradient (omniscient).
type InnerProduct = attack.InnerProduct

// Mimic replays one fixed honest participant's vector, amplifying its
// sampling noise while never looking like an outlier (omniscient).
type Mimic = attack.Mimic

// AntiKrum pushes against the descent direction by the largest magnitude
// that the server's own Krum selection still accepts (omniscient).
type AntiKrum = attack.AntiKrum

// Equivocate sends a different corruption to every receiver, keyed
// deterministically on (step, receiver).
type Equivocate = attack.Equivocate

// StaleReplay replays the node's honest vector from Age steps ago.
type StaleReplay = attack.StaleReplay

// SlowDrift adds a bias growing linearly with the step count along one
// fixed direction — too small per message to filter, compounding over time.
type SlowDrift = attack.SlowDrift

// NewRandomGaussian builds a RandomGaussian attack with the given standard
// deviation and seed.
func NewRandomGaussian(std float64, seed uint64) *RandomGaussian {
	return attack.NewRandomGaussian(std, seed)
}

// AttackNames lists the behaviour names AttackByName accepts.
func AttackNames() []string { return attack.Names() }

// AttackByName returns a per-node factory for the named behaviour, so
// command-line flags and configs arm deployments without switch
// statements. The factory takes the node index, ensuring stateful attacks
// don't share generators. Specs accept parameters after a colon:
//
//	signflip               sign-flip at the default scale
//	alie:z=1.2             A-Little-Is-Enough with explicit z
//	stale:age=10           replay vectors 10 steps old
//
// See AttackNames for the registry contents.
func AttackByName(name string, seed uint64) (func(i int) Attack, error) {
	return attack.FromSpec(name, seed)
}
