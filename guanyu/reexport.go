package guanyu

import (
	"repro/internal/compress"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Compression is a validated wire-compression configuration; build one from
// a spec string with ParseCompression (schemes: none, float32, delta,
// delta:key=N, topk:k=F) and install it with WithCompression or
// NodeConfig.Compression.
type Compression = compress.Config

// ParseCompression parses a compression spec string ("none", "float32",
// "delta", "delta:key=8", "topk:k=0.01", ...). The empty string means none.
func ParseCompression(spec string) (Compression, error) {
	return compress.ParseSpec(spec)
}

// Suspicion accumulates per-sender exclusion statistics from selective
// aggregation rules: repeatedly excluded senders are likely Byzantine. Share
// one across a Live deployment with WithSuspicion and read
// Suspicion.Ranking after the run.
type Suspicion = stats.Suspicion

// SuspicionRank is one row of Suspicion.Ranking.
type SuspicionRank = stats.SuspicionRank

// NewSuspicion builds an empty accountability accumulator.
func NewSuspicion() *Suspicion { return stats.NewSuspicion() }

// DelayFunc returns the artificial delivery delay for a message between two
// named nodes; install one with WithDelay to inject asynchrony into the
// Live in-process network.
type DelayFunc = transport.DelayFunc

// LatencyModel samples per-message network delays: a base latency,
// log-normal jitter, bandwidth cost, and optional per-node slowdowns
// (stragglers).
type LatencyModel = transport.LatencyModel

// NewLatencyModel builds a latency model. base is the one-way latency in
// seconds, jitterSigma the log-normal σ of its multiplicative jitter,
// bytesPerSecond the link bandwidth (0 = infinite).
func NewLatencyModel(base, jitterSigma, bytesPerSecond float64, seed uint64) *LatencyModel {
	return transport.NewLatencyModel(base, jitterSigma, bytesPerSecond, seed)
}

// ServerID returns the canonical network ID of parameter server i ("ps<i>"),
// shared by both runtimes so logs, attacks and address books line up.
func ServerID(i int) string { return serverID(i) }

// WorkerID returns the canonical network ID of worker j ("wrk<j>").
func WorkerID(j int) string { return workerID(j) }
