package guanyu

import (
	"time"

	"repro/internal/stats"
)

// Series is an accuracy-over-training curve; Point is one sample of it.
// (Re-exported from the measurement layer so results are self-contained.)
type Series = stats.Series

// Point is one sample of a Series.
type Point = stats.Point

// AlignmentRecord is one Table-2 probe: the cosine alignment between honest
// servers' parameter vectors at a step.
type AlignmentRecord = stats.AlignmentRecord

// Result is the outcome of one deployment run, under either runtime.
// Sim-only fields are zero after Live runs and vice versa.
type Result struct {
	// Runtime names the runner that produced the result ("sim" or "live").
	Runtime string
	// Final is the coordinate-wise median of the honest servers' final
	// parameter vectors — the model θ̄ the paper's convergence statement
	// (Eq. 1) is about.
	Final []float64
	// FinalAccuracy is the test accuracy of Final (0 when the workload has
	// no test set).
	FinalAccuracy float64
	// Updates is the number of model updates performed.
	Updates int

	// Curve is the accuracy-vs-(updates, virtual time) series. Sim only.
	Curve *Series
	// Alignments are the Table-2 probe records (see WithAlignmentProbe).
	// Sim only.
	Alignments []AlignmentRecord
	// VirtualTime is the total virtual seconds consumed. Sim only.
	VirtualTime float64

	// ServerParams maps honest server index → final parameter vector.
	// Live only.
	ServerParams map[int][]float64
	// WallTime is the real elapsed time of the run. Live only.
	WallTime time.Duration

	// DroppedOverflow totals the frames shed by bounded mailboxes across
	// the deployment — inbound per-sender evictions plus outbound courier
	// evictions. Live only; zero when nothing overflowed.
	DroppedOverflow uint64
	// DroppedClosed totals frames that arrived at nodes after they had
	// shut down (senders outliving receivers). Live only.
	DroppedClosed uint64
	// ForgedDropped totals inbound frames dropped because their From
	// field disagreed with the connection's hello-authenticated identity.
	// Live TCP only.
	ForgedDropped uint64
	// DroppedUnnegotiated totals inbound compressed frames dropped for
	// using a scheme their sender never negotiated. Live TCP only.
	DroppedUnnegotiated uint64
	// ChurnRestarted reports that the WithRejoin victim was actually
	// killed and came back through checkpoint + median rejoin (false when
	// the run outran the kill, or no rejoin cycle was armed). Live only.
	ChurnRestarted bool
}

// CurveTable renders the convergence curve as the experiment harness's
// plain-text table ("" when the run produced no curve). timeAxis selects
// virtual time instead of update count as the x column.
func (r *Result) CurveTable(title string, timeAxis bool) string {
	if r.Curve == nil {
		return ""
	}
	xLabel := "updates"
	if timeAxis {
		xLabel = "time(s)"
	}
	return stats.FormatSeriesTable(title, xLabel, []*Series{r.Curve}, timeAxis)
}

// FormatCurves renders several runs' curves side by side, the way the
// paper's figure legends group systems.
func FormatCurves(title, xLabel string, curves []*Series, timeAxis bool) string {
	return stats.FormatSeriesTable(title, xLabel, curves, timeAxis)
}

// FormatAlignments renders Table-2 probe records.
func FormatAlignments(records []AlignmentRecord) string {
	return stats.FormatAlignmentTable(records)
}
