package guanyu_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/guanyu"
)

// TestWithMailboxValidation: the mailbox bound is a wire concern, so it is
// Live-only, and a non-positive cap or unknown policy is rejected at build
// time, not at run time.
func TestWithMailboxValidation(t *testing.T) {
	if _, err := guanyu.New(quickOpts(
		guanyu.WithMailbox(64, guanyu.DropOldest))...); err == nil ||
		!strings.Contains(err.Error(), "Live") {
		t.Fatalf("WithMailbox under the Sim default: %v, want a Live-only error", err)
	}
	if _, err := guanyu.New(quickOpts(guanyu.WithRuntime(guanyu.Live),
		guanyu.WithMailbox(0, guanyu.DropOldest))...); err == nil {
		t.Fatal("WithMailbox(0, ...) accepted")
	}
	if _, err := guanyu.New(quickOpts(guanyu.WithRuntime(guanyu.Live),
		guanyu.WithMailboxSpec("lossy:cap=4"))...); err == nil {
		t.Fatal("unknown mailbox policy accepted")
	}
	if _, err := guanyu.New(quickOpts(guanyu.WithRuntime(guanyu.Live),
		guanyu.WithMailboxSpec("none"))...); err != nil {
		t.Fatalf("\"none\" spec must keep the unbounded default: %v", err)
	}
	if _, err := guanyu.New(quickOpts(guanyu.WithRuntime(guanyu.Live),
		guanyu.WithMailboxSpec("backpressure:cap=32"))...); err != nil {
		t.Fatalf("valid bounded spec rejected: %v", err)
	}
}

// TestLiveBoundedMailboxThroughBuilder runs the quick deployment with the
// actor runtime armed — bounded inbound mailboxes and per-link couriers —
// and the run must converge exactly like the unbounded one: the quick
// schedule never overflows, so the bound is invisible.
func TestLiveBoundedMailboxThroughBuilder(t *testing.T) {
	d, err := guanyu.New(quickOpts(
		guanyu.WithRuntime(guanyu.Live),
		guanyu.WithMailbox(64, guanyu.DropOldest),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !guanyu.IsFinite(res.Final) {
		t.Fatal("non-finite final parameters")
	}
	if res.FinalAccuracy < 0.8 {
		t.Fatalf("bounded live run failed to converge: accuracy %.3f", res.FinalAccuracy)
	}
}

// TestLiveTCPBoundedMailboxThroughBuilder is the same check over real
// loopback sockets: SetMailbox on every node plus couriers on the honest
// endpoints, through the public option.
func TestLiveTCPBoundedMailboxThroughBuilder(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 12 TCP nodes")
	}
	d, err := guanyu.New(quickOpts(
		guanyu.WithRuntime(guanyu.Live),
		guanyu.WithTCPTransport(),
		guanyu.WithMailboxSpec("backpressure:cap=64"),
		guanyu.WithSteps(8),
		guanyu.WithTimeout(2*time.Minute),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ServerParams) == 0 {
		t.Fatal("no honest server results")
	}
	if !guanyu.IsFinite(res.Final) {
		t.Fatal("non-finite final parameters")
	}
}
