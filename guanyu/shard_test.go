package guanyu_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/guanyu"
)

// TestWithShardSizeValidation: sharding is a wire concern, so a positive
// size is Live-only, while n ≤ 0 means "whole-vector framing" and is
// accepted anywhere (per the option's documented contract).
func TestWithShardSizeValidation(t *testing.T) {
	if _, err := guanyu.New(quickOpts(guanyu.WithShardSize(64))...); err == nil ||
		!strings.Contains(err.Error(), "Live") {
		t.Fatalf("WithShardSize under the Sim default: %v, want a Live-only error", err)
	}
	if _, err := guanyu.New(quickOpts(guanyu.WithShardSize(-1))...); err != nil {
		t.Fatalf("WithShardSize(-1) must degrade to whole-vector framing, got %v", err)
	}
	if _, err := guanyu.New(quickOpts(guanyu.WithShardSize(0),
		guanyu.WithRuntime(guanyu.Live))...); err != nil {
		t.Fatalf("WithShardSize(0) under Live: %v", err)
	}
}

// TestLiveShardedThroughBuilder runs the same quick deployment with the
// wire sharded at a prime width that does not divide the model dimension:
// the façade plumbs the option through the in-process Live runtime and
// the run converges exactly like the whole-vector one.
func TestLiveShardedThroughBuilder(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full live deployment")
	}
	d, err := guanyu.New(quickOpts(
		guanyu.WithRuntime(guanyu.Live),
		guanyu.WithShardSize(13),
		guanyu.WithTimeout(2*time.Minute),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Final) == 0 || !guanyu.IsFinite(res.Final) {
		t.Fatalf("bad final vector (len %d)", len(res.Final))
	}
	if res.FinalAccuracy < 0.5 {
		t.Fatalf("final accuracy %.3f, want ≥ 0.5 despite 1 Byzantine worker", res.FinalAccuracy)
	}
}
