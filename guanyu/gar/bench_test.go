package gar_test

import (
	"context"
	"testing"

	"repro/guanyu"
	"repro/guanyu/gar"
)

// The redesigned Aggregate(ctx, dst, inputs) contract exists so the server
// hot loop aggregates without allocating. These benchmarks assert that
// property: mean and coordinate-median must be exactly zero-alloc on a
// 10k-dimensional vector once dst and scratch are warm.

const (
	allocDim = 10_000
	allocN   = 13 // the paper's gradient quorum q̄ = 2·5+3
)

func benchInputs() [][]float64 {
	vs := make([][]float64, allocN)
	for i := range vs {
		vs[i] = make([]float64, allocDim)
		for j := range vs[i] {
			vs[i][j] = float64((i+1)*(j+3)%97) / 7
		}
	}
	return vs
}

func assertZeroAlloc(b *testing.B, name string) {
	b.Helper()
	r := gar.MustNew(name, gar.Params{F: 5, Inputs: allocN})
	inputs := benchInputs()
	dst := make([]float64, allocDim)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := r.Aggregate(ctx, dst, inputs); err != nil {
			b.Fatal(err)
		}
	})
	if allocs != 0 {
		b.Fatalf("%s: Aggregate allocated %.1f times per run, want 0", name, allocs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Aggregate(ctx, dst, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateMeanZeroAlloc10k(b *testing.B) {
	assertZeroAlloc(b, "mean")
}

func BenchmarkAggregateMedianZeroAlloc10k(b *testing.B) {
	assertZeroAlloc(b, "coordinate-median")
}

// TestAggregateZeroAlloc runs the same assertion under `go test` so the
// zero-alloc property is enforced by the tier-1 suite, not only when
// benchmarks are invoked. It asserts the property at parallelism 1 AND at
// parallelism 4: the coordinate chunks of mean and coordinate-median
// dispatch through a reusable worker-pool Runner precisely so the hot
// aggregation loop stays allocation-free on multicore machines too.
func TestAggregateZeroAlloc(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prev := guanyu.SetParallelism(workers)
		for _, name := range []string{"mean", "coordinate-median"} {
			r := gar.MustNew(name, gar.Params{F: 5, Inputs: allocN})
			inputs := benchInputs()
			dst := make([]float64, allocDim)
			ctx := context.Background()
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := r.Aggregate(ctx, dst, inputs); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s (parallelism %d): Aggregate allocated %.1f times per run, want 0",
					name, workers, allocs)
			}
		}
		guanyu.SetParallelism(prev)
	}
}

// TestAggregateBitIdenticalAcrossParallelism pins the determinism contract
// of the public rules: any worker count produces exactly the serial result.
func TestAggregateBitIdenticalAcrossParallelism(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"mean", "coordinate-median"} {
		inputs := benchInputs()
		prev := guanyu.SetParallelism(1)
		r := gar.MustNew(name, gar.Params{F: 5, Inputs: allocN})
		want := make([]float64, allocDim)
		if _, err := r.Aggregate(ctx, want, inputs); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			guanyu.SetParallelism(workers)
			r := gar.MustNew(name, gar.Params{F: 5, Inputs: allocN})
			got := make([]float64, allocDim)
			if _, err := r.Aggregate(ctx, got, inputs); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: parallelism %d changed coordinate %d: %v vs %v",
						name, workers, i, got[i], want[i])
				}
			}
		}
		guanyu.SetParallelism(prev)
	}
}
