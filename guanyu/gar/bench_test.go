package gar_test

import (
	"context"
	"testing"

	"repro/guanyu/gar"
)

// The redesigned Aggregate(ctx, dst, inputs) contract exists so the server
// hot loop aggregates without allocating. These benchmarks assert that
// property: mean and coordinate-median must be exactly zero-alloc on a
// 10k-dimensional vector once dst and scratch are warm.

const (
	allocDim = 10_000
	allocN   = 13 // the paper's gradient quorum q̄ = 2·5+3
)

func benchInputs() [][]float64 {
	vs := make([][]float64, allocN)
	for i := range vs {
		vs[i] = make([]float64, allocDim)
		for j := range vs[i] {
			vs[i][j] = float64((i+1)*(j+3)%97) / 7
		}
	}
	return vs
}

func assertZeroAlloc(b *testing.B, name string) {
	b.Helper()
	r := gar.MustNew(name, gar.Params{F: 5, Inputs: allocN})
	inputs := benchInputs()
	dst := make([]float64, allocDim)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := r.Aggregate(ctx, dst, inputs); err != nil {
			b.Fatal(err)
		}
	})
	if allocs != 0 {
		b.Fatalf("%s: Aggregate allocated %.1f times per run, want 0", name, allocs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Aggregate(ctx, dst, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateMeanZeroAlloc10k(b *testing.B) {
	assertZeroAlloc(b, "mean")
}

func BenchmarkAggregateMedianZeroAlloc10k(b *testing.B) {
	assertZeroAlloc(b, "coordinate-median")
}

// TestAggregateZeroAlloc runs the same assertion under `go test` so the
// zero-alloc property is enforced by the tier-1 suite, not only when
// benchmarks are invoked.
func TestAggregateZeroAlloc(t *testing.T) {
	for _, name := range []string{"mean", "coordinate-median"} {
		r := gar.MustNew(name, gar.Params{F: 5, Inputs: allocN})
		inputs := benchInputs()
		dst := make([]float64, allocDim)
		ctx := context.Background()
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := r.Aggregate(ctx, dst, inputs); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: Aggregate allocated %.1f times per run, want 0", name, allocs)
		}
	}
}
