package gar

import igar "repro/internal/gar"

// This file is the authoritative statement of GuanYu's legality bounds
// (Section 3.2 of the paper). Every other statement in the repository —
// the internal/gar validators and registry, the deployment builder, and
// DESIGN.md — enforces or quotes exactly these bounds:
//
//	n  ≥ 3f+3    parameter servers, f Byzantine
//	n̄  ≥ 3f̄+3    workers, f̄ Byzantine
//	2f+3 ≤ q ≤ n−f      quorum for the coordinate-wise median M
//	2f̄+3 ≤ q̄ ≤ n̄−f̄      quorum for Multi-Krum F
//
// and, per aggregation rule, the input-cardinality preconditions the
// registry checks at construction (see MinInputs):
//
//	n ≥ 2f+3    krum, multi-krum
//	n ≥ 2f+1    trimmed-mean
//	n ≥ 4f+3    bulyan
//	n ≥ f+1     mda
//
// The helpers are re-exported so deployment tooling outside this module
// can validate topologies against the same statement of the theory.

// CheckDeployment verifies the population bound n ≥ 3f+3 for one node role.
func CheckDeployment(role string, n, f int) error {
	return igar.CheckDeployment(role, n, f)
}

// CheckQuorum verifies 2f+3 ≤ q ≤ n−f for one node role.
func CheckQuorum(role string, n, f, q int) error {
	return igar.CheckQuorum(role, n, f, q)
}

// MinQuorum returns the smallest legal quorum 2f+3 for the given f.
func MinQuorum(f int) int { return igar.MinQuorum(f) }

// MaxQuorum returns the largest legal quorum n−f.
func MaxQuorum(n, f int) int { return igar.MaxQuorum(n, f) }

// MinPopulation returns the smallest legal population 3f+3 for the given f.
func MinPopulation(f int) int { return igar.MinPopulation(f) }

// BreakdownPoint returns the asymptotically optimal Byzantine fraction for
// asynchronous networks derived by the paper: 1/3.
func BreakdownPoint() float64 { return igar.BreakdownPoint() }
