package gar

import igar "repro/internal/gar"

// The theoretical preconditions of GuanYu (Section 3.2 of the paper),
// re-exported so deployment tooling outside this module can validate
// topologies against the same statement of the theory:
//
//	n  ≥ 3f+3    parameter servers, f Byzantine
//	n̄  ≥ 3f̄+3    workers, f̄ Byzantine
//	2f+3 ≤ q ≤ n−f      quorum for the coordinate-wise median M
//	2f̄+3 ≤ q̄ ≤ n̄−f̄      quorum for Multi-Krum F

// CheckDeployment verifies the population bound n ≥ 3f+3 for one node role.
func CheckDeployment(role string, n, f int) error {
	return igar.CheckDeployment(role, n, f)
}

// CheckQuorum verifies 2f+3 ≤ q ≤ n−f for one node role.
func CheckQuorum(role string, n, f, q int) error {
	return igar.CheckQuorum(role, n, f, q)
}

// MinQuorum returns the smallest legal quorum 2f+3 for the given f.
func MinQuorum(f int) int { return igar.MinQuorum(f) }

// MaxQuorum returns the largest legal quorum n−f.
func MaxQuorum(n, f int) int { return igar.MaxQuorum(n, f) }

// MinPopulation returns the smallest legal population 3f+3 for the given f.
func MinPopulation(f int) int { return igar.MinPopulation(f) }

// BreakdownPoint returns the asymptotically optimal Byzantine fraction for
// asynchronous networks derived by the paper: 1/3.
func BreakdownPoint() float64 { return igar.BreakdownPoint() }
