// Package gar is the public gradient-aggregation-rule API of the guanyu
// façade: the aggregation rules of "Genuinely Distributed Byzantine Machine
// Learning" (PODC 2020) behind one deployment-facing contract.
//
// A Rule combines n input vectors into one output vector and, when
// (α,f)-Byzantine resilient, tolerates f arbitrary inputs among them. The
// contract differs from a plain func in two ways that matter in the hot
// aggregation loop of a parameter server:
//
//   - Aggregate takes a caller-supplied destination slice, so steady-state
//     aggregation performs no allocations ("mean" and "coordinate-median"
//     are allocation-free after first use; see the AllocsPerRun benchmarks);
//   - Aggregate takes a context.Context, so a deployment being torn down
//     cancels in-flight aggregation at the next call boundary.
//
// Rules are constructed through a registry keyed by stable names
// ("multi-krum", "coordinate-median", ...) so command-line flags, experiment
// tables and deployment builders select rules without switch statements.
// The registry constructor is also where the theory's legality bounds
// surface: a rule built for declared Byzantine count f with a known input
// cardinality or node population fails construction when the bounds are
// violated. The authoritative statement of the bounds lives in bounds.go:
// rule inputs n ≥ 2f+3 (krum, multi-krum), n ≥ 2f+1 (trimmed-mean),
// n ≥ 4f+3 (bulyan), n ≥ f+1 (mda); deployment populations n ≥ 3f+3;
// quorums 2f+3 ≤ q ≤ n−f.
package gar

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	igar "repro/internal/gar"
	"repro/internal/parallel"
)

// Rule is a gradient aggregation rule.
//
// Rules constructed by this package may keep internal scratch buffers and
// are therefore not safe for concurrent use; construct one Rule per
// goroutine.
type Rule interface {
	// Name returns the name the rule was constructed under in the
	// registry, so New(name).Name() == name round-trips.
	Name() string
	// Aggregate combines the input vectors into dst and returns it. A nil
	// dst is allocated to the inputs' dimension; a non-nil dst must already
	// have that dimension. Inputs are not modified. Cancellation of ctx is
	// observed at call boundaries. An error is returned when the input set
	// violates the rule's resilience precondition.
	Aggregate(ctx context.Context, dst []float64, inputs [][]float64) ([]float64, error)
}

// ErrTooFewInputs is returned when a rule receives fewer inputs than its
// Byzantine-resilience precondition requires.
var ErrTooFewInputs = igar.ErrTooFewInputs

// ErrUnknownRule is returned by New for names absent from the registry.
var ErrUnknownRule = errors.New("gar: unknown rule")

// Params configures rule construction through the registry.
type Params struct {
	// F is the declared number of Byzantine inputs the rule must tolerate.
	F int
	// Inputs, when positive, is the cardinality of the input sets the rule
	// will aggregate (the quorum). Construction fails when it violates the
	// rule's precondition — n ≥ 2f+3 for krum/multi-krum, n ≥ 2f+1 for
	// trimmed-mean, n ≥ 4f+3 for bulyan, n ≥ f+1 for mda (the authoritative
	// statement lives in bounds.go).
	Inputs int
	// Deployment, when positive, is the node population the rule serves.
	// Construction fails when it violates the paper's deployment bound
	// n ≥ 3f+3.
	Deployment int
}

// Constructor builds a rule from Params. Third-party rules register one via
// Register.
type Constructor func(p Params) (Rule, error)

var (
	extraMu sync.RWMutex
	extra   = map[string]Constructor{}
)

// Register adds a rule constructor under the given name. It fails when the
// name collides with a built-in or previously registered rule.
func Register(name string, c Constructor) error {
	if name == "" || c == nil {
		return fmt.Errorf("gar: Register needs a name and a constructor")
	}
	if _, err := igar.LookupSpec(name); err == nil {
		return fmt.Errorf("gar: rule %q is a built-in", name)
	}
	extraMu.Lock()
	defer extraMu.Unlock()
	if _, dup := extra[name]; dup {
		return fmt.Errorf("gar: rule %q already registered", name)
	}
	extra[name] = c
	return nil
}

// Names lists every constructible rule name, sorted.
func Names() []string {
	names := igar.RuleNames()
	extraMu.RLock()
	for name := range extra {
		names = append(names, name)
	}
	extraMu.RUnlock()
	sort.Strings(names)
	return names
}

// New constructs the named rule. See Params for the legality checks
// performed at construction time.
func New(name string, p Params) (Rule, error) {
	if p.F < 0 {
		return nil, fmt.Errorf("gar: rule %q: negative f=%d", name, p.F)
	}
	spec, specErr := igar.LookupSpec(name)
	if specErr != nil {
		extraMu.RLock()
		c, ok := extra[name]
		extraMu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownRule, name, Names())
		}
		return c(p)
	}
	if p.Deployment > 0 {
		if err := igar.CheckDeployment("node", p.Deployment, p.F); err != nil {
			return nil, err
		}
	}
	if p.Inputs > 0 {
		if min := spec.MinInputs(p.F); p.Inputs < min {
			return nil, fmt.Errorf("%w: rule %q needs ≥ %d inputs with f=%d, got %d",
				ErrTooFewInputs, name, min, p.F, p.Inputs)
		}
	}
	switch name {
	case "mean":
		return newMeanRule(), nil
	case "coordinate-median":
		return newMedianRule(), nil
	default:
		return &adapted{name: name, rule: spec.New(p.F)}, nil
	}
}

// MustNew is New for statically known names; it panics on error.
func MustNew(name string, p Params) Rule {
	r, err := New(name, p)
	if err != nil {
		panic(err)
	}
	return r
}

// MinInputs returns the named built-in rule's input-cardinality
// precondition for declared f.
func MinInputs(name string, f int) (int, error) {
	return igar.MinInputs(name, f)
}

// prepareDst allocates dst when nil; inputs are validated by the kernels.
func prepareDst(dst []float64, inputs [][]float64) []float64 {
	if dst == nil && len(inputs) > 0 {
		dst = make([]float64, len(inputs[0]))
	}
	return dst
}

// Coordinate-chunk grains of the zero-alloc rules, mirroring the internal
// kernels: one chunk's compute must dominate pool-dispatch cost.
const (
	meanRuleGrain   = 1 << 12
	medianRuleGrain = 1 << 10
)

// meanRule is the allocation-free arithmetic mean. Large dimensions are
// aggregated in parallel coordinate chunks through a reusable
// parallel.Runner, so the steady-state path stays zero-alloc at any
// parallelism; per-coordinate addition order is fixed (input order), so the
// result is bit-identical to serial.
type meanRule struct {
	dst    []float64
	inputs [][]float64
	runner *parallel.Runner
}

func newMeanRule() *meanRule {
	r := &meanRule{}
	r.runner = parallel.NewRunner(func(_, lo, hi int) {
		igar.MeanChunkInto(r.dst, r.inputs, lo, hi)
	})
	return r
}

func (*meanRule) Name() string { return "mean" }

func (m *meanRule) Aggregate(ctx context.Context, dst []float64, inputs [][]float64) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dst = prepareDst(dst, inputs)
	if err := igar.CheckInto(dst, inputs); err != nil {
		return nil, err
	}
	m.dst, m.inputs = dst, inputs
	m.runner.Run(len(dst), meanRuleGrain)
	m.dst, m.inputs = nil, nil
	return dst, nil
}

// medianRule is the allocation-free coordinate-wise median. It reuses
// per-worker column scratch across calls (grown on demand) and dispatches
// coordinate chunks through a reusable parallel.Runner — which is what makes
// it zero-alloc in steady state and single-goroutine only.
type medianRule struct {
	dst    []float64
	inputs [][]float64
	cols   [][]float64
	runner *parallel.Runner
}

func newMedianRule() *medianRule {
	r := &medianRule{}
	r.runner = parallel.NewRunner(func(w, lo, hi int) {
		igar.MedianChunkInto(r.dst, r.cols[w], r.inputs, lo, hi)
	})
	return r
}

func (*medianRule) Name() string { return "coordinate-median" }

func (m *medianRule) Aggregate(ctx context.Context, dst []float64, inputs [][]float64) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dst = prepareDst(dst, inputs)
	if err := igar.CheckInto(dst, inputs); err != nil {
		return nil, err
	}
	n := len(inputs)
	// Single read of the worker count: the knob can move concurrently
	// (Deployment.Run restores it when finishing), and a second read below
	// it could shrink and make the grow length negative.
	if w := parallel.Workers(); len(m.cols) < w {
		m.cols = append(m.cols, make([][]float64, w-len(m.cols))...)
	}
	for w := range m.cols {
		if cap(m.cols[w]) < n {
			m.cols[w] = make([]float64, n)
		}
		m.cols[w] = m.cols[w][:n]
	}
	m.dst, m.inputs = dst, inputs
	m.runner.RunMax(len(dst), medianRuleGrain, len(m.cols))
	m.dst, m.inputs = nil, nil
	return dst, nil
}

// adapted lifts a classic allocate-and-return rule onto the public
// contract. The underlying rule allocates its output; the adapter copies it
// into dst when one is supplied.
type adapted struct {
	name string
	rule igar.Rule
}

func (a *adapted) Name() string { return a.name }

func (a *adapted) Aggregate(ctx context.Context, dst []float64, inputs [][]float64) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out, err := a.rule.Aggregate(inputs)
	if err != nil {
		return nil, err
	}
	if dst == nil {
		return out, nil
	}
	if len(dst) != len(out) {
		return nil, fmt.Errorf("gar: destination has dimension %d, rule produced %d",
			len(dst), len(out))
	}
	copy(dst, out)
	return dst, nil
}
