package gar_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/guanyu/gar"
)

var registerPickFirst sync.Once

func vectors(n, d int) [][]float64 {
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = make([]float64, d)
		for j := range vs[i] {
			vs[i][j] = float64(i*d + j)
		}
	}
	return vs
}

// TestRegistryRoundTrip: every registered name constructs, and the rule
// reports exactly the name it was constructed under.
func TestRegistryRoundTrip(t *testing.T) {
	names := gar.Names()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	for _, name := range names {
		r, err := gar.New(name, gar.Params{F: 1})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if r.Name() != name {
			t.Fatalf("New(%q).Name() = %q, want round-trip", name, r.Name())
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, err := gar.New("no-such-rule", gar.Params{}); !errors.Is(err, gar.ErrUnknownRule) {
		t.Fatalf("unknown rule: got %v, want ErrUnknownRule", err)
	}
}

func TestRegistryNegativeF(t *testing.T) {
	if _, err := gar.New("multi-krum", gar.Params{F: -1}); err == nil {
		t.Fatal("negative f accepted")
	}
}

// TestRegistryInputPreconditions: the rule-specific cardinality bounds
// surface at construction when Params.Inputs is declared.
func TestRegistryInputPreconditions(t *testing.T) {
	cases := []struct {
		name string
		f    int
		min  int
	}{
		{"krum", 2, 7},         // 2f+3
		{"multi-krum", 5, 13},  // 2f+3
		{"trimmed-mean", 3, 7}, // 2f+1
		{"bulyan", 1, 7},       // 4f+3
		{"mda", 4, 5},          // f+1
		{"mean", 0, 1},
		{"coordinate-median", 0, 1},
		{"geometric-median", 0, 1},
	}
	for _, tc := range cases {
		got, err := gar.MinInputs(tc.name, tc.f)
		if err != nil {
			t.Fatalf("MinInputs(%q): %v", tc.name, err)
		}
		if got != tc.min {
			t.Fatalf("MinInputs(%q, f=%d) = %d, want %d", tc.name, tc.f, got, tc.min)
		}
		if _, err := gar.New(tc.name, gar.Params{F: tc.f, Inputs: tc.min}); err != nil {
			t.Fatalf("New(%q, Inputs=%d) rejected the legal minimum: %v", tc.name, tc.min, err)
		}
		if tc.min > 1 {
			_, err := gar.New(tc.name, gar.Params{F: tc.f, Inputs: tc.min - 1})
			if !errors.Is(err, gar.ErrTooFewInputs) {
				t.Fatalf("New(%q, Inputs=%d): got %v, want ErrTooFewInputs", tc.name, tc.min-1, err)
			}
		}
	}
}

// TestRegistryDeploymentBound: the population bound n ≥ 3f+3 surfaces at
// construction when Params.Deployment is declared.
func TestRegistryDeploymentBound(t *testing.T) {
	if _, err := gar.New("multi-krum", gar.Params{F: 5, Deployment: 18}); err != nil {
		t.Fatalf("legal deployment (18 ≥ 3·5+3) rejected: %v", err)
	}
	if _, err := gar.New("multi-krum", gar.Params{F: 5, Deployment: 17}); err == nil {
		t.Fatal("deployment 17 < 3·5+3 accepted")
	}
	if err := gar.CheckDeployment("server", 6, 1); err != nil {
		t.Fatalf("CheckDeployment(6, 1): %v", err)
	}
	if err := gar.CheckDeployment("server", 5, 1); err == nil {
		t.Fatal("CheckDeployment(5, 1) accepted")
	}
	if err := gar.CheckQuorum("server", 6, 1, 5); err != nil {
		t.Fatalf("CheckQuorum(6, 1, 5): %v", err)
	}
	if err := gar.CheckQuorum("server", 6, 1, 6); err == nil {
		t.Fatal("CheckQuorum q > n−f accepted")
	}
}

// TestAggregateTooFewAtCallTime: the precondition also holds at Aggregate
// time, regardless of what was declared at construction.
func TestAggregateTooFewAtCallTime(t *testing.T) {
	r := gar.MustNew("multi-krum", gar.Params{F: 5})
	_, err := r.Aggregate(context.Background(), nil, vectors(6, 4))
	if !errors.Is(err, gar.ErrTooFewInputs) {
		t.Fatalf("got %v, want ErrTooFewInputs", err)
	}
}

// TestMeanMedianIntoDst: results land in the caller's slice and match the
// expected values.
func TestMeanMedianIntoDst(t *testing.T) {
	inputs := [][]float64{{1, 10}, {2, 20}, {6, 60}}
	dst := make([]float64, 2)

	mean := gar.MustNew("mean", gar.Params{})
	out, err := mean.Aggregate(context.Background(), dst, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &dst[0] {
		t.Fatal("mean did not aggregate into the supplied destination")
	}
	if got, want := out[0], 3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean[0] = %v, want %v", got, want)
	}

	med := gar.MustNew("coordinate-median", gar.Params{})
	out, err = med.Aggregate(context.Background(), dst, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out[1], 20.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("median[1] = %v, want %v", got, want)
	}
	// inputs must be left untouched by the scratch-based median.
	if inputs[0][0] != 1 || inputs[2][1] != 60 {
		t.Fatalf("median modified its inputs: %v", inputs)
	}
}

func TestAggregateNilDstAllocates(t *testing.T) {
	for _, name := range []string{"mean", "coordinate-median", "multi-krum"} {
		r := gar.MustNew(name, gar.Params{F: 1})
		out, err := r.Aggregate(context.Background(), nil, vectors(7, 3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) != 3 {
			t.Fatalf("%s: output dimension %d, want 3", name, len(out))
		}
	}
}

func TestAggregateDimensionMismatch(t *testing.T) {
	r := gar.MustNew("mean", gar.Params{})
	if _, err := r.Aggregate(context.Background(), make([]float64, 5), vectors(3, 4)); err == nil {
		t.Fatal("mismatched destination accepted")
	}
}

func TestAggregateHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range gar.Names() {
		r := gar.MustNew(name, gar.Params{F: 1})
		if _, err := r.Aggregate(ctx, nil, vectors(7, 3)); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: got %v, want context.Canceled", name, err)
		}
	}
}

// TestRegisterExternalRule: the registry accepts third-party constructors
// and rejects collisions.
func TestRegisterExternalRule(t *testing.T) {
	first := func(p gar.Params) (gar.Rule, error) { return pickFirst{}, nil }
	// Registration is global and permanent; -count>1 reruns this test
	// in one process, so only the first run performs it.
	registerPickFirst.Do(func() {
		if err := gar.Register("test-pick-first", first); err != nil {
			t.Fatal(err)
		}
	})
	if err := gar.Register("test-pick-first", first); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := gar.Register("mean", first); err == nil {
		t.Fatal("built-in shadowing accepted")
	}
	r, err := gar.New("test-pick-first", gar.Params{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Aggregate(context.Background(), nil, [][]float64{{4, 2}, {9, 9}})
	if err != nil || out[0] != 4 {
		t.Fatalf("external rule: out=%v err=%v", out, err)
	}
	found := false
	for _, n := range gar.Names() {
		if n == "test-pick-first" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names() does not list the registered rule")
	}
}

type pickFirst struct{}

func (pickFirst) Name() string { return "test-pick-first" }
func (pickFirst) Aggregate(ctx context.Context, dst []float64, inputs [][]float64) ([]float64, error) {
	// Honour the Rule contract's cancellation clause: registration is
	// global, so TestAggregateHonoursCancellation exercises this rule
	// too whenever it runs after TestRegisterExternalRule.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("empty")
	}
	if dst == nil {
		dst = make([]float64, len(inputs[0]))
	}
	copy(dst, inputs[0])
	return dst, nil
}
