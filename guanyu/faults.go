package guanyu

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/transport"
)

// FaultProfile parameterises seeded network fault injection: message
// drops, duplication, reordering, bounded delay spikes and temporary
// partitions. The zero value injects nothing. Every decision is a pure
// hash of (seed, step, sender, receiver), so a fault schedule reproduces
// bit-for-bit across reruns and at any parallelism. See
// transport.FaultConfig for field semantics.
type FaultProfile = transport.FaultConfig

// WithFaults injects the fault profile into the deployment's network:
//
//   - under Sim, drops and partition cuts turn into +Inf arrival times the
//     quorum discipline must absorb, and delay spikes stretch the virtual
//     clock (duplication and reordering are no-ops there — the simulator
//     dedups by construction and has no FIFO order to violate);
//   - under Live (in-process or TCP), every node's send path really
//     drops, duplicates, reorders and delays messages.
//
// Faults apply to honest traffic only: the adversary's covert network is
// ideal by assumption, so faulting it would weaken the threat model.
// Compose with WithDelay for background latency. A zero-valued profile is
// accepted and injects nothing.
func WithFaults(p FaultProfile) Option {
	return func(d *Deployment) error {
		d.faults = transport.NewFaultInjector(p)
		return nil
	}
}

// FaultNames lists the fault-profile names FaultsByName accepts.
func FaultNames() []string { return transport.FaultNames() }

// FaultsByName resolves a fault-profile spec — "name" or "name:k=v,..." —
// into a FaultProfile, mirroring AttackByName for the fault registry:
//
//	none                    no faults (the zero profile)
//	drop:p=0.05             5% seeded message loss
//	delay:p=0.2,spike=0.01  20% of messages spiked up to 10ms
//	partition:every=25,for=2  2-step partition every 25 steps
//	flaky / chaos           combined mild / heavy profiles
//
// The profile's Seed is set from the seed argument.
func FaultsByName(spec string, seed uint64) (FaultProfile, error) {
	name, params, err := attack.ParseSpec(spec)
	if err != nil {
		return FaultProfile{}, fmt.Errorf("guanyu: fault spec %q: %w", spec, err)
	}
	p, err := transport.FaultByName(name, params, seed)
	if err != nil {
		return FaultProfile{}, fmt.Errorf("guanyu: %w", err)
	}
	return p, nil
}
