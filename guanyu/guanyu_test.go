package guanyu_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/guanyu"
)

// quickOpts is the shared small deployment both runtimes execute: 6 servers
// (1 declared Byzantine), 6 workers (1 declared Byzantine, 1 actually
// Byzantine), blob workload.
func quickOpts(extra ...guanyu.Option) []guanyu.Option {
	opts := []guanyu.Option{
		guanyu.WithWorkload(guanyu.BlobWorkload(600, 7)),
		guanyu.WithServers(6, 1),
		guanyu.WithWorkers(6, 1),
		guanyu.WithRule("multi-krum"),
		guanyu.WithWorkerAttack(5, guanyu.SignFlip{Scale: 10}),
		guanyu.WithSteps(25),
		guanyu.WithBatch(8),
		guanyu.WithLR(guanyu.InverseTimeLR(0.2, 100)),
		guanyu.WithSeed(11),
	}
	return append(opts, extra...)
}

func TestNewRequiresWorkload(t *testing.T) {
	if _, err := guanyu.New(); err == nil || !strings.Contains(err.Error(), "workload") {
		t.Fatalf("missing workload: got %v", err)
	}
}

func TestNewValidatesTopology(t *testing.T) {
	base := guanyu.WithWorkload(guanyu.BlobWorkload(200, 1))
	cases := map[string][]guanyu.Option{
		"servers below 3f+3":  {base, guanyu.WithServers(5, 1)},
		"workers below 3f+3":  {base, guanyu.WithWorkers(17, 5)},
		"quorum above n-f":    {base, guanyu.WithServers(6, 1), guanyu.WithQuorums(6, 0)},
		"unknown rule":        {base, guanyu.WithRule("no-such-rule")},
		"unknown param rule":  {base, guanyu.WithParamRule("no-such-rule")},
		"zero steps":          {base, guanyu.WithSteps(0)},
		"vanilla live":        {base, guanyu.WithVanilla(), guanyu.WithRuntime(guanyu.Live)},
		"tcp without live":    {base, guanyu.WithTCPTransport()},
		"attack out of range": {base, guanyu.WithWorkerAttack(99, guanyu.Zero{})},
		"all servers byz": {base, guanyu.WithServers(6, 1),
			guanyu.WithAttackedServers(6, func(int) guanyu.Attack { return guanyu.Zero{} })},
		// Bulyan needs n ≥ 4f+3 = 23 inputs at f̄=5, more than the paper
		// deployment's minimum gradient quorum q̄ = 13: New must reject it
		// instead of handing back a Deployment that fails its first step.
		"rule illegal at quorum": {base, guanyu.WithRule("bulyan")},
	}
	for name, opts := range cases {
		if _, err := guanyu.New(opts...); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNewAppliesPaperDefaults(t *testing.T) {
	d, err := guanyu.New(guanyu.WithWorkload(guanyu.BlobWorkload(200, 1)))
	if err != nil {
		t.Fatalf("paper-scale defaults rejected: %v", err)
	}
	if d.Runtime() != guanyu.Sim {
		t.Fatalf("default runtime = %v, want Sim", d.Runtime())
	}
}

// TestSimAndLiveRunTheSameBuilder is the façade's core promise: one
// deployment description, two runtimes.
func TestSimAndLiveRunTheSameBuilder(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full deployments")
	}
	for _, rt := range []guanyu.Runner{guanyu.Sim, guanyu.Live} {
		d, err := guanyu.New(quickOpts(guanyu.WithRuntime(rt), guanyu.WithTimeout(2*time.Minute))...)
		if err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		res, err := d.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		if res.Runtime != rt.String() {
			t.Errorf("%s: result runtime %q", rt, res.Runtime)
		}
		if len(res.Final) == 0 || !guanyu.IsFinite(res.Final) {
			t.Errorf("%s: bad final vector (len %d)", rt, len(res.Final))
		}
		if res.FinalAccuracy < 0.5 {
			t.Errorf("%s: final accuracy %.3f, want ≥ 0.5 despite 1 Byzantine worker",
				rt, res.FinalAccuracy)
		}
		if rt == guanyu.Sim && (res.Curve == nil || len(res.Curve.Points) == 0) {
			t.Errorf("sim: no convergence curve")
		}
		if rt == guanyu.Live && res.WallTime <= 0 {
			t.Errorf("live: no wall time recorded")
		}
	}
}

func TestSimIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two simulations")
	}
	run := func() *guanyu.Result {
		d, err := guanyu.New(quickOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Final) != len(b.Final) {
		t.Fatalf("dimension mismatch: %d vs %d", len(a.Final), len(b.Final))
	}
	for i := range a.Final {
		if a.Final[i] != b.Final[i] {
			t.Fatalf("coordinate %d differs: %v vs %v", i, a.Final[i], b.Final[i])
		}
	}
}

func TestDeploymentIsReusable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two simulations")
	}
	d, err := guanyu.New(quickOpts(guanyu.WithSteps(10))...)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.FinalAccuracy != r2.FinalAccuracy {
		t.Fatalf("re-running a deployment diverged: %v vs %v", r1.FinalAccuracy, r2.FinalAccuracy)
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, rt := range []guanyu.Runner{guanyu.Sim, guanyu.Live} {
		d, err := guanyu.New(quickOpts(guanyu.WithRuntime(rt), guanyu.WithTimeout(time.Minute))...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(ctx); err == nil {
			t.Errorf("%s: cancelled run returned nil error", rt)
		}
	}
}

func TestVanillaBaselineThroughBuilder(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	d, err := guanyu.New(
		guanyu.WithWorkload(guanyu.BlobWorkload(600, 3)),
		guanyu.WithVanilla(),
		guanyu.WithOptimizedRuntime(),
		guanyu.WithWorkers(6, 0),
		guanyu.WithSteps(20),
		guanyu.WithBatch(8),
		guanyu.WithLR(guanyu.InverseTimeLR(0.2, 100)),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve == nil || !strings.Contains(res.Curve.Name, "vanilla") {
		t.Fatalf("vanilla curve name: %+v", res.Curve)
	}
}

// TestLiveTCPThroughBuilder runs the same builder deployment over real
// loopback sockets.
func TestLiveTCPThroughBuilder(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 12 TCP nodes")
	}
	d, err := guanyu.New(quickOpts(
		guanyu.WithRuntime(guanyu.Live),
		guanyu.WithTCPTransport(),
		guanyu.WithSteps(8),
		guanyu.WithTimeout(2*time.Minute),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ServerParams) == 0 {
		t.Fatal("no honest server results")
	}
	if !guanyu.IsFinite(res.Final) {
		t.Fatal("non-finite final parameters")
	}
}

// TestLiveTCPCancellationMidRun cancels a TCP deployment mid-run: the
// watcher and the deferred cleanup then race to close the same sockets,
// which must be safe, and the run must surface the context's error.
func TestLiveTCPCancellationMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 12 TCP nodes")
	}
	d, err := guanyu.New(quickOpts(
		guanyu.WithRuntime(guanyu.Live),
		guanyu.WithTCPTransport(),
		guanyu.WithSteps(500),
		guanyu.WithTimeout(30*time.Second),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if _, err := d.Run(ctx); err == nil {
		t.Fatal("cancelled TCP run returned nil error")
	}
}

// TestSuspicionSurfacesByzantineWorker exercises the accountability path
// through the façade.
func TestSuspicionSurfacesByzantineWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a live deployment")
	}
	susp := guanyu.NewSuspicion()
	lat := guanyu.NewLatencyModel(200e-6, 1.0, 0, 13)
	d, err := guanyu.New(quickOpts(
		guanyu.WithRuntime(guanyu.Live),
		guanyu.WithWorkers(9, 2),
		guanyu.WithWorkerAttack(7, guanyu.ScaledNorm{Factor: 1e5}),
		guanyu.WithSuspicion(susp),
		guanyu.WithDelay(lat.DelayFunc(0, 1)),
		guanyu.WithTimeout(2*time.Minute),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ranking := susp.Ranking()
	if len(ranking) == 0 {
		t.Fatal("no suspicion observations")
	}
	// Workers 5 (from quickOpts) and 7 are the actually Byzantine ones.
	if got := ranking[0].Sender; got != guanyu.WorkerID(7) && got != guanyu.WorkerID(5) {
		t.Logf("ranking: %+v", ranking)
		t.Errorf("top suspect = %s, want a Byzantine worker (wrk5 or wrk7)", got)
	}
}
