// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (see the experiment index in DESIGN.md), plus
// micro-benchmarks of the kernels on the paper's critical path.
//
// The macro benchmarks drive the public guanyu façade — the same API the
// commands and examples use. The kernel micro-benchmarks at the bottom
// reach into internal/ deliberately: they measure building blocks the
// façade does not (and should not) re-export.
//
// The macro benchmarks report domain metrics via b.ReportMetric (final
// accuracy, overhead percentages, drift ratios) so `go test -bench` output
// doubles as the measured column of EXPERIMENTS.md (see its "Measured
// column" section; the "Experiment index" section maps each benchmark to
// its experiment id and the paper's expected value).
//
// The kernel micro-benchmarks come in Serial/Parallel pairs pinned to
// parallelism 1 and the machine's CPU count, so the speedup of the worker
// pool is measured, not claimed — and the unsuffixed originals keep
// measuring the ambient default. Parallelism never changes results (see
// guanyu.SetParallelism), only wall-clock.
package repro_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"testing"

	"repro/guanyu"
	pgar "repro/guanyu/gar"

	"repro/internal/attack"
	"repro/internal/compress"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// benchScale keeps each macro-benchmark iteration around a second on a
// single CPU. Use cmd/guanyu-bench -full for paper-leaning run lengths.
var benchScale = guanyu.ExperimentScale{Steps: 30, Batch: 8, SmallBatch: 4, Examples: 400, Seed: 42}

// ---------------------------------------------------------------------------
// Macro benchmarks: one per experiment id, through the public façade.
// ---------------------------------------------------------------------------

// BenchmarkTable1ModelBuild regenerates Table 1 (CNN architecture).
func BenchmarkTable1ModelBuild(b *testing.B) {
	var params int
	for i := 0; i < b.N; i++ {
		m := nn.NewCIFARNet(tensor.NewRNG(1))
		params = m.ParamCount()
	}
	b.ReportMetric(float64(params), "params")
}

// BenchmarkFig3aConvergencePerUpdate regenerates Figure 3(a)/(c): the five
// systems' accuracy per model update.
func BenchmarkFig3aConvergencePerUpdate(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		r, err := guanyu.Fig3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		final = r.LargeBatch[len(r.LargeBatch)-1].FinalAccuracy()
	}
	b.ReportMetric(final, "final-acc")
}

// BenchmarkFig3bConvergencePerTime regenerates Figure 3(b)/(d): the same
// systems against the virtual-time axis; the reported metric is the ratio of
// GuanYu(5,1) virtual time to vanilla TF virtual time for the same steps.
func BenchmarkFig3bConvergencePerTime(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := guanyu.Fig3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		curves := r.LargeBatch
		tTF := curves[0].Points[len(curves[0].Points)-1].Time
		tGY := curves[4].Points[len(curves[4].Points)-1].Time
		ratio = tGY / tTF
	}
	b.ReportMetric(ratio, "time-ratio")
}

// BenchmarkFig4ByzantineImpact regenerates Figure 4; the metric is the
// accuracy gap between GuanYu-under-attack and vanilla-under-attack.
func BenchmarkFig4ByzantineImpact(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := guanyu.Fig4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		gap = r.GuanYuByzantine.FinalAccuracy() - r.VanillaByzantine.FinalAccuracy()
	}
	b.ReportMetric(gap, "acc-gap")
}

// BenchmarkTable2Alignment regenerates Table 2; the metric is the mean
// cos φ over the recorded probes (paper: ≈ 0.98–0.99).
func BenchmarkTable2Alignment(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		recs, err := guanyu.Table2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) == 0 {
			b.Fatal("no alignment records")
		}
		var s float64
		for _, r := range recs {
			s += r.CosPhi
		}
		mean = s / float64(len(recs))
	}
	b.ReportMetric(mean, "mean-cos-phi")
}

// BenchmarkOverheadBreakdown regenerates the Section-5.3 numbers.
func BenchmarkOverheadBreakdown(b *testing.B) {
	var runtimePct, byzPct float64
	for i := 0; i < b.N; i++ {
		r, err := guanyu.Overhead(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		runtimePct, byzPct = r.RuntimeOverheadPct, r.ByzantineOverheadPct
	}
	b.ReportMetric(runtimePct, "runtime-overhead-%")
	b.ReportMetric(byzPct, "byz-overhead-%")
}

// BenchmarkContraction is the phase-3 ablation; metric: drift ratio
// (no-exchange / exchange).
func BenchmarkContraction(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := guanyu.Contraction(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.DriftWithout / r.DriftWith
	}
	b.ReportMetric(ratio, "drift-ratio")
}

// BenchmarkQuorumSweep is the declared-f̄ trade-off sweep; metric: throughput
// loss factor between f̄=0 and f̄=5.
func BenchmarkQuorumSweep(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		rows, err := guanyu.QuorumSweep(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		factor = rows[0].Throughput / rows[len(rows)-1].Throughput
	}
	b.ReportMetric(factor, "throughput-factor")
}

// BenchmarkGARAblation compares server-side rules under attack; metric: the
// accuracy margin of Multi-Krum over mean.
func BenchmarkGARAblation(b *testing.B) {
	var margin float64
	for i := 0; i < b.N; i++ {
		rows, err := guanyu.GARAblation(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]float64{}
		for _, r := range rows {
			byName[r.Rule] = r.FinalAccuracy
		}
		margin = byName["multi-krum(f=5)"] - byName["mean"]
	}
	b.ReportMetric(margin, "krum-margin")
}

// BenchmarkAsyncSweep varies the latency tail weight; metric: the virtual-
// time ratio between the heaviest-tailed and the deterministic network
// (accuracy should stay flat — checked in the experiments tests).
func BenchmarkAsyncSweep(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := guanyu.AsyncSweep(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[len(rows)-1].VirtualTime / rows[0].VirtualTime
	}
	b.ReportMetric(ratio, "time-ratio")
}

// ---------------------------------------------------------------------------
// Micro benchmarks: the public GAR contract at the paper's aggregation
// fan-in (q̄ = 13 gradients) and the tiny CNN dimension. Mean and
// coordinate-median run on the zero-alloc dst path; guanyu/gar's own
// benchmarks assert the allocation count.
// ---------------------------------------------------------------------------

func benchVectors(n, d int) [][]float64 {
	rng := tensor.NewRNG(7)
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = rng.NormVec(make([]float64, d), 0, 1)
	}
	return vs
}

func benchRule(b *testing.B, name string, f, n, d int) {
	b.Helper()
	r := pgar.MustNew(name, pgar.Params{F: f, Inputs: n})
	vs := benchVectors(n, d)
	dst := make([]float64, d)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Aggregate(ctx, dst, vs); err != nil {
			b.Fatal(err)
		}
	}
}

// withParallelism pins the kernel worker count for one benchmark: 1 for the
// Serial variants, 0 (= all CPUs) for the Parallel variants. The unsuffixed
// benchmarks run at the ambient default.
func withParallelism(b *testing.B, n int) {
	b.Helper()
	prev := guanyu.SetParallelism(n)
	b.Cleanup(func() { guanyu.SetParallelism(prev) })
}

func BenchmarkGARMean13x2726(b *testing.B)        { benchRule(b, "mean", 0, 13, 2726) }
func BenchmarkGARMedian13x2726(b *testing.B)      { benchRule(b, "coordinate-median", 0, 13, 2726) }
func BenchmarkGARMultiKrum13x2726(b *testing.B)   { benchRule(b, "multi-krum", 5, 13, 2726) }
func BenchmarkGARTrimmedMean13x2726(b *testing.B) { benchRule(b, "trimmed-mean", 5, 13, 2726) }
func BenchmarkGARBulyan23x2726(b *testing.B)      { benchRule(b, "bulyan", 5, 23, 2726) }

// Serial/parallel pairs for the aggregation rules at the paper's fan-in.
func BenchmarkGARMedian13x2726Serial(b *testing.B) {
	withParallelism(b, 1)
	benchRule(b, "coordinate-median", 0, 13, 2726)
}

func BenchmarkGARMedian13x2726Parallel(b *testing.B) {
	withParallelism(b, 0)
	benchRule(b, "coordinate-median", 0, 13, 2726)
}

func BenchmarkGARMultiKrum13x2726Serial(b *testing.B) {
	withParallelism(b, 1)
	benchRule(b, "multi-krum", 5, 13, 2726)
}

func BenchmarkGARMultiKrum13x2726Parallel(b *testing.B) {
	withParallelism(b, 0)
	benchRule(b, "multi-krum", 5, 13, 2726)
}

func BenchmarkGARTrimmedMean13x2726Serial(b *testing.B) {
	withParallelism(b, 1)
	benchRule(b, "trimmed-mean", 5, 13, 2726)
}

func BenchmarkGARTrimmedMean13x2726Parallel(b *testing.B) {
	withParallelism(b, 0)
	benchRule(b, "trimmed-mean", 5, 13, 2726)
}

func BenchmarkGARBulyan23x2726Serial(b *testing.B) {
	withParallelism(b, 1)
	benchRule(b, "bulyan", 5, 23, 2726)
}

func BenchmarkGARBulyan23x2726Parallel(b *testing.B) {
	withParallelism(b, 0)
	benchRule(b, "bulyan", 5, 23, 2726)
}

// benchGradientTinyConvNet measures the worker-side gradient estimation
// (batch of 16 on the harness CNN).
func benchGradientTinyConvNet(b *testing.B) {
	rng := tensor.NewRNG(9)
	m := nn.NewTinyConvNet(rng, 10)
	xs := make([][]float64, 16)
	labels := make([]int, 16)
	for i := range xs {
		xs[i] = rng.NormVec(make([]float64, 3*8*8), 0, 1)
		labels[i] = i % 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.BatchGradient(m, xs, labels)
	}
}

func BenchmarkGradientTinyConvNet(b *testing.B) { benchGradientTinyConvNet(b) }
func BenchmarkGradientTinyConvNetSerial(b *testing.B) {
	withParallelism(b, 1)
	benchGradientTinyConvNet(b)
}
func BenchmarkGradientTinyConvNetParallel(b *testing.B) {
	withParallelism(b, 0)
	benchGradientTinyConvNet(b)
}

// benchCIFARNetForward measures one forward pass of the full Table-1
// network (1.75M parameters).
func benchCIFARNetForward(b *testing.B) {
	rng := tensor.NewRNG(10)
	m := nn.NewCIFARNet(rng)
	x := rng.NormVec(make([]float64, 3*32*32), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkCIFARNetForward(b *testing.B)         { benchCIFARNetForward(b) }
func BenchmarkCIFARNetForwardSerial(b *testing.B)   { withParallelism(b, 1); benchCIFARNetForward(b) }
func BenchmarkCIFARNetForwardParallel(b *testing.B) { withParallelism(b, 0); benchCIFARNetForward(b) }

// ---------------------------------------------------------------------------
// Wire benchmarks: the transport codec on a full paper-scale payload
// (1,756,426 coordinates — the Table-1 model as one message). The binary
// codec must sustain ≥2× gob's encode+decode throughput with 0 allocs/op in
// steady state; the gob pair measures the retired wire format for the
// comparison (persistent encoder/decoder, type descriptors amortised, as
// the old TCP transport ran it). b.SetBytes makes `go test -bench Wire`
// report MB/s directly — the measured column of the `throughput` experiment.
// ---------------------------------------------------------------------------

// wireBenchMessage builds the paper-scale message the wire benchmarks ship.
func wireBenchMessage() transport.Message {
	rng := tensor.NewRNG(12)
	return transport.Message{
		From: "wrk12",
		Kind: transport.KindGradient,
		Step: 7,
		Vec:  rng.NormVec(make(tensor.Vector, 1756426), 0, 1),
	}
}

func BenchmarkWireEncodeBinary1756426(b *testing.B) {
	m := wireBenchMessage()
	buf, err := transport.AppendMessage(nil, &m)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = transport.AppendMessage(buf[:0], &m)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeBinary1756426(b *testing.B) {
	m := wireBenchMessage()
	frame, err := transport.AppendMessage(nil, &m)
	if err != nil {
		b.Fatal(err)
	}
	var out transport.Message
	if _, err := transport.DecodeMessage(frame, &out); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transport.DecodeMessage(frame, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeGob1756426(b *testing.B) {
	m := wireBenchMessage()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(&m); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := enc.Encode(&m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeGob1756426(b *testing.B) {
	m := wireBenchMessage()
	var prebuf bytes.Buffer
	enc := gob.NewEncoder(&prebuf)
	if err := enc.Encode(&m); err != nil { // first frame carries type info
		b.Fatal(err)
	}
	headerLen := prebuf.Len()
	if err := enc.Encode(&m); err != nil {
		b.Fatal(err)
	}
	frame := prebuf.Bytes()[headerLen:] // one steady-state frame
	header := prebuf.Bytes()[:headerLen]
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// A gob stream needs its type descriptors; replay them untimed so
		// the timed region is one message decode, matching the binary side.
		dec := gob.NewDecoder(bytes.NewReader(append(append([]byte(nil), header...), frame...)))
		var skip transport.Message
		if err := dec.Decode(&skip); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		var out transport.Message
		if err := dec.Decode(&out); err != nil {
			b.Fatal(err)
		}
	}
}

// wireBenchShardSize is the chunk width of the sharded wire benchmarks —
// the memory experiment's full-scale default (64 Ki coordinates, 512 KiB
// frames; 27 shards at the paper dimension).
const wireBenchShardSize = 1 << 16

// BenchmarkWireEncodeSharded1756426 encodes one paper-scale vector as its
// full chunk-frame stream (reused buffer, steady state) — the sharded
// counterpart of BenchmarkWireEncodeBinary1756426, so the per-frame
// header overhead of chunking is measured, not guessed.
func BenchmarkWireEncodeSharded1756426(b *testing.B) {
	m := wireBenchMessage()
	shards := transport.SplitMessage(m, wireBenchShardSize)
	var buf []byte
	total := 0
	for i := range shards {
		total += transport.EncodedSize(&shards[i])
	}
	b.SetBytes(int64(total))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		for s := range shards {
			var err error
			if buf, err = transport.AppendMessage(buf, &shards[s]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWireDecodeSharded1756426 decodes the full chunk-frame stream
// back into per-shard messages (reused decode target per the ownership
// contract).
func BenchmarkWireDecodeSharded1756426(b *testing.B) {
	m := wireBenchMessage()
	var frames []byte
	for _, sm := range transport.SplitMessage(m, wireBenchShardSize) {
		var err error
		if frames, err = transport.AppendMessage(frames, &sm); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(frames)))
	b.ReportAllocs()
	b.ResetTimer()
	var out transport.Message
	for i := 0; i < b.N; i++ {
		off := 0
		for off < len(frames) {
			n, err := transport.DecodeMessage(frames[off:], &out)
			if err != nil {
				b.Fatal(err)
			}
			off += n
		}
	}
}

// ---------------------------------------------------------------------------
// Compressed-wire benchmarks: each compression scheme on the paper-scale
// payload, measured as the full hot path a live connection runs — payload
// codec plus frame codec. b.SetBytes is the LOGICAL raw volume (8 bytes ×
// 1,756,426 coordinates per vector), so the reported MB/s is raw-equivalent
// throughput and compares directly against the uncompressed Binary pair
// above; the wire-byte reduction itself is pinned by BENCH_wire.json.
// ---------------------------------------------------------------------------

// benchWireCompressEncode measures encode: payload compression into a
// reused buffer, then binary framing into a reused frame.
func benchWireCompressEncode(b *testing.B, spec string) {
	b.Helper()
	m := wireBenchMessage()
	cfg, err := compress.ParseSpec(spec)
	if err != nil {
		b.Fatal(err)
	}
	enc := compress.NewEncoder(cfg)
	var payload, frame []byte
	b.SetBytes(int64(8 * len(m.Vec)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, err = enc.Encode(payload[:0], uint8(m.Kind), int64(i), 0, m.Vec)
		if err != nil {
			b.Fatal(err)
		}
		cm := transport.Message{From: m.From, Kind: m.Kind, Step: i,
			Comp: transport.CompMeta{Scheme: uint8(cfg.Scheme), Dim: len(m.Vec), Data: payload}}
		if frame, err = transport.AppendMessage(frame[:0], &cm); err != nil {
			b.Fatal(err)
		}
	}
	_ = frame
}

// benchWireCompressDecode measures decode: binary frame parse, then payload
// expansion into a reused vector. Delta replays a keyframe+diff pair per
// iteration so the stateful diff path is the steady state measured, not
// the keyframe special case (SetBytes scales accordingly).
func benchWireCompressDecode(b *testing.B, spec string) {
	b.Helper()
	m := wireBenchMessage()
	cfg, err := compress.ParseSpec(spec)
	if err != nil {
		b.Fatal(err)
	}
	enc := compress.NewEncoder(cfg)
	steps := 1
	if cfg.Scheme == compress.Delta {
		steps = 2
	}
	var frames [][]byte
	for s := 0; s < steps; s++ {
		payload, err := enc.Encode(nil, uint8(m.Kind), int64(s), 0, m.Vec)
		if err != nil {
			b.Fatal(err)
		}
		cm := transport.Message{From: m.From, Kind: m.Kind, Step: s,
			Comp: transport.CompMeta{Scheme: uint8(cfg.Scheme), Dim: len(m.Vec), Data: payload}}
		frame, err := transport.AppendMessage(nil, &cm)
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, frame)
	}
	dec := compress.NewDecoder()
	var out transport.Message
	b.SetBytes(int64(8 * len(m.Vec) * steps))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, frame := range frames {
			if _, err := transport.DecodeMessage(frame, &out); err != nil {
				b.Fatal(err)
			}
			if err := transport.DecompressMessage(dec, &out); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkWireEncodeFloat321756426(b *testing.B) { benchWireCompressEncode(b, "float32") }
func BenchmarkWireDecodeFloat321756426(b *testing.B) { benchWireCompressDecode(b, "float32") }
func BenchmarkWireEncodeDelta1756426(b *testing.B)   { benchWireCompressEncode(b, "delta") }
func BenchmarkWireDecodeDelta1756426(b *testing.B)   { benchWireCompressDecode(b, "delta") }
func BenchmarkWireEncodeTopK1756426(b *testing.B)    { benchWireCompressEncode(b, "topk:k=0.01") }
func BenchmarkWireDecodeTopK1756426(b *testing.B)    { benchWireCompressDecode(b, "topk:k=0.01") }

// wireQuorumFeed builds the shared feed of the quorum benchmarks: n
// paper-scale vectors.
func wireQuorumFeed(n int) []tensor.Vector {
	rng := tensor.NewRNG(12)
	vecs := make([]tensor.Vector, n)
	for i := range vecs {
		vecs[i] = rng.NormVec(make(tensor.Vector, 1756426), 0, 1)
	}
	return vecs
}

// BenchmarkWireQuorumWhole1756426 replays an 8-sender, q=5 round through
// the whole-vector Collector; the peak-bytes metric is the O(q·d) buffer
// the sharded path exists to avoid.
func BenchmarkWireQuorumWhole1756426(b *testing.B) {
	vecs := wireQuorumFeed(8)
	peak := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := transport.NewChanNetwork(nil)
		recv, _ := net.Register("recv")
		for j := range vecs {
			ep, _ := net.Register(string(rune('a' + j)))
			_ = ep.Send("recv", transport.Message{Kind: transport.KindParams, Step: 0, Vec: vecs[j]})
		}
		col := transport.NewCollector(recv)
		if _, err := col.Collect(transport.KindParams, 0, 5, -1); err != nil {
			b.Fatal(err)
		}
		peak = col.PeakBytes()
		net.Close()
	}
	b.ReportMetric(float64(peak), "peak-bytes")
}

// BenchmarkWireQuorumSharded1756426 replays the identical round as
// round-robin chunk frames through the ShardCollector.
func BenchmarkWireQuorumSharded1756426(b *testing.B) {
	vecs := wireQuorumFeed(8)
	frames := make([][]transport.Message, len(vecs))
	for i := range vecs {
		frames[i] = transport.SplitMessage(transport.Message{
			Kind: transport.KindParams, Step: 0, Vec: vecs[i],
		}, wireBenchShardSize)
	}
	peak := 0
	fold := func(int, int, []string, []tensor.Vector) error { return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := transport.NewChanNetwork(nil)
		recv, _ := net.Register("recv")
		eps := make([]transport.Endpoint, len(vecs))
		for j := range vecs {
			eps[j], _ = net.Register(string(rune('a' + j)))
		}
		for s := 0; s < len(frames[0]); s++ {
			for j := range eps {
				_ = eps[j].Send("recv", frames[j][s])
			}
		}
		scol := transport.NewShardCollector(recv, transport.NewShardLayout(1756426, wireBenchShardSize))
		if _, err := scol.Collect(transport.KindParams, 0, 5, nil, "", false, fold, -1); err != nil {
			b.Fatal(err)
		}
		peak = scol.PeakBytes()
		net.Close()
	}
	b.ReportMetric(float64(peak), "peak-bytes")
}

// BenchmarkAttackCorrupt measures the per-message cost of the heaviest
// attack (fresh Gaussian vector per receiver).
func BenchmarkAttackCorrupt(b *testing.B) {
	a := attack.NewRandomGaussian(100, 1)
	honest := make(tensor.Vector, 2726)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Corrupt(honest, i, "ps0")
	}
}

// BenchmarkParamRoundTrip measures the model flatten/scatter pair every
// node performs each step.
func BenchmarkParamRoundTrip(b *testing.B) {
	m := nn.NewTinyConvNet(tensor.NewRNG(11), 10)
	theta := m.ParamVector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.SetParamVector(theta); err != nil {
			b.Fatal(err)
		}
		theta = m.ParamVector()
	}
}

// BenchmarkEndToEndGuanYuStepBlob measures one full simulated GuanYu step
// (6 servers, 6 workers) through the public deployment builder.
func BenchmarkEndToEndGuanYuStepBlob(b *testing.B) {
	d, err := guanyu.New(
		guanyu.WithWorkload(guanyu.BlobWorkload(300, 5)),
		guanyu.WithServers(6, 1),
		guanyu.WithWorkers(6, 1),
		guanyu.WithSteps(1),
		guanyu.WithBatch(8),
		guanyu.WithSeed(5),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Mailbox micro-benchmarks: the actor runtime's hot paths. Every frame a
// node receives crosses Put and Recv once; Overflow is the extra work a
// flooding peer forces per sprayed frame once its per-sender queue is full.
// ---------------------------------------------------------------------------

// BenchmarkMailboxPut measures the bare enqueue path under the unbounded
// default (no eviction branch taken). The box is drained off the clock so
// memory stays flat at any b.N.
func BenchmarkMailboxPut(b *testing.B) {
	box := transport.NewMailbox()
	m := transport.Message{From: "w", Kind: transport.KindGradient, Vec: tensor.Vector{1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		box.Put(m)
		if box.Len() >= 4096 {
			b.StopTimer()
			for box.Len() > 0 {
				box.Recv(0)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkMailboxRecv measures the dequeue path; the box is refilled off
// the clock.
func BenchmarkMailboxRecv(b *testing.B) {
	box := transport.NewMailbox()
	m := transport.Message{From: "w", Kind: transport.KindGradient, Vec: tensor.Vector{1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if box.Len() == 0 {
			b.StopTimer()
			for j := 0; j < 4096; j++ {
				box.Put(m)
			}
			b.StartTimer()
		}
		if _, ok := box.Recv(0); !ok {
			b.Fatal("empty recv")
		}
	}
}

// BenchmarkMailboxOverflow measures steady-state drop-oldest eviction: the
// sender's queue is pinned at its cap, so every Put unlinks that sender's
// oldest frame and enqueues the new one — O(1) by construction, and this
// benchmark is what holds that claim to a number.
func BenchmarkMailboxOverflow(b *testing.B) {
	box := transport.NewMailboxWith(transport.MailboxConfig{
		Cap: transport.DefaultMailboxCap, Policy: transport.DropOldest,
	})
	m := transport.Message{From: "flood", Kind: transport.KindGradient, Vec: tensor.Vector{1}}
	for i := 0; i < transport.DefaultMailboxCap; i++ {
		box.Put(m)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		box.Put(m)
	}
	if got := box.DroppedOverflow(); got != uint64(b.N) {
		b.Fatalf("DroppedOverflow = %d, want %d", got, b.N)
	}
}
