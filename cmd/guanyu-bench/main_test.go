package main

import (
	"strings"
	"testing"

	"repro/guanyu"
)

func TestListExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range guanyu.ExperimentIDs() {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("list missing %q:\n%s", id, out.String())
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1Experiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1756426") {
		t.Fatalf("table1 output missing param count:\n%s", out.String())
	}
}

func TestRunOneSmallExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiments")
	}
	tiny := guanyu.ExperimentScale{Steps: 20, Batch: 8, SmallBatch: 4, Examples: 300, Seed: 5}
	for _, id := range []string{"fig4", "contraction", "quorum"} {
		var out strings.Builder
		if err := guanyu.RunExperiment(id, tiny, &out); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}
