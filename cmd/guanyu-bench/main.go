// Command guanyu-bench regenerates the paper's evaluation: every table and
// figure of Section 5 plus the design-choice ablations listed in DESIGN.md.
//
// Usage:
//
//	guanyu-bench -exp all            # everything, CI scale
//	guanyu-bench -exp fig3 -full     # one experiment, paper-leaning scale
//	guanyu-bench -list               # show experiment ids
//
// Output is plain text, one table/series block per experiment, with the
// paper's expected shape quoted next to each measurement.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "guanyu-bench:", err)
		os.Exit(1)
	}
}

var order = []string{"table1", "fig3", "fig4", "table2", "overhead",
	"contraction", "quorum", "gar", "async", "noniid"}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("guanyu-bench", flag.ContinueOnError)
	var (
		exp  = fs.String("exp", "all", "experiment id or 'all'")
		full = fs.Bool("full", false, "use the larger (slower) scale")
		list = fs.Bool("list", false, "list experiment ids and exit")
		seed = fs.Uint64("seed", 42, "experiment seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range order {
			fmt.Fprintln(out, id)
		}
		return nil
	}
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	scale.Seed = *seed

	selected := map[string]bool{}
	if *exp == "all" {
		for _, id := range order {
			selected[id] = true
		}
	} else {
		selected[*exp] = true
	}

	ran := 0
	for _, id := range order {
		if !selected[id] {
			continue
		}
		if err := runOne(id, scale, out); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(out)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q (try -list)", *exp)
	}
	return nil
}

func runOne(id string, scale experiments.Scale, out io.Writer) error {
	switch id {
	case "table1":
		fmt.Fprint(out, experiments.Table1())
	case "fig3":
		r, err := experiments.Fig3(scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format(scale))
	case "fig4":
		r, err := experiments.Fig4(scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format())
	case "table2":
		recs, err := experiments.Table2(scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, stats.FormatAlignmentTable(recs))
	case "overhead":
		r, err := experiments.Overhead(scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format())
	case "contraction":
		r, err := experiments.Contraction(scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format())
	case "quorum":
		rows, err := experiments.QuorumSweep(scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatQuorumSweep(rows))
	case "gar":
		rows, err := experiments.GARAblation(scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatGARAblation(rows))
	case "async":
		rows, err := experiments.AsyncSweep(scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatAsyncSweep(rows))
	case "noniid":
		rows, err := experiments.NonIID(scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatNonIID(rows))
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
