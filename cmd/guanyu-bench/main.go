// Command guanyu-bench regenerates the paper's evaluation: every table and
// figure of Section 5 plus the design-choice ablations listed in DESIGN.md,
// through the public guanyu experiment API.
//
// Usage:
//
//	guanyu-bench -exp all            # everything, CI scale
//	guanyu-bench -exp fig3 -full     # one experiment, paper-leaning scale
//	guanyu-bench -list               # show experiment ids
//
// Output is plain text, one table/series block per experiment, with the
// paper's expected shape quoted next to each measurement.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/guanyu"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "guanyu-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("guanyu-bench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment id or 'all'")
		full     = fs.Bool("full", false, "use the larger (slower) scale")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		seed     = fs.Uint64("seed", 42, "experiment seed")
		parallel = fs.Int("parallel", 0, "worker count for kernels and concurrent curves (0 = all CPUs, 1 = serial; results are identical at any setting)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	guanyu.SetParallelism(*parallel)
	if *list {
		for _, id := range guanyu.ExperimentIDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}
	scale := guanyu.QuickScale
	if *full {
		scale = guanyu.FullScale
	}
	scale.Seed = *seed

	if *exp != "all" {
		if err := guanyu.RunExperiment(*exp, scale, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		return nil
	}
	for _, id := range guanyu.ExperimentIDs() {
		if err := guanyu.RunExperiment(id, scale, out); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(out)
	}
	return nil
}
