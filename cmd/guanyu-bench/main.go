// Command guanyu-bench regenerates the paper's evaluation: every table and
// figure of Section 5 plus the design-choice ablations listed in DESIGN.md,
// through the public guanyu experiment API.
//
// Usage:
//
//	guanyu-bench -exp all            # everything, CI scale
//	guanyu-bench -exp fig3 -full     # one experiment, paper-leaning scale
//	guanyu-bench -exp matrix         # scenario matrix: attack × GAR × fault grid
//	guanyu-bench -exp matrix -smoke  # smallest grid cell at tiny scale (CI)
//	guanyu-bench -exp matrix -attacks alie,antikrum -faults none,chaos
//	guanyu-bench -exp throughput     # wire codec: steps/sec + MB/s, gob vs binary
//	guanyu-bench -list               # show experiment ids
//
// Output is plain text, one table/series block per experiment, with the
// paper's expected shape quoted next to each measurement.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/guanyu"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "guanyu-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("guanyu-bench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment id or 'all'")
		full     = fs.Bool("full", false, "use the larger (slower) scale")
		smoke    = fs.Bool("smoke", false, "CI smoke sizing: tiny scale and the smallest scenario-matrix cell")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		seed     = fs.Uint64("seed", 42, "experiment seed")
		attacks  = fs.String("attacks", "", "scenario matrix only: comma-separated attack specs (default grid when empty)")
		rules    = fs.String("rules", "", "scenario matrix only: comma-separated gradient GAR names")
		faults   = fs.String("faults", "", "scenario matrix only: comma-separated fault profile specs")
		churn    = fs.String("churn", "", "scenario matrix: comma-separated churn scenarios (none | crash | rolling | joinleave | kind:server@step,... schedules); soak: any non-empty value arms the kill/restart cycle")
		parallel = fs.Int("parallel", 0, "worker count for kernels and concurrent curves (0 = all CPUs, 1 = serial; results are identical at any setting)")
		shard    = fs.Int("shard", 0, "memory experiment only: shard size in coordinates (0 = per-dimension default)")
		compAxis = fs.String("compress", "", "scenario matrix only: comma-separated compression specs (none | float32 | delta[:key=N] | topk:k=F)")
		wireJSON = fs.String("wire-json", "", "write the bandwidth experiment's wire rows to this file (commit as BENCH_wire.json) and exit")
		wireChk  = fs.String("wire-check", "", "re-measure the bandwidth wire rows and compare byte counts against this committed BENCH_wire.json, then exit")
		mbox     = fs.String("mailbox", "", "scale experiment only: mailbox bound for the live rows, policy[:cap=N] (default drop-oldest at the transport cap)")
		scaleOut = fs.String("scale-json", "", "scale experiment only: also write the sweep rows to this file (commit as BENCH_scale.json)")
		metrics  = fs.String("metrics", "", "soak experiment only: serve /metrics + /healthz on this address for the run's duration (e.g. 127.0.0.1:9464)")
		linger   = fs.Duration("linger", 0, "soak experiment only: keep the -metrics listener up this long after the run, for external scrapers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	guanyu.SetParallelism(*parallel)
	if *list {
		for _, id := range guanyu.ExperimentIDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}
	scale := guanyu.QuickScale
	if *full {
		scale = guanyu.FullScale
	}
	if *smoke {
		scale = guanyu.ExperimentScale{Steps: 10, Batch: 8, SmallBatch: 4, Examples: 300}
	}
	scale.Seed = *seed

	// The wire-row modes skip the convergence grid: byte counts are exact
	// and cheap, which is what makes them committable and CI-checkable.
	if *wireJSON != "" || *wireChk != "" {
		rows, err := guanyu.WireRows(scale)
		if err != nil {
			return err
		}
		if *wireJSON != "" {
			data, err := guanyu.WireBenchJSON(rows)
			if err != nil {
				return err
			}
			if err := os.WriteFile(*wireJSON, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %d wire rows to %s\n", len(rows), *wireJSON)
			return nil
		}
		committed, err := os.ReadFile(*wireChk)
		if err != nil {
			return err
		}
		if err := guanyu.CheckWireBench(committed, rows); err != nil {
			return err
		}
		fmt.Fprintf(out, "%d wire rows match %s\n", len(rows), *wireChk)
		return nil
	}

	// -smoke and the grid-axis flags change the matrix experiment's spec;
	// runOne routes "matrix" through it so they apply under -exp all too.
	customMatrix := *smoke || *attacks != "" || *rules != "" || *faults != "" || *compAxis != "" || *churn != ""
	runOne := func(id string) error {
		if id == "scale" {
			// Routed here rather than through RunExperiment so -smoke picks the
			// CI population sizing and -mailbox/-scale-json apply.
			mcfg, err := guanyu.ParseMailbox(*mbox)
			if err != nil {
				return err
			}
			r, err := guanyu.ScaleSweep(scale, *smoke, mcfg)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, r.Format())
			if *scaleOut != "" {
				data, err := guanyu.ScaleBenchJSON(r)
				if err != nil {
					return err
				}
				if err := os.WriteFile(*scaleOut, data, 0o644); err != nil {
					return err
				}
				fmt.Fprintf(out, "wrote %d scale rows to %s\n", len(r.Rows), *scaleOut)
			}
			return nil
		}
		if id == "soak" {
			// Routed here rather than through RunExperiment so -smoke picks the
			// CI sizing, -metrics/-linger expose the live registry, and -churn
			// arms the kill/restart cycle.
			r, err := guanyu.Soak(scale, guanyu.SoakOptions{
				Smoke:       *smoke,
				MetricsAddr: *metrics,
				Linger:      *linger,
				Churn:       *churn != "",
			})
			if err != nil {
				return err
			}
			fmt.Fprintln(out, r.Format())
			return nil
		}
		if id == "memory" && *shard > 0 {
			rows, err := guanyu.Memory(scale, *shard)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, guanyu.FormatMemory(rows))
			return nil
		}
		if id == "matrix" && customMatrix {
			spec := guanyu.DefaultMatrixSpec()
			if *smoke {
				spec = guanyu.SmokeMatrixSpec()
			}
			if *attacks != "" {
				spec.Attacks = strings.Split(*attacks, ",")
			}
			if *rules != "" {
				spec.Rules = strings.Split(*rules, ",")
			}
			if *faults != "" {
				spec.Faults = strings.Split(*faults, ",")
			}
			if *compAxis != "" {
				spec.Compress = strings.Split(*compAxis, ",")
			}
			if *churn != "" {
				// Semicolons separate scenarios so explicit schedules can keep
				// their internal commas: -churn "none;crash:0@5,recover:0@9".
				spec.Churn = strings.Split(*churn, ";")
			}
			r, err := guanyu.Matrix(scale, spec)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, r.Format())
			return nil
		}
		if err := guanyu.RunExperiment(id, scale, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		return nil
	}

	if *exp != "all" {
		return runOne(*exp)
	}
	for _, id := range guanyu.ExperimentIDs() {
		if err := runOne(id); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}
