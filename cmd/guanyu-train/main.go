// Command guanyu-train runs one training deployment — vanilla or GuanYu,
// clean or under attack, simulated or live — and prints its convergence
// curve. It is a thin flag layer over the public guanyu deployment builder.
//
// Examples:
//
//	guanyu-train -mode guanyu -fworkers 5 -fservers 1 -steps 300
//	guanyu-train -mode vanilla -byz-workers 1 -attack random
//	guanyu-train -mode guanyu -byz-workers 5 -byz-servers 1 -attack signflip
//	guanyu-train -mode guanyu -runtime live -steps 50
//	guanyu-train -runtime live -metrics 127.0.0.1:9464 -mailbox drop-oldest
//	guanyu-train -soak -metrics 127.0.0.1:9464
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/guanyu"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "guanyu-train:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("guanyu-train", flag.ContinueOnError)
	var (
		mode       = fs.String("mode", "guanyu", "deployment: vanilla | guanyu")
		runtime    = fs.String("runtime", "sim", "runtime: sim | live")
		steps      = fs.Int("steps", 200, "number of model updates")
		batch      = fs.Int("batch", 16, "mini-batch size")
		rule       = fs.String("rule", "", "gradient aggregation rule (default multi-krum, or mean in vanilla mode)")
		fWorkers   = fs.Int("fworkers", 5, "declared Byzantine workers (guanyu mode)")
		fServers   = fs.Int("fservers", 1, "declared Byzantine servers (guanyu mode)")
		byzWorkers = fs.Int("byz-workers", 0, "actual Byzantine workers")
		byzServers = fs.Int("byz-servers", 0, "actual Byzantine servers")
		attackName = fs.String("attack", "random",
			fmt.Sprintf("Byzantine behaviour spec, name[:k=v,...] of %v (e.g. alie:z=1.2)", guanyu.AttackNames()))
		faultSpec = fs.String("faults", "none",
			fmt.Sprintf("network fault profile spec, name[:k=v,...] of %v (e.g. drop:p=0.05)", guanyu.FaultNames()))
		examples  = fs.Int("examples", 1500, "synthetic dataset size")
		seed      = fs.Uint64("seed", 1, "run seed")
		evalEvery = fs.Int("eval-every", 10, "accuracy sampling period")
		parallel  = fs.Int("parallel", 0, "kernel worker count (0 = all CPUs, 1 = serial; results are identical at any setting)")
		shard     = fs.Int("shard", 0, "live runtime only: stream vectors as chunk frames of this many coordinates (0 = whole-vector framing; results are identical)")
		comp      = fs.String("compress", "none", "wire compression for honest traffic: none | float32 | delta[:key=N] | topk:k=F")
		mbox      = fs.String("mailbox", "none", "live runtime only: bound inbound mailboxes per sender, none | policy[:cap=N] with policy backpressure | drop-newest | drop-oldest")
		ckptDir   = fs.String("checkpoint-dir", "", "live runtime only: honest servers persist protocol state into this directory every -checkpoint-every steps")
		ckptEvr   = fs.Int("checkpoint-every", 10, "live runtime only: checkpoint cadence in steps (with -checkpoint-dir)")
		rejoin    = fs.String("rejoin", "", "live runtime only: kill/restart cycle as server@step (e.g. 0@25): that honest server is killed once it completes the step and rejoins from its newest -checkpoint-dir snapshot via median catch-up")
		soak      = fs.Bool("soak", false, "run the long-haul soak instead of one training run: thousands of live steps under flaky faults and an equivocating server, self-checking counters, liveness and memory")
		soakChurn = fs.Bool("soak-churn", false, "-soak only: kill one honest server mid-run and restart it from its newest checkpoint with median rejoin")
		metrics   = fs.String("metrics", "", "serve /metrics + /healthz on this address (live runtime or -soak; e.g. 127.0.0.1:9464)")
		linger    = fs.Duration("linger", 0, "-soak only: keep the -metrics listener up this long after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	guanyu.SetParallelism(*parallel)

	if *soak {
		scale := guanyu.ExperimentScale{Batch: *batch, Examples: *examples, Seed: *seed}
		r, err := guanyu.Soak(scale, guanyu.SoakOptions{
			MetricsAddr: *metrics, Linger: *linger, Churn: *soakChurn,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Format())
		return nil
	}

	opts := []guanyu.Option{
		guanyu.WithWorkload(guanyu.ImageWorkload(*examples, *seed)),
		guanyu.WithSteps(*steps),
		guanyu.WithBatch(*batch),
		guanyu.WithSeed(*seed),
	}
	if *evalEvery > 0 {
		opts = append(opts, guanyu.WithEval(*evalEvery, 0))
	}
	switch *mode {
	case "vanilla":
		opts = append(opts, guanyu.WithVanilla(), guanyu.WithOptimizedRuntime(),
			guanyu.WithWorkers(guanyu.PaperWorkers, 0))
	case "guanyu":
		opts = append(opts,
			guanyu.WithServers(guanyu.PaperServers, *fServers),
			guanyu.WithWorkers(guanyu.PaperWorkers, *fWorkers))
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	switch *runtime {
	case "sim":
		opts = append(opts, guanyu.WithRuntime(guanyu.Sim))
	case "live":
		opts = append(opts, guanyu.WithRuntime(guanyu.Live))
	default:
		return fmt.Errorf("unknown runtime %q", *runtime)
	}
	if *rule != "" {
		opts = append(opts, guanyu.WithRule(*rule))
	}
	if *shard > 0 {
		opts = append(opts, guanyu.WithShardSize(*shard))
	}
	if *comp != "" {
		opts = append(opts, guanyu.WithCompression(*comp))
	}
	if *mbox != "" {
		opts = append(opts, guanyu.WithMailboxSpec(*mbox))
	}
	if *ckptDir != "" {
		opts = append(opts, guanyu.WithCheckpointDir(*ckptDir, *ckptEvr))
	}
	if *rejoin != "" {
		var server, step int
		if _, err := fmt.Sscanf(*rejoin, "%d@%d", &server, &step); err != nil {
			return fmt.Errorf("-rejoin: want server@step, got %q", *rejoin)
		}
		opts = append(opts, guanyu.WithRejoin(server, step))
	}
	if *metrics != "" {
		opts = append(opts, guanyu.WithMetricsAddr(*metrics, func(addr string) {
			fmt.Fprintf(out, "metrics listening on %s\n", addr)
		}))
	}

	mk, err := guanyu.AttackByName(*attackName, *seed)
	if err != nil {
		return err
	}
	if *byzWorkers > 0 {
		opts = append(opts, guanyu.WithAttackedWorkers(*byzWorkers, mk))
	}
	if *byzServers > 0 {
		// Servers run the named behaviour directly; offset indices keep
		// their generators disjoint from the Byzantine workers'.
		opts = append(opts, guanyu.WithAttackedServers(*byzServers, func(i int) guanyu.Attack {
			return mk(i + 100)
		}))
	}
	faults, err := guanyu.FaultsByName(*faultSpec, *seed)
	if err != nil {
		return err
	}
	opts = append(opts, guanyu.WithFaults(faults))

	d, err := guanyu.New(opts...)
	if err != nil {
		return err
	}
	res, err := d.Run(context.Background())
	if err != nil {
		return err
	}
	if res.Curve != nil {
		fmt.Fprint(out, res.CurveTable(
			fmt.Sprintf("%s: accuracy vs updates", res.Curve.Name), false))
	}
	fmt.Fprintf(out, "\nfinal accuracy: %.4f\n", res.FinalAccuracy)
	switch res.Runtime {
	case "sim":
		fmt.Fprintf(out, "virtual time:   %.2f s (%.3f updates/s)\n",
			res.VirtualTime, res.Curve.Throughput())
	case "live":
		fmt.Fprintf(out, "wall time:      %v (%d honest servers)\n",
			res.WallTime.Round(time.Millisecond), len(res.ServerParams))
		if *rejoin != "" {
			verdict := "NO (the run outran the kill; lower -checkpoint-every or kill later)"
			if res.ChurnRestarted {
				verdict = "yes"
			}
			fmt.Fprintf(out, "restarted via checkpoint+rejoin: %s\n", verdict)
		}
	}
	return nil
}
