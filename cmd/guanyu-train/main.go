// Command guanyu-train runs one training deployment — vanilla or GuanYu,
// clean or under attack — and prints its convergence curve.
//
// Examples:
//
//	guanyu-train -mode guanyu -fworkers 5 -fservers 1 -steps 300
//	guanyu-train -mode vanilla -byz-workers 1 -attack random
//	guanyu-train -mode guanyu -byz-workers 5 -byz-servers 1 -attack signflip
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "guanyu-train:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("guanyu-train", flag.ContinueOnError)
	var (
		mode       = fs.String("mode", "guanyu", "deployment: vanilla | guanyu")
		steps      = fs.Int("steps", 200, "number of model updates")
		batch      = fs.Int("batch", 16, "mini-batch size")
		fWorkers   = fs.Int("fworkers", 5, "declared Byzantine workers (guanyu mode)")
		fServers   = fs.Int("fservers", 1, "declared Byzantine servers (guanyu mode)")
		byzWorkers = fs.Int("byz-workers", 0, "actual Byzantine workers")
		byzServers = fs.Int("byz-servers", 0, "actual Byzantine servers")
		attackName = fs.String("attack", "random", "attack: random | signflip | scaled | zero | nan | twofaced | silent")
		examples   = fs.Int("examples", 1500, "synthetic dataset size")
		seed       = fs.Uint64("seed", 1, "run seed")
		evalEvery  = fs.Int("eval-every", 10, "accuracy sampling period")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := core.ImageWorkload(*examples, *seed)
	var cfg core.Config
	switch *mode {
	case "vanilla":
		cfg = core.VanillaTF(w, *steps, *batch, *seed)
	case "guanyu":
		cfg = core.GuanYu(w, *fWorkers, *fServers, *steps, *batch, *seed)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	cfg.EvalEvery = *evalEvery

	mk, err := attackFactory(*attackName, *seed)
	if err != nil {
		return err
	}
	if *byzWorkers > 0 {
		cfg = core.WithByzantineWorkers(cfg, *byzWorkers, mk)
	}
	if *byzServers > 0 {
		cfg = core.WithByzantineServers(cfg, *byzServers, func(i int) attack.Attack {
			return attack.TwoFaced{Inner: mk(i + 100)}
		})
	}

	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(out, stats.FormatSeriesTable(
		fmt.Sprintf("%s: accuracy vs updates", res.Curve.Name),
		"updates", []*stats.Series{res.Curve}, false))
	fmt.Fprintf(out, "\nfinal accuracy: %.4f\n", res.FinalAccuracy)
	fmt.Fprintf(out, "virtual time:   %.2f s (%.3f updates/s)\n",
		res.VirtualTime, res.Curve.Throughput())
	return nil
}

func attackFactory(name string, seed uint64) (func(int) attack.Attack, error) {
	switch name {
	case "random":
		return func(i int) attack.Attack {
			return attack.NewRandomGaussian(100, seed+uint64(i))
		}, nil
	case "signflip":
		return func(int) attack.Attack { return attack.SignFlip{Scale: 2} }, nil
	case "scaled":
		return func(int) attack.Attack { return attack.ScaledNorm{Factor: 1e6} }, nil
	case "zero":
		return func(int) attack.Attack { return attack.Zero{} }, nil
	case "nan":
		return func(int) attack.Attack { return attack.NaNInjection{} }, nil
	case "twofaced":
		return func(i int) attack.Attack {
			return attack.TwoFaced{Inner: attack.NewRandomGaussian(100, seed+uint64(i))}
		}, nil
	case "silent":
		return func(int) attack.Attack { return attack.Silent{} }, nil
	default:
		return nil, fmt.Errorf("unknown attack %q", name)
	}
}
