package main

import (
	"strings"
	"testing"

	"repro/guanyu"
)

func TestRunGuanYuMode(t *testing.T) {
	if testing.Short() {
		t.Skip("macro run")
	}
	var out strings.Builder
	err := run([]string{"-mode", "guanyu", "-steps", "30", "-batch", "8",
		"-examples", "400", "-byz-workers", "2", "-attack", "signflip"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GuanYu (fwrk=5, fps=1)", "final accuracy", "virtual time"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunVanillaMode(t *testing.T) {
	if testing.Short() {
		t.Skip("macro run")
	}
	var out strings.Builder
	err := run([]string{"-mode", "vanilla", "-steps", "20", "-batch", "8",
		"-examples", "300"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "vanilla TF") {
		t.Fatalf("output missing curve name:\n%s", out.String())
	}
}

func TestRunLiveRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("macro run")
	}
	var out strings.Builder
	err := run([]string{"-mode", "guanyu", "-runtime", "live", "-steps", "10",
		"-batch", "8", "-examples", "300"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wall time") {
		t.Fatalf("live output missing wall time:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "nope"}, &out); err == nil {
		t.Fatal("bad mode accepted")
	}
	if err := run([]string{"-runtime", "nope"}, &out); err == nil {
		t.Fatal("bad runtime accepted")
	}
	if err := run([]string{"-attack", "nope", "-byz-workers", "1"}, &out); err == nil {
		t.Fatal("bad attack accepted")
	}
	if err := run([]string{"-rule", "nope"}, &out); err == nil {
		t.Fatal("bad rule accepted")
	}
}

func TestAttackByNameCoversAll(t *testing.T) {
	for _, name := range guanyu.AttackNames() {
		mk, err := guanyu.AttackByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mk(0) == nil {
			t.Fatalf("%s: nil attack", name)
		}
	}
	if _, err := guanyu.AttackByName("bogus", 1); err == nil {
		t.Fatal("bogus attack accepted")
	}
}

func TestRunAdaptiveAttackWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("macro run")
	}
	var out strings.Builder
	// fservers=0 keeps the parameter quorum slack (q=3 of 6 servers), so
	// the profile's real message drops degrade instead of starving a
	// quorum — the same topology the scenario matrix uses under faults.
	err := run([]string{"-mode", "guanyu", "-steps", "20", "-batch", "8",
		"-examples", "300", "-fservers", "0", "-byz-workers", "3",
		"-attack", "alie:z=1.2", "-faults", "flaky"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "final accuracy") {
		t.Fatalf("output missing final accuracy:\n%s", out.String())
	}
}

func TestRunRejectsBadFaultSpecs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-faults", "nope"}, &out); err == nil {
		t.Fatal("bad fault profile accepted")
	}
	if err := run([]string{"-faults", "drop:q=1"}, &out); err == nil {
		t.Fatal("bad fault parameter accepted")
	}
	if err := run([]string{"-attack", "alie:zz=3", "-byz-workers", "1"}, &out); err == nil {
		t.Fatal("bad attack parameter accepted")
	}
}

func TestFaultsByNameCoversAll(t *testing.T) {
	for _, name := range guanyu.FaultNames() {
		if _, err := guanyu.FaultsByName(name, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := guanyu.FaultsByName("bogus", 1); err == nil {
		t.Fatal("bogus fault profile accepted")
	}
}
