package main

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestFullDeploymentSmoke boots a complete 6-server/6-worker deployment,
// each node through the same entry point an OS process would use, over real
// TCP sockets on fixed localhost ports. One worker runs Byzantine.
func TestFullDeploymentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 12 TCP nodes")
	}
	const base = 17320
	var peerList []string
	for i := 0; i < 6; i++ {
		peerList = append(peerList, fmt.Sprintf("ps%d=127.0.0.1:%d", i, base+i))
	}
	for j := 0; j < 6; j++ {
		peerList = append(peerList, fmt.Sprintf("wrk%d=127.0.0.1:%d", j, base+6+j))
	}
	peers := strings.Join(peerList, ",")

	common := []string{"-peers", peers, "-fservers", "1", "-fworkers", "1",
		"-steps", "8", "-batch", "8", "-examples", "300", "-seed", "9",
		"-timeout", "60s"}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
		outs []string
	)
	launch := func(args []string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out strings.Builder
			if err := run(args, &out); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
				return
			}
			mu.Lock()
			outs = append(outs, out.String())
			mu.Unlock()
		}()
	}
	for i := 0; i < 6; i++ {
		args := append([]string{"-role", "server", "-id", fmt.Sprintf("ps%d", i),
			"-listen", fmt.Sprintf("127.0.0.1:%d", base+i)}, common...)
		launch(args)
	}
	for j := 0; j < 6; j++ {
		args := append([]string{"-role", "worker", "-id", fmt.Sprintf("wrk%d", j),
			"-listen", fmt.Sprintf("127.0.0.1:%d", base+6+j)}, common...)
		if j == 5 {
			args = append(args, "-byzantine", "signflip")
		}
		launch(args)
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("deployment failed: %v", errs[0])
	}
	finished := 0
	for _, o := range outs {
		if strings.Contains(o, "finished") {
			finished++
		}
	}
	if finished != 12 {
		t.Fatalf("only %d/12 nodes reported finishing", finished)
	}
}
