// Command guanyu-node runs a single GuanYu node — one parameter server or
// one worker — as its own OS process over TCP, so a deployment is N
// independent processes exactly as on the paper's testbed. It is a thin
// flag layer over guanyu.RunNode.
//
// Every process deterministically regenerates the same synthetic workload
// and model initialisation from -seed, so no data distribution step is
// needed. A 6-server/6-worker deployment on one machine:
//
//	for i in 0 1 2 3 4 5; do
//	  guanyu-node -role server -id ps$i -listen 127.0.0.1:$((7000+i)) \
//	    -peers "$PEERS" -fservers 1 -fworkers 1 -steps 100 &
//	done
//	for j in 0 1 2 3 4 5; do
//	  guanyu-node -role worker -id wrk$j -listen 127.0.0.1:$((8000+j)) \
//	    -peers "$PEERS" -fservers 1 -fworkers 1 -steps 100 &
//	done
//
// where $PEERS lists every node as "id=host:port,...". Server ps0 prints
// the final test accuracy when it finishes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/guanyu"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "guanyu-node:", err)
		os.Exit(1)
	}
}

type nodeConfig struct {
	role      string
	id        string
	listen    string
	peers     map[string]string
	fServers  int
	fWorkers  int
	steps     int
	batch     int
	seed      uint64
	examples  int
	byzMode   string
	faultSpec string
	ckptPath  string
	ckptDir   string
	ckptEvery int
	rejoin    bool
	timeout   time.Duration
	shardSize int
	compress  string
	mailbox   string
	metrics   string
}

func parseFlags(args []string) (*nodeConfig, error) {
	fs := flag.NewFlagSet("guanyu-node", flag.ContinueOnError)
	var (
		role     = fs.String("role", "", "node role: server | worker")
		id       = fs.String("id", "", "node id (ps<i> or wrk<j>)")
		listen   = fs.String("listen", "127.0.0.1:0", "listen address")
		peers    = fs.String("peers", "", "comma-separated id=addr pairs for every node")
		fServers = fs.Int("fservers", 1, "declared Byzantine servers")
		fWorkers = fs.Int("fworkers", 1, "declared Byzantine workers")
		steps    = fs.Int("steps", 100, "learning steps")
		batch    = fs.Int("batch", 16, "mini-batch size")
		seed     = fs.Uint64("seed", 1, "deployment seed (shared by all nodes)")
		examples = fs.Int("examples", 1200, "synthetic dataset size")
		byzMode  = fs.String("byzantine", "",
			fmt.Sprintf("make THIS node Byzantine, spec name[:k=v,...] of %v", guanyu.AttackNames()))
		faultSpec = fs.String("faults", "none",
			fmt.Sprintf("fault profile for THIS node's sends, name[:k=v,...] of %v (same spec+seed on all nodes = cluster-wide schedule)", guanyu.FaultNames()))
		ckpt     = fs.String("checkpoint", "", "server only: write the final model here")
		ckptDir  = fs.String("checkpoint-dir", "", "server only: persist protocol state (step, θ, horizon, momentum) into this directory every -checkpoint-every steps, atomically")
		ckptEvr  = fs.Int("checkpoint-every", 10, "server only: checkpoint cadence in steps (with -checkpoint-dir)")
		rejoin   = fs.Bool("rejoin", false, "server only: restart from the newest -checkpoint-dir snapshot and catch up by adopting the median of a live peer quorum (how a crashed ps<i> re-enters a running deployment)")
		timeout  = fs.Duration("timeout", 5*time.Minute, "per-quorum timeout")
		parallel = fs.Int("parallel", 0, "kernel worker count for this node (0 = all CPUs, 1 = serial; results are identical at any setting)")
		shard    = fs.Int("shard", 0, "stream vectors as chunk frames of this many coordinates (0 = whole-vector framing; arm every node identically)")
		comp     = fs.String("compress", "none", "wire compression for THIS node's sends: none | float32 | delta[:key=N] | topk:k=F (negotiated per connection; plain peers drop un-negotiated frames)")
		mbox     = fs.String("mailbox", "none", "bound THIS node's inbound mailbox per sender, none | policy[:cap=N] with policy backpressure | drop-newest | drop-oldest")
		metrics  = fs.String("metrics", "", "serve THIS node's /metrics + /healthz on this address for the process's lifetime (e.g. 127.0.0.1:9464, or :0 for an ephemeral port)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	guanyu.SetParallelism(*parallel)
	if *role != "server" && *role != "worker" {
		return nil, fmt.Errorf("-role must be server or worker, got %q", *role)
	}
	if *id == "" {
		return nil, fmt.Errorf("-id is required")
	}
	peerMap, err := parsePeers(*peers)
	if err != nil {
		return nil, err
	}
	if _, ok := peerMap[*id]; !ok {
		return nil, fmt.Errorf("-peers must include this node's id %q", *id)
	}
	return &nodeConfig{
		role: *role, id: *id, listen: *listen, peers: peerMap,
		fServers: *fServers, fWorkers: *fWorkers,
		steps: *steps, batch: *batch, seed: *seed, examples: *examples,
		byzMode: *byzMode, faultSpec: *faultSpec, ckptPath: *ckpt,
		ckptDir: *ckptDir, ckptEvery: *ckptEvr, rejoin: *rejoin, timeout: *timeout,
		shardSize: *shard, compress: *comp, mailbox: *mbox, metrics: *metrics,
	}, nil
}

// parsePeers parses "id=addr,id=addr" into a map.
func parsePeers(s string) (map[string]string, error) {
	out := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-peers is required")
	}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad peer entry %q (want id=addr)", pair)
		}
		if _, dup := out[kv[0]]; dup {
			return nil, fmt.Errorf("duplicate peer id %q", kv[0])
		}
		out[kv[0]] = kv[1]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	return out, nil
}

// mkAttack resolves the -byzantine spec through the shared attack
// registry; "signflip" keeps its historical node-level default scale.
func mkAttack(mode string, seed uint64) (guanyu.Attack, error) {
	switch mode {
	case "":
		return nil, nil
	case "signflip":
		return guanyu.SignFlip{Scale: 30}, nil
	default:
		mk, err := guanyu.AttackByName(mode, seed)
		if err != nil {
			return nil, fmt.Errorf("-byzantine: %w", err)
		}
		// Index 0 is correct here: seed already carries HashID(node id), so
		// stateful attacks stay disjoint across Byzantine processes.
		return mk(0), nil
	}
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	att, err := mkAttack(cfg.byzMode, cfg.seed+guanyu.HashID(cfg.id))
	if err != nil {
		return err
	}
	// The fault seed is the deployment seed, NOT offset per node: every
	// node derives the same cluster-wide fault schedule.
	faults, err := guanyu.FaultsByName(cfg.faultSpec, cfg.seed)
	if err != nil {
		return err
	}
	servers, workers, err := guanyu.SplitPeers(cfg.peers)
	if err != nil {
		return err
	}

	ncfg := guanyu.NodeConfig{
		Role:        cfg.role,
		ID:          cfg.id,
		Listen:      cfg.listen,
		Peers:       cfg.peers,
		FServers:    cfg.fServers,
		FWorkers:    cfg.fWorkers,
		Steps:       cfg.steps,
		Batch:       cfg.batch,
		Examples:    cfg.examples,
		Seed:        cfg.seed,
		Attack:      att,
		Faults:      faults,
		Timeout:     cfg.timeout,
		ShardSize:   cfg.shardSize,
		Compression: cfg.compress,
		Mailbox:     cfg.mailbox,
		Rejoin:      cfg.rejoin,
		OnListen: func(addr string) {
			fmt.Fprintf(out, "%s listening on %s (%d servers, %d workers)\n",
				cfg.id, addr, len(servers), len(workers))
		},
		MetricsAddr: cfg.metrics,
		OnMetricsListen: func(addr string) {
			fmt.Fprintf(out, "%s metrics on http://%s/metrics\n", cfg.id, addr)
		},
	}
	if cfg.ckptDir != "" {
		ncfg.Checkpoint = &guanyu.CheckpointSpec{Dir: cfg.ckptDir, Every: cfg.ckptEvery}
	}
	res, err := guanyu.RunNode(context.Background(), ncfg)
	if err != nil {
		return err
	}

	switch res.Role {
	case "server":
		fmt.Fprintf(out, "%s finished %d steps; local test accuracy %.4f\n",
			res.ID, res.Steps, res.Accuracy)
		if cfg.ckptPath != "" {
			f, err := os.Create(cfg.ckptPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := guanyu.SaveCheckpoint(f, res.Model, res.Steps); err != nil {
				return err
			}
			fmt.Fprintf(out, "%s wrote checkpoint to %s\n", res.ID, cfg.ckptPath)
		}
	case "worker":
		fmt.Fprintf(out, "%s finished %d steps\n", res.ID, res.Steps)
	}
	return nil
}
