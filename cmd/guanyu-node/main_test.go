package main

import (
	"strings"
	"testing"

	"repro/guanyu"
)

func TestParsePeers(t *testing.T) {
	m, err := parsePeers("ps0=127.0.0.1:7000, wrk0=127.0.0.1:8000")
	if err != nil {
		t.Fatal(err)
	}
	if m["ps0"] != "127.0.0.1:7000" || m["wrk0"] != "127.0.0.1:8000" {
		t.Fatalf("parsed %v", m)
	}
	for _, bad := range []string{"", "noequals", "=addr", "id=", "a=1,a=2"} {
		if _, err := parsePeers(bad); err == nil {
			t.Fatalf("accepted bad peers %q", bad)
		}
	}
}

func TestSplitPeers(t *testing.T) {
	servers, workers, err := guanyu.SplitPeers(map[string]string{
		"ps1": "a", "ps0": "b", "wrk0": "c",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 2 || servers[0] != "ps0" || servers[1] != "ps1" {
		t.Fatalf("servers %v", servers)
	}
	if len(workers) != 1 || workers[0] != "wrk0" {
		t.Fatalf("workers %v", workers)
	}
	if _, _, err := guanyu.SplitPeers(map[string]string{"node0": "x"}); err == nil {
		t.Fatal("bad id accepted")
	}
}

func TestParseFlagsValidation(t *testing.T) {
	cases := [][]string{
		{},                  // role missing
		{"-role", "server"}, // id missing
		{"-role", "boss", "-id", "x", "-peers", "x=1"},       // bad role
		{"-role", "server", "-id", "ps0", "-peers", "ps1=1"}, // self missing from peers
	}
	for i, args := range cases {
		if _, err := parseFlags(args); err == nil {
			t.Fatalf("case %d accepted: %v", i, args)
		}
	}
	cfg, err := parseFlags([]string{"-role", "worker", "-id", "wrk0",
		"-peers", "wrk0=127.0.0.1:1,ps0=127.0.0.1:2"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.role != "worker" || cfg.id != "wrk0" || len(cfg.peers) != 2 {
		t.Fatalf("parsed %+v", cfg)
	}
}

func TestMkAttack(t *testing.T) {
	if a, err := mkAttack("", 1); err != nil || a != nil {
		t.Fatal("empty mode should be honest")
	}
	for _, mode := range []string{"random", "signflip", "silent"} {
		if a, err := mkAttack(mode, 1); err != nil || a == nil {
			t.Fatalf("%s: %v", mode, err)
		}
	}
	if _, err := mkAttack("bogus", 1); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestRunRejectsTooFewNodes(t *testing.T) {
	err := run([]string{"-role", "server", "-id", "ps0",
		"-peers", "ps0=127.0.0.1:0,wrk0=127.0.0.1:1",
		"-fservers", "1", "-fworkers", "1"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "3f+3") {
		t.Fatalf("deployment bound not enforced: %v", err)
	}
}

func TestHashIDStableAndDistinct(t *testing.T) {
	if guanyu.HashID("wrk0") != guanyu.HashID("wrk0") {
		t.Fatal("hash not stable")
	}
	if guanyu.HashID("wrk0") == guanyu.HashID("wrk1") {
		t.Fatal("hash collision on adjacent ids")
	}
}
