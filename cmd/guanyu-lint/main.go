// Command guanyu-lint is the multichecker driving the repo's custom
// static-analysis suite (internal/analysis): five analyzers encoding
// the determinism, clone-at-boundary, counter-parity, bounded-alloc
// and no-nested-parallelism invariants. It is the CI lint gate:
//
//	go run ./cmd/guanyu-lint ./...
//
// exits 0 when the tree is clean, 1 with vet-style findings on stdout
// otherwise, 2 on load errors. Only non-test Go files are checked.
// See LINT.md for the invariant → analyzer → historical-bug mapping
// and the //lint:allow-* escape hatches.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("guanyu-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	runFilter := fs.String("run", "", "only run analyzers whose name matches this regexp")
	dir := fs.String("dir", ".", "module directory to resolve patterns in")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: guanyu-lint [flags] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the repo's invariant analyzers over the given package patterns\n")
		fmt.Fprintf(stderr, "(default ./...). Flags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *runFilter != "" {
		re, err := regexp.Compile(*runFilter)
		if err != nil {
			fmt.Fprintf(stderr, "guanyu-lint: bad -run regexp: %v\n", err)
			return 2
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if len(analyzers) == 0 {
		fmt.Fprintf(stderr, "guanyu-lint: no analyzers match -run\n")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "guanyu-lint: %v\n", err)
		return 2
	}
	diags := analysis.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "guanyu-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
