package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListNamesEveryAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"cloneboundary", "counterparity", "nodeterminism", "boundedalloc", "noparallelnest"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestRunFilter(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "clone", "-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if got := strings.TrimSpace(out.String()); !strings.HasPrefix(got, "cloneboundary") || strings.Contains(got, "\n") {
		t.Errorf("-run clone -list should print exactly cloneboundary, got:\n%s", out.String())
	}
}

func TestBadRunRegexp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "("}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestNoMatchingAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "nosuchanalyzer"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestRepoTreeIsClean runs the full suite over this repository: the
// lint gate must hold for the tree the gate ships in.
func TestRepoTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", "../..", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}
