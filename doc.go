// Package repro is a from-scratch Go reproduction of "Genuinely Distributed
// Byzantine Machine Learning" (El-Mhamdi, Guerraoui, Guirguis, Hoang,
// Rouault — PODC 2020): the GuanYu algorithm, the first distributed SGD
// protocol tolerating Byzantine parameter servers as well as Byzantine
// workers under full network asynchrony.
//
// The way in is the public guanyu package: one functional-options builder
// describes a deployment, one Runner interface executes it under the
// deterministic virtual-time simulator (guanyu.Sim, reproduces the paper's
// figures) or with real concurrency (guanyu.Live, in-process or TCP).
// Aggregation rules live behind the registry in guanyu/gar, keyed by stable
// names such as "multi-krum" and "coordinate-median".
//
//	d, _ := guanyu.New(
//		guanyu.WithWorkload(guanyu.ImageWorkload(1200, 1)),
//		guanyu.WithServers(6, 1),
//		guanyu.WithWorkers(18, 5),
//		guanyu.WithRule("multi-krum"),
//	)
//	res, _ := d.Run(context.Background())
//
// Adversaries and network faults are first-class: Byzantine behaviours —
// including the omniscient colluders (ALIE, inner-product manipulation,
// mimic, anti-Krum) that observe the honest cluster through a ClusterView
// before corrupting — are selected by spec via guanyu.AttackByName
// ("alie:z=1.5"), and guanyu.WithFaults injects seeded message drops,
// duplication, reordering, delay spikes and partitions into either runtime
// (profiles via guanyu.FaultsByName). The scenario-matrix experiment
// (guanyu-bench -exp matrix) runs the attack × rule × fault grid.
//
// Every hot kernel executes on a shared, size-aware worker pool. The worker
// count defaults to runtime.NumCPU() and is controlled by
// guanyu.SetParallelism, the guanyu.WithParallelism deployment option, or
// the -parallel flag each command accepts; parallelism never changes
// results — chunk boundaries are size-derived and reductions fold in a
// fixed order, so every setting is bit-identical to serial.
//
// Live deployments speak a hand-rolled binary wire protocol: length-
// prefixed frames with a fixed {kind, step, from-len, vec-len} header and
// little-endian float64 payloads, encoded straight between []float64 and
// reused buffers (zero allocations in steady state, ~5–12× the throughput
// of the former gob framing — see the `throughput` experiment), over
// per-connection hello-authenticated TCP so a Byzantine peer cannot forge
// other senders into a quorum. WIRE.md is the byte-level specification.
//
// With guanyu.WithShardSize (the -shard flag on the commands), vectors
// stream as fixed coordinate shards — chunk frames on the wire — and every
// quorum aggregates incrementally as each shard's first-q set completes:
// peak receive buffering drops from O(n·d) to O(q·shard) for the
// coordinate-wise rules (Multi-Krum's streamer retains its q inputs until
// the post-selection mean, an O(q·d) floor) and aggregation overlaps the
// network receive (see the `memory` experiment), with results bit-identical
// to whole-vector framing at any shard size.
//
// The protocol implementation lives under internal/ (see DESIGN.md for the
// system inventory), the runnable entry points under cmd/ and examples/,
// and the benchmark harness regenerating every table and figure of the
// paper's evaluation in bench_test.go at this root — EXPERIMENTS.md indexes
// the experiments, their benchmarks and the paper's expected values.
package repro
