// Package repro is a from-scratch Go reproduction of "Genuinely Distributed
// Byzantine Machine Learning" (El-Mhamdi, Guerraoui, Guirguis, Rouault —
// PODC 2020): the GuanYu algorithm, the first distributed SGD protocol
// tolerating Byzantine parameter servers as well as Byzantine workers under
// full network asynchrony.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), the runnable entry points under cmd/ and examples/, and the
// benchmark harness regenerating every table and figure of the paper's
// evaluation in bench_test.go at this root.
package repro
