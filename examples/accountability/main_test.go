package main

import (
	"strings"
	"testing"
)

// Smoke test: the live accountability run must finish at tiny parameters
// and produce the suspicion ranking.
func TestAccountabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke run")
	}
	var out strings.Builder
	if err := run(&out, params{examples: 300, steps: 15, batch: 8}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"final accuracy", "wrk2"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}
