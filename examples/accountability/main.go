// Accountability: identify which participants are Byzantine.
//
// GuanYu's safety does not depend on knowing who is Byzantine — robust
// aggregation simply outweighs them. But every time Multi-Krum excludes a
// gradient, it is implicitly accusing its sender. This example runs a Live
// deployment with two misbehaving workers, accumulates the exclusion
// statistics on every honest server (guanyu.Suspicion), and prints the
// resulting ranking: the Byzantine workers surface at the top with
// exclusion rates near 1, giving an operator a clear eviction signal.
//
// Run with: go run ./examples/accountability
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/guanyu"
)

type params struct {
	examples, steps, batch int
}

func main() {
	if err := run(os.Stdout, params{examples: 900, steps: 100, batch: 16}); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, p params) error {
	susp := guanyu.NewSuspicion()
	// Random sub-millisecond delays rotate quorum membership: without them,
	// goroutine scheduling on a loaded box lets the same q̄ fastest workers
	// win every race and the others never get observed at all.
	lat := guanyu.NewLatencyModel(200e-6, 1.0, 0, 56)

	d, err := guanyu.New(
		guanyu.WithWorkload(guanyu.BlobWorkload(p.examples, 51)),
		guanyu.WithRuntime(guanyu.Live),
		guanyu.WithServers(6, 1),
		guanyu.WithWorkers(9, 2),
		guanyu.WithWorkerAttack(2, guanyu.ScaledNorm{Factor: 1e5}),
		guanyu.WithWorkerAttack(7, guanyu.NewRandomGaussian(100, 54)),
		guanyu.WithDelay(lat.DelayFunc(0, 1)),
		guanyu.WithSteps(p.steps),
		guanyu.WithBatch(p.batch),
		guanyu.WithLR(guanyu.InverseTimeLR(0.2, 100)),
		guanyu.WithTimeout(2*time.Minute),
		guanyu.WithSeed(55),
		guanyu.WithSuspicion(susp),
	)
	if err != nil {
		return err
	}
	res, err := d.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "final accuracy despite 2 Byzantine workers: %.3f\n\n", res.FinalAccuracy)
	fmt.Fprint(out, susp.Format())
	fmt.Fprintln(out, "\nworkers wrk2 and wrk7 are the actually-Byzantine ones; their")
	fmt.Fprintln(out, "exclusion rates give the operator an eviction signal the protocol")
	fmt.Fprintln(out, "itself never needed.")
	return nil
}
