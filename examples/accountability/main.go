// Accountability: identify which participants are Byzantine.
//
// GuanYu's safety does not depend on knowing who is Byzantine — robust
// aggregation simply outweighs them. But every time Multi-Krum excludes a
// gradient, it is implicitly accusing its sender. This example runs a live
// deployment with two misbehaving workers, accumulates the exclusion
// statistics on every honest server (stats.Suspicion), and prints the
// resulting ranking: the Byzantine workers surface at the top with
// exclusion rates near 1, giving an operator a clear eviction signal.
//
// Run with: go run ./examples/accountability
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/transport"
)

func main() {
	data := dataset.Blobs(900, 3, 3, 0.5, 51)
	train, test := data.Split(0.8, tensor.NewRNG(52))
	model := nn.NewMLP(tensor.NewRNG(53), 2, 16, 3)

	susp := stats.NewSuspicion()
	// Random sub-millisecond delays rotate quorum membership: without them,
	// goroutine scheduling on a loaded box lets the same q̄ fastest workers
	// win every race and the others never get observed at all.
	lat := transport.NewLatencyModel(200e-6, 1.0, 0, 56)
	cfg := cluster.LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 9, FWorkers: 2,
		WorkerAttacks: map[int]attack.Attack{
			2: attack.ScaledNorm{Factor: 1e5},
			7: attack.NewRandomGaussian(100, 54),
		},
		Delay: lat.DelayFunc(0, 1),
		Steps: 100, Batch: 16,
		LR:        func(t int) float64 { return 0.2 / (1 + float64(t)/100) },
		Timeout:   2 * time.Minute,
		Seed:      55,
		Suspicion: susp,
	}
	res, err := cluster.RunLive(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eval := model.Clone()
	if err := eval.SetParamVector(res.Final); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("final accuracy with 2 Byzantine workers: %.3f\n\n",
		nn.Accuracy(eval, test.X, test.Labels))
	fmt.Print(susp.Format())
	fmt.Println("\nwrk2 (gradient blow-up) and wrk7 (random noise) top the ranking with")
	fmt.Println("exclusion rates ≈ 1; an operator can evict them. Honest workers sit at")
	fmt.Println("the structural base rate: Multi-Krum keeps q̄−f̄−2 = 3 of 7 gradients,")
	fmt.Println("so even honest senders are excluded a bit over half the time — it is")
	fmt.Println("the gap above the base rate that accuses, not exclusion itself.")
}
