package main

import (
	"strings"
	"testing"
)

// Smoke test: the example must run end to end at tiny parameters and exit
// cleanly. Wired into the race-enabled CI test step like every other test.
func TestQuickstartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke run")
	}
	var out strings.Builder
	if err := run(&out, params{examples: 300, steps: 12, batch: 8}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GuanYu under attack", "final accuracy", "vanilla baseline"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}
