// Quickstart: train a model with GuanYu and survive Byzantine participants.
//
// Everything goes through the public guanyu façade: one functional-options
// builder describes the deployment — the paper's scale, 6 parameter servers
// (1 Byzantine) and 18 workers (5 Byzantine) — and one Run call executes it.
// The default runtime is the deterministic virtual-time simulator; swap in
// guanyu.WithRuntime(guanyu.Live) and the identical description runs with
// one goroutine per node instead. Compare with the vanilla run at the end,
// which a single Byzantine worker destroys.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"repro/guanyu"
)

// params sizes the example; the smoke test shrinks them.
type params struct {
	examples, steps, batch int
}

func main() {
	if err := run(os.Stdout, params{examples: 1200, steps: 150, batch: 16}); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, p params) error {
	// A workload = model template + train/test data. ImageWorkload is the
	// CIFAR-10 stand-in: 10 procedurally generated image classes.
	workload := guanyu.ImageWorkload(p.examples, 1)

	// GuanYu deployment: declared f̄=5 Byzantine workers, f=1 Byzantine
	// server (quorums q̄=13, q=5 follow from 2f+3), Multi-Krum gradient
	// aggregation — and 5 workers plus 1 server *actually* Byzantine.
	d, err := guanyu.New(
		guanyu.WithWorkload(workload),
		guanyu.WithServers(6, 1),
		guanyu.WithWorkers(18, 5),
		guanyu.WithRule("multi-krum"),
		guanyu.WithAttackedWorkers(5, func(int) guanyu.Attack {
			return guanyu.SignFlip{Scale: 30} // gradient-ascent corruption
		}),
		guanyu.WithAttackedServers(1, func(int) guanyu.Attack {
			// Equivocates: honest model to half the workers, garbage to the rest.
			return guanyu.TwoFaced{Inner: guanyu.NewRandomGaussian(100, 7)}
		}),
		guanyu.WithSteps(p.steps),
		guanyu.WithBatch(p.batch),
		guanyu.WithSeed(1),
	)
	if err != nil {
		return err
	}
	res, err := d.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "GuanYu under attack (5 Byzantine workers, 1 Byzantine server):")
	for _, pt := range res.Curve.Points {
		fmt.Fprintf(out, "  update %4d  t=%7.2fs  accuracy %.3f\n", pt.Step, pt.Time, pt.Accuracy)
	}
	fmt.Fprintf(out, "final accuracy: %.3f\n\n", res.FinalAccuracy)

	// The same attack against the unprotected baseline: one server, mean
	// aggregation, no Byzantine filtering.
	vanilla, err := guanyu.New(
		guanyu.WithWorkload(guanyu.ImageWorkload(p.examples, 1)),
		guanyu.WithVanilla(),
		guanyu.WithOptimizedRuntime(),
		guanyu.WithWorkers(18, 0),
		guanyu.WithAttackedWorkers(1, func(int) guanyu.Attack {
			return guanyu.SignFlip{Scale: 30}
		}),
		guanyu.WithSteps(p.steps),
		guanyu.WithBatch(p.batch),
		guanyu.WithSeed(1),
	)
	if err != nil {
		return err
	}
	vres, err := vanilla.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "vanilla baseline with just ONE Byzantine worker: final accuracy %.3f\n",
		vres.FinalAccuracy)
	fmt.Fprintln(out, "(GuanYu converges; the vanilla deployment does not — Figure 4 of the paper.)")
	return nil
}
