// Quickstart: train a model with GuanYu and survive Byzantine participants.
//
// This example sets up the paper's deployment — 6 parameter servers (1
// Byzantine) and 18 workers (5 Byzantine) — on a synthetic 10-class image
// task, runs a few hundred steps, and prints the convergence curve. Compare
// with the vanilla run at the end, which a single Byzantine worker destroys.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
)

func main() {
	// A workload = model template + train/test data. ImageWorkload is the
	// CIFAR-10 stand-in: 10 procedurally generated image classes.
	workload := core.ImageWorkload(1200, 1)

	// GuanYu deployment: declared f̄=5 Byzantine workers, f=1 Byzantine
	// server (quorums q̄=13, q=5 follow from 2f+3).
	cfg := core.GuanYu(workload, 5, 1, 150, 16, 1)

	// Make 5 workers and 1 server *actually* Byzantine.
	cfg = core.WithByzantineWorkers(cfg, 5, func(i int) attack.Attack {
		return attack.SignFlip{Scale: 30} // gradient-ascent corruption
	})
	cfg = core.WithByzantineServers(cfg, 1, func(i int) attack.Attack {
		// Equivocates: honest model to half the workers, garbage to the rest.
		return attack.TwoFaced{Inner: attack.NewRandomGaussian(100, 7)}
	})

	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GuanYu under attack (5 Byzantine workers, 1 Byzantine server):")
	for _, p := range res.Curve.Points {
		fmt.Printf("  update %4d  t=%7.2fs  accuracy %.3f\n", p.Step, p.Time, p.Accuracy)
	}
	fmt.Printf("final accuracy: %.3f\n\n", res.FinalAccuracy)

	// The same attack against the unprotected baseline.
	vanilla := core.VanillaTF(core.ImageWorkload(1200, 1), 150, 16, 1)
	vanilla = core.WithByzantineWorkers(vanilla, 1, func(int) attack.Attack {
		return attack.SignFlip{Scale: 30}
	})
	vres, err := core.Run(vanilla)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vanilla baseline with just ONE Byzantine worker: final accuracy %.3f\n",
		vres.FinalAccuracy)
	fmt.Println("(GuanYu converges; the vanilla deployment does not — Figure 4 of the paper.)")
}
