package main

import (
	"strings"
	"testing"
)

// Smoke test: the live runtime under heavy-tailed delays, a straggler, a
// silent server AND real injected faults must finish at tiny parameters.
func TestAsynchronySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke run")
	}
	var out strings.Builder
	if err := run(&out, params{examples: 300, steps: 12, batch: 8}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"live run: 12 steps", "final accuracy"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}
