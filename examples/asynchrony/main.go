// Asynchrony: GuanYu makes progress with unbounded delays, silent nodes
// and real network faults.
//
// This example runs the Live runtime — one goroutine per node over an
// in-process network — with heavy-tailed message delays, one straggler
// server whose links are 50x slower, one server that never speaks at all,
// and the "flaky" fault profile really dropping, duplicating and
// reordering messages on every link. Quorums (q ≤ n−f) let every round
// complete without waiting for the slow, the silent or the lost; no
// timeout tuning is involved.
//
// Run with: go run ./examples/asynchrony
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/guanyu"
)

type params struct {
	examples, steps, batch int
}

func main() {
	if err := run(os.Stdout, params{examples: 900, steps: 120, batch: 16}); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, p params) error {
	// Heavy-tailed (log-normal, σ=1) millisecond-scale delays, with server
	// ps4 straggling 50x behind everyone else.
	lat := guanyu.NewLatencyModel(500e-6, 1.0, 0, 21)
	lat.NodeSlowdown = map[string]float64{guanyu.ServerID(4): 50}

	// Seeded fault injection on top: ~1% real message loss, duplicates the
	// quorum collector must dedup, reordering and delay spikes.
	faults, err := guanyu.FaultsByName("flaky", 21)
	if err != nil {
		return err
	}

	// Declared f=0 keeps the quorums at their minimum (q=3 of 6 per role):
	// real message loss needs that slack, because a dropped message is
	// never retransmitted — a quorum with zero slack would deadlock on the
	// first lost link. The silent server is tolerated the same way any
	// crashed node is: nobody ever waits for it.
	d, err := guanyu.New(
		guanyu.WithWorkload(guanyu.BlobWorkload(p.examples, 11)),
		guanyu.WithRuntime(guanyu.Live),
		guanyu.WithServers(6, 0),
		guanyu.WithWorkers(6, 0),
		// ps5 is Byzantine-silent: it never sends a single message.
		guanyu.WithServerAttack(5, guanyu.Silent{}),
		guanyu.WithDelay(lat.DelayFunc(0, 1)),
		guanyu.WithFaults(faults),
		guanyu.WithSteps(p.steps),
		guanyu.WithBatch(p.batch),
		guanyu.WithLR(guanyu.InverseTimeLR(0.2, 100)),
		guanyu.WithTimeout(2*time.Minute),
		guanyu.WithSeed(14),
	)
	if err != nil {
		return err
	}
	res, err := d.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "live run: %d steps, %d honest servers finished in %v\n",
		res.Updates, len(res.ServerParams), res.WallTime.Round(time.Millisecond))
	fmt.Fprintf(out, "final accuracy: %.3f (straggler 50x slow, one server silent, flaky network)\n",
		res.FinalAccuracy)
	fmt.Fprintln(out, "progress requires only quorums of q=3 servers and q̄=3 workers —")
	fmt.Fprintln(out, "the protocol never waits for the slowest, the silent or the lost.")
	return nil
}
