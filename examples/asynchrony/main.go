// Asynchrony: GuanYu makes progress with unbounded delays and silent nodes.
//
// This example runs the Live runtime — one goroutine per node over an
// in-process network — with heavy-tailed message delays, one straggler
// server whose links are 50x slower, and one server that never speaks at
// all. Quorums (q ≤ n−f) let every round complete without waiting for the
// slow or silent nodes; no timeout tuning is involved.
//
// Run with: go run ./examples/asynchrony
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/guanyu"
)

func main() {
	// Heavy-tailed (log-normal, σ=1) millisecond-scale delays, with server
	// ps4 straggling 50x behind everyone else.
	lat := guanyu.NewLatencyModel(500e-6, 1.0, 0, 21)
	lat.NodeSlowdown = map[string]float64{guanyu.ServerID(4): 50}

	d, err := guanyu.New(
		guanyu.WithWorkload(guanyu.BlobWorkload(900, 11)),
		guanyu.WithRuntime(guanyu.Live),
		guanyu.WithServers(6, 1),
		guanyu.WithWorkers(6, 1),
		// ps5 is Byzantine-silent: it never sends a single message.
		guanyu.WithServerAttack(5, guanyu.Silent{}),
		guanyu.WithDelay(lat.DelayFunc(0, 1)),
		guanyu.WithSteps(120),
		guanyu.WithBatch(16),
		guanyu.WithLR(guanyu.InverseTimeLR(0.2, 100)),
		guanyu.WithTimeout(2*time.Minute),
		guanyu.WithSeed(14),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := d.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live run: %d steps, %d honest servers finished in %v\n",
		res.Updates, len(res.ServerParams), res.WallTime.Round(time.Millisecond))
	fmt.Printf("final accuracy: %.3f (straggler 50x slow, one server silent)\n",
		res.FinalAccuracy)
	fmt.Println("progress requires only quorums of q=5 servers and q̄=5 workers —")
	fmt.Println("the protocol never waits for the slowest or the silent.")
}
