// Asynchrony: GuanYu makes progress with unbounded delays and silent nodes.
//
// This example runs the *live* runtime — one goroutine per node over an
// in-process network — with heavy-tailed message delays, one straggler
// server whose links are 50x slower, and one server that never speaks at
// all. Quorums (q ≤ n−f) let every round complete without waiting for the
// slow or silent nodes; no timeout tuning is involved.
//
// Run with: go run ./examples/asynchrony
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/transport"
)

func main() {
	data := dataset.Blobs(900, 3, 3, 0.5, 11)
	train, test := data.Split(0.8, tensor.NewRNG(12))
	model := nn.NewMLP(tensor.NewRNG(13), 2, 16, 3)

	// Heavy-tailed (log-normal, σ=1) millisecond-scale delays, with server
	// ps4 straggling 50x behind everyone else.
	lat := transport.NewLatencyModel(500e-6, 1.0, 0, 21)
	lat.NodeSlowdown = map[string]float64{cluster.ServerID(4): 50}

	cfg := cluster.LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1,
		// ps5 is Byzantine-silent: it never sends a single message.
		ServerAttacks: map[int]attack.Attack{5: attack.Silent{}},
		Delay:         lat.DelayFunc(0, 1),
		Steps:         120, Batch: 16,
		LR:      func(t int) float64 { return 0.2 / (1 + float64(t)/100) },
		Timeout: 2 * time.Minute,
		Seed:    14,
	}

	start := time.Now()
	res, err := cluster.RunLive(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eval := model.Clone()
	if err := eval.SetParamVector(res.Final); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live run: %d steps, %d honest servers finished in %v\n",
		cfg.Steps, len(res.ServerParams), time.Since(start).Round(time.Millisecond))
	fmt.Printf("final accuracy: %.3f (straggler 50x slow, one server silent)\n",
		nn.Accuracy(eval, test.X, test.Labels))

	finals := make([]tensor.Vector, 0, len(res.ServerParams))
	for _, v := range res.ServerParams {
		finals = append(finals, v)
	}
	fmt.Printf("honest-server max drift: %.4f (the contraction round keeps replicas together)\n",
		tensor.MaxPairwiseDistance(finals))
}
