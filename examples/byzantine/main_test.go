package main

import (
	"strings"
	"testing"
)

// Smoke test: the whole attack gallery — including the omniscient
// adversaries — must run end to end at tiny parameters and exit cleanly.
func TestByzantineGallerySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke run")
	}
	var out strings.Builder
	if err := run(&out, params{examples: 300, steps: 8, batch: 8}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"attack", "alie z=1.5", "anti-krum", "GuanYu holds"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}
