// Attack gallery: what each Byzantine behaviour does to the vanilla
// baseline versus GuanYu.
//
// For every attack in the catalogue this example runs two deployments on
// the same workload — a single-server mean-aggregating baseline with one
// Byzantine worker, and GuanYu(f̄=5, f=1) with five Byzantine workers plus
// one Byzantine server — and prints the final accuracies side by side.
//
// Run with: go run ./examples/byzantine
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/tensor"
)

func main() {
	attacks := []struct {
		name string
		mk   func(i int) attack.Attack
	}{
		{"random-gaussian", func(i int) attack.Attack { return attack.NewRandomGaussian(100, uint64(i)+1) }},
		{"sign-flip x10", func(int) attack.Attack { return attack.SignFlip{Scale: 10} }},
		{"scaled-norm x1e6", func(int) attack.Attack { return attack.ScaledNorm{Factor: 1e6} }},
		{"nan-injection", func(int) attack.Attack { return attack.NaNInjection{} }},
		{"zero", func(int) attack.Attack { return attack.Zero{} }},
		{"silent", func(int) attack.Attack { return attack.Silent{} }},
	}

	const steps, batch = 120, 16
	fmt.Printf("%-18s %-18s %-18s\n", "attack", "vanilla (1 byz)", "GuanYu (5+1 byz)")
	for _, a := range attacks {
		vanilla := core.VanillaTF(core.ImageWorkload(1000, 3), steps, batch, 3)
		vanilla = core.WithByzantineWorkers(vanilla, 1, a.mk)
		vres, err := core.Run(vanilla)
		if err != nil {
			log.Fatalf("%s vanilla: %v", a.name, err)
		}
		vanillaAcc := vres.FinalAccuracy
		if !tensor.IsFinite(vres.Final) {
			vanillaAcc = 0 // model destroyed outright (NaN parameters)
		}

		gy := core.GuanYu(core.ImageWorkload(1000, 3), 5, 1, steps, batch, 3)
		gy = core.WithByzantineWorkers(gy, 5, a.mk)
		gy = core.WithByzantineServers(gy, 1, func(i int) attack.Attack {
			return attack.TwoFaced{Inner: a.mk(i + 50)}
		})
		gres, err := core.Run(gy)
		if err != nil {
			log.Fatalf("%s guanyu: %v", a.name, err)
		}

		fmt.Printf("%-18s %-18.3f %-18.3f\n", a.name, vanillaAcc, gres.FinalAccuracy)
	}
	fmt.Println("\nGuanYu holds its accuracy under every behaviour; the vanilla")
	fmt.Println("deployment survives only the harmless ones (zero/silent).")
}
