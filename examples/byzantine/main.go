// Attack gallery: what each Byzantine behaviour does to the vanilla
// baseline versus GuanYu.
//
// For every attack in the catalogue — the blind corruptions plus the
// omniscient colluders (ALIE, inner-product, anti-Krum) that observe the
// honest cluster before lying — this example runs two deployments on the
// same workload: a single-server mean-aggregating baseline with one
// Byzantine worker, and GuanYu(f̄=5, f=1) with five Byzantine workers plus
// one Byzantine server, printing the final accuracies side by side. Both
// deployments are described with the same guanyu builder; only the options
// differ.
//
// Run with: go run ./examples/byzantine
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"repro/guanyu"
)

type params struct {
	examples, steps, batch int
}

func main() {
	if err := run(os.Stdout, params{examples: 1000, steps: 120, batch: 16}); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, p params) error {
	attacks := []struct {
		name string
		mk   func(i int) guanyu.Attack
	}{
		{"random-gaussian", func(i int) guanyu.Attack { return guanyu.NewRandomGaussian(100, uint64(i)+1) }},
		{"sign-flip x10", func(int) guanyu.Attack { return guanyu.SignFlip{Scale: 10} }},
		{"scaled-norm x1e6", func(int) guanyu.Attack { return guanyu.ScaledNorm{Factor: 1e6} }},
		{"nan-injection", func(int) guanyu.Attack { return guanyu.NaNInjection{} }},
		{"zero", func(int) guanyu.Attack { return guanyu.Zero{} }},
		{"silent", func(int) guanyu.Attack { return guanyu.Silent{} }},
		// The adaptive adversaries: they read the honest cluster state
		// (ClusterView) each step before choosing their corruption.
		{"alie z=1.5", func(int) guanyu.Attack { return &guanyu.ALIE{Z: 1.5} }},
		{"inner-product", func(int) guanyu.Attack { return &guanyu.InnerProduct{Eps: 3} }},
		{"anti-krum", func(int) guanyu.Attack { return &guanyu.AntiKrum{} }},
	}

	ctx := context.Background()
	fmt.Fprintf(out, "%-18s %-18s %-18s\n", "attack", "vanilla (1 byz)", "GuanYu (5+1 byz)")
	for _, a := range attacks {
		vanilla, err := guanyu.New(
			guanyu.WithWorkload(guanyu.ImageWorkload(p.examples, 3)),
			guanyu.WithVanilla(),
			guanyu.WithOptimizedRuntime(),
			guanyu.WithWorkers(guanyu.PaperWorkers, 0),
			guanyu.WithAttackedWorkers(1, a.mk),
			guanyu.WithSteps(p.steps), guanyu.WithBatch(p.batch), guanyu.WithSeed(3),
		)
		if err != nil {
			return fmt.Errorf("%s vanilla: %w", a.name, err)
		}
		// Vanilla synchronous training waits for every worker, so a silent
		// node stalls it forever; the simulator reports that as a quorum
		// failure. Score it zero, like a NaN-destroyed model.
		vanillaAcc := 0.0
		if vres, err := vanilla.Run(ctx); err == nil && guanyu.IsFinite(vres.Final) {
			vanillaAcc = vres.FinalAccuracy
		}

		gy, err := guanyu.New(
			guanyu.WithWorkload(guanyu.ImageWorkload(p.examples, 3)),
			guanyu.WithServers(6, 1),
			guanyu.WithWorkers(18, 5),
			guanyu.WithAttackedWorkers(5, a.mk),
			guanyu.WithAttackedServers(1, func(i int) guanyu.Attack {
				return guanyu.TwoFaced{Inner: a.mk(i + 50)}
			}),
			guanyu.WithSteps(p.steps), guanyu.WithBatch(p.batch), guanyu.WithSeed(3),
		)
		if err != nil {
			return fmt.Errorf("%s guanyu: %w", a.name, err)
		}
		gres, err := gy.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s guanyu: %w", a.name, err)
		}

		fmt.Fprintf(out, "%-18s %-18.3f %-18.3f\n", a.name, vanillaAcc, gres.FinalAccuracy)
	}
	fmt.Fprintln(out, "\nGuanYu holds its accuracy under every corrupting behaviour the")
	fmt.Fprintln(out, "vanilla deployment cannot survive (silence even stalls vanilla's")
	fmt.Fprintln(out, "all-workers quorum outright), including the omniscient colluders")
	fmt.Fprintln(out, "that hide inside the honest point cloud.")
	return nil
}
