package main

import (
	"strings"
	"testing"
)

// Smoke test: the full 12-node loopback-TCP deployment must finish at tiny
// parameters and exit cleanly (all sockets torn down).
func TestDistributedTCPSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke run")
	}
	var out strings.Builder
	if err := run(&out, params{examples: 300, steps: 8, batch: 8}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "TCP deployment: 6 servers + 6 workers") {
		t.Fatalf("output missing deployment line:\n%s", out.String())
	}
}
