// Distributed deployment over real TCP sockets.
//
// Every node — 6 parameter servers and 6 workers — listens on its own
// localhost TCP port and exchanges gob-encoded frames, exactly as separate
// processes on a cluster would (the repository's equivalent of the paper's
// gRPC deployment on Grid5000). One worker is Byzantine.
//
// Run with: go run ./examples/distributed_tcp
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/gar"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		numServers, fServers = 6, 1
		numWorkers, fWorkers = 6, 1
		steps, batch         = 60, 16
	)
	data := dataset.Blobs(900, 3, 3, 0.5, 31)
	train, test := data.Split(0.8, tensor.NewRNG(32))
	model := nn.NewMLP(tensor.NewRNG(33), 2, 16, 3)
	theta0 := model.ParamVector()

	// Start every node's listener on an ephemeral port, then exchange the
	// address book — the bootstrap a deployment tool would do.
	nodes := make(map[string]*transport.TCPNode, numServers+numWorkers)
	addrs := make(map[string]string, numServers+numWorkers)
	var ids []string
	for i := 0; i < numServers; i++ {
		ids = append(ids, cluster.ServerID(i))
	}
	for j := 0; j < numWorkers; j++ {
		ids = append(ids, cluster.WorkerID(j))
	}
	for _, id := range ids {
		n, err := transport.ListenTCP(id, "127.0.0.1:0", nil)
		if err != nil {
			return fmt.Errorf("listen %s: %w", id, err)
		}
		defer n.Close()
		nodes[id] = n
		addrs[id] = n.Addr()
	}
	for _, n := range nodes {
		for id, addr := range addrs {
			if id != n.ID() {
				if err := addPeer(n, id, addr); err != nil {
					return err
				}
			}
		}
	}

	serverIDs := ids[:numServers]
	workerIDs := ids[numServers:]
	rng := tensor.NewRNG(34)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		finals  []tensor.Vector
		runErrs []error
	)
	for i := 0; i < numServers; i++ {
		peers := make([]string, 0, numServers-1)
		for k, id := range serverIDs {
			if k != i {
				peers = append(peers, id)
			}
		}
		scfg := cluster.ServerConfig{
			ID:              serverIDs[i],
			Workers:         workerIDs,
			Peers:           peers,
			Init:            theta0,
			GradRule:        gar.MultiKrum{F: fWorkers},
			ParamRule:       gar.Median{},
			QuorumGradients: gar.MinQuorum(fWorkers),
			QuorumParams:    gar.MinQuorum(fServers),
			Steps:           steps,
			LR:              func(int) float64 { return 0.2 },
			Timeout:         time.Minute,
		}
		ep := nodes[serverIDs[i]]
		wg.Add(1)
		go func() {
			defer wg.Done()
			theta, err := cluster.RunServer(ep, scfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				runErrs = append(runErrs, err)
				return
			}
			finals = append(finals, theta)
		}()
	}
	for j := 0; j < numWorkers; j++ {
		wcfg := cluster.WorkerConfig{
			ID:           workerIDs[j],
			Servers:      serverIDs,
			Model:        model.Clone(),
			Sampler:      dataset.NewSampler(train, rng.Split()),
			Batch:        batch,
			ParamRule:    gar.Median{},
			QuorumParams: gar.MinQuorum(fServers),
			Steps:        steps,
			Timeout:      time.Minute,
		}
		if j == numWorkers-1 {
			wcfg.Attack = attack.SignFlip{Scale: 10} // one Byzantine worker
		}
		ep := nodes[workerIDs[j]]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cluster.RunWorker(ep, wcfg); err != nil {
				mu.Lock()
				runErrs = append(runErrs, err)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(runErrs) > 0 {
		return runErrs[0]
	}

	final, err := gar.Median{}.Aggregate(finals)
	if err != nil {
		return err
	}
	eval := model.Clone()
	if err := eval.SetParamVector(final); err != nil {
		return err
	}
	fmt.Printf("TCP deployment: %d servers + %d workers over %d real sockets\n",
		numServers, numWorkers, len(nodes))
	fmt.Printf("final accuracy with one Byzantine worker: %.3f\n",
		nn.Accuracy(eval, test.X, test.Labels))
	return nil
}

// addPeer registers a peer address on an already-listening node.
func addPeer(n *transport.TCPNode, id, addr string) error {
	return n.AddPeer(id, addr)
}
