// Distributed deployment over real TCP sockets.
//
// The same guanyu builder that drives the simulator and the in-process
// live runtime here runs every node — 6 parameter servers and 6 workers —
// over its own localhost TCP port with binary-framed messages, exactly as
// separate processes on a cluster would (the repository's equivalent of
// the paper's gRPC deployment on Grid5000). One worker is Byzantine. For
// the one-OS-process-per-node shape, see cmd/guanyu-node and
// guanyu.RunNode.
//
// Run with: go run ./examples/distributed_tcp
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/guanyu"
)

type params struct {
	examples, steps, batch int
}

func main() {
	if err := run(os.Stdout, params{examples: 900, steps: 60, batch: 16}); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, p params) error {
	const numServers, numWorkers = 6, 6
	d, err := guanyu.New(
		guanyu.WithWorkload(guanyu.BlobWorkload(p.examples, 31)),
		guanyu.WithRuntime(guanyu.Live),
		guanyu.WithTCPTransport(),
		guanyu.WithServers(numServers, 1),
		guanyu.WithWorkers(numWorkers, 1),
		guanyu.WithWorkerAttack(numWorkers-1, guanyu.SignFlip{Scale: 10}),
		guanyu.WithSteps(p.steps),
		guanyu.WithBatch(p.batch),
		guanyu.WithLR(guanyu.ConstantLR(0.2)),
		guanyu.WithTimeout(time.Minute),
		guanyu.WithSeed(34),
	)
	if err != nil {
		return err
	}
	res, err := d.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "TCP deployment: %d servers + %d workers over %d real sockets\n",
		numServers, numWorkers, numServers+numWorkers)
	fmt.Fprintf(out, "final accuracy with one Byzantine worker: %.3f (in %v)\n",
		res.FinalAccuracy, res.WallTime.Round(time.Millisecond))
	return nil
}
