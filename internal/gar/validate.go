package gar

import "fmt"

// The theoretical preconditions of GuanYu (Section 3.2 of the paper;
// authoritative statement: guanyu/gar/bounds.go):
//
//	n  ≥ 3f+3    parameter servers, f Byzantine
//	n̄  ≥ 3f̄+3    workers, f̄ Byzantine
//	2f+3 ≤ q ≤ n−f      quorum for the coordinate-wise median M
//	2f̄+3 ≤ q̄ ≤ n̄−f̄      quorum for Multi-Krum F
//
// Per-rule input bounds (n ≥ 2f+3 for krum/multi-krum, n ≥ 2f+1 for
// trimmed-mean, n ≥ 4f+3 for bulyan, n ≥ f+1 for mda) are enforced by the
// registry's MinInputs entries. These helpers centralise the checks so
// every deployment entry point validates against the same statement of the
// theory.

// CheckDeployment verifies the population bound n ≥ 3f+3 for one node role.
func CheckDeployment(role string, n, f int) error {
	if f < 0 {
		return fmt.Errorf("gar: negative Byzantine count f=%d for %s", f, role)
	}
	if n < 3*f+3 {
		return fmt.Errorf("gar: %s population n=%d violates n ≥ 3f+3 with f=%d",
			role, n, f)
	}
	return nil
}

// CheckQuorum verifies 2f+3 ≤ q ≤ n−f for one node role.
func CheckQuorum(role string, n, f, q int) error {
	if q < 2*f+3 {
		return fmt.Errorf("gar: %s quorum q=%d violates q ≥ 2f+3 with f=%d",
			role, q, f)
	}
	if q > n-f {
		return fmt.Errorf("gar: %s quorum q=%d violates q ≤ n−f with n=%d f=%d",
			role, q, n, f)
	}
	return nil
}

// MinQuorum returns the smallest legal quorum 2f+3 for the given f.
func MinQuorum(f int) int { return 2*f + 3 }

// MaxQuorum returns the largest legal quorum n−f.
func MaxQuorum(n, f int) int { return n - f }

// MinPopulation returns the smallest legal population 3f+3 for the given f.
func MinPopulation(f int) int { return 3*f + 3 }

// BreakdownPoint returns the asymptotically optimal Byzantine fraction the
// paper derives for asynchronous networks: 1/3 (Section 3.5). Exposed so the
// documentation examples and the EXPERIMENTS harness quote a single source.
func BreakdownPoint() float64 { return 1.0 / 3.0 }
