package gar

import (
	"math"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// streamRules are the rules with a shard-streaming path, at an f matching
// the 9-input quorums the tests feed.
func streamRules() []StreamingRule {
	return []StreamingRule{Mean{}, Median{}, TrimmedMean{F: 2}, MultiKrum{F: 2}}
}

func streamInputs(t *testing.T, n, d int) []tensor.Vector {
	t.Helper()
	rng := tensor.NewRNG(7)
	inputs := make([]tensor.Vector, n)
	for i := range inputs {
		inputs[i] = rng.NormVec(make(tensor.Vector, d), 0, 1)
	}
	return inputs
}

// foldShards drives a streamer over the size-derived shards of inputs in
// the given shard order (a permutation of shard indices).
func foldShards(t *testing.T, st ShardStreamer, inputs []tensor.Vector, d, size int, order []int) tensor.Vector {
	t.Helper()
	for _, s := range order {
		lo := s * size
		hi := lo + size
		if hi > d {
			hi = d
		}
		shard := make([]tensor.Vector, len(inputs))
		for k, v := range inputs {
			shard[k] = v[lo:hi]
		}
		if err := st.Fold(lo, hi, shard); err != nil {
			t.Fatalf("fold shard %d: %v", s, err)
		}
	}
	out, err := st.Result()
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	return out
}

// TestStreamBitIdentity is the sharded-vs-whole regression of the chunked
// streaming path: for every streaming rule, every shard size (one
// coordinate, a prime that does not divide d, a non-dividing power of two,
// and the whole dimension), every fold order, and both serial and parallel
// kernels, the streamed result must carry the exact bits of the
// whole-vector Aggregate.
func TestStreamBitIdentity(t *testing.T) {
	const (
		n = 9
		d = 257
	)
	inputs := streamInputs(t, n, d)
	for _, workers := range []int{1, 4} {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		for _, rule := range streamRules() {
			want, err := rule.Aggregate(inputs)
			if err != nil {
				t.Fatalf("workers=%d %s: aggregate: %v", workers, rule.Name(), err)
			}
			for _, size := range []int{1, 7, 64, d} {
				shards := (d + size - 1) / size
				orders := [][]int{make([]int, shards), make([]int, shards)}
				for s := 0; s < shards; s++ {
					orders[0][s] = s          // in order: the honest streaming schedule
					orders[1][shards-1-s] = s // fully reversed: worst-case reordering
				}
				for oi, order := range orders {
					got := foldShards(t, rule.NewStreamer(d), inputs, d, size, order)
					if len(got) != d {
						t.Fatalf("workers=%d %s size=%d: got %d coordinates", workers, rule.Name(), size, len(got))
					}
					for i := range got {
						if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
							t.Fatalf("workers=%d %s size=%d order=%d: coordinate %d differs: %v vs %v",
								workers, rule.Name(), size, oi, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestStreamSelectedIndices checks that the streaming Multi-Krum selection
// agrees with the whole-vector SelectIndices — the accountability signal
// must not change under sharding.
func TestStreamSelectedIndices(t *testing.T) {
	const (
		n = 9
		d = 64
	)
	inputs := streamInputs(t, n, d)
	rule := MultiKrum{F: 2}
	want, err := rule.SelectIndices(inputs)
	if err != nil {
		t.Fatal(err)
	}
	st := rule.NewStreamer(d).(*multiKrumStreamer)
	order := []int{3, 0, 2, 1} // 4 shards of 16, deliberately out of order
	foldShards(t, st, inputs, d, 16, order)
	got := st.SelectedIndices()
	if len(got) != len(want) {
		t.Fatalf("selected %d indices, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("selection differs at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

// TestStreamErrors exercises the misuse guards: missing shards, double
// folds, range escapes and quorum-size changes must surface as errors, not
// silent corruption.
func TestStreamErrors(t *testing.T) {
	const d = 32
	inputs := streamInputs(t, 9, d)
	half := make([]tensor.Vector, len(inputs))
	for k, v := range inputs {
		half[k] = v[:16]
	}

	for _, rule := range streamRules() {
		st := rule.NewStreamer(d)
		if err := st.Fold(0, 16, half); err != nil {
			t.Fatalf("%s: first fold: %v", rule.Name(), err)
		}
		if _, err := st.Result(); err == nil {
			t.Fatalf("%s: result with a missing shard succeeded", rule.Name())
		}

		st = rule.NewStreamer(d)
		if err := st.Fold(0, 16, half); err != nil {
			t.Fatal(err)
		}
		if err := st.Fold(0, 16, half); err == nil {
			t.Fatalf("%s: double fold succeeded", rule.Name())
		}

		st = rule.NewStreamer(d)
		if err := st.Fold(24, 48, half); err == nil {
			t.Fatalf("%s: fold beyond the dimension succeeded", rule.Name())
		}
	}

	// Multi-Krum must reject a quorum whose membership size changes between
	// shards — the pinned-quorum contract.
	st := MultiKrum{F: 2}.NewStreamer(d)
	if err := st.Fold(0, 16, half); err != nil {
		t.Fatal(err)
	}
	if err := st.Fold(16, 32, half[:8]); err == nil {
		t.Fatal("multi-krum accepted a shrunken shard quorum")
	}
}
