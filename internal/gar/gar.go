package gar

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Rule is a gradient aggregation rule.
type Rule interface {
	// Name identifies the rule in logs and experiment tables.
	Name() string
	// Aggregate combines the input vectors into one output vector. Inputs
	// are not modified; the output is freshly allocated. An error is
	// returned when the input set is too small for the rule's resilience
	// guarantee to hold.
	Aggregate(inputs []tensor.Vector) (tensor.Vector, error)
}

// ErrTooFewInputs is returned when a rule receives fewer inputs than its
// Byzantine-resilience precondition requires.
var ErrTooFewInputs = errors.New("gar: too few inputs for rule precondition")

// SelectiveRule is implemented by rules that filter a subset of their
// inputs (rather than blending all of them): SelectIndices reports which
// inputs the rule keeps. Deployments use it for accountability — repeatedly
// excluded senders are likely Byzantine (see stats.Suspicion).
type SelectiveRule interface {
	Rule
	// SelectIndices returns the indices of the inputs the rule's output is
	// built from.
	SelectIndices(inputs []tensor.Vector) ([]int, error)
}

func checkInputs(inputs []tensor.Vector) error {
	if len(inputs) == 0 {
		return fmt.Errorf("%w: empty input set", ErrTooFewInputs)
	}
	d := len(inputs[0])
	for i, v := range inputs {
		if len(v) != d {
			return fmt.Errorf("gar: input %d has dimension %d, want %d", i, len(v), d)
		}
	}
	return nil
}

// Mean is the arithmetic mean: the standard non-Byzantine aggregation
// ("vanilla TF" in the paper). A single Byzantine input can move its output
// arbitrarily — it is the baseline GuanYu is compared against.
type Mean struct{}

var _ Rule = Mean{}

// Name implements Rule.
func (Mean) Name() string { return "mean" }

// Aggregate implements Rule.
func (Mean) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	if err := checkInputs(inputs); err != nil {
		return nil, err
	}
	return tensor.Mean(inputs), nil
}

// Median is the coordinate-wise median M: coordinate i of the output is the
// scalar median of coordinate i over all inputs. Its geometric contraction
// property (Section 9.2.3 of the paper) is what prevents correct parameter
// servers from drifting apart.
type Median struct{}

var _ Rule = Median{}

// Name implements Rule.
func (Median) Name() string { return "coordinate-median" }

// Aggregate implements Rule.
func (Median) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	if err := checkInputs(inputs); err != nil {
		return nil, err
	}
	out := make(tensor.Vector, len(inputs[0]))
	if err := MedianInto(out, make([]float64, len(inputs)), inputs); err != nil {
		return nil, err
	}
	return out, nil
}

// lexLess orders equal-length vectors lexicographically (tie-breaker for
// selection criteria that must not depend on input order).
func lexLess(a, b tensor.Vector) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// medianInPlace computes the median of xs, permuting xs.
func medianInPlace(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return xs[n/2-1]/2 + xs[n/2]/2
}

// KrumScores returns the Krum score of every input: the score of input x is
// the sum of squared distances between x and its n−f−2 closest other inputs.
// Lower scores indicate vectors in denser (more plausibly honest)
// neighbourhoods.
func KrumScores(inputs []tensor.Vector, f int) ([]float64, error) {
	n := len(inputs)
	if n < 2*f+3 {
		return nil, fmt.Errorf("%w: Krum needs n ≥ 2f+3, got n=%d f=%d",
			ErrTooFewInputs, n, f)
	}
	// Pairwise squared distances, parallel over rows: the task owning row i
	// computes dist[i][j] and mirrors it into dist[j][i] for every j > i, so
	// each cell is written by exactly one task (the smaller index) and the
	// matrix is identical at any parallelism. Rows shrink as i grows; grain-1
	// chunks pulled dynamically keep the workers balanced. Small problems
	// collapse to a single chunk and run inline.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	d := len(inputs[0])
	rowGrain := 1
	if (n-1)*d < 1<<15 {
		rowGrain = n
	}
	parallel.For(n, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < n; j++ {
				dd := tensor.SquaredDistance(inputs[i], inputs[j])
				dist[i][j] = dd
				dist[j][i] = dd
			}
		}
	})
	return scoresFromDist(dist, f), nil
}

// scoresFromDist turns a full pairwise squared-distance matrix into Krum
// scores: input i scores the sum of its n−f−2 smallest distances to other
// inputs. Shared verbatim by the whole-vector path and the shard-streaming
// path, so both produce bit-identical scores from equal matrices.
func scoresFromDist(dist [][]float64, f int) []float64 {
	n := len(dist)
	k := n - f - 2 // number of closest neighbours in the score
	scores := make([]float64, n)
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, dist[i][j])
			}
		}
		sort.Float64s(row)
		var s float64
		for _, d := range row[:k] {
			s += d
		}
		scores[i] = s
	}
	return scores
}

// smallestByScore returns the indices of the keep smallest scores, ordered
// by ascending score. Shared by Multi-Krum's whole and streaming selection
// paths: a deterministic sort over identical score arrays yields identical
// index permutations, which is what makes the two paths select — and hence
// aggregate — identically.
func smallestByScore(scores []float64, keep int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	return idx[:keep]
}

// Krum selects the single smallest-scoring input (Blanchard et al., 2017).
type Krum struct {
	// F is the declared number of Byzantine inputs tolerated.
	F int
}

var _ Rule = Krum{}

// Name implements Rule.
func (k Krum) Name() string { return fmt.Sprintf("krum(f=%d)", k.F) }

// Aggregate implements Rule.
func (k Krum) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	if err := checkInputs(inputs); err != nil {
		return nil, err
	}
	scores, err := KrumScores(inputs, k.F)
	if err != nil {
		return nil, err
	}
	best := 0
	for i, s := range scores {
		if s < scores[best] {
			best = i
		}
	}
	return tensor.Clone(inputs[best]), nil
}

// MultiKrum is the paper's F: it averages the n−f−2 smallest-scoring inputs.
// It is (α,f)-Byzantine resilient for n ≥ 2f+3 and, unlike Krum, keeps most
// of the variance-reduction benefit of averaging.
type MultiKrum struct {
	// F is the declared number of Byzantine inputs tolerated.
	F int
}

var _ Rule = MultiKrum{}

// Name implements Rule.
func (m MultiKrum) Name() string { return fmt.Sprintf("multi-krum(f=%d)", m.F) }

// Aggregate implements Rule.
func (m MultiKrum) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	if err := checkInputs(inputs); err != nil {
		return nil, err
	}
	selected, err := MultiKrumSelect(inputs, m.F)
	if err != nil {
		return nil, err
	}
	return tensor.Mean(selected), nil
}

// SelectIndices implements SelectiveRule.
func (m MultiKrum) SelectIndices(inputs []tensor.Vector) ([]int, error) {
	return MultiKrumSelectIndices(inputs, m.F)
}

var _ SelectiveRule = MultiKrum{}

// MultiKrumSelect returns the n−f−2 smallest-scoring inputs (the set whose
// mean Multi-Krum outputs). Exposed for tests and for Bulyan.
func MultiKrumSelect(inputs []tensor.Vector, f int) ([]tensor.Vector, error) {
	idx, err := MultiKrumSelectIndices(inputs, f)
	if err != nil {
		return nil, err
	}
	out := make([]tensor.Vector, len(idx))
	for i, k := range idx {
		out[i] = inputs[k]
	}
	return out, nil
}

// MultiKrumSelectIndices returns the indices of the n−f−2 smallest-scoring
// inputs. The complement — the f+2 highest-scoring inputs — is the set the
// rule effectively accuses of being outliers; callers use it to maintain
// per-sender suspicion statistics (see stats.Suspicion).
func MultiKrumSelectIndices(inputs []tensor.Vector, f int) ([]int, error) {
	scores, err := KrumScores(inputs, f)
	if err != nil {
		return nil, err
	}
	return smallestByScore(scores, len(inputs)-f-2), nil
}

// TrimmedMean is the coordinate-wise trimmed mean: per coordinate, the f
// smallest and f largest values are discarded and the rest averaged.
// Requires n ≥ 2f+1. Provided as an ablation alternative to Multi-Krum.
type TrimmedMean struct {
	// F is the number of values trimmed from each tail.
	F int
}

var _ Rule = TrimmedMean{}

// Name implements Rule.
func (t TrimmedMean) Name() string { return fmt.Sprintf("trimmed-mean(f=%d)", t.F) }

// Aggregate implements Rule.
func (t TrimmedMean) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	if err := checkInputs(inputs); err != nil {
		return nil, err
	}
	n := len(inputs)
	if n < 2*t.F+1 {
		return nil, fmt.Errorf("%w: trimmed mean needs n ≥ 2f+1, got n=%d f=%d",
			ErrTooFewInputs, n, t.F)
	}
	out := make(tensor.Vector, len(inputs[0]))
	trimmedInto(out, inputs, t.F)
	return out, nil
}

// trimmedInto writes the coordinate-wise f-trimmed mean of inputs into dst
// (dst and every input share one length). Coordinate-chunked: each chunk
// owns its coordinate range and sorts into its own column scratch, so the
// output is identical at any parallelism — and because the shard-streaming
// path calls this same kernel on shard slices, sharded and whole-vector
// aggregation are bit-identical by construction.
func trimmedInto(dst tensor.Vector, inputs []tensor.Vector, f int) {
	n := len(inputs)
	kept := float64(n - 2*f)
	parallel.For(len(dst), coordGrain, func(lo, hi int) {
		col := make([]float64, n)
		for i := lo; i < hi; i++ {
			for j, v := range inputs {
				col[j] = v[i]
			}
			sort.Float64s(col)
			var s float64
			for _, x := range col[f : n-f] {
				s += x
			}
			dst[i] = s / kept
		}
	})
}

// Bulyan composes Multi-Krum selection with a coordinate-wise trimmed
// aggregation (El-Mhamdi et al., ICML 2018 — "The hidden vulnerability of
// distributed learning in Byzantium"). It defends against attacks that hide
// large per-coordinate deviations inside small Euclidean distances, at the
// price of the stronger requirement n ≥ 4f+3.
type Bulyan struct {
	// F is the declared number of Byzantine inputs tolerated.
	F int
}

var _ Rule = Bulyan{}

// Name implements Rule.
func (b Bulyan) Name() string { return fmt.Sprintf("bulyan(f=%d)", b.F) }

// Aggregate implements Rule.
func (b Bulyan) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	if err := checkInputs(inputs); err != nil {
		return nil, err
	}
	n, f := len(inputs), b.F
	if n < 4*f+3 {
		return nil, fmt.Errorf("%w: Bulyan needs n ≥ 4f+3, got n=%d f=%d",
			ErrTooFewInputs, n, f)
	}
	// Phase 1: iteratively pick θ = n − 2f vectors by repeated Krum
	// selection, removing each winner from the pool.
	pool := make([]tensor.Vector, n)
	copy(pool, inputs)
	theta := n - 2*f
	selected := make([]tensor.Vector, 0, theta)
	for len(selected) < theta {
		scores, err := KrumScores(pool, f)
		if err != nil {
			// Pool shrank below the Krum precondition: finish the selection
			// with the remaining vectors closest to the pool's coordinate-wise
			// median (still ≥ 2f+1 candidates). Closeness-to-median is
			// order-free — unlike "take the pool in its current order" — so
			// the rule stays permutation-invariant; exact-distance ties break
			// lexicographically, which makes duplicates interchangeable.
			med, merr := (Median{}).Aggregate(pool)
			if merr != nil {
				return nil, merr
			}
			sort.SliceStable(pool, func(a, b int) bool {
				da, db := tensor.SquaredDistance(pool[a], med), tensor.SquaredDistance(pool[b], med)
				if da != db {
					return da < db
				}
				return lexLess(pool[a], pool[b])
			})
			selected = append(selected, pool[:theta-len(selected)]...)
			break
		}
		best := 0
		for i, s := range scores {
			if s < scores[best] {
				best = i
			}
		}
		selected = append(selected, pool[best])
		pool = append(pool[:best], pool[best+1:]...)
	}
	// Phase 2: per coordinate, average the β = θ − 2f values closest to the
	// median of the selected set. Coordinate-chunked like the trimmed mean;
	// each chunk owns its coordinate range and scratch column.
	d := len(inputs[0])
	beta := theta - 2*f
	out := make(tensor.Vector, d)
	parallel.For(d, coordGrain, func(cLo, cHi int) {
		col := make([]float64, len(selected))
		for i := cLo; i < cHi; i++ {
			for j, v := range selected {
				col[j] = v[i]
			}
			sort.Float64s(col)
			// The β values closest to the median form the tightest contiguous
			// window of the sorted column; slide to find it.
			bestLo, bestSpread := 0, col[beta-1]-col[0]
			for lo := 1; lo+beta <= len(col); lo++ {
				if s := col[lo+beta-1] - col[lo]; s < bestSpread {
					bestSpread = s
					bestLo = lo
				}
			}
			var s float64
			for _, x := range col[bestLo : bestLo+beta] {
				s += x
			}
			out[i] = s / float64(beta)
		}
	})
	return out, nil
}
