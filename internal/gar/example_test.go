package gar_test

import (
	"fmt"

	"repro/internal/gar"
	"repro/internal/tensor"
)

// Multi-Krum tolerates f arbitrary inputs among n ≥ 2f+3: the outlier below
// cannot move the aggregate away from the honest cluster.
func ExampleMultiKrum() {
	honest := []tensor.Vector{
		{1.0, 1.0}, {1.01, 0.99}, {0.99, 1.01}, {1.0, 1.0},
	}
	byzantine := tensor.Vector{1e9, -1e9}
	inputs := append(honest, byzantine)

	out, err := gar.MultiKrum{F: 1}.Aggregate(inputs)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("aggregate ≈ (%.1f, %.1f)\n", out[0], out[1])
	// Output:
	// aggregate ≈ (1.0, 1.0)
}

// The coordinate-wise median is the parameter-aggregation rule M: each
// output coordinate is the median of that coordinate over the inputs, so a
// minority of arbitrary vectors cannot pull any coordinate outside the
// honest range.
func ExampleMedian() {
	inputs := []tensor.Vector{
		{1, 10}, {2, 20}, {3, 30}, {1e12, -1e12},
	}
	out, err := gar.Median{}.Aggregate(inputs)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("median = (%.1f, %.1f)\n", out[0], out[1])
	// Output:
	// median = (2.5, 15.0)
}

// The deployment bounds of the paper: n ≥ 3f+3 nodes and quorums in
// [2f+3, n−f].
func ExampleCheckDeployment() {
	fmt.Println(gar.CheckDeployment("server", 6, 1)) // legal
	fmt.Println(gar.CheckDeployment("server", 5, 1) != nil)
	fmt.Println(gar.MinQuorum(5), gar.MaxQuorum(18, 5))
	// Output:
	// <nil>
	// true
	// 13 13
}
