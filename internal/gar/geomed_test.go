package gar

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestGeoMedOnSymmetricPoints(t *testing.T) {
	// The geometric median of a symmetric configuration is its centre.
	inputs := vecs(
		tensor.Vector{1, 0}, tensor.Vector{-1, 0},
		tensor.Vector{0, 1}, tensor.Vector{0, -1})
	out, err := GeoMed{}.Aggregate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Norm2(out) > 1e-6 {
		t.Fatalf("geometric median of symmetric cloud = %v, want origin", out)
	}
}

func TestGeoMedRobustToOutlier(t *testing.T) {
	rng := tensor.NewRNG(60)
	inputs := make([]tensor.Vector, 0, 7)
	for i := 0; i < 6; i++ {
		inputs = append(inputs, rng.NormVec(make(tensor.Vector, 3), 5, 0.1))
	}
	inputs = append(inputs, tensor.Vector{1e9, 1e9, 1e9})
	out, err := GeoMed{}.Aggregate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range out {
		if math.Abs(x-5) > 1 {
			t.Fatalf("outlier moved geometric median at %d: %v", i, out)
		}
	}
}

func TestGeoMedCoincidentInput(t *testing.T) {
	// When the starting median coincides with an input, Weiszfeld must not
	// divide by zero.
	inputs := vecs(tensor.Vector{1, 1}, tensor.Vector{1, 1}, tensor.Vector{1, 1})
	out, err := GeoMed{}.Aggregate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 1 {
		t.Fatalf("geomed of identical points = %v", out)
	}
}

// Property: the geometric median's summed distance is no worse than the
// coordinate-wise median's (it minimises exactly that objective).
func TestGeoMedMinimisesSumDistance(t *testing.T) {
	sumDist := func(y tensor.Vector, inputs []tensor.Vector) float64 {
		var s float64
		for _, x := range inputs {
			s += tensor.Distance(x, y)
		}
		return s
	}
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n, d := 3+rng.Intn(6), 1+rng.Intn(4)
		inputs := make([]tensor.Vector, n)
		for i := range inputs {
			inputs[i] = rng.NormVec(make(tensor.Vector, d), 0, 2)
		}
		gm, err := GeoMed{}.Aggregate(inputs)
		if err != nil {
			return false
		}
		cm, err := Median{}.Aggregate(inputs)
		if err != nil {
			return false
		}
		return sumDist(gm, inputs) <= sumDist(cm, inputs)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMDAPicksTightestSubset(t *testing.T) {
	// 4 clustered + 1 far point with f=1: MDA must average the cluster.
	inputs := vecs(
		tensor.Vector{1.0}, tensor.Vector{1.1}, tensor.Vector{0.9},
		tensor.Vector{1.05}, tensor.Vector{100})
	out, err := MDA{F: 1}.Aggregate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	want := (1.0 + 1.1 + 0.9 + 1.05) / 4
	if math.Abs(out[0]-want) > 1e-12 {
		t.Fatalf("MDA = %v, want %v", out[0], want)
	}
}

func TestMDAZeroFIsMean(t *testing.T) {
	inputs := vecs(tensor.Vector{1}, tensor.Vector{3})
	out, err := MDA{F: 0}.Aggregate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Fatalf("MDA(f=0) = %v", out[0])
	}
}

func TestMDAPreconditions(t *testing.T) {
	inputs := vecs(tensor.Vector{1}, tensor.Vector{2})
	if _, err := (MDA{F: 2}).Aggregate(inputs); !errors.Is(err, ErrTooFewInputs) {
		t.Fatalf("n ≤ f accepted: %v", err)
	}
	if _, err := (MDA{F: -1}).Aggregate(inputs); !errors.Is(err, ErrTooFewInputs) {
		t.Fatalf("negative f accepted: %v", err)
	}
}

// Property: MDA's output lies in the convex hull of the honest cluster when
// the f Byzantine points are far outliers.
func TestMDAConfinementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		fByz := 1 + rng.Intn(2)
		n := fByz + 4 + rng.Intn(3)
		d := 1 + rng.Intn(3)
		inputs := make([]tensor.Vector, 0, n)
		for i := 0; i < n-fByz; i++ {
			inputs = append(inputs, rng.NormVec(make(tensor.Vector, d), 0, 1))
		}
		for i := 0; i < fByz; i++ {
			inputs = append(inputs, rng.NormVec(make(tensor.Vector, d), 1e7, 1))
		}
		out, err := MDA{F: fByz}.Aggregate(inputs)
		if err != nil {
			return false
		}
		return tensor.Norm2(out) < 1e3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
