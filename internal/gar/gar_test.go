package gar

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func vecs(vs ...tensor.Vector) []tensor.Vector { return vs }

func TestMean(t *testing.T) {
	out, err := Mean{}.Aggregate(vecs(
		tensor.Vector{0, 0}, tensor.Vector{2, 4}, tensor.Vector{4, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 2 {
		t.Fatalf("mean = %v", out)
	}
}

func TestMeanIsVulnerable(t *testing.T) {
	// One Byzantine input drags the mean arbitrarily far — the motivating
	// weakness of the vanilla baseline.
	honest := vecs(tensor.Vector{1, 1}, tensor.Vector{1, 1}, tensor.Vector{1, 1})
	byz := append(tensor.CloneAll(honest), tensor.Vector{1e9, 1e9})
	out, err := Mean{}.Aggregate(byz)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] < 1e8 {
		t.Fatalf("mean unexpectedly robust: %v", out)
	}
}

func TestMedianKnownValues(t *testing.T) {
	out, err := Median{}.Aggregate(vecs(
		tensor.Vector{1, 10}, tensor.Vector{2, 30}, tensor.Vector{3, 20}))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 20 {
		t.Fatalf("median = %v, want [2 20]", out)
	}
}

func TestMedianRobustToMinority(t *testing.T) {
	// With a majority of honest values at 1, any minority of outliers cannot
	// move a coordinate of the median outside the honest range.
	inputs := vecs(
		tensor.Vector{1}, tensor.Vector{1.1}, tensor.Vector{0.9},
		tensor.Vector{1e12}, tensor.Vector{-1e12})
	out, err := Median{}.Aggregate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] < 0.9 || out[0] > 1.1 {
		t.Fatalf("median broke containment: %v", out)
	}
}

func TestMedianDoesNotMutateInputs(t *testing.T) {
	a := tensor.Vector{3, 1}
	b := tensor.Vector{1, 3}
	c := tensor.Vector{2, 2}
	if _, err := (Median{}).Aggregate(vecs(a, b, c)); err != nil {
		t.Fatal(err)
	}
	if a[0] != 3 || b[0] != 1 || c[0] != 2 {
		t.Fatal("Median mutated its inputs")
	}
}

// Property (containment): each coordinate of the median lies within the
// [min, max] of that coordinate over the inputs — the parallelotope property
// the contraction lemma builds on.
func TestMedianContainmentProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n, d := 1+rng.Intn(9), 1+rng.Intn(6)
		inputs := make([]tensor.Vector, n)
		for i := range inputs {
			inputs[i] = rng.NormVec(make(tensor.Vector, d), 0, 5)
		}
		out, err := Median{}.Aggregate(inputs)
		if err != nil {
			return false
		}
		for c := 0; c < d; c++ {
			lo, hi := inputs[0][c], inputs[0][c]
			for _, v := range inputs {
				lo = math.Min(lo, v[c])
				hi = math.Max(hi, v[c])
			}
			if out[c] < lo-1e-12 || out[c] > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (permutation invariance) for the median rule.
func TestMedianPermutationInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n, d := 2+rng.Intn(8), 1+rng.Intn(5)
		inputs := make([]tensor.Vector, n)
		for i := range inputs {
			inputs[i] = rng.NormVec(make(tensor.Vector, d), 0, 3)
		}
		a, err := Median{}.Aggregate(inputs)
		if err != nil {
			return false
		}
		perm := rng.Perm(n)
		shuffled := make([]tensor.Vector, n)
		for i, p := range perm {
			shuffled[i] = inputs[p]
		}
		b, err := Median{}.Aggregate(shuffled)
		if err != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKrumScoresPreconditions(t *testing.T) {
	ins := vecs(tensor.Vector{1}, tensor.Vector{2}, tensor.Vector{3})
	if _, err := KrumScores(ins, 1); !errors.Is(err, ErrTooFewInputs) {
		t.Fatalf("want ErrTooFewInputs, got %v", err)
	}
}

func TestKrumPicksDenseCluster(t *testing.T) {
	// 5 honest near origin + 1 far outlier with f=1 (n=6 ≥ 2f+3=5):
	// Krum must select one of the clustered points.
	rng := tensor.NewRNG(30)
	inputs := make([]tensor.Vector, 0, 6)
	for i := 0; i < 5; i++ {
		inputs = append(inputs, rng.NormVec(make(tensor.Vector, 3), 0, 0.1))
	}
	inputs = append(inputs, tensor.Vector{100, 100, 100})
	out, err := Krum{F: 1}.Aggregate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Norm2(out) > 1 {
		t.Fatalf("Krum selected the outlier: %v", out)
	}
}

func TestMultiKrumExcludesOutliers(t *testing.T) {
	rng := tensor.NewRNG(31)
	inputs := make([]tensor.Vector, 0, 8)
	for i := 0; i < 6; i++ {
		v := rng.NormVec(make(tensor.Vector, 4), 1, 0.05)
		inputs = append(inputs, v)
	}
	inputs = append(inputs, tensor.Vector{-500, -500, -500, -500})
	inputs = append(inputs, tensor.Vector{500, 500, 500, 500})
	out, err := MultiKrum{F: 2}.Aggregate(inputs) // n=8 ≥ 2·2+3=7
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range out {
		if math.Abs(x-1) > 0.5 {
			t.Fatalf("Multi-Krum output contaminated at %d: %v", i, out)
		}
	}
}

// Property: Multi-Krum's output stays within the bounding box of the honest
// inputs when the f Byzantine inputs are far outliers.
func TestMultiKrumConfinementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		fByz := 1 + rng.Intn(2)
		n := 2*fByz + 3 + rng.Intn(3)
		d := 1 + rng.Intn(5)
		honest := n - fByz
		inputs := make([]tensor.Vector, 0, n)
		for i := 0; i < honest; i++ {
			inputs = append(inputs, rng.NormVec(make(tensor.Vector, d), 0, 1))
		}
		for i := 0; i < fByz; i++ {
			// outliers far outside the honest cloud
			v := rng.NormVec(make(tensor.Vector, d), 1e6, 1)
			inputs = append(inputs, v)
		}
		out, err := MultiKrum{F: fByz}.Aggregate(inputs)
		if err != nil {
			return false
		}
		// Output must stay near the honest cloud (well below the outliers).
		return tensor.Norm2(out) < 1e3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiKrumSelectCount(t *testing.T) {
	rng := tensor.NewRNG(32)
	n, f := 9, 2
	inputs := make([]tensor.Vector, n)
	for i := range inputs {
		inputs[i] = rng.NormVec(make(tensor.Vector, 3), 0, 1)
	}
	sel, err := MultiKrumSelect(inputs, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != n-f-2 {
		t.Fatalf("selected %d, want n−f−2 = %d", len(sel), n-f-2)
	}
}

func TestTrimmedMean(t *testing.T) {
	inputs := vecs(
		tensor.Vector{1}, tensor.Vector{2}, tensor.Vector{3},
		tensor.Vector{1000}, tensor.Vector{-1000})
	out, err := TrimmedMean{F: 1}.Aggregate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	// trims −1000 and 1000 → mean(1,2,3) = 2
	if out[0] != 2 {
		t.Fatalf("trimmed mean = %v, want 2", out[0])
	}
	if _, err := (TrimmedMean{F: 3}).Aggregate(inputs); !errors.Is(err, ErrTooFewInputs) {
		t.Fatalf("precondition not enforced: %v", err)
	}
}

func TestBulyanPreconditionAndRobustness(t *testing.T) {
	rng := tensor.NewRNG(33)
	f := 1
	n := 4*f + 3 // = 7
	inputs := make([]tensor.Vector, 0, n)
	for i := 0; i < n-f; i++ {
		inputs = append(inputs, rng.NormVec(make(tensor.Vector, 3), 2, 0.1))
	}
	inputs = append(inputs, tensor.Vector{-1e9, 1e9, -1e9})
	out, err := Bulyan{F: f}.Aggregate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range out {
		if math.Abs(x-2) > 1 {
			t.Fatalf("Bulyan contaminated at %d: %v", i, out)
		}
	}
	if _, err := (Bulyan{F: 2}).Aggregate(inputs); !errors.Is(err, ErrTooFewInputs) {
		t.Fatalf("Bulyan precondition not enforced: %v", err)
	}
}

func TestAggregateEmptyAndMismatched(t *testing.T) {
	rules := []Rule{Mean{}, Median{}, Krum{F: 1}, MultiKrum{F: 1},
		TrimmedMean{F: 1}, Bulyan{F: 1}}
	for _, r := range rules {
		if _, err := r.Aggregate(nil); err == nil {
			t.Fatalf("%s accepted empty input", r.Name())
		}
		if _, err := r.Aggregate(vecs(tensor.Vector{1}, tensor.Vector{1, 2})); err == nil {
			t.Fatalf("%s accepted mismatched dimensions", r.Name())
		}
	}
}

func TestRuleNamesDistinct(t *testing.T) {
	rules := []Rule{Mean{}, Median{}, Krum{F: 1}, MultiKrum{F: 1},
		TrimmedMean{F: 1}, Bulyan{F: 1}}
	seen := map[string]bool{}
	for _, r := range rules {
		if seen[r.Name()] {
			t.Fatalf("duplicate rule name %q", r.Name())
		}
		seen[r.Name()] = true
	}
}

// Contraction micro-property (Lemma 9.2.3): for aligned clouds, the distance
// between medians of two random (overlapping) subsets is on average strictly
// smaller than the max pairwise distance of the cloud.
func TestMedianContractionOnAlignedClouds(t *testing.T) {
	rng := tensor.NewRNG(34)
	const trials = 200
	var ratioSum float64
	for trial := 0; trial < trials; trial++ {
		d := 20
		u := rng.NormVec(make(tensor.Vector, d), 0, 1) // shared direction
		n := 9
		cloud := make([]tensor.Vector, n)
		for i := range cloud {
			a := rng.Norm() // position along u
			cloud[i] = make(tensor.Vector, d)
			for c := 0; c < d; c++ {
				cloud[i][c] = a*u[c] + 0.05*rng.Norm() // small misalignment
			}
		}
		q := 7
		y, err := Median{}.Aggregate(cloud[:q])
		if err != nil {
			t.Fatal(err)
		}
		z, err := Median{}.Aggregate(cloud[n-q:])
		if err != nil {
			t.Fatal(err)
		}
		maxD := tensor.MaxPairwiseDistance(cloud)
		if maxD == 0 {
			continue
		}
		ratioSum += tensor.Distance(y, z) / maxD
	}
	avg := ratioSum / trials
	if avg >= 1 {
		t.Fatalf("no contraction on average: E[ratio] = %v ≥ 1", avg)
	}
	t.Logf("average contraction ratio m = %.3f", avg)
}

func TestValidateHelpers(t *testing.T) {
	if err := CheckDeployment("server", 6, 1); err != nil {
		t.Fatal(err)
	}
	if err := CheckDeployment("server", 5, 1); err == nil {
		t.Fatal("n=5, f=1 should violate n ≥ 3f+3")
	}
	if err := CheckDeployment("server", 3, -1); err == nil {
		t.Fatal("negative f should be rejected")
	}
	if err := CheckQuorum("worker", 18, 5, 13); err != nil {
		t.Fatal(err)
	}
	if err := CheckQuorum("worker", 18, 5, 12); err == nil {
		t.Fatal("q=12 < 2f+3=13 should be rejected")
	}
	if err := CheckQuorum("worker", 18, 5, 14); err == nil {
		t.Fatal("q=14 > n−f=13 should be rejected")
	}
	if MinQuorum(5) != 13 || MaxQuorum(18, 5) != 13 || MinPopulation(1) != 6 {
		t.Fatal("bound helpers disagree with the theory")
	}
	if bp := BreakdownPoint(); math.Abs(bp-1.0/3.0) > 1e-15 {
		t.Fatalf("breakdown point = %v", bp)
	}
}
