package gar

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/tensor"
)

// Property-based tests of the resilience invariants the theory promises,
// checked over seeded random inputs with adversarially-chosen f-subsets:
//
//   - coordinate-wise median and trimmed mean stay inside the honest
//     per-coordinate range for ANY f corrupt inputs (n ≥ 2f+1);
//   - Krum returns an input vector; Multi-Krum returns the average of its
//     selected input subset;
//   - every rule is permutation-invariant (exactly for order-free kernels,
//     to summation-order rounding for averaging ones);
//   - the legality checks accept exactly the boundary of the paper's
//     bounds (Section 3.2, restated in guanyu/gar/bounds.go).

// propCase is one seeded random instance: n total inputs of dimension d, of
// which the f at corruptIdx are adversarial (huge, tiny, sign-flipped or
// colluding copies — chosen by the seed).
type propCase struct {
	n, f, d int
	inputs  []tensor.Vector
	corrupt map[int]bool
}

func genCase(seed uint64, n, f, d int) propCase {
	rng := tensor.NewRNG(seed)
	c := propCase{n: n, f: f, d: d, corrupt: make(map[int]bool, f)}
	c.inputs = make([]tensor.Vector, n)
	for i := range c.inputs {
		c.inputs[i] = rng.NormVec(make([]float64, d), 0, 1)
	}
	// Corrupt a random f-subset with a seed-chosen strategy.
	perm := rng.Perm(n)
	var colluding tensor.Vector
	for k := 0; k < f; k++ {
		i := perm[k]
		c.corrupt[i] = true
		switch rng.Intn(4) {
		case 0: // huge outlier
			c.inputs[i] = rng.NormVec(make([]float64, d), 0, 1e6)
		case 1: // tiny (stalling) vector
			c.inputs[i] = make(tensor.Vector, d)
		case 2: // sign-flipped amplification of an honest vector
			c.inputs[i] = tensor.Scale(c.inputs[perm[n-1]], -30)
		default: // small-variance collusion (ALIE-style copies)
			if colluding == nil {
				colluding = rng.NormVec(make([]float64, d), 3, 1e-3)
			}
			c.inputs[i] = tensor.Clone(colluding)
		}
	}
	return c
}

// honestRange returns the per-coordinate [min, max] over honest inputs.
func (c propCase) honestRange() (lo, hi tensor.Vector) {
	lo = make(tensor.Vector, c.d)
	hi = make(tensor.Vector, c.d)
	for i := range lo {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	for j, v := range c.inputs {
		if c.corrupt[j] {
			continue
		}
		for i, x := range v {
			lo[i] = math.Min(lo[i], x)
			hi[i] = math.Max(hi[i], x)
		}
	}
	return lo, hi
}

// propSizes are (n, f) pairs at and above the coordinate-rule boundary
// n ≥ 2f+1, including the exact boundary where the honest majority is
// slimmest.
var propSizes = []struct{ n, f int }{
	{3, 1}, {5, 2}, {7, 3}, {9, 4}, {13, 5}, {18, 5}, {21, 10},
}

func TestMedianAndTrimmedMeanStayInHonestRange(t *testing.T) {
	for _, size := range propSizes {
		for seed := uint64(0); seed < 30; seed++ {
			c := genCase(seed*31+uint64(size.n), size.n, size.f, 6)
			lo, hi := c.honestRange()
			rules := []Rule{Median{}, TrimmedMean{F: size.f}}
			for _, rule := range rules {
				out, err := rule.Aggregate(c.inputs)
				if err != nil {
					t.Fatalf("n=%d f=%d seed=%d %s: %v", size.n, size.f, seed, rule.Name(), err)
				}
				for i, x := range out {
					if x < lo[i]-1e-12 || x > hi[i]+1e-12 {
						t.Fatalf("n=%d f=%d seed=%d %s: coordinate %d = %v outside honest range [%v, %v]",
							size.n, size.f, seed, rule.Name(), i, x, lo[i], hi[i])
					}
				}
			}
		}
	}
}

func TestKrumOutputIsAnInputVector(t *testing.T) {
	for _, size := range propSizes {
		if size.n < 2*size.f+3 {
			continue // below the Krum precondition
		}
		for seed := uint64(0); seed < 20; seed++ {
			c := genCase(seed*17+uint64(size.n), size.n, size.f, 5)
			out, err := Krum{F: size.f}.Aggregate(c.inputs)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, v := range c.inputs {
				if tensor.Distance(out, v) == 0 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("n=%d f=%d seed=%d: Krum output is not an input vector", size.n, size.f, seed)
			}
		}
	}
}

func TestMultiKrumOutputIsAverageOfSelection(t *testing.T) {
	for _, size := range propSizes {
		if size.n < 2*size.f+3 {
			continue
		}
		for seed := uint64(0); seed < 20; seed++ {
			c := genCase(seed*13+uint64(size.n), size.n, size.f, 5)
			rule := MultiKrum{F: size.f}
			out, err := rule.Aggregate(c.inputs)
			if err != nil {
				t.Fatal(err)
			}
			idx, err := rule.SelectIndices(c.inputs)
			if err != nil {
				t.Fatal(err)
			}
			if len(idx) != size.n-size.f-2 {
				t.Fatalf("selection size %d, want n−f−2 = %d", len(idx), size.n-size.f-2)
			}
			sel := make([]tensor.Vector, len(idx))
			for i, k := range idx {
				sel[i] = c.inputs[k]
			}
			want := tensor.Mean(sel)
			for i := range out {
				if out[i] != want[i] {
					t.Fatalf("n=%d f=%d seed=%d: output differs from mean of selection at %d",
						size.n, size.f, seed, i)
				}
			}
		}
	}
}

// allRules builds every registered rule at a given f.
func allRules(t *testing.T, f int) []Rule {
	t.Helper()
	out := make([]Rule, 0, len(RuleNames()))
	for _, name := range RuleNames() {
		r, err := FromName(name, f)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

func TestAllRulesPermutationInvariant(t *testing.T) {
	const n, f, d = 13, 2, 6 // n ≥ 4f+3 so even Bulyan is legal
	for seed := uint64(0); seed < 15; seed++ {
		c := genCase(seed*7+3, n, f, d)
		rng := tensor.NewRNG(seed + 99)
		perm := rng.Perm(n)
		permuted := make([]tensor.Vector, n)
		for i, p := range perm {
			permuted[i] = c.inputs[p]
		}
		for _, rule := range allRules(t, f) {
			a, err := rule.Aggregate(c.inputs)
			if err != nil {
				t.Fatalf("%s: %v", rule.Name(), err)
			}
			b, err := rule.Aggregate(permuted)
			if err != nil {
				t.Fatalf("%s permuted: %v", rule.Name(), err)
			}
			for i := range a {
				// Averaging rules fold in input order, so permutation may
				// shift the result by summation-order rounding; order-free
				// kernels must match exactly. The tolerance scales with the
				// coordinate magnitude (corrupt inputs reach 1e6).
				tol := 1e-9 * math.Max(1, math.Abs(a[i]))
				if math.Abs(a[i]-b[i]) > tol {
					t.Fatalf("%s seed=%d: coordinate %d not permutation-invariant: %v vs %v",
						rule.Name(), seed, i, a[i], b[i])
				}
			}
		}
	}
}

// TestLegalityBoundaryTable walks the exact boundary of the paper's bounds
// as stated in guanyu/gar/bounds.go: populations n ≥ 3f+3, quorums
// 2f+3 ≤ q ≤ n−f, and per-rule input preconditions at MinInputs.
func TestLegalityBoundaryTable(t *testing.T) {
	for f := 0; f <= 4; f++ {
		nMin := MinPopulation(f)
		if err := CheckDeployment("role", nMin, f); err != nil {
			t.Fatalf("f=%d: boundary population n=3f+3=%d rejected: %v", f, nMin, err)
		}
		if err := CheckDeployment("role", nMin-1, f); err == nil {
			t.Fatalf("f=%d: population %d below 3f+3 accepted", f, nMin-1)
		}
		n := nMin
		qMin, qMax := MinQuorum(f), MaxQuorum(n, f)
		if err := CheckQuorum("role", n, f, qMin); err != nil {
			t.Fatalf("f=%d: boundary quorum q=2f+3=%d rejected: %v", f, qMin, err)
		}
		if err := CheckQuorum("role", n, f, qMax); err != nil {
			t.Fatalf("f=%d: boundary quorum q=n−f=%d rejected: %v", f, qMax, err)
		}
		if err := CheckQuorum("role", n, f, qMin-1); err == nil {
			t.Fatalf("f=%d: quorum %d below 2f+3 accepted", f, qMin-1)
		}
		if err := CheckQuorum("role", n, f, qMax+1); err == nil {
			t.Fatalf("f=%d: quorum %d above n−f accepted", f, qMax+1)
		}
	}

	// Per-rule input-cardinality boundary: exactly MinInputs succeeds,
	// one fewer errors with ErrTooFewInputs — never a panic or a bogus
	// output.
	rng := tensor.NewRNG(5)
	for _, name := range RuleNames() {
		for f := 0; f <= 3; f++ {
			min, err := MinInputs(name, f)
			if err != nil {
				t.Fatal(err)
			}
			rule, err := FromName(name, f)
			if err != nil {
				t.Fatal(err)
			}
			mk := func(n int) []tensor.Vector {
				vs := make([]tensor.Vector, n)
				for i := range vs {
					vs[i] = rng.NormVec(make([]float64, 4), 0, 1)
				}
				return vs
			}
			if out, err := rule.Aggregate(mk(min)); err != nil || len(out) != 4 {
				t.Fatalf("%s f=%d: boundary input count %d failed: out=%v err=%v",
					name, f, min, out, err)
			}
			if min > 1 {
				if _, err := rule.Aggregate(mk(min - 1)); err == nil {
					t.Fatalf("%s f=%d: %d inputs (below MinInputs=%d) accepted",
						name, f, min-1, min)
				}
			}
			if _, err := rule.Aggregate(nil); err == nil {
				t.Fatalf("%s: empty input set accepted", name)
			}
		}
	}
}

// TestMismatchedDimensionsRejected: shape errors must surface as errors,
// never as panics or silently truncated aggregates.
func TestMismatchedDimensionsRejected(t *testing.T) {
	bad := []tensor.Vector{make(tensor.Vector, 4), make(tensor.Vector, 5),
		make(tensor.Vector, 4), make(tensor.Vector, 4), make(tensor.Vector, 4),
		make(tensor.Vector, 4), make(tensor.Vector, 4), make(tensor.Vector, 4),
		make(tensor.Vector, 4), make(tensor.Vector, 4), make(tensor.Vector, 4)}
	for _, rule := range allRules(t, 1) {
		if _, err := rule.Aggregate(bad); err == nil {
			t.Fatalf("%s: mismatched dimensions accepted", rule.Name())
		}
	}
}

func TestGenCaseSanity(t *testing.T) {
	// The generator must actually produce f corrupt entries and n−f honest
	// ones, or every property above is vacuous.
	for _, size := range propSizes {
		c := genCase(1, size.n, size.f, 3)
		if len(c.corrupt) != size.f {
			t.Fatalf("n=%d f=%d: %d corrupt entries", size.n, size.f, len(c.corrupt))
		}
		lo, hi := c.honestRange()
		for i := range lo {
			if !(lo[i] <= hi[i]) {
				t.Fatal(fmt.Sprintf("empty honest range at coordinate %d", i))
			}
		}
	}
}
