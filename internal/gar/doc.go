// Package gar implements the Gradient Aggregation Rules (GARs) of the paper:
// the coordinate-wise median M used for parameter-vector aggregation, the
// Multi-Krum rule F used for gradient aggregation, the vulnerable arithmetic
// mean baseline, and extension rules (trimmed mean, Bulyan, MDA, geometric
// median).
//
// A GAR is a function (R^d)^n → R^d. A (α,f)-Byzantine-resilient GAR
// tolerates f arbitrary inputs among its n inputs. The package also exposes
// the legality checks the theory requires. The authoritative statement of
// the bounds lives in guanyu/gar/bounds.go; validate.go and the registry
// enforce the same statement:
//
//	deployment populations  n ≥ 3f+3 (servers), n̄ ≥ 3f̄+3 (workers)
//	quorums                 2f+3 ≤ q ≤ n−f per role
//	rule inputs             n ≥ 2f+3 (krum, multi-krum), n ≥ 2f+1
//	                        (trimmed-mean), n ≥ 4f+3 (bulyan), n ≥ f+1 (mda)
//
// # Execution invariants
//
// The O(n²·d) Krum score matrix and the coordinate loops of the median,
// trimmed-mean and Bulyan kernels execute through internal/parallel. Every
// decomposition is element-independent (each output cell owned by one
// chunk) or an ordered fold, so results are bit-identical at any
// parallelism — including fully serial.
//
// Rules implementing StreamingRule (mean, median, trimmed-mean,
// multi-krum) additionally aggregate shard-by-shard for the chunked wire
// path (see stream.go and transport.ShardCollector): folding the shards
// of a fixed input set — in any arrival order, at any shard size —
// produces the exact bits of the whole-vector Aggregate on that set.
// Coordinate-wise rules get this by construction; Multi-Krum extends each
// pairwise distance accumulator strictly in coordinate order, the serial
// whole-vector summation merely paused at shard boundaries, and shares
// the whole path's scoring, selection and averaging kernels.
package gar
