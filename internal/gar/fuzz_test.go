package gar

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/tensor"
)

// Native fuzz targets for the aggregation kernels. The contract under
// arbitrary input shapes and values:
//
//   - malformed shapes (empty input sets, mismatched or below-precondition
//     cardinalities, mismatched dimensions) must ERROR — never panic;
//   - well-formed finite inputs of moderate magnitude must produce a
//     finite output of the right dimension — non-finite values may only
//     ever *propagate* from non-finite inputs, never appear spontaneously.
//
// NaN/Inf *payload* rejection is deliberately not the kernels' job: honest
// nodes sanitise at the message boundary (transport.Collector.Validator /
// core's rejectPayload), and the vanilla baseline's mean must faithfully
// remain poisonable (Figure 4). The fuzz targets pin down that split.

// decodeFuzzInputs turns raw fuzz bytes into a vector set: header bytes
// pick n, d, the declared f and a shape-corruption flag, the rest feed
// float64 coordinates (bit patterns, so NaN/±Inf arise naturally).
func decodeFuzzInputs(data []byte) (inputs []tensor.Vector, declaredF int, mismatched bool) {
	if len(data) < 4 {
		return nil, 0, false
	}
	n := int(data[0])%10 + 1
	d := int(data[1]) % 8
	declaredF = int(data[2]) % 4
	shapeCorrupt := data[3]%4 == 0
	payload := data[4:]
	word := func(k int) float64 {
		if len(payload) < 8 {
			return float64(k)
		}
		off := (k * 8) % (len(payload) - 7)
		return math.Float64frombits(binary.LittleEndian.Uint64(payload[off : off+8]))
	}
	inputs = make([]tensor.Vector, n)
	k := 0
	for i := range inputs {
		di := d
		if shapeCorrupt && i == n-1 && n > 1 {
			di = d + 1 // one vector with a mismatched dimension
			mismatched = true
		}
		inputs[i] = make(tensor.Vector, di)
		for j := range inputs[i] {
			inputs[i][j] = word(k)
			k++
		}
	}
	return inputs, declaredF, mismatched
}

func FuzzAggregateRules(f *testing.F) {
	f.Add([]byte{3, 2, 1, 1})
	f.Add([]byte{5, 0, 0, 0}) // zero-dimension vectors
	f.Add([]byte{9, 4, 2, 4, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	nan := make([]byte, 4+16)
	copy(nan, []byte{7, 2, 1, 1})
	binary.LittleEndian.PutUint64(nan[4:], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(nan[12:], math.Float64bits(math.Inf(1)))
	f.Add(nan)
	mism := []byte{4, 3, 1, 0} // data[3]%4==0 → shape corruption
	f.Add(mism)

	f.Fuzz(func(t *testing.T, data []byte) {
		inputs, declaredF, mismatched := decodeFuzzInputs(data)
		finiteModerate := len(inputs) > 0
		for _, v := range inputs {
			for _, x := range v {
				if !(math.Abs(x) < 1e100) { // false for NaN/±Inf too
					finiteModerate = false
				}
			}
		}
		for _, name := range RuleNames() {
			rule, err := FromName(name, declaredF)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out, err := rule.Aggregate(inputs) // must never panic
			if mismatched && err == nil {
				t.Fatalf("%s accepted mismatched dimensions", name)
			}
			if err != nil {
				continue
			}
			if len(out) != len(inputs[0]) {
				t.Fatalf("%s: output dimension %d, want %d", name, len(out), len(inputs[0]))
			}
			if finiteModerate && !tensor.IsFinite(out) {
				t.Fatalf("%s: spontaneous non-finite output from finite inputs %v", name, inputs)
			}
		}
	})
}

// FuzzMedianInto drives the zero-alloc kernel path the public guanyu/gar
// median uses, with an independently sized scratch column.
func FuzzMedianInto(f *testing.F) {
	f.Add([]byte{3, 2, 0, 1}, 2, 3)
	f.Add([]byte{4, 4, 0, 1}, 0, 0)
	f.Fuzz(func(t *testing.T, data []byte, dstLen, colLen int) {
		inputs, _, _ := decodeFuzzInputs(data)
		if dstLen < 0 || dstLen > 64 || colLen < 0 || colLen > 64 {
			return
		}
		dst := make(tensor.Vector, dstLen)
		col := make([]float64, colLen)
		// Wrong dst/col sizes must be reported, never written out of
		// bounds; matching sizes must fill dst with per-coordinate medians.
		err := MedianInto(dst, col, inputs)
		if err != nil {
			return
		}
		if len(inputs) == 0 || dstLen != len(inputs[0]) || colLen < len(inputs) {
			t.Fatalf("MedianInto accepted inconsistent sizes: dst=%d col=%d inputs=%dx?",
				dstLen, colLen, len(inputs))
		}
	})
}
