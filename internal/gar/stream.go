package gar

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Shard-streaming aggregation. The chunked wire path (see
// internal/transport's ShardCollector) hands each coordinate shard's
// quorum to the aggregation rule the moment it completes, instead of
// buffering whole vectors; the interfaces below are the rule-side half of
// that contract.
//
// The invariant every streamer maintains: folding the shards of a fixed
// input set — in any arrival order, at any shard size, at any parallelism
// — produces the exact bits of the whole-vector Aggregate on that set.
// Coordinate-wise rules get this for free (each output coordinate depends
// only on its own column; the streamers reuse the very chunk kernels
// Aggregate runs). Multi-Krum's pairwise distances span shards, so its
// streamer defers out-of-order shards and extends each running
// distance accumulator strictly in coordinate order — the serial
// whole-vector summation, merely paused at shard boundaries.

// ShardStreamer aggregates one round incrementally: Fold consumes the
// quorum's ordered payloads for coordinate range [lo, hi) (slices are
// handed off and may be retained); Result finalises once every range has
// been folded. A streamer is single-use and not safe for concurrent Folds.
type ShardStreamer interface {
	// Fold consumes one shard: inputs[k] holds coordinates [lo, hi) of
	// input k. The folded ranges must eventually tile [0, dim) exactly;
	// order is free.
	Fold(lo, hi int, inputs []tensor.Vector) error
	// Result returns the aggregated vector; it errors when folded ranges
	// do not tile the dimension or the rule's precondition failed.
	Result() (tensor.Vector, error)
}

// StreamingRule is a Rule with a shard-streaming path whose Result is
// bit-identical to Aggregate over the same inputs.
type StreamingRule interface {
	Rule
	// NewStreamer starts one aggregation round at the given dimension.
	NewStreamer(dim int) ShardStreamer
	// PinnedQuorum reports whether every shard must carry the same ordered
	// input set (true for rules that correlate coordinates across shards,
	// e.g. Multi-Krum's distances; false for coordinate-wise rules, whose
	// per-coordinate resilience holds for any quorum with ≤ f Byzantine
	// members).
	PinnedQuorum() bool
}

// Streaming support for the three deployment rules plus the mean baseline.
var (
	_ StreamingRule = Mean{}
	_ StreamingRule = Median{}
	_ StreamingRule = TrimmedMean{}
	_ StreamingRule = MultiKrum{}
)

// coordStreamer is the shared scaffolding of the coordinate-wise
// streamers: an output vector, tiling bookkeeping, and the per-fold input
// checks.
type coordStreamer struct {
	out    tensor.Vector
	folded int // coordinates folded so far (ranges are disjoint, so a count suffices)
	marks  []bool
}

func newCoordStreamer(dim int) coordStreamer {
	return coordStreamer{out: make(tensor.Vector, dim), marks: make([]bool, dim)}
}

// claim validates one fold's range and inputs and marks the range folded.
func (c *coordStreamer) claim(lo, hi int, inputs []tensor.Vector) error {
	if lo < 0 || hi > len(c.out) || lo >= hi {
		return fmt.Errorf("gar: shard fold range [%d, %d) outside dimension %d", lo, hi, len(c.out))
	}
	if len(inputs) == 0 {
		return fmt.Errorf("%w: empty shard quorum", ErrTooFewInputs)
	}
	for k, v := range inputs {
		if len(v) != hi-lo {
			return fmt.Errorf("gar: shard input %d has %d coordinates, range wants %d", k, len(v), hi-lo)
		}
	}
	for i := lo; i < hi; i++ {
		if c.marks[i] {
			return fmt.Errorf("gar: coordinate %d folded twice", i)
		}
		c.marks[i] = true
	}
	c.folded += hi - lo
	return nil
}

func (c *coordStreamer) result() (tensor.Vector, error) {
	if c.folded != len(c.out) {
		return nil, fmt.Errorf("gar: %d of %d coordinates folded", c.folded, len(c.out))
	}
	return c.out, nil
}

// PinnedQuorum implements StreamingRule.
func (Mean) PinnedQuorum() bool { return false }

// NewStreamer implements StreamingRule.
func (Mean) NewStreamer(dim int) ShardStreamer { return &meanStreamer{newCoordStreamer(dim)} }

type meanStreamer struct{ coordStreamer }

func (s *meanStreamer) Fold(lo, hi int, inputs []tensor.Vector) error {
	if err := s.claim(lo, hi, inputs); err != nil {
		return err
	}
	dst := s.out[lo:hi]
	parallel.For(hi-lo, meanGrain, func(rlo, rhi int) {
		MeanChunkInto(dst, inputs, rlo, rhi)
	})
	return nil
}

func (s *meanStreamer) Result() (tensor.Vector, error) { return s.result() }

// PinnedQuorum implements StreamingRule.
func (Median) PinnedQuorum() bool { return false }

// NewStreamer implements StreamingRule.
func (Median) NewStreamer(dim int) ShardStreamer { return &medianStreamer{cs: newCoordStreamer(dim)} }

type medianStreamer struct {
	cs  coordStreamer
	col []float64
}

func (s *medianStreamer) Fold(lo, hi int, inputs []tensor.Vector) error {
	if err := s.cs.claim(lo, hi, inputs); err != nil {
		return err
	}
	if len(s.col) < len(inputs) {
		s.col = make([]float64, len(inputs))
	}
	return MedianInto(s.cs.out[lo:hi], s.col, inputs)
}

func (s *medianStreamer) Result() (tensor.Vector, error) { return s.cs.result() }

// PinnedQuorum implements StreamingRule.
func (TrimmedMean) PinnedQuorum() bool { return false }

// NewStreamer implements StreamingRule.
func (t TrimmedMean) NewStreamer(dim int) ShardStreamer {
	return &trimmedStreamer{cs: newCoordStreamer(dim), f: t.F}
}

type trimmedStreamer struct {
	cs coordStreamer
	f  int
}

func (s *trimmedStreamer) Fold(lo, hi int, inputs []tensor.Vector) error {
	if err := s.cs.claim(lo, hi, inputs); err != nil {
		return err
	}
	if n := len(inputs); n < 2*s.f+1 {
		return fmt.Errorf("%w: trimmed mean needs n ≥ 2f+1, got n=%d f=%d", ErrTooFewInputs, n, s.f)
	}
	trimmedInto(s.cs.out[lo:hi], inputs, s.f)
	return nil
}

func (s *trimmedStreamer) Result() (tensor.Vector, error) { return s.cs.result() }

// PinnedQuorum implements StreamingRule: Multi-Krum's pairwise distances
// correlate coordinates across shards, so every shard must carry the same
// ordered input set.
func (MultiKrum) PinnedQuorum() bool { return true }

// NewStreamer implements StreamingRule: the two-pass streaming path. Pass
// one runs during the receive stream — each arriving shard extends the
// running pairwise squared-distance accumulators, strictly in coordinate
// order (out-of-order shards wait in a small pending set), so the full
// O(n²·d) distance work overlaps the network instead of following it.
// Pass two, at Result, scores, selects and averages the retained shard
// payloads — bit-identical to the whole-vector rule because the
// accumulator extension IS the serial SquaredDistance loop, merely paused
// at shard boundaries, and scoring/selection/mean share the whole path's
// kernels. Memory note: because selection is global, every folded shard
// is retained until Result — the streamer's resident floor is O(q·d),
// unlike the coordinate-wise streamers' O(q·shard); the win over the
// whole-vector path is the n→q buffering drop and the overlapped
// distance pass.
func (m MultiKrum) NewStreamer(dim int) ShardStreamer {
	return &multiKrumStreamer{f: m.F, dim: dim, pending: make(map[int]foldChunk)}
}

// foldChunk is one folded shard retained for the selection mean.
type foldChunk struct {
	lo, hi int
	inputs []tensor.Vector
}

type multiKrumStreamer struct {
	f, dim  int
	n       int // input count, fixed by the first fold
	cursor  int // next coordinate the accumulators expect
	pending map[int]foldChunk
	chunks  []foldChunk // accumulated chunks, in coordinate order
	dist    [][]float64 // running Σ (xᵢ−xⱼ)², upper triangle
	kept    []int       // selected indices, set by Result
}

func (s *multiKrumStreamer) Fold(lo, hi int, inputs []tensor.Vector) error {
	if lo < 0 || hi > s.dim || lo >= hi {
		return fmt.Errorf("gar: shard fold range [%d, %d) outside dimension %d", lo, hi, s.dim)
	}
	if s.n == 0 {
		n := len(inputs)
		if n < 2*s.f+3 {
			return fmt.Errorf("%w: Krum needs n ≥ 2f+3, got n=%d f=%d", ErrTooFewInputs, n, s.f)
		}
		s.n = n
		s.dist = make([][]float64, n)
		for i := range s.dist {
			s.dist[i] = make([]float64, n)
		}
	}
	if len(inputs) != s.n {
		return fmt.Errorf("gar: shard quorum size changed from %d to %d (Multi-Krum needs a pinned quorum)",
			s.n, len(inputs))
	}
	for k, v := range inputs {
		if len(v) != hi-lo {
			return fmt.Errorf("gar: shard input %d has %d coordinates, range wants %d", k, len(v), hi-lo)
		}
	}
	if lo < s.cursor {
		return fmt.Errorf("gar: coordinate %d folded twice", lo)
	}
	if _, dup := s.pending[lo]; dup {
		return fmt.Errorf("gar: coordinate %d folded twice", lo)
	}
	s.pending[lo] = foldChunk{lo: lo, hi: hi, inputs: inputs}
	// Extend the accumulators over the contiguous prefix now available.
	// Folding strictly in coordinate order is what keeps the running sums
	// bit-identical to the whole-vector SquaredDistance loop; shards that
	// completed early simply wait their turn (honest senders stream in
	// order, so the pending set stays small in practice).
	for {
		ch, ok := s.pending[s.cursor]
		if !ok {
			return nil
		}
		delete(s.pending, s.cursor)
		s.accumulate(ch)
		s.chunks = append(s.chunks, ch)
		s.cursor = ch.hi
	}
}

// accumulate extends every pair's running squared-distance sum over one
// chunk's coordinates. Parallel over rows exactly like KrumScores' matrix
// build — row i owns every (i, j>i) accumulator, each of which is a serial
// fold — so the result is bit-identical at any parallelism.
func (s *multiKrumStreamer) accumulate(ch foldChunk) {
	n, w := s.n, len(ch.inputs[0])
	rowGrain := 1
	if (n-1)*w < 1<<15 {
		rowGrain = n
	}
	parallel.For(n, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := ch.inputs[i]
			for j := i + 1; j < n; j++ {
				b := ch.inputs[j]
				acc := s.dist[i][j]
				for c := 0; c < w; c++ {
					d := a[c] - b[c]
					acc += d * d
				}
				s.dist[i][j] = acc
			}
		}
	})
}

func (s *multiKrumStreamer) Result() (tensor.Vector, error) {
	if s.n == 0 {
		return nil, fmt.Errorf("%w: no shards folded", ErrTooFewInputs)
	}
	if s.cursor != s.dim || len(s.pending) > 0 {
		return nil, fmt.Errorf("gar: %d of %d coordinates folded", s.cursor, s.dim)
	}
	for i := range s.dist {
		for j := i + 1; j < s.n; j++ {
			s.dist[j][i] = s.dist[i][j]
		}
	}
	scores := scoresFromDist(s.dist, s.f)
	s.kept = smallestByScore(scores, s.n-s.f-2)
	out := make(tensor.Vector, s.dim)
	sel := make([]tensor.Vector, len(s.kept))
	for _, ch := range s.chunks {
		for k, i := range s.kept {
			sel[k] = ch.inputs[i]
		}
		dst := out[ch.lo:ch.hi]
		parallel.For(ch.hi-ch.lo, meanGrain, func(rlo, rhi int) {
			MeanChunkInto(dst, sel, rlo, rhi)
		})
	}
	return out, nil
}

// SelectedIndices returns the indices (into the pinned quorum order) of
// the inputs the rule's output averaged — Multi-Krum's accountability
// signal, available after Result. The streaming counterpart of
// SelectIndices.
func (s *multiKrumStreamer) SelectedIndices() []int { return s.kept }
