package gar

import (
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Bit-identity of the parallel aggregation kernels across worker counts.
// Under -race these tests double as the concurrency exercise for every GAR
// kernel.

func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := parallel.SetWorkers(n)
	t.Cleanup(func() { parallel.SetWorkers(prev) })
}

func parInputs(n, d int) []tensor.Vector {
	rng := tensor.NewRNG(99)
	vs := make([]tensor.Vector, n)
	for i := range vs {
		vs[i] = rng.NormVec(make([]float64, d), 0, 1)
	}
	return vs
}

func TestKrumScoresBitIdenticalAcrossWorkers(t *testing.T) {
	inputs := parInputs(13, 4096) // clears the row-parallel gate
	withWorkers(t, 1)
	want, err := KrumScores(inputs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		withWorkers(t, w)
		got, err := KrumScores(inputs, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d changed score %d: %v vs %v", w, i, got[i], want[i])
			}
		}
	}
}

func TestCoordinateKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	inputs := parInputs(23, 5000) // d clears every coordinate-chunk gate
	rules := map[string]func() (tensor.Vector, error){
		"mean": func() (tensor.Vector, error) {
			dst := make(tensor.Vector, len(inputs[0]))
			return dst, MeanInto(dst, inputs)
		},
		"median": func() (tensor.Vector, error) {
			dst := make(tensor.Vector, len(inputs[0]))
			return dst, MedianInto(dst, make([]float64, len(inputs)), inputs)
		},
		"trimmed-mean": func() (tensor.Vector, error) {
			return TrimmedMean{F: 5}.Aggregate(inputs)
		},
		"multi-krum": func() (tensor.Vector, error) {
			return MultiKrum{F: 5}.Aggregate(inputs)
		},
		"bulyan": func() (tensor.Vector, error) {
			return Bulyan{F: 5}.Aggregate(inputs)
		},
	}
	for name, run := range rules {
		t.Run(name, func(t *testing.T) {
			withWorkers(t, 1)
			want, err := run()
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 4} {
				withWorkers(t, w)
				got, err := run()
				if err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("workers=%d changed coordinate %d: %v vs %v",
							w, i, got[i], want[i])
					}
				}
			}
		})
	}
}
