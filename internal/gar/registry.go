package gar

import (
	"fmt"
	"sort"
)

// The registry maps stable rule names to constructors so deployment
// builders, command-line flags and experiment tables select rules by string
// instead of switch statements. The public guanyu/gar package layers the
// redesigned Aggregate(ctx, dst, inputs) contract on top of these entries.

// Spec describes one registered rule family.
type Spec struct {
	// New constructs the rule for a declared Byzantine count f. Rules that
	// ignore f (mean, median, geometric median) accept any value.
	New func(f int) Rule
	// MinInputs is the rule's input-cardinality precondition for declared
	// f: Aggregate needs at least this many inputs to uphold its
	// resilience guarantee.
	MinInputs func(f int) int
	// UsesF reports whether the rule's behaviour depends on f.
	UsesF bool
}

var registry = map[string]Spec{
	"mean": {
		New:       func(int) Rule { return Mean{} },
		MinInputs: func(int) int { return 1 },
	},
	"coordinate-median": {
		New:       func(int) Rule { return Median{} },
		MinInputs: func(int) int { return 1 },
	},
	"krum": {
		New:       func(f int) Rule { return Krum{F: f} },
		MinInputs: func(f int) int { return 2*f + 3 },
		UsesF:     true,
	},
	"multi-krum": {
		New:       func(f int) Rule { return MultiKrum{F: f} },
		MinInputs: func(f int) int { return 2*f + 3 },
		UsesF:     true,
	},
	"trimmed-mean": {
		New:       func(f int) Rule { return TrimmedMean{F: f} },
		MinInputs: func(f int) int { return 2*f + 1 },
		UsesF:     true,
	},
	"bulyan": {
		New:       func(f int) Rule { return Bulyan{F: f} },
		MinInputs: func(f int) int { return 4*f + 3 },
		UsesF:     true,
	},
	"geometric-median": {
		New:       func(int) Rule { return GeoMed{} },
		MinInputs: func(int) int { return 1 },
	},
	"mda": {
		New:       func(f int) Rule { return MDA{F: f} },
		MinInputs: func(f int) int { return f + 1 },
		UsesF:     true,
	},
}

// LookupSpec returns the registered spec for name.
func LookupSpec(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("gar: unknown rule %q (known: %v)", name, RuleNames())
	}
	return s, nil
}

// FromName constructs the named rule for declared Byzantine count f.
func FromName(name string, f int) (Rule, error) {
	s, err := LookupSpec(name)
	if err != nil {
		return nil, err
	}
	if f < 0 {
		return nil, fmt.Errorf("gar: rule %q: negative f=%d", name, f)
	}
	return s.New(f), nil
}

// MinInputs returns the named rule's input-cardinality precondition for
// declared f.
func MinInputs(name string, f int) (int, error) {
	s, err := LookupSpec(name)
	if err != nil {
		return 0, err
	}
	return s.MinInputs(f), nil
}

// RuleNames lists every registered rule name, sorted.
func RuleNames() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
