package gar

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// GeoMed approximates the geometric median — the point minimising the sum
// of Euclidean distances to the inputs — with Weiszfeld iterations. The
// geometric median has the optimal 1/2 breakdown point (Rousseeuw 1985,
// cited by the paper for the synchronous bound) and is the classical
// alternative to the coordinate-wise median for parameter aggregation; it
// is provided as an extension rule for the ablation harness.
type GeoMed struct {
	// MaxIters bounds the Weiszfeld iterations (default 64).
	MaxIters int
	// Tol is the convergence threshold on the iterate movement (default
	// 1e-9 relative to the current scale).
	Tol float64
}

var _ Rule = GeoMed{}

// Name implements Rule.
func (GeoMed) Name() string { return "geometric-median" }

// Aggregate implements Rule.
func (g GeoMed) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	if err := checkInputs(inputs); err != nil {
		return nil, err
	}
	maxIters := g.MaxIters
	if maxIters <= 0 {
		maxIters = 64
	}
	tol := g.Tol
	if tol <= 0 {
		tol = 1e-9
	}

	// Start from the coordinate-wise median: cheap and already robust, so
	// Weiszfeld converges in a handful of iterations.
	y, err := Median{}.Aggregate(inputs)
	if err != nil {
		return nil, err
	}
	d := len(y)
	next := make(tensor.Vector, d)
	for iter := 0; iter < maxIters; iter++ {
		var wSum float64
		for i := range next {
			next[i] = 0
		}
		coincident := false
		for _, x := range inputs {
			dist := tensor.Distance(x, y)
			if dist < 1e-12 {
				// Weiszfeld is undefined at an input point; the input point
				// itself is within tolerance of the optimum here.
				coincident = true
				break
			}
			w := 1 / dist
			wSum += w
			for i := range next {
				next[i] += w * x[i]
			}
		}
		if coincident || wSum == 0 {
			break
		}
		tensor.ScaleInPlace(next, 1/wSum)
		moved := tensor.Distance(next, y)
		copy(y, next)
		if moved <= tol*(1+tensor.Norm2(y)) {
			break
		}
	}
	if !tensor.IsFinite(y) {
		return nil, fmt.Errorf("gar: geometric median diverged (non-finite iterate)")
	}
	return y, nil
}

// MDA is Minimum-Diameter Averaging: it averages the subset of n−f inputs
// with the smallest diameter (max pairwise distance). Brute-force over the
// C(n, f) subsets, so it is only practical for small f — which is exactly
// the deployment regime of the paper (f ≤ 5). MDA achieves the optimal
// breakdown and error bounds among averaging-style GARs.
type MDA struct {
	// F is the number of inputs excluded (the declared Byzantine count).
	F int
}

var _ Rule = MDA{}

// Name implements Rule.
func (m MDA) Name() string { return fmt.Sprintf("mda(f=%d)", m.F) }

// Aggregate implements Rule.
func (m MDA) Aggregate(inputs []tensor.Vector) (tensor.Vector, error) {
	idx, err := m.SelectIndices(inputs)
	if err != nil {
		return nil, err
	}
	sel := make([]tensor.Vector, len(idx))
	for i, k := range idx {
		sel[i] = inputs[k]
	}
	return tensor.Mean(sel), nil
}

var _ SelectiveRule = MDA{}

// SelectIndices implements SelectiveRule: it returns the minimum-diameter
// subset of size n−f.
func (m MDA) SelectIndices(inputs []tensor.Vector) ([]int, error) {
	if err := checkInputs(inputs); err != nil {
		return nil, err
	}
	n, f := len(inputs), m.F
	if f < 0 || n <= f {
		return nil, fmt.Errorf("%w: MDA needs n > f ≥ 0, got n=%d f=%d",
			ErrTooFewInputs, n, f)
	}
	if f == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}

	// Pairwise distances once.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dd := tensor.Distance(inputs[i], inputs[j])
			dist[i][j] = dd
			dist[j][i] = dd
		}
	}

	keep := n - f
	best := math.Inf(1)
	var bestSubset []int

	// Enumerate all subsets of size keep via combination walking.
	subset := make([]int, keep)
	for i := range subset {
		subset[i] = i
	}
	for {
		var diam float64
		for a := 0; a < keep && diam < best; a++ {
			for b := a + 1; b < keep; b++ {
				if dd := dist[subset[a]][subset[b]]; dd > diam {
					diam = dd
				}
			}
		}
		// The nil check guarantees a selection even when NaN coordinates
		// make every diameter comparison false — Byzantine payloads must
		// degrade the choice, not panic the rule on an empty subset.
		if bestSubset == nil || diam < best {
			best = diam
			bestSubset = append(bestSubset[:0], subset...)
		}
		// next combination
		i := keep - 1
		for i >= 0 && subset[i] == n-keep+i {
			i--
		}
		if i < 0 {
			break
		}
		subset[i]++
		for j := i + 1; j < keep; j++ {
			subset[j] = subset[j-1] + 1
		}
	}

	return bestSubset, nil
}
