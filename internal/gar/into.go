package gar

import (
	"fmt"

	"repro/internal/tensor"
)

// In-place aggregation kernels. These are the allocation-free cores behind
// Mean and Median; the public guanyu/gar package calls them directly so its
// Aggregate(ctx, dst, inputs) hot path performs no per-call allocations.

// checkInto validates inputs and that dst matches their dimension.
func checkInto(dst tensor.Vector, inputs []tensor.Vector) error {
	if err := checkInputs(inputs); err != nil {
		return err
	}
	if len(dst) != len(inputs[0]) {
		return fmt.Errorf("gar: destination has dimension %d, inputs have %d",
			len(dst), len(inputs[0]))
	}
	return nil
}

// MeanInto writes the arithmetic mean of inputs into dst. dst must have the
// inputs' dimension; it may alias one of the inputs.
func MeanInto(dst tensor.Vector, inputs []tensor.Vector) error {
	if err := checkInto(dst, inputs); err != nil {
		return err
	}
	inv := 1 / float64(len(inputs))
	first := inputs[0]
	for i := range dst {
		dst[i] = first[i]
	}
	for _, v := range inputs[1:] {
		for i, x := range v {
			dst[i] += x
		}
	}
	tensor.ScaleInPlace(dst, inv)
	return nil
}

// MedianInto writes the coordinate-wise median of inputs into dst, using
// col (len(col) ≥ len(inputs)) as scratch. Each coordinate's column is
// copied out before dst is written, so dst may alias one of the inputs.
func MedianInto(dst tensor.Vector, col []float64, inputs []tensor.Vector) error {
	if err := checkInto(dst, inputs); err != nil {
		return err
	}
	n := len(inputs)
	if len(col) < n {
		return fmt.Errorf("gar: median scratch has length %d, need %d", len(col), n)
	}
	col = col[:n]
	for i := range dst {
		for j, v := range inputs {
			col[j] = v[i]
		}
		dst[i] = medianInPlace(col)
	}
	return nil
}
