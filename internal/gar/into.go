package gar

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// In-place aggregation kernels. These are the allocation-free cores behind
// Mean and Median; the public guanyu/gar package drives their chunk forms
// directly so its Aggregate(ctx, dst, inputs) hot path performs no per-call
// allocations even when it parallelises over coordinate ranges.
//
// Both kernels are coordinate-independent: coordinate i of the output
// depends only on coordinate i of the inputs, and within one coordinate the
// arithmetic order is fixed (input order for the mean, a sort for the
// median). Splitting the coordinate range into chunks therefore produces
// bit-identical results at any parallelism — including fully serial.

// Coordinate-chunk grains: one chunk is sized so its compute dominates the
// dispatch cost of a pool chunk (~1µs). The median pays a small sort per
// coordinate, the mean only n additions, hence the larger mean grain.
const (
	medianGrain = 1 << 10
	meanGrain   = 1 << 12
	// coordGrain sizes the coordinate chunks of the sorting rules
	// (trimmed-mean, Bulyan phase 2), which pay roughly a median's work per
	// coordinate.
	coordGrain = 1 << 10
)

// CheckInto validates inputs (non-empty, equal dimensions) and that dst
// matches their dimension. The public guanyu/gar rules call it before
// driving the chunk kernels directly.
func CheckInto(dst tensor.Vector, inputs []tensor.Vector) error {
	if err := checkInputs(inputs); err != nil {
		return err
	}
	if len(dst) != len(inputs[0]) {
		return fmt.Errorf("gar: destination has dimension %d, inputs have %d",
			len(dst), len(inputs[0]))
	}
	return nil
}

// MeanChunkInto writes coordinates [lo, hi) of the arithmetic mean of inputs
// into dst. Inputs must be validated (same dimension, dst matching); the
// coordinate range must be owned by the caller's chunk.
func MeanChunkInto(dst tensor.Vector, inputs []tensor.Vector, lo, hi int) {
	inv := 1 / float64(len(inputs))
	first := inputs[0]
	for i := lo; i < hi; i++ {
		dst[i] = first[i]
	}
	for _, v := range inputs[1:] {
		for i := lo; i < hi; i++ {
			dst[i] += v[i]
		}
	}
	for i := lo; i < hi; i++ {
		dst[i] *= inv
	}
}

// MedianChunkInto writes coordinates [lo, hi) of the coordinate-wise median
// of inputs into dst, using col (len(col) ≥ len(inputs)) as scratch. Each
// coordinate's column is copied out before dst is written, so dst may alias
// one of the inputs.
func MedianChunkInto(dst tensor.Vector, col []float64, inputs []tensor.Vector, lo, hi int) {
	col = col[:len(inputs)]
	for i := lo; i < hi; i++ {
		for j, v := range inputs {
			col[j] = v[i]
		}
		dst[i] = medianInPlace(col)
	}
}

// MeanInto writes the arithmetic mean of inputs into dst. dst must have the
// inputs' dimension; it may alias one of the inputs. Large dimensions are
// processed in parallel coordinate chunks (bit-identical to serial).
func MeanInto(dst tensor.Vector, inputs []tensor.Vector) error {
	if err := CheckInto(dst, inputs); err != nil {
		return err
	}
	parallel.For(len(dst), meanGrain, func(lo, hi int) {
		MeanChunkInto(dst, inputs, lo, hi)
	})
	return nil
}

// MedianInto writes the coordinate-wise median of inputs into dst, using
// col (len(col) ≥ len(inputs)) as scratch. Large dimensions are processed in
// parallel coordinate chunks (bit-identical to serial); extra workers get
// their own scratch columns so col is only touched by one of them.
func MedianInto(dst tensor.Vector, col []float64, inputs []tensor.Vector) error {
	if err := CheckInto(dst, inputs); err != nil {
		return err
	}
	n := len(inputs)
	if len(col) < n {
		return fmt.Errorf("gar: median scratch has length %d, need %d", len(col), n)
	}
	d := len(dst)
	if w := parallel.Workers(); w > 1 && d > medianGrain {
		cols := make([][]float64, w)
		cols[0] = col
		parallel.ForWorker(d, medianGrain, len(cols), func(wk, lo, hi int) {
			c := cols[wk]
			if c == nil {
				c = make([]float64, n)
				cols[wk] = c
			}
			MedianChunkInto(dst, c, inputs, lo, hi)
		})
		return nil
	}
	MedianChunkInto(dst, col, inputs, 0, d)
	return nil
}
