package transport

import (
	"math"
	"testing"
	"time"
)

func TestFaultDecisionsAreDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 7, Drop: 0.3, Duplicate: 0.3, Reorder: 0.3,
		DelayRate: 0.5, DelaySpike: 0.01}
	a := NewFaultInjector(cfg)
	b := NewFaultInjector(cfg)
	for step := 0; step < 50; step++ {
		if got, want := a.Arrival(step, "ps0", "wrk1", 1.0), b.Arrival(step, "ps0", "wrk1", 1.0); got != want {
			t.Fatalf("step %d: %v vs %v", step, got, want)
		}
		if a.decide(step, "ps0", "wrk1", ShardMeta{}) != b.decide(step, "ps0", "wrk1", ShardMeta{}) {
			t.Fatalf("step %d: decisions differ", step)
		}
	}
	// A different seed must actually change the schedule somewhere.
	c := NewFaultInjector(FaultConfig{Seed: 8, Drop: 0.3, Duplicate: 0.3,
		Reorder: 0.3, DelayRate: 0.5, DelaySpike: 0.01})
	same := true
	for step := 0; step < 50 && same; step++ {
		same = a.decide(step, "ps0", "wrk1", ShardMeta{}) == c.decide(step, "ps0", "wrk1", ShardMeta{})
	}
	if same {
		t.Fatal("seed change did not alter the fault schedule")
	}
}

func TestFaultArrivalDropAndSpike(t *testing.T) {
	drop := NewFaultInjector(FaultConfig{Seed: 1, Drop: 1})
	if got := drop.Arrival(0, "a", "b", 1.0); !math.IsInf(got, 1) {
		t.Fatalf("certain drop should be +Inf, got %v", got)
	}
	spike := NewFaultInjector(FaultConfig{Seed: 1, DelayRate: 1, DelaySpike: 0.5})
	got := spike.Arrival(0, "a", "b", 1.0)
	if !(got > 1.0 && got <= 1.5) {
		t.Fatalf("spiked arrival %v outside (1.0, 1.5]", got)
	}
	var nilInj *FaultInjector
	if got := nilInj.Arrival(0, "a", "b", 1.0); got != 1.0 {
		t.Fatalf("nil injector must be a no-op, got %v", got)
	}
}

func TestFaultPartitionWindows(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 3, PartitionEvery: 10, PartitionFor: 2})
	// Find a cross-camp pair in the first window.
	nodes := []string{"ps0", "ps1", "ps2", "wrk0", "wrk1", "wrk2"}
	var from, to string
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b && inj.Partitioned(8, a, b) {
				from, to = a, b
			}
		}
	}
	if from == "" {
		t.Fatal("no cross-camp pair found during the partition window")
	}
	if !inj.Partitioned(9, from, to) {
		t.Fatal("partition should span its whole window")
	}
	for step := 0; step < 8; step++ {
		if inj.Partitioned(step, from, to) {
			t.Fatalf("step %d is outside the partition window", step)
		}
	}
	if !inj.Partitioned(8, to, from) {
		t.Fatal("partition cuts must be symmetric")
	}
	if !math.IsInf(inj.Arrival(8, from, to, 1.0), 1) {
		t.Fatal("partitioned arrival should be +Inf")
	}
}

// faultNet builds a two-node in-process network with the sender wrapped.
func faultNet(t *testing.T, cfg FaultConfig) (send Endpoint, recv Endpoint, cleanup func()) {
	t.Helper()
	net := NewChanNetwork(nil)
	a, err := net.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	return NewFaultInjector(cfg).Wrap(a), b, func() { net.Close() }
}

func TestFaultWrapDropsEverything(t *testing.T) {
	send, recv, cleanup := faultNet(t, FaultConfig{Seed: 2, Drop: 1})
	defer cleanup()
	for step := 0; step < 5; step++ {
		if err := send.Send("b", Message{Kind: KindParams, Step: step, Vec: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if m, ok := recv.Recv(20 * time.Millisecond); ok {
		t.Fatalf("dropped message delivered: %+v", m)
	}
}

func TestFaultWrapDuplicates(t *testing.T) {
	send, recv, cleanup := faultNet(t, FaultConfig{Seed: 2, Duplicate: 1})
	defer cleanup()
	if err := send.Send("b", Message{Kind: KindParams, Step: 0, Vec: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := recv.Recv(time.Second); !ok {
			t.Fatalf("copy %d missing", i)
		}
	}
}

func TestFaultWrapReordersBehindNextMessage(t *testing.T) {
	send, recv, cleanup := faultNet(t, FaultConfig{Seed: 2, Reorder: 1})
	defer cleanup()
	if err := send.Send("b", Message{Kind: KindParams, Step: 0, Vec: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	// Step 0 is held; step 1 must arrive first, then the held step 0.
	if err := send.Send("b", Message{Kind: KindParams, Step: 1, Vec: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	first, ok := recv.Recv(time.Second)
	if !ok || first.Step != 1 {
		t.Fatalf("first delivery = %+v, want step 1", first)
	}
	second, ok := recv.Recv(time.Second)
	if !ok || second.Step != 0 {
		t.Fatalf("second delivery = %+v, want held step 0", second)
	}
}

func TestFaultWrapCloseFlushesHeld(t *testing.T) {
	send, recv, cleanup := faultNet(t, FaultConfig{Seed: 2, Reorder: 1})
	defer cleanup()
	if err := send.Send("b", Message{Kind: KindParams, Step: 0, Vec: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	if err := send.Close(); err != nil {
		t.Fatal(err)
	}
	if m, ok := recv.Recv(time.Second); !ok || m.Step != 0 {
		t.Fatalf("held message not flushed on close: %+v ok=%v", m, ok)
	}
}

func TestFaultByNameProfiles(t *testing.T) {
	for _, name := range FaultNames() {
		cfg, err := FaultByName(name, nil, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "none" {
			if cfg.Enabled() {
				t.Fatal("none must disable injection")
			}
			if NewFaultInjector(cfg) != nil {
				t.Fatal("disabled config must build a nil injector")
			}
		} else if !cfg.Enabled() {
			t.Fatalf("%s: profile inactive", name)
		}
	}
	cfg, err := FaultByName("drop", map[string]float64{"p": 0.25}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Drop != 0.25 || cfg.Seed != 5 {
		t.Fatalf("override lost: %+v", cfg)
	}
	if _, err := FaultByName("nosuch", nil, 5); err == nil {
		t.Fatal("unknown profile should be rejected")
	}
	if _, err := FaultByName("drop", map[string]float64{"q": 1}, 5); err == nil {
		t.Fatal("unknown parameter should be rejected")
	}
}
