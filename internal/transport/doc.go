// Package transport provides the communication substrate of the system:
//
//   - Message, the single wire format exchanged by all nodes — a whole
//     parameter/gradient vector, or (tagged by ShardMeta) one coordinate
//     shard of one when the deployment streams in chunks;
//   - Mailbox, the bounded per-sender inbox every receiving endpoint owns:
//     one global arrival-order FIFO threaded through per-sender chains, a
//     configurable per-sender Cap and an overflow Policy (Backpressure
//     blocks the producer, DropNewest refuses the arriving frame,
//     DropOldest evicts the sender's oldest queued frame), with
//     DroppedOverflow / DroppedClosed counters exposing what the bound
//     discarded;
//   - Couriers, the per-link outbound actors: Send snapshots the message
//     (Clone at enqueue) into one bounded outbox Mailbox per destination,
//     and a dedicated goroutine per link drains it into the wrapped
//     Endpoint, so one slow or dead peer can never stall a node loop or
//     any other link;
//   - ChanNetwork, an in-process asynchronous network with per-receiver
//     Mailboxes (unbounded by default, bounded via SetMailbox) and
//     optional injected delays (used by the live cluster runtime and the
//     integration tests);
//   - TCPNode, a real TCP transport speaking the hand-rolled binary frame
//     codec of codec.go — fixed {kind, step, from-len, vec-len} header (plus
//     an 8-byte shard extension on chunk frames) and little-endian float64
//     payloads over hello-authenticated connections (the repository's
//     stand-in for the paper's gRPC/protobuf stack, minus the reflection);
//     WIRE.md is the normative byte-level specification;
//   - Collector, the "first q messages for step t, in arrival order, late
//     ones discarded" quorum-gathering primitive at the heart of GuanYu's
//     bulk-synchronous rounds over an asynchronous network; inbound chunk
//     streams are reassembled per sender before they can count;
//   - ShardCollector, the incremental counterpart: per-(step, shard)
//     arrival-order quorums handed to a streaming aggregation the moment
//     each shard fills, cutting peak collector memory from O(n·d) to
//     O(q·shard) and overlapping aggregation with the network receive
//     (the aggregation side holds that bound for coordinate-wise rules;
//     see gar.StreamingRule for Multi-Krum's retention floor);
//   - FaultInjector, seeded fault schedules (drops, duplication, reorder
//     holds, delay spikes, step-windowed partitions) derived from pure
//     (seed, step, sender, receiver, shard) hashes, with one schedule shared
//     by the simulator's arrival-time face and the live runtimes' Endpoint
//     wrapper;
//   - LatencyModel, a seeded heavy-tailed latency sampler that drives both
//     delay injection in the live runtime and the virtual clock of the
//     deterministic experiment simulator.
//
// # Actor runtime
//
// Receiving endpoints (TCPNode, ChanNetwork) deliver through a Mailbox and
// honest senders broadcast through Couriers, which makes every node an
// actor with bounded queues on both sides of the wire. The ownership
// contract: the endpoint owns its inbound Mailbox (readers call Recv, never
// Put), Couriers own one outbox per link (callers hand over a message at
// Send and must not mutate it afterwards — Couriers clones defensively at
// enqueue so node loops may reuse their broadcast vector anyway). Close on
// either side flushes: Recv drains messages accepted before Close, Put
// after Close is refused and counted in DroppedClosed.
//
// Overflow is accounted per sender, which is the property that makes a
// bound Byzantine-safe: a flooding sender can only evict (DropOldest) or
// forfeit (DropNewest) frames in its *own* per-sender chain, never another
// peer's, so honest traffic is untouched however fast the attacker sprays.
// DropOldest is the protocol-safe lossy default because GuanYu's quorums
// only ever want a sender's most recent step — an evicted older frame is
// one that had already been superseded, exactly what the collectors would
// have discarded as stale. Backpressure is lossless but couples the
// producer to the consumer's drain rate; it is the right choice only when
// every peer is trusted to drain (DroppedOverflow stays zero by
// construction, and a parked Put is released by Close).
//
// # Contract and invariants
//
// Arrival order is literal: which messages (and which shards) enter a
// quorum, and in what order, is decided by receipt time alone — never map
// iteration, never sender name. Per-sender deduplication is a safety
// requirement (a Byzantine node must not fill a quorum with copies of
// itself), and the TCP hello binding is what makes From a node identity
// rather than a free string.
//
// Every Endpoint delivers snapshots: a message handed to Send is immutable
// from the sender's perspective afterwards (TCP snapshots by serialising,
// ChanNetwork by cloning), so node loops reuse one vector across
// broadcasts. Decoded messages alias nothing.
//
// Receivers are hardened against resource-exhaustion from the header alone
// (bounded declared lengths, traffic-paced allocation), against
// step-spraying (the collectors' future-step Horizon), and against
// malformed shard streams (layout checks, tiling checks, assembly caps),
// and — with a bounded Mailbox armed — against flooding (the per-sender
// cap); the ForgedDropped / DroppedFuture / DroppedMalformed /
// DroppedOverflow / DroppedClosed counters expose what the hardening
// discarded. See WIRE.md §6 for the full statement.
package transport
