package transport

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Endpoint is one node's handle on a network: asynchronous best-effort Send
// and blocking Recv with timeout.
type Endpoint interface {
	// ID returns the node's identifier on the network.
	ID() string
	// Send delivers m to the named node asynchronously. It never blocks on
	// the receiver. An error indicates the destination is unknown or the
	// endpoint is closed; a Byzantine-tolerant caller treats Send errors as
	// best-effort losses.
	Send(to string, m Message) error
	// Recv returns the next inbound message, blocking up to timeout
	// (negative blocks indefinitely). false means timeout or closure.
	Recv(timeout time.Duration) (Message, bool)
	// Close releases the endpoint. Blocked Recv calls return false.
	Close() error
}

// DelayFunc returns the artificial delivery delay for a message from one
// node to another. Used by tests and examples to inject asynchrony into the
// in-process network. A nil DelayFunc means immediate delivery.
type DelayFunc func(from, to string) time.Duration

// ChanNetwork is an in-process network connecting named endpoints through
// mailboxes — unbounded by default, per-sender bounded after SetMailbox.
// Delivery order between two nodes is FIFO when no delay function is
// installed; with delays, messages may be reordered — exactly the
// asynchrony the protocol must tolerate.
type ChanNetwork struct {
	mu     sync.Mutex
	nodes  map[string]*chanEndpoint
	dead   map[string]deadDrops
	delay  DelayFunc
	mbox   MailboxConfig
	timers sync.WaitGroup
	closed bool
}

// deadDrops preserves an unregistered endpoint's drop counters so Dropped
// keeps reporting a node's full history across kill/restart cycles.
type deadDrops struct{ overflow, closed uint64 }

// NewChanNetwork builds an empty network. delay may be nil.
func NewChanNetwork(delay DelayFunc) *ChanNetwork {
	return &ChanNetwork{
		nodes: make(map[string]*chanEndpoint),
		dead:  make(map[string]deadDrops),
		delay: delay,
	}
}

// Register creates the endpoint for the given node ID.
func (n *ChanNetwork) Register(id string) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if _, ok := n.nodes[id]; ok {
		return nil, fmt.Errorf("transport: node %q already registered", id)
	}
	ep := &chanEndpoint{id: id, net: n, box: NewMailboxWith(n.mbox)}
	n.nodes[id] = ep
	return ep, nil
}

// Unregister closes the named endpoint and releases its ID for a later
// Register — the in-process analogue of a crashed process freeing its
// listening socket, which is what lets a killed node restart under the same
// name mid-run. The endpoint's accumulated drop counters are folded into a
// per-ID tally that Dropped keeps reporting. Unknown IDs are a no-op.
func (n *ChanNetwork) Unregister(id string) {
	n.mu.Lock()
	ep, ok := n.nodes[id]
	if ok {
		delete(n.nodes, id)
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	ep.box.Close()
	n.mu.Lock()
	d := n.dead[id]
	d.overflow += ep.box.DroppedOverflow()
	d.closed += ep.box.DroppedClosed()
	n.dead[id] = d
	n.mu.Unlock()
}

// SetMailbox bounds every endpoint's inbound mailbox per sender — those
// already registered and those yet to come. With Backpressure the sender's
// goroutine (or the delayed-delivery timer) blocks in Put until the
// receiver drains; with a drop policy the overflow is shed and counted on
// the receiving endpoint. The zero config restores unbounded mailboxes.
func (n *ChanNetwork) SetMailbox(cfg MailboxConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mbox = cfg
	for _, ep := range n.nodes {
		if err := ep.box.SetConfig(cfg); err != nil {
			return err
		}
	}
	return nil
}

// SetNodeMetrics attaches a live counter sink to the named endpoint's
// inbound mailbox, so its overflow/closed drops and queue depth are
// readable mid-run. Unknown IDs are ignored.
func (n *ChanNetwork) SetNodeMetrics(id string, sink *metrics.NodeMetrics) {
	n.mu.Lock()
	ep, ok := n.nodes[id]
	n.mu.Unlock()
	if ok {
		ep.box.SetMetrics(sink, false)
	}
}

// Close shuts down every endpoint and waits for in-flight delayed deliveries
// to resolve.
func (n *ChanNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	nodes := make([]*chanEndpoint, 0, len(n.nodes))
	for _, ep := range n.nodes {
		//lint:allow-maporder close order across endpoints is immaterial
		nodes = append(nodes, ep)
	}
	n.mu.Unlock()
	for _, ep := range nodes {
		ep.box.Close()
	}
	n.timers.Wait()
	return nil
}

// Dropped returns the named endpoint's inbound mailbox drop counters:
// frames shed by the overflow policy and frames that arrived after the
// endpoint closed — including any earlier incarnations removed with
// Unregister. Unknown IDs read as zero.
func (n *ChanNetwork) Dropped(id string) (overflow, closed uint64) {
	n.mu.Lock()
	ep, ok := n.nodes[id]
	d := n.dead[id]
	n.mu.Unlock()
	if !ok {
		return d.overflow, d.closed
	}
	return d.overflow + ep.box.DroppedOverflow(), d.closed + ep.box.DroppedClosed()
}

func (n *ChanNetwork) deliver(from, to string, m Message) error {
	n.mu.Lock()
	dst, ok := n.nodes[to]
	closed := n.closed
	delay := n.delay
	n.mu.Unlock()
	if closed {
		return fmt.Errorf("transport: network closed")
	}
	if !ok {
		return fmt.Errorf("transport: unknown destination %q", to)
	}
	if delay == nil {
		dst.box.Put(m)
		return nil
	}
	d := delay(from, to)
	if d <= 0 {
		dst.box.Put(m)
		return nil
	}
	n.timers.Add(1)
	time.AfterFunc(d, func() {
		defer n.timers.Done()
		dst.box.Put(m)
	})
	return nil
}

type chanEndpoint struct {
	id  string
	net *ChanNetwork
	box *Mailbox
}

var _ Endpoint = (*chanEndpoint)(nil)

func (e *chanEndpoint) ID() string { return e.id }

func (e *chanEndpoint) Send(to string, m Message) error {
	m.From = e.id
	// Snapshot the payload: this transport delivers by reference, but a
	// sender that keeps training mutates its parameter vector in place while
	// a slow receiver may still be reading the previous broadcast. Messages
	// must be immutable copies — exactly what a real network provides (the
	// TCP transport copies by serialising, so it needs no extra clone).
	return e.net.deliver(e.id, to, m.Clone())
}

func (e *chanEndpoint) Recv(timeout time.Duration) (Message, bool) {
	return e.box.Recv(timeout)
}

func (e *chanEndpoint) Close() error {
	e.box.Close()
	return nil
}
