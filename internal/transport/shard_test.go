package transport

import (
	"bytes"
	"io"
	"math"
	"testing"
	"time"

	"repro/internal/tensor"
)

func TestShardLayoutEdges(t *testing.T) {
	cases := []struct {
		dim, size      int
		count, lastLen int
	}{
		{dim: 10, size: 3, count: 4, lastLen: 1},   // non-dividing: short remainder
		{dim: 10, size: 5, count: 2, lastLen: 5},   // exact division
		{dim: 10, size: 10, count: 1, lastLen: 10}, // size = dim: single shard
		{dim: 10, size: 64, count: 1, lastLen: 10}, // size > dim: clamped to single shard
		{dim: 10, size: 0, count: 1, lastLen: 10},  // unset: whole-vector framing
		{dim: 10, size: 1, count: 10, lastLen: 1},  // one coordinate per shard
	}
	for _, c := range cases {
		l := NewShardLayout(c.dim, c.size)
		if got := l.Count(); got != c.count {
			t.Fatalf("layout(%d,%d): count %d, want %d", c.dim, c.size, got, c.count)
		}
		// Shards must tile [0, dim) exactly, in index order.
		run := 0
		for s := 0; s < l.Count(); s++ {
			lo, hi := l.Bounds(s)
			if lo != run || hi <= lo {
				t.Fatalf("layout(%d,%d): shard %d bounds [%d,%d) break tiling at %d", c.dim, c.size, s, lo, hi, run)
			}
			run = hi
		}
		if run != c.dim {
			t.Fatalf("layout(%d,%d): shards cover %d of %d", c.dim, c.size, run, c.dim)
		}
		lo, hi := l.Bounds(l.Count() - 1)
		if hi-lo != c.lastLen {
			t.Fatalf("layout(%d,%d): last shard %d coords, want %d", c.dim, c.size, hi-lo, c.lastLen)
		}
	}

	l := NewShardLayout(10, 3)
	good := ShardMeta{Index: 3, Count: 4, Offset: 9}
	if !l.CheckMeta(good, 1) {
		t.Fatal("valid final-shard meta rejected")
	}
	for _, bad := range []struct {
		m    ShardMeta
		plen int
	}{
		{ShardMeta{Index: 3, Count: 4, Offset: 9}, 3},  // wrong payload length
		{ShardMeta{Index: 0, Count: 4, Offset: 3}, 3},  // wrong offset for index
		{ShardMeta{Index: 0, Count: 5, Offset: 0}, 3},  // wrong count
		{ShardMeta{Index: 4, Count: 4, Offset: 12}, 0}, // index out of range
	} {
		if l.CheckMeta(bad.m, bad.plen) {
			t.Fatalf("inconsistent meta %+v (payload %d) accepted", bad.m, bad.plen)
		}
	}
}

func TestSplitMessage(t *testing.T) {
	vec := make(tensor.Vector, 10)
	for i := range vec {
		vec[i] = float64(i)
	}
	m := Message{From: "ps0", Kind: KindParams, Step: 3, Vec: vec}

	single := SplitMessage(m, 0)
	if len(single) != 1 || single[0].IsShard() {
		t.Fatalf("size 0 should keep whole-vector framing, got %+v", single)
	}
	single = SplitMessage(m, 10)
	if len(single) != 1 || single[0].IsShard() {
		t.Fatalf("size = dim should keep whole-vector framing, got %+v", single)
	}

	shards := SplitMessage(m, 3)
	if len(shards) != 4 {
		t.Fatalf("expected 4 shards, got %d", len(shards))
	}
	run := 0
	for s, sm := range shards {
		if sm.From != m.From || sm.Kind != m.Kind || sm.Step != m.Step {
			t.Fatalf("shard %d lost its tag: %+v", s, sm)
		}
		if sm.Shard.Index != s || sm.Shard.Count != 4 || sm.Shard.Offset != run {
			t.Fatalf("shard %d meta %+v, want index=%d count=4 offset=%d", s, sm.Shard, s, run)
		}
		for i, v := range sm.Vec {
			if v != vec[run+i] {
				t.Fatalf("shard %d coordinate %d: %v", s, i, v)
			}
		}
		run += len(sm.Vec)
	}
	if run != len(vec) {
		t.Fatalf("shards cover %d of %d coordinates", run, len(vec))
	}
	// Shard payloads alias the original vector (serialisation is the
	// snapshot, exactly as for whole messages).
	vec[0] = 42
	if shards[0].Vec[0] != 42 {
		t.Fatal("shard payload does not alias the source vector")
	}
}

func TestChunkFrameRoundTrip(t *testing.T) {
	m := Message{
		From: "wrk3", Kind: KindGradient, Step: 9,
		Vec:   tensor.Vector{math.NaN(), math.Inf(1), -0.0, 1.5},
		Shard: ShardMeta{Index: 2, Count: 7, Offset: 8},
	}
	frame, err := AppendMessage(nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != EncodedSize(&m) {
		t.Fatalf("frame is %d bytes, EncodedSize says %d", len(frame), EncodedSize(&m))
	}
	if frame[0]&0x80 == 0 {
		t.Fatal("chunk frame missing the chunk flag")
	}

	var dec Message
	n, err := DecodeMessage(frame, &dec)
	if err != nil || n != len(frame) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if dec.From != m.From || dec.Kind != m.Kind || dec.Step != m.Step || dec.Shard != m.Shard {
		t.Fatalf("decoded %+v, want %+v", dec, m)
	}
	for i := range m.Vec {
		if math.Float64bits(dec.Vec[i]) != math.Float64bits(m.Vec[i]) {
			t.Fatalf("coordinate %d changed bits", i)
		}
	}

	var viaStream Message
	var scratch []byte
	if err := ReadMessage(bytes.NewReader(frame), &scratch, &viaStream); err != nil {
		t.Fatal(err)
	}
	if viaStream.Shard != m.Shard || viaStream.From != m.From {
		t.Fatalf("stream decode disagrees: %+v", viaStream)
	}

	// A whole-vector decode target reused for a chunk frame must come out
	// tagged, and vice versa (no stale shard meta).
	whole := Message{From: "wrk3", Kind: KindGradient, Step: 10, Vec: tensor.Vector{1}}
	wf, err := AppendMessage(nil, &whole)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMessage(wf, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.IsShard() {
		t.Fatalf("whole-vector decode kept stale shard meta %+v", dec.Shard)
	}
}

func TestChunkFrameRejections(t *testing.T) {
	base := Message{From: "x", Kind: KindParams, Step: 1, Vec: tensor.Vector{1, 2}}

	bad := base
	bad.Shard = ShardMeta{Index: 3, Count: 3, Offset: 0}
	if _, err := AppendMessage(nil, &bad); err == nil {
		t.Fatal("index ≥ count accepted by the encoder")
	}
	bad.Shard = ShardMeta{Index: 0, Count: 0, Offset: 0}
	bad.Shard.Count = MaxShardCount + 1
	if _, err := AppendMessage(nil, &bad); err == nil {
		t.Fatal("oversized shard count accepted by the encoder")
	}
	collide := base
	collide.Kind = Kind(0x85)
	if _, err := AppendMessage(nil, &collide); err == nil {
		t.Fatal("kind colliding with the chunk flag accepted")
	}

	good := base
	good.Shard = ShardMeta{Index: 1, Count: 2, Offset: 2}
	frame, err := AppendMessage(nil, &good)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations anywhere in the extension or body must error cleanly.
	var m Message
	for cut := 1; cut < len(frame); cut++ {
		if _, err := DecodeMessage(frame[:cut], &m); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
		var scratch []byte
		err := ReadMessage(bytes.NewReader(frame[:cut]), &scratch, &m)
		if err == nil {
			t.Fatalf("stream truncation at %d decoded", cut)
		}
		if cut >= FrameHeaderSize && err != io.ErrUnexpectedEOF {
			t.Fatalf("stream truncation at %d: %v, want ErrUnexpectedEOF", cut, err)
		}
	}
	// A forged extension (index ≥ count) must be rejected at the decoder.
	forged := append([]byte(nil), frame...)
	forged[15], forged[16] = 9, 0 // index 9 of count 2
	if _, err := DecodeMessage(forged, &m); err == nil {
		t.Fatal("decoder accepted index ≥ count")
	}
}

// TestCollectorReassemblesChunks checks the whole-vector Collector's
// interop path: senders streaming chunk frames — out of order, duplicated,
// interleaved across senders — count toward the quorum exactly when their
// last shard lands, bit-identically to a whole send.
func TestCollectorReassemblesChunks(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("recv")
	a, _ := net.Register("a")
	b, _ := net.Register("b")
	c, _ := net.Register("c")

	vec := func(seed float64) tensor.Vector {
		v := make(tensor.Vector, 10)
		for i := range v {
			v[i] = seed + float64(i)
		}
		return v
	}
	va, vb, vc := vec(100), vec(200), vec(300)

	// a streams shards in reverse, b interleaves with duplicates, c sends
	// whole — a and b complete only at their last (first-index) shard.
	sa := SplitMessage(Message{Kind: KindParams, Step: 0, Vec: va}, 3)
	sb := SplitMessage(Message{Kind: KindParams, Step: 0, Vec: vb}, 3)
	for i := len(sa) - 1; i >= 1; i-- {
		_ = a.Send("recv", sa[i])
	}
	_ = b.Send("recv", sb[1])
	_ = b.Send("recv", sb[1]) // duplicate shard: ignored
	_ = c.Send("recv", Message{Kind: KindParams, Step: 0, Vec: vc})
	_ = b.Send("recv", sb[0])
	_ = b.Send("recv", sb[3])
	_ = b.Send("recv", sb[2]) // b completes here
	_ = a.Send("recv", sa[0]) // a completes last

	col := NewCollector(recv)
	msgs, err := col.Collect(KindParams, 0, 3, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]tensor.Vector{"a": va, "b": vb, "c": vc}
	// Arrival order: c (whole, immediate), then b, then a.
	order := []string{"c", "b", "a"}
	for i, m := range msgs {
		if m.From != order[i] {
			t.Fatalf("arrival order %v, want %v", []string{msgs[0].From, msgs[1].From, msgs[2].From}, order)
		}
		w := want[m.From]
		if len(m.Vec) != len(w) {
			t.Fatalf("%s: %d coordinates, want %d", m.From, len(m.Vec), len(w))
		}
		for j := range w {
			if m.Vec[j] != w[j] {
				t.Fatalf("%s coordinate %d: %v, want %v", m.From, j, m.Vec[j], w[j])
			}
		}
	}
}

// TestCollectorDropsInconsistentChunkStreams checks the reassembler's
// hardening: a sender whose stream changes shard count or whose shards do
// not tile is discarded, counted, and treated as silence.
func TestCollectorDropsInconsistentChunkStreams(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("recv")
	byz, _ := net.Register("byz")
	ok, _ := net.Register("ok")

	v := make(tensor.Vector, 6)
	_ = byz.Send("recv", Message{Kind: KindParams, Step: 0, Vec: v[:3],
		Shard: ShardMeta{Index: 0, Count: 2, Offset: 0}})
	_ = byz.Send("recv", Message{Kind: KindParams, Step: 0, Vec: v[:3],
		Shard: ShardMeta{Index: 1, Count: 3, Offset: 3}}) // count changed: assembly dropped
	_ = ok.Send("recv", Message{Kind: KindParams, Step: 0, Vec: v})

	col := NewCollector(recv)
	msgs, err := col.Collect(KindParams, 0, 1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if msgs[0].From != "ok" {
		t.Fatalf("quorum filled by %q, want the consistent sender", msgs[0].From)
	}
	if col.DroppedMalformed() == 0 {
		t.Fatal("inconsistent stream not counted as malformed")
	}

	// Non-tiling offsets are caught at completion.
	net2 := NewChanNetwork(nil)
	defer net2.Close()
	recv2, _ := net2.Register("recv")
	byz2, _ := net2.Register("byz")
	_ = byz2.Send("recv", Message{Kind: KindParams, Step: 0, Vec: v[:3],
		Shard: ShardMeta{Index: 0, Count: 2, Offset: 0}})
	_ = byz2.Send("recv", Message{Kind: KindParams, Step: 0, Vec: v[:3],
		Shard: ShardMeta{Index: 1, Count: 2, Offset: 5}}) // gap: 3 expected
	col2 := NewCollector(recv2)
	if _, err := col2.Collect(KindParams, 0, 1, 200*time.Millisecond); err == nil {
		t.Fatal("non-tiling stream satisfied a quorum")
	}
	if col2.DroppedMalformed() == 0 {
		t.Fatal("non-tiling stream not counted as malformed")
	}
}

// shardTestFeed returns n deterministic vectors.
func shardTestFeed(n, d int, base float64) []tensor.Vector {
	vecs := make([]tensor.Vector, n)
	for i := range vecs {
		vecs[i] = make(tensor.Vector, d)
		for j := range vecs[i] {
			vecs[i][j] = base + float64(i*d+j)
		}
	}
	return vecs
}

// TestShardCollectorInterleavedAcrossSendersAndSteps drives the
// incremental quorum with shard frames interleaved across senders AND
// steps: the current step folds in per-shard arrival order, near-future
// frames are buffered and consumed by the next Collect, stale frames are
// discarded.
func TestShardCollectorInterleavedAcrossSendersAndSteps(t *testing.T) {
	const (
		dim, size = 10, 4 // shards: [0,4) [4,8) [8,10)
		q         = 2
	)
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("recv")
	eps := make([]Endpoint, 3)
	for i := range eps {
		eps[i], _ = net.Register(string(rune('a' + i)))
	}
	now := shardTestFeed(3, dim, 0)
	next := shardTestFeed(3, dim, 1000)

	frames := func(vecs []tensor.Vector, step int) [][]Message {
		out := make([][]Message, len(vecs))
		for i := range vecs {
			out[i] = SplitMessage(Message{Kind: KindGradient, Step: step, Vec: vecs[i]}, size)
		}
		return out
	}
	f0, f1 := frames(now, 0), frames(next, 1)

	// Interleave: sender a's step-1 traffic arrives before most of step 0,
	// a stale step -1 frame is mixed in, shard order varies per sender.
	_ = eps[0].Send("recv", f1[0][0])
	_ = eps[0].Send("recv", f0[0][2])
	_ = eps[1].Send("recv", f0[1][2]) // shard 2 complete: a, b
	_ = eps[1].Send("recv", Message{Kind: KindGradient, Step: -1, Vec: now[1]})
	_ = eps[1].Send("recv", f0[1][0])
	_ = eps[2].Send("recv", f0[2][0]) // shard 0 complete: b, c
	_ = eps[0].Send("recv", f1[0][1])
	_ = eps[0].Send("recv", f1[0][2])
	_ = eps[2].Send("recv", f0[2][1])
	_ = eps[0].Send("recv", f0[0][1]) // shard 1 complete: c, a
	_ = eps[1].Send("recv", f1[1][0])
	_ = eps[1].Send("recv", f1[1][1])
	_ = eps[1].Send("recv", f1[1][2])

	col := NewShardCollector(recv, NewShardLayout(dim, size))
	type foldRec struct {
		lo, hi  int
		senders []string
		first   float64
	}
	var folds []foldRec
	fold := func(lo, hi int, senders []string, inputs []tensor.Vector) error {
		folds = append(folds, foldRec{lo, hi, append([]string(nil), senders...), inputs[0][0]})
		return nil
	}
	if _, err := col.Collect(KindGradient, 0, q, nil, "", false, fold, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("folded %d shards, want 3", len(folds))
	}
	// Completion order: shard 2 (a,b), shard 0 (b,c), shard 1 (c,a) — each
	// quorum in its own arrival order.
	wantSenders := [][]string{{"a", "b"}, {"b", "c"}, {"c", "a"}}
	wantLo := []int{8, 0, 4}
	for i, f := range folds {
		if f.lo != wantLo[i] {
			t.Fatalf("fold %d covers [%d,%d), want lo %d", i, f.lo, f.hi, wantLo[i])
		}
		for j, s := range wantSenders[i] {
			if f.senders[j] != s {
				t.Fatalf("fold %d senders %v, want %v", i, f.senders, wantSenders[i])
			}
		}
	}

	// The buffered step-1 traffic must satisfy the next Collect without
	// further sends — and the stale step -1 frame must have vanished.
	folds = nil
	if _, err := col.Collect(KindGradient, 1, q, nil, "", false, fold, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("step 1: folded %d shards, want 3", len(folds))
	}
}

// TestShardCollectorPinned checks pinned-membership mode: the first shard
// to fill decides the ordered sender set, later shards wait for exactly
// those senders (folding them in pinned order), and non-member shards are
// discarded rather than buffered.
func TestShardCollectorPinned(t *testing.T) {
	const (
		dim, size = 8, 4
		q         = 2
	)
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("recv")
	a, _ := net.Register("a")
	b, _ := net.Register("b")
	c, _ := net.Register("c")
	vecs := shardTestFeed(3, dim, 0)
	sa := SplitMessage(Message{Kind: KindGradient, Step: 0, Vec: vecs[0]}, size)
	sb := SplitMessage(Message{Kind: KindGradient, Step: 0, Vec: vecs[1]}, size)
	sc := SplitMessage(Message{Kind: KindGradient, Step: 0, Vec: vecs[2]}, size)

	_ = b.Send("recv", sb[0])
	_ = a.Send("recv", sa[0]) // shard 0 fills: membership pinned to (b, a)
	_ = c.Send("recv", sc[0]) // non-member: dropped
	_ = c.Send("recv", sc[1]) // non-member: dropped
	_ = a.Send("recv", sa[1])
	_ = b.Send("recv", sb[1]) // shard 1 completes for the pinned set

	col := NewShardCollector(recv, NewShardLayout(dim, size))
	var got [][]string
	fold := func(lo, hi int, senders []string, inputs []tensor.Vector) error {
		got = append(got, append([]string(nil), senders...))
		// Inputs must be in pinned order for every shard: b first.
		if inputs[0][0] != vecs[1][lo] || inputs[1][0] != vecs[0][lo] {
			t.Fatalf("shard [%d,%d) inputs not in pinned order", lo, hi)
		}
		return nil
	}
	members, err := col.Collect(KindGradient, 0, q, nil, "", true, fold, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 || members[0] != "b" || members[1] != "a" {
		t.Fatalf("pinned membership %v, want [b a]", members)
	}
	if len(got) != 2 {
		t.Fatalf("folded %d shards, want 2", len(got))
	}
}

// TestShardCollectorWholeVectorInterop: a whole-vector message satisfies
// every shard of its sender at once, so mixed deployments (sharded and
// unsharded senders) share one quorum.
func TestShardCollectorWholeVectorInterop(t *testing.T) {
	const dim, size = 10, 3
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("recv")
	a, _ := net.Register("a")
	b, _ := net.Register("b")
	vecs := shardTestFeed(2, dim, 0)

	_ = a.Send("recv", Message{Kind: KindParams, Step: 0, Vec: vecs[0]})
	for _, sm := range SplitMessage(Message{Kind: KindParams, Step: 0, Vec: vecs[1]}, size) {
		_ = b.Send("recv", sm)
	}
	col := NewShardCollector(recv, NewShardLayout(dim, size))
	folds := 0
	fold := func(lo, hi int, senders []string, inputs []tensor.Vector) error {
		folds++
		if senders[0] != "a" || senders[1] != "b" {
			t.Fatalf("senders %v, want whole-vector sender first", senders)
		}
		for i := range inputs[0] {
			if inputs[0][i] != vecs[0][lo+i] || inputs[1][i] != vecs[1][lo+i] {
				t.Fatalf("shard [%d,%d) payload mismatch", lo, hi)
			}
		}
		return nil
	}
	if _, err := col.Collect(KindParams, 0, 2, nil, "", false, fold, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if folds != 4 {
		t.Fatalf("folded %d shards, want 4", folds)
	}
}

// TestShardCollectorUnderFaults routes shard frames through the fault
// injector (per-frame duplicates and reorder holds) and checks the
// incremental quorum still completes with correct payloads: duplicates
// hit the per-sender dedup, reordered frames land in whichever shard slot
// they belong to.
func TestShardCollectorUnderFaults(t *testing.T) {
	const (
		dim, size = 12, 4
		senders   = 4
		q         = 3
	)
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("recv")
	inj := NewFaultInjector(FaultConfig{Seed: 11, Duplicate: 0.4, Reorder: 0.4})
	vecs := shardTestFeed(senders, dim, 0)
	for i := 0; i < senders; i++ {
		ep, _ := net.Register(string(rune('a' + i)))
		fep := inj.Wrap(ep)
		for _, sm := range SplitMessage(Message{Kind: KindGradient, Step: 0, Vec: vecs[i]}, size) {
			_ = fep.Send("recv", sm)
		}
		// Closing the wrapper flushes any reorder-held tail frame — the
		// node-exit path every runtime runs.
		_ = fep.Close()
	}
	col := NewShardCollector(recv, NewShardLayout(dim, size))
	byName := map[string]tensor.Vector{"a": vecs[0], "b": vecs[1], "c": vecs[2], "d": vecs[3]}
	folds := 0
	fold := func(lo, hi int, sendersIn []string, inputs []tensor.Vector) error {
		folds++
		seen := map[string]bool{}
		for k, s := range sendersIn {
			if seen[s] {
				t.Fatalf("duplicate sender %q in a shard quorum", s)
			}
			seen[s] = true
			for i := range inputs[k] {
				if inputs[k][i] != byName[s][lo+i] {
					t.Fatalf("shard [%d,%d) from %s corrupted", lo, hi, s)
				}
			}
		}
		return nil
	}
	if _, err := col.Collect(KindGradient, 0, q, nil, "", false, fold, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if folds != 3 {
		t.Fatalf("folded %d shards, want 3", folds)
	}
}

// TestShardCollectorHorizonAndMalformed mirrors the Collector's hardening
// on the incremental path: far-future shards are dropped and counted,
// frames disagreeing with the layout are dropped and counted.
func TestShardCollectorHorizonAndMalformed(t *testing.T) {
	const dim, size = 8, 4
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("recv")
	a, _ := net.Register("a")
	b, _ := net.Register("b")

	v := make(tensor.Vector, dim)
	_ = a.Send("recv", Message{Kind: KindGradient, Step: 1000, Vec: v[:4],
		Shard: ShardMeta{Index: 0, Count: 2, Offset: 0}}) // beyond horizon
	_ = a.Send("recv", Message{Kind: KindGradient, Step: 0, Vec: v[:4],
		Shard: ShardMeta{Index: 0, Count: 3, Offset: 0}}) // count disagrees with layout
	_ = a.Send("recv", Message{Kind: KindGradient, Step: 0, Vec: v[:3],
		Shard: ShardMeta{Index: 0, Count: 2, Offset: 0}}) // short payload
	_ = a.Send("recv", Message{Kind: KindGradient, Step: 0, Vec: v[:6]}) // whole, wrong dim
	_ = a.Send("recv", Message{Kind: KindGradient, Step: 0, Vec: v})
	_ = b.Send("recv", Message{Kind: KindGradient, Step: 0, Vec: v})

	col := NewShardCollector(recv, NewShardLayout(dim, size))
	fold := func(int, int, []string, []tensor.Vector) error { return nil }
	if _, err := col.Collect(KindGradient, 0, 2, nil, "", false, fold, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if col.DroppedFuture() != 1 {
		t.Fatalf("DroppedFuture = %d, want 1", col.DroppedFuture())
	}
	if col.DroppedMalformed() != 3 {
		t.Fatalf("DroppedMalformed = %d, want 3", col.DroppedMalformed())
	}
}

// TestShardCollectorPeakBytes replays one round-robin schedule through
// both collectors: the incremental path's peak buffer must stay well under
// the whole-vector path's q·d floor.
func TestShardCollectorPeakBytes(t *testing.T) {
	const (
		dim, size = 4096, 256
		senders   = 6
		q         = 4
	)
	vecs := shardTestFeed(senders, dim, 0)

	wholeNet := NewChanNetwork(nil)
	defer wholeNet.Close()
	recv, _ := wholeNet.Register("recv")
	for i := 0; i < senders; i++ {
		ep, _ := wholeNet.Register(string(rune('a' + i)))
		_ = ep.Send("recv", Message{Kind: KindParams, Step: 0, Vec: vecs[i]})
	}
	col := NewCollector(recv)
	if _, err := col.Collect(KindParams, 0, q, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if want := q * dim * 8; col.PeakBytes() != want {
		t.Fatalf("whole-vector peak %d bytes, want %d", col.PeakBytes(), want)
	}

	shardNet := NewChanNetwork(nil)
	defer shardNet.Close()
	recv2, _ := shardNet.Register("recv")
	eps := make([]Endpoint, senders)
	frames := make([][]Message, senders)
	for i := 0; i < senders; i++ {
		eps[i], _ = shardNet.Register(string(rune('a' + i)))
		frames[i] = SplitMessage(Message{Kind: KindParams, Step: 0, Vec: vecs[i]}, size)
	}
	for s := 0; s < len(frames[0]); s++ {
		for i := 0; i < senders; i++ {
			_ = eps[i].Send("recv", frames[i][s])
		}
	}
	scol := NewShardCollector(recv2, NewShardLayout(dim, size))
	fold := func(int, int, []string, []tensor.Vector) error { return nil }
	if _, err := scol.Collect(KindParams, 0, q, nil, "", false, fold, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if want := q * size * 8; scol.PeakBytes() != want {
		t.Fatalf("sharded peak %d bytes, want %d", scol.PeakBytes(), want)
	}
	if scol.PeakBytes()*4 > col.PeakBytes() {
		t.Fatalf("sharded peak %d not well under whole peak %d", scol.PeakBytes(), col.PeakBytes())
	}
}
