package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// epochRoster is the test double for cluster.Roster.Allows: members of
// {a,b,c} before step 5, {b,c,d} from step 5 on — one join and one leave
// taking effect at the same boundary.
func epochRoster(step int, from string) bool {
	if step < 5 {
		return from == "a" || from == "b" || from == "c"
	}
	return from == "b" || from == "c" || from == "d"
}

func TestCollectorMembership(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("srv")
	eps := map[string]Endpoint{}
	for _, id := range []string{"a", "b", "c", "d"} {
		eps[id], _ = net.Register(id)
	}
	send := func(id string, step int) {
		t.Helper()
		if err := eps[id].Send("srv", Message{Kind: KindGradient, Step: step, Vec: tensor.Vector{1}}); err != nil {
			t.Fatal(err)
		}
	}

	sink := &metrics.NodeMetrics{}
	c := NewCollector(recv)
	c.Membership = epochRoster
	c.Metrics = sink

	// Step 0: d is not yet a member; its frame must never fill a slot even
	// though it arrives first.
	send("d", 0)
	for _, id := range []string{"a", "b", "c"} {
		send(id, 0)
	}
	msgs, err := c.Collect(KindGradient, 0, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if m.From == "d" {
			t.Fatal("pre-join sender entered the step-0 quorum")
		}
	}
	if c.DroppedRoster() != 1 {
		t.Fatalf("DroppedRoster = %d, want 1", c.DroppedRoster())
	}

	// Step 5: a has left and d has joined; the same quorum math now admits
	// d and rejects a.
	c.Advance(5)
	send("a", 5)
	for _, id := range []string{"b", "c", "d"} {
		send(id, 5)
	}
	msgs, err = c.Collect(KindGradient, 5, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if m.From == "a" {
			t.Fatal("departed sender entered the step-5 quorum")
		}
	}
	if c.DroppedRoster() != 2 {
		t.Fatalf("DroppedRoster = %d, want 2", c.DroppedRoster())
	}
	if got := sink.DroppedRoster.Load(); got != 2 {
		t.Fatalf("metrics mirror DroppedRoster = %d, want 2", got)
	}
}

func TestShardCollectorMembership(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("srv")
	eps := map[string]Endpoint{}
	for _, id := range []string{"a", "b", "c", "d"} {
		eps[id], _ = net.Register(id)
	}

	c := NewShardCollector(recv, NewShardLayout(4, 2))
	c.Membership = epochRoster

	vec := tensor.Vector{1, 2, 3, 4}
	// d streams both shards at step 0 — outside the roster, every frame drops.
	if err := SendSharded(eps["d"], "srv", Message{Kind: KindGradient, Step: 0, Vec: vec}, 2); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := SendSharded(eps[id], "srv", Message{Kind: KindGradient, Step: 0, Vec: vec}, 2); err != nil {
			t.Fatal(err)
		}
	}
	var folded int
	_, err := c.Collect(KindGradient, 0, 2, nil, "", false,
		func(lo, hi int, senders []string, inputs []tensor.Vector) error {
			folded++
			for _, s := range senders {
				if s == "d" {
					return fmt.Errorf("pre-join sender %s folded into shard [%d,%d)", s, lo, hi)
				}
			}
			return nil
		}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if folded != 2 {
		t.Fatalf("folded %d shards, want 2", folded)
	}
	if c.DroppedRoster() != 2 {
		t.Fatalf("DroppedRoster = %d, want 2 (one per shard frame)", c.DroppedRoster())
	}
}

// TestCollectAnyLatchesLiveStep is the rejoin discovery path: a collector
// that does not know the cluster's current step latches onto the first step
// ≥ its floor that completes a quorum.
func TestCollectAnyLatchesLiveStep(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("rejoiner")
	eps := make([]Endpoint, 4)
	for i := range eps {
		eps[i], _ = net.Register(fmt.Sprintf("p%d", i))
	}

	// Live traffic is mid-step-37; the rejoiner's checkpoint said step 12.
	for i, ep := range eps[:3] {
		if err := ep.Send("rejoiner", Message{Kind: KindPeerParams, Step: 37, Vec: tensor.Vector{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCollector(recv)
	msgs, step, err := c.CollectAny(KindPeerParams, 12, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if step != 37 || len(msgs) != 3 {
		t.Fatalf("CollectAny = %d msgs at step %d, want 3 at 37", len(msgs), step)
	}
	seen := map[string]bool{}
	for _, m := range msgs {
		if seen[m.From] {
			t.Fatalf("duplicate sender %s in rejoin quorum", m.From)
		}
		seen[m.From] = true
	}
}

// TestCollectAnyMobileFloor: the cluster may be arbitrarily far ahead of the
// checkpoint — beyond the buffering horizon. The floor must chase the live
// traffic instead of dropping it.
func TestCollectAnyMobileFloor(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("rejoiner")
	eps := make([]Endpoint, 3)
	for i := range eps {
		eps[i], _ = net.Register(fmt.Sprintf("p%d", i))
	}

	const live = 5000 // far beyond floor 0 + DefaultHorizon
	for i, ep := range eps {
		if err := ep.Send("rejoiner", Message{Kind: KindPeerParams, Step: live, Vec: tensor.Vector{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCollector(recv)
	c.Horizon = 16
	msgs, step, err := c.CollectAny(KindPeerParams, 0, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if step != live || len(msgs) != 3 {
		t.Fatalf("CollectAny = %d msgs at step %d, want 3 at %d", len(msgs), step, live)
	}
}

func TestCollectAnyTimesOut(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("rejoiner")
	p, _ := net.Register("p0")
	if err := p.Send("rejoiner", Message{Kind: KindPeerParams, Step: 9, Vec: tensor.Vector{1}}); err != nil {
		t.Fatal(err)
	}
	c := NewCollector(recv)
	// Only one live sender: no step can ever reach q=3, so the rejoiner
	// must time out — the caller then resumes from the checkpoint alone.
	if _, _, err := c.CollectAny(KindPeerParams, 0, 3, 100*time.Millisecond); err == nil {
		t.Fatal("CollectAny returned without a quorum")
	}
}

// TestShardCollectorPinnedFailover exercises the pinned-membership liveness
// caveat end to end at the transport layer: a pinned member that goes silent
// mid-round must surface as a clean timeout (never a deadlock), and
// ResetRound must let the caller retry the round with a fresh pin drawn
// from the senders still alive.
func TestShardCollectorPinnedFailover(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("srv")
	eps := map[string]Endpoint{}
	for _, id := range []string{"a", "b", "c", "d"} {
		eps[id], _ = net.Register(id)
	}

	layout := NewShardLayout(4, 2) // two shards
	c := NewShardCollector(recv, layout)
	vec := tensor.Vector{1, 2, 3, 4}
	shard := func(id string, idx int, step int) {
		t.Helper()
		lo, hi := layout.Bounds(idx)
		if err := eps[id].Send("srv", Message{
			Kind: KindGradient, Step: step, Vec: vec[lo:hi],
			Shard: ShardMeta{Index: idx, Count: 2, Offset: lo},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Round 1: a and b complete shard 0 and get pinned; a then goes silent,
	// so shard 1 can never complete under the pin [a b].
	shard("a", 0, 7)
	shard("b", 0, 7)
	shard("b", 1, 7)
	_, err := c.Collect(KindGradient, 7, 2, nil, "", true,
		func(lo, hi int, senders []string, inputs []tensor.Vector) error { return nil },
		200*time.Millisecond)
	if err == nil {
		t.Fatal("pinned round with a silent member completed")
	}

	// Failover: abandon the stalled round and retry with the senders that
	// are still alive. The fresh pin must exclude the silent member.
	c.ResetRound(KindGradient, 7)
	for _, id := range []string{"b", "c", "d"} {
		shard(id, 0, 7)
		shard(id, 1, 7)
	}
	var folded int
	pinned, err := c.Collect(KindGradient, 7, 2, nil, "", true,
		func(lo, hi int, senders []string, inputs []tensor.Vector) error {
			folded++
			return nil
		}, time.Second)
	if err != nil {
		t.Fatalf("retry after ResetRound failed: %v", err)
	}
	if folded != 2 {
		t.Fatalf("retry folded %d shards, want 2", folded)
	}
	if len(pinned) != 2 {
		t.Fatalf("retry pinned %v, want 2 members", pinned)
	}
	for _, id := range pinned {
		if id == "a" {
			t.Fatalf("silent member re-pinned after failover: %v", pinned)
		}
	}
}

// TestTCPAdmission: the hello v3 admission gate. A listener with an
// admission check refuses connections whose announced roster intent the
// check rejects — counted, and invisible to the quorum layer.
func TestTCPAdmission(t *testing.T) {
	srv, err := ListenTCP("srv", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var gotHello Hello
	srv.SetAdmission(func(h Hello) bool {
		gotHello = h
		return h.Intent != IntentJoin // fixed deployment: refuse joiners
	})

	// An established member connects and delivers normally.
	member, err := ListenTCP("member", "127.0.0.1:0", map[string]string{"srv": srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer member.Close()
	if err := member.Send("srv", Message{Kind: KindGradient, Step: 1, Vec: tensor.Vector{1}}); err != nil {
		t.Fatal(err)
	}
	if m, ok := srv.Recv(2 * time.Second); !ok || m.From != "member" {
		t.Fatalf("member delivery failed: %+v %v", m, ok)
	}
	if gotHello.ID != "member" || gotHello.Intent != IntentMember {
		t.Fatalf("admission saw %+v, want member hello", gotHello)
	}

	// A joiner announces its intent and is refused at the handshake.
	joiner, err := ListenTCP("joiner", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	joiner.SetHelloRoster(IntentJoin, 42, "")
	if err := joiner.AddPeer("srv", srv.Addr()); err != nil {
		t.Fatal(err)
	}
	// The dial itself succeeds (refusal happens after the hello is read),
	// so the send may enter the socket buffer; the message must simply
	// never surface on the server side.
	_ = joiner.Send("srv", Message{Kind: KindGradient, Step: 1, Vec: tensor.Vector{2}})
	deadline := time.Now().Add(2 * time.Second)
	for srv.DroppedUnadmitted() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("admission refusal never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if gotHello.ID != "joiner" || gotHello.Intent != IntentJoin || gotHello.EffectiveStep != 42 {
		t.Fatalf("admission saw %+v, want joiner hello with step 42", gotHello)
	}
	if m, ok := srv.Recv(100 * time.Millisecond); ok && m.From == "joiner" {
		t.Fatal("refused joiner's frame surfaced at the quorum layer")
	}
}
