package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// refMailbox is the single-threaded reference model the bounded-policy
// property tests compare against: arrival order with per-sender counts,
// evicting exactly as the policy specifies.
type refMailbox struct {
	cfg       MailboxConfig
	order     []Message
	perSender map[string]int
	dropped   uint64
}

func newRefMailbox(cfg MailboxConfig) *refMailbox {
	return &refMailbox{cfg: cfg, perSender: make(map[string]int)}
}

func (r *refMailbox) put(m Message) {
	if r.cfg.Bounded() && r.perSender[m.From] >= r.cfg.Cap {
		switch r.cfg.Policy {
		case DropNewest:
			r.dropped++
			return
		case DropOldest:
			for i, q := range r.order {
				if q.From == m.From {
					r.order = append(r.order[:i], r.order[i+1:]...)
					break
				}
			}
			r.perSender[m.From]--
			r.dropped++
		}
	}
	r.order = append(r.order, m)
	r.perSender[m.From]++
}

// drain empties a real mailbox without blocking past its current contents.
func drainMailbox(m *Mailbox) []Message {
	var out []Message
	for {
		msg, ok := m.Recv(0)
		if !ok {
			return out
		}
		out = append(out, msg)
	}
}

// TestMailboxPolicyPropertySurvivors drives random seeded Put sequences
// from k interleaved senders through each drop policy — single-goroutine,
// so the interleaving itself is the seed's choice — and asserts the real
// mailbox yields EXACTLY the reference model's surviving messages, in the
// same global arrival order, with the drop counter matching.
func TestMailboxPolicyPropertySurvivors(t *testing.T) {
	policies := []OverflowPolicy{DropNewest, DropOldest}
	for _, policy := range policies {
		for seed := int64(1); seed <= 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			cfg := MailboxConfig{Cap: 1 + rng.Intn(6), Policy: policy}
			box := NewMailboxWith(cfg)
			ref := newRefMailbox(cfg)
			senders := 2 + rng.Intn(4)
			steps := make([]int, senders)
			puts := 50 + rng.Intn(150)
			for i := 0; i < puts; i++ {
				s := rng.Intn(senders)
				m := Message{From: fmt.Sprintf("s%d", s), Kind: KindGradient, Step: steps[s]}
				steps[s]++
				box.Put(m)
				ref.put(m)
			}
			got := drainMailbox(box)
			if len(got) != len(ref.order) {
				t.Fatalf("%v seed %d: %d survivors, reference %d",
					policy, seed, len(got), len(ref.order))
			}
			for i := range got {
				if got[i].From != ref.order[i].From || got[i].Step != ref.order[i].Step {
					t.Fatalf("%v seed %d: survivor %d = %s/%d, reference %s/%d",
						policy, seed, i, got[i].From, got[i].Step,
						ref.order[i].From, ref.order[i].Step)
				}
			}
			if box.DroppedOverflow() != ref.dropped {
				t.Fatalf("%v seed %d: DroppedOverflow = %d, reference %d",
					policy, seed, box.DroppedOverflow(), ref.dropped)
			}
			if uint64(len(got))+box.DroppedOverflow() != uint64(puts) {
				t.Fatalf("%v seed %d: %d survivors + %d dropped ≠ %d puts",
					policy, seed, len(got), box.DroppedOverflow(), puts)
			}
		}
	}
}

// TestMailboxUnboundedKeepsEverything pins the zero-config baseline the
// bit-identity guarantee rests on: no cap, no drops, pure global FIFO.
func TestMailboxUnboundedKeepsEverything(t *testing.T) {
	box := NewMailbox()
	const puts = 500
	for i := 0; i < puts; i++ {
		box.Put(Message{From: fmt.Sprintf("s%d", i%7), Step: i})
	}
	got := drainMailbox(box)
	if len(got) != puts {
		t.Fatalf("unbounded mailbox kept %d of %d", len(got), puts)
	}
	for i, m := range got {
		if m.Step != i {
			t.Fatalf("message %d has step %d: FIFO violated", i, m.Step)
		}
	}
	if box.DroppedOverflow() != 0 {
		t.Fatalf("unbounded mailbox counted %d overflow drops", box.DroppedOverflow())
	}
}

// TestMailboxDropOldestKeepsNewestPerSender is the superseded-step
// property that makes drop-oldest protocol-safe: whatever the interleaving,
// each sender's NEWEST frame always survives, and the survivors are exactly
// that sender's last cap frames.
func TestMailboxDropOldestKeepsNewestPerSender(t *testing.T) {
	const senders, perSender, cap = 5, 40, 3
	rng := rand.New(rand.NewSource(99))
	box := NewMailboxWith(MailboxConfig{Cap: cap, Policy: DropOldest})
	// Interleave by drawing the next sender at random until each has sent
	// steps 0..perSender-1 in its own order.
	next := make([]int, senders)
	remaining := senders * perSender
	for remaining > 0 {
		s := rng.Intn(senders)
		if next[s] == perSender {
			continue
		}
		box.Put(Message{From: fmt.Sprintf("s%d", s), Kind: KindGradient, Step: next[s]})
		next[s]++
		remaining--
	}
	bySender := make(map[string][]int)
	for _, m := range drainMailbox(box) {
		bySender[m.From] = append(bySender[m.From], m.Step)
	}
	for s := 0; s < senders; s++ {
		id := fmt.Sprintf("s%d", s)
		got := bySender[id]
		if len(got) != cap {
			t.Fatalf("%s: %d survivors, want cap %d", id, len(got), cap)
		}
		// Per-sender arrival order is that sender's send order, so the
		// survivors must be the last cap steps, newest included.
		for i, step := range got {
			if want := perSender - cap + i; step != want {
				t.Fatalf("%s survivor %d: step %d, want %d (newest-tail property)",
					id, i, step, want)
			}
		}
	}
	wantDropped := uint64(senders * (perSender - cap))
	if box.DroppedOverflow() != wantDropped {
		t.Fatalf("DroppedOverflow = %d, want %d", box.DroppedOverflow(), wantDropped)
	}
}

// TestMailboxBackpressureBlocksUntilDrained pins the blocking policy: a
// producer past the cap parks in Put, resumes as the consumer drains, and
// nothing is ever dropped.
func TestMailboxBackpressureBlocksUntilDrained(t *testing.T) {
	const cap, total = 2, 10
	box := NewMailboxWith(MailboxConfig{Cap: cap, Policy: Backpressure})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			box.Put(Message{From: "p", Step: i})
		}
	}()
	// The producer must park at the cap, not run ahead.
	deadline := time.Now().Add(time.Second)
	for box.Len() < cap && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if n := box.Len(); n != cap {
		t.Fatalf("producer ran past the cap: Len = %d", n)
	}
	select {
	case <-done:
		t.Fatal("producer finished while mailbox was full")
	default:
	}
	for i := 0; i < total; i++ {
		m, ok := box.Recv(time.Second)
		if !ok || m.Step != i {
			t.Fatalf("Recv %d: ok=%v step=%d", i, ok, m.Step)
		}
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("producer still blocked after a full drain")
	}
	if box.DroppedOverflow() != 0 || box.DroppedClosed() != 0 {
		t.Fatalf("backpressure dropped: overflow=%d closed=%d",
			box.DroppedOverflow(), box.DroppedClosed())
	}
}

// TestMailboxBackpressureCloseUnblocks pins the teardown path: a producer
// parked in Put must wake on Close, and its frame is counted under
// DroppedClosed, not silently discarded.
func TestMailboxBackpressureCloseUnblocks(t *testing.T) {
	box := NewMailboxWith(MailboxConfig{Cap: 1, Policy: Backpressure})
	box.Put(Message{Step: 0})
	unblocked := make(chan struct{})
	go func() {
		defer close(unblocked)
		box.Put(Message{Step: 1}) // parks: the box is at cap
	}()
	time.Sleep(20 * time.Millisecond)
	box.Close()
	select {
	case <-unblocked:
	case <-time.After(time.Second):
		t.Fatal("Put did not wake on Close")
	}
	if box.DroppedClosed() != 1 {
		t.Fatalf("DroppedClosed = %d, want 1", box.DroppedClosed())
	}
}

// TestMailboxDroppedClosedCounts pins the fix for the silent-discard bug:
// every Put after Close increments DroppedClosed.
func TestMailboxDroppedClosedCounts(t *testing.T) {
	box := NewMailbox()
	box.Put(Message{Step: 0})
	box.Close()
	for i := 0; i < 3; i++ {
		box.Put(Message{Step: i})
	}
	if box.DroppedClosed() != 3 {
		t.Fatalf("DroppedClosed = %d, want 3", box.DroppedClosed())
	}
	// The pre-close message still drains: Close stops intake, not delivery.
	if m, ok := box.Recv(0); !ok || m.Step != 0 {
		t.Fatalf("pre-close message lost: ok=%v step=%d", ok, m.Step)
	}
}

// TestMailboxBoundedConcurrentAccounting is the race-clean chaos check:
// many producers spray a bounded drop-oldest box while a consumer drains,
// and afterwards every frame is accounted for — received, still buffered,
// or counted dropped — with every per-sender queue within its cap.
func TestMailboxBoundedConcurrentAccounting(t *testing.T) {
	const producers, perProducer, cap = 8, 300, 4
	box := NewMailboxWith(MailboxConfig{Cap: cap, Policy: DropOldest})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			id := fmt.Sprintf("p%d", p)
			for i := 0; i < perProducer; i++ {
				box.Put(Message{From: id, Step: i})
				if box.PeerLen(id) > cap {
					t.Errorf("%s queue exceeded cap", id)
					return
				}
			}
		}(p)
	}
	var received uint64
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for {
			if _, ok := box.Recv(50 * time.Millisecond); !ok {
				return
			}
			received++
		}
	}()
	wg.Wait()
	<-consumerDone
	received += uint64(len(drainMailbox(box)))
	const sent = producers * perProducer
	if got := received + box.DroppedOverflow(); got != sent {
		t.Fatalf("accounting: received %d + dropped %d = %d, want %d",
			received, box.DroppedOverflow(), got, sent)
	}
}

// TestMailboxSpecRoundTrip pins the flag syntax: every bounded config
// formats to a spec that parses back to itself, and the unbounded zero
// value formats as "none".
func TestMailboxSpecRoundTrip(t *testing.T) {
	cases := []MailboxConfig{
		{},
		{Cap: DefaultMailboxCap, Policy: Backpressure},
		{Cap: 1, Policy: DropNewest},
		{Cap: 7, Policy: DropOldest},
	}
	for _, cfg := range cases {
		parsed, err := ParseMailboxSpec(cfg.String())
		if err != nil {
			t.Fatalf("ParseMailboxSpec(%q): %v", cfg.String(), err)
		}
		if parsed != cfg {
			t.Fatalf("round trip %q: got %+v, want %+v", cfg.String(), parsed, cfg)
		}
	}
	if _, err := ParseMailboxSpec("drop-oldest:cap=0"); err == nil {
		t.Fatal("cap=0 spec parsed without error")
	}
	if _, err := ParseMailboxSpec("lossy"); err == nil {
		t.Fatal("unknown policy parsed without error")
	}
	if cfg, err := ParseMailboxSpec("drop-newest"); err != nil || cfg.Cap != DefaultMailboxCap {
		t.Fatalf("bare policy spec: cfg=%+v err=%v", cfg, err)
	}
}

// TestTCPDroppedClosedOnTeardown pins the teardown accounting over real
// sockets: a sender still spraying while the receiver shuts down has its
// in-flight frames counted under DroppedClosed, not silently discarded. A
// backpressure cap of 1 with nobody draining makes the moment
// deterministic: the receiver's read loop is parked inside Put when Close
// arrives, so at least that frame MUST take the counted path.
func TestTCPDroppedClosedOnTeardown(t *testing.T) {
	b, err := ListenTCP("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.SetMailbox(MailboxConfig{Cap: 1, Policy: Backpressure}); err != nil {
		t.Fatal(err)
	}
	a, err := ListenTCP("a", "127.0.0.1:0", map[string]string{"b": b.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	for i := 0; i < 3; i++ {
		if err := a.Send("b", Message{Kind: KindGradient, Step: i, Vec: tensor.Vector{1}}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for frame 0 to land; frame 1 is then parked in the read loop's
	// Put (same connection, processed in order), frame 2 queued behind it.
	deadline := time.Now().Add(2 * time.Second)
	for b.box.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.box.Len() == 0 {
		t.Fatal("first frame never arrived")
	}
	time.Sleep(50 * time.Millisecond) // let the read loop park on frame 1
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := b.DroppedClosed(); got == 0 {
		t.Fatal("teardown discarded the parked frame without counting it")
	}
}

// TestChanNetworkBoundedDropCounters pins the in-process network's per-
// endpoint drop accounting: an undrained receiver under a drop policy
// sheds exactly the overflow, visible through Dropped.
func TestChanNetworkBoundedDropCounters(t *testing.T) {
	const cap, extra = 4, 9
	net := NewChanNetwork(nil)
	if err := net.SetMailbox(MailboxConfig{Cap: cap, Policy: DropNewest}); err != nil {
		t.Fatal(err)
	}
	a, err := net.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Register("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cap+extra; i++ {
		if err := a.Send("b", Message{From: "a", Step: i}); err != nil {
			t.Fatal(err)
		}
	}
	over, closed := net.Dropped("b")
	if over != extra || closed != 0 {
		t.Fatalf("Dropped(b) = (%d, %d), want (%d, 0)", over, closed, extra)
	}
	if over, closed := net.Dropped("nobody"); over != 0 || closed != 0 {
		t.Fatalf("Dropped(unknown) = (%d, %d), want zeros", over, closed)
	}
	net.Close()
}
