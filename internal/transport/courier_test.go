package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// stubEndpoint records sends and can simulate a slow link: with gate set,
// every Send announces itself on inSend and then parks until gate closes.
type stubEndpoint struct {
	mu     sync.Mutex
	sent   map[string][]Message
	gate   chan struct{}
	inSend chan struct{}
	closed bool
}

func newStubEndpoint() *stubEndpoint {
	return &stubEndpoint{sent: make(map[string][]Message)}
}

func (s *stubEndpoint) ID() string { return "stub" }

func (s *stubEndpoint) Send(to string, m Message) error {
	if s.gate != nil {
		s.inSend <- struct{}{}
		<-s.gate
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sent[to] = append(s.sent[to], m)
	return nil
}

func (s *stubEndpoint) Recv(timeout time.Duration) (Message, bool) { return Message{}, false }

func (s *stubEndpoint) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *stubEndpoint) sentTo(to string) []Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Message(nil), s.sent[to]...)
}

// TestCouriersDeliverAllAndFlushOnClose pins the core contract: every
// accepted frame reaches the inner endpoint in per-link FIFO order, and
// Close drains what is still queued before closing the inner endpoint.
func TestCouriersDeliverAllAndFlushOnClose(t *testing.T) {
	stub := newStubEndpoint()
	c := NewCouriers(stub, MailboxConfig{Cap: 4, Policy: Backpressure})
	const dests, perDest = 3, 25
	for i := 0; i < perDest; i++ {
		for d := 0; d < dests; d++ {
			if err := c.Send(fmt.Sprintf("n%d", d), Message{From: "me", Step: i}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < dests; d++ {
		got := stub.sentTo(fmt.Sprintf("n%d", d))
		if len(got) != perDest {
			t.Fatalf("n%d received %d frames, want %d", d, len(got), perDest)
		}
		for i, m := range got {
			if m.Step != i {
				t.Fatalf("n%d frame %d has step %d: per-link FIFO violated", d, i, m.Step)
			}
		}
	}
	if !stub.closed {
		t.Fatal("Close did not close the inner endpoint")
	}
	if err := c.Send("n0", Message{}); err == nil {
		t.Fatal("Send after Close succeeded")
	}
}

// TestCouriersSnapshotAtEnqueue pins the clone-at-Send contract: the node
// loop keeps mutating its vector in place, so the courier must snapshot the
// payload when it accepts the frame, not when the link finally drains.
func TestCouriersSnapshotAtEnqueue(t *testing.T) {
	stub := newStubEndpoint()
	stub.gate = make(chan struct{})
	stub.inSend = make(chan struct{}, 1)
	c := NewCouriers(stub, MailboxConfig{Cap: 4, Policy: Backpressure})
	vec := tensor.Vector{1, 2, 3}
	if err := c.Send("n0", Message{From: "me", Vec: vec}); err != nil {
		t.Fatal(err)
	}
	<-stub.inSend // the courier holds the frame, parked in the slow link
	vec[0] = 42   // the sender moves on and overwrites its buffer
	close(stub.gate)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	got := stub.sentTo("n0")
	if len(got) != 1 || got[0].Vec[0] != 1 {
		t.Fatalf("delivered payload %v: snapshot not taken at enqueue", got)
	}
}

// TestCouriersDropNewestOnSlowLink pins the bounded-outbox behaviour: with
// the link parked mid-Send, sends past the cap are shed and counted, and
// the survivors are the oldest queued frames.
func TestCouriersDropNewestOnSlowLink(t *testing.T) {
	const cap, extra = 2, 3
	stub := newStubEndpoint()
	stub.gate = make(chan struct{})
	stub.inSend = make(chan struct{}, 8) // roomy: announces keep coming after the gate opens
	c := NewCouriers(stub, MailboxConfig{Cap: cap, Policy: DropNewest})
	if err := c.Send("n0", Message{Step: 0}); err != nil {
		t.Fatal(err)
	}
	<-stub.inSend // frame 0 is out of the queue, parked in the link
	for i := 1; i <= cap+extra; i++ {
		if err := c.Send("n0", Message{Step: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.DroppedOverflow(); got != extra {
		t.Fatalf("DroppedOverflow = %d, want %d", got, extra)
	}
	close(stub.gate)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	got := stub.sentTo("n0")
	if len(got) != 1+cap {
		t.Fatalf("delivered %d frames, want %d", len(got), 1+cap)
	}
	for i, m := range got {
		if m.Step != i {
			t.Fatalf("frame %d has step %d: drop-newest must keep the oldest queued", i, m.Step)
		}
	}
}

// TestCouriersConcurrentSenders exercises the lazy link creation and the
// shared close path under the race detector.
func TestCouriersConcurrentSenders(t *testing.T) {
	stub := newStubEndpoint()
	c := NewCouriers(stub, MailboxConfig{Cap: 8, Policy: Backpressure})
	const goroutines, perG, dests = 6, 50, 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_ = c.Send(fmt.Sprintf("n%d", (g+i)%dests), Message{Step: i})
			}
		}(g)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for d := 0; d < dests; d++ {
		total += len(stub.sentTo(fmt.Sprintf("n%d", d)))
	}
	if total != goroutines*perG {
		t.Fatalf("delivered %d frames, want %d", total, goroutines*perG)
	}
}
