package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/tensor"
)

func TestCodecHeaderLayout(t *testing.T) {
	m := Message{From: "ps7", Kind: KindPeerParams, Step: -3, Vec: tensor.Vector{1.5}}
	buf := mustEncode(t, m)
	if len(buf) != EncodedSize(&m) || len(buf) != FrameHeaderSize+3+8 {
		t.Fatalf("frame length %d", len(buf))
	}
	if Kind(buf[0]) != KindPeerParams {
		t.Fatalf("kind byte %d", buf[0])
	}
	if got := int(int64(binary.LittleEndian.Uint64(buf[1:]))); got != -3 {
		t.Fatalf("step field %d", got) // negative steps must survive the two's-complement trip
	}
	if binary.LittleEndian.Uint16(buf[9:]) != 3 || binary.LittleEndian.Uint32(buf[11:]) != 1 {
		t.Fatal("length fields wrong")
	}
	if string(buf[FrameHeaderSize:FrameHeaderSize+3]) != "ps7" {
		t.Fatal("sender bytes wrong")
	}
	if math.Float64frombits(binary.LittleEndian.Uint64(buf[FrameHeaderSize+3:])) != 1.5 {
		t.Fatal("payload bits wrong")
	}
}

// Every strict prefix of a valid frame must be rejected as short, by both
// decoder faces — a truncated stream can never produce a message.
func TestCodecTruncatedFrameRejected(t *testing.T) {
	m := Message{From: "wrk2", Kind: KindGradient, Step: 9, Vec: tensor.Vector{1, 2, 3, math.NaN()}}
	frame := mustEncode(t, m)
	for cut := 0; cut < len(frame); cut++ {
		var got Message
		if _, err := DecodeMessage(frame[:cut], &got); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("cut %d: DecodeMessage err = %v, want ErrShortFrame", cut, err)
		}
		var scratch []byte
		err := ReadMessage(bytes.NewReader(frame[:cut]), &scratch, &got)
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("empty stream: err = %v, want io.EOF", err)
			}
		} else if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: ReadMessage err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// Oversized declared lengths must be rejected from the 15-byte header
// alone, before any allocation could be sized from them.
func TestCodecOversizedFrameRejected(t *testing.T) {
	base := mustEncode(t, Message{From: "a", Kind: KindParams, Step: 0})
	tooManyCoords := append([]byte(nil), base...)
	binary.LittleEndian.PutUint32(tooManyCoords[11:], MaxVecLen+1)
	tooLongFrom := append([]byte(nil), base...)
	binary.LittleEndian.PutUint16(tooLongFrom[9:], MaxFromLen+1)
	for name, frame := range map[string][]byte{"vec": tooManyCoords, "from": tooLongFrom} {
		var got Message
		if _, err := DecodeMessage(frame, &got); err == nil || errors.Is(err, ErrShortFrame) {
			t.Fatalf("%s: DecodeMessage err = %v, want limit error", name, err)
		}
		var scratch []byte
		if err := ReadMessage(bytes.NewReader(frame), &scratch, &got); err == nil {
			t.Fatalf("%s: ReadMessage accepted an oversized header", name)
		}
	}
	// The encoder refuses to produce what no receiver would accept.
	if _, err := AppendMessage(nil, &Message{From: strings.Repeat("x", MaxFromLen+1)}); err == nil {
		t.Fatal("AppendMessage accepted an oversized sender ID")
	}
}

// DecodeMessage consumes exactly one frame, so frames can be streamed
// back-to-back out of one buffer.
func TestCodecBackToBackFrames(t *testing.T) {
	msgs := []Message{
		{From: "wrk0", Kind: KindGradient, Step: 1, Vec: tensor.Vector{1, 2}},
		{From: "ps1", Kind: KindParams, Step: 2},
		{From: "wrk0", Kind: KindPeerParams, Step: 3, Vec: tensor.Vector{-0.5}},
	}
	var stream []byte
	for i := range msgs {
		var err error
		stream, err = AppendMessage(stream, &msgs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	var got Message
	for i := range msgs {
		n, err := DecodeMessage(stream, &got)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.From != msgs[i].From || got.Kind != msgs[i].Kind || got.Step != msgs[i].Step ||
			len(got.Vec) != len(msgs[i].Vec) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, msgs[i])
		}
		stream = stream[n:]
	}
	if len(stream) != 0 {
		t.Fatalf("%d trailing bytes", len(stream))
	}
}

// The ownership contract's zero-alloc promise: encoding into a reused
// buffer and decoding a same-sender stream into a reused Message allocate
// nothing in steady state.
func TestCodecSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inserts allocations")
	}
	m := Message{From: "wrk3", Kind: KindGradient, Step: 5,
		Vec: tensor.NewRNG(1).NormVec(make(tensor.Vector, 4096), 0, 1)}
	buf := mustEncode(t, m)
	if n := testing.AllocsPerRun(50, func() {
		var err error
		buf, err = AppendMessage(buf[:0], &m)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("encode allocates %v/op in steady state", n)
	}
	out := Message{Vec: make(tensor.Vector, 0, len(m.Vec))}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := DecodeMessage(buf, &out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("decode allocates %v/op in steady state", n)
	}
}

// A payload declared larger than the up-front trust threshold must still
// round-trip exactly through the incremental (pay-as-bytes-arrive) read
// path, and the staging buffer must stay chunk-sized — the memory a header
// can pin without shipping traffic.
func TestReadMessageOversizedClaimIncrementalPath(t *testing.T) {
	dim := preallocCoords + 1023 // forces the geometric-growth branch
	rng := tensor.NewRNG(4)
	m := Message{From: "wrk5", Kind: KindParams, Step: 11,
		Vec: rng.NormVec(make(tensor.Vector, dim), 0, 1)}
	frame := mustEncode(t, m)
	var scratch []byte
	var got Message
	if err := ReadMessage(bytes.NewReader(frame), &scratch, &got); err != nil {
		t.Fatal(err)
	}
	if cap(scratch) > readChunkBytes {
		t.Fatalf("scratch grew to %d bytes (chunk bound %d)", cap(scratch), readChunkBytes)
	}
	if got.From != m.From || got.Kind != m.Kind || got.Step != m.Step || len(got.Vec) != dim {
		t.Fatalf("header mismatch: %q %v %d len=%d", got.From, got.Kind, got.Step, len(got.Vec))
	}
	for i := range m.Vec {
		if math.Float64bits(got.Vec[i]) != math.Float64bits(m.Vec[i]) {
			t.Fatalf("coordinate %d corrupted", i)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	buf, err := appendHello(nil, "wrk42", 0)
	if err != nil {
		t.Fatal(err)
	}
	// A zero capability mask emits the legacy v1 hello byte-for-byte: a
	// non-compressing build of this node is wire-identical to a
	// pre-compression one.
	if want := append(append([]byte(helloMagic), 5), "wrk42"...); !bytes.Equal(buf, want) {
		t.Fatalf("v1 hello = %x, want %x", buf, want)
	}
	h, err := readHello(bytes.NewReader(buf))
	if err != nil || h.ID != "wrk42" || h.Caps != 0 {
		t.Fatalf("readHello = %+v, %v", h, err)
	}
	if h.Intent != IntentMember || h.EffectiveStep != 0 || h.Replaces != "" {
		t.Fatalf("v1 hello parsed with roster fields: %+v", h)
	}
	if _, err := appendHello(nil, "", 0); err == nil {
		t.Fatal("empty hello ID accepted")
	}
	if _, err := appendHello(nil, strings.Repeat("x", MaxFromLen+1), 0); err == nil {
		t.Fatal("oversized hello ID accepted")
	}
	if _, err := readHello(bytes.NewReader([]byte("NOPE\x03abc"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := readHello(bytes.NewReader(buf[:4])); err == nil {
		t.Fatal("truncated hello accepted")
	}
}

func TestHelloV2Capabilities(t *testing.T) {
	buf, err := appendHello(nil, "wrk42", 0x0a)
	if err != nil {
		t.Fatal(err)
	}
	if want := append(append(append([]byte(helloMagicV2), 5), "wrk42"...), 0x0a); !bytes.Equal(buf, want) {
		t.Fatalf("v2 hello = %x, want %x", buf, want)
	}
	h, err := readHello(bytes.NewReader(buf))
	if err != nil || h.ID != "wrk42" || h.Caps != 0x0a {
		t.Fatalf("readHello = %+v, %v", h, err)
	}
	// Truncated before the capability byte: the header committed the stream
	// to one more byte.
	if _, err := readHello(bytes.NewReader(buf[:len(buf)-1])); err == nil {
		t.Fatal("v2 hello without capability byte accepted")
	}
}

func TestHelloV3Roster(t *testing.T) {
	want := Hello{ID: "ps3", Caps: 0x02, Intent: IntentReplace, EffectiveStep: 71, Replaces: "ps1"}
	buf, err := AppendHelloRoster(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, []byte(helloMagicV3)) {
		t.Fatalf("roster hello magic = %q", buf[:4])
	}
	h, err := readHello(bytes.NewReader(buf))
	if err != nil || h != want {
		t.Fatalf("readHello = %+v, %v (want %+v)", h, err, want)
	}

	// Join and leave round-trip without a replaced ID.
	for _, intent := range []RosterIntent{IntentJoin, IntentLeave} {
		w := Hello{ID: "wrk9", Intent: intent, EffectiveStep: 12}
		buf, err := AppendHelloRoster(nil, w)
		if err != nil {
			t.Fatal(err)
		}
		h, err := readHello(bytes.NewReader(buf))
		if err != nil || h != w {
			t.Fatalf("%s hello = %+v, %v", intent, h, err)
		}
	}

	// A member announcement with zero roster fields downgrades to the v2
	// (or v1) frame, keeping fixed-roster deployments wire-identical.
	buf, err = AppendHelloRoster(nil, Hello{ID: "ps0", Caps: 0x02})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, []byte(helloMagicV2)) {
		t.Fatalf("zero-roster hello did not downgrade: magic %q", buf[:4])
	}

	// Structural rejections, symmetric on both sides.
	if _, err := AppendHelloRoster(nil, Hello{ID: "x", Intent: IntentReplace}); err == nil {
		t.Fatal("replace without a replaced ID accepted")
	}
	if _, err := AppendHelloRoster(nil, Hello{ID: "x", Intent: IntentJoin, Replaces: "y"}); err == nil {
		t.Fatal("join with a replaced ID accepted")
	}
	if _, err := AppendHelloRoster(nil, Hello{ID: "x", Intent: IntentJoin, EffectiveStep: -1}); err == nil {
		t.Fatal("negative effective step accepted")
	}
	full, err := AppendHelloRoster(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 5; cut < len(full); cut++ {
		if _, err := readHello(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("hello truncated at %d bytes accepted", cut)
		}
	}
	// An unknown intent byte is rejected by the reader's validation.
	bad := append([]byte(nil), full...)
	bad[4+1+len("ps3")+1] = 9
	if _, err := readHello(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown roster intent accepted")
	}
}

// A Byzantine peer cannot forge other senders: frames whose From disagrees
// with the connection's hello identity are dropped and counted, so the
// Collector's per-sender dedup keeps counting distinct NODES.
func TestTCPForgedSenderDropped(t *testing.T) {
	srv, err := ListenTCP("srv", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	hello, err := appendHello(nil, "byz", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(hello); err != nil {
		t.Fatal(err)
	}
	// Three forged identities, then one honest frame under the hello name.
	var stream []byte
	for _, from := range []string{"wrk0", "wrk1", "ps0", "byz"} {
		stream, err = AppendMessage(stream, &Message{From: from, Kind: KindGradient, Step: 1, Vec: tensor.Vector{7}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := raw.Write(stream); err != nil {
		t.Fatal(err)
	}

	m, ok := srv.Recv(2 * time.Second)
	if !ok {
		t.Fatal("authenticated frame not delivered")
	}
	if m.From != "byz" {
		t.Fatalf("delivered forged sender %q", m.From)
	}
	if _, ok := srv.Recv(100 * time.Millisecond); ok {
		t.Fatal("a forged frame was delivered")
	}
	if got := srv.ForgedDropped(); got != 3 {
		t.Fatalf("ForgedDropped = %d, want 3", got)
	}
}

// A stream that cannot produce a well-formed hello is not a peer: nothing
// it sends is delivered.
func TestTCPBadHelloRejected(t *testing.T) {
	srv, err := ListenTCP("srv", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	frame := mustEncode(t, Message{From: "srv", Kind: KindParams, Step: 0, Vec: tensor.Vector{1}})
	if _, err := raw.Write(append([]byte("XXXX\x03byz"), frame...)); err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.Recv(150 * time.Millisecond); ok {
		t.Fatal("message delivered over an unauthenticated connection")
	}
}
