package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Hand-rolled binary wire codec for Message — the hot path every byte of
// cluster traffic crosses. Each protocol message is one length-prefixed
// frame:
//
//	offset  size       field
//	0       1          kind (uint8; bit 7 = chunk flag, bit 6 = compressed flag)
//	1       8          step (int64, little-endian two's complement)
//	9       2          from-len (uint16, little-endian)
//	11      4          vec-len (uint32, little-endian, in coordinates)
//	15      from-len   sender ID (raw bytes)
//	15+f    8·vec-len  payload (float64 coordinates, little-endian bits)
//
// When bit 7 of the kind byte is set, the frame is a CHUNK frame carrying
// one coordinate shard of a larger vector, and an 8-byte shard extension is
// inserted between the fixed header and the sender ID:
//
//	offset  size       field (chunk frames only)
//	15      2          shard-index (uint16, little-endian)
//	17      2          shard-count (uint16, little-endian, ≥ 1)
//	19      4          shard-offset (uint32, little-endian, in coordinates)
//	23      from-len   sender ID (raw bytes)
//	23+f    8·vec-len  payload (the shard's coordinates)
//
// When bit 6 is set, the frame is a COMPRESSED frame: the payload is not
// raw float64 coordinates but an opaque byte string produced by an
// internal/compress scheme, expanding to vec-len coordinates. A 5-byte
// compression extension follows the fixed header (after the shard
// extension if both flags are set — compression composes with chunk
// streaming, decided per frame):
//
//	offset  size       field (compressed frames, relative to extension start)
//	+0      1          scheme (uint8, nonzero; see compress.Scheme)
//	+1      4          enc-len (uint32, little-endian, payload BYTES)
//	        from-len   sender ID (raw bytes)
//	        enc-len    payload (scheme-encoded; spec in WIRE.md §9)
//
// The codec transports compressed payloads byte-for-byte and stays
// bijective; expansion is the receiving transport's job (negotiation, then
// DecompressMessage) because delta streams carry per-connection state.
//
// The fixed header carries both variable lengths, so a reader knows the
// exact frame extent after 15 bytes (plus 8 and/or 5 for the extensions) —
// no varints, no reflection, no type descriptors. Coordinates are raw
// IEEE-754 bit patterns: NaN payloads and signed zeros survive
// bit-identically (a Byzantine sender controls every bit it ships, and the
// inbound validator — not the codec — decides what is acceptable). WIRE.md
// is the normative byte-level specification of all frame types and the
// hello handshake.
//
// # Buffer ownership contract
//
// AppendMessage appends to a caller-owned buffer and returns the extended
// slice; the message is only read during the call, so the caller may keep
// mutating m.Vec afterwards (serialisation IS the snapshot — the property
// the node loops rely on to reuse one parameter vector across broadcasts).
// DecodeMessage and ReadMessage write into a caller-owned Message, reusing
// m.Vec's capacity when it suffices and reallocating when it does not;
// m.From is only reassigned when the sender actually changed, so decoding a
// stream from one peer into one reused Message allocates nothing in steady
// state. The input buffer is never retained: decoded messages alias nothing.
//
// # Hardening
//
// Frames declaring more than MaxFromLen sender bytes or MaxVecLen
// coordinates are rejected before any allocation, and within the limits
// ReadMessage commits memory only as body bytes actually arrive (see
// preallocCoords), so a Byzantine peer cannot make a receiver reserve
// memory it never pays for in traffic — a 15-byte header alone pins at
// most one staging chunk. Truncated frames surface as io.ErrUnexpectedEOF
// from ReadMessage and ErrShortFrame from DecodeMessage.
const (
	// FrameHeaderSize is the fixed frame header length in bytes.
	FrameHeaderSize = 15
	// ShardHeaderSize is the length of the shard extension chunk frames
	// carry after the fixed header.
	ShardHeaderSize = 8
	// MaxFromLen bounds the sender-ID length a frame may declare.
	MaxFromLen = 255
	// MaxVecLen bounds the coordinate count a frame may declare (512 MiB of
	// payload) — far above the paper's 1,756,426-parameter model, far below
	// an allocation that could take a receiver down.
	MaxVecLen = 1 << 26
	// MaxShardCount bounds the shard count a chunk frame may declare (the
	// largest value its uint16 wire field holds).
	MaxShardCount = 1<<16 - 1
	// CompHeaderSize is the length of the compression extension compressed
	// frames carry ({scheme uint8, enc-len uint32}).
	CompHeaderSize = 5
	// MaxCompSlack bounds how far a compressed payload may exceed the raw
	// encoding of its declared range: every shipped scheme SHRINKS its
	// payload, so enc-len ≤ 8·vec-len + MaxCompSlack caps what a header can
	// make a receiver stage without also capping legitimate scheme headers.
	MaxCompSlack = 64
	// chunkFlag is bit 7 of the kind byte: set on chunk frames. compFlag is
	// bit 6: set on compressed frames. kindFlagMask covers both, so base
	// kinds live in [0, 0x40).
	chunkFlag    = 0x80
	compFlag     = 0x40
	kindFlagMask = chunkFlag | compFlag
)

// ErrShortFrame reports a frame shorter than its header declares.
var ErrShortFrame = fmt.Errorf("transport: short frame")

// EncodedSize returns the exact frame length AppendMessage would produce.
func EncodedSize(m *Message) int {
	n := FrameHeaderSize + len(m.From)
	if m.IsShard() {
		n += ShardHeaderSize
	}
	if m.IsCompressed() {
		n += CompHeaderSize + len(m.Comp.Data)
	} else {
		n += 8 * len(m.Vec)
	}
	return n
}

// checkShardMeta validates the shard extension fields against their wire
// widths and internal consistency. Used symmetrically by the encoder (so no
// frame is emitted that a receiver would reject) and the decoder.
func checkShardMeta(index, count, offset, vecLen int) error {
	if count < 1 || count > MaxShardCount {
		return fmt.Errorf("transport: shard count %d outside [1, %d]", count, MaxShardCount)
	}
	if index < 0 || index >= count {
		return fmt.Errorf("transport: shard index %d outside [0, %d)", index, count)
	}
	if offset < 0 || offset > MaxVecLen-vecLen {
		return fmt.Errorf("transport: shard [%d, %d) exceeds the %d-coordinate limit",
			offset, offset+vecLen, MaxVecLen)
	}
	return nil
}

// AppendMessage appends m's wire frame to buf and returns the extended
// slice (append semantics: the result may alias buf's array or a grown
// one). Messages with Shard.Count > 0 are framed as chunk frames; messages
// with Comp.Scheme != 0 as compressed frames (Vec must be empty — the
// payload is Comp.Data and the vec-len field carries Comp.Dim). It errors
// on messages that violate the frame limits rather than emit a frame no
// receiver would accept.
func AppendMessage(buf []byte, m *Message) ([]byte, error) {
	if len(m.From) > MaxFromLen {
		return buf, fmt.Errorf("transport: sender ID %d bytes exceeds limit %d", len(m.From), MaxFromLen)
	}
	if m.Kind&kindFlagMask != 0 {
		// Bits 6–7 of the kind byte discriminate the frame type on the wire;
		// a kind carrying either would make the frame ambiguous.
		return buf, fmt.Errorf("transport: kind %d collides with the frame flag bits", m.Kind)
	}
	vecLen := len(m.Vec)
	if m.IsCompressed() {
		if vecLen != 0 {
			return buf, fmt.Errorf("transport: compressed message also carries %d raw coordinates", vecLen)
		}
		if err := checkCompMeta(m.Comp.Scheme, m.Comp.Dim, len(m.Comp.Data)); err != nil {
			return buf, err
		}
		vecLen = m.Comp.Dim
	}
	if vecLen > MaxVecLen {
		return buf, fmt.Errorf("transport: payload %d coordinates exceeds limit %d", vecLen, MaxVecLen)
	}
	var hdr [FrameHeaderSize + ShardHeaderSize + CompHeaderSize]byte
	hdr[0] = byte(m.Kind)
	binary.LittleEndian.PutUint64(hdr[1:], uint64(int64(m.Step)))
	binary.LittleEndian.PutUint16(hdr[9:], uint16(len(m.From)))
	binary.LittleEndian.PutUint32(hdr[11:], uint32(vecLen))
	hdrLen := FrameHeaderSize
	if m.IsShard() {
		if err := checkShardMeta(m.Shard.Index, m.Shard.Count, m.Shard.Offset, vecLen); err != nil {
			return buf, err
		}
		hdr[0] |= chunkFlag
		binary.LittleEndian.PutUint16(hdr[15:], uint16(m.Shard.Index))
		binary.LittleEndian.PutUint16(hdr[17:], uint16(m.Shard.Count))
		binary.LittleEndian.PutUint32(hdr[19:], uint32(m.Shard.Offset))
		hdrLen += ShardHeaderSize
	}
	if m.IsCompressed() {
		hdr[0] |= compFlag
		hdr[hdrLen] = m.Comp.Scheme
		binary.LittleEndian.PutUint32(hdr[hdrLen+1:], uint32(len(m.Comp.Data)))
		hdrLen += CompHeaderSize
	}
	buf = append(buf, hdr[:hdrLen]...)
	buf = append(buf, m.From...)
	if m.IsCompressed() {
		return append(buf, m.Comp.Data...), nil
	}
	// Reserve the payload region, then fill it with direct little-endian
	// stores — the loop compiles to one 8-byte move per coordinate, which
	// is what makes the encoder memory-bound rather than reflection-bound
	// like gob. When the buffer already has capacity (the steady state of a
	// reused connection buffer), reslice instead of append-extending: the
	// extension would be memclr-zeroed only to be overwritten below, a
	// wasted full pass over a 14 MB paper-scale payload.
	off := len(buf)
	if need := off + 8*len(m.Vec); need <= cap(buf) {
		buf = buf[:need]
	} else {
		buf = append(buf, make([]byte, 8*len(m.Vec))...)
	}
	out := buf[off:]
	for i, v := range m.Vec {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return buf, nil
}

// frameExtent validates a header and returns the step, sender and payload
// lengths. Every field is checked on its wire-width value BEFORE the int
// conversion: on a 32-bit platform, int(uint32 ≥ 2³¹) would go negative
// and sail under a signed comparison (a slice-bounds panic downstream),
// and a 64-bit step would silently truncate — aliasing a Byzantine step
// 2³²+k onto the Collector's step k and breaking the codec's re-encode
// bijectivity.
func frameExtent(hdr []byte) (step, fromLen, vecLen int, err error) {
	rawStep := int64(binary.LittleEndian.Uint64(hdr[1:]))
	rawFrom := binary.LittleEndian.Uint16(hdr[9:])
	rawVec := binary.LittleEndian.Uint32(hdr[11:])
	if int64(int(rawStep)) != rawStep {
		return 0, 0, 0, fmt.Errorf("transport: frame step %d overflows this platform's int", rawStep)
	}
	if rawFrom > MaxFromLen {
		return 0, 0, 0, fmt.Errorf("transport: frame declares %d-byte sender ID (limit %d)", rawFrom, MaxFromLen)
	}
	if rawVec > MaxVecLen {
		return 0, 0, 0, fmt.Errorf("transport: frame declares %d coordinates (limit %d)", rawVec, MaxVecLen)
	}
	return int(rawStep), int(rawFrom), int(rawVec), nil
}

// decodeInto fills m from a validated header and its body (sender ID
// followed by payload), reusing m's storage per the ownership contract.
func decodeInto(m *Message, kind Kind, step int, body []byte, fromLen, vecLen int) {
	m.Kind = kind
	m.Step = step
	if from := body[:fromLen]; string(from) != m.From {
		m.From = string(from)
	}
	if cap(m.Vec) >= vecLen {
		m.Vec = m.Vec[:vecLen]
	} else {
		m.Vec = make([]float64, vecLen)
	}
	payload := body[fromLen:]
	for i := range m.Vec {
		m.Vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
}

// shardExtent parses and validates the 8-byte shard extension of a chunk
// frame against the payload length the fixed header declared.
func shardExtent(ext []byte, vecLen int) (ShardMeta, error) {
	s := ShardMeta{
		Index:  int(binary.LittleEndian.Uint16(ext[0:])),
		Count:  int(binary.LittleEndian.Uint16(ext[2:])),
		Offset: int(binary.LittleEndian.Uint32(ext[4:])),
	}
	if err := checkShardMeta(s.Index, s.Count, s.Offset, vecLen); err != nil {
		return ShardMeta{}, err
	}
	return s, nil
}

// checkCompMeta validates the compression extension fields, symmetrically on
// both sides like checkShardMeta. The scheme byte is NOT checked against the
// schemes this build knows: an unknown scheme is a well-formed frame whose
// payload the codec transports opaquely — dropping it is the receiving
// node's negotiation decision, not a codec error. The enc-len bound is the
// anti-amplification line: no compressed frame may declare a payload larger
// than the raw encoding of its range (plus fixed slack for scheme headers),
// so a header cannot make a receiver stage more than the plain frame of the
// same dimension would.
func checkCompMeta(scheme uint8, dim, encLen int) error {
	if scheme == 0 {
		return fmt.Errorf("transport: compressed frame declares scheme 0")
	}
	if dim < 1 || dim > MaxVecLen {
		return fmt.Errorf("transport: compressed frame declares %d coordinates (want [1, %d])", dim, MaxVecLen)
	}
	if encLen > 8*dim+MaxCompSlack {
		return fmt.Errorf("transport: compressed payload %d bytes exceeds the %d-coordinate bound %d",
			encLen, dim, 8*dim+MaxCompSlack)
	}
	return nil
}

// DecodeMessage parses one frame from the front of data into m and returns
// the number of bytes consumed. data is never retained. Errors: ErrShortFrame
// when data ends before the declared extent, a limit error when the header
// declares an oversized frame.
func DecodeMessage(data []byte, m *Message) (int, error) {
	if len(data) < FrameHeaderSize {
		return 0, ErrShortFrame
	}
	step, fromLen, vecLen, err := frameExtent(data[:FrameHeaderSize])
	if err != nil {
		return 0, err
	}
	hdrLen := FrameHeaderSize
	var shard ShardMeta
	if data[0]&chunkFlag != 0 {
		if len(data) < FrameHeaderSize+ShardHeaderSize {
			return 0, ErrShortFrame
		}
		if shard, err = shardExtent(data[FrameHeaderSize:], vecLen); err != nil {
			return 0, err
		}
		hdrLen += ShardHeaderSize
	}
	if data[0]&compFlag != 0 {
		if len(data) < hdrLen+CompHeaderSize {
			return 0, ErrShortFrame
		}
		ext := data[hdrLen : hdrLen+CompHeaderSize]
		scheme := ext[0]
		rawEnc := binary.LittleEndian.Uint32(ext[1:])
		encLen := int(rawEnc)
		if err := checkCompMeta(scheme, vecLen, encLen); err != nil {
			return 0, err
		}
		hdrLen += CompHeaderSize
		total := hdrLen + fromLen + encLen
		if len(data) < total {
			return 0, ErrShortFrame
		}
		body := data[hdrLen:total]
		m.Kind = Kind(data[0] &^ byte(kindFlagMask))
		m.Step = step
		if from := body[:fromLen]; string(from) != m.From {
			m.From = string(from)
		}
		m.Vec = m.Vec[:0]
		m.Comp = CompMeta{
			Scheme: scheme,
			Dim:    vecLen,
			Data:   append(m.Comp.Data[:0], body[fromLen:]...),
		}
		m.Shard = shard
		return total, nil
	}
	total := hdrLen + fromLen + 8*vecLen
	if len(data) < total {
		return 0, ErrShortFrame
	}
	decodeInto(m, Kind(data[0]&^chunkFlag), step, data[hdrLen:total], fromLen, vecLen)
	m.Shard = shard
	m.Comp = CompMeta{}
	return total, nil
}

// readChunkBytes bounds the staging buffer ReadMessage stages body bytes
// through. preallocCoords is the largest declared payload that gets an
// exact-size allocation (16 MiB — the paper's 1,756,426-coordinate model
// fits with room to spare, so honest traffic never pays regrowth copies);
// larger declarations grow geometrically instead. Either way nothing is
// allocated until the FIRST body chunk has actually been read, so a
// receiver's memory tracks what a peer SENDS, not what its 15-byte header
// CLAIMS: a header alone pins one staging chunk, and pinning the 16 MiB
// prealloc costs the attacker a real chunk of traffic (~16× amplification
// at worst, per connection — versus the unbounded claim-only reservation
// this replaces).
const (
	readChunkBytes = 1 << 20
	preallocCoords = 1 << 21
)

// ReadMessage reads one frame from r into m, staging body bytes through
// *scratch (pass the same pointer across calls; it never grows beyond
// readChunkBytes, and steady-state reads allocate only the payload vector
// the receiver keeps). Truncated streams return io.ErrUnexpectedEOF; a
// clean close before the first header byte returns io.EOF.
func ReadMessage(r io.Reader, scratch *[]byte, m *Message) error {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	step, fromLen, vecLen, err := frameExtent(hdr[:])
	if err != nil {
		return err
	}
	var shard ShardMeta
	if hdr[0]&chunkFlag != 0 {
		var ext [ShardHeaderSize]byte
		if err := readFull(r, ext[:]); err != nil {
			return err
		}
		if shard, err = shardExtent(ext[:], vecLen); err != nil {
			return err
		}
	}
	var scheme uint8
	encLen := 0
	if hdr[0]&compFlag != 0 {
		var ext [CompHeaderSize]byte
		if err := readFull(r, ext[:]); err != nil {
			return err
		}
		scheme = ext[0]
		encLen = int(binary.LittleEndian.Uint32(ext[1:]))
		if err := checkCompMeta(scheme, vecLen, encLen); err != nil {
			return err
		}
	}
	payloadBytes := 8 * vecLen
	if scheme != 0 {
		payloadBytes = encLen
	}
	chunk := fromLen + payloadBytes
	if chunk > readChunkBytes {
		chunk = readChunkBytes
	}
	if cap(*scratch) < chunk {
		*scratch = make([]byte, chunk)
	}
	buf := (*scratch)[:cap(*scratch)]

	if err := readFull(r, buf[:fromLen]); err != nil {
		return err
	}
	if from := buf[:fromLen]; string(from) != m.From {
		m.From = string(from)
	}
	m.Kind = Kind(hdr[0] &^ byte(kindFlagMask))
	m.Step = step
	m.Shard = shard

	if scheme != 0 {
		// Compressed payloads stage through the same bounded-chunk loop as
		// raw ones: the receiver commits memory only as encoded bytes land,
		// exact-size for payloads an honest scheme would emit at protocol
		// dimensions, geometric growth tracking received bytes beyond that.
		data := m.Comp.Data[:0]
		if cap(data) < encLen {
			data = nil
		}
		for filled := 0; filled < encLen; {
			n := encLen - filled
			if n > len(buf) {
				n = len(buf)
			}
			if err := readFull(r, buf[:n]); err != nil {
				return err
			}
			if data == nil && encLen <= 8*preallocCoords {
				data = make([]byte, 0, encLen)
			}
			if cap(data) < filled+n {
				c := 2 * (filled + n)
				if c > encLen {
					c = encLen
				}
				grown := make([]byte, filled, c)
				copy(grown, data)
				data = grown
			}
			data = append(data[:filled], buf[:n]...)
			filled += n
		}
		m.Vec = m.Vec[:0]
		m.Comp = CompMeta{Scheme: scheme, Dim: vecLen, Data: data}
		return nil
	}
	m.Comp = CompMeta{}

	// Payload memory is committed only after body bytes actually land:
	// reuse the caller's capacity if it suffices (ownership contract),
	// otherwise allocate nothing until the first chunk has been read —
	// exact-size for honest protocol dimensions (≤ preallocCoords, no
	// regrowth), geometric growth tracking received bytes beyond that.
	vec := m.Vec[:0]
	if cap(vec) < vecLen {
		vec = nil
	}
	for filled := 0; filled < vecLen; {
		n := vecLen - filled
		if lim := len(buf) / 8; n > lim {
			n = lim
		}
		if err := readFull(r, buf[:8*n]); err != nil {
			return err
		}
		if vec == nil && vecLen <= preallocCoords {
			vec = make([]float64, 0, vecLen)
		}
		if cap(vec) < filled+n {
			c := 2 * (filled + n)
			if c > vecLen {
				c = vecLen
			}
			grown := make([]float64, filled, c)
			copy(grown, vec)
			vec = grown
		}
		vec = vec[:filled+n]
		for i := 0; i < n; i++ {
			vec[filled+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		filled += n
	}
	m.Vec = vec[:vecLen]
	return nil
}

// readFull is io.ReadFull with mid-frame EOF normalised to
// io.ErrUnexpectedEOF (the header already committed the stream to a body).
func readFull(r io.Reader, buf []byte) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// The hello frame opens every TCP connection and binds it to one sender
// identity: magic, protocol version, then the dialer's node ID. The
// receiving node pins every subsequent frame's From field to this identity
// and drops mismatches, so a Byzantine peer cannot forge other senders and
// defeat the Collector's per-sender deduplication (the f-bound safety
// argument counts distinct NODES, not distinct From strings). The binding
// is connection-scoped, not cryptographic: a peer may still claim any free
// identity at dial time, but it gets exactly one per connection.
//
// Three magics coexist. "GYW1" is the legacy hello (magic, ID length, ID)
// and still what a non-compressing dialer emits, byte-for-byte — so a node
// configured with `none` compression is wire-identical to a pre-compression
// build. "GYW2" appends one capability byte after the ID: a bitmask of the
// compress.Scheme bits the dialer may use on THIS connection (bit 1<<s for
// scheme s; bit 0 unused — plain frames need no capability). Compression is
// negotiated, not assumed: a receiver drops compressed frames whose scheme
// was not announced in the hello, so a legacy peer and a compressing peer
// interoperate (the legacy side simply never sees a compressed frame it
// accepted no capability for — they count as DroppedUnnegotiated).
//
// "GYW3" extends v2 with a roster announcement, carried on the same hello
// channel that authenticates the sender (WIRE.md §10): after the
// capability byte come an intent byte (member/join/leave/replace), an
// 8-byte effective step, and a length-prefixed replaced-ID (nonempty
// exactly for replace). The intent rides the hello because admission IS an
// identity decision: the same handshake that binds the connection to a
// sender identity now also states what that identity wants to be in the
// roster, and a node with an admission check rejects the whole connection
// — not just frames — when the answer is no (counted DroppedUnadmitted).
// A v1/v2 hello parses as intent member with effective step 0, so legacy
// dialers remain standing members and interoperate unchanged.
const (
	helloMagic   = "GYW1"
	helloMagicV2 = "GYW2"
	helloMagicV3 = "GYW3"
)

// RosterIntent is the membership action a hello v3 announces.
type RosterIntent uint8

// Roster intents, in wire order.
const (
	// IntentMember is a standing member of the current roster (what v1/v2
	// hellos implicitly announce).
	IntentMember RosterIntent = iota
	// IntentJoin requests admission to the roster at the effective step.
	IntentJoin
	// IntentLeave announces departure from the roster at the effective step.
	IntentLeave
	// IntentReplace requests to take over the replaced ID's roster slot at
	// the effective step.
	IntentReplace

	intentMax = IntentReplace
)

// String implements fmt.Stringer.
func (i RosterIntent) String() string {
	switch i {
	case IntentMember:
		return "member"
	case IntentJoin:
		return "join"
	case IntentLeave:
		return "leave"
	case IntentReplace:
		return "replace"
	default:
		return fmt.Sprintf("intent(%d)", uint8(i))
	}
}

// Hello is the parsed contents of one hello handshake: the authenticated
// peer identity, its compression capability mask, and its roster
// announcement (zero values for v1/v2 hellos).
type Hello struct {
	// ID is the identity every subsequent frame on the connection is
	// pinned to.
	ID string
	// Caps is the compression capability bitmask (0 = plain frames only).
	Caps uint8
	// Intent is the announced roster action (IntentMember for v1/v2).
	Intent RosterIntent
	// EffectiveStep is the step boundary at which the intent takes effect.
	EffectiveStep int
	// Replaces names the roster slot being taken over (IntentReplace only).
	Replaces string
}

// Validate checks the roster fields' internal consistency, symmetrically
// on the append and read sides.
func (h Hello) Validate() error {
	if h.ID == "" || len(h.ID) > MaxFromLen {
		return fmt.Errorf("transport: hello ID must be 1..%d bytes, got %d", MaxFromLen, len(h.ID))
	}
	if h.Intent > intentMax {
		return fmt.Errorf("transport: unknown roster intent %d", uint8(h.Intent))
	}
	if h.EffectiveStep < 0 {
		return fmt.Errorf("transport: negative roster effective step %d", h.EffectiveStep)
	}
	if (h.Intent == IntentReplace) != (h.Replaces != "") {
		return fmt.Errorf("transport: intent %s with replaced ID %q", h.Intent, h.Replaces)
	}
	if len(h.Replaces) > MaxFromLen {
		return fmt.Errorf("transport: replaced ID %d bytes exceeds limit %d", len(h.Replaces), MaxFromLen)
	}
	return nil
}

// rosterAnnouncing reports whether h needs the v3 frame: any roster field
// away from its zero value.
func (h Hello) rosterAnnouncing() bool {
	return h.Intent != IntentMember || h.EffectiveStep != 0 || h.Replaces != ""
}

// AppendHello appends the hello frame for the given node ID and capability
// mask (0 = plain frames only). Exported alongside AppendMessage so
// adversarial harnesses outside this package can speak the raw wire
// protocol — e.g. hello as one identity and then send frames forging
// another, which TCPNode must drop and count.
func AppendHello(buf []byte, id string, caps uint8) ([]byte, error) {
	return AppendHelloRoster(buf, Hello{ID: id, Caps: caps})
}

// AppendHelloRoster appends the hello frame for h, choosing the smallest
// magic that carries everything h announces: v1 for a plain member with no
// capabilities, v2 when only a capability mask is set, v3 whenever any
// roster field is non-zero. The downgrade keeps non-churning deployments
// wire-identical to pre-roster builds.
func AppendHelloRoster(buf []byte, h Hello) ([]byte, error) {
	if err := h.Validate(); err != nil {
		return buf, err
	}
	magic := helloMagic
	switch {
	case h.rosterAnnouncing():
		magic = helloMagicV3
	case h.Caps != 0:
		magic = helloMagicV2
	}
	buf = append(buf, magic...)
	buf = append(buf, byte(len(h.ID)))
	buf = append(buf, h.ID...)
	if magic == helloMagic {
		return buf, nil
	}
	buf = append(buf, h.Caps)
	if magic == helloMagicV2 {
		return buf, nil
	}
	buf = append(buf, byte(h.Intent))
	var step [8]byte
	binary.LittleEndian.PutUint64(step[:], uint64(int64(h.EffectiveStep)))
	buf = append(buf, step[:]...)
	buf = append(buf, byte(len(h.Replaces)))
	buf = append(buf, h.Replaces...)
	return buf, nil
}

// appendHello appends the hello frame for the given node ID and capability
// mask. caps == 0 emits the legacy v1 hello.
func appendHello(buf []byte, id string, caps uint8) ([]byte, error) {
	return AppendHelloRoster(buf, Hello{ID: id, Caps: caps})
}

// readHello consumes a hello frame and returns the parsed handshake. v1
// and v2 hellos yield zero roster fields (a standing member), so the
// admission layer treats legacy dialers uniformly.
func readHello(r io.Reader) (Hello, error) {
	var h Hello
	var fixed [len(helloMagic) + 1]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return h, fmt.Errorf("transport: read hello: %w", err)
	}
	magic := string(fixed[:len(helloMagic)])
	if magic != helloMagic && magic != helloMagicV2 && magic != helloMagicV3 {
		return h, fmt.Errorf("transport: bad hello magic %q", fixed[:len(helloMagic)])
	}
	n := int(fixed[len(helloMagic)])
	if n == 0 {
		return h, fmt.Errorf("transport: hello declares empty peer ID")
	}
	id := make([]byte, n)
	if _, err := io.ReadFull(r, id); err != nil {
		return h, fmt.Errorf("transport: read hello ID: %w", err)
	}
	h.ID = string(id)
	if magic == helloMagic {
		return h, nil
	}
	var c [1]byte
	if _, err := io.ReadFull(r, c[:]); err != nil {
		return h, fmt.Errorf("transport: read hello capabilities: %w", err)
	}
	h.Caps = c[0]
	if magic == helloMagicV2 {
		return h, nil
	}
	// v3 roster extension: intent, effective step, replaced ID. The
	// replaced-ID length is bounded by its one-byte wire field, so the
	// largest allocation a hello can force is 2·MaxFromLen bytes.
	var ext [1 + 8 + 1]byte
	if _, err := io.ReadFull(r, ext[:]); err != nil {
		return h, fmt.Errorf("transport: read hello roster extension: %w", err)
	}
	h.Intent = RosterIntent(ext[0])
	rawStep := int64(binary.LittleEndian.Uint64(ext[1:9]))
	if int64(int(rawStep)) != rawStep {
		return h, fmt.Errorf("transport: hello effective step %d overflows this platform's int", rawStep)
	}
	h.EffectiveStep = int(rawStep)
	if rn := int(ext[9]); rn > 0 {
		rid := make([]byte, rn)
		if _, err := io.ReadFull(r, rid); err != nil {
			return h, fmt.Errorf("transport: read hello replaced ID: %w", err)
		}
		h.Replaces = string(rid)
	}
	if err := h.Validate(); err != nil {
		return h, err
	}
	return h, nil
}
