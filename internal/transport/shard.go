package transport

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Chunked vector streaming. A whole-vector message buffers O(d) coordinates
// per sender at the receiver before any aggregation can begin; at the
// paper's 1,756,426-coordinate dimension that is ~14 MB per sender per
// step, and the receive→aggregate pipeline is fully serialised. Sharding
// splits every outbound vector into fixed coordinate ranges (chunk frames,
// see codec.go), and the ShardCollector below aggregates each shard the
// moment its quorum fills — collector memory drops from O(n·d) to
// O(q·shard) and the aggregation arithmetic overlaps the network receive.
// (Whether the aggregation side matches that bound depends on the rule:
// coordinate-wise streamers release each shard after folding it,
// Multi-Krum's retains its q inputs until selection — see gar's
// StreamingRule docs.)
//
// Shard boundaries are derived from (dimension, shard size) alone — never
// negotiated — so every honest node computes the same ShardLayout and a
// receiver can check any frame's claimed extent against its own deployment
// dimension. The layout is what makes sharded aggregation bit-identical to
// the whole-vector path: which coordinates form shard s is a pure function
// of (d, size), independent of arrival order and parallelism.

// ShardLayout is the size-derived partition of a d-coordinate vector into
// fixed shards: shard s covers [s·Size, min((s+1)·Size, Dim)). The zero
// value is invalid; build layouts with NewShardLayout.
type ShardLayout struct {
	// Dim is the vector dimension d.
	Dim int
	// Size is the shard width in coordinates; the last shard may be
	// shorter when Size does not divide Dim.
	Size int
}

// NewShardLayout builds the layout for a d-coordinate vector and the given
// shard size. size ≤ 0 or ≥ dim yields the degenerate single-shard layout
// (whole-vector framing).
func NewShardLayout(dim, size int) ShardLayout {
	if size <= 0 || size >= dim {
		size = dim
	}
	return ShardLayout{Dim: dim, Size: size}
}

// Count returns the number of shards, ⌈Dim/Size⌉.
func (l ShardLayout) Count() int {
	if l.Size <= 0 {
		return 0
	}
	return (l.Dim + l.Size - 1) / l.Size
}

// Bounds returns shard s's coordinate range [lo, hi).
func (l ShardLayout) Bounds(s int) (lo, hi int) {
	lo = s * l.Size
	hi = lo + l.Size
	if hi > l.Dim {
		hi = l.Dim
	}
	return lo, hi
}

// CheckMeta reports whether a chunk frame's shard tag and payload length
// agree with this layout — the receiver-side defence that keeps a
// Byzantine sender from claiming arbitrary coordinate ranges.
func (l ShardLayout) CheckMeta(s ShardMeta, payloadLen int) bool {
	if s.Count != l.Count() || s.Index < 0 || s.Index >= s.Count {
		return false
	}
	lo, hi := l.Bounds(s.Index)
	return s.Offset == lo && payloadLen == hi-lo
}

// SplitMessage splits a whole-vector message into its chunk-frame messages
// under the given shard size. Shard payloads are subslices of m.Vec — no
// copies; every Endpoint snapshots at its Send boundary (TCP by
// serialising, the in-process network by cloning), so aliasing the
// caller's vector is safe exactly as it is for whole messages. A layout
// with one shard returns the message unchanged (whole-vector framing).
func SplitMessage(m Message, size int) []Message {
	l := NewShardLayout(len(m.Vec), size)
	n := l.Count()
	if n <= 1 {
		return []Message{m}
	}
	out := make([]Message, n)
	for s := 0; s < n; s++ {
		lo, hi := l.Bounds(s)
		out[s] = Message{
			From: m.From, Kind: m.Kind, Step: m.Step,
			Vec:   m.Vec[lo:hi],
			Shard: ShardMeta{Index: s, Count: n, Offset: lo},
		}
	}
	return out
}

// SendSharded sends m to the named node as a stream of chunk frames of the
// given shard size (whole, when size covers the vector). Splitting happens
// above the Endpoint, so a fault-injecting wrapper sees — and may drop,
// duplicate, reorder or delay — each shard frame independently. Send
// errors are returned for the first failing shard; like whole-vector
// sends, Byzantine-tolerant callers treat them as best-effort losses.
func SendSharded(ep Endpoint, to string, m Message, size int) error {
	for _, sm := range SplitMessage(m, size) {
		if err := ep.Send(to, sm); err != nil {
			return err
		}
	}
	return nil
}

// ShardFold consumes one completed shard quorum: the ordered payloads (and
// their senders) for coordinate range [lo, hi) of the logical vector.
// Payload slices are handed off — the collector never touches them again,
// so a fold may retain them (the streaming Multi-Krum path does).
type ShardFold func(lo, hi int, senders []string, inputs []tensor.Vector) error

// ShardCollector is the incremental-quorum counterpart of Collector: for a
// given (kind, step) it tracks arrival order per (step, shard) and hands
// each shard to the aggregation fold as soon as that shard's first-q
// sender set is complete — at most one entry per sender per shard, in true
// arrival order, exactly the Collector discipline applied per coordinate
// range. Whole-vector messages interoperate: one delivers every shard of
// its sender at once, so a deployment may mix sharded and whole-vector
// senders (and the single-shard layout degenerates to Collector
// behaviour).
//
// Two membership modes, selected per collection:
//
//   - per-shard (pinned=false): every shard's quorum is its own first q
//     arrivals. Legal for coordinate-wise rules (median, trimmed mean),
//     whose resilience argument holds per coordinate for any q-set with at
//     most f Byzantine members.
//   - pinned (pinned=true): the first shard to fill pins an ordered sender
//     set; every other shard waits for exactly those senders and folds
//     them in pinned order. Required by rules that correlate coordinates
//     across shards (Multi-Krum's pairwise distances need the same input
//     set in the same order everywhere). Liveness caveat: once pinned, the
//     round needs every pinned member's every shard to arrive within the
//     round — the paper's reliable-asynchronous link assumption. A frame
//     that is silently lost, or deferred past the round (the fault
//     injector's reorder holds a frame until its sender's NEXT send to
//     that destination, which in a bulk-synchronous protocol is next
//     step), stalls a pinned round: the whole-vector quorum margin
//     absorbs such a gap by substituting senders, which a pinned shard
//     set by definition cannot. Per-shard mode keeps the margin (a lost
//     shard frame costs its sender that one shard's slot); deployments on
//     lossy links should stream only coordinate-wise rules, or keep
//     whole-vector framing for the pinned phase.
//
// Buffered payload bytes are tracked (PeakBytes) so the memory experiment
// can compare this path against the whole-vector Collector.
type ShardCollector struct {
	ep Endpoint

	// Layout is the size-derived shard partition every frame is checked
	// against; frames disagreeing with it are dropped as malformed.
	Layout ShardLayout

	// Validator, when non-nil, vets every inbound message's payload before
	// it can count toward any shard quorum (finiteness, sender identity).
	// Dimension and shard-extent checks are the collector's own job — the
	// validator sees both whole vectors and single shards.
	Validator func(Message) bool

	// Horizon bounds future-step buffering exactly as on Collector
	// (0 means DefaultHorizon).
	Horizon int

	// Membership, when non-nil, scopes quorums to a roster per epoch,
	// exactly as on Collector: a frame counts toward a shard quorum (and
	// can enter a pinned membership) only if Membership(step, from) holds
	// for the step the frame claims.
	Membership func(step int, from string) bool

	// Metrics, when non-nil, receives a live atomic mirror of every
	// counter increment, exactly as on Collector.
	Metrics *metrics.NodeMetrics

	buf              map[collectorKey]*shardStepBuf
	droppedFuture    int
	droppedMalformed int
	droppedRoster    int
	stored           int
	curBytes         int
	peakBytes        int
}

// shardStepBuf holds one (kind, step)'s per-shard quorum candidates.
type shardStepBuf struct {
	slots  []shardSlot
	pinned []string // pinned membership, nil until decided
	folded int      // slots handed to the fold so far
}

// shardSlot is one shard's arrival-ordered candidate set.
type shardSlot struct {
	msgs   []Message
	seen   map[string]struct{}
	folded bool
}

// NewShardCollector wraps an endpoint with the given shard layout.
func NewShardCollector(ep Endpoint, layout ShardLayout) *ShardCollector {
	return &ShardCollector{ep: ep, Layout: layout, buf: make(map[collectorKey]*shardStepBuf)}
}

func (c *ShardCollector) horizon() int {
	if c.Horizon > 0 {
		return c.Horizon
	}
	return DefaultHorizon
}

// DroppedFuture returns how many messages were discarded for claiming a
// step beyond the buffering horizon.
func (c *ShardCollector) DroppedFuture() int { return c.droppedFuture }

// DroppedMalformed returns how many frames were discarded for disagreeing
// with the shard layout.
func (c *ShardCollector) DroppedMalformed() int { return c.droppedMalformed }

// DroppedRoster returns how many frames were discarded because their
// sender was not a member of the roster in force at the frame's step.
func (c *ShardCollector) DroppedRoster() int { return c.droppedRoster }

// dropMalformed counts one layout-disagreement drop, mirroring it into
// the live sink when one is attached.
func (c *ShardCollector) dropMalformed() {
	c.droppedMalformed++
	if c.Metrics != nil {
		c.Metrics.DroppedMalformed.Add(1)
	}
}

// StoredFrames returns how many frames have been buffered so far — the
// receive-progress counter the memory experiment reads from its fold
// callback to decide whether an aggregation overlapped the receive stream.
func (c *ShardCollector) StoredFrames() int { return c.stored }

// PeakBytes returns the largest number of payload bytes the collector has
// held at once. Shard buffers are released the moment their quorum is
// folded, which is what keeps this O(q·shard) instead of O(n·d). The
// counter covers the collector's own buffers only: payloads handed to a
// fold are the fold's memory from then on (coordinate-wise streamers drop
// them immediately; Multi-Krum's retains its q inputs until selection).
func (c *ShardCollector) PeakBytes() int { return c.peakBytes }

func (c *ShardCollector) account(delta int) {
	c.curBytes += delta
	if c.curBytes > c.peakBytes {
		c.peakBytes = c.curBytes
		if c.Metrics != nil {
			c.Metrics.ObservePeak(c.peakBytes)
		}
	}
}

// ResetRound discards all buffered state for one (kind, step) round —
// including a decided pinned membership. This is the failover primitive
// behind the pinned-mode liveness caveat: when a pinned member goes
// silent mid-round, the round as pinned can never complete, so the
// caller abandons it, resets, and re-collects with a fresh pin drawn
// from the senders still alive (after a roster change, the epoch's next
// roster). Frames already folded into the caller's streamer are gone
// with the streamer; the retry starts from zero arrivals.
func (c *ShardCollector) ResetRound(kind Kind, step int) {
	key := collectorKey{kind: kind, step: step}
	if b := c.buf[key]; b != nil {
		c.release(b)
		delete(c.buf, key)
	}
}

// Advance drops all buffered state for steps before the given step.
func (c *ShardCollector) Advance(step int) {
	for key, b := range c.buf {
		if key.step < step {
			c.release(b)
			delete(c.buf, key)
		}
	}
}

// release returns every buffered payload byte of b to the accounting.
func (c *ShardCollector) release(b *shardStepBuf) {
	for i := range b.slots {
		c.releaseSlot(&b.slots[i])
	}
}

func (c *ShardCollector) releaseSlot(s *shardSlot) {
	for _, m := range s.msgs {
		c.account(-8 * len(m.Vec))
	}
	s.msgs = nil
	s.seen = nil
}

// Collect blocks until every shard of the given (kind, step) has been
// folded, or the timeout elapses. q is the network quorum per shard; when
// self is non-nil it is this node's own vector, prepended (as sender
// selfID, position 0) to every shard's inputs — the contraction round's
// "own vector included" without a loopback message. pinned selects the
// membership mode (see the type comment). The returned slice is the pinned
// ordered membership (nil in per-shard mode); it excludes selfID.
//
// timeout < 0 blocks indefinitely, as on Collector.
func (c *ShardCollector) Collect(kind Kind, step, q int, self tensor.Vector, selfID string,
	pinned bool, fold ShardFold, timeout time.Duration) ([]string, error) {
	count := c.Layout.Count()
	if count <= 0 || c.Layout.Dim <= 0 {
		return nil, fmt.Errorf("transport: shard collect needs a valid layout, got %+v", c.Layout)
	}
	if self != nil && len(self) != c.Layout.Dim {
		return nil, fmt.Errorf("transport: self vector has dimension %d, layout %d", len(self), c.Layout.Dim)
	}
	if q <= 0 {
		// Satisfied by silence; with a self vector the aggregation still
		// runs over the local input alone.
		if self == nil {
			return nil, nil
		}
		for s := 0; s < count; s++ {
			lo, hi := c.Layout.Bounds(s)
			if err := fold(lo, hi, []string{selfID}, []tensor.Vector{self[lo:hi]}); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}

	key := collectorKey{kind: kind, step: step}
	b := c.buf[key]
	if b == nil {
		b = &shardStepBuf{slots: make([]shardSlot, count)}
		c.buf[key] = b
	}
	var deadline time.Time
	if timeout >= 0 {
		//lint:allow-clock Recv timeouts are wall-clock by contract; liveness never decides values
		deadline = time.Now().Add(timeout)
	}
	// One sweep up front consumes whatever previous collections buffered;
	// after that, slots are re-examined only when a frame for THIS
	// (kind, step) lands — frames buffered for other rounds cost no sweep.
	if err := c.progress(b, q, self, selfID, pinned, fold); err != nil {
		return nil, err
	}
	for b.folded < count {
		wait := time.Duration(-1)
		if timeout >= 0 {
			//lint:allow-clock deadline bookkeeping for the wall-clock timeout above
			wait = time.Until(deadline)
			if wait <= 0 {
				return nil, fmt.Errorf("%w: %d/%d %s shards folded for step %d",
					ErrQuorumTimeout, b.folded, count, kind, step)
			}
		}
		m, ok := c.ep.Recv(wait)
		if !ok {
			//lint:allow-clock discriminates timeout from closure on the wall-clock deadline
			if timeout >= 0 && time.Now().After(deadline) {
				return nil, fmt.Errorf("%w: %d/%d %s shards folded for step %d",
					ErrQuorumTimeout, b.folded, count, kind, step)
			}
			return nil, fmt.Errorf("transport: endpoint closed while collecting %s step %d (%d/%d shards)",
				kind, step, b.folded, count)
		}
		c.store(m, step)
		if m.Kind == kind && m.Step == step {
			if err := c.progress(b, q, self, selfID, pinned, fold); err != nil {
				return nil, err
			}
		}
	}
	pinnedOut := b.pinned
	delete(c.buf, key)
	return pinnedOut, nil
}

// progress folds every shard whose quorum is complete under the current
// membership mode.
func (c *ShardCollector) progress(b *shardStepBuf, q int, self tensor.Vector, selfID string,
	pinned bool, fold ShardFold) error {
	if pinned && b.pinned == nil {
		// Pin on the first shard (lowest index wins when several are
		// already complete) whose first q arrivals decide the membership
		// for the whole step — "aggregate the first q received", decided
		// once and applied to every coordinate range.
		for s := range b.slots {
			if len(b.slots[s].msgs) >= q {
				members := make([]string, q)
				for i, m := range b.slots[s].msgs[:q] {
					members[i] = m.From
				}
				b.pinned = members
				c.prune(b)
				break
			}
		}
		if b.pinned == nil {
			return nil
		}
	}
	for s := range b.slots {
		slot := &b.slots[s]
		if slot.folded {
			continue
		}
		var senders []string
		var inputs []tensor.Vector
		switch {
		case pinned:
			// Allocation-free completeness probe first: most sweeps find a
			// member still in flight, and should cost q map lookups, not a
			// slice build.
			ready := true
			for _, id := range b.pinned {
				if _, ok := slot.seen[id]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			ordered := slotByPinned(slot, b.pinned)
			senders = make([]string, 0, len(b.pinned)+1)
			inputs = make([]tensor.Vector, 0, len(b.pinned)+1)
			if self != nil {
				senders = append(senders, selfID)
			}
			senders = append(senders, b.pinned...)
			inputs = ordered
		case len(slot.msgs) >= q:
			senders = make([]string, 0, q+1)
			inputs = make([]tensor.Vector, 0, q+1)
			if self != nil {
				senders = append(senders, selfID)
			}
			for _, m := range slot.msgs[:q] {
				senders = append(senders, m.From)
				inputs = append(inputs, m.Vec)
			}
		default:
			continue
		}
		lo, hi := c.Layout.Bounds(s)
		if self != nil {
			inputs = append([]tensor.Vector{self[lo:hi]}, inputs...)
		}
		if err := fold(lo, hi, senders, inputs); err != nil {
			return err
		}
		slot.folded = true
		b.folded++
		c.releaseSlot(slot)
	}
	return nil
}

// slotByPinned returns the slot's payloads reordered to the pinned
// membership, or nil while any member is missing.
func slotByPinned(slot *shardSlot, pinned []string) []tensor.Vector {
	out := make([]tensor.Vector, len(pinned))
	for i, id := range pinned {
		found := false
		for _, m := range slot.msgs {
			if m.From == id {
				out[i] = m.Vec
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return out
}

// prune drops buffered shards from senders outside the pinned membership —
// their payloads can never enter this step's aggregation, so holding them
// would surrender the memory bound to late senders.
func (c *ShardCollector) prune(b *shardStepBuf) {
	member := make(map[string]struct{}, len(b.pinned))
	for _, id := range b.pinned {
		member[id] = struct{}{}
	}
	for i := range b.slots {
		slot := &b.slots[i]
		if slot.folded {
			continue
		}
		kept := slot.msgs[:0]
		for _, m := range slot.msgs {
			if _, ok := member[m.From]; ok {
				kept = append(kept, m)
			} else {
				c.account(-8 * len(m.Vec))
				delete(slot.seen, m.From)
			}
		}
		for j := len(kept); j < len(slot.msgs); j++ {
			slot.msgs[j] = Message{}
		}
		slot.msgs = kept
	}
}

// store buffers m's shard (or, for a whole-vector message, every shard)
// unless it is stale, beyond the horizon, malformed, or duplicated.
func (c *ShardCollector) store(m Message, currentStep int) {
	if !m.Kind.Valid() {
		return
	}
	if m.Step < currentStep {
		return
	}
	if m.Step > currentStep+c.horizon() {
		c.droppedFuture++
		if c.Metrics != nil {
			c.Metrics.DroppedFuture.Add(1)
		}
		return
	}
	if c.Membership != nil && !c.Membership(m.Step, m.From) {
		c.droppedRoster++
		if c.Metrics != nil {
			c.Metrics.DroppedRoster.Add(1)
		}
		return
	}
	if m.IsShard() {
		if !c.Layout.CheckMeta(m.Shard, len(m.Vec)) {
			c.dropMalformed()
			return
		}
	} else if len(m.Vec) != c.Layout.Dim {
		c.dropMalformed()
		return
	}
	if c.Validator != nil && !c.Validator(m) {
		return
	}
	key := collectorKey{kind: m.Kind, step: m.Step}
	b := c.buf[key]
	if b == nil {
		b = &shardStepBuf{slots: make([]shardSlot, c.Layout.Count())}
		c.buf[key] = b
	}
	c.stored++
	if m.IsShard() {
		c.storeSlot(b, m.Shard.Index, m)
		return
	}
	// A whole-vector message delivers every shard of its sender at once;
	// the slices share m.Vec's backing array, and the byte accounting
	// splits it across the slots so releases stay balanced.
	for s := range b.slots {
		lo, hi := c.Layout.Bounds(s)
		sm := m
		sm.Vec = m.Vec[lo:hi]
		sm.Shard = ShardMeta{Index: s, Count: len(b.slots), Offset: lo}
		c.storeSlot(b, s, sm)
	}
}

func (c *ShardCollector) storeSlot(b *shardStepBuf, s int, m Message) {
	slot := &b.slots[s]
	if slot.folded {
		return // quorum already decided for this shard; late arrivals are discarded
	}
	if b.pinned != nil {
		member := false
		for _, id := range b.pinned {
			if id == m.From {
				member = true
				break
			}
		}
		if !member {
			return // outside the pinned membership: can never be aggregated
		}
	}
	if slot.seen == nil {
		slot.seen = make(map[string]struct{})
	}
	if _, dup := slot.seen[m.From]; dup {
		return // only the first shard per sender counts toward its quorum
	}
	slot.seen[m.From] = struct{}{}
	slot.msgs = append(slot.msgs, m)
	c.account(8 * len(m.Vec))
}
