package transport

import (
	"fmt"
	"time"
)

// Collector implements the quorum-gathering discipline of the protocol
// (Figure 2 of the paper): for a given (kind, step), return the first q
// messages received — at most one per sender — discarding messages from
// past steps and buffering messages from future steps or other kinds.
//
// Deduplication per sender is a safety requirement, not an optimisation: a
// Byzantine node could otherwise fill an entire quorum with its own copies
// and fully control the aggregation input.
type Collector struct {
	ep  Endpoint
	buf map[collectorKey]map[string][]float64 // (kind, step) → sender → payload

	// Validator, when non-nil, vets every inbound message before it can
	// count toward any quorum. Messages failing validation are dropped —
	// this is where honest nodes discard malformed Byzantine payloads
	// (wrong dimension, NaN/Inf coordinates) so they behave like silence
	// rather than poisoning downstream arithmetic.
	Validator func(Message) bool
}

type collectorKey struct {
	kind Kind
	step int
}

// NewCollector wraps an endpoint.
func NewCollector(ep Endpoint) *Collector {
	return &Collector{ep: ep, buf: make(map[collectorKey]map[string][]float64)}
}

// Collect blocks until q distinct-sender messages of the given kind and step
// have been received (counting buffered ones), or the timeout elapses. It
// returns the payload of each contributing sender. Messages for other
// (kind, step) pairs observed while waiting are buffered if current-or-
// future, dropped if stale.
//
// timeout < 0 blocks indefinitely — the faithful asynchronous-model setting,
// where liveness comes from the quorum bound q ≤ n−f rather than from
// timing. Tests use finite timeouts to convert protocol bugs into failures
// rather than hangs.
func (c *Collector) Collect(kind Kind, step, q int, timeout time.Duration) ([]Message, error) {
	key := collectorKey{kind: kind, step: step}
	var deadline time.Time
	if timeout >= 0 {
		deadline = time.Now().Add(timeout)
	}
	for len(c.buf[key]) < q {
		wait := time.Duration(-1)
		if timeout >= 0 {
			wait = time.Until(deadline)
			if wait <= 0 {
				return nil, fmt.Errorf("transport: quorum timeout: have %d/%d %s messages for step %d",
					len(c.buf[key]), q, kind, step)
			}
		}
		m, ok := c.ep.Recv(wait)
		if !ok {
			if timeout >= 0 && time.Now().After(deadline) {
				return nil, fmt.Errorf("transport: quorum timeout: have %d/%d %s messages for step %d",
					len(c.buf[key]), q, kind, step)
			}
			return nil, fmt.Errorf("transport: endpoint closed while collecting %s step %d", kind, step)
		}
		c.store(m, step)
	}
	senders := c.buf[key]
	out := make([]Message, 0, q)
	for from, vec := range senders {
		out = append(out, Message{From: from, Kind: kind, Step: step, Vec: vec})
		if len(out) == q {
			break
		}
	}
	// The round is decided; drop the remainder for this key (late messages
	// for an already-completed quorum are discarded per the protocol).
	delete(c.buf, key)
	return out, nil
}

// Advance drops all buffered messages for steps before the given step, of
// any kind. Nodes call it when entering a new step so stale traffic cannot
// accumulate without bound.
func (c *Collector) Advance(step int) {
	for key := range c.buf {
		if key.step < step {
			delete(c.buf, key)
		}
	}
}

// store buffers m unless it is stale relative to the step being collected.
func (c *Collector) store(m Message, currentStep int) {
	if m.Step < currentStep {
		return // late message from a completed round: discard
	}
	if c.Validator != nil && !c.Validator(m) {
		return // malformed payload: treat the sender as silent this round
	}
	key := collectorKey{kind: m.Kind, step: m.Step}
	senders, ok := c.buf[key]
	if !ok {
		senders = make(map[string][]float64)
		c.buf[key] = senders
	}
	if _, dup := senders[m.From]; dup {
		return // only the first message per sender counts toward the quorum
	}
	senders[m.From] = m.Vec
}

// Buffered returns how many distinct senders are buffered for (kind, step).
// Exposed for tests and monitoring.
func (c *Collector) Buffered(kind Kind, step int) int {
	return len(c.buf[collectorKey{kind: kind, step: step}])
}
