package transport

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Collector implements the quorum-gathering discipline of the protocol
// (Figure 2 of the paper): for a given (kind, step), return the first q
// messages received — at most one per sender, in true arrival order —
// discarding messages from past steps and buffering messages from future
// steps (up to a bounded horizon) or other kinds.
//
// Deduplication per sender is a safety requirement, not an optimisation: a
// Byzantine node could otherwise fill an entire quorum with its own copies
// and fully control the aggregation input.
type Collector struct {
	ep  Endpoint
	buf map[collectorKey]*arrivalBuf // (kind, step) → messages in receipt order

	// Validator, when non-nil, vets every inbound message before it can
	// count toward any quorum. Messages failing validation are dropped —
	// this is where honest nodes discard malformed Byzantine payloads
	// (wrong dimension, NaN/Inf coordinates) so they behave like silence
	// rather than poisoning downstream arithmetic.
	Validator func(Message) bool

	// Horizon bounds how many steps ahead of the one being collected a
	// message may be and still get buffered (0 means DefaultHorizon).
	// Honest nodes run bulk-synchronously, so they are never more than a
	// step or two ahead; without the bound, a Byzantine sender spraying
	// steps t+1..t+10⁹ would grow the buffer without limit.
	Horizon int

	// Membership, when non-nil, scopes quorums to a roster per epoch:
	// a message counts toward a quorum only if Membership(step, from)
	// holds for the step the message claims. Frames from senders
	// outside the roster in force at that step are dropped and counted
	// — quorum math is always evaluated against the epoch's roster, so
	// a node that left (or has not yet joined) at step t can never fill
	// a slot in step t's aggregation, even if its frames are otherwise
	// well-formed and authenticated.
	Membership func(step int, from string) bool

	// Metrics, when non-nil, receives a live atomic mirror of every
	// counter increment, so an ops scraper reads current values mid-run
	// while the plain fields below stay single-goroutine.
	Metrics *metrics.NodeMetrics

	droppedFuture    int // messages discarded beyond the horizon
	droppedMalformed int // chunk frames discarded for inconsistent shard tags
	droppedRoster    int // messages discarded for being outside the epoch's roster
	curBytes         int // payload bytes currently buffered
	peakBytes        int // high-water mark of curBytes
}

// DefaultHorizon is the future-step buffering bound when Horizon is unset —
// orders of magnitude beyond the honest lead (≤ ~2 steps) and still a hard
// memory cap against step-spraying senders.
const DefaultHorizon = 64

// ErrQuorumTimeout wraps every quorum-wait expiry from Collect, CollectAny
// and ShardCollector.Collect, so callers can distinguish "the quorum did
// not fill in time" (retryable: a pinned round can fail over, a rejoiner
// can fall back to its checkpoint) from structural failures like a closed
// endpoint. Match with errors.Is.
var ErrQuorumTimeout = fmt.Errorf("transport: quorum timeout")

type collectorKey struct {
	kind Kind
	step int
}

// arrivalBuf holds one (kind, step)'s quorum candidates exactly as they
// arrived: msgs is receipt-ordered with at most one entry per sender, seen
// is the dedup set behind it, and asm holds per-sender partial chunk
// reassemblies (a sender streaming shards counts as "arrived" only when
// its last shard lands and the whole vector checks out).
type arrivalBuf struct {
	msgs []Message
	seen map[string]struct{}
	asm  map[string]*assembly
}

// assembly is one sender's in-flight chunked vector: parts by shard index,
// joined once all are present and their offsets tile a contiguous range.
type assembly struct {
	parts []Message
	got   int
	bytes int
}

// NewCollector wraps an endpoint.
func NewCollector(ep Endpoint) *Collector {
	return &Collector{ep: ep, buf: make(map[collectorKey]*arrivalBuf)}
}

func (c *Collector) horizon() int {
	if c.Horizon > 0 {
		return c.Horizon
	}
	return DefaultHorizon
}

// Collect blocks until q distinct-sender messages of the given kind and step
// have been received (counting buffered ones), or the timeout elapses. It
// returns the first q such messages in the order they arrived — "aggregate
// the first q received" from the paper, literally: which vectors enter the
// aggregation, and in what order, is decided by receipt time alone, never
// by map iteration or sender name. Messages for other (kind, step) pairs
// observed while waiting are buffered if current-or-near-future, dropped if
// stale or beyond the horizon.
//
// timeout < 0 blocks indefinitely — the faithful asynchronous-model setting,
// where liveness comes from the quorum bound q ≤ n−f rather than from
// timing. Tests use finite timeouts to convert protocol bugs into failures
// rather than hangs.
func (c *Collector) Collect(kind Kind, step, q int, timeout time.Duration) ([]Message, error) {
	if q <= 0 {
		return nil, nil // an empty quorum is satisfied by silence
	}
	key := collectorKey{kind: kind, step: step}
	var deadline time.Time
	if timeout >= 0 {
		//lint:allow-clock Recv timeouts are wall-clock by contract; liveness never decides values
		deadline = time.Now().Add(timeout)
	}
	for c.Buffered(kind, step) < q {
		wait := time.Duration(-1)
		if timeout >= 0 {
			//lint:allow-clock deadline bookkeeping for the wall-clock timeout above
			wait = time.Until(deadline)
			if wait <= 0 {
				return nil, fmt.Errorf("%w: have %d/%d %s messages for step %d",
					ErrQuorumTimeout, c.Buffered(kind, step), q, kind, step)
			}
		}
		m, ok := c.ep.Recv(wait)
		if !ok {
			//lint:allow-clock discriminates timeout from closure on the wall-clock deadline
			if timeout >= 0 && time.Now().After(deadline) {
				return nil, fmt.Errorf("%w: have %d/%d %s messages for step %d",
					ErrQuorumTimeout, c.Buffered(kind, step), q, kind, step)
			}
			return nil, fmt.Errorf("transport: endpoint closed while collecting %s step %d", kind, step)
		}
		c.store(m, step)
	}
	out := make([]Message, q)
	copy(out, c.buf[key].msgs[:q])
	// The round is decided; drop the remainder for this key (late messages
	// for an already-completed quorum are discarded per the protocol).
	c.releaseKey(c.buf[key])
	delete(c.buf, key)
	return out, nil
}

// CollectAny blocks until ANY single step ≥ minStep has q distinct-sender
// messages of the given kind, and returns those messages (in arrival
// order) together with the step they belong to. This is the rejoin
// discovery primitive: a server restarting from a checkpoint does not know
// how far the live cluster has advanced, so it listens to the traffic in
// flight and latches onto the first step a full quorum materialises for.
//
// Buffering stays bounded by the same horizon as Collect, but the floor
// is mobile: a message more than a horizon ahead of the current floor
// advances the floor (flushing everything that fell below it) instead of
// being dropped, so the rejoiner can catch up to a cluster arbitrarily
// far ahead of its checkpoint. A Byzantine step-sprayer can therefore
// delay a rejoin by yanking the floor upward — but never corrupt it,
// because completion still requires q distinct validated senders agreeing
// on one step; on timeout the caller falls back to resuming from the
// checkpoint alone. When several steps complete a quorum simultaneously,
// the lowest wins, so the rejoiner re-enters the protocol as early as it
// can.
func (c *Collector) CollectAny(kind Kind, minStep, q int, timeout time.Duration) ([]Message, int, error) {
	if q <= 0 {
		return nil, minStep, nil
	}
	floor := minStep
	var deadline time.Time
	if timeout >= 0 {
		//lint:allow-clock Recv timeouts are wall-clock by contract; liveness never decides values
		deadline = time.Now().Add(timeout)
	}
	for {
		// Lowest already-complete step ≥ floor wins.
		best := -1
		for key, b := range c.buf {
			if key.kind == kind && key.step >= floor && len(b.msgs) >= q &&
				(best < 0 || key.step < best) {
				best = key.step
			}
		}
		if best >= 0 {
			key := collectorKey{kind: kind, step: best}
			out := make([]Message, q)
			copy(out, c.buf[key].msgs[:q])
			c.releaseKey(c.buf[key])
			delete(c.buf, key)
			return out, best, nil
		}
		wait := time.Duration(-1)
		if timeout >= 0 {
			//lint:allow-clock deadline bookkeeping for the wall-clock timeout above
			wait = time.Until(deadline)
			if wait <= 0 {
				return nil, 0, fmt.Errorf("%w: rejoin found no step ≥ %d with %d %s messages",
					ErrQuorumTimeout, floor, q, kind)
			}
		}
		m, ok := c.ep.Recv(wait)
		if !ok {
			//lint:allow-clock discriminates timeout from closure on the wall-clock deadline
			if timeout >= 0 && time.Now().After(deadline) {
				return nil, 0, fmt.Errorf("%w: rejoin found no step ≥ %d with %d %s messages",
					ErrQuorumTimeout, floor, q, kind)
			}
			return nil, 0, fmt.Errorf("transport: endpoint closed while rejoining on %s", kind)
		}
		if m.Kind == kind && m.Step > floor+c.horizon() {
			floor = m.Step - c.horizon()
			c.Advance(floor)
		}
		c.store(m, floor)
	}
}

// Advance drops all buffered messages for steps before the given step, of
// any kind. Nodes call it when entering a new step so stale traffic cannot
// accumulate without bound.
func (c *Collector) Advance(step int) {
	for key, b := range c.buf {
		if key.step < step {
			c.releaseKey(b)
			delete(c.buf, key)
		}
	}
}

func (c *Collector) account(delta int) {
	c.curBytes += delta
	if c.curBytes > c.peakBytes {
		c.peakBytes = c.curBytes
		if c.Metrics != nil {
			c.Metrics.ObservePeak(c.peakBytes)
		}
	}
}

// releaseKey returns every payload byte buffered under b to the accounting.
func (c *Collector) releaseKey(b *arrivalBuf) {
	for _, m := range b.msgs {
		c.account(-8 * len(m.Vec))
	}
	for _, a := range b.asm {
		c.account(-a.bytes)
	}
}

// store buffers m unless it is stale relative to the step being collected
// or beyond the future-step horizon. Chunk messages are reassembled per
// sender first; a sender "arrives" when its last shard lands and the whole
// vector checks out, so the quorum discipline downstream never sees
// partial vectors.
func (c *Collector) store(m Message, currentStep int) {
	if !m.Kind.Valid() {
		return // junk kind: never collected, so never buffer it
	}
	if m.Step < currentStep {
		return // late message from a completed round: discard
	}
	if m.Step > currentStep+c.horizon() {
		c.droppedFuture++ // step-spraying sender: bound the buffer, count the drop
		if c.Metrics != nil {
			c.Metrics.DroppedFuture.Add(1)
		}
		return
	}
	if c.Membership != nil && !c.Membership(m.Step, m.From) {
		c.droppedRoster++ // sender outside the roster in force at this step
		if c.Metrics != nil {
			c.Metrics.DroppedRoster.Add(1)
		}
		return
	}
	key := collectorKey{kind: m.Kind, step: m.Step}
	b, ok := c.buf[key]
	if !ok {
		b = &arrivalBuf{seen: make(map[string]struct{})}
		c.buf[key] = b
	}
	if _, dup := b.seen[m.From]; dup {
		return // only the first (complete) message per sender counts
	}
	if m.IsShard() {
		whole, done := c.assemble(b, m)
		if !done {
			return // still streaming; nothing arrives until the vector is whole
		}
		m = whole
	}
	if c.Validator != nil && !c.Validator(m) {
		return // malformed payload: treat the sender as silent this round
	}
	b.seen[m.From] = struct{}{}
	b.msgs = append(b.msgs, m)
	c.account(8 * len(m.Vec))
}

// assemble folds one chunk frame into its sender's partial vector and
// returns the reassembled whole message once every shard is present and
// the shards tile a contiguous coordinate range. Inconsistent streams
// (changed shard count, non-tiling offsets, oversized totals) drop the
// whole assembly: a sender that cannot keep its own framing straight is
// treated as silent for the round.
func (c *Collector) assemble(b *arrivalBuf, m Message) (Message, bool) {
	if b.asm == nil {
		b.asm = make(map[string]*assembly)
	}
	a := b.asm[m.From]
	if a == nil {
		a = &assembly{parts: make([]Message, m.Shard.Count)}
		b.asm[m.From] = a
	}
	drop := func() {
		c.droppedMalformed++
		if c.Metrics != nil {
			c.Metrics.DroppedMalformed.Add(1)
		}
		c.account(-a.bytes)
		delete(b.asm, m.From)
	}
	if len(a.parts) != m.Shard.Count {
		drop()
		return Message{}, false
	}
	if a.parts[m.Shard.Index].Kind != 0 {
		return Message{}, false // duplicate shard (network dup or replay): ignore
	}
	a.parts[m.Shard.Index] = m
	a.got++
	a.bytes += 8 * len(m.Vec)
	c.account(8 * len(m.Vec))
	if a.bytes > 8*MaxVecLen {
		drop() // no whole vector may exceed MaxVecLen; stop paying for one
		return Message{}, false
	}
	if a.got < len(a.parts) {
		return Message{}, false
	}
	// Complete: shards must tile [0, total) in index order.
	total := 0
	for _, p := range a.parts {
		if p.Shard.Offset != total {
			drop()
			return Message{}, false
		}
		total += len(p.Vec)
	}
	vec := make(tensor.Vector, total)
	for _, p := range a.parts {
		copy(vec[p.Shard.Offset:], p.Vec)
	}
	c.account(-a.bytes)
	delete(b.asm, m.From)
	return Message{From: m.From, Kind: m.Kind, Step: m.Step, Vec: vec}, true
}

// Buffered returns how many distinct senders are buffered for (kind, step).
// Exposed for tests and monitoring.
func (c *Collector) Buffered(kind Kind, step int) int {
	b := c.buf[collectorKey{kind: kind, step: step}]
	if b == nil {
		return 0
	}
	return len(b.msgs)
}

// DroppedFuture returns how many messages were discarded for claiming a
// step beyond the buffering horizon. Exposed for tests and monitoring.
func (c *Collector) DroppedFuture() int { return c.droppedFuture }

// DroppedMalformed returns how many chunk frames were discarded for
// inconsistent shard tags (changed counts, non-tiling offsets, oversized
// assemblies). Exposed for tests and monitoring.
func (c *Collector) DroppedMalformed() int { return c.droppedMalformed }

// DroppedRoster returns how many messages were discarded because their
// sender was not a member of the roster in force at the message's step.
// Exposed for tests and monitoring.
func (c *Collector) DroppedRoster() int { return c.droppedRoster }

// PeakBytes returns the largest number of payload bytes the collector has
// buffered at once — whole messages awaiting their quorum plus partial
// chunk reassemblies. The memory experiment compares this O(n·d) ceiling
// against the ShardCollector's O(q·shard).
func (c *Collector) PeakBytes() int { return c.peakBytes }
