package transport

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/tensor"
)

// LatencyModel samples per-message network delays. It serves two purposes:
//
//   - it drives the virtual clock of the deterministic experiment simulator
//     (the time axis of Figures 3b/3d is virtual time accumulated from these
//     samples plus modelled compute costs);
//   - converted with DelayFunc, it injects real delays into the in-process
//     live network for asynchrony/failure-injection tests.
//
// Delays are heavy-tailed (log-normal jitter over a base propagation delay
// plus a bandwidth term), matching the "no bound on communication delays"
// model: any single message can be arbitrarily late, and the protocol must
// make progress from quorums alone.
type LatencyModel struct {
	// Base is the per-message propagation delay floor, in seconds.
	Base float64
	// JitterSigma is the σ of the log-normal multiplicative jitter. 0 means
	// deterministic latency.
	JitterSigma float64
	// BytesPerSecond is the link bandwidth used for the size-dependent term.
	// 0 disables the term.
	BytesPerSecond float64
	// NodeSlowdown multiplies delays for messages touching the named nodes
	// (either direction). Models stragglers and congested links.
	NodeSlowdown map[string]float64

	mu  sync.Mutex
	rng *tensor.RNG
}

// NewLatencyModel builds a model with the given seed. A 10 Gbps-class
// cluster like the paper's testbed corresponds to roughly
// Base=100e-6, JitterSigma=0.3, BytesPerSecond=1.25e9.
func NewLatencyModel(base, jitterSigma, bytesPerSecond float64, seed uint64) *LatencyModel {
	return &LatencyModel{
		Base:           base,
		JitterSigma:    jitterSigma,
		BytesPerSecond: bytesPerSecond,
		rng:            tensor.NewRNG(seed),
	}
}

// Sample returns one delay in seconds for a message of the given byte size.
func (l *LatencyModel) Sample(from, to string, bytes int) float64 {
	l.mu.Lock()
	jitter := 1.0
	if l.JitterSigma > 0 {
		jitter = l.rng.LogNormal(0, l.JitterSigma)
	}
	l.mu.Unlock()

	d := l.Base * jitter
	if l.BytesPerSecond > 0 {
		d += float64(bytes) / l.BytesPerSecond
	}
	if m, ok := l.NodeSlowdown[from]; ok {
		d *= m
	}
	if m, ok := l.NodeSlowdown[to]; ok {
		d *= m
	}
	return d
}

// DelayFunc adapts the model for injection into a ChanNetwork, scaling the
// virtual seconds by scale into wall-clock time (tests use small scales so a
// "100 µs" virtual delay does not slow the suite).
func (l *LatencyModel) DelayFunc(bytes int, scale float64) DelayFunc {
	return func(from, to string) time.Duration {
		return time.Duration(l.Sample(from, to, bytes) * scale * float64(time.Second))
	}
}

// QuorumArrival computes, for a set of message arrival times (seconds), the
// indices of the q earliest arrivals and the time the q-th one lands — the
// moment a receiver's quorum completes and it may proceed. Arrivals that are
// +Inf (silent senders) can never be selected; if fewer than q finite
// arrivals exist the returned time is +Inf, signalling a liveness violation
// (the deployment broke the q ≤ n−f bound).
func QuorumArrival(arrivals []float64, q int) (indices []int, when float64) {
	type at struct {
		idx int
		t   float64
	}
	all := make([]at, 0, len(arrivals))
	for i, t := range arrivals {
		all = append(all, at{idx: i, t: t})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].t < all[b].t })
	if q > len(all) {
		return nil, math.Inf(1)
	}
	indices = make([]int, 0, q)
	for _, a := range all[:q] {
		if math.IsInf(a.t, 1) {
			return nil, math.Inf(1)
		}
		indices = append(indices, a.idx)
	}
	return indices, all[q-1].t
}

// VectorBytes estimates the wire size of a d-dimensional float64 vector plus
// framing overhead, used for bandwidth-dependent latency terms.
func VectorBytes(d int) int { return 8*d + 64 }
