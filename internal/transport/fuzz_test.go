package transport

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

// Fuzz targets for the wire layer: arbitrary bytes fed to the frame
// decoder must never panic (a Byzantine peer controls every byte it
// sends), and well-formed messages must round-trip losslessly.

// mustEncode gob-encodes a message the way TCPNode.Send does.
func mustEncode(tb testing.TB, m Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzDecodeMessage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Add(mustEncode(f, Message{From: "ps0", Kind: KindParams, Step: 3, Vec: []float64{1, 2, 3}}))
	f.Add(mustEncode(f, Message{From: "wrk1", Kind: KindGradient, Step: 0,
		Vec: []float64{math.NaN(), math.Inf(1)}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := gob.NewDecoder(bytes.NewReader(data))
		var m Message
		// A corrupt or adversarial stream must surface as an error, never a
		// panic; whatever decodes is then subject to the receivers'
		// validator, exercised by the cluster-side fuzz target.
		if err := dec.Decode(&m); err != nil {
			return
		}
		// Decoded messages re-encode and decode to the same value (the
		// transport may re-frame messages when relaying between runtimes).
		var again Message
		if err := gob.NewDecoder(bytes.NewReader(mustEncode(t, m))).Decode(&again); err != nil {
			t.Fatalf("round-trip of decoded message failed: %v", err)
		}
		if again.From != m.From || again.Kind != m.Kind || again.Step != m.Step ||
			len(again.Vec) != len(m.Vec) {
			t.Fatalf("round-trip changed the message: %+v vs %+v", m, again)
		}
		for i := range m.Vec {
			if math.Float64bits(m.Vec[i]) != math.Float64bits(again.Vec[i]) {
				t.Fatalf("round-trip changed coordinate %d", i)
			}
		}
	})
}
