package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"repro/internal/compress"
)

// Fuzz targets for the wire layer: arbitrary bytes fed to the frame
// decoder must never panic (a Byzantine peer controls every byte it
// sends), and well-formed frames must round-trip losslessly. The committed
// corpus keeps the seeds of the retired gob framing as adversarial inputs —
// yesterday's wire format is exactly the kind of almost-structured garbage
// a decoder should shrug off.

// mustEncode frames a message the way TCPNode.Send does.
func mustEncode(tb testing.TB, m Message) []byte {
	tb.Helper()
	buf, err := AppendMessage(nil, &m)
	if err != nil {
		tb.Fatal(err)
	}
	return buf
}

func FuzzDecodeMessage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Add(mustEncode(f, Message{From: "ps0", Kind: KindParams, Step: 3, Vec: []float64{1, 2, 3}}))
	f.Add(mustEncode(f, Message{From: "wrk1", Kind: KindGradient, Step: 0,
		Vec: []float64{math.NaN(), math.Inf(1)}}))
	// A header declaring an absurd payload length: must be rejected before
	// any allocation, not satisfied.
	huge := mustEncode(f, Message{From: "byz", Kind: KindGradient, Step: 1})
	huge[11], huge[12], huge[13], huge[14] = 0xff, 0xff, 0xff, 0xff
	f.Add(huge)
	// Chunk frames: a middle shard, a degenerate single-shard stream, and a
	// forged extension whose index exceeds its count (decoder must reject).
	f.Add(mustEncode(f, Message{From: "wrk2", Kind: KindGradient, Step: 5,
		Vec:   []float64{1, 2, 3},
		Shard: ShardMeta{Index: 2, Count: 9, Offset: 6}}))
	f.Add(mustEncode(f, Message{From: "ps1", Kind: KindPeerParams, Step: 0,
		Vec:   []float64{math.Inf(-1)},
		Shard: ShardMeta{Index: 0, Count: 1, Offset: 0}}))
	forged := mustEncode(f, Message{From: "byz", Kind: KindParams, Step: 2,
		Vec:   []float64{4},
		Shard: ShardMeta{Index: 0, Count: 2, Offset: 0}})
	forged[15] = 0x07 // index 7 of count 2
	f.Add(forged)

	// Compressed frames. Genuine ones come from the real encoders (float32,
	// a delta keyframe + diff pair, top-k, and a compressed SHARD frame);
	// the rest are well-formed frames around adversarial payloads — the wire
	// codec transports them opaquely and bijectively, and the payload
	// decoder must reject every one without panicking or allocating the
	// claimed expansion.
	compFrame := func(scheme uint8, dim int, payload []byte) []byte {
		return mustEncode(f, Message{From: "wrk3", Kind: KindGradient, Step: 4,
			Comp: CompMeta{Scheme: scheme, Dim: dim, Data: payload}})
	}
	vec := []float64{0.5, -2, 3.25, 1e-9}
	f32enc := compress.NewEncoder(compress.Config{Scheme: compress.Float32})
	if p, err := f32enc.Encode(nil, uint8(KindGradient), 4, 0, vec); err == nil {
		f.Add(compFrame(uint8(compress.Float32), len(vec), p))
	}
	denc := compress.NewEncoder(compress.Config{Scheme: compress.Delta})
	for step := int64(0); step < 2; step++ { // keyframe, then a diff
		if p, err := denc.Encode(nil, uint8(KindGradient), step, 0, vec); err == nil {
			f.Add(compFrame(uint8(compress.Delta), len(vec), p))
		}
	}
	tenc := compress.NewEncoder(compress.Config{Scheme: compress.TopK, TopKFrac: 0.5})
	if p, err := tenc.Encode(nil, uint8(KindGradient), 4, 32, vec); err == nil {
		f.Add(mustEncode(f, Message{From: "wrk3", Kind: KindGradient, Step: 4,
			Shard: ShardMeta{Index: 1, Count: 3, Offset: 32},
			Comp:  CompMeta{Scheme: uint8(compress.TopK), Dim: len(vec), Data: p}}))
	}
	topk := func(dim int, k uint32, entries ...uint32) []byte { // entries = idx,bits pairs
		p := binary.LittleEndian.AppendUint32(nil, k)
		for _, e := range entries {
			p = binary.LittleEndian.AppendUint32(p, e)
		}
		return compFrame(uint8(compress.TopK), dim, p)
	}
	one := math.Float32bits(1)
	f.Add(topk(4, 3, 1, one))                                 // truncated index table (3 claimed, 1 shipped)
	f.Add(topk(4, 1, 100, one))                               // out-of-range index
	f.Add(topk(4, 2, 2, one, 2, one))                         // duplicate index
	f.Add(topk(4, 9, 0, one))                                 // k > d claim
	f.Add(topk(4, 2, 3, one, 1, one))                         // non-increasing indices
	f.Add(compFrame(7, 4, []byte{1, 2}))                      // unknown scheme byte
	f.Add(compFrame(uint8(compress.Float32), 1, nil))         // empty payload
	f.Add(compFrame(uint8(compress.Delta), 4, []byte{0x09}))  // bad delta tag
	diffNoRef := append([]byte{0x01}, make([]byte, 8+4*4)...) // diff with no reference
	f.Add(compFrame(uint8(compress.Delta), 4, diffNoRef))
	// A compression extension whose enc-len exceeds the declared range's
	// byte bound: rejected from the header, before any staging.
	overLen := compFrame(uint8(compress.Float32), 1, make([]byte, 16))
	binary.LittleEndian.PutUint32(overLen[FrameHeaderSize+1:], 1<<30)
	f.Add(overLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		n, err := DecodeMessage(data, &m)
		// A corrupt or adversarial frame must surface as an error, never a
		// panic; whatever decodes is then subject to the receivers'
		// validator, exercised by the cluster-side fuzz target.
		if err != nil {
			return
		}
		if n < FrameHeaderSize || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// Decoded messages re-encode to the identical frame (the transport
		// may re-frame messages when relaying between runtimes), and the
		// stream reader agrees with the slice decoder.
		again := mustEncode(t, m)
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("re-encode changed the frame: %x vs %x", again, data[:n])
		}
		var viaStream Message
		var scratch []byte
		if err := ReadMessage(bytes.NewReader(data[:n]), &scratch, &viaStream); err != nil {
			t.Fatalf("stream decode of a valid frame failed: %v", err)
		}
		if viaStream.From != m.From || viaStream.Kind != m.Kind || viaStream.Step != m.Step ||
			viaStream.Shard != m.Shard || len(viaStream.Vec) != len(m.Vec) {
			t.Fatalf("stream decode disagrees: %+v vs %+v", viaStream, m)
		}
		for i := range m.Vec {
			if math.Float64bits(m.Vec[i]) != math.Float64bits(viaStream.Vec[i]) {
				t.Fatalf("stream decode changed coordinate %d", i)
			}
		}
		if viaStream.Comp.Scheme != m.Comp.Scheme || viaStream.Comp.Dim != m.Comp.Dim ||
			!bytes.Equal(viaStream.Comp.Data, m.Comp.Data) {
			t.Fatalf("stream decode disagrees on compression: %+v vs %+v", viaStream.Comp, m.Comp)
		}
		if m.IsCompressed() {
			if len(m.Vec) != 0 {
				t.Fatal("compressed frame decoded raw coordinates too")
			}
			// Expansion must never panic, and must fail TYPED on garbage —
			// the receiving node turns exactly these errors into
			// DroppedMalformed instead of a crash. The dimension gate mirrors
			// the node's SetCompression maxDim bound: a mutated top-k frame
			// may legally claim a 2²⁶-coordinate expansion for 12 payload
			// bytes, and no receiver expands beyond its deployment dimension.
			if m.Comp.Dim > 1<<20 {
				return
			}
			cp := m
			if err := DecompressMessage(compress.NewDecoder(), &cp); err == nil {
				if len(cp.Vec) != m.Comp.Dim || cp.IsCompressed() {
					t.Fatalf("decompressed to %d coordinates, declared %d", len(cp.Vec), m.Comp.Dim)
				}
			} else if !errors.Is(err, compress.ErrMalformed) && !errors.Is(err, compress.ErrReference) {
				t.Fatalf("decompress failed with an untyped error: %v", err)
			}
		}
	})
}
