package transport

import (
	"bytes"
	"math"
	"testing"
)

// Fuzz targets for the wire layer: arbitrary bytes fed to the frame
// decoder must never panic (a Byzantine peer controls every byte it
// sends), and well-formed frames must round-trip losslessly. The committed
// corpus keeps the seeds of the retired gob framing as adversarial inputs —
// yesterday's wire format is exactly the kind of almost-structured garbage
// a decoder should shrug off.

// mustEncode frames a message the way TCPNode.Send does.
func mustEncode(tb testing.TB, m Message) []byte {
	tb.Helper()
	buf, err := AppendMessage(nil, &m)
	if err != nil {
		tb.Fatal(err)
	}
	return buf
}

func FuzzDecodeMessage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Add(mustEncode(f, Message{From: "ps0", Kind: KindParams, Step: 3, Vec: []float64{1, 2, 3}}))
	f.Add(mustEncode(f, Message{From: "wrk1", Kind: KindGradient, Step: 0,
		Vec: []float64{math.NaN(), math.Inf(1)}}))
	// A header declaring an absurd payload length: must be rejected before
	// any allocation, not satisfied.
	huge := mustEncode(f, Message{From: "byz", Kind: KindGradient, Step: 1})
	huge[11], huge[12], huge[13], huge[14] = 0xff, 0xff, 0xff, 0xff
	f.Add(huge)
	// Chunk frames: a middle shard, a degenerate single-shard stream, and a
	// forged extension whose index exceeds its count (decoder must reject).
	f.Add(mustEncode(f, Message{From: "wrk2", Kind: KindGradient, Step: 5,
		Vec:   []float64{1, 2, 3},
		Shard: ShardMeta{Index: 2, Count: 9, Offset: 6}}))
	f.Add(mustEncode(f, Message{From: "ps1", Kind: KindPeerParams, Step: 0,
		Vec:   []float64{math.Inf(-1)},
		Shard: ShardMeta{Index: 0, Count: 1, Offset: 0}}))
	forged := mustEncode(f, Message{From: "byz", Kind: KindParams, Step: 2,
		Vec:   []float64{4},
		Shard: ShardMeta{Index: 0, Count: 2, Offset: 0}})
	forged[15] = 0x07 // index 7 of count 2
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		n, err := DecodeMessage(data, &m)
		// A corrupt or adversarial frame must surface as an error, never a
		// panic; whatever decodes is then subject to the receivers'
		// validator, exercised by the cluster-side fuzz target.
		if err != nil {
			return
		}
		if n < FrameHeaderSize || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// Decoded messages re-encode to the identical frame (the transport
		// may re-frame messages when relaying between runtimes), and the
		// stream reader agrees with the slice decoder.
		again := mustEncode(t, m)
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("re-encode changed the frame: %x vs %x", again, data[:n])
		}
		var viaStream Message
		var scratch []byte
		if err := ReadMessage(bytes.NewReader(data[:n]), &scratch, &viaStream); err != nil {
			t.Fatalf("stream decode of a valid frame failed: %v", err)
		}
		if viaStream.From != m.From || viaStream.Kind != m.Kind || viaStream.Step != m.Step ||
			viaStream.Shard != m.Shard || len(viaStream.Vec) != len(m.Vec) {
			t.Fatalf("stream decode disagrees: %+v vs %+v", viaStream, m)
		}
		for i := range m.Vec {
			if math.Float64bits(m.Vec[i]) != math.Float64bits(viaStream.Vec[i]) {
				t.Fatalf("stream decode changed coordinate %d", i)
			}
		}
	})
}
