package transport

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

func TestMailboxFIFO(t *testing.T) {
	m := NewMailbox()
	for i := 0; i < 5; i++ {
		m.Put(Message{Step: i})
	}
	if m.Len() != 5 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < 5; i++ {
		msg, ok := m.Recv(time.Second)
		if !ok || msg.Step != i {
			t.Fatalf("Recv %d: ok=%v step=%d", i, ok, msg.Step)
		}
	}
}

func TestMailboxTimeout(t *testing.T) {
	m := NewMailbox()
	start := time.Now()
	_, ok := m.Recv(20 * time.Millisecond)
	if ok {
		t.Fatal("Recv on empty mailbox returned a message")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("Recv returned too early: %v", elapsed)
	}
}

func TestMailboxCloseWakesReceivers(t *testing.T) {
	m := NewMailbox()
	done := make(chan bool, 1)
	go func() {
		_, ok := m.Recv(-1)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	m.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned message from closed empty mailbox")
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not wake on Close")
	}
	// Put after close is dropped.
	m.Put(Message{})
	if m.Len() != 0 {
		t.Fatal("Put after Close enqueued")
	}
}

func TestMailboxConcurrentProducersConsumers(t *testing.T) {
	m := NewMailbox()
	const producers, perProducer = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				m.Put(Message{From: fmt.Sprintf("p%d", p), Step: i})
			}
		}(p)
	}
	received := make(chan Message, producers*perProducer)
	var rg sync.WaitGroup
	for c := 0; c < 4; c++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				msg, ok := m.Recv(200 * time.Millisecond)
				if !ok {
					return
				}
				received <- msg
			}
		}()
	}
	wg.Wait()
	rg.Wait()
	close(received)
	if n := len(received); n != producers*perProducer {
		t.Fatalf("received %d messages, want %d", n, producers*perProducer)
	}
}

func TestChanNetworkBasicDelivery(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	a, err := net.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", Message{Kind: KindParams, Step: 1, Vec: tensor.Vector{1, 2}}); err != nil {
		t.Fatal(err)
	}
	m, ok := b.Recv(time.Second)
	if !ok {
		t.Fatal("no delivery")
	}
	if m.From != "a" || m.Step != 1 || m.Vec[1] != 2 {
		t.Fatalf("got %+v", m)
	}
}

func TestChanNetworkErrors(t *testing.T) {
	net := NewChanNetwork(nil)
	a, _ := net.Register("a")
	if _, err := net.Register("a"); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := a.Send("ghost", Message{}); err == nil {
		t.Fatal("send to unknown node succeeded")
	}
	net.Close()
	if err := a.Send("a", Message{}); err == nil {
		t.Fatal("send on closed network succeeded")
	}
	if _, err := net.Register("b"); err == nil {
		t.Fatal("register on closed network succeeded")
	}
}

func TestChanNetworkDelayReordering(t *testing.T) {
	// First message delayed, second immediate: receiver must see reordering.
	calls := 0
	delay := func(from, to string) time.Duration {
		calls++
		if calls == 1 {
			return 50 * time.Millisecond
		}
		return 0
	}
	net := NewChanNetwork(delay)
	defer net.Close()
	a, _ := net.Register("a")
	b, _ := net.Register("b")
	if err := a.Send("b", Message{Step: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", Message{Step: 2}); err != nil {
		t.Fatal(err)
	}
	m1, ok := b.Recv(time.Second)
	if !ok {
		t.Fatal("no first delivery")
	}
	if m1.Step != 2 {
		t.Fatalf("expected reordered delivery, got step %d first", m1.Step)
	}
	m2, ok := b.Recv(time.Second)
	if !ok || m2.Step != 1 {
		t.Fatalf("second delivery: ok=%v %+v", ok, m2)
	}
}

func TestCollectorQuorum(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("srv")
	senders := make([]Endpoint, 5)
	for i := range senders {
		senders[i], _ = net.Register(fmt.Sprintf("w%d", i))
	}
	for i, s := range senders {
		if err := s.Send("srv", Message{Kind: KindGradient, Step: 0, Vec: tensor.Vector{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCollector(recv)
	msgs, err := c.Collect(KindGradient, 0, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("collected %d, want 3", len(msgs))
	}
	seen := map[string]bool{}
	for _, m := range msgs {
		if seen[m.From] {
			t.Fatalf("duplicate sender %s in quorum", m.From)
		}
		seen[m.From] = true
	}
}

// Regression for the map-iteration quorum bug: with q+3 senders buffered,
// Collect must return exactly the FIRST q in receipt order — the paper's
// "aggregate the first q received", literally. The old implementation
// ranged over a Go map, so both the selected set and its order varied
// between runs.
func TestCollectorArrivalOrder(t *testing.T) {
	const senders, q = 7, 4 // q+3 senders buffered before Collect
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("srv")
	eps := make([]Endpoint, senders)
	for s := range eps {
		eps[s], _ = net.Register(fmt.Sprintf("w%d", s))
	}
	// Interleave with a dash of noise: duplicates and another kind must not
	// displace anyone from the arrival order.
	order := []int{3, 0, 5, 1, 3, 6, 2, 4} // sender 3 repeats: dup ignored
	for _, s := range order {
		if err := eps[s].Send("srv", Message{Kind: KindGradient, Step: 2, Vec: tensor.Vector{float64(s)}}); err != nil {
			t.Fatal(err)
		}
		if err := eps[s].Send("srv", Message{Kind: KindPeerParams, Step: 2, Vec: tensor.Vector{-1}}); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCollector(recv)
	c.Advance(2)
	msgs, err := c.Collect(KindGradient, 2, q, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"w3", "w0", "w5", "w1"} // first q distinct senders, receipt order
	if len(msgs) != q {
		t.Fatalf("collected %d, want %d", len(msgs), q)
	}
	for i, m := range msgs {
		if m.From != want[i] {
			t.Fatalf("position %d: got %s, want %s (full order: %v)", i, m.From, want[i], msgs)
		}
		if m.Vec[0] != float64(want[i][1]-'0') {
			t.Fatalf("position %d: payload %v does not match sender %s", i, m.Vec, m.From)
		}
	}
}

// Regression for unbounded future-step buffering: a sender spraying steps
// t+1..t+N must cost at most Horizon steps of buffer, with the remainder
// dropped and counted.
func TestCollectorFutureHorizonBounded(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("srv")
	byz, _ := net.Register("byz")
	honest, _ := net.Register("honest")

	c := NewCollector(recv)
	c.Horizon = 16
	const spray = 200
	for s := 1; s <= spray; s++ {
		if err := byz.Send("srv", Message{Kind: KindGradient, Step: s, Vec: tensor.Vector{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := honest.Send("srv", Message{Kind: KindGradient, Step: 0, Vec: tensor.Vector{0}}); err != nil {
		t.Fatal(err)
	}
	msgs, err := c.Collect(KindGradient, 0, 1, time.Second)
	if err != nil || msgs[0].From != "honest" {
		t.Fatalf("collect: %v %+v", err, msgs)
	}
	if got := c.DroppedFuture(); got != spray-c.Horizon {
		t.Fatalf("DroppedFuture = %d, want %d", got, spray-c.Horizon)
	}
	for s := 1; s <= c.Horizon; s++ {
		if c.Buffered(KindGradient, s) != 1 {
			t.Fatalf("step %d within horizon not buffered", s)
		}
	}
	for s := c.Horizon + 1; s <= spray; s++ {
		if c.Buffered(KindGradient, s) != 0 {
			t.Fatalf("step %d beyond horizon buffered", s)
		}
	}
}

// Junk message kinds must never be buffered: they are never collected, so
// buffering them would hand a Byzantine sender a ~85× multiplier on the
// horizon memory bound (one buffer per kind byte per step).
func TestCollectorDropsInvalidKinds(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("srv")
	byz, _ := net.Register("byz")
	honest, _ := net.Register("honest")
	for _, k := range []Kind{0, 4, 77, 255} {
		if err := byz.Send("srv", Message{Kind: k, Step: 0, Vec: tensor.Vector{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := honest.Send("srv", Message{Kind: KindGradient, Step: 0, Vec: tensor.Vector{0}}); err != nil {
		t.Fatal(err)
	}
	c := NewCollector(recv)
	if msgs, err := c.Collect(KindGradient, 0, 1, time.Second); err != nil || msgs[0].From != "honest" {
		t.Fatalf("collect: %v %+v", err, msgs)
	}
	for _, k := range []Kind{0, 4, 77, 255} {
		if c.Buffered(k, 0) != 0 {
			t.Fatalf("invalid kind %d buffered", k)
		}
	}
}

// An empty quorum is satisfied by silence — Collect(q ≤ 0) must return
// immediately without touching the buffer (regression: the arrival-order
// rebuild briefly made this a nil-map dereference).
func TestCollectorZeroQuorum(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("srv")
	c := NewCollector(recv)
	for _, q := range []int{0, -1} {
		msgs, err := c.Collect(KindPeerParams, 3, q, time.Second)
		if err != nil || len(msgs) != 0 {
			t.Fatalf("Collect(q=%d) = %v, %v", q, msgs, err)
		}
	}
}

func TestCollectorDedupesSenders(t *testing.T) {
	// A Byzantine sender flooding copies must not fill the quorum alone.
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("srv")
	byz, _ := net.Register("byz")
	honest, _ := net.Register("honest")

	for i := 0; i < 10; i++ {
		if err := byz.Send("srv", Message{Kind: KindGradient, Step: 0, Vec: tensor.Vector{666}}); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCollector(recv)
	if _, err := c.Collect(KindGradient, 0, 2, 50*time.Millisecond); err == nil {
		t.Fatal("quorum of 2 satisfied by a single flooding sender")
	}
	if err := honest.Send("srv", Message{Kind: KindGradient, Step: 0, Vec: tensor.Vector{1}}); err != nil {
		t.Fatal(err)
	}
	msgs, err := c.Collect(KindGradient, 0, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("collected %d", len(msgs))
	}
}

func TestCollectorBuffersFutureDropsPast(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("srv")
	w, _ := net.Register("w")

	// A future-step message and a stale one arrive while collecting step 1.
	if err := w.Send("srv", Message{Kind: KindGradient, Step: 2, Vec: tensor.Vector{2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Send("srv", Message{Kind: KindGradient, Step: 0, Vec: tensor.Vector{0}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Send("srv", Message{Kind: KindGradient, Step: 1, Vec: tensor.Vector{1}}); err != nil {
		t.Fatal(err)
	}
	c := NewCollector(recv)
	msgs, err := c.Collect(KindGradient, 1, 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if msgs[0].Vec[0] != 1 {
		t.Fatalf("collected wrong step payload: %+v", msgs[0])
	}
	// The future message is buffered and satisfies the next round instantly.
	if c.Buffered(KindGradient, 2) != 1 {
		t.Fatalf("future message not buffered: %d", c.Buffered(KindGradient, 2))
	}
	msgs, err = c.Collect(KindGradient, 2, 1, time.Second)
	if err != nil || msgs[0].Vec[0] != 2 {
		t.Fatalf("future buffering broken: %v %+v", err, msgs)
	}
}

func TestCollectorAdvanceDropsStale(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("srv")
	w, _ := net.Register("w")
	if err := w.Send("srv", Message{Kind: KindParams, Step: 3, Vec: tensor.Vector{3}}); err != nil {
		t.Fatal(err)
	}
	c := NewCollector(recv)
	// Pull it into the buffer by collecting a different kind with timeout.
	_, _ = c.Collect(KindGradient, 3, 1, 20*time.Millisecond)
	if c.Buffered(KindParams, 3) != 1 {
		t.Fatal("message not buffered")
	}
	c.Advance(5)
	if c.Buffered(KindParams, 3) != 0 {
		t.Fatal("Advance did not drop stale buffer")
	}
}

func TestCollectorTimeoutMessage(t *testing.T) {
	net := NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("srv")
	c := NewCollector(recv)
	_, err := c.Collect(KindGradient, 7, 4, 10*time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := ListenTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("b", "127.0.0.1:0", map[string]string{"a": a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	vec := tensor.Vector{1.5, -2.5, 3.25}
	if err := b.Send("a", Message{Kind: KindGradient, Step: 4, Vec: vec}); err != nil {
		t.Fatal(err)
	}
	m, ok := a.Recv(2 * time.Second)
	if !ok {
		t.Fatal("no TCP delivery")
	}
	if m.From != "b" || m.Kind != KindGradient || m.Step != 4 {
		t.Fatalf("header mismatch: %+v", m)
	}
	for i := range vec {
		if m.Vec[i] != vec[i] {
			t.Fatalf("payload corrupted: %v", m.Vec)
		}
	}
}

func TestTCPManyMessagesBothDirections(t *testing.T) {
	a, err := ListenTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("b", "127.0.0.1:0", map[string]string{"a": a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer("b", b.Addr()); err != nil { // wire the reverse direction
		t.Fatal(err)
	}
	if err := a.AddPeer("a", "self"); err == nil {
		t.Fatal("self-peering accepted")
	}

	const n = 50
	for i := 0; i < n; i++ {
		if err := b.Send("a", Message{Kind: KindParams, Step: i, Vec: tensor.Vector{float64(i)}}); err != nil {
			t.Fatal(err)
		}
		if err := a.Send("b", Message{Kind: KindGradient, Step: i, Vec: tensor.Vector{float64(-i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, ok := a.Recv(2 * time.Second); !ok {
			t.Fatalf("a missed message %d", i)
		}
		if _, ok := b.Recv(2 * time.Second); !ok {
			t.Fatalf("b missed message %d", i)
		}
	}
}

func TestTCPSendUnknownPeer(t *testing.T) {
	a, err := ListenTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("ghost", Message{}); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestLatencyModelProperties(t *testing.T) {
	l := NewLatencyModel(100e-6, 0.3, 1.25e9, 1)
	var sum float64
	for i := 0; i < 1000; i++ {
		d := l.Sample("a", "b", 1000)
		if d <= 0 {
			t.Fatalf("non-positive delay %v", d)
		}
		sum += d
	}
	mean := sum / 1000
	if mean < 50e-6 || mean > 500e-6 {
		t.Fatalf("mean latency %v out of plausible band", mean)
	}
	// Bandwidth term dominates for large payloads.
	big := l.Sample("a", "b", 125_000_000) // 0.1 s at 1.25 GB/s
	if big < 0.09 {
		t.Fatalf("bandwidth term missing: %v", big)
	}
	// Node slowdown multiplies.
	l.NodeSlowdown = map[string]float64{"slow": 100}
	if f := l.Sample("slow", "b", 0); f < 100*50e-6*0.1 {
		t.Fatalf("slowdown not applied: %v", f)
	}
}

func TestLatencyModelDeterministicWithoutJitter(t *testing.T) {
	l := NewLatencyModel(1e-3, 0, 0, 1)
	if l.Sample("a", "b", 0) != 1e-3 {
		t.Fatal("jitter-free latency should equal base")
	}
}

func TestQuorumArrival(t *testing.T) {
	arr := []float64{5, 1, 3, 2, 4}
	idx, when := QuorumArrival(arr, 3)
	if when != 3 {
		t.Fatalf("q-th arrival time %v, want 3", when)
	}
	want := map[int]bool{1: true, 3: true, 2: true}
	for _, i := range idx {
		if !want[i] {
			t.Fatalf("unexpected index %d in quorum", i)
		}
	}
}

func TestQuorumArrivalWithSilentNodes(t *testing.T) {
	inf := math.Inf(1)
	// 2 live, 2 silent, quorum of 3 → impossible.
	if _, when := QuorumArrival([]float64{1, inf, 2, inf}, 3); !math.IsInf(when, 1) {
		t.Fatalf("expected +Inf, got %v", when)
	}
	// quorum of 2 completes at t=2 despite the silent nodes.
	idx, when := QuorumArrival([]float64{1, inf, 2, inf}, 2)
	if when != 2 || len(idx) != 2 {
		t.Fatalf("got %v at %v", idx, when)
	}
	// quorum larger than the population is impossible.
	if _, when := QuorumArrival([]float64{1}, 2); !math.IsInf(when, 1) {
		t.Fatalf("expected +Inf, got %v", when)
	}
}

func TestVectorBytes(t *testing.T) {
	if VectorBytes(0) <= 0 {
		t.Fatal("framing overhead missing")
	}
	if VectorBytes(100)-VectorBytes(0) != 800 {
		t.Fatal("per-coordinate size wrong")
	}
}
