//go:build race

package transport

// raceEnabled reports whether the race detector instruments this build —
// its shadow-memory bookkeeping defeats the append-in-place optimisations
// the steady-state allocation assertions rely on.
const raceEnabled = true
