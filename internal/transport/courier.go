package transport

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Couriers decouples a node loop from its slowest link: Send enqueues the
// message into a per-destination bounded outbox, and a dedicated courier
// goroutine per link performs the real Endpoint.Send. With a drop policy
// the node's broadcast loop never blocks — a stalled or backpressured peer
// costs that one link its freshest frames, not the node its step cadence.
// With Backpressure, Send blocks only when the one link addressed is at
// its cap, which is the policy's contract.
//
// The outbox applies the same MailboxConfig as the inbound mailboxes, so a
// node's worst-case buffering is symmetric: Cap frames per inbound sender
// plus Cap frames per outbound link — O(n·Cap) either way.
//
// Messages are snapshotted (Message.Clone) at the Send boundary, because
// the courier holds them past it and the node keeps mutating its vector.
type Couriers struct {
	ep  Endpoint
	cfg MailboxConfig

	mu     sync.Mutex
	links  map[string]*Mailbox
	sink   *metrics.NodeMetrics
	closed bool
	wg     sync.WaitGroup
}

var _ Endpoint = (*Couriers)(nil)

// NewCouriers wraps ep. A zero (unbounded) config still decouples sends
// from the wire but never drops; bounded configs apply their policy per
// link. Couriers passes Recv and ID through untouched.
func NewCouriers(ep Endpoint, cfg MailboxConfig) *Couriers {
	return &Couriers{ep: ep, cfg: cfg, links: make(map[string]*Mailbox)}
}

// ID implements Endpoint.
func (c *Couriers) ID() string { return c.ep.ID() }

// SetMetrics attaches a live counter sink: every link outbox (existing
// and future) mirrors its overflow drops into the sink's CourierDropped
// counter.
func (c *Couriers) SetMetrics(sink *metrics.NodeMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sink = sink
	for _, box := range c.links {
		box.SetMetrics(sink, true)
	}
}

// Send implements Endpoint: it snapshots m into the destination's outbox
// and returns. The courier goroutine owning that link delivers in FIFO
// order; its Send errors are dropped, as the best-effort network model
// prescribes (the node loops already discard them).
func (c *Couriers) Send(to string, m Message) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("transport: couriers closed")
	}
	box, ok := c.links[to]
	if !ok {
		box = NewMailboxWith(c.cfg)
		if c.sink != nil {
			box.SetMetrics(c.sink, true)
		}
		c.links[to] = box
		c.wg.Add(1)
		go c.run(to, box)
	}
	c.mu.Unlock()
	box.Put(m.Clone())
	return nil
}

// run is one link's courier: it drains the outbox in order until the
// mailbox is closed and empty, so frames queued at Close still flush.
func (c *Couriers) run(to string, box *Mailbox) {
	defer c.wg.Done()
	for {
		m, ok := box.Recv(-1)
		if !ok {
			return
		}
		_ = c.ep.Send(to, m)
	}
}

// Recv implements Endpoint.
func (c *Couriers) Recv(timeout time.Duration) (Message, bool) {
	return c.ep.Recv(timeout)
}

// DroppedOverflow returns the total outbound frames discarded across all
// links by the overflow policy.
func (c *Couriers) DroppedOverflow() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, box := range c.links {
		n += box.DroppedOverflow()
	}
	return n
}

// Close implements Endpoint: it stops accepting sends, lets every courier
// flush its queued frames, then closes the wrapped endpoint. Safe for
// concurrent callers.
func (c *Couriers) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	links := make([]*Mailbox, 0, len(c.links))
	for _, box := range c.links {
		//lint:allow-maporder close order across links is immaterial
		links = append(links, box)
	}
	c.mu.Unlock()
	for _, box := range links {
		box.Close()
	}
	c.wg.Wait()
	return c.ep.Close()
}
