package transport

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/tensor"
)

// Property: any Message survives a binary-codec round-trip bit-for-bit —
// the wire contract of the TCP transport. Every tenth vector gets a NaN
// and an Inf planted, so exotic IEEE-754 bit patterns are covered, and the
// decode goes through a dirty reused Message to exercise the
// capacity-reuse path of the ownership contract.
func TestMessageCodecRoundTripProperty(t *testing.T) {
	reused := Message{From: "stale", Vec: make(tensor.Vector, 96)}
	f := func(seed uint64, step int, kindRaw uint8) bool {
		rng := tensor.NewRNG(seed)
		d := rng.Intn(64)
		msg := Message{
			From: fmt.Sprintf("node%d", rng.Intn(100)),
			Kind: Kind(kindRaw%3 + 1),
			Step: step,
			Vec:  rng.NormVec(make(tensor.Vector, d), 0, 1e6),
		}
		if d > 1 && seed%10 == 0 {
			msg.Vec[0] = math.NaN()
			msg.Vec[1] = math.Inf(-1)
		}
		buf, err := AppendMessage(nil, &msg)
		if err != nil {
			return false
		}
		n, err := DecodeMessage(buf, &reused)
		if err != nil || n != len(buf) || n != EncodedSize(&msg) {
			return false
		}
		got := reused
		if got.From != msg.From || got.Kind != msg.Kind || got.Step != msg.Step {
			return false
		}
		if len(got.Vec) != len(msg.Vec) {
			return false
		}
		for i := range msg.Vec {
			if math.Float64bits(got.Vec[i]) != math.Float64bits(msg.Vec[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: regardless of arrival order and interleaving with stale/future
// traffic, the Collector returns exactly q distinct senders of the right
// (kind, step), never counting a stale or duplicate message.
func TestCollectorRandomOrderProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		net := NewChanNetwork(nil)
		defer net.Close()
		recv, err := net.Register("srv")
		if err != nil {
			return false
		}
		const senders = 8
		q := 1 + rng.Intn(senders)
		step := 1 + rng.Intn(3)

		// Build a message soup: one valid message per sender, plus
		// duplicates, stale and future traffic, then shuffle.
		type planned struct {
			from string
			m    Message
		}
		var soup []planned
		for s := 0; s < senders; s++ {
			from := fmt.Sprintf("w%d", s)
			soup = append(soup, planned{from, Message{Kind: KindGradient, Step: step, Vec: tensor.Vector{float64(s)}}})
			// Duplicate with the same payload: either copy may win the
			// first-per-sender rule, but the sender must count only once.
			soup = append(soup, planned{from, Message{Kind: KindGradient, Step: step, Vec: tensor.Vector{float64(s)}}})
			soup = append(soup, planned{from, Message{Kind: KindGradient, Step: step - 1, Vec: tensor.Vector{-2}}}) // stale
			soup = append(soup, planned{from, Message{Kind: KindGradient, Step: step + 1, Vec: tensor.Vector{-3}}}) // future
			soup = append(soup, planned{from, Message{Kind: KindPeerParams, Step: step, Vec: tensor.Vector{-4}}})   // other kind
		}
		eps := make(map[string]Endpoint, senders)
		for s := 0; s < senders; s++ {
			from := fmt.Sprintf("w%d", s)
			ep, err := net.Register(from)
			if err != nil {
				return false
			}
			eps[from] = ep
		}
		perm := rng.Perm(len(soup))
		for _, p := range perm {
			if err := eps[soup[p].from].Send("srv", soup[p].m); err != nil {
				return false
			}
		}

		c := NewCollector(recv)
		c.Advance(step)
		msgs, err := c.Collect(KindGradient, step, q, 2*time.Second)
		if err != nil || len(msgs) != q {
			return false
		}
		seen := map[string]bool{}
		for _, m := range msgs {
			if seen[m.From] || m.Kind != KindGradient || m.Step != step {
				return false
			}
			// The payload must be the sender's first valid message (its
			// index), never a duplicate/stale/future payload.
			if m.Vec[0] < 0 {
				return false
			}
			seen[m.From] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
