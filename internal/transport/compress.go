package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compress"
	"repro/internal/metrics"
)

// Glue between the wire codec's compressed frames and the internal/compress
// payload codecs. The split of responsibilities:
//
//   - internal/compress owns the bytes INSIDE a compressed payload and the
//     per-stream state (delta references, top-k error feedback);
//   - codec.go owns the frame AROUND it (the compression extension) and
//     transports the payload opaquely, staying bijective;
//   - this file converts between the two Message representations (raw Vec ↔
//     Comp) and wraps in-process endpoints with the same per-link
//     compression the TCP transport performs inside Send and readLoop.
//
// Compression state is strictly per directed link. On TCP, the encoder
// lives on the outbound connection and the decoder in the accepting
// readLoop, so a redial resets both ends together; on the in-process
// network, Compressor keys encoders by destination and decoders by source.

// CompressMessage replaces m's raw payload with its encoding under enc,
// advancing enc's per-stream state. The kind/step/shard tags are unchanged
// — compression is decided per frame and composes with chunk streaming. A
// nil or disabled encoder, an already-compressed message, or an empty
// payload is a no-op.
func CompressMessage(enc *compress.Encoder, m *Message) error {
	if enc == nil || !enc.Config().Enabled() || m.IsCompressed() || len(m.Vec) == 0 {
		return nil
	}
	data, err := enc.Encode(m.Comp.Data[:0], uint8(m.Kind), int64(m.Step), m.Shard.Offset, m.Vec)
	if err != nil {
		return err
	}
	m.Comp = CompMeta{Scheme: uint8(enc.Config().Scheme), Dim: len(m.Vec), Data: data}
	m.Vec = nil
	return nil
}

// DecompressMessage expands m's compressed payload back into raw
// coordinates using dec's per-stream state, reusing m.Vec's capacity. A
// plain message is a no-op. On error m is unchanged: the caller drops the
// frame and counts it (compress.ErrMalformed and compress.ErrReference
// discriminate structural garbage from a desynchronised delta stream).
func DecompressMessage(dec *compress.Decoder, m *Message) error {
	if !m.IsCompressed() {
		return nil
	}
	vec, err := dec.Decode(compress.Scheme(m.Comp.Scheme), uint8(m.Kind), int64(m.Step),
		m.Shard.Offset, m.Comp.Dim, m.Comp.Data, m.Vec[:0])
	if err != nil {
		return err
	}
	m.Vec = vec
	m.Comp = CompMeta{}
	return nil
}

// Compressor wraps an in-process Endpoint with per-link payload
// compression, mirroring what TCPNode does inside Send and readLoop so the
// live cluster behaves identically on sockets and channels: outbound
// payloads are encoded with a per-destination Encoder, inbound ones decoded
// with a per-source Decoder, and frames that cannot be expanded are dropped
// and counted instead of delivered. Safe for the same concurrency pattern
// as the endpoints it wraps (one sender loop, one receiver loop): encoder
// and decoder maps are guarded, and each per-link codec is only touched by
// the one goroutine driving that side.
type Compressor struct {
	ep  Endpoint
	cfg compress.Config
	// maxDim bounds the logical dimension an inbound compressed frame may
	// declare (0 = unbounded) — the same anti-amplification line as
	// TCPNode.SetCompression: a 12-byte top-k payload must not expand into
	// a 512 MiB vector on the receiver's behalf.
	maxDim int

	mu   sync.Mutex
	encs map[string]*compLink
	decs map[string]*compress.Decoder

	unnegotiated uint64
	malformed    uint64
	sink         atomic.Pointer[metrics.NodeMetrics]
}

// compLink is one outbound link's encoder plus the lock that pins encode
// order to delivery order. The fault injector above this wrapper may call
// Send from timer goroutines (delay spikes), and a delta stream whose wire
// order diverged from its encode order would desynchronise the receiver —
// the same reason TCPNode compresses under its connection write lock.
type compLink struct {
	mu  sync.Mutex
	enc *compress.Encoder
}

var _ Endpoint = (*Compressor)(nil)

// NewCompressor wraps ep. cfg must validate; maxDim bounds inbound declared
// dimensions (0 = no bound, typically the deployment's parameter count).
func NewCompressor(ep Endpoint, cfg compress.Config, maxDim int) (*Compressor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Compressor{
		ep:     ep,
		cfg:    cfg,
		maxDim: maxDim,
		encs:   make(map[string]*compLink),
		decs:   make(map[string]*compress.Decoder),
	}, nil
}

// ID implements Endpoint.
func (c *Compressor) ID() string { return c.ep.ID() }

// Close implements Endpoint.
func (c *Compressor) Close() error { return c.ep.Close() }

// SetMetrics attaches a live counter sink: every subsequent inbound
// drop is mirrored into its DroppedUnnegotiated / DroppedMalformed
// counters at increment time, matching the accounting the TCP
// transport's readLoop performs. A nil sink detaches.
func (c *Compressor) SetMetrics(sink *metrics.NodeMetrics) { c.sink.Store(sink) }

// DroppedUnnegotiated returns how many inbound compressed frames were
// dropped for carrying a scheme this wrapper cannot decode.
func (c *Compressor) DroppedUnnegotiated() uint64 { return atomic.LoadUint64(&c.unnegotiated) }

// DroppedMalformed returns how many inbound compressed frames were dropped
// because their payload failed to expand (structural garbage, a
// desynchronised delta stream, or an over-limit declared dimension).
func (c *Compressor) DroppedMalformed() uint64 { return atomic.LoadUint64(&c.malformed) }

// Reset discards every link's codec state, sender and receiver side.
// On TCP a redial replaces both per-connection codecs together; the
// in-process network has no connection to cycle, so a node rejoining
// from a checkpoint calls Reset instead — the next delta frame on
// every outbound link is an absolute keyframe, and inbound diff frames
// from pre-crash streams fail their reference check and are dropped
// (counted malformed) until the peer's next keyframe heals the stream.
func (c *Compressor) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, l := range c.encs {
		l.mu.Lock()
		l.enc.Reset()
		l.mu.Unlock()
	}
	for _, dec := range c.decs {
		dec.Reset()
	}
}

func (c *Compressor) linkFor(to string) *compLink {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.encs[to]
	if l == nil {
		l = &compLink{enc: compress.NewEncoder(c.cfg)}
		c.encs[to] = l
	}
	return l
}

func (c *Compressor) decoderFor(from string) *compress.Decoder {
	c.mu.Lock()
	defer c.mu.Unlock()
	dec := c.decs[from]
	if dec == nil {
		dec = compress.NewDecoder()
		c.decs[from] = dec
	}
	return dec
}

// Send implements Endpoint: the payload is compressed under the (this →
// to) link's encoder before the underlying endpoint ships it. Encode and
// delivery happen under the link lock, so the receiver reconstructs
// stateful streams in exactly the order they were encoded.
func (c *Compressor) Send(to string, m Message) error {
	if !c.cfg.Enabled() {
		return c.ep.Send(to, m)
	}
	l := c.linkFor(to)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := CompressMessage(l.enc, &m); err != nil {
		return fmt.Errorf("transport: compress to %s: %w", to, err)
	}
	return c.ep.Send(to, m)
}

// Recv implements Endpoint: compressed messages are expanded with the
// (from → this) link's decoder before delivery; frames that fail to expand
// are dropped, counted, and never surface to the caller — exactly the
// socket path's behaviour.
func (c *Compressor) Recv(timeout time.Duration) (Message, bool) {
	var deadline time.Time
	if timeout >= 0 {
		//lint:allow-clock Recv timeouts are wall-clock by contract; liveness never decides values
		deadline = time.Now().Add(timeout)
	}
	for {
		m, ok := c.ep.Recv(timeout)
		if !ok {
			return m, false
		}
		if c.acceptInbound(&m) {
			return m, true
		}
		if timeout >= 0 {
			//lint:allow-clock deadline bookkeeping for the wall-clock timeout above
			if timeout = time.Until(deadline); timeout < 0 {
				timeout = 0
			}
		}
	}
}

// acceptInbound expands a compressed message in place, counting drops.
func (c *Compressor) acceptInbound(m *Message) bool {
	if !m.IsCompressed() {
		return true
	}
	if !compress.Scheme(m.Comp.Scheme).Known() {
		atomic.AddUint64(&c.unnegotiated, 1)
		if s := c.sink.Load(); s != nil {
			s.DroppedUnnegotiated.Add(1)
		}
		return false
	}
	if c.maxDim > 0 && m.Comp.Dim > c.maxDim {
		atomic.AddUint64(&c.malformed, 1)
		if s := c.sink.Load(); s != nil {
			s.DroppedMalformed.Add(1)
		}
		return false
	}
	if err := DecompressMessage(c.decoderFor(m.From), m); err != nil {
		atomic.AddUint64(&c.malformed, 1)
		if s := c.sink.Load(); s != nil {
			s.DroppedMalformed.Add(1)
		}
		return false
	}
	return true
}
