package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPNode is a network endpoint backed by real TCP sockets. Messages are
// gob-encoded frames on long-lived connections — the repository's equivalent
// of the paper's gRPC/protobuf channels. Each node listens on its own
// address and lazily dials peers on first send.
//
// TCPNode satisfies Endpoint, so the live cluster runtime runs unmodified on
// top of either the in-process network or real sockets.
type TCPNode struct {
	id    string
	ln    net.Listener
	peers map[string]string // peer ID → dial address

	mu       sync.Mutex
	conns    map[string]*tcpConn
	accepted map[net.Conn]struct{}
	box      *Mailbox

	closed    chan struct{}
	closeOnce sync.Once
	readers   sync.WaitGroup
}

var _ Endpoint = (*TCPNode)(nil)

type tcpConn struct {
	mu  sync.Mutex // serialises encoder writes
	c   net.Conn
	enc *gob.Encoder
}

// ListenTCP starts a node listening on addr. peers maps every other node's
// ID to its dial address; the map is copied.
func ListenTCP(id, addr string, peers map[string]string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:       id,
		ln:       ln,
		peers:    make(map[string]string, len(peers)),
		conns:    make(map[string]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
		box:      NewMailbox(),
		closed:   make(chan struct{}),
	}
	for k, v := range peers {
		n.peers[k] = v
	}
	n.readers.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's bound listen address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// AddPeer registers (or updates) a peer's dial address after the node has
// started listening — the bootstrap pattern for ephemeral-port deployments
// where the address book only exists once every listener is up.
func (n *TCPNode) AddPeer(id, addr string) error {
	if id == n.id {
		return fmt.Errorf("transport: node %s cannot peer with itself", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = addr
	return nil
}

// ID implements Endpoint.
func (n *TCPNode) ID() string { return n.id }

// Send implements Endpoint: it gob-encodes m on a cached connection to the
// peer, dialing on first use.
func (n *TCPNode) Send(to string, m Message) error {
	m.From = n.id
	conn, err := n.conn(to)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if err := conn.enc.Encode(&m); err != nil {
		// Drop the broken connection so the next Send redials.
		n.dropConn(to, conn)
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	return nil
}

// Recv implements Endpoint.
func (n *TCPNode) Recv(timeout time.Duration) (Message, bool) {
	return n.box.Recv(timeout)
}

// Close implements Endpoint: it stops the listener, closes all connections,
// and waits for reader goroutines to exit. Safe for concurrent callers (a
// cancellation watcher may race a deferred cleanup).
func (n *TCPNode) Close() error {
	var err error
	n.closeOnce.Do(func() { err = n.close() })
	return err
}

func (n *TCPNode) close() error {
	close(n.closed)
	err := n.ln.Close()
	n.mu.Lock()
	for _, c := range n.conns {
		_ = c.c.Close()
	}
	n.conns = make(map[string]*tcpConn)
	// Accepted (inbound) connections must be closed too: their readLoops
	// block in gob Decode and would otherwise keep readers.Wait below —
	// and hence two nodes closing in sequence — deadlocked.
	for c := range n.accepted {
		_ = c.Close()
	}
	n.accepted = make(map[net.Conn]struct{})
	n.mu.Unlock()
	n.box.Close()
	n.readers.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

func (n *TCPNode) conn(to string) (*tcpConn, error) {
	n.mu.Lock()
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.peers[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %q", to)
	}

	// Dial outside the lock (concurrent sends to other peers must not wait
	// on this peer's connection setup), retrying with backoff: peers in a
	// fresh deployment come up in arbitrary order, so the first broadcast
	// of a round regularly races the receivers' listeners. Retrying here is
	// what a production RPC stack (the paper used gRPC) does transparently.
	var (
		raw     net.Conn
		err     error
		backoff = 50 * time.Millisecond
	)
	for attempt := 0; attempt < 8; attempt++ {
		raw, err = net.DialTimeout("tcp", addr, 5*time.Second)
		if err == nil {
			break
		}
		select {
		case <-n.closed:
			return nil, fmt.Errorf("transport: node closed while dialing %s", to)
		case <-time.After(backoff):
		}
		backoff *= 2
	}
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", to, addr, err)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.conns[to]; ok {
		// A concurrent Send won the race; keep its connection.
		_ = raw.Close()
		return c, nil
	}
	c := &tcpConn{c: raw, enc: gob.NewEncoder(raw)}
	n.conns[to] = c
	return c, nil
}

func (n *TCPNode) dropConn(to string, c *tcpConn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cur, ok := n.conns[to]; ok && cur == c {
		_ = c.c.Close()
		delete(n.conns, to)
	}
}

func (n *TCPNode) acceptLoop() {
	defer n.readers.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		n.accepted[conn] = struct{}{}
		n.mu.Unlock()
		n.readers.Add(1)
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.readers.Done()
	defer func() {
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return // peer closed or corrupt stream
		}
		select {
		case <-n.closed:
			return
		default:
		}
		n.box.Put(m)
	}
}
