package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compress"
	"repro/internal/metrics"
)

// TCPNode is a network endpoint backed by real TCP sockets. Messages are
// length-prefixed binary frames (see codec.go) on long-lived connections —
// the repository's equivalent of the paper's gRPC/protobuf channels, minus
// the reflection: encode and decode move raw little-endian float64 bits
// between []float64 and per-connection reusable buffers, so the wire path
// is allocation-free in steady state on the send side and allocates only
// the payload vector the receiver keeps on the read side.
//
// Every outbound connection opens with a hello frame naming the dialer;
// the accepting node pins all traffic on that connection to the hello
// identity and drops frames whose From field disagrees (see codec.go for
// why this matters to the quorum safety argument).
//
// TCPNode satisfies Endpoint, so the live cluster runtime runs unmodified on
// top of either the in-process network or real sockets.
type TCPNode struct {
	id    string
	ln    net.Listener
	peers map[string]string // peer ID → dial address

	mu       sync.Mutex
	conns    map[string]*tcpConn
	accepted map[net.Conn]struct{}
	box      *Mailbox
	comp     compress.Config // outbound compression; announced in the hello
	maxDim   int             // inbound declared-dimension bound (0 = none)

	// announce holds the roster fields this node puts in its own hellos
	// when dialing (zero = plain member, wire-identical to a v1/v2 hello);
	// admission, when non-nil, vets every inbound handshake.
	announce  Hello
	admission func(Hello) bool

	forged       uint64 // frames dropped for From ≠ hello identity
	unnegotiated uint64 // compressed frames dropped for an unannounced scheme
	malformed    uint64 // compressed frames dropped for an undecodable payload
	unadmitted   uint64 // hello handshakes rejected by the admission check

	// sink, when set, receives a live atomic mirror of the three TCP
	// hardening counters above (read per-frame in readLoop, hence the
	// atomic pointer) and is forwarded to the inbound mailbox.
	sink atomic.Pointer[metrics.NodeMetrics]

	closed    chan struct{}
	closeOnce sync.Once
	readers   sync.WaitGroup
}

var _ Endpoint = (*TCPNode)(nil)

// tcpConn is one outbound connection: the socket plus a reusable encode
// buffer, so steady-state sends write one frame with zero allocations. When
// the node compresses, the connection also owns the link's payload encoder
// and a second reusable buffer for the encoded payload — per-connection
// state, so a redial resets the sender's delta/error-feedback streams
// exactly when the accepting readLoop (and its decoder) is replaced.
type tcpConn struct {
	mu   sync.Mutex // serialises frame writes
	c    net.Conn
	buf  []byte // reused frame staging; owned by the connection
	enc  *compress.Encoder
	cbuf []byte // reused compressed-payload staging
}

// ListenTCP starts a node listening on addr. peers maps every other node's
// ID to its dial address; the map is copied.
func ListenTCP(id, addr string, peers map[string]string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:       id,
		ln:       ln,
		peers:    make(map[string]string, len(peers)),
		conns:    make(map[string]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
		box:      NewMailbox(),
		closed:   make(chan struct{}),
	}
	for k, v := range peers {
		n.peers[k] = v
	}
	n.readers.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's bound listen address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// AddPeer registers (or updates) a peer's dial address after the node has
// started listening — the bootstrap pattern for ephemeral-port deployments
// where the address book only exists once every listener is up.
func (n *TCPNode) AddPeer(id, addr string) error {
	if id == n.id {
		return fmt.Errorf("transport: node %s cannot peer with itself", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = addr
	return nil
}

// ID implements Endpoint.
func (n *TCPNode) ID() string { return n.id }

// ForgedDropped returns how many inbound frames were dropped because their
// From field disagreed with the connection's hello identity. Exposed for
// tests and monitoring.
func (n *TCPNode) ForgedDropped() uint64 { return atomic.LoadUint64(&n.forged) }

// DroppedUnnegotiated returns how many inbound compressed frames were
// dropped because their scheme was not announced in the connection's hello
// (or is unknown to this build). Negotiation is announce-then-use: a peer
// that skipped the capability bit does not get to ship the scheme.
func (n *TCPNode) DroppedUnnegotiated() uint64 { return atomic.LoadUint64(&n.unnegotiated) }

// DroppedMalformed returns how many inbound compressed frames were dropped
// because their payload failed to expand: structural garbage, a
// desynchronised delta stream, or a declared dimension above the
// SetCompression bound.
func (n *TCPNode) DroppedMalformed() uint64 { return atomic.LoadUint64(&n.malformed) }

// DroppedUnadmitted returns how many inbound hello handshakes the
// admission check rejected — the whole connection is refused, so this
// counts peers turned away at the door, not individual frames.
func (n *TCPNode) DroppedUnadmitted() uint64 { return atomic.LoadUint64(&n.unadmitted) }

// DroppedOverflow returns how many inbound frames the bounded mailbox
// discarded under a drop policy (see SetMailbox).
func (n *TCPNode) DroppedOverflow() uint64 { return n.box.DroppedOverflow() }

// DroppedClosed returns how many inbound frames arrived after Close and
// were discarded by the mailbox — frames that raced the node's shutdown.
func (n *TCPNode) DroppedClosed() uint64 { return n.box.DroppedClosed() }

// SetMetrics attaches a live counter sink: the TCP hardening drops
// (forged, unnegotiated, malformed) and the inbound mailbox's drops
// and depth are mirrored into it from then on. Like SetCompression,
// call it between ListenTCP and traffic for complete counts.
func (n *TCPNode) SetMetrics(sink *metrics.NodeMetrics) {
	n.sink.Store(sink)
	n.box.SetMetrics(sink, false)
}

// SetMailbox bounds the node's inbound mailbox per sender. With
// Backpressure, a full per-sender queue blocks that connection's readLoop:
// the socket stops being read, the kernel window fills, and the remote's
// Send blocks — flow control per connection, exactly as a production RPC
// channel behaves, never cluster-wide. With a drop policy the readLoop
// keeps draining the socket and the mailbox sheds that sender's frames,
// counted under DroppedOverflow. The zero config restores the unbounded
// mailbox. Like SetCompression, call it between ListenTCP and traffic.
func (n *TCPNode) SetMailbox(cfg MailboxConfig) error { return n.box.SetConfig(cfg) }

// SetCompression configures outbound payload compression and the inbound
// declared-dimension bound. Call it after ListenTCP and before the first
// Send: the capability mask rides the hello frame, so connections opened
// earlier announced nothing and their peers will drop compressed frames as
// un-negotiated. cfg must validate; the `none` config leaves the node
// wire-identical to one that never called SetCompression (legacy hello,
// plain frames).
//
// maxDim (0 = unbounded) caps the logical dimension an inbound compressed
// frame may declare before the decoder allocates its expansion — pass the
// deployment's parameter count. Without the bound, a 12-byte top-k payload
// claiming 2²⁶ coordinates would cost the receiver a 512 MiB vector; with
// it, expansion is capped by the model the node actually trains.
func (n *TCPNode) SetCompression(cfg compress.Config, maxDim int) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if maxDim < 0 {
		return fmt.Errorf("transport: negative compression dimension bound %d", maxDim)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.comp = cfg
	n.maxDim = maxDim
	return nil
}

// SetAdmission installs the inbound handshake check: every accepted
// connection's hello is passed to it, and a false verdict closes the
// connection before a single frame is read (counted DroppedUnadmitted).
// This is the sender-auth check extended to membership — the roster
// decides who may hold a connection at all, not just what a held
// connection may claim. A nil check admits everyone (the fixed-roster
// default). Call it between ListenTCP and traffic; connections accepted
// earlier were vetted by the check in force at their handshake.
func (n *TCPNode) SetAdmission(check func(Hello) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.admission = check
}

// SetHelloRoster sets the roster announcement this node carries in its own
// hellos from the next dial on: a rejoining or newly joining node states
// its intent and effective step so receivers can admit it against their
// roster. The zero announcement restores the plain member hello
// (wire-identical to v1/v2). Existing connections are not re-helloed.
func (n *TCPNode) SetHelloRoster(intent RosterIntent, effectiveStep int, replaces string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.announce = Hello{Intent: intent, EffectiveStep: effectiveStep, Replaces: replaces}
}

// Send implements Endpoint: it frames m into the connection's reusable
// buffer and writes it, dialing (and helloing) on first use. m is only read
// during the call — serialisation is the snapshot, so the caller may keep
// mutating m.Vec afterwards.
func (n *TCPNode) Send(to string, m Message) error {
	m.From = n.id
	conn, err := n.conn(to)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if conn.enc != nil && !m.IsCompressed() && len(m.Vec) > 0 {
		// Compress under the connection lock: the encoder's per-stream state
		// must advance in the exact order frames hit the wire, or a receiver
		// reconstructing delta streams in arrival order would desynchronise.
		data, err := conn.enc.Encode(conn.cbuf[:0], uint8(m.Kind), int64(m.Step), m.Shard.Offset, m.Vec)
		if err != nil {
			return fmt.Errorf("transport: compress to %s: %w", to, err)
		}
		conn.cbuf = data
		m.Comp = CompMeta{Scheme: uint8(conn.enc.Config().Scheme), Dim: len(m.Vec), Data: data}
		m.Vec = nil
	}
	buf, err := AppendMessage(conn.buf[:0], &m)
	conn.buf = buf[:0] // keep grown capacity for the next frame
	if err != nil {
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	if _, err := conn.c.Write(buf); err != nil {
		// Drop the broken connection so the next Send redials.
		n.dropConn(to, conn)
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	return nil
}

// Recv implements Endpoint.
func (n *TCPNode) Recv(timeout time.Duration) (Message, bool) {
	return n.box.Recv(timeout)
}

// Close implements Endpoint: it stops the listener, closes all connections,
// and waits for reader goroutines to exit. Safe for concurrent callers (a
// cancellation watcher may race a deferred cleanup).
func (n *TCPNode) Close() error {
	var err error
	n.closeOnce.Do(func() { err = n.close() })
	return err
}

func (n *TCPNode) close() error {
	close(n.closed)
	err := n.ln.Close()
	n.mu.Lock()
	for _, c := range n.conns {
		_ = c.c.Close()
	}
	n.conns = make(map[string]*tcpConn)
	// Accepted (inbound) connections must be closed too: their readLoops
	// block reading the next frame and would otherwise keep readers.Wait
	// below — and hence two nodes closing in sequence — deadlocked.
	for c := range n.accepted {
		_ = c.Close()
	}
	n.accepted = make(map[net.Conn]struct{})
	n.mu.Unlock()
	n.box.Close()
	n.readers.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

func (n *TCPNode) conn(to string) (*tcpConn, error) {
	n.mu.Lock()
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.peers[to]
	comp := n.comp
	announce := n.announce
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %q", to)
	}

	// Dial outside the lock (concurrent sends to other peers must not wait
	// on this peer's connection setup), retrying with backoff: peers in a
	// fresh deployment come up in arbitrary order, so the first broadcast
	// of a round regularly races the receivers' listeners. Retrying here is
	// what a production RPC stack (the paper used gRPC) does transparently.
	var (
		raw     net.Conn
		err     error
		backoff = 50 * time.Millisecond
	)
	for attempt := 0; attempt < 8; attempt++ {
		raw, err = net.DialTimeout("tcp", addr, 5*time.Second)
		if err == nil {
			break
		}
		select {
		case <-n.closed:
			return nil, fmt.Errorf("transport: node closed while dialing %s", to)
		case <-time.After(backoff):
		}
		backoff *= 2
	}
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", to, addr, err)
	}

	// Authenticate the connection before it carries any message: the hello
	// frame binds everything that follows to this node's identity and
	// announces which compression schemes it may use — plus, when set, the
	// node's roster intent (join/leave/replace at a step boundary).
	announce.ID = n.id
	announce.Caps = comp.CapMask()
	hello, err := AppendHelloRoster(nil, announce)
	if err == nil {
		_, err = raw.Write(hello)
	}
	if err != nil {
		_ = raw.Close()
		return nil, fmt.Errorf("transport: hello %s (%s): %w", to, addr, err)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.conns[to]; ok {
		// A concurrent Send won the race; keep its connection.
		_ = raw.Close()
		return c, nil
	}
	c := &tcpConn{c: raw}
	if comp.Enabled() {
		c.enc = compress.NewEncoder(comp)
	}
	n.conns[to] = c
	return c, nil
}

func (n *TCPNode) dropConn(to string, c *tcpConn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cur, ok := n.conns[to]; ok && cur == c {
		_ = c.c.Close()
		delete(n.conns, to)
	}
}

func (n *TCPNode) acceptLoop() {
	defer n.readers.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		n.accepted[conn] = struct{}{}
		n.mu.Unlock()
		n.readers.Add(1)
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.readers.Done()
	defer func() {
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 1<<16)
	// The connection speaks only after identifying itself; a stream that
	// cannot produce a well-formed hello is not a peer.
	hello, err := readHello(br)
	if err != nil {
		return
	}
	n.mu.Lock()
	admission := n.admission
	n.mu.Unlock()
	if admission != nil && !admission(hello) {
		// Un-admitted identity or refused roster intent: the connection is
		// closed at the handshake, before any frame can cost buffer space.
		atomic.AddUint64(&n.unadmitted, 1)
		if s := n.sink.Load(); s != nil {
			s.DroppedUnadmitted.Add(1)
		}
		return
	}
	peer, caps := hello.ID, hello.Caps
	// The decoder is per accepted connection, like the sender's encoder is
	// per outbound connection: a redial replaces both together, so delta
	// reference state never straddles a reconnect.
	var dec *compress.Decoder
	var scratch []byte
	for {
		var m Message
		if err := ReadMessage(br, &scratch, &m); err != nil {
			return // peer closed or corrupt stream
		}
		select {
		case <-n.closed:
			return
		default:
		}
		if m.From != peer {
			// Forged sender: the frame claims an identity other than the
			// one this connection authenticated as. Dropping it is what
			// keeps per-sender quorum dedup meaningful.
			atomic.AddUint64(&n.forged, 1)
			if s := n.sink.Load(); s != nil {
				s.ForgedDropped.Add(1)
			}
			continue
		}
		if m.IsCompressed() {
			s := compress.Scheme(m.Comp.Scheme)
			if !s.Known() || s.Bit()&caps == 0 {
				// Announce-then-use: a scheme the hello did not claim (or
				// that this build cannot decode) is not negotiated.
				atomic.AddUint64(&n.unnegotiated, 1)
				if s := n.sink.Load(); s != nil {
					s.DroppedUnnegotiated.Add(1)
				}
				continue
			}
			n.mu.Lock()
			maxDim := n.maxDim
			n.mu.Unlock()
			if maxDim > 0 && m.Comp.Dim > maxDim {
				atomic.AddUint64(&n.malformed, 1)
				if s := n.sink.Load(); s != nil {
					s.DroppedMalformed.Add(1)
				}
				continue
			}
			if dec == nil {
				dec = compress.NewDecoder()
			}
			if err := DecompressMessage(dec, &m); err != nil {
				atomic.AddUint64(&n.malformed, 1)
				if s := n.sink.Load(); s != nil {
					s.DroppedMalformed.Add(1)
				}
				continue
			}
		}
		n.box.Put(m)
	}
}
