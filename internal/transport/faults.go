package transport

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// FaultConfig parameterises seeded network fault injection. The zero value
// injects nothing. All decisions derive from pure hashes of
// (Seed, step, from, to), never from shared generator state, so a fault
// schedule is bit-identical across reruns, across runtimes, and at any
// parallelism.
//
// The same configuration drives two faces:
//
//   - the deterministic simulator transforms per-message arrival times
//     (Arrival): drops and partition cuts become +Inf arrivals the quorum
//     discipline must absorb, delay spikes push arrivals out;
//   - the live runtimes wrap a node's transport.Endpoint (Wrap): sends are
//     really dropped, duplicated, held back behind a later message
//     (reordering), or delivered after a wall-clock spike.
//
// Duplication is live-only (the simulator's quorum arithmetic dedups by
// construction) and reordering is live-only (the simulator has no FIFO to
// violate — ordering already emerges from sampled arrival times). Faults
// apply to honest traffic: the Byzantine nodes' covert network is ideal by
// assumption, so handing their messages to the injector would weaken the
// adversary.
type FaultConfig struct {
	// Seed drives every fault decision.
	Seed uint64
	// Drop is the per-message loss probability.
	Drop float64
	// Duplicate is the per-message duplication probability (live only).
	Duplicate float64
	// Reorder is the probability a message is held back and delivered
	// after the sender's next message to the same destination (live only).
	Reorder float64
	// DelayRate is the probability of a latency spike on a message.
	DelayRate float64
	// DelaySpike is the spike magnitude upper bound in seconds (virtual
	// seconds in the simulator, wall seconds live); the spike drawn is
	// uniform in (0, DelaySpike].
	DelaySpike float64
	// PartitionEvery opens a temporary network partition every this many
	// steps (0 = never): nodes are split into two camps by name hash and
	// cross-camp messages are cut while the partition lasts.
	PartitionEvery int
	// PartitionFor is the partition duration in steps (default 1 when a
	// partition period is set).
	PartitionFor int
}

// Enabled reports whether the configuration injects any fault at all.
func (c FaultConfig) Enabled() bool {
	return c.Drop > 0 || c.Duplicate > 0 || c.Reorder > 0 ||
		(c.DelayRate > 0 && c.DelaySpike > 0) || c.PartitionEvery > 0
}

// String renders the active fault terms for logs and experiment tables.
func (c FaultConfig) String() string {
	if !c.Enabled() {
		return "none"
	}
	out := ""
	add := func(s string) {
		if out != "" {
			out += ","
		}
		out += s
	}
	if c.Drop > 0 {
		add(fmt.Sprintf("drop=%g", c.Drop))
	}
	if c.Duplicate > 0 {
		add(fmt.Sprintf("dup=%g", c.Duplicate))
	}
	if c.Reorder > 0 {
		add(fmt.Sprintf("reorder=%g", c.Reorder))
	}
	if c.DelayRate > 0 && c.DelaySpike > 0 {
		add(fmt.Sprintf("delay=%g×%gs", c.DelayRate, c.DelaySpike))
	}
	if c.PartitionEvery > 0 {
		add(fmt.Sprintf("partition=%d/%d", c.partitionFor(), c.PartitionEvery))
	}
	return out
}

func (c FaultConfig) partitionFor() int {
	if c.PartitionFor <= 0 {
		return 1
	}
	return c.PartitionFor
}

// FaultInjector applies a FaultConfig to message traffic. Nil receivers are
// valid no-ops, so call sites need no guards.
type FaultInjector struct {
	cfg FaultConfig
}

// NewFaultInjector builds an injector, or nil when the configuration
// injects nothing.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if !cfg.Enabled() {
		return nil
	}
	return &FaultInjector{cfg: cfg}
}

// Config returns the injector's configuration (zero value when nil).
func (f *FaultInjector) Config() FaultConfig {
	if f == nil {
		return FaultConfig{}
	}
	return f.cfg
}

// decision is the fate of one message.
type decision struct {
	drop    bool
	dup     bool
	reorder bool
	delay   float64 // seconds, 0 = none
}

// decide derives the message's fate from (seed, step, from, to, shard). One
// generator is seeded from the tuple hash and consumed in a fixed draw
// order, so every face of the injector sees the same schedule. Chunk
// frames salt the hash with their shard index: each shard of a streamed
// vector is dropped, duplicated, reordered or delayed independently — a
// strictly richer fault surface than whole-vector injection, which the
// reassembly and incremental-quorum paths must absorb. Whole-vector
// messages use salt 0, so their schedule is unchanged by the existence of
// sharding.
func (f *FaultInjector) decide(step int, from, to string, shard ShardMeta) decision {
	salt := uint64(0)
	if shard.Count > 0 {
		salt = uint64(shard.Index) + 1
	}
	h := faultMix(f.cfg.Seed, uint64(step)+0x9e37, faultHash(from)^faultMix(0x85eb, faultHash(to), salt))
	rng := newFaultRNG(h)
	var d decision
	d.drop = rng.uniform() < f.cfg.Drop
	d.dup = rng.uniform() < f.cfg.Duplicate
	d.reorder = rng.uniform() < f.cfg.Reorder
	if rng.uniform() < f.cfg.DelayRate {
		d.delay = rng.uniform() * f.cfg.DelaySpike
	}
	return d
}

// Partitioned reports whether the (from, to) link is cut at the given step
// by a temporary partition window.
func (f *FaultInjector) Partitioned(step int, from, to string) bool {
	if f == nil || f.cfg.PartitionEvery <= 0 {
		return false
	}
	every, dur := f.cfg.PartitionEvery, f.cfg.partitionFor()
	if dur >= every {
		dur = every - 1 // a permanent partition is a misconfiguration; heal each cycle
	}
	if step%every < every-dur {
		return false
	}
	window := step / every
	sideA := (faultMix(f.cfg.Seed, uint64(window)+1, faultHash(from)) & 1) == 0
	sideB := (faultMix(f.cfg.Seed, uint64(window)+1, faultHash(to)) & 1) == 0
	return sideA != sideB
}

// Arrival is the simulator face: given a message's computed arrival time
// (virtual seconds), it returns the faulted arrival — +Inf when the message
// is dropped or cut by a partition, arrival plus the spike otherwise.
func (f *FaultInjector) Arrival(step int, from, to string, arrival float64) float64 {
	if f == nil {
		return arrival
	}
	if f.Partitioned(step, from, to) {
		return math.Inf(1)
	}
	// The simulator models whole vectors only, so its schedule is the
	// salt-0 one.
	d := f.decide(step, from, to, ShardMeta{})
	if d.drop {
		return math.Inf(1)
	}
	return arrival + d.delay
}

// Wrap is the live face: it returns an Endpoint whose Send passes every
// message through the injector. Decisions key on the message's protocol
// Step, so a live schedule mirrors the simulator's for the same seed.
func (f *FaultInjector) Wrap(ep Endpoint) Endpoint {
	if f == nil {
		return ep
	}
	return &faultEndpoint{inner: ep, inj: f, held: make(map[string]Message)}
}

// faultEndpoint injects faults on the send path. Receives are untouched:
// every fault is modelled at the sending link, which keeps the decision
// schedule identical to the simulator's sender-keyed hashing.
type faultEndpoint struct {
	inner Endpoint
	inj   *FaultInjector

	mu     sync.Mutex
	held   map[string]Message // per-destination message awaiting reordering
	timers sync.WaitGroup     // in-flight delay-spiked deliveries
}

var _ Endpoint = (*faultEndpoint)(nil)

// ID implements Endpoint.
func (e *faultEndpoint) ID() string { return e.inner.ID() }

// Recv implements Endpoint.
func (e *faultEndpoint) Recv(timeout time.Duration) (Message, bool) {
	return e.inner.Recv(timeout)
}

// Send implements Endpoint. Dropped messages report success — loss is
// silent, exactly as on a real network.
func (e *faultEndpoint) Send(to string, m Message) error {
	if e.inj.Partitioned(m.Step, e.inner.ID(), to) {
		e.flushHeld(to) // the held message predates the cut; release it
		return nil
	}
	d := e.inj.decide(m.Step, e.inner.ID(), to, m.Shard)
	if d.drop {
		return nil
	}
	if d.delay > 0 {
		// Deferred deliveries must snapshot the payload NOW: the transport
		// contract is immutability from the Send boundary on, and the
		// sender keeps mutating its parameter vector in place while the
		// timer runs.
		delayed := m.Clone()
		e.timers.Add(1)
		time.AfterFunc(time.Duration(d.delay*float64(time.Second)), func() {
			defer e.timers.Done()
			_ = e.inner.Send(to, delayed)
		})
		e.flushHeld(to)
		return nil
	}
	if d.reorder {
		e.mu.Lock()
		_, busy := e.held[to]
		if !busy {
			e.held[to] = m.Clone() // held past the Send boundary: snapshot
			e.mu.Unlock()
			return nil // delivered behind the sender's next message to `to`
		}
		e.mu.Unlock()
	}
	err := e.inner.Send(to, m)
	if d.dup {
		_ = e.inner.Send(to, m)
	}
	e.flushHeld(to)
	return err
}

// flushHeld releases the held message for a destination, delivering it
// after whatever message triggered the flush — the reordering.
func (e *faultEndpoint) flushHeld(to string) {
	e.mu.Lock()
	m, ok := e.held[to]
	if ok {
		delete(e.held, to)
	}
	e.mu.Unlock()
	if ok {
		_ = e.inner.Send(to, m)
	}
}

// Close implements Endpoint: held messages are released and in-flight
// delayed deliveries complete (a delay must degrade into a late message,
// never into a silent loss — a node that exits right after its last send
// would otherwise turn every trailing spike into a drop and starve its
// peers' quorums), then the inner endpoint is closed. The wait is bounded
// by DelaySpike.
func (e *faultEndpoint) Close() error {
	e.mu.Lock()
	held := e.held
	e.held = make(map[string]Message)
	e.mu.Unlock()
	for to, m := range held {
		_ = e.inner.Send(to, m)
	}
	e.timers.Wait()
	return e.inner.Close()
}

// faultRNG is a splitmix64 stream — cheap, seedable from a hash, and
// consumed in fixed draw order for deterministic decisions.
type faultRNG struct{ s uint64 }

func newFaultRNG(seed uint64) *faultRNG { return &faultRNG{s: seed} }

func (r *faultRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *faultRNG) uniform() float64 { return float64(r.next()>>11) / (1 << 53) }

// faultHash is FNV-1a over a node name.
func faultHash(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// faultMix folds three words into one seed (splitmix64 finaliser).
func faultMix(a, b, c uint64) uint64 {
	x := a ^ (b * 0x9e3779b97f4a7c15) ^ (c * 0xbf58476d1ce4e5b9)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Named fault profiles, selectable as "name" or "name:k=v,...". They are
// the fault-side mirror of the attack registry: the -faults flags and the
// scenario-matrix experiment arm them by string.
var faultProfiles = map[string]struct {
	defaults map[string]float64
	build    func(p map[string]float64, seed uint64) FaultConfig
}{
	"none": {
		build: func(map[string]float64, uint64) FaultConfig { return FaultConfig{} },
	},
	"drop": {
		defaults: map[string]float64{"p": 0.02},
		build: func(p map[string]float64, seed uint64) FaultConfig {
			return FaultConfig{Seed: seed, Drop: p["p"]}
		},
	},
	"dup": {
		defaults: map[string]float64{"p": 0.05},
		build: func(p map[string]float64, seed uint64) FaultConfig {
			return FaultConfig{Seed: seed, Duplicate: p["p"]}
		},
	},
	"reorder": {
		defaults: map[string]float64{"p": 0.1},
		build: func(p map[string]float64, seed uint64) FaultConfig {
			return FaultConfig{Seed: seed, Reorder: p["p"]}
		},
	},
	"delay": {
		defaults: map[string]float64{"p": 0.1, "spike": 0.005},
		build: func(p map[string]float64, seed uint64) FaultConfig {
			return FaultConfig{Seed: seed, DelayRate: p["p"], DelaySpike: p["spike"]}
		},
	},
	"partition": {
		defaults: map[string]float64{"every": 25, "for": 2},
		build: func(p map[string]float64, seed uint64) FaultConfig {
			return FaultConfig{Seed: seed,
				PartitionEvery: int(p["every"]), PartitionFor: int(p["for"])}
		},
	},
	"flaky": {
		defaults: map[string]float64{},
		build: func(_ map[string]float64, seed uint64) FaultConfig {
			return FaultConfig{Seed: seed, Drop: 0.01, Duplicate: 0.02,
				Reorder: 0.05, DelayRate: 0.05, DelaySpike: 0.002}
		},
	},
	"chaos": {
		defaults: map[string]float64{},
		build: func(_ map[string]float64, seed uint64) FaultConfig {
			return FaultConfig{Seed: seed, Drop: 0.03, Duplicate: 0.05,
				Reorder: 0.1, DelayRate: 0.1, DelaySpike: 0.005}
		},
	},
}

// FaultNames lists the registered fault-profile names, sorted.
func FaultNames() []string {
	names := make([]string, 0, len(faultProfiles))
	for name := range faultProfiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FaultByName builds the named fault profile with parameter overrides
// (already split by the caller; see attack.ParseSpec for the spec syntax).
func FaultByName(name string, params map[string]float64, seed uint64) (FaultConfig, error) {
	p, ok := faultProfiles[name]
	if !ok {
		return FaultConfig{}, fmt.Errorf("transport: unknown fault profile %q (known: %v)",
			name, FaultNames())
	}
	merged := make(map[string]float64, len(p.defaults))
	for k, v := range p.defaults {
		merged[k] = v
	}
	for k, v := range params {
		if _, ok := p.defaults[k]; !ok {
			keys := make([]string, 0, len(p.defaults))
			for dk := range p.defaults {
				keys = append(keys, dk)
			}
			sort.Strings(keys)
			return FaultConfig{}, fmt.Errorf("transport: fault profile %s: unknown parameter %q (accepted: %v)",
				name, k, keys)
		}
		merged[k] = v
	}
	return p.build(merged, seed), nil
}
