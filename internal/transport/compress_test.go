package transport

import (
	"bytes"
	"encoding/binary"
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/tensor"
)

// The pre-compression wire format, pinned byte-for-byte: a node configured
// with `none` compression must emit exactly these frames (and the legacy v1
// hello, pinned in TestHelloRoundTrip), so enabling the compression
// subsystem without opting in changes nothing on the wire.
func TestWireGoldenPlainFrames(t *testing.T) {
	plain := Message{From: "ps0", Kind: KindParams, Step: 2, Vec: tensor.Vector{1, -0.5}}
	wantPlain := []byte{
		0x01,                      // kind = params, no flags
		0x02, 0, 0, 0, 0, 0, 0, 0, // step = 2
		0x03, 0, // from-len = 3
		0x02, 0, 0, 0, // vec-len = 2
		'p', 's', '0', // sender
		0, 0, 0, 0, 0, 0, 0xf0, 0x3f, // 1.0
		0, 0, 0, 0, 0, 0, 0xe0, 0xbf, // -0.5
	}
	if got := mustEncode(t, plain); !bytes.Equal(got, wantPlain) {
		t.Fatalf("plain frame drifted:\n got %x\nwant %x", got, wantPlain)
	}
	chunk := Message{From: "wrk1", Kind: KindGradient, Step: 7, Vec: tensor.Vector{2},
		Shard: ShardMeta{Index: 1, Count: 3, Offset: 5}}
	wantChunk := []byte{
		0x82,                      // kind = gradient | chunk flag
		0x07, 0, 0, 0, 0, 0, 0, 0, // step = 7
		0x04, 0, // from-len = 4
		0x01, 0, 0, 0, // vec-len = 1
		0x01, 0, // shard index = 1
		0x03, 0, // shard count = 3
		0x05, 0, 0, 0, // shard offset = 5
		'w', 'r', 'k', '1',
		0, 0, 0, 0, 0, 0, 0, 0x40, // 2.0
	}
	if got := mustEncode(t, chunk); !bytes.Equal(got, wantChunk) {
		t.Fatalf("chunk frame drifted:\n got %x\nwant %x", got, wantChunk)
	}
}

// Compressed frames round-trip bijectively through both decoder faces, with
// and without the shard extension, and the extension lands where the spec
// says it does.
func TestCompressedFrameRoundTrip(t *testing.T) {
	payload := []byte{9, 8, 7, 6, 5}
	msgs := []Message{
		{From: "wrk0", Kind: KindGradient, Step: 3,
			Comp: CompMeta{Scheme: uint8(compress.TopK), Dim: 40, Data: payload}},
		{From: "wrk0", Kind: KindGradient, Step: 3,
			Shard: ShardMeta{Index: 2, Count: 4, Offset: 80},
			Comp:  CompMeta{Scheme: uint8(compress.Delta), Dim: 40, Data: payload}},
	}
	for i, m := range msgs {
		frame := mustEncode(t, m)
		if len(frame) != EncodedSize(&m) {
			t.Fatalf("msg %d: frame %d bytes, EncodedSize %d", i, len(frame), EncodedSize(&m))
		}
		extOff := FrameHeaderSize
		wantKind := byte(m.Kind) | compFlag
		if m.IsShard() {
			extOff += ShardHeaderSize
			wantKind |= chunkFlag
		}
		if frame[0] != wantKind {
			t.Fatalf("msg %d: kind byte %#x, want %#x", i, frame[0], wantKind)
		}
		if frame[extOff] != m.Comp.Scheme {
			t.Fatalf("msg %d: scheme byte %d at %d, want %d", i, frame[extOff], extOff, m.Comp.Scheme)
		}
		if got := binary.LittleEndian.Uint32(frame[extOff+1:]); got != uint32(len(payload)) {
			t.Fatalf("msg %d: enc-len %d, want %d", i, got, len(payload))
		}
		if got := binary.LittleEndian.Uint32(frame[11:]); got != uint32(m.Comp.Dim) {
			t.Fatalf("msg %d: vec-len %d, want Dim %d", i, got, m.Comp.Dim)
		}
		var viaSlice Message
		n, err := DecodeMessage(frame, &viaSlice)
		if err != nil || n != len(frame) {
			t.Fatalf("msg %d: DecodeMessage = %d, %v", i, n, err)
		}
		var viaStream Message
		var scratch []byte
		if err := ReadMessage(bytes.NewReader(frame), &scratch, &viaStream); err != nil {
			t.Fatalf("msg %d: ReadMessage: %v", i, err)
		}
		for name, got := range map[string]Message{"slice": viaSlice, "stream": viaStream} {
			if got.From != m.From || got.Kind != m.Kind || got.Step != m.Step ||
				got.Shard != m.Shard || len(got.Vec) != 0 ||
				got.Comp.Scheme != m.Comp.Scheme || got.Comp.Dim != m.Comp.Dim ||
				!bytes.Equal(got.Comp.Data, m.Comp.Data) {
				t.Fatalf("msg %d: %s decode = %+v, want %+v", i, name, got, m)
			}
		}
		again := mustEncode(t, viaSlice)
		if !bytes.Equal(again, frame) {
			t.Fatalf("msg %d: re-encode changed the frame", i)
		}
	}
}

// The encoder refuses frames no receiver would accept: a payload over the
// declared range's byte bound, a zero dimension, raw coordinates alongside
// a compressed payload.
func TestCompressedFrameEncodeRejections(t *testing.T) {
	bad := []Message{
		{From: "a", Kind: KindGradient, Comp: CompMeta{Scheme: 1, Dim: 1, Data: make([]byte, 8+MaxCompSlack+1)}},
		{From: "a", Kind: KindGradient, Comp: CompMeta{Scheme: 1, Dim: 0, Data: []byte{1}}},
		{From: "a", Kind: KindGradient, Vec: tensor.Vector{1}, Comp: CompMeta{Scheme: 1, Dim: 1, Data: []byte{1}}},
	}
	for i := range bad {
		if _, err := AppendMessage(nil, &bad[i]); err == nil {
			t.Fatalf("message %d encoded", i)
		}
	}
}

// sendRecvTCP ships a deterministic multi-step, multi-kind, sharded and
// whole-vector sequence from one TCP node to another and returns the
// messages in arrival order.
func sendRecvTCP(t *testing.T, cfg compress.Config, maxDim int) []Message {
	t.Helper()
	srv, err := ListenTCP("srv", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.SetCompression(compress.Config{}, maxDim); err != nil {
		t.Fatal(err)
	}
	wrk, err := ListenTCP("wrk", "127.0.0.1:0", map[string]string{"srv": srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer wrk.Close()
	if err := wrk.SetCompression(cfg, 0); err != nil {
		t.Fatal(err)
	}
	msgs := compressTestSequence()
	for i := range msgs {
		if err := wrk.Send("srv", msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]Message, 0, len(msgs))
	for range msgs {
		m, ok := srv.Recv(5 * time.Second)
		if !ok {
			t.Fatalf("timed out after %d messages (unnegotiated=%d malformed=%d)",
				len(out), srv.DroppedUnnegotiated(), srv.DroppedMalformed())
		}
		out = append(out, m)
	}
	if n := srv.DroppedUnnegotiated() + srv.DroppedMalformed(); n != 0 {
		t.Fatalf("%d honest frames dropped", n)
	}
	return out
}

// compressTestSequence is a fixed traffic pattern: 6 steps of a whole
// params vector plus two gradient shards, dimensions chosen to exercise
// every scheme's stream separation.
func compressTestSequence() []Message {
	rng := tensor.NewRNG(99)
	var msgs []Message
	for step := 0; step < 6; step++ {
		msgs = append(msgs, Message{Kind: KindParams, Step: step,
			Vec: rng.NormVec(make(tensor.Vector, 32), 0, 1)})
		for sh := 0; sh < 2; sh++ {
			msgs = append(msgs, Message{Kind: KindGradient, Step: step,
				Shard: ShardMeta{Index: sh, Count: 2, Offset: 16 * sh},
				Vec:   rng.NormVec(make(tensor.Vector, 16), 0, 1)})
		}
	}
	return msgs
}

// Every scheme delivers over real sockets exactly what a reference
// encoder/decoder pair produces: the transport adds negotiation and
// framing, never different numbers.
func TestTCPCompressedDeliveryMatchesReference(t *testing.T) {
	for _, spec := range []string{"float32", "delta:key=3", "topk:k=0.2"} {
		cfg, err := compress.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		got := sendRecvTCP(t, cfg, 64)
		msgs := compressTestSequence()
		enc := compress.NewEncoder(cfg)
		dec := compress.NewDecoder()
		if len(got) != len(msgs) {
			t.Fatalf("%s: %d messages, want %d", spec, len(got), len(msgs))
		}
		for i, m := range msgs {
			payload, err := enc.Encode(nil, uint8(m.Kind), int64(m.Step), m.Shard.Offset, m.Vec)
			if err != nil {
				t.Fatal(err)
			}
			want, err := dec.Decode(cfg.Scheme, uint8(m.Kind), int64(m.Step), m.Shard.Offset,
				len(m.Vec), payload, nil)
			if err != nil {
				t.Fatal(err)
			}
			g := got[i]
			if g.From != "wrk" || g.Kind != m.Kind || g.Step != m.Step || g.Shard != m.Shard ||
				g.IsCompressed() || len(g.Vec) != len(want) {
				t.Fatalf("%s: message %d arrived as %+v", spec, i, g)
			}
			for j := range want {
				if math.Float64bits(g.Vec[j]) != math.Float64bits(want[j]) {
					t.Fatalf("%s: message %d coordinate %d: got %v, want %v",
						spec, i, j, g.Vec[j], want[j])
				}
			}
		}
	}
}

// `none` over TCP still delivers plainly and counts nothing — the
// subsystem at rest.
func TestTCPCompressionNoneDeliversPlain(t *testing.T) {
	got := sendRecvTCP(t, compress.Config{}, 64)
	msgs := compressTestSequence()
	for i, m := range msgs {
		g := got[i]
		if g.IsCompressed() || len(g.Vec) != len(m.Vec) {
			t.Fatalf("message %d arrived as %+v", i, g)
		}
		for j := range m.Vec {
			if math.Float64bits(g.Vec[j]) != math.Float64bits(m.Vec[j]) {
				t.Fatalf("message %d coordinate %d corrupted", i, j)
			}
		}
	}
}

// rawPeer dials a TCPNode, writes a hand-built hello, and returns the
// socket for frame-level adversarial traffic.
func rawPeer(t *testing.T, srv *TCPNode, id string, caps uint8) net.Conn {
	t.Helper()
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = raw.Close() })
	hello, err := appendHello(nil, id, caps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(hello); err != nil {
		t.Fatal(err)
	}
	return raw
}

func waitCounter(t *testing.T, read func() uint64, want uint64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for read() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", what, read(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Announce-then-use: compressed frames under a v1 hello, or carrying a
// scheme outside the announced capability mask, or with a scheme byte this
// build cannot decode, are dropped and counted — never delivered, never a
// decode attempt against unannounced state.
func TestTCPUnnegotiatedCompressedDropped(t *testing.T) {
	srv, err := ListenTCP("srv", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	enc := compress.NewEncoder(compress.Config{Scheme: compress.Float32})
	payload, err := enc.Encode(nil, uint8(KindGradient), 1, 0, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	comp := Message{From: "byz", Kind: KindGradient, Step: 1,
		Comp: CompMeta{Scheme: uint8(compress.Float32), Dim: 2, Data: payload}}

	// A v1 hello announces nothing.
	legacy := rawPeer(t, srv, "byz", 0)
	frame := mustEncode(t, comp)
	if _, err := legacy.Write(frame); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, srv.DroppedUnnegotiated, 1, "DroppedUnnegotiated")

	// A v2 hello announcing delta does not license float32, and an unknown
	// scheme byte is never licensed.
	wrongCaps := rawPeer(t, srv, "byz2", compress.Delta.Bit())
	unknown := mustEncode(t, Message{From: "byz2", Kind: KindGradient, Step: 1,
		Comp: CompMeta{Scheme: 17, Dim: 2, Data: []byte{1}}})
	reframed := mustEncode(t, Message{From: "byz2", Kind: comp.Kind, Step: comp.Step, Comp: comp.Comp})
	if _, err := wrongCaps.Write(append(reframed, unknown...)); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, srv.DroppedUnnegotiated, 3, "DroppedUnnegotiated")

	if _, ok := srv.Recv(100 * time.Millisecond); ok {
		t.Fatal("an un-negotiated compressed frame was delivered")
	}
	if srv.DroppedMalformed() != 0 {
		t.Fatalf("DroppedMalformed = %d", srv.DroppedMalformed())
	}
}

// Announced-but-undecodable frames are dropped and counted as malformed:
// structural garbage, and expansions beyond the SetCompression dimension
// bound.
func TestTCPMalformedCompressedDropped(t *testing.T) {
	srv, err := ListenTCP("srv", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.SetCompression(compress.Config{}, 64); err != nil {
		t.Fatal(err)
	}

	peer := rawPeer(t, srv, "byz", compress.TopK.Bit())
	// k=1 entry pointing outside the declared 4-coordinate range.
	bad := binary.LittleEndian.AppendUint32(nil, 1)
	bad = binary.LittleEndian.AppendUint32(bad, 99)
	bad = binary.LittleEndian.AppendUint32(bad, math.Float32bits(1))
	garbage := mustEncode(t, Message{From: "byz", Kind: KindGradient, Step: 1,
		Comp: CompMeta{Scheme: uint8(compress.TopK), Dim: 4, Data: bad}})
	// Structurally valid, but claiming a 4096-coordinate expansion on a
	// node whose dimension bound is 64.
	big := binary.LittleEndian.AppendUint32(nil, 1)
	big = binary.LittleEndian.AppendUint32(big, 0)
	big = binary.LittleEndian.AppendUint32(big, math.Float32bits(1))
	oversize := mustEncode(t, Message{From: "byz", Kind: KindGradient, Step: 2,
		Comp: CompMeta{Scheme: uint8(compress.TopK), Dim: 4096, Data: big}})
	if _, err := peer.Write(append(garbage, oversize...)); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, srv.DroppedMalformed, 2, "DroppedMalformed")
	if _, ok := srv.Recv(100 * time.Millisecond); ok {
		t.Fatal("a malformed compressed frame was delivered")
	}
	if srv.DroppedUnnegotiated() != 0 {
		t.Fatalf("DroppedUnnegotiated = %d", srv.DroppedUnnegotiated())
	}
}

// The in-process Compressor wrapper and the TCP transport are the same
// subsystem behind different networks: the same traffic under the same
// configuration delivers bit-identical vectors.
func TestCompressorWrapperMatchesTCP(t *testing.T) {
	for _, spec := range []string{"float32", "delta", "topk:k=0.2"} {
		cfg, err := compress.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		viaTCP := sendRecvTCP(t, cfg, 64)

		net := NewChanNetwork(nil)
		defer net.Close()
		srvEP, err := net.Register("srv")
		if err != nil {
			t.Fatal(err)
		}
		wrkEP, err := net.Register("wrk")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewCompressor(srvEP, compress.Config{}, 64)
		if err != nil {
			t.Fatal(err)
		}
		wrk, err := NewCompressor(wrkEP, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		msgs := compressTestSequence()
		for i := range msgs {
			if err := wrk.Send("srv", msgs[i]); err != nil {
				t.Fatal(err)
			}
		}
		for i := range viaTCP {
			m, ok := srv.Recv(time.Second)
			if !ok {
				t.Fatalf("%s: wrapper delivered %d of %d", spec, i, len(viaTCP))
			}
			w := viaTCP[i]
			if m.From != w.From || m.Kind != w.Kind || m.Step != w.Step || m.Shard != w.Shard ||
				len(m.Vec) != len(w.Vec) {
				t.Fatalf("%s: message %d: wrapper %+v vs TCP %+v", spec, i, m, w)
			}
			for j := range w.Vec {
				if math.Float64bits(m.Vec[j]) != math.Float64bits(w.Vec[j]) {
					t.Fatalf("%s: message %d coordinate %d diverges", spec, i, j)
				}
			}
		}
		if n := srv.DroppedUnnegotiated() + srv.DroppedMalformed(); n != 0 {
			t.Fatalf("%s: wrapper dropped %d honest frames", spec, n)
		}
	}
}

// Compression composes with the fault injector: faults decide ABOVE the
// codec, so encode order equals wire order and stateful streams stay
// decodable under duplication and reordering — and the whole pipeline is
// deterministic, delivering bit-identical traffic on every rerun of the
// same seed.
func TestCompressionDeterministicUnderDupReorder(t *testing.T) {
	for _, spec := range []string{"delta:key=4", "topk:k=0.3"} {
		cfg, err := compress.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		run := func() ([]Message, uint64) {
			net := NewChanNetwork(nil)
			defer net.Close()
			srvEP, err := net.Register("srv")
			if err != nil {
				t.Fatal(err)
			}
			wrkEP, err := net.Register("wrk")
			if err != nil {
				t.Fatal(err)
			}
			srv, err := NewCompressor(srvEP, compress.Config{}, 64)
			if err != nil {
				t.Fatal(err)
			}
			wrkComp, err := NewCompressor(wrkEP, cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			inj := NewFaultInjector(FaultConfig{Seed: 11, Duplicate: 0.3, Reorder: 0.3})
			wrk := inj.Wrap(wrkComp)
			msgs := compressTestSequence()
			for i := range msgs {
				if err := wrk.Send("srv", msgs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := wrk.Close(); err != nil { // flush held reorder state
				t.Fatal(err)
			}
			var got []Message
			for {
				m, ok := srv.Recv(200 * time.Millisecond)
				if !ok {
					break
				}
				got = append(got, m)
			}
			return got, srv.DroppedUnnegotiated() + srv.DroppedMalformed()
		}
		first, drops1 := run()
		second, drops2 := run()
		if len(first) <= len(compressTestSequence())/2 {
			t.Fatalf("%s: only %d messages survived", spec, len(first))
		}
		if drops1 != 0 || drops2 != 0 {
			t.Fatalf("%s: injector-faulted honest traffic was dropped as undecodable (%d, %d)",
				spec, drops1, drops2)
		}
		if len(first) != len(second) {
			t.Fatalf("%s: rerun delivered %d vs %d messages", spec, len(first), len(second))
		}
		for i := range first {
			a, b := first[i], second[i]
			if a.Kind != b.Kind || a.Step != b.Step || a.Shard != b.Shard || len(a.Vec) != len(b.Vec) {
				t.Fatalf("%s: rerun message %d differs: %+v vs %+v", spec, i, a, b)
			}
			for j := range a.Vec {
				if math.Float64bits(a.Vec[j]) != math.Float64bits(b.Vec[j]) {
					t.Fatalf("%s: rerun message %d coordinate %d differs", spec, i, j)
				}
			}
		}
	}
}
