// Package transport provides the communication substrate of the system:
//
//   - Message, the single wire format exchanged by all nodes;
//   - ChanNetwork, an in-process asynchronous network with unbounded
//     mailboxes and optional injected delays (used by the live cluster
//     runtime and the integration tests);
//   - TCPNode, a real TCP transport speaking the hand-rolled binary frame
//     codec of codec.go — fixed {kind, step, from-len, vec-len} header plus
//     little-endian float64 payload over hello-authenticated connections
//     (the repository's stand-in for the paper's gRPC/protobuf stack, minus
//     the reflection);
//   - Collector, the "first q messages for step t, in arrival order, late
//     ones discarded" quorum-gathering primitive at the heart of GuanYu's
//     bulk-synchronous rounds over an asynchronous network;
//   - LatencyModel, a seeded heavy-tailed latency sampler that drives both
//     delay injection in the live runtime and the virtual clock of the
//     deterministic experiment simulator.
package transport

import "repro/internal/tensor"

// Kind discriminates protocol messages.
type Kind uint8

// Message kinds, one per protocol phase.
const (
	// KindParams is a parameter vector sent from a server to a worker
	// (phase 1).
	KindParams Kind = iota + 1
	// KindGradient is a gradient estimate sent from a worker to a server
	// (phase 2).
	KindGradient
	// KindPeerParams is an updated parameter vector exchanged between
	// servers (phase 3, the contraction round).
	KindPeerParams
)

// Valid reports whether k is one of the protocol's message kinds. The wire
// codec transports any kind byte (the format is bijective), but receivers
// only buffer valid kinds: without the check, a Byzantine sender could
// multiply its buffered footprint ~85× by spraying the same step across
// every junk kind value.
func (k Kind) Valid() bool { return k >= KindParams && k <= KindPeerParams }

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindParams:
		return "params"
	case KindGradient:
		return "gradient"
	case KindPeerParams:
		return "peer-params"
	default:
		return "unknown"
	}
}

// Message is the single unit of communication. Every phase of the protocol
// ships one vector tagged with its sender, step and kind; the tag is what
// lets receivers run bulk-synchronous training over an asynchronous network
// (late messages are identified and discarded, future ones buffered).
type Message struct {
	// From is the sender's node ID.
	From string `json:"from"`
	// Kind is the protocol phase this message belongs to.
	Kind Kind `json:"kind"`
	// Step is the learning step t the payload belongs to.
	Step int `json:"step"`
	// Vec is the payload (a parameter vector or a gradient).
	Vec tensor.Vector `json:"vec"`
}

// Clone returns a copy of m whose payload aliases nothing — the snapshot
// every transport must take when it holds a message past its Send boundary
// (the sender keeps mutating its vector in place). The TCP transport gets
// this for free by serialising; the in-process network and the fault
// injector's deferred-delivery paths call Clone explicitly.
func (m Message) Clone() Message {
	if m.Vec != nil {
		m.Vec = append(tensor.Vector(nil), m.Vec...)
	}
	return m
}
