package transport

import "repro/internal/tensor"

// Kind discriminates protocol messages.
type Kind uint8

// Message kinds, one per protocol phase.
const (
	// KindParams is a parameter vector sent from a server to a worker
	// (phase 1).
	KindParams Kind = iota + 1
	// KindGradient is a gradient estimate sent from a worker to a server
	// (phase 2).
	KindGradient
	// KindPeerParams is an updated parameter vector exchanged between
	// servers (phase 3, the contraction round).
	KindPeerParams
)

// Valid reports whether k is one of the protocol's message kinds. The wire
// codec transports any kind byte (the format is bijective), but receivers
// only buffer valid kinds: without the check, a Byzantine sender could
// multiply its buffered footprint ~85× by spraying the same step across
// every junk kind value.
func (k Kind) Valid() bool { return k >= KindParams && k <= KindPeerParams }

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindParams:
		return "params"
	case KindGradient:
		return "gradient"
	case KindPeerParams:
		return "peer-params"
	default:
		return "unknown"
	}
}

// ShardMeta tags a message as one coordinate shard of a larger vector. The
// zero value (Count == 0) marks a whole-vector message — the only form the
// protocol shipped before chunked streaming, and still the form used when
// the configured shard size covers the full dimension. A shard message's
// Vec holds coordinates [Offset, Offset+len(Vec)) of the logical vector;
// shard boundaries are derived from (dimension, shard size) alone (see
// ShardLayout), never negotiated, so every honest receiver can check a
// frame's claimed extent against its own deployment dimension.
type ShardMeta struct {
	// Index is this shard's position in [0, Count).
	Index int `json:"index"`
	// Count is the total number of shards of the logical vector.
	Count int `json:"count"`
	// Offset is the coordinate offset of this shard's first element.
	Offset int `json:"offset"`
}

// CompMeta tags a message whose payload travels compressed: instead of raw
// float64 coordinates, the frame carries Data — an opaque payload encoded
// by the internal/compress scheme identified by Scheme — that expands to
// Dim coordinates. The zero value (Scheme == 0) marks a plain message. The
// wire codec transports compressed payloads byte-for-byte (the frame
// format stays bijective); EXPANSION is a separate, stateful step
// (DecompressMessage) that the receiving transport performs after
// negotiation checks, because delta streams need per-connection reference
// state the codec deliberately does not own.
type CompMeta struct {
	// Scheme is the compression scheme byte (see compress.Scheme).
	Scheme uint8 `json:"scheme"`
	// Dim is the coordinate count Data expands to — what the frame's
	// vec-len field carries on the wire.
	Dim int `json:"dim"`
	// Data is the encoded payload.
	Data []byte `json:"data"`
}

// Message is the single unit of communication. Every phase of the protocol
// ships one vector tagged with its sender, step and kind; the tag is what
// lets receivers run bulk-synchronous training over an asynchronous network
// (late messages are identified and discarded, future ones buffered). A
// message may carry the whole vector or — when the sender streams in
// coordinate shards — one shard of it, discriminated by Shard.Count; the
// payload is either raw (Vec) or compressed (Comp), never both.
type Message struct {
	// From is the sender's node ID.
	From string `json:"from"`
	// Kind is the protocol phase this message belongs to.
	Kind Kind `json:"kind"`
	// Step is the learning step t the payload belongs to.
	Step int `json:"step"`
	// Vec is the payload (a parameter vector or a gradient, whole or one
	// shard of it per Shard). Nil when the payload is compressed.
	Vec tensor.Vector `json:"vec"`
	// Shard is the chunk-streaming tag; the zero value means the payload
	// covers the whole vector.
	Shard ShardMeta `json:"shard,omitzero"`
	// Comp is the compression tag; the zero value means Vec is raw.
	Comp CompMeta `json:"comp,omitzero"`
}

// IsShard reports whether m carries one coordinate shard rather than a
// whole vector.
func (m *Message) IsShard() bool { return m.Shard.Count > 0 }

// IsCompressed reports whether m's payload is compressed (Comp.Data, not
// Vec, is the payload).
func (m *Message) IsCompressed() bool { return m.Comp.Scheme != 0 }

// PayloadDim is the coordinate count of m's payload regardless of
// representation: len(Vec) for plain messages, Comp.Dim for compressed.
func (m *Message) PayloadDim() int {
	if m.IsCompressed() {
		return m.Comp.Dim
	}
	return len(m.Vec)
}

// Clone returns a copy of m whose payload aliases nothing — the snapshot
// every transport must take when it holds a message past its Send boundary
// (the sender keeps mutating its vector in place). The TCP transport gets
// this for free by serialising; the in-process network and the fault
// injector's deferred-delivery paths call Clone explicitly.
func (m Message) Clone() Message {
	if m.Vec != nil {
		m.Vec = append(tensor.Vector(nil), m.Vec...)
	}
	if m.Comp.Data != nil {
		m.Comp.Data = append([]byte(nil), m.Comp.Data...)
	}
	return m
}
