package transport

import (
	"sync"
	"time"
)

// Mailbox is an unbounded, closable message queue. Senders never block — the
// model's network is asynchronous and reliable, so the transport must accept
// any number of in-flight messages — while receivers block with an optional
// timeout.
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

// NewMailbox returns an empty open mailbox.
func NewMailbox() *Mailbox {
	m := &Mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Put enqueues a message. Messages put after Close are dropped (the node has
// left the computation).
func (m *Mailbox) Put(msg Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.queue = append(m.queue, msg)
	m.cond.Signal()
}

// Recv dequeues the oldest message, blocking until one is available, the
// timeout elapses, or the mailbox is closed. A negative timeout blocks
// indefinitely. The boolean is false on timeout or closure.
func (m *Mailbox) Recv(timeout time.Duration) (Message, bool) {
	var deadline time.Time
	if timeout >= 0 {
		deadline = time.Now().Add(timeout)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		if timeout < 0 {
			m.cond.Wait()
			continue
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return Message{}, false
		}
		timer := time.AfterFunc(remaining, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		m.cond.Wait()
		timer.Stop()
	}
	if len(m.queue) == 0 {
		return Message{}, false // closed and drained
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

// Len returns the number of queued messages.
func (m *Mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Close marks the mailbox closed and wakes all blocked receivers. Closing
// twice is a no-op.
func (m *Mailbox) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.cond.Broadcast()
}
