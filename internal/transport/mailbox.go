package transport

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// OverflowPolicy selects what a bounded mailbox does when one sender's
// queue is full. The policy is per sender: a fast (or Byzantine) peer can
// only ever fill its own quota, never displace another peer's frames.
type OverflowPolicy uint8

const (
	// Backpressure blocks the producer until the sender's queue has room
	// (or the mailbox closes). On TCP this is the natural policy: the
	// reader goroutine stops reading the socket, the kernel window fills,
	// and the remote Send blocks — per connection, never cluster-wide.
	Backpressure OverflowPolicy = iota
	// DropNewest discards the incoming message, keeping what is queued.
	DropNewest
	// DropOldest discards the sender's oldest queued message to admit the
	// incoming one — the semantically correct choice for this protocol's
	// traffic, where a newer frame from the same sender supersedes an older
	// one (a step-t−1 vector the receiver has not consumed yet is already
	// stale the moment step t's arrives).
	DropOldest
)

// String returns the spec name of the policy.
func (p OverflowPolicy) String() string {
	switch p {
	case Backpressure:
		return "backpressure"
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy resolves a policy spec name.
func ParsePolicy(s string) (OverflowPolicy, error) {
	switch strings.TrimSpace(s) {
	case "backpressure", "block":
		return Backpressure, nil
	case "drop-newest", "dropnewest":
		return DropNewest, nil
	case "drop-oldest", "dropoldest":
		return DropOldest, nil
	default:
		return 0, fmt.Errorf("transport: unknown overflow policy %q (want backpressure | drop-newest | drop-oldest)", s)
	}
}

// DefaultMailboxCap is the per-sender queue bound used when a spec names a
// policy without a cap. Each slot holds one frame, so the worst-case
// buffered payload per peer is Cap × frame size — at the harness dimension
// (2,726 float64 coordinates) 128 slots ≈ 2.8 MiB per peer.
const DefaultMailboxCap = 128

// MailboxConfig bounds a mailbox. The zero value is the unbounded
// "senders never block" mailbox the asynchronous model permits — correct
// for the paper's proofs, and exactly the resource-exhaustion surface a
// live deployment cannot afford (see DESIGN.md, "Actor runtime").
type MailboxConfig struct {
	// Cap is the per-sender queue bound; 0 means unbounded.
	Cap int
	// Policy selects the overflow behaviour when Cap is positive.
	Policy OverflowPolicy
}

// Bounded reports whether the config actually bounds the mailbox.
func (c MailboxConfig) Bounded() bool { return c.Cap > 0 }

// Validate rejects negative caps and unknown policies.
func (c MailboxConfig) Validate() error {
	if c.Cap < 0 {
		return fmt.Errorf("transport: negative mailbox cap %d", c.Cap)
	}
	if c.Policy > DropOldest {
		return fmt.Errorf("transport: unknown overflow policy %d", c.Policy)
	}
	return nil
}

// String renders the config in spec syntax (round-trips ParseMailboxSpec).
func (c MailboxConfig) String() string {
	if !c.Bounded() {
		return "none"
	}
	return fmt.Sprintf("%s:cap=%d", c.Policy, c.Cap)
}

// ParseMailboxSpec parses the -mailbox flag syntax: "none" (unbounded) or
// "policy[:cap=N]" with policy ∈ {backpressure, drop-newest, drop-oldest}
// and N defaulting to DefaultMailboxCap.
func ParseMailboxSpec(spec string) (MailboxConfig, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" || spec == "unbounded" {
		return MailboxConfig{}, nil
	}
	name, rest, hasArgs := strings.Cut(spec, ":")
	policy, err := ParsePolicy(name)
	if err != nil {
		return MailboxConfig{}, err
	}
	cfg := MailboxConfig{Cap: DefaultMailboxCap, Policy: policy}
	if hasArgs {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok || k != "cap" {
				return MailboxConfig{}, fmt.Errorf("transport: bad mailbox spec %q (want policy[:cap=N])", spec)
			}
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return MailboxConfig{}, fmt.Errorf("transport: bad mailbox cap %q (want a positive integer)", v)
			}
			cfg.Cap = n
		}
	}
	return cfg, nil
}

// mailEntry is one queued message, linked into two intrusive lists: the
// global arrival-order chain (what Recv walks) and its sender's chain
// (what DropOldest evicts from).
type mailEntry struct {
	msg          Message
	prev, next   *mailEntry // global arrival order
	pprev, pnext *mailEntry // per-sender order
	peer         *peerQueue
}

// peerQueue is one sender's view of the mailbox: its queued-entry count
// against the cap and the ends of its per-sender chain.
type peerQueue struct {
	count          int
	oldest, newest *mailEntry
}

// Mailbox is a closable message queue with per-sender bounding. Receivers
// always see messages in true arrival order — the property the quorum
// discipline is built on — while each sender's standing in the queue is
// capped independently, so a fast or Byzantine peer saturates its own
// quota and nothing else.
//
// The zero-config mailbox (NewMailbox) is unbounded and never blocks
// senders, matching the asynchronous model's reliable network. A bounded
// mailbox (NewMailboxWith) applies its OverflowPolicy per sender.
type Mailbox struct {
	mu       sync.Mutex
	recvCond *sync.Cond // signalled on enqueue and close
	sendCond *sync.Cond // broadcast on dequeue and close (Backpressure waiters)
	cfg      MailboxConfig

	head, tail *mailEntry
	length     int
	peers      map[string]*peerQueue
	closed     bool

	droppedOverflow uint64 // messages lost to a full per-sender queue
	droppedClosed   uint64 // messages put after Close

	// sink, when non-nil, receives a live atomic mirror of every drop
	// and the current queue depth. sinkOutbound routes overflow drops to
	// the courier counter instead of the inbound mailbox counter, and
	// suppresses the depth gauge (one node fans out over many outboxes,
	// so a single depth number would be meaningless).
	sink         *metrics.NodeMetrics
	sinkOutbound bool
}

// NewMailbox returns an empty open unbounded mailbox.
func NewMailbox() *Mailbox { return NewMailboxWith(MailboxConfig{}) }

// NewMailboxWith returns an empty open mailbox with the given bounds.
func NewMailboxWith(cfg MailboxConfig) *Mailbox {
	m := &Mailbox{cfg: cfg, peers: make(map[string]*peerQueue)}
	m.recvCond = sync.NewCond(&m.mu)
	m.sendCond = sync.NewCond(&m.mu)
	return m
}

// SetConfig replaces the mailbox bounds. The config is consulted only at
// Put time, so reconfiguring an idle mailbox (e.g. right after ListenTCP,
// before peers connect) is safe; already-queued messages are kept even if
// they exceed a newly lowered cap.
func (m *Mailbox) SetConfig(cfg MailboxConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg = cfg
	m.sendCond.Broadcast() // a raised cap may unblock Backpressure waiters
	return nil
}

// Config returns the current bounds.
func (m *Mailbox) Config() MailboxConfig {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg
}

// SetMetrics attaches a live counter sink: every subsequent drop is
// mirrored into it, and (for inbound mailboxes) the queue depth gauge
// tracks Put/Recv. outbound marks the mailbox as a courier outbox, so
// its overflow drops land under CourierDropped rather than the node's
// inbound DroppedOverflow.
func (m *Mailbox) SetMetrics(sink *metrics.NodeMetrics, outbound bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sink = sink
	m.sinkOutbound = outbound
}

// mirrorOverflow and mirrorClosed forward one drop to the sink, if
// any. Caller holds mu.
func (m *Mailbox) mirrorOverflow() {
	if m.sink == nil {
		return
	}
	if m.sinkOutbound {
		m.sink.CourierDropped.Add(1)
	} else {
		m.sink.DroppedOverflow.Add(1)
	}
}

func (m *Mailbox) mirrorClosed() {
	if m.sink != nil {
		m.sink.DroppedClosed.Add(1)
	}
}

// mirrorDepth publishes the current queue depth. Caller holds mu.
func (m *Mailbox) mirrorDepth() {
	if m.sink != nil && !m.sinkOutbound {
		m.sink.SetQueueDepth(m.length)
	}
}

// Put enqueues a message keyed by its From field. Messages put after Close
// are dropped and counted under DroppedClosed (the node has left the
// computation, but the loss stays observable). When the sender's queue is
// at the cap, the overflow policy decides: Backpressure blocks until the
// queue drains or the mailbox closes; DropNewest discards msg; DropOldest
// evicts the sender's oldest queued message to admit msg. Every overflow
// discard increments DroppedOverflow.
func (m *Mailbox) Put(msg Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.droppedClosed++
		m.mirrorClosed()
		return
	}
	pq := m.peers[msg.From]
	if pq == nil {
		pq = &peerQueue{}
		m.peers[msg.From] = pq
	}
	if m.cfg.Bounded() && pq.count >= m.cfg.Cap {
		switch m.cfg.Policy {
		case Backpressure:
			for pq.count >= m.cfg.Cap && m.cfg.Bounded() && !m.closed {
				m.sendCond.Wait()
			}
			if m.closed {
				m.droppedClosed++
				m.mirrorClosed()
				return
			}
		case DropNewest:
			m.droppedOverflow++
			m.mirrorOverflow()
			return
		case DropOldest:
			m.unlink(pq.oldest)
			m.droppedOverflow++
			m.mirrorOverflow()
		}
	}
	e := &mailEntry{msg: msg, peer: pq}
	if m.tail == nil {
		m.head, m.tail = e, e
	} else {
		e.prev = m.tail
		m.tail.next = e
		m.tail = e
	}
	if pq.newest == nil {
		pq.oldest, pq.newest = e, e
	} else {
		e.pprev = pq.newest
		pq.newest.pnext = e
		pq.newest = e
	}
	pq.count++
	m.length++
	m.mirrorDepth()
	m.recvCond.Signal()
}

// unlink removes e from both chains and the accounting. Caller holds mu.
func (m *Mailbox) unlink(e *mailEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.tail = e.prev
	}
	pq := e.peer
	if e.pprev != nil {
		e.pprev.pnext = e.pnext
	} else {
		pq.oldest = e.pnext
	}
	if e.pnext != nil {
		e.pnext.pprev = e.pprev
	} else {
		pq.newest = e.pprev
	}
	pq.count--
	m.length--
}

// Recv dequeues the oldest message across all senders, blocking until one
// is available, the timeout elapses, or the mailbox is closed. A negative
// timeout blocks indefinitely. The boolean is false on timeout or closure;
// a closed mailbox still drains its queued messages first.
func (m *Mailbox) Recv(timeout time.Duration) (Message, bool) {
	var deadline time.Time
	if timeout >= 0 {
		//lint:allow-clock Recv timeouts are wall-clock by contract; liveness never decides values
		deadline = time.Now().Add(timeout)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head == nil && !m.closed {
		if timeout < 0 {
			m.recvCond.Wait()
			continue
		}
		//lint:allow-clock deadline bookkeeping for the wall-clock timeout above
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return Message{}, false
		}
		timer := time.AfterFunc(remaining, func() {
			m.mu.Lock()
			m.recvCond.Broadcast()
			m.mu.Unlock()
		})
		m.recvCond.Wait()
		timer.Stop()
	}
	if m.head == nil {
		return Message{}, false // closed and drained
	}
	e := m.head
	m.unlink(e)
	m.mirrorDepth()
	if m.cfg.Policy == Backpressure {
		m.sendCond.Broadcast()
	}
	return e.msg, true
}

// Len returns the number of queued messages across all senders.
func (m *Mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.length
}

// PeerLen returns how many messages the named sender has queued.
func (m *Mailbox) PeerLen(from string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if pq := m.peers[from]; pq != nil {
		return pq.count
	}
	return 0
}

// DroppedOverflow returns how many messages were discarded because a
// sender's queue was at its cap (DropNewest and DropOldest evictions both
// count; Backpressure never overflows). Exposed for tests and monitoring.
func (m *Mailbox) DroppedOverflow() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.droppedOverflow
}

// DroppedClosed returns how many messages were put after Close — frames
// that raced a node's shutdown and would otherwise vanish silently.
func (m *Mailbox) DroppedClosed() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.droppedClosed
}

// Close marks the mailbox closed and wakes all blocked receivers and
// Backpressure waiters. Closing twice is a no-op.
func (m *Mailbox) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.recvCond.Broadcast()
	m.sendCond.Broadcast()
}
