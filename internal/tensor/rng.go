// Package tensor provides the dense float64 vector and matrix kernels that
// underpin the neural-network substrate and the gradient aggregation rules.
//
// Everything in this package is deterministic: random number generation uses
// an explicit, seedable generator (splitmix64-seeded xoshiro256**) so that
// experiments are reproducible bit-for-bit across runs and machines.
package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). It is NOT safe for concurrent use;
// give each node/goroutine its own RNG (use Split).
type RNG struct {
	s [4]uint64

	// cached spare normal variate for the Box-Muller transform.
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded from the given seed. Two RNGs built from
// the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed over the full state.
	x := seed
	for i := 0; i < 4; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from this one. The child stream is a
// deterministic function of the parent state, and advancing the child does
// not advance the parent beyond the single draw used to derive it.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0, mirroring
// math/rand semantics; callers control n so this is a programming error.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box-Muller, with caching of the
// spare variate).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// NormVec fills dst with i.i.d. N(mean, std²) samples and returns it.
func (r *RNG) NormVec(dst []float64, mean, std float64) []float64 {
	for i := range dst {
		dst[i] = mean + std*r.Norm()
	}
	return dst
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// LogNormal returns a sample from the log-normal distribution with the given
// parameters of the underlying normal. Used by the network simulator for
// heavy-tailed message latencies.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}
