package tensor

import (
	"testing"

	"repro/internal/parallel"
)

// Bit-identity of the parallel matrix kernels across worker counts (and
// their -race exercise).

func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := parallel.SetWorkers(n)
	t.Cleanup(func() { parallel.SetWorkers(prev) })
}

func TestMatrixKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	const rows, cols = 384, 512 // rows*cols clears the parallel gate
	rng := NewRNG(3)
	m := NewMatrix(rows, cols)
	rng.NormVec(m.Data, 0, 1)
	x := rng.NormVec(make([]float64, cols), 0, 1)
	xT := rng.NormVec(make([]float64, rows), 0, 1)

	withWorkers(t, 1)
	wantMV := make([]float64, rows)
	m.MatVec(wantMV, x)
	wantMVT := make([]float64, cols)
	m.MatVecT(wantMVT, xT)
	wantOuter := m.Clone()
	wantOuter.AddOuter(0.5, xT, x)

	for _, w := range []int{2, 4} {
		withWorkers(t, w)
		gotMV := make([]float64, rows)
		m.MatVec(gotMV, x)
		for i := range gotMV {
			if gotMV[i] != wantMV[i] {
				t.Fatalf("workers=%d changed MatVec[%d]", w, i)
			}
		}
		gotMVT := make([]float64, cols)
		m.MatVecT(gotMVT, xT)
		for i := range gotMVT {
			if gotMVT[i] != wantMVT[i] {
				t.Fatalf("workers=%d changed MatVecT[%d]", w, i)
			}
		}
		gotOuter := m.Clone()
		gotOuter.AddOuter(0.5, xT, x)
		for i := range gotOuter.Data {
			if gotOuter.Data[i] != wantOuter.Data[i] {
				t.Fatalf("workers=%d changed AddOuter cell %d", w, i)
			}
		}
	}
}
