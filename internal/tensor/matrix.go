package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// matVecTarget is the per-chunk work (multiply-adds) of the parallel matrix
// kernels: large enough that chunk compute dominates pool dispatch, so the
// small dense layers of the harness CNNs stay on the inline serial path.
const matVecTarget = 1 << 16

// Matrix is a dense row-major matrix of float64. It backs the fully-connected
// and convolutional layers of the neural-network substrate.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols, row-major
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative matrix size %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MatVec computes dst = m · x. dst must have length m.Rows and x length
// m.Cols. The kernel is written to let the compiler keep the inner loop free
// of bounds checks.
func (m *Matrix) MatVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch (%dx%d)·%d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	// Row-chunked: each output element is one row's dot product, written by
	// exactly one chunk, so the result is identical at any parallelism.
	parallel.For(m.Rows, parallel.GrainFor(m.Cols, matVecTarget), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : i*m.Cols+m.Cols]
			var s float64
			for j, w := range row {
				s += w * x[j]
			}
			dst[i] = s
		}
	})
}

// MatVecT computes dst = mᵀ · x (used by backprop through a dense layer).
// dst must have length m.Cols and x length m.Rows.
func (m *Matrix) MatVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVecT shape mismatch (%dx%d)ᵀ·%d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	// Column-chunked: dst[j] accumulates over rows i in ascending order
	// inside exactly one chunk, so the per-element addition order — and
	// therefore the result — is identical at any parallelism.
	parallel.For(m.Cols, parallel.GrainFor(m.Rows, matVecTarget), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[j] = 0
		}
		for i := 0; i < m.Rows; i++ {
			xi := x[i]
			if xi == 0 {
				continue
			}
			row := m.Data[i*m.Cols : i*m.Cols+m.Cols]
			for j := lo; j < hi; j++ {
				dst[j] += row[j] * xi
			}
		}
	})
}

// AddOuter accumulates m += alpha · a·bᵀ (gradient of a dense layer's weight
// matrix: dL/dW += δ·xᵀ).
func (m *Matrix) AddOuter(alpha float64, a, b []float64) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("tensor: AddOuter shape mismatch %dx%d vs %d,%d",
			m.Rows, m.Cols, len(a), len(b)))
	}
	// Row-chunked: each matrix row is owned by exactly one chunk.
	parallel.For(m.Rows, parallel.GrainFor(m.Cols, matVecTarget), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := alpha * a[i]
			if ai == 0 {
				continue
			}
			row := m.Data[i*m.Cols : i*m.Cols+m.Cols]
			for j := range row {
				row[j] += ai * b[j]
			}
		}
	})
}
