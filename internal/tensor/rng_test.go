package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/64 identical draws across seeds; generator is degenerate", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(9)
	child := parent.Split()
	// The child must not mirror the parent stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/64 identical draws between parent and child", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10_000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", x)
		}
	}
}

func TestIntnRangeAndCoverage(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 10_000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestNormVec(t *testing.T) {
	r := NewRNG(13)
	v := r.NormVec(make([]float64, 50_000), 2, 0.5)
	var sum float64
	for _, x := range v {
		sum += x
	}
	mean := sum / float64(len(v))
	if math.Abs(mean-2) > 0.02 {
		t.Fatalf("NormVec mean = %v, want ≈2", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, i := range p {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatalf("Perm invalid at %d", i)
		}
		seen[i] = true
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 1000; i++ {
		if x := r.LogNormal(0, 1); x <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", x)
		}
	}
}
