package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestZerosAndClone(t *testing.T) {
	v := Zeros(5)
	if len(v) != 5 {
		t.Fatalf("Zeros(5) has length %d", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("Zeros(5)[%d] = %v, want 0", i, x)
		}
	}
	v[0] = 3
	c := Clone(v)
	c[0] = 7
	if v[0] != 3 {
		t.Fatalf("Clone aliases input: v[0] = %v", v[0])
	}
}

func TestCloneAllIndependence(t *testing.T) {
	vs := []Vector{{1, 2}, {3, 4}}
	cs := CloneAll(vs)
	cs[0][0] = 99
	if vs[0][0] != 1 {
		t.Fatal("CloneAll aliases inputs")
	}
}

func TestAddSubScale(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}

	sum := Add(a, b)
	want := Vector{5, 7, 9}
	for i := range want {
		if sum[i] != want[i] {
			t.Fatalf("Add = %v, want %v", sum, want)
		}
	}

	diff := Sub(b, a)
	for i := range diff {
		if diff[i] != 3 {
			t.Fatalf("Sub = %v, want all 3", diff)
		}
	}

	s := Scale(a, 2)
	if s[0] != 2 || s[1] != 4 || s[2] != 6 {
		t.Fatalf("Scale = %v", s)
	}
	// originals untouched
	if a[0] != 1 || b[0] != 4 {
		t.Fatal("non-in-place ops mutated inputs")
	}

	AddInPlace(a, b)
	if a[2] != 9 {
		t.Fatalf("AddInPlace: a = %v", a)
	}
	SubInPlace(a, b)
	if a[2] != 3 {
		t.Fatalf("SubInPlace: a = %v", a)
	}
	ScaleInPlace(a, 10)
	if a[0] != 10 {
		t.Fatalf("ScaleInPlace: a = %v", a)
	}
}

func TestAXPY(t *testing.T) {
	dst := Vector{1, 1}
	AXPY(dst, -0.5, Vector{2, 4})
	if dst[0] != 0 || dst[1] != -1 {
		t.Fatalf("AXPY = %v, want [0 -1]", dst)
	}
}

func TestDotNormDistance(t *testing.T) {
	a := Vector{3, 4}
	if Dot(a, a) != 25 {
		t.Fatalf("Dot = %v", Dot(a, a))
	}
	if Norm2(a) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(a))
	}
	b := Vector{0, 0}
	if Distance(a, b) != 5 {
		t.Fatalf("Distance = %v", Distance(a, b))
	}
	if SquaredDistance(a, b) != 25 {
		t.Fatalf("SquaredDistance = %v", SquaredDistance(a, b))
	}
}

func TestCosineSimilarity(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		want float64
	}{
		{"parallel", Vector{1, 0}, Vector{2, 0}, 1},
		{"antiparallel", Vector{1, 0}, Vector{-3, 0}, -1},
		{"orthogonal", Vector{1, 0}, Vector{0, 5}, 0},
		{"zero-vector", Vector{0, 0}, Vector{1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := CosineSimilarity(tt.a, tt.b)
			if !almostEqual(got, tt.want, eps) {
				t.Fatalf("cos = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMean(t *testing.T) {
	vs := []Vector{{0, 0}, {2, 4}, {4, 8}}
	m := Mean(vs)
	if m[0] != 2 || m[1] != 4 {
		t.Fatalf("Mean = %v", m)
	}
	// input vectors must survive
	if vs[0][0] != 0 || vs[1][0] != 2 {
		t.Fatal("Mean mutated inputs")
	}
}

func TestMaxPairwiseDistance(t *testing.T) {
	vs := []Vector{{0, 0}, {3, 4}, {1, 1}}
	if d := MaxPairwiseDistance(vs); !almostEqual(d, 5, eps) {
		t.Fatalf("MaxPairwiseDistance = %v, want 5", d)
	}
	if d := MaxPairwiseDistance([]Vector{{1, 2}}); d != 0 {
		t.Fatalf("single point distance = %v, want 0", d)
	}
}

func TestMedianScalar(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"single", []float64{7}, 7},
		{"repeated", []float64{5, 5, 5, 1}, 5},
		{"negative", []float64{-3, -1, -2}, -2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := append([]float64(nil), tt.xs...)
			if got := MedianScalar(in); got != tt.want {
				t.Fatalf("median(%v) = %v, want %v", tt.xs, got, tt.want)
			}
			for i := range in {
				if in[i] != tt.xs[i] {
					t.Fatal("MedianScalar mutated input")
				}
			}
		})
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(Vector{1, -2, 0}) {
		t.Fatal("finite vector reported non-finite")
	}
	if IsFinite(Vector{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if IsFinite(Vector{math.Inf(1)}) {
		t.Fatal("+Inf not detected")
	}
	if IsFinite(Vector{math.Inf(-1)}) {
		t.Fatal("-Inf not detected")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot(Vector{1}, Vector{1, 2})
}

// Property: ‖a−b‖² computed by SquaredDistance matches Dot(a−b, a−b).
func TestSquaredDistanceProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a, b := raw[:half], raw[half:2*half]
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // avoid overflow artefacts
			}
		}
		d := Sub(a, b)
		return almostEqual(SquaredDistance(a, b), Dot(d, d), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the scalar median lies within [min, max] of its inputs and is
// permutation invariant.
func TestMedianScalarProperty(t *testing.T) {
	rng := NewRNG(42)
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) {
				return true
			}
		}
		m := MedianScalar(raw)
		lo, hi := raw[0], raw[0]
		for _, x := range raw {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if m < lo || m > hi {
			return false
		}
		// permutation invariance
		perm := rng.Perm(len(raw))
		shuffled := make([]float64, len(raw))
		for i, p := range perm {
			shuffled[i] = raw[p]
		}
		return MedianScalar(shuffled) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
