package tensor

import (
	"fmt"
	"math"
	"sort"
)

// Vector is a dense slice of float64. All model parameters, gradients and
// aggregation-rule inputs in this repository are Vectors: GuanYu treats the
// model as a single point in R^d, and every kernel below operates on that
// representation.
type Vector = []float64

// Zeros returns a new zero vector of dimension d.
func Zeros(d int) Vector { return make(Vector, d) }

// Clone returns a copy of v. Aggregation rules clone at boundaries so callers
// can mutate their inputs afterwards (slices share backing arrays otherwise).
func Clone(v Vector) Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// CloneAll deep-copies a set of vectors.
func CloneAll(vs []Vector) []Vector {
	out := make([]Vector, len(vs))
	for i, v := range vs {
		out[i] = Clone(v)
	}
	return out
}

// AddInPlace computes dst += src. Panics on dimension mismatch (programming
// error: all vectors in one deployment share dimension d).
func AddInPlace(dst, src Vector) {
	assertSameDim(len(dst), len(src))
	for i := range dst {
		dst[i] += src[i]
	}
}

// SubInPlace computes dst -= src.
func SubInPlace(dst, src Vector) {
	assertSameDim(len(dst), len(src))
	for i := range dst {
		dst[i] -= src[i]
	}
}

// Sub returns a - b as a new vector.
func Sub(a, b Vector) Vector {
	assertSameDim(len(a), len(b))
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Add returns a + b as a new vector.
func Add(a, b Vector) Vector {
	assertSameDim(len(a), len(b))
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// ScaleInPlace computes v *= alpha.
func ScaleInPlace(v Vector, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Scale returns alpha * v as a new vector.
func Scale(v Vector, alpha float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = alpha * v[i]
	}
	return out
}

// AXPY computes dst += alpha * x (the BLAS primitive at the heart of the SGD
// update θ ← θ − η·g).
func AXPY(dst Vector, alpha float64, x Vector) {
	assertSameDim(len(dst), len(x))
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// Dot returns the inner product <a, b>.
func Dot(a, b Vector) float64 {
	assertSameDim(len(a), len(b))
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm ‖v‖₂.
func Norm2(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// SquaredDistance returns ‖a − b‖₂² without allocating. This is the inner
// loop of the Krum score computation, so it is kept allocation-free.
func SquaredDistance(a, b Vector) float64 {
	assertSameDim(len(a), len(b))
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Distance returns ‖a − b‖₂.
func Distance(a, b Vector) float64 { return math.Sqrt(SquaredDistance(a, b)) }

// CosineSimilarity returns <a,b> / (‖a‖‖b‖), or 0 when either vector is
// (numerically) zero. Used by the Table-2 alignment probe.
func CosineSimilarity(a, b Vector) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Mean returns the arithmetic mean of the input vectors. Panics if the set is
// empty or dimensions disagree.
func Mean(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("tensor: Mean of empty set")
	}
	out := Clone(vs[0])
	for _, v := range vs[1:] {
		AddInPlace(out, v)
	}
	ScaleInPlace(out, 1/float64(len(vs)))
	return out
}

// MaxPairwiseDistance returns max over (i,j) of ‖vs[i] − vs[j]‖. This is the
// drift diagnostic from the contraction proof (Section 9.3.1 of the paper).
func MaxPairwiseDistance(vs []Vector) float64 {
	var maxD float64
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if d := SquaredDistance(vs[i], vs[j]); d > maxD {
				maxD = d
			}
		}
	}
	return math.Sqrt(maxD)
}

// MedianScalar returns the median of xs (mean of the two central order
// statistics for even length). xs is not modified.
func MedianScalar(xs []float64) float64 {
	if len(xs) == 0 {
		panic("tensor: median of empty slice")
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	// Halve before adding so the midpoint cannot overflow for extreme values.
	return tmp[n/2-1]/2 + tmp[n/2]/2
}

// IsFinite reports whether every coordinate of v is finite (no NaN/Inf).
// Correct nodes use it to sanitise values received from the network: a
// Byzantine node may send NaNs to poison downstream arithmetic.
func IsFinite(v Vector) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

func assertSameDim(a, b int) {
	if a != b {
		panic(fmt.Sprintf("tensor: dimension mismatch %d vs %d", a, b))
	}
}
