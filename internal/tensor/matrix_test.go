package tensor

import (
	"math"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("bad matrix shape %dx%d len=%d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At/Set mismatch: %v", m.At(1, 2))
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Fatalf("Row(1) = %v", row)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone aliases storage")
	}
}

func TestMatVec(t *testing.T) {
	// [1 2; 3 4] · [5, 6] = [17, 39]
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	dst := make([]float64, 2)
	m.MatVec(dst, []float64{5, 6})
	if dst[0] != 17 || dst[1] != 39 {
		t.Fatalf("MatVec = %v, want [17 39]", dst)
	}
}

func TestMatVecT(t *testing.T) {
	// [1 2; 3 4]ᵀ · [5, 6] = [1·5+3·6, 2·5+4·6] = [23, 34]
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	dst := make([]float64, 2)
	m.MatVecT(dst, []float64{5, 6})
	if dst[0] != 23 || dst[1] != 34 {
		t.Fatalf("MatVecT = %v, want [23 34]", dst)
	}
}

// MatVecT must agree with an explicit transpose for random matrices.
func TestMatVecTMatchesTranspose(t *testing.T) {
	rng := NewRNG(23)
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(rows, cols)
		rng.NormVec(m.Data, 0, 1)
		x := rng.NormVec(make([]float64, rows), 0, 1)

		got := make([]float64, cols)
		m.MatVecT(got, x)

		// explicit transpose
		tr := NewMatrix(cols, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				tr.Set(j, i, m.At(i, j))
			}
		}
		want := make([]float64, cols)
		tr.MatVec(want, x)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-10 {
				t.Fatalf("trial %d: MatVecT[%d] = %v, transpose gives %v",
					trial, j, got[j], want[j])
			}
		}
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(2, []float64{1, 2}, []float64{3, 4})
	// 2·[1;2]·[3 4] = [6 8; 12 16]
	want := []float64{6, 8, 12, 16}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddOuter = %v, want %v", m.Data, want)
		}
	}
	// accumulation, not assignment
	m.AddOuter(1, []float64{1, 0}, []float64{1, 0})
	if m.At(0, 0) != 7 {
		t.Fatalf("AddOuter does not accumulate: %v", m.At(0, 0))
	}
}

func TestMatrixShapePanics(t *testing.T) {
	m := NewMatrix(2, 3)
	cases := []func(){
		func() { m.MatVec(make([]float64, 2), make([]float64, 2)) },
		func() { m.MatVecT(make([]float64, 2), make([]float64, 2)) },
		func() { m.AddOuter(1, make([]float64, 3), make([]float64, 3)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected shape panic", i)
				}
			}()
			fn()
		}()
	}
}
