// Package core is the paper's primary contribution assembled into a usable
// library: configuration and validation of GuanYu deployments, the
// deterministic virtual-time training engine that regenerates every figure
// and table of the evaluation, and presets for the paper's three systems
// (vanilla TF, vanilla GuanYu, Byzantine-resilient GuanYu).
//
// Two runtimes execute the same protocol:
//
//   - internal/cluster runs it live — one goroutine per node over an
//     asynchronous message transport (in-process or TCP);
//   - this package runs it under a deterministic discrete-event simulation
//     with an explicit virtual clock, which is what produces reproducible
//     accuracy-vs-time curves (Figures 3b/3d) on any machine.
package core

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/gar"
	"repro/internal/nn"
	"repro/internal/transport"
)

// Mode selects the deployment family.
type Mode int

// Deployment modes.
const (
	// ModeVanilla is the single-parameter-server baseline using plain mean
	// aggregation over all workers ("vanilla TF" / "vanilla GuanYu" in the
	// paper, depending on CostModel.OptimizedRuntime).
	ModeVanilla Mode = iota + 1
	// ModeGuanYu is the full Byzantine-resilient protocol with replicated
	// servers, quorums, Multi-Krum and median contraction.
	ModeGuanYu
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeVanilla:
		return "vanilla"
	case ModeGuanYu:
		return "guanyu"
	default:
		return "unknown"
	}
}

// CostModel prices the virtual clock. All times are virtual seconds. The
// defaults are loosely calibrated so that the relative overheads of the
// paper's Section 5.3 emerge from structure (replication, quorums, robust
// aggregation, serialization) rather than from hand-tuned curves.
type CostModel struct {
	// GradBase is the fixed cost of one gradient computation.
	GradBase float64
	// GradPerExample is the additional cost per mini-batch example.
	GradPerExample float64
	// AggPerVector is the cost per input vector of a linear-time
	// aggregation (mean). The median is charged 2× this per vector, and
	// the Krum family q× per vector (its score computation is quadratic).
	AggPerVector float64
	// UpdateTime is the cost of applying one parameter update.
	UpdateTime float64
	// SerializeOverhead is the per-message cost of leaving the optimized
	// runtime: tensor→buffer conversion, framing, context switches. This is
	// the paper's "TensorFlow low-level API" overhead; it applies to every
	// message endpoint crossing unless OptimizedRuntime is set.
	SerializeOverhead float64
	// OptimizedRuntime models the vanilla TensorFlow distributed runtime:
	// serialization cost is absorbed by the framework (set only for the
	// "vanilla TF" baseline).
	OptimizedRuntime bool
	// Latency samples per-message network delays. Required.
	Latency *transport.LatencyModel
}

// DefaultCostModel returns the harness's standard pricing: a 10 GbE-class
// network and compute costs sized for the tiny CNN. The *structure* of the
// overheads (which deployments pay serialization, robust aggregation,
// replication and quorum waits) is fixed by the protocol; the constants
// below are calibrated once so the headline ratios land near the paper's
// measurements (vanilla GuanYu ≈ 65% slower than vanilla TF to a fixed
// accuracy; Byzantine deployment ≤ ~33% over vanilla GuanYu). See the
// "Cost-model calibration" section of EXPERIMENTS.md.
func DefaultCostModel(seed uint64) CostModel {
	return CostModel{
		GradBase:          2e-3,
		GradPerExample:    1.2e-4,
		AggPerVector:      8e-6,
		UpdateTime:        2e-4,
		SerializeOverhead: 8e-4,
		Latency:           transport.NewLatencyModel(150e-6, 0.4, 1.25e9, seed),
	}
}

// serOverhead returns the per-crossing serialization cost.
func (c CostModel) serOverhead() float64 {
	if c.OptimizedRuntime {
		return 0
	}
	return c.SerializeOverhead
}

// aggTime prices one aggregation of n vectors under the given rule.
func (c CostModel) aggTime(r gar.Rule, n int) float64 {
	switch r.(type) {
	case gar.Mean:
		return c.AggPerVector * float64(n)
	case gar.Median, gar.TrimmedMean:
		return 2 * c.AggPerVector * float64(n)
	case gar.Krum, gar.MultiKrum, gar.Bulyan, gar.GeoMed, gar.MDA:
		return c.AggPerVector * float64(n) * float64(n)
	default:
		return c.AggPerVector * float64(n)
	}
}

// Config fully describes one experiment run.
type Config struct {
	// Mode selects vanilla or GuanYu topology.
	Mode Mode
	// Model is the template network; cloned per worker.
	Model *nn.Sequential
	// Train and Test are the workload.
	Train, Test *dataset.Dataset
	// WorkerShards optionally assigns worker j the shard
	// WorkerShards[j mod len(WorkerShards)] instead of sampling from the
	// full Train set — the federated / non-IID setting (see
	// dataset.ShardByLabel). The paper's theory assumes IID workers; this
	// knob probes behaviour outside it.
	WorkerShards []*dataset.Dataset

	// NumServers/FServers are n and declared f; NumWorkers/FWorkers are n̄
	// and declared f̄. Vanilla mode forces NumServers=1.
	NumServers, FServers int
	NumWorkers, FWorkers int
	// QuorumServers (q) and QuorumWorkers (q̄) default to the minimum legal
	// 2f+3 when 0.
	QuorumServers, QuorumWorkers int

	// ServerAttacks and WorkerAttacks assign behaviours to the
	// actually-Byzantine nodes (indices into the populations).
	ServerAttacks map[int]attack.Attack
	WorkerAttacks map[int]attack.Attack

	// Steps, Batch and LR drive training. LR nil defaults to 0.05/(1+t/300).
	Steps int
	Batch int
	LR    func(step int) float64
	// Momentum, when positive, enables heavy-ball momentum on each server's
	// local update: v ← β·v + F(...); θ ← θ − η_t·v. This is an extension
	// beyond the paper's plain-SGD update (each server keeps its own
	// velocity; the contraction round still operates on θ only).
	Momentum float64

	// Rule aggregates gradients (default MultiKrum{F: FWorkers} in GuanYu
	// mode, Mean in vanilla). ParamRule aggregates parameter vectors
	// (default Median).
	Rule      gar.Rule
	ParamRule gar.Rule

	// DisableServerExchange skips phase 3 (ablation of the contraction
	// round).
	DisableServerExchange bool

	// EvalEvery controls accuracy sampling (default 10); EvalExamples
	// limits the test subset per evaluation (default 256, 0 = all).
	EvalEvery    int
	EvalExamples int
	// AlignEvery enables the Table-2 alignment probe at the given period
	// (0 = off). AlignAfter discards records before that step ("after some
	// large step number" in the paper).
	AlignEvery int
	AlignAfter int

	// Cost prices the virtual clock; zero value gets DefaultCostModel(Seed).
	Cost CostModel

	// Faults optionally injects seeded network faults into honest traffic:
	// drops and partition cuts become +Inf arrivals the quorum discipline
	// must absorb, delay spikes push arrivals out. Byzantine messages are
	// exempt (the adversary's covert network is ideal by assumption). Nil
	// injects nothing.
	Faults *transport.FaultInjector

	// Compression applies the wire compression schemes to honest traffic:
	// every honest payload is round-tripped through the internal/compress
	// codec of its directed link before the receiver sees it, so the
	// simulator trains on exactly the lossy values a live cluster would,
	// and message bytes in the latency model shrink accordingly. Byzantine
	// payloads are exempt, mirroring the fault injector: compressing the
	// adversary's traffic would perturb its chosen attack vectors and
	// weaken it. The zero value transmits exact float64 payloads.
	Compression compress.Config

	// Churn, when non-nil, applies a deterministic schedule of membership
	// changes to the honest servers at step boundaries: crashes (silence,
	// frozen state), recoveries and joins (adopt the coordinate-wise median
	// of the live honest servers — the simulator's analogue of the live
	// cluster's median rejoin), and leaves. Validated against the quorum
	// bound so every boundary keeps at least q live honest servers; GuanYu
	// mode only. See ChurnPreset for the named scenarios.
	Churn *ChurnPlan

	// Seed drives every generator in the run.
	Seed uint64
}

// Validate checks the configuration, enforcing the theoretical bounds in
// GuanYu mode.
func (c *Config) Validate() error {
	if c.Model == nil || c.Train == nil {
		return fmt.Errorf("core: Model and Train are required")
	}
	if c.Steps <= 0 || c.Batch <= 0 {
		return fmt.Errorf("core: Steps and Batch must be positive")
	}
	switch c.Mode {
	case ModeVanilla:
		if c.NumServers != 1 {
			return fmt.Errorf("core: vanilla mode requires exactly 1 server, got %d", c.NumServers)
		}
		if c.NumWorkers < 1 {
			return fmt.Errorf("core: vanilla mode requires ≥ 1 worker")
		}
	case ModeGuanYu:
		if err := gar.CheckDeployment("server", c.NumServers, c.FServers); err != nil {
			return err
		}
		if err := gar.CheckDeployment("worker", c.NumWorkers, c.FWorkers); err != nil {
			return err
		}
		if err := gar.CheckQuorum("server", c.NumServers, c.FServers, c.quorumServers()); err != nil {
			return err
		}
		if err := gar.CheckQuorum("worker", c.NumWorkers, c.FWorkers, c.quorumWorkers()); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: unknown mode %d", c.Mode)
	}
	if err := c.Compression.Validate(); err != nil {
		return err
	}
	if c.Churn != nil {
		if c.Mode != ModeGuanYu {
			return fmt.Errorf("core: churn requires GuanYu mode (a vanilla deployment has no quorum margin to crash into)")
		}
		if err := c.Churn.Validate(c.NumServers, c.Steps, c.quorumServers(), c.ServerAttacks); err != nil {
			return err
		}
	}
	if len(c.ServerAttacks) >= c.NumServers {
		return fmt.Errorf("core: every server is Byzantine; nothing to measure")
	}
	if len(c.WorkerAttacks) >= c.NumWorkers {
		return fmt.Errorf("core: every worker is Byzantine; nothing to measure")
	}
	return nil
}

func (c *Config) quorumServers() int {
	if c.Mode == ModeVanilla {
		return 1
	}
	if c.QuorumServers > 0 {
		return c.QuorumServers
	}
	return gar.MinQuorum(c.FServers)
}

func (c *Config) quorumWorkers() int {
	if c.Mode == ModeVanilla {
		// Vanilla synchronous training waits for every worker.
		return c.NumWorkers
	}
	if c.QuorumWorkers > 0 {
		return c.QuorumWorkers
	}
	return gar.MinQuorum(c.FWorkers)
}

func (c *Config) lr() func(int) float64 {
	if c.LR != nil {
		return c.LR
	}
	return func(t int) float64 { return 0.05 / (1 + float64(t)/300) }
}

func (c *Config) gradRule() gar.Rule {
	if c.Rule != nil {
		return c.Rule
	}
	if c.Mode == ModeVanilla {
		return gar.Mean{}
	}
	return gar.MultiKrum{F: c.FWorkers}
}

func (c *Config) paramRule() gar.Rule {
	if c.ParamRule != nil {
		return c.ParamRule
	}
	return gar.Median{}
}

func (c *Config) evalEvery() int {
	if c.EvalEvery > 0 {
		return c.EvalEvery
	}
	return 10
}

func (c *Config) cost() CostModel {
	if c.Cost.Latency == nil {
		cm := DefaultCostModel(c.Seed + 7777)
		cm.OptimizedRuntime = c.Cost.OptimizedRuntime
		return cm
	}
	return c.Cost
}
