package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/gar"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Result is the outcome of one simulated run.
type Result struct {
	// Curve is the accuracy-vs-(updates, virtual time) series.
	Curve *stats.Series
	// Alignments are the Table-2 probe records (empty unless enabled).
	Alignments []stats.AlignmentRecord
	// Final is the coordinate-wise median of the honest servers' final
	// parameter vectors.
	Final tensor.Vector
	// FinalAccuracy is the full-test-set accuracy of Final.
	FinalAccuracy float64
	// VirtualTime is the total virtual seconds consumed (max over honest
	// node clocks).
	VirtualTime float64
	// Updates is the number of model updates performed.
	Updates int
}

// Run executes the configured deployment under the deterministic
// discrete-event engine and returns its convergence curve.
//
// The engine models exactly the protocol's waiting structure: a message
// from node a to node b becomes visible at a's clock plus serialization
// overhead plus a sampled network delay; a receiver waiting on a quorum of q
// proceeds at the q-th earliest arrival (or its own clock, whichever is
// later). Byzantine messages arrive instantly — the adversary owns an
// arbitrarily fast covert network (Figure 1 of the paper), so giving its
// traffic zero latency is the worst case for the honest quorums.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: ctx is checked once per
// protocol step, so a cancelled simulation returns within one step's work.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	var (
		cost      = cfg.cost()
		gradRule  = cfg.gradRule()
		paramRule = cfg.paramRule()
		q         = cfg.quorumServers()
		qBar      = cfg.quorumWorkers()
		lr        = cfg.lr()
		dim       = cfg.Model.ParamCount()
		msgBytes  = transport.VectorBytes(dim)
		rng       = tensor.NewRNG(cfg.Seed)
		// Only GuanYu nodes sanitise inbound payloads; the vanilla baseline
		// faithfully has no Byzantine filtering whatsoever, so a NaN
		// gradient poisons it (Figure 4's point).
		validate = cfg.Mode == ModeGuanYu
	)
	if cfg.Compression.Enabled() {
		// Only the payload shrinks; per-frame framing overhead is unchanged.
		msgBytes = cfg.Compression.PayloadBytes(dim) + transport.VectorBytes(0)
	}

	// xmit models one honest message crossing the wire under the configured
	// compression: the payload is round-tripped through the directed link's
	// encoder/decoder pair, so receivers see exactly the lossy values a live
	// cluster would (float32 truncation, delta reconstruction, top-k with
	// error feedback). Stream state lives per directed link for the whole
	// run, mirroring connection-lifetime codec state on the live transports.
	// Disabled compression passes vectors through untouched.
	var links map[string]*simLink
	if cfg.Compression.Enabled() {
		links = make(map[string]*simLink)
	}
	xmit := func(from, to string, kind transport.Kind, step int, vec tensor.Vector) (tensor.Vector, error) {
		if links == nil {
			return vec, nil
		}
		key := from + "\x00" + to
		l := links[key]
		if l == nil {
			l = &simLink{enc: compress.NewEncoder(cfg.Compression), dec: compress.NewDecoder()}
			links[key] = l
		}
		var err error
		l.buf, err = l.enc.Encode(l.buf[:0], uint8(kind), int64(step), 0, vec)
		if err != nil {
			return nil, fmt.Errorf("core: compress %s→%s: %w", from, to, err)
		}
		out, err := l.dec.Decode(cfg.Compression.Scheme, uint8(kind), int64(step), 0,
			len(vec), l.buf, make(tensor.Vector, 0, len(vec)))
		if err != nil {
			return nil, fmt.Errorf("core: decompress %s→%s: %w", from, to, err)
		}
		return out, nil
	}

	// Honest/Byzantine partitions.
	honestServers := make([]int, 0, cfg.NumServers)
	for i := 0; i < cfg.NumServers; i++ {
		if cfg.ServerAttacks[i] == nil {
			honestServers = append(honestServers, i)
		}
	}
	// Churn: live tracks which honest servers are up. A crashed or departed
	// server is silent (+Inf arrivals) with frozen state; Byzantine servers
	// never churn (a crashing adversary only helps the honest quorums).
	live := make(map[int]bool, len(honestServers))
	for _, i := range honestServers {
		live[i] = true
	}
	var churnByStep map[int][]ChurnEvent
	if cfg.Churn != nil {
		churnByStep = cfg.Churn.byStep()
		for _, i := range cfg.Churn.initialAbsent() {
			live[i] = false
		}
	}
	liveHonest := func() []int {
		out := make([]int, 0, len(honestServers))
		for _, i := range honestServers {
			if live[i] {
				out = append(out, i)
			}
		}
		return out
	}
	honestWorkers := make([]int, 0, cfg.NumWorkers)
	for j := 0; j < cfg.NumWorkers; j++ {
		if cfg.WorkerAttacks[j] == nil {
			honestWorkers = append(honestWorkers, j)
		}
	}

	// State: θ per honest server (all start at θ₀), one model clone and
	// sampler per honest worker, per-node virtual clocks.
	theta0 := cfg.Model.ParamVector()
	theta := make(map[int]tensor.Vector, len(honestServers))
	clockS := make(map[int]float64, len(honestServers))
	velocity := make(map[int]tensor.Vector, len(honestServers))
	for _, i := range honestServers {
		theta[i] = tensor.Clone(theta0)
		if cfg.Momentum > 0 {
			velocity[i] = make(tensor.Vector, dim)
		}
	}
	models := make(map[int]*nn.Sequential, len(honestWorkers))
	samplers := make(map[int]*dataset.Sampler, len(honestWorkers))
	clockW := make(map[int]float64, len(honestWorkers))
	for _, j := range honestWorkers {
		models[j] = cfg.Model.Clone()
		source := cfg.Train
		if len(cfg.WorkerShards) > 0 {
			source = cfg.WorkerShards[j%len(cfg.WorkerShards)]
		}
		samplers[j] = dataset.NewSampler(source, rng.Split())
	}
	evalModel := cfg.Model.Clone()
	evalRNG := rng.Split()

	ser := cost.serOverhead()
	res := &Result{Curve: &stats.Series{Name: deploymentName(cfg)}}

	// honestThetas is the live honest state: a crashed or departed server's
	// frozen θ is not part of the deployment's observable state.
	honestThetas := func() []tensor.Vector {
		out := make([]tensor.Vector, 0, len(theta))
		for _, i := range honestServers {
			if live[i] {
				out = append(out, theta[i])
			}
		}
		return out
	}

	evaluate := func(step int, virtualTime, loss float64) error {
		med, err := gar.Median{}.Aggregate(honestThetas())
		if err != nil {
			return err
		}
		if err := evalModel.SetParamVector(med); err != nil {
			return err
		}
		xs, labels := evalSubset(cfg, evalRNG)
		res.Curve.Add(stats.Point{
			Step:     step,
			Time:     virtualTime,
			Accuracy: nn.Accuracy(evalModel, xs, labels),
			Loss:     loss,
			Drift:    tensor.MaxPairwiseDistance(honestThetas()),
		})
		return nil
	}

	for t := 0; t < cfg.Steps; t++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: run cancelled at step %d: %w", t, err)
		}
		eta := lr(t)

		// Membership changes take effect at the step boundary: crashes and
		// leaves silence their server before this step's traffic; recoveries
		// and joins adopt the coordinate-wise median of the live honest
		// servers' parameters (the simulator's median rejoin) with a clock
		// caught up to the live frontier and any restored momentum discarded
		// — stale velocity would fight the adopted state.
		for _, ev := range churnByStep[t] {
			switch ev.Kind {
			case ChurnCrash, ChurnLeave:
				live[ev.Server] = false
			case ChurnRecover, ChurnJoin:
				med, err := gar.Median{}.Aggregate(honestThetas())
				if err != nil {
					return nil, fmt.Errorf("core: step %d: churn %s of server %d: %w", t, ev.Kind, ev.Server, err)
				}
				theta[ev.Server] = med
				if cfg.Momentum > 0 {
					velocity[ev.Server] = make(tensor.Vector, dim)
				}
				var frontier float64
				for _, i := range liveHonest() {
					if clockS[i] > frontier {
						frontier = clockS[i]
					}
				}
				clockS[ev.Server] = frontier
				live[ev.Server] = true
			}
		}

		// Omniscient server attacks see every honest parameter vector of the
		// step before corrupting (the adversary reads all honest state; it
		// just cannot speak for honest nodes).
		attack.ObserveAll(cfg.ServerAttacks,
			attack.NewStepView(t, honestThetas(), cfg.FServers, len(cfg.ServerAttacks)))

		// ---- Phase 1: servers → workers, median, gradient computation ----
		// Arrival time of server i's parameters at worker j.
		grads := make(map[int]tensor.Vector, len(honestWorkers))
		var meanLoss float64
		for _, j := range honestWorkers {
			arrivals := make([]float64, cfg.NumServers)
			payloads := make([]tensor.Vector, cfg.NumServers)
			for i := 0; i < cfg.NumServers; i++ {
				if att := cfg.ServerAttacks[i]; att != nil {
					vec := att.Corrupt(medianOrFirst(honestThetas()), t, cluster.WorkerID(j))
					if rejectPayload(vec, dim, validate) {
						arrivals[i] = math.Inf(1) // silence or rejected payload
						continue
					}
					payloads[i] = vec
					arrivals[i] = 0 // adversary's covert network: instant
					continue
				}
				if !live[i] {
					arrivals[i] = math.Inf(1) // crashed or departed: silent
					continue
				}
				p, err := xmit(cluster.ServerID(i), cluster.WorkerID(j), transport.KindParams, t, theta[i])
				if err != nil {
					return nil, err
				}
				payloads[i] = p
				arrivals[i] = cfg.Faults.Arrival(t, cluster.ServerID(i), cluster.WorkerID(j),
					clockS[i]+ser+
						cost.Latency.Sample(cluster.ServerID(i), cluster.WorkerID(j), msgBytes)+ser)
			}
			idx, when := transport.QuorumArrival(arrivals, q)
			if math.IsInf(when, 1) {
				return nil, fmt.Errorf("core: step %d: worker %d cannot assemble a parameter quorum (q=%d)", t, j, q)
			}
			sel := make([]tensor.Vector, len(idx))
			for k, i := range idx {
				sel[k] = payloads[i]
			}
			agg, err := paramRule.Aggregate(sel)
			if err != nil {
				return nil, fmt.Errorf("core: step %d worker %d: %w", t, j, err)
			}
			if err := models[j].SetParamVector(agg); err != nil {
				return nil, err
			}
			xs, labels := samplers[j].Batch(cfg.Batch)
			loss, g := nn.BatchGradient(models[j], xs, labels)
			meanLoss += loss
			grads[j] = g
			start := math.Max(when, clockW[j])
			clockW[j] = start + cost.aggTime(paramRule, q) +
				cost.GradBase + cost.GradPerExample*float64(cfg.Batch)
		}
		meanLoss /= float64(len(honestWorkers))

		// Basis gradient handed to the omniscient adversary.
		honestGradList := make([]tensor.Vector, 0, len(grads))
		for _, j := range honestWorkers {
			honestGradList = append(honestGradList, grads[j])
		}
		adversaryBasis := tensor.Mean(honestGradList)
		// Omniscient worker attacks observe every honest gradient of the step.
		attack.ObserveAll(cfg.WorkerAttacks,
			attack.NewStepView(t, honestGradList, cfg.FWorkers, len(cfg.WorkerAttacks)))

		// ---- Phase 2: workers → servers, Multi-Krum, local update ----
		for _, i := range liveHonest() {
			arrivals := make([]float64, cfg.NumWorkers)
			payloads := make([]tensor.Vector, cfg.NumWorkers)
			for j := 0; j < cfg.NumWorkers; j++ {
				if att := cfg.WorkerAttacks[j]; att != nil {
					vec := att.Corrupt(adversaryBasis, t, cluster.ServerID(i))
					if rejectPayload(vec, dim, validate) {
						arrivals[j] = math.Inf(1)
						continue
					}
					payloads[j] = vec
					arrivals[j] = 0
					continue
				}
				p, err := xmit(cluster.WorkerID(j), cluster.ServerID(i), transport.KindGradient, t, grads[j])
				if err != nil {
					return nil, err
				}
				payloads[j] = p
				arrivals[j] = cfg.Faults.Arrival(t, cluster.WorkerID(j), cluster.ServerID(i),
					clockW[j]+ser+
						cost.Latency.Sample(cluster.WorkerID(j), cluster.ServerID(i), msgBytes)+ser)
			}
			idx, when := transport.QuorumArrival(arrivals, qBar)
			if math.IsInf(when, 1) {
				return nil, fmt.Errorf("core: step %d: server %d cannot assemble a gradient quorum (q̄=%d)", t, i, qBar)
			}
			sel := make([]tensor.Vector, len(idx))
			for k, j := range idx {
				sel[k] = payloads[j]
			}
			agg, err := gradRule.Aggregate(sel)
			if err != nil {
				return nil, fmt.Errorf("core: step %d server %d: %w", t, i, err)
			}
			if cfg.Momentum > 0 {
				v := velocity[i]
				tensor.ScaleInPlace(v, cfg.Momentum)
				tensor.AddInPlace(v, agg)
				agg = v
			}
			tensor.AXPY(theta[i], -eta, agg)
			start := math.Max(when, clockS[i])
			clockS[i] = start + cost.aggTime(gradRule, qBar) + cost.UpdateTime
		}

		// ---- Phase 3: server ↔ server contraction round ----
		if cfg.Mode == ModeGuanYu && !cfg.DisableServerExchange && q > 1 {
			// Snapshot so every receiver aggregates the same round's vectors.
			exchangers := liveHonest()
			sentTheta := make(map[int]tensor.Vector, len(exchangers))
			sentClock := make(map[int]float64, len(exchangers))
			for _, i := range exchangers {
				sentTheta[i] = theta[i]
				sentClock[i] = clockS[i]
			}
			medBasis := medianOrFirst(honestThetas())
			// Refresh the omniscient server attacks' view with the updated
			// honest parameter vectors before the contraction round.
			attack.ObserveAll(cfg.ServerAttacks,
				attack.NewStepView(t, honestThetas(), cfg.FServers, len(cfg.ServerAttacks)))
			newTheta := make(map[int]tensor.Vector, len(exchangers))
			for _, i := range exchangers {
				arrivals := make([]float64, cfg.NumServers)
				payloads := make([]tensor.Vector, cfg.NumServers)
				for k := 0; k < cfg.NumServers; k++ {
					switch {
					case k == i:
						payloads[k] = sentTheta[i]
						arrivals[k] = sentClock[i] // own vector: no network
					case cfg.ServerAttacks[k] == nil && !live[k]:
						arrivals[k] = math.Inf(1) // crashed or departed: silent
					case cfg.ServerAttacks[k] != nil:
						vec := cfg.ServerAttacks[k].Corrupt(medBasis, t, cluster.ServerID(i))
						if rejectPayload(vec, dim, validate) {
							arrivals[k] = math.Inf(1)
							continue
						}
						payloads[k] = vec
						arrivals[k] = 0
					default:
						p, err := xmit(cluster.ServerID(k), cluster.ServerID(i), transport.KindPeerParams, t, sentTheta[k])
						if err != nil {
							return nil, err
						}
						payloads[k] = p
						arrivals[k] = cfg.Faults.Arrival(t, cluster.ServerID(k), cluster.ServerID(i),
							sentClock[k]+ser+
								cost.Latency.Sample(cluster.ServerID(k), cluster.ServerID(i), msgBytes)+ser)
					}
				}
				idx, when := transport.QuorumArrival(arrivals, q)
				if math.IsInf(when, 1) {
					return nil, fmt.Errorf("core: step %d: server %d cannot assemble a peer quorum (q=%d)", t, i, q)
				}
				sel := make([]tensor.Vector, len(idx))
				for k, s := range idx {
					sel[k] = payloads[s]
				}
				agg, err := paramRule.Aggregate(sel)
				if err != nil {
					return nil, fmt.Errorf("core: step %d server %d exchange: %w", t, i, err)
				}
				newTheta[i] = agg
				start := math.Max(when, clockS[i])
				clockS[i] = start + cost.aggTime(paramRule, q)
			}
			for i, v := range newTheta {
				theta[i] = v
			}
		}

		// ---- Instrumentation ----
		update := t + 1
		if update%cfg.evalEvery() == 0 || update == cfg.Steps {
			if err := evaluate(update, maxClock(clockS), meanLoss); err != nil {
				return nil, err
			}
		}
		if cfg.AlignEvery > 0 && update%cfg.AlignEvery == 0 && update >= cfg.AlignAfter {
			if rec, ok := stats.Alignment(update, honestThetas()); ok {
				res.Alignments = append(res.Alignments, rec)
			}
		}
	}

	final, err := gar.Median{}.Aggregate(honestThetas())
	if err != nil {
		return nil, err
	}
	if err := evalModel.SetParamVector(final); err != nil {
		return nil, err
	}
	res.Final = final
	res.FinalAccuracy = nn.Accuracy(evalModel, cfg.Test.X, cfg.Test.Labels)
	res.VirtualTime = maxClock(clockS)
	res.Updates = cfg.Steps
	return res, nil
}

// simLink is one directed link's compression codec pair: the engine has no
// sockets, so the sender's encoder and the receiver's decoder live together,
// with a reused scratch buffer for the encoded payload between them.
type simLink struct {
	enc *compress.Encoder
	dec *compress.Decoder
	buf []byte
}

// evalSubset returns the evaluation examples (a random subset of Test when
// EvalExamples is set, to keep per-point evaluation cheap).
func evalSubset(cfg Config, rng *tensor.RNG) ([][]float64, []int) {
	n := cfg.EvalExamples
	if n <= 0 {
		n = 256
	}
	if cfg.Test.Len() <= n {
		return cfg.Test.X, cfg.Test.Labels
	}
	xs := make([][]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		k := rng.Intn(cfg.Test.Len())
		xs[i] = cfg.Test.X[k]
		labels[i] = cfg.Test.Labels[k]
	}
	return xs, labels
}

// rejectPayload decides whether a Byzantine payload is dropped at receipt:
// nil means silence; wrong dimension is always malformed; non-finite values
// are rejected only by validating (GuanYu) receivers.
func rejectPayload(vec tensor.Vector, dim int, validate bool) bool {
	if vec == nil || len(vec) != dim {
		return true
	}
	return validate && !tensor.IsFinite(vec)
}

// medianOrFirst gives the adversary its omniscient view of the honest state.
func medianOrFirst(thetas []tensor.Vector) tensor.Vector {
	if len(thetas) == 1 {
		return thetas[0]
	}
	med, err := gar.Median{}.Aggregate(thetas)
	if err != nil {
		return thetas[0]
	}
	return med
}

func maxClock(clocks map[int]float64) float64 {
	var m float64
	for _, c := range clocks {
		if c > m {
			m = c
		}
	}
	return m
}

// deploymentName labels result curves the way the paper's legends do.
func deploymentName(cfg Config) string {
	switch cfg.Mode {
	case ModeVanilla:
		if cfg.cost().OptimizedRuntime {
			return "vanilla TF"
		}
		return "GuanYu (vanilla)"
	default:
		return fmt.Sprintf("GuanYu (fwrk=%d, fps=%d)", cfg.FWorkers, cfg.FServers)
	}
}
