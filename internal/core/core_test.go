package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/gar"
	"repro/internal/tensor"
)

// fastBlob returns a quick config on the blob workload.
func fastGuanYu(w Workload, steps int, seed uint64) Config {
	cfg := GuanYu(w, 1, 1, steps, 16, seed)
	cfg.NumWorkers = 6
	cfg.FWorkers = 1
	cfg.LR = func(int) float64 { return 0.2 }
	cfg.EvalEvery = 10
	return cfg
}

func TestValidateConfig(t *testing.T) {
	w := BlobWorkload(200, 1)
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"missing model", func(c *Config) { c.Model = nil }, "required"},
		{"zero steps", func(c *Config) { c.Steps = 0 }, "positive"},
		{"bad servers", func(c *Config) { c.NumServers = 5 }, "3f+3"},
		{"bad workers", func(c *Config) { c.NumWorkers = 5 }, "3f+3"},
		{"quorum too big", func(c *Config) { c.QuorumServers = 6 }, "n−f"},
		{"quorum too small", func(c *Config) { c.QuorumWorkers = 4 }, "2f+3"},
		{"unknown mode", func(c *Config) { c.Mode = 0 }, "mode"},
		{"all workers byz", func(c *Config) {
			c.WorkerAttacks = map[int]attack.Attack{}
			for i := 0; i < c.NumWorkers; i++ {
				c.WorkerAttacks[i] = attack.Zero{}
			}
		}, "Byzantine"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := fastGuanYu(w, 1, 1)
			tt.mutate(&cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("want error containing %q, got %v", tt.wantErr, err)
			}
		})
	}

	// Vanilla mode rejects replicated servers.
	v := VanillaTF(w, 10, 8, 1)
	v.NumServers = 3
	if err := v.Validate(); err == nil {
		t.Fatal("vanilla with 3 servers accepted")
	}
}

func TestRunGuanYuConvergesOnBlobs(t *testing.T) {
	w := BlobWorkload(600, 10)
	cfg := fastGuanYu(w, 100, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("final accuracy %.3f < 0.9", res.FinalAccuracy)
	}
	if res.Updates != 100 {
		t.Fatalf("updates = %d", res.Updates)
	}
	if res.VirtualTime <= 0 {
		t.Fatalf("virtual time %v", res.VirtualTime)
	}
	if len(res.Curve.Points) == 0 {
		t.Fatal("no curve points recorded")
	}
	// Virtual time must be monotone along the curve.
	for i := 1; i < len(res.Curve.Points); i++ {
		if res.Curve.Points[i].Time < res.Curve.Points[i-1].Time {
			t.Fatal("virtual clock went backwards")
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	w := BlobWorkload(300, 20)
	cfg := fastGuanYu(w, 30, 3)
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the workload so model init matches.
	w2 := BlobWorkload(300, 20)
	cfg2 := fastGuanYu(w2, 30, 3)
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.FinalAccuracy != r2.FinalAccuracy || r1.VirtualTime != r2.VirtualTime {
		t.Fatalf("non-deterministic: acc %v vs %v, time %v vs %v",
			r1.FinalAccuracy, r2.FinalAccuracy, r1.VirtualTime, r2.VirtualTime)
	}
	for i := range r1.Final {
		if r1.Final[i] != r2.Final[i] {
			t.Fatal("final parameters differ across identical runs")
		}
	}
}

func TestRunSurvivesByzantineMinority(t *testing.T) {
	w := BlobWorkload(600, 30)
	cfg := fastGuanYu(w, 100, 4)
	cfg = WithByzantineWorkers(cfg, 1, func(i int) attack.Attack {
		return attack.ScaledNorm{Factor: 1e8}
	})
	cfg = WithByzantineServers(cfg, 1, func(i int) attack.Attack {
		return attack.TwoFaced{Inner: attack.NewRandomGaussian(100, uint64(50+i))}
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.IsFinite(res.Final) {
		t.Fatal("Byzantine values leaked into the final model")
	}
	if res.FinalAccuracy < 0.85 {
		t.Fatalf("GuanYu collapsed under attack: accuracy %.3f", res.FinalAccuracy)
	}
}

func TestRunVanillaDivergesUnderAttack(t *testing.T) {
	w := BlobWorkload(600, 40)
	cfg := VanillaTF(w, 60, 16, 5)
	cfg.NumWorkers = 6
	cfg.LR = func(int) float64 { return 0.2 }
	cfg = WithByzantineWorkers(cfg, 1, func(int) attack.Attack {
		return attack.ScaledNorm{Factor: 1e9}
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.IsFinite(res.Final) && res.FinalAccuracy > 0.6 {
		t.Fatalf("vanilla survived an attack it must not survive: %.3f", res.FinalAccuracy)
	}
}

func TestRunVanillaConvergesClean(t *testing.T) {
	w := BlobWorkload(600, 50)
	cfg := VanillaTF(w, 100, 16, 6)
	cfg.NumWorkers = 6
	cfg.LR = func(int) float64 { return 0.2 }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("vanilla failed to converge: %.3f", res.FinalAccuracy)
	}
	if res.Curve.Name != "vanilla TF" {
		t.Fatalf("curve name %q", res.Curve.Name)
	}
}

func TestVanillaGuanYuIsSlowerThanVanillaTF(t *testing.T) {
	// Same topology and semantics; only the runtime overhead differs — so
	// the per-update curves coincide and the per-time curve is slower.
	w1 := BlobWorkload(600, 60)
	tf, err := Run(withFastLR(VanillaTF(w1, 60, 16, 7)))
	if err != nil {
		t.Fatal(err)
	}
	w2 := BlobWorkload(600, 60)
	gy, err := Run(withFastLR(VanillaGuanYu(w2, 60, 16, 7)))
	if err != nil {
		t.Fatal(err)
	}
	if gy.VirtualTime <= tf.VirtualTime {
		t.Fatalf("vanilla GuanYu (%.3fs) should be slower than vanilla TF (%.3fs)",
			gy.VirtualTime, tf.VirtualTime)
	}
	if math.Abs(gy.FinalAccuracy-tf.FinalAccuracy) > 0.15 {
		t.Fatalf("same-semantics runs diverged in accuracy: %.3f vs %.3f",
			gy.FinalAccuracy, tf.FinalAccuracy)
	}
}

func withFastLR(cfg Config) Config {
	cfg.NumWorkers = 6
	cfg.LR = func(int) float64 { return 0.2 }
	return cfg
}

func TestAlignmentProbeRecords(t *testing.T) {
	w := BlobWorkload(400, 70)
	cfg := fastGuanYu(w, 60, 8)
	cfg.AlignEvery = 20
	cfg.AlignAfter = 20
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alignments) == 0 {
		t.Fatal("alignment probe recorded nothing")
	}
	for _, r := range res.Alignments {
		if r.CosPhi < 0 || r.CosPhi > 1+1e-12 {
			t.Fatalf("cos φ out of range: %v", r.CosPhi)
		}
		if r.Step < 20 {
			t.Fatalf("record before AlignAfter: step %d", r.Step)
		}
	}
}

func TestContractionAblationIncreasesDrift(t *testing.T) {
	// Removing phase 3 must increase how far honest servers drift apart —
	// the design choice the contraction proof is about.
	run := func(disable bool, seed uint64) float64 {
		w := BlobWorkload(400, 80)
		cfg := fastGuanYu(w, 60, seed)
		cfg.DisableServerExchange = disable
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last := res.Curve.Points[len(res.Curve.Points)-1]
		return last.Drift
	}
	withExchange := run(false, 9)
	without := run(true, 9)
	if without <= withExchange {
		t.Fatalf("contraction round had no effect: drift %.4f (on) vs %.4f (off)",
			withExchange, without)
	}
}

func TestDeclaredQuorumAffectsSelection(t *testing.T) {
	// Larger declared f̄ means a larger gradient quorum: servers wait for
	// more workers each step, so virtual time per update must grow.
	small := fastGuanYu(BlobWorkload(400, 90), 30, 11) // f̄=1 → q̄=5
	large := fastGuanYu(BlobWorkload(400, 90), 30, 11)
	large.QuorumWorkers = 5 // keep same for determinism reference
	resSmall, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	wide := fastGuanYu(BlobWorkload(400, 90), 30, 11)
	wide.NumWorkers = 9
	wide.FWorkers = 2 // q̄ = 7 of 9
	resWide, err := Run(wide)
	if err != nil {
		t.Fatal(err)
	}
	if resWide.VirtualTime <= resSmall.VirtualTime {
		t.Logf("note: wide quorum not slower (%.3f vs %.3f); acceptable on tiny nets",
			resWide.VirtualTime, resSmall.VirtualTime)
	}
	if resWide.FinalAccuracy < 0.7 {
		t.Fatalf("wide-quorum run failed outright: %.3f", resWide.FinalAccuracy)
	}
}

func TestRunWithAlternateRules(t *testing.T) {
	for _, rule := range []gar.Rule{gar.Median{}, gar.TrimmedMean{F: 1}} {
		w := BlobWorkload(400, 100)
		cfg := fastGuanYu(w, 60, 12)
		cfg.Rule = rule
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", rule.Name(), err)
		}
		if res.FinalAccuracy < 0.8 {
			t.Fatalf("%s failed to converge: %.3f", rule.Name(), res.FinalAccuracy)
		}
	}
}

func TestSilentByzantineServerInSim(t *testing.T) {
	w := BlobWorkload(400, 110)
	cfg := fastGuanYu(w, 60, 13)
	cfg = WithByzantineServers(cfg, 1, func(int) attack.Attack { return attack.Silent{} })
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.85 {
		t.Fatalf("silent server broke the run: %.3f", res.FinalAccuracy)
	}
}

func TestLivenessViolationIsAnError(t *testing.T) {
	// 2 actually-silent servers but q = n−f = 5 means only 4 respond:
	// the run must fail with a quorum error, not hang or mislearn.
	w := BlobWorkload(200, 120)
	cfg := fastGuanYu(w, 5, 14)
	cfg.QuorumServers = 5
	cfg.ServerAttacks = map[int]attack.Attack{
		0: attack.Silent{},
		1: attack.Silent{},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected liveness error")
	}
}

func TestCostModelPricing(t *testing.T) {
	cm := DefaultCostModel(1)
	if cm.aggTime(gar.Mean{}, 10) >= cm.aggTime(gar.Median{}, 10) {
		t.Fatal("median must cost more than mean")
	}
	if cm.aggTime(gar.Median{}, 10) >= cm.aggTime(gar.MultiKrum{F: 1}, 10) {
		t.Fatal("multi-krum must cost more than median")
	}
	cm.OptimizedRuntime = true
	if cm.serOverhead() != 0 {
		t.Fatal("optimized runtime must zero serialization overhead")
	}
	cm.OptimizedRuntime = false
	if cm.serOverhead() <= 0 {
		t.Fatal("non-optimized runtime must pay serialization overhead")
	}
}

func TestModeString(t *testing.T) {
	if ModeVanilla.String() != "vanilla" || ModeGuanYu.String() != "guanyu" {
		t.Fatal("mode strings wrong")
	}
	if Mode(0).String() != "unknown" {
		t.Fatal("zero mode should be unknown")
	}
}
