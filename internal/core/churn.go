package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/attack"
)

// ChurnKind is one kind of membership/liveness change.
type ChurnKind int

// Churn event kinds. Crash and Recover model a fail-recovery server (silent
// while down, frozen state, rejoins by adopting the live median); Join and
// Leave model roster changes (a server entering or exiting the deployment at
// a step boundary).
const (
	ChurnCrash ChurnKind = iota + 1
	ChurnRecover
	ChurnJoin
	ChurnLeave
)

// String implements fmt.Stringer.
func (k ChurnKind) String() string {
	switch k {
	case ChurnCrash:
		return "crash"
	case ChurnRecover:
		return "recover"
	case ChurnJoin:
		return "join"
	case ChurnLeave:
		return "leave"
	default:
		return "unknown"
	}
}

// ChurnEvent is one membership change, effective at the start of Step:
// a crashed or departed server contributes +Inf arrivals (silence) from that
// step on; a recovering or joining server adopts the coordinate-wise median
// of the live honest servers' parameters — the simulator's analogue of the
// live cluster's median rejoin — and participates from that step on.
type ChurnEvent struct {
	// Step is the boundary at which the event takes effect (0-based; the
	// event is applied before step Step executes).
	Step int
	// Kind is the change.
	Kind ChurnKind
	// Server is the server index the change applies to. Only honest servers
	// may churn: the adversary's nodes are assumed always-on (an adversary
	// that crashes its own machines only helps the honest quorums).
	Server int
}

// ChurnPlan is a deterministic schedule of membership changes applied to the
// simulated server population at step boundaries. The zero value (or nil)
// applies no churn. A server whose first event is a join is absent from the
// start of the run.
type ChurnPlan struct {
	// Events is the schedule. Order is irrelevant; at most one event per
	// (server, step) pair.
	Events []ChurnEvent
}

// initialAbsent returns the servers absent at the start of the run: those
// whose earliest event is a join.
func (p *ChurnPlan) initialAbsent() []int {
	first := make(map[int]ChurnEvent)
	for _, ev := range p.Events {
		got, ok := first[ev.Server]
		if !ok || ev.Step < got.Step {
			first[ev.Server] = ev
		}
	}
	absent := make([]int, 0, len(first))
	for i, ev := range first {
		if ev.Kind == ChurnJoin {
			absent = append(absent, i)
		}
	}
	sort.Ints(absent)
	return absent
}

// byStep indexes the schedule by effective step, with down-events (crash,
// leave) ordered before up-events (recover, join) within a boundary so a
// same-step recovery adopts state from the post-crash live set, and ties
// broken by server index for determinism.
func (p *ChurnPlan) byStep() map[int][]ChurnEvent {
	out := make(map[int][]ChurnEvent)
	for _, ev := range p.Events {
		out[ev.Step] = append(out[ev.Step], ev)
	}
	down := func(k ChurnKind) bool { return k == ChurnCrash || k == ChurnLeave }
	for _, evs := range out {
		sort.Slice(evs, func(a, b int) bool {
			da, db := down(evs[a].Kind), down(evs[b].Kind)
			if da != db {
				return da
			}
			return evs[a].Server < evs[b].Server
		})
	}
	return out
}

// Validate checks the schedule against the deployment: every event in range
// and on an honest server, per-server transitions well-formed (crash only
// while up, recover only while crashed, join only while absent, leave only
// while up), and — the liveness bound — at every boundary the number of live
// honest servers stays at least q, so churn consumes the crash-fault margin
// the quorum discipline already budgets for and never strands a receiver.
func (p *ChurnPlan) Validate(numServers, steps, q int, attacks map[int]attack.Attack) error {
	if p == nil || len(p.Events) == 0 {
		return nil
	}
	type slot struct{ server, step int }
	seen := make(map[slot]bool, len(p.Events))
	for _, ev := range p.Events {
		if ev.Step < 0 || ev.Step >= steps {
			return fmt.Errorf("core: churn %s of server %d at step %d outside run of %d steps", ev.Kind, ev.Server, ev.Step, steps)
		}
		if ev.Server < 0 || ev.Server >= numServers {
			return fmt.Errorf("core: churn %s at step %d targets server %d of %d", ev.Kind, ev.Step, ev.Server, numServers)
		}
		if attacks[ev.Server] != nil {
			return fmt.Errorf("core: churn %s at step %d targets Byzantine server %d; only honest servers churn", ev.Kind, ev.Step, ev.Server)
		}
		s := slot{ev.Server, ev.Step}
		if seen[s] {
			return fmt.Errorf("core: two churn events for server %d at step %d", ev.Server, ev.Step)
		}
		seen[s] = true
	}

	// Replay the schedule through each server's state machine and track the
	// live honest population.
	const (
		up = iota
		crashed
		absent
	)
	state := make(map[int]int)
	live := 0
	for i := 0; i < numServers; i++ {
		if attacks[i] == nil {
			state[i] = up
			live++
		}
	}
	for _, i := range p.initialAbsent() {
		state[i] = absent
		live--
	}
	if live < q {
		return fmt.Errorf("core: churn plan starts with %d live honest servers, quorum needs %d", live, q)
	}
	byStep := p.byStep()
	stepsWithEvents := make([]int, 0, len(byStep))
	for t := range byStep {
		stepsWithEvents = append(stepsWithEvents, t)
	}
	sort.Ints(stepsWithEvents)
	for _, t := range stepsWithEvents {
		for _, ev := range byStep[t] {
			st := state[ev.Server]
			switch ev.Kind {
			case ChurnCrash:
				if st != up {
					return fmt.Errorf("core: crash of server %d at step %d: server is not up", ev.Server, t)
				}
				state[ev.Server] = crashed
				live--
			case ChurnRecover:
				if st != crashed {
					return fmt.Errorf("core: recover of server %d at step %d: server is not crashed", ev.Server, t)
				}
				state[ev.Server] = up
				live++
			case ChurnJoin:
				if st != absent {
					return fmt.Errorf("core: join of server %d at step %d: server is already present", ev.Server, t)
				}
				state[ev.Server] = up
				live++
			case ChurnLeave:
				if st != up {
					return fmt.Errorf("core: leave of server %d at step %d: server is not up", ev.Server, t)
				}
				state[ev.Server] = absent
				live--
			default:
				return fmt.Errorf("core: unknown churn kind %d", ev.Kind)
			}
		}
		if live < q {
			return fmt.Errorf("core: churn at step %d leaves %d live honest servers, quorum needs %d", t, live, q)
		}
	}
	return nil
}

// ParseChurn parses an explicit churn schedule of the form
// "kind:server@step,kind:server@step,..." — for example
// "crash:0@10,recover:0@20". The empty string and "none" parse to nil.
func ParseChurn(spec string) (*ChurnPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	var plan ChurnPlan
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("core: churn event %q: want kind:server@step", tok)
		}
		var kind ChurnKind
		switch kindStr {
		case "crash":
			kind = ChurnCrash
		case "recover":
			kind = ChurnRecover
		case "join":
			kind = ChurnJoin
		case "leave":
			kind = ChurnLeave
		default:
			return nil, fmt.Errorf("core: churn event %q: unknown kind %q", tok, kindStr)
		}
		serverStr, stepStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("core: churn event %q: want kind:server@step", tok)
		}
		server, err := strconv.Atoi(serverStr)
		if err != nil {
			return nil, fmt.Errorf("core: churn event %q: bad server index: %v", tok, err)
		}
		step, err := strconv.Atoi(stepStr)
		if err != nil {
			return nil, fmt.Errorf("core: churn event %q: bad step: %v", tok, err)
		}
		plan.Events = append(plan.Events, ChurnEvent{Step: step, Kind: kind, Server: server})
	}
	if len(plan.Events) == 0 {
		return nil, nil
	}
	return &plan, nil
}

// ChurnPreset expands a named churn scenario against a concrete deployment.
// Presets only ever churn honest servers (Byzantine indices are skipped).
//
//	none      — no churn (nil plan)
//	crash     — f honest servers crash near steps/4 and recover near
//	            steps/2: the paper's fail-recovery margin exercised at
//	            full declared width
//	rolling   — a rolling restart: every honest server in turn crashes and
//	            recovers, one at a time, spread across the run
//	joinleave — elastic roster: the highest honest server is absent at the
//	            start and joins at steps/3; the lowest honest server leaves
//	            at 2·steps/3
//
// Any other name is parsed as an explicit "kind:server@step,..." schedule
// via ParseChurn.
func ChurnPreset(name string, numServers, fServers, steps int, attacks map[int]attack.Attack) (*ChurnPlan, error) {
	honest := make([]int, 0, numServers)
	for i := 0; i < numServers; i++ {
		if attacks[i] == nil {
			honest = append(honest, i)
		}
	}
	switch name {
	case "", "none":
		return nil, nil
	case "crash":
		if fServers < 1 {
			return nil, fmt.Errorf("core: churn preset %q needs f ≥ 1", name)
		}
		if len(honest) < fServers {
			return nil, fmt.Errorf("core: churn preset %q: only %d honest servers for f=%d crashes", name, len(honest), fServers)
		}
		var plan ChurnPlan
		for k := 0; k < fServers; k++ {
			plan.Events = append(plan.Events,
				ChurnEvent{Step: steps/4 + k, Kind: ChurnCrash, Server: honest[k]},
				ChurnEvent{Step: steps/2 + k, Kind: ChurnRecover, Server: honest[k]},
			)
		}
		return &plan, nil
	case "rolling":
		gap := steps / (len(honest) + 1)
		if gap < 2 {
			return nil, fmt.Errorf("core: churn preset %q needs ≥ %d steps for %d honest servers, got %d", name, 2*(len(honest)+1), len(honest), steps)
		}
		var plan ChurnPlan
		for k, i := range honest {
			start := 1 + k*gap
			plan.Events = append(plan.Events,
				ChurnEvent{Step: start, Kind: ChurnCrash, Server: i},
				ChurnEvent{Step: start + gap - 1, Kind: ChurnRecover, Server: i},
			)
		}
		return &plan, nil
	case "joinleave":
		if len(honest) < 2 {
			return nil, fmt.Errorf("core: churn preset %q needs ≥ 2 honest servers", name)
		}
		if steps < 3 {
			return nil, fmt.Errorf("core: churn preset %q needs ≥ 3 steps", name)
		}
		joiner := honest[len(honest)-1]
		leaver := honest[0]
		return &ChurnPlan{Events: []ChurnEvent{
			{Step: steps / 3, Kind: ChurnJoin, Server: joiner},
			{Step: 2 * steps / 3, Kind: ChurnLeave, Server: leaver},
		}}, nil
	default:
		return ParseChurn(name)
	}
}
