package core

import (
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/gar"
	"repro/internal/tensor"
)

// recordingOmniscient captures the views the engine feeds it, then behaves
// like a sign-flip.
type recordingOmniscient struct {
	mu    sync.Mutex
	views []attack.ClusterView
}

func (r *recordingOmniscient) Name() string { return "recording" }

func (r *recordingOmniscient) Observe(v attack.ClusterView) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.views = append(r.views, v)
}

func (r *recordingOmniscient) Corrupt(honest tensor.Vector, _ int, _ string) tensor.Vector {
	return tensor.Scale(honest, -1)
}

func TestSimFeedsOmniscientViews(t *testing.T) {
	w := BlobWorkload(300, 3)
	cfg := GuanYu(w, 1, 1, 4, 4, 3)
	workerRec := &recordingOmniscient{}
	serverRec := &recordingOmniscient{}
	cfg.WorkerAttacks = map[int]attack.Attack{0: workerRec}
	cfg.ServerAttacks = map[int]attack.Attack{0: serverRec}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	// Worker attacks see one complete honest-gradient view per step.
	if len(workerRec.views) != cfg.Steps {
		t.Fatalf("worker attack observed %d views, want %d", len(workerRec.views), cfg.Steps)
	}
	honestWorkers := cfg.NumWorkers - 1
	for i, v := range workerRec.views {
		if v.Step() != i {
			t.Fatalf("view %d has step %d", i, v.Step())
		}
		if len(v.Honest()) != honestWorkers {
			t.Fatalf("view %d sees %d honest gradients, want %d", i, len(v.Honest()), honestWorkers)
		}
		if v.F() != cfg.FWorkers || v.Colluders() != 1 {
			t.Fatalf("view %d metadata: f=%d colluders=%d", i, v.F(), v.Colluders())
		}
	}
	// Server attacks are refreshed before phase 1 AND before the phase-3
	// contraction round: two views per step, full honest-θ visibility.
	if len(serverRec.views) != 2*cfg.Steps {
		t.Fatalf("server attack observed %d views, want %d", len(serverRec.views), 2*cfg.Steps)
	}
	honestServers := cfg.NumServers - 1
	for i, v := range serverRec.views {
		if len(v.Honest()) != honestServers {
			t.Fatalf("server view %d sees %d honest thetas, want %d", i, len(v.Honest()), honestServers)
		}
	}
}

// The adaptive adversaries must actually run end-to-end under the robust
// deployment: GuanYu absorbs them where the unprotected mean baseline is
// destroyed by the same collusion.
func TestSimAdaptiveAttacksEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("macro run")
	}
	for _, spec := range []string{"alie:z=1.5", "ipm:eps=3", "antikrum", "mimic"} {
		mk, err := attack.FromSpec(spec, 17)
		if err != nil {
			t.Fatal(err)
		}
		cfg := GuanYu(BlobWorkload(400, 5), 5, 0, 40, 8, 5)
		cfg = WithByzantineWorkers(cfg, 5, mk)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !tensor.IsFinite(res.Final) {
			t.Fatalf("%s: poisoned the robust deployment", spec)
		}
		if res.FinalAccuracy < 0.6 {
			t.Fatalf("%s: GuanYu accuracy %.3f under adaptive collusion", spec, res.FinalAccuracy)
		}
	}

	// The same inner-product collusion against the unprotected mean: one
	// epsilon large enough flips the aggregate's sign and training never
	// converges.
	mk, err := attack.FromSpec("ipm:eps=5", 17)
	if err != nil {
		t.Fatal(err)
	}
	cfg := GuanYu(BlobWorkload(400, 5), 5, 0, 40, 8, 5)
	cfg.Rule = gar.Mean{}
	cfg = WithByzantineWorkers(cfg, 5, mk)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy > 0.6 {
		t.Fatalf("mean aggregation should not survive ipm:eps=5, accuracy %.3f", res.FinalAccuracy)
	}
}
