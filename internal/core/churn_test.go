package core

import (
	"strings"
	"testing"

	"repro/internal/attack"
)

func TestParseChurn(t *testing.T) {
	plan, err := ParseChurn("crash:0@10, recover:0@20,join:5@12")
	if err != nil {
		t.Fatal(err)
	}
	want := []ChurnEvent{
		{Step: 10, Kind: ChurnCrash, Server: 0},
		{Step: 20, Kind: ChurnRecover, Server: 0},
		{Step: 12, Kind: ChurnJoin, Server: 5},
	}
	if len(plan.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(plan.Events), len(want))
	}
	for i, ev := range plan.Events {
		if ev != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
	for _, spec := range []string{"", "none", " ", ","} {
		if p, err := ParseChurn(spec); err != nil || p != nil {
			t.Fatalf("ParseChurn(%q) = %v, %v; want nil, nil", spec, p, err)
		}
	}
	for _, spec := range []string{"crash", "crash:0", "crash:x@3", "crash:0@y", "explode:0@3"} {
		if _, err := ParseChurn(spec); err == nil {
			t.Fatalf("ParseChurn(%q) accepted", spec)
		}
	}
}

func TestChurnPlanValidate(t *testing.T) {
	const n, steps, q = 6, 40, 5
	byz := map[int]attack.Attack{5: attack.Zero{}}
	tests := []struct {
		name    string
		events  []ChurnEvent
		attacks map[int]attack.Attack
		wantErr string
	}{
		{"step out of range", []ChurnEvent{{Step: 40, Kind: ChurnCrash, Server: 0}}, nil, "outside run"},
		{"server out of range", []ChurnEvent{{Step: 1, Kind: ChurnCrash, Server: 6}}, nil, "targets server"},
		{"byzantine target", []ChurnEvent{{Step: 1, Kind: ChurnCrash, Server: 5}}, byz, "Byzantine"},
		{"double event", []ChurnEvent{
			{Step: 1, Kind: ChurnCrash, Server: 0}, {Step: 1, Kind: ChurnRecover, Server: 0},
		}, nil, "two churn events"},
		{"crash while down", []ChurnEvent{
			{Step: 1, Kind: ChurnCrash, Server: 0}, {Step: 2, Kind: ChurnCrash, Server: 0},
		}, nil, "not up"},
		{"recover while up", []ChurnEvent{{Step: 3, Kind: ChurnRecover, Server: 0}}, nil, "not crashed"},
		{"join while present", []ChurnEvent{{Step: 3, Kind: ChurnJoin, Server: 0}, {Step: 5, Kind: ChurnJoin, Server: 0}}, nil, "already present"},
		{"leave while down", []ChurnEvent{
			{Step: 1, Kind: ChurnCrash, Server: 0}, {Step: 2, Kind: ChurnLeave, Server: 0},
		}, nil, "not up"},
		{"quorum floor", []ChurnEvent{
			{Step: 1, Kind: ChurnCrash, Server: 0}, {Step: 2, Kind: ChurnCrash, Server: 1},
		}, nil, "quorum needs"},
		{"quorum floor at start", []ChurnEvent{
			{Step: 9, Kind: ChurnJoin, Server: 0}, {Step: 9, Kind: ChurnJoin, Server: 1},
		}, nil, "starts with"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := &ChurnPlan{Events: tt.events}
			err := p.Validate(n, steps, q, tt.attacks)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("want error containing %q, got %v", tt.wantErr, err)
			}
		})
	}

	// A legal fail-recovery plan passes, including a same-step handoff where
	// one server recovers at the boundary another crashes.
	ok := &ChurnPlan{Events: []ChurnEvent{
		{Step: 5, Kind: ChurnCrash, Server: 0},
		{Step: 10, Kind: ChurnRecover, Server: 0},
		{Step: 10, Kind: ChurnCrash, Server: 1},
		{Step: 20, Kind: ChurnRecover, Server: 1},
	}}
	if err := ok.Validate(n, steps, q, nil); err != nil {
		t.Fatalf("legal plan rejected: %v", err)
	}
	var nilPlan *ChurnPlan
	if err := nilPlan.Validate(n, steps, q, nil); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}
}

func TestChurnPresets(t *testing.T) {
	const n, f, steps, q = 6, 1, 60, 5
	for _, name := range []string{"crash", "rolling", "joinleave"} {
		plan, err := ChurnPreset(name, n, f, steps, nil)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if plan == nil || len(plan.Events) == 0 {
			t.Fatalf("preset %q produced no events", name)
		}
		if err := plan.Validate(n, steps, q, nil); err != nil {
			t.Fatalf("preset %q invalid against its own deployment: %v", name, err)
		}
	}
	if plan, err := ChurnPreset("none", n, f, steps, nil); err != nil || plan != nil {
		t.Fatalf("preset none = %v, %v", plan, err)
	}
	// Unknown names fall through to the explicit-schedule parser.
	plan, err := ChurnPreset("crash:2@7,recover:2@11", n, f, steps, nil)
	if err != nil || len(plan.Events) != 2 {
		t.Fatalf("explicit schedule via preset: %v, %v", plan, err)
	}
	// Presets skip Byzantine indices: with server 0 Byzantine, the crash
	// preset must pick an honest victim.
	byz := map[int]attack.Attack{0: attack.Zero{}}
	plan, err = ChurnPreset("crash", n, f, steps, byz)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range plan.Events {
		if ev.Server == 0 {
			t.Fatal("crash preset churned the Byzantine server")
		}
	}
	if _, err := ChurnPreset("rolling", n, f, 10, nil); err == nil {
		t.Fatal("rolling preset accepted a run too short to roll through")
	}
}

func TestConfigRejectsBadChurn(t *testing.T) {
	w := BlobWorkload(200, 1)
	cfg := fastGuanYu(w, 20, 1)
	cfg.Churn = &ChurnPlan{Events: []ChurnEvent{{Step: 25, Kind: ChurnCrash, Server: 0}}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("out-of-range churn accepted")
	}
	v := VanillaTF(w, 20, 8, 1)
	v.Churn = &ChurnPlan{Events: []ChurnEvent{{Step: 5, Kind: ChurnCrash, Server: 0}}}
	if err := v.Validate(); err == nil || !strings.Contains(err.Error(), "GuanYu") {
		t.Fatalf("vanilla churn: %v", err)
	}
}

// TestRunWithCrashRecoverChurn is the simulator's fail-recovery scenario: an
// honest server crashes at steps/4, is silent (frozen state) through the
// outage, recovers at steps/2 by adopting the live median, and the
// deployment still converges — while a Byzantine worker attacks throughout.
func TestRunWithCrashRecoverChurn(t *testing.T) {
	w := BlobWorkload(600, 10)
	cfg := fastGuanYu(w, 100, 2)
	cfg = WithByzantineWorkers(cfg, 1, func(int) attack.Attack {
		return attack.SignFlip{Scale: 10}
	})
	plan, err := ChurnPreset("crash", cfg.NumServers, cfg.FServers, cfg.Steps, cfg.ServerAttacks)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Churn = plan
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("crash-recover churn broke convergence: accuracy %.3f", res.FinalAccuracy)
	}

	// And the whole thing is bit-identical across reruns — churn is part of
	// the deterministic schedule, not a source of nondeterminism.
	w2 := BlobWorkload(600, 10)
	cfg2 := fastGuanYu(w2, 100, 2)
	cfg2 = WithByzantineWorkers(cfg2, 1, func(int) attack.Attack {
		return attack.SignFlip{Scale: 10}
	})
	plan2, err := ChurnPreset("crash", cfg2.NumServers, cfg2.FServers, cfg2.Steps, cfg2.ServerAttacks)
	if err != nil {
		t.Fatal(err)
	}
	cfg2.Churn = plan2
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy != res2.FinalAccuracy || res.VirtualTime != res2.VirtualTime {
		t.Fatalf("churn run not deterministic: acc %v vs %v, time %v vs %v",
			res.FinalAccuracy, res2.FinalAccuracy, res.VirtualTime, res2.VirtualTime)
	}
	for i := range res.Final {
		if res.Final[i] != res2.Final[i] {
			t.Fatal("final parameters differ across identical churn runs")
		}
	}
}

// TestRunWithJoinLeaveChurn exercises elastic roster changes: one server is
// absent at the start and joins a third of the way in; another leaves at two
// thirds. Quorums are evaluated against the roster in force at each step.
func TestRunWithJoinLeaveChurn(t *testing.T) {
	w := BlobWorkload(600, 11)
	cfg := fastGuanYu(w, 100, 3)
	plan, err := ChurnPreset("joinleave", cfg.NumServers, cfg.FServers, cfg.Steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Churn = plan
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("join/leave churn broke convergence: accuracy %.3f", res.FinalAccuracy)
	}
}

// TestRunWithRollingChurn rolls a restart through every server, one at a
// time, and the run must ride it out.
func TestRunWithRollingChurn(t *testing.T) {
	w := BlobWorkload(600, 12)
	cfg := fastGuanYu(w, 100, 4)
	plan, err := ChurnPreset("rolling", cfg.NumServers, cfg.FServers, cfg.Steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Churn = plan
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("rolling restarts broke convergence: accuracy %.3f", res.FinalAccuracy)
	}
}
