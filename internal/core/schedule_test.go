package core

import (
	"math"
	"testing"
)

func TestConstantLR(t *testing.T) {
	s := ConstantLR(0.1)
	if s(0) != 0.1 || s(1000) != 0.1 {
		t.Fatal("constant schedule not constant")
	}
}

func TestInverseTimeLR(t *testing.T) {
	s := InverseTimeLR(1.0, 100)
	if s(0) != 1.0 {
		t.Fatalf("η₀ = %v", s(0))
	}
	if math.Abs(s(100)-0.5) > 1e-12 {
		t.Fatalf("η₁₀₀ = %v, want 0.5", s(100))
	}
	for tt := 1; tt < 1000; tt *= 2 {
		if s(tt) >= s(tt-1) {
			t.Fatal("inverse-time schedule not decreasing")
		}
	}
}

func TestStepDecayLR(t *testing.T) {
	s := StepDecayLR(1.0, 0.5, 10)
	if s(0) != 1.0 || s(9) != 1.0 {
		t.Fatal("decay before boundary")
	}
	if s(10) != 0.5 || s(20) != 0.25 {
		t.Fatalf("decay wrong: s(10)=%v s(20)=%v", s(10), s(20))
	}
}

func TestCheckRobbinsMonro(t *testing.T) {
	// 1/(1+t) satisfies both conditions.
	if !CheckRobbinsMonro(InverseTimeLR(0.5, 1), 100_000) {
		t.Fatal("inverse-time schedule rejected")
	}
	// Constant violates Σ η² < ∞.
	if CheckRobbinsMonro(ConstantLR(0.1), 100_000) {
		t.Fatal("constant schedule accepted")
	}
	// Geometric decay violates Σ η = ∞.
	if CheckRobbinsMonro(StepDecayLR(1, 0.5, 10), 100_000) {
		t.Fatal("geometric decay accepted")
	}
	// Negative or zero rates are rejected outright.
	if CheckRobbinsMonro(func(int) float64 { return 0 }, 1000) {
		t.Fatal("zero schedule accepted")
	}
	if CheckRobbinsMonro(func(t int) float64 { return math.NaN() }, 1000) {
		t.Fatal("NaN schedule accepted")
	}
}

func TestMomentumRunConverges(t *testing.T) {
	w := BlobWorkload(500, 130)
	cfg := fastGuanYu(w, 80, 15)
	cfg.Momentum = 0.9
	cfg.LR = func(int) float64 { return 0.05 } // momentum amplifies steps
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.85 {
		t.Fatalf("momentum run failed to converge: %.3f", res.FinalAccuracy)
	}
}
