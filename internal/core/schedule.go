package core

import "math"

// Schedule is a learning-rate schedule η_t. The convergence proof requires
// the Robbins-Monro conditions: Σ η_t = ∞ and Σ η_t² < ∞ (Assumption 6 of
// the paper).
type Schedule func(step int) float64

// ConstantLR returns a constant schedule. It violates Σ η_t² < ∞ — fine for
// finite-horizon experiments, outside the asymptotic theory.
func ConstantLR(eta float64) Schedule {
	return func(int) float64 { return eta }
}

// InverseTimeLR returns η_t = eta0 / (1 + t/halfLife): the canonical
// Robbins-Monro-compliant schedule used throughout the experiments.
func InverseTimeLR(eta0 float64, halfLife float64) Schedule {
	return func(t int) float64 { return eta0 / (1 + float64(t)/halfLife) }
}

// StepDecayLR returns a schedule that multiplies eta0 by factor every
// `every` steps (factor < 1). Satisfies Robbins-Monro when factor < 1 is
// applied forever? No — it decays geometrically, so Σ η_t < ∞; it trades
// asymptotic guarantees for fast finite-horizon convergence, like most
// practical deployments.
func StepDecayLR(eta0, factor float64, every int) Schedule {
	return func(t int) float64 {
		return eta0 * math.Pow(factor, float64(t/every))
	}
}

// CheckRobbinsMonro numerically probes a schedule over a horizon: it
// verifies η_t > 0 throughout, that the partial sum Σ η_t keeps growing
// (consistent with divergence) and that Σ η_t² is converging (its tail
// contribution is a vanishing fraction). It is a heuristic sanity check for
// user-supplied schedules, not a proof; it returns false when the schedule
// clearly violates the assumptions (e.g. constant, or summable η_t).
func CheckRobbinsMonro(s Schedule, horizon int) bool {
	if horizon < 100 {
		horizon = 100
	}
	var sum, sumSq, headSum, headSq float64
	half := horizon / 2
	for t := 0; t < horizon; t++ {
		eta := s(t)
		if eta <= 0 || math.IsNaN(eta) || math.IsInf(eta, 0) {
			return false
		}
		sum += eta
		sumSq += eta * eta
		if t == half-1 {
			headSum, headSq = sum, sumSq
		}
	}
	// Σ η_t should NOT look convergent: the second half must still
	// contribute a non-negligible fraction. The slowest admissible growth
	// is logarithmic (η_t ~ 1/t), whose tail fraction over a horizon N is
	// ln2/lnN ≈ 0.04–0.07 for practical N — hence the low threshold.
	tailSumFrac := (sum - headSum) / sum
	// Σ η_t² SHOULD look convergent: the second half contributes little.
	tailSqFrac := (sumSq - headSq) / sumSq
	return tailSumFrac > 0.03 && tailSqFrac < 0.35
}
