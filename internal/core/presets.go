package core

import (
	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Workload bundles a model template with its dataset.
type Workload struct {
	// Model is the template network (cloned per node).
	Model *nn.Sequential
	// Train and Test are the example sets.
	Train, Test *dataset.Dataset
}

// ImageWorkload builds the experiment harness's standard workload: the
// SynthImg-10 procedural image task (the CIFAR-10 substitute) with the tiny
// CNN sized for single-CPU runs.
func ImageWorkload(examples int, seed uint64) Workload {
	data := dataset.SynthImg(dataset.SynthImgConfig{
		Size: 8, NumClasses: 10, Examples: examples, Noise: 0.25, Seed: seed,
	})
	train, test := data.Split(0.85, tensor.NewRNG(seed+1))
	return Workload{
		Model: nn.NewTinyConvNet(tensor.NewRNG(seed+2), 10),
		Train: train,
		Test:  test,
	}
}

// BlobWorkload builds the fast low-dimensional workload used by tests.
func BlobWorkload(examples int, seed uint64) Workload {
	data := dataset.Blobs(examples, 3, 3, 0.5, seed)
	train, test := data.Split(0.8, tensor.NewRNG(seed+1))
	return Workload{
		Model: nn.NewMLP(tensor.NewRNG(seed+2), 2, 16, 3),
		Train: train,
		Test:  test,
	}
}

// PaperScale are the node counts of the paper's testbed: 18 workers and,
// for GuanYu deployments, 6 parameter servers (1 for the vanilla
// baselines); up to 5 Byzantine workers and 1 Byzantine server.
const (
	PaperWorkers        = 18
	PaperServers        = 6
	PaperByzWorkers     = 5
	PaperByzServers     = 1
	PaperBatch          = 128
	PaperSmallBatch     = 32
	PaperAccuracyTarget = 0.60
)

// VanillaTF returns the "vanilla TF" baseline: one parameter server, mean
// aggregation over all workers, optimized runtime (no serialization
// overhead on the virtual clock).
func VanillaTF(w Workload, steps, batch int, seed uint64) Config {
	cost := DefaultCostModel(seed + 101)
	cost.OptimizedRuntime = true
	return Config{
		Mode:       ModeVanilla,
		Model:      w.Model,
		Train:      w.Train,
		Test:       w.Test,
		NumServers: 1,
		NumWorkers: PaperWorkers,
		Steps:      steps,
		Batch:      batch,
		Cost:       cost,
		Seed:       seed,
	}
}

// VanillaGuanYu returns the "GuanYu (vanilla)" baseline: exactly the same
// topology and aggregation as vanilla TF, but with communication handled
// outside the optimized runtime — the configuration that isolates the
// 65%-class overhead of Section 5.3.
func VanillaGuanYu(w Workload, steps, batch int, seed uint64) Config {
	cfg := VanillaTF(w, steps, batch, seed)
	cfg.Cost.OptimizedRuntime = false
	return cfg
}

// GuanYu returns the full Byzantine-resilient deployment with the paper's
// node counts and declared Byzantine numbers fWorkers/fServers.
func GuanYu(w Workload, fWorkers, fServers, steps, batch int, seed uint64) Config {
	return Config{
		Mode:       ModeGuanYu,
		Model:      w.Model,
		Train:      w.Train,
		Test:       w.Test,
		NumServers: PaperServers,
		FServers:   fServers,
		NumWorkers: PaperWorkers,
		FWorkers:   fWorkers,
		Steps:      steps,
		Batch:      batch,
		Seed:       seed,
	}
}

// WithByzantineWorkers installs actual Byzantine workers 0..count-1 running
// the given behaviour factory (called per node so stateful attacks don't
// share generators).
func WithByzantineWorkers(cfg Config, count int, mk func(i int) attack.Attack) Config {
	out := cfg
	out.WorkerAttacks = make(map[int]attack.Attack, count+len(cfg.WorkerAttacks))
	for k, v := range cfg.WorkerAttacks {
		out.WorkerAttacks[k] = v
	}
	for i := 0; i < count; i++ {
		out.WorkerAttacks[i] = mk(i)
	}
	return out
}

// WithByzantineServers installs actual Byzantine servers 0..count-1.
func WithByzantineServers(cfg Config, count int, mk func(i int) attack.Attack) Config {
	out := cfg
	out.ServerAttacks = make(map[int]attack.Attack, count+len(cfg.ServerAttacks))
	for k, v := range cfg.ServerAttacks {
		out.ServerAttacks[k] = v
	}
	for i := 0; i < count; i++ {
		out.ServerAttacks[i] = mk(i)
	}
	return out
}
