package compress

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Compressed-payload layout constants (byte-level spec in WIRE.md §9). All
// integers are little-endian.
const (
	// deltaKeyframe / deltaDiff tag a delta payload's first byte.
	deltaKeyframe = 0x00
	deltaDiff     = 0x01
	// deltaTagSize and deltaBaseSize are the delta payload's tag byte and
	// the base-step field carried by diff frames.
	deltaTagSize  = 1
	deltaBaseSize = 8
	// topkHeaderSize is the entry-count prefix; topkEntrySize is one
	// {index uint32, value float32} pair.
	topkHeaderSize = 4
	topkEntrySize  = 8
)

// ErrMalformed tags payloads that violate their scheme's wire format —
// truncated index tables, out-of-range or non-increasing indices, k > n
// claims, bad tags, length mismatches. Receivers drop such frames and count
// them (transport.TCPNode.DroppedMalformed).
var ErrMalformed = fmt.Errorf("compress: malformed payload")

// ErrReference tags a delta frame whose base step does not match the
// decoder's reference state — the stream desynchronised (a dropped or
// replayed frame). The frame is undecodable but the stream self-heals at
// the sender's next keyframe.
var ErrReference = fmt.Errorf("compress: delta reference mismatch")

// streamKey identifies one independent payload stream within a link: the
// protocol kind plus the shard range's coordinate offset, so chunked
// streaming gives every shard its own reference/accumulator state and a
// lost shard frame never corrupts its neighbours.
type streamKey struct {
	kind uint8
	off  int
}

// encStream is the sender-side state of one stream.
type encStream struct {
	// ref mirrors the receiver's reconstruction (delta): the base the next
	// diff frame is computed against. refStep is the step ref belongs to.
	ref     []float64
	refStep int64
	// sinceKey counts frames since the last keyframe.
	sinceKey int
	// acc is the top-k error-feedback accumulator: everything encoded so
	// far minus everything actually shipped. x is the selection scratch.
	acc []float64
	x   []float64
	// mags and idx are top-k selection scratch.
	mags []float64
	idx  []int
}

// Encoder compresses the payloads of one directed link (one sender → one
// receiver). Not safe for concurrent use; see the package comment for the
// state-ownership contract.
type Encoder struct {
	cfg     Config
	streams map[streamKey]*encStream
}

// NewEncoder returns an encoder for cfg. cfg must validate.
func NewEncoder(cfg Config) *Encoder {
	return &Encoder{cfg: cfg, streams: make(map[streamKey]*encStream)}
}

// Config returns the encoder's configuration.
func (e *Encoder) Config() Config { return e.cfg }

// Reset discards all per-stream state — delta references and top-k
// error-feedback accumulators — as if the encoder were freshly built.
// A node that restarts from a checkpoint calls this on every link so
// the first delta frame after the rejoin is an absolute keyframe and
// no compensation accumulated against the pre-crash peer leaks into
// the new stream. The configuration is unchanged.
func (e *Encoder) Reset() {
	e.streams = make(map[streamKey]*encStream)
}

func (e *Encoder) stream(kind uint8, off int) *encStream {
	k := streamKey{kind: kind, off: off}
	st := e.streams[k]
	if st == nil {
		st = &encStream{}
		e.streams[k] = st
	}
	return st
}

// Encode appends the compressed payload for vec — coordinates
// [off, off+len(vec)) of a logical vector, shipped at the given step and
// protocol kind — to dst and returns the extended slice. vec is only read;
// error feedback and reference updates go to the encoder's internal state.
func (e *Encoder) Encode(dst []byte, kind uint8, step int64, off int, vec []float64) ([]byte, error) {
	if len(vec) == 0 {
		return dst, fmt.Errorf("compress: cannot encode an empty payload")
	}
	switch e.cfg.Scheme {
	case Float32:
		return appendFloat32(dst, vec), nil
	case Delta:
		return e.encodeDelta(dst, kind, step, off, vec), nil
	case TopK:
		return e.encodeTopK(dst, kind, off, vec), nil
	default:
		return dst, fmt.Errorf("compress: scheme %s does not encode", e.cfg.Scheme)
	}
}

func appendFloat32(dst []byte, vec []float64) []byte {
	n := len(dst)
	dst = appendZeros(dst, 4*len(vec))
	out := dst[n:]
	for i, v := range vec {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(float32(v)))
	}
	return dst
}

// appendZeros extends dst by n bytes, reslicing instead of append-extending
// when capacity suffices (the reused-buffer steady state; the extension is
// overwritten by the caller either way).
func appendZeros(dst []byte, n int) []byte {
	if need := len(dst) + n; need <= cap(dst) {
		return dst[:need]
	}
	return append(dst, make([]byte, n)...)
}

func (e *Encoder) encodeDelta(dst []byte, kind uint8, step int64, off int, vec []float64) []byte {
	st := e.stream(kind, off)
	if st.ref == nil || len(st.ref) != len(vec) || st.sinceKey >= e.cfg.keyframeEvery()-1 {
		// Keyframe: absolute float32 coordinates. The reference becomes the
		// receiver's reconstruction — the widened float32, not the true
		// value — so both ends advance in lockstep.
		dst = append(dst, deltaKeyframe)
		pos := len(dst)
		dst = appendZeros(dst, 4*len(vec))
		out := dst[pos:]
		if cap(st.ref) < len(vec) {
			st.ref = make([]float64, len(vec))
		}
		st.ref = st.ref[:len(vec)]
		for i, v := range vec {
			f := float32(v)
			binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(f))
			st.ref[i] = float64(f)
		}
		st.sinceKey = 0
		st.refStep = step
		return dst
	}
	dst = append(dst, deltaDiff)
	var base [deltaBaseSize]byte
	binary.LittleEndian.PutUint64(base[:], uint64(st.refStep))
	dst = append(dst, base[:]...)
	pos := len(dst)
	dst = appendZeros(dst, 4*len(vec))
	out := dst[pos:]
	for i, v := range vec {
		d := float32(v - st.ref[i])
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(d))
		st.ref[i] += float64(d)
	}
	st.sinceKey++
	st.refStep = step
	return dst
}

func (e *Encoder) encodeTopK(dst []byte, kind uint8, off int, vec []float64) []byte {
	st := e.stream(kind, off)
	n := len(vec)
	if len(st.acc) != n {
		// First frame of the stream (or a dimension change, which resets
		// the compensation — stale error from another geometry is garbage).
		st.acc = make([]float64, n)
		st.x = make([]float64, n)
	}
	// Error feedback: select from the compensated vector x = vec + acc, so
	// coordinates starved in previous steps accumulate pressure until sent.
	x := st.x
	for i, v := range vec {
		x[i] = v + st.acc[i]
	}
	k := TopKCount(e.cfg.TopKFrac, n)
	st.mags, st.idx = selectTopK(x, k, st.mags, st.idx)
	idx := st.idx

	var hdr [topkHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(idx)))
	dst = append(dst, hdr[:]...)
	pos := len(dst)
	dst = appendZeros(dst, topkEntrySize*len(idx))
	out := dst[pos:]
	// The new accumulator is x minus what shipped: untouched coordinates
	// keep their full compensated value, shipped ones keep only the
	// float32 truncation residue.
	copy(st.acc, x)
	for j, i := range idx {
		f := float32(x[i])
		binary.LittleEndian.PutUint32(out[topkEntrySize*j:], uint32(i))
		binary.LittleEndian.PutUint32(out[topkEntrySize*j+4:], math.Float32bits(f))
		st.acc[i] = x[i] - float64(f)
	}
	return dst
}

// selectTopK returns (in idx, ascending) the indices of the k largest-|x|
// coordinates, ties broken toward the lower index — a deterministic
// selection on every platform. mags and idx are caller scratch, returned
// grown. NaN magnitudes rank as +Inf: the codec ships them and leaves the
// accept/reject decision to the receiver's validator, like the rest of the
// wire stack.
func selectTopK(x []float64, k int, mags []float64, idx []int) ([]float64, []int) {
	n := len(x)
	idx = idx[:0]
	if k >= n {
		for i := range x {
			idx = append(idx, i)
		}
		return mags, idx
	}
	if cap(mags) < n {
		mags = make([]float64, n)
	}
	mags = mags[:n]
	for i, v := range x {
		m := math.Abs(v)
		if math.IsNaN(m) {
			m = math.Inf(1)
		}
		mags[i] = m
	}
	thr := kthLargest(append([]float64(nil), mags...), k)
	// Two passes: everything strictly above the threshold is in; the
	// remaining slots go to threshold-equal coordinates in index order.
	above := 0
	for _, m := range mags {
		if m > thr {
			above++
		}
	}
	atThr := k - above
	for i, m := range mags {
		switch {
		case m > thr:
			idx = append(idx, i)
		case m == thr && atThr > 0:
			idx = append(idx, i)
			atThr--
		}
	}
	return mags, idx
}

// kthLargest returns the k-th largest element of a (1 ≤ k ≤ len(a)),
// mutating a. Iterative quickselect with median-of-three pivoting —
// deterministic, O(n) expected on the honest inputs the encoder selects
// over (the array is the sender's OWN data, so adversarial O(n²) pivot
// sequences are not a threat model here).
func kthLargest(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	want := k - 1 // index in descending order
	for lo < hi {
		// Median-of-three pivot, moved to a[lo].
		mid := lo + (hi-lo)/2
		if a[mid] > a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] > a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[mid] > a[hi] {
			a[mid], a[hi] = a[hi], a[mid]
		}
		pivot := a[hi]
		// Partition descending: left of i ≥ pivot.
		i := lo
		for j := lo; j < hi; j++ {
			if a[j] > pivot {
				a[i], a[j] = a[j], a[i]
				i++
			}
		}
		a[i], a[hi] = a[hi], a[i]
		switch {
		case want == i:
			return a[i]
		case want < i:
			hi = i - 1
		default:
			lo = i + 1
		}
	}
	return a[lo]
}

// decStream is the receiver-side reference state of one delta stream.
type decStream struct {
	ref     []float64
	refStep int64
}

// Decoder expands the payloads of one directed link, mirroring the
// sender's Encoder state. Not safe for concurrent use.
type Decoder struct {
	streams map[streamKey]*decStream
}

// NewDecoder returns a fresh decoder (a new connection's receive state).
func NewDecoder() *Decoder {
	return &Decoder{streams: make(map[streamKey]*decStream)}
}

// Reset discards all per-stream reference state, mirroring
// Encoder.Reset on the receiving side: the next delta frame per stream
// must be a keyframe (a diff would fail with ErrReference and be
// dropped, exactly the dropped-frame self-healing path).
func (d *Decoder) Reset() {
	d.streams = make(map[streamKey]*decStream)
}

// Decode expands payload — scheme-encoded coordinates [off, off+n) shipped
// at the given step and kind — into dst (reusing its capacity) and returns
// the n-coordinate result. Every structural check runs BEFORE dst is
// grown, so a malformed or truncated payload costs the receiver no
// allocation: memory is committed only for payloads that already paid
// their bytes onto the wire.
func (d *Decoder) Decode(scheme Scheme, kind uint8, step int64, off, n int, payload []byte, dst []float64) ([]float64, error) {
	if n <= 0 {
		return dst, fmt.Errorf("%w: %d-coordinate range", ErrMalformed, n)
	}
	switch scheme {
	case Float32:
		if len(payload) != 4*n {
			return dst, fmt.Errorf("%w: float32 payload %d bytes for %d coordinates", ErrMalformed, len(payload), n)
		}
		dst = growVec(dst, n)
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:])))
		}
		return dst, nil
	case Delta:
		return d.decodeDelta(kind, step, off, n, payload, dst)
	case TopK:
		return decodeTopK(n, payload, dst)
	default:
		return dst, fmt.Errorf("%w: unknown scheme %d", ErrMalformed, scheme)
	}
}

func (d *Decoder) decodeDelta(kind uint8, step int64, off, n int, payload []byte, dst []float64) ([]float64, error) {
	if len(payload) < deltaTagSize {
		return dst, fmt.Errorf("%w: empty delta payload", ErrMalformed)
	}
	key := streamKey{kind: kind, off: off}
	switch payload[0] {
	case deltaKeyframe:
		if len(payload) != deltaTagSize+4*n {
			return dst, fmt.Errorf("%w: delta keyframe %d bytes for %d coordinates", ErrMalformed, len(payload), n)
		}
		body := payload[deltaTagSize:]
		dst = growVec(dst, n)
		st := d.streams[key]
		if st == nil {
			st = &decStream{}
			d.streams[key] = st
		}
		if cap(st.ref) < n {
			st.ref = make([]float64, n)
		}
		st.ref = st.ref[:n]
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:])))
			st.ref[i] = dst[i]
		}
		st.refStep = step
		return dst, nil
	case deltaDiff:
		if len(payload) != deltaTagSize+deltaBaseSize+4*n {
			return dst, fmt.Errorf("%w: delta diff %d bytes for %d coordinates", ErrMalformed, len(payload), n)
		}
		base := int64(binary.LittleEndian.Uint64(payload[deltaTagSize:]))
		st := d.streams[key]
		if st == nil || len(st.ref) != n || st.refStep != base {
			have := int64(-1)
			if st != nil {
				have = st.refStep
			}
			return dst, fmt.Errorf("%w: diff against step %d, reference at step %d", ErrReference, base, have)
		}
		body := payload[deltaTagSize+deltaBaseSize:]
		dst = growVec(dst, n)
		for i := range dst {
			diff := float64(math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:])))
			dst[i] = st.ref[i] + diff
			st.ref[i] = dst[i]
		}
		st.refStep = step
		return dst, nil
	default:
		return dst, fmt.Errorf("%w: delta tag %#x", ErrMalformed, payload[0])
	}
}

func decodeTopK(n int, payload []byte, dst []float64) ([]float64, error) {
	if len(payload) < topkHeaderSize {
		return dst, fmt.Errorf("%w: topk payload %d bytes", ErrMalformed, len(payload))
	}
	k64 := binary.LittleEndian.Uint32(payload)
	if k64 == 0 || uint64(k64) > uint64(n) {
		return dst, fmt.Errorf("%w: topk claims %d entries for %d coordinates", ErrMalformed, k64, n)
	}
	k := int(k64)
	if len(payload) != topkHeaderSize+topkEntrySize*k {
		return dst, fmt.Errorf("%w: topk table %d bytes for %d entries", ErrMalformed, len(payload)-topkHeaderSize, k)
	}
	// Validate the whole index table before touching dst: strictly
	// increasing (which subsumes the duplicate check) and in range.
	body := payload[topkHeaderSize:]
	prev := -1
	for j := 0; j < k; j++ {
		i64 := binary.LittleEndian.Uint32(body[topkEntrySize*j:])
		if uint64(i64) >= uint64(n) {
			return dst, fmt.Errorf("%w: topk index %d outside [0, %d)", ErrMalformed, i64, n)
		}
		if int(i64) <= prev {
			return dst, fmt.Errorf("%w: topk index %d after %d (must be strictly increasing)", ErrMalformed, i64, prev)
		}
		prev = int(i64)
	}
	dst = growVec(dst, n)
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < k; j++ {
		i := binary.LittleEndian.Uint32(body[topkEntrySize*j:])
		dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[topkEntrySize*j+4:])))
	}
	return dst, nil
}

// growVec returns dst with length n, reusing capacity when it suffices.
func growVec(dst []float64, n int) []float64 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]float64, n)
}
