package compress

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/tensor"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		want Config
	}{
		{"", Config{}},
		{"none", Config{}},
		{"float32", Config{Scheme: Float32}},
		{"f32", Config{Scheme: Float32}},
		{"delta", Config{Scheme: Delta}},
		{"delta:key=8", Config{Scheme: Delta, KeyframeEvery: 8}},
		{"topk:k=0.01", Config{Scheme: TopK, TopKFrac: 0.01}},
		{"topk", Config{Scheme: TopK, TopKFrac: 0.01}},
		{" topk : k = 0.25 ", Config{Scheme: TopK, TopKFrac: 0.25}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		// The canonical rendering reparses to the same config.
		back, err := ParseSpec(got.String())
		if err != nil || back != got {
			t.Fatalf("round trip of %q via %q: %+v, %v", c.spec, got.String(), back, err)
		}
	}
	for _, bad := range []string{"zstd", "topk:k=0", "topk:k=1.5", "topk:z=1", "float32:k=1", "topk:k"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestCapMask(t *testing.T) {
	if (Config{}).CapMask() != 0 {
		t.Fatal("none must announce no capabilities")
	}
	if got := (Config{Scheme: TopK, TopKFrac: 0.1}).CapMask(); got != 1<<3 {
		t.Fatalf("topk capability bit = %#x", got)
	}
}

// roundTrip encodes vec on enc and decodes on dec, failing the test on any
// error.
func roundTrip(t *testing.T, enc *Encoder, dec *Decoder, kind uint8, step int64, off int, vec []float64) []float64 {
	t.Helper()
	payload, err := enc.Encode(nil, kind, step, off, vec)
	if err != nil {
		t.Fatalf("encode step %d: %v", step, err)
	}
	out, err := dec.Decode(enc.Config().Scheme, kind, step, off, len(vec), payload, nil)
	if err != nil {
		t.Fatalf("decode step %d: %v", step, err)
	}
	return out
}

func TestFloat32RoundTrip(t *testing.T) {
	enc := NewEncoder(Config{Scheme: Float32})
	dec := NewDecoder()
	vec := []float64{0, -1.5, math.Pi, 1e-40, -math.MaxFloat32}
	out := roundTrip(t, enc, dec, 2, 0, 0, vec)
	for i, v := range vec {
		if want := float64(float32(v)); out[i] != want {
			t.Fatalf("coordinate %d: %g, want %g", i, out[i], want)
		}
	}
}

func TestDeltaTracksWithinFloat32Error(t *testing.T) {
	enc := NewEncoder(Config{Scheme: Delta})
	dec := NewDecoder()
	rng := tensor.NewRNG(3)
	vec := rng.NormVec(make([]float64, 257), 0, 1)
	for step := int64(0); step < 40; step++ {
		for i := range vec {
			vec[i] += 1e-3 * float64(i%7)
		}
		out := roundTrip(t, enc, dec, 1, step, 0, vec)
		for i := range vec {
			if err := math.Abs(out[i] - vec[i]); err > 1e-4*(1+math.Abs(vec[i])) {
				t.Fatalf("step %d coordinate %d: reconstruction off by %g", step, i, err)
			}
		}
	}
}

func TestDeltaKeyframeCadence(t *testing.T) {
	cfg := Config{Scheme: Delta, KeyframeEvery: 4}
	enc := NewEncoder(cfg)
	vec := []float64{1, 2, 3}
	var tags []byte
	for step := int64(0); step < 9; step++ {
		payload, err := enc.Encode(nil, 1, step, 0, vec)
		if err != nil {
			t.Fatal(err)
		}
		tags = append(tags, payload[0])
	}
	want := []byte{deltaKeyframe, deltaDiff, deltaDiff, deltaDiff,
		deltaKeyframe, deltaDiff, deltaDiff, deltaDiff, deltaKeyframe}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("frame %d tag %#x, want %#x (cadence 4)", i, tags[i], want[i])
		}
	}
	// Steady-state payload size matches the advertised estimate.
	if got, err := enc.Encode(nil, 1, 9, 0, vec); err != nil || len(got) != cfg.PayloadBytes(len(vec)) {
		t.Fatalf("delta diff payload %d bytes, want %d (%v)", len(got), cfg.PayloadBytes(len(vec)), err)
	}
}

func TestDeltaReferenceMismatch(t *testing.T) {
	enc := NewEncoder(Config{Scheme: Delta})
	dec := NewDecoder()
	vec := []float64{1, 2}
	roundTrip(t, enc, dec, 1, 0, 0, vec) // keyframe establishes the reference
	diff1, err := enc.Encode(nil, 1, 1, 0, vec)
	if err != nil {
		t.Fatal(err)
	}
	diff2, err := enc.Encode(nil, 1, 2, 0, vec)
	if err != nil {
		t.Fatal(err)
	}
	// Skipping diff1 (a dropped frame) leaves the decoder's reference at
	// step 0 while diff2 claims base step 1: undecodable, distinguishable
	// from malformed bytes.
	if _, err := dec.Decode(Delta, 1, 2, 0, len(vec), diff2, nil); !errors.Is(err, ErrReference) {
		t.Fatalf("desynchronised diff: %v, want ErrReference", err)
	}
	// The in-order frame still decodes: the reference was not corrupted.
	if _, err := dec.Decode(Delta, 1, 1, 0, len(vec), diff1, nil); err != nil {
		t.Fatalf("in-order diff after a rejected one: %v", err)
	}
}

func TestDeltaStreamsAreIndependent(t *testing.T) {
	enc := NewEncoder(Config{Scheme: Delta})
	dec := NewDecoder()
	a := []float64{1, 2, 3, 4}
	b := []float64{9, 8}
	// Interleave two shard streams (offsets 0 and 4) and two kinds; each
	// keeps its own reference.
	for step := int64(0); step < 6; step++ {
		roundTrip(t, enc, dec, 1, step, 0, a)
		roundTrip(t, enc, dec, 1, step, 4, b)
		roundTrip(t, enc, dec, 2, step, 0, b)
	}
}

func TestTopKSelectionDeterministicTies(t *testing.T) {
	x := []float64{1, -1, 1, 0.5, -1}
	_, idx := selectTopK(x, 2, nil, nil)
	// |x| = {1,1,1,0.5,1}: ties break toward the lower index.
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("tie-broken selection = %v, want [0 1]", idx)
	}
	_, all := selectTopK(x, 5, nil, nil)
	if len(all) != 5 {
		t.Fatalf("k = n selection kept %d", len(all))
	}
}

func TestKthLargestAgainstSort(t *testing.T) {
	rng := tensor.NewRNG(11)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		a := rng.NormVec(make([]float64, n), 0, 1)
		for i := range a {
			if i%5 == 0 {
				a[i] = a[i/2] // inject duplicates
			}
		}
		sorted := append([]float64(nil), a...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		k := 1 + rng.Intn(n)
		if got := kthLargest(append([]float64(nil), a...), k); got != sorted[k-1] {
			t.Fatalf("kthLargest(n=%d, k=%d) = %g, want %g", n, k, got, sorted[k-1])
		}
	}
}

func TestTopKErrorFeedback(t *testing.T) {
	cfg := Config{Scheme: TopK, TopKFrac: 0.25}
	enc := NewEncoder(cfg)
	dec := NewDecoder()
	// A constant vector: with k = 1 of 4 per step and error feedback, every
	// coordinate's compensated magnitude grows until it wins selection
	// (round-robin under ties), so no coordinate is starved: over S steps
	// each ships S·1 minus the ≤ 3 units still in the accumulator. Without
	// the memory, coordinate 0 would win every step and the rest would ship
	// nothing, ever.
	vec := []float64{1, 1, 1, 1}
	sum := make([]float64, len(vec))
	steps := 16
	for step := 0; step < steps; step++ {
		out := roundTrip(t, enc, dec, 1, int64(step), 0, vec)
		nonzero := 0
		for i, v := range out {
			sum[i] += v
			if v != 0 {
				nonzero++
			}
		}
		if nonzero != 1 {
			t.Fatalf("step %d shipped %d coordinates, want k=1", step, nonzero)
		}
	}
	for i := range sum {
		if sum[i] < float64(steps)-3.5 || sum[i] > float64(steps)+0.5 {
			t.Fatalf("coordinate %d shipped %g of %d units (accumulator leak?)", i, sum[i], steps)
		}
	}
}

func TestTopKMalformedPayloads(t *testing.T) {
	enc := NewEncoder(Config{Scheme: TopK, TopKFrac: 0.5})
	valid, err := enc.Encode(nil, 1, 0, 0, []float64{5, 0, -7, 0})
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	if _, err := dec.Decode(TopK, 1, 0, 0, 4, valid, nil); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	corrupt := func(mut func(p []byte) []byte) error {
		p := mut(append([]byte(nil), valid...))
		_, err := NewDecoder().Decode(TopK, 1, 0, 0, 4, p, nil)
		return err
	}
	cases := map[string]func(p []byte) []byte{
		"truncated table":  func(p []byte) []byte { return p[:len(p)-3] },
		"k zero":           func(p []byte) []byte { p[0], p[1], p[2], p[3] = 0, 0, 0, 0; return p },
		"k exceeds range":  func(p []byte) []byte { p[0] = 200; return p },
		"index oob":        func(p []byte) []byte { p[4] = 99; return p },
		"duplicate index":  func(p []byte) []byte { copy(p[12:16], p[4:8]); return p },
		"unsorted indices": func(p []byte) []byte { p[4], p[12] = p[12], p[4]; return p },
		"empty":            func(p []byte) []byte { return nil },
	}
	for name, mut := range cases {
		if err := corrupt(mut); !errors.Is(err, ErrMalformed) {
			t.Fatalf("%s: %v, want ErrMalformed", name, err)
		}
	}
}

func TestDeltaMalformedPayloads(t *testing.T) {
	for name, payload := range map[string][]byte{
		"empty":              nil,
		"bad tag":            {0x07, 0, 0, 0, 0},
		"keyframe short":     {deltaKeyframe, 1, 2, 3},
		"diff missing base":  {deltaDiff, 1, 2, 3, 4},
		"float32 wrong size": {1, 2, 3},
	} {
		scheme := Delta
		if name == "float32 wrong size" {
			scheme = Float32
		}
		if _, err := NewDecoder().Decode(scheme, 1, 0, 0, 2, payload, nil); !errors.Is(err, ErrMalformed) {
			t.Fatalf("%s: %v, want ErrMalformed", name, err)
		}
	}
	if _, err := NewDecoder().Decode(Scheme(9), 1, 0, 0, 2, []byte{1}, nil); !errors.Is(err, ErrMalformed) {
		t.Fatal("unknown scheme must be malformed at the codec layer")
	}
}

func TestPayloadBytesReductions(t *testing.T) {
	const dim = 1756426 // the paper's Table-1 parameter count
	raw := float64((Config{}).PayloadBytes(dim))
	if r := raw / float64((Config{Scheme: Float32}).PayloadBytes(dim)); r < 1.9 {
		t.Fatalf("float32 payload reduction %.2f×, want ≥ 1.9×", r)
	}
	if r := raw / float64((Config{Scheme: TopK, TopKFrac: 0.01}).PayloadBytes(dim)); r < 4 {
		t.Fatalf("topk(1%%) payload reduction %.2f×, want ≥ 4×", r)
	}
	if r := raw / float64((Config{Scheme: Delta}).PayloadBytes(dim)); r < 1.9 {
		t.Fatalf("delta payload reduction %.2f×, want ≥ 1.9×", r)
	}
}
