// Package compress implements lossy gradient/parameter compression for the
// wire: the payload codecs behind the transport's compressed frames and the
// simulator's lossy-channel model. Three schemes ship alongside a `none`
// passthrough:
//
//   - float32: truncate every coordinate to IEEE-754 single precision
//     (deterministic 2× payload reduction, ~1e-7 relative error);
//   - delta: per-link reference state — each frame carries float32
//     differences against the receiver's last reconstruction, with periodic
//     absolute keyframes so a dropped frame desynchronises a stream for at
//     most KeyframeEvery steps instead of forever;
//   - topk: per-range top-k sparsification as {index, value} pairs with
//     error-feedback accumulation at the sender (Stich et al.'s memory
//     trick: coordinates not sent are not lost, they are carried into the
//     next step's selection), ~1/k payload reduction.
//
// # Determinism and state ownership
//
// Every scheme is deterministic: the same vector sequence through the same
// Encoder yields the same bytes on any platform (top-k ties break toward
// the lower index; no randomness anywhere). An Encoder owns one DIRECTED
// LINK's state (one sender → one receiver): delta reference vectors and
// top-k error-feedback accumulators live per (kind, shard-offset) stream
// inside it, advanced only by Encode. The matching Decoder owns the
// receiving end's reference state, advanced only by Decode. Neither is safe
// for concurrent use; give each connection its own pair and never share one
// across links — error feedback accumulated against one peer is meaningless
// (and wrong) replayed against another. Encode never mutates the input
// vector: compensation is applied to the encoder's internal accumulator,
// not to the caller's gradient.
//
// # Composition with chunked streaming
//
// Compression is decided per frame, so it composes with the transport's
// chunk streaming: each shard range [off, off+n) is an independent stream
// keyed by its offset, and a dropped or reordered shard frame perturbs only
// its own range's reference state. Payload formats are specified
// byte-for-byte in WIRE.md §9; the codec here owns everything inside the
// compressed payload, the transport codec owns the frame around it.
package compress

import (
	"fmt"
	"strconv"
	"strings"
)

// Scheme identifies a compression codec on the wire (one byte in the
// compressed-frame extension; see WIRE.md §9).
type Scheme uint8

// Wire scheme identifiers. None never appears on the wire: an uncompressed
// payload ships as a plain (PR 5) frame, bit-identical to the
// pre-compression wire format.
const (
	None    Scheme = 0
	Float32 Scheme = 1
	Delta   Scheme = 2
	TopK    Scheme = 3
)

// Known reports whether s is a scheme this build can decode. Unknown
// nonzero scheme bytes are legal frames (the codec treats the payload as
// opaque) that the receiving node drops as un-negotiated.
func (s Scheme) Known() bool { return s >= Float32 && s <= TopK }

// Bit returns s's capability bit for the hello-frame negotiation mask.
// Bit 0 is never set: plain frames need no capability.
func (s Scheme) Bit() uint8 { return 1 << s }

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case None:
		return "none"
	case Float32:
		return "float32"
	case Delta:
		return "delta"
	case TopK:
		return "topk"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// DefaultKeyframeEvery is the delta scheme's keyframe cadence when the spec
// does not override it: every 16th frame of a stream is absolute, bounding
// the blackout after a dropped delta frame to at most 15 frames.
const DefaultKeyframeEvery = 16

// Config selects a scheme and its parameters. The zero value is the `none`
// passthrough.
type Config struct {
	// Scheme is the codec.
	Scheme Scheme
	// TopKFrac is the fraction of coordinates kept per encoded range
	// (topk only), in (0, 1]. k = ceil(TopKFrac · n), at least 1.
	TopKFrac float64
	// KeyframeEvery is the delta scheme's absolute-frame cadence
	// (0 = DefaultKeyframeEvery).
	KeyframeEvery int
}

// Enabled reports whether c compresses at all.
func (c Config) Enabled() bool { return c.Scheme != None }

// CapMask is the hello-frame capability bitmask announcing which schemes
// this sender may put on the connection.
func (c Config) CapMask() uint8 {
	if !c.Enabled() {
		return 0
	}
	return c.Scheme.Bit()
}

// Validate checks the parameters against their scheme.
func (c Config) Validate() error {
	switch c.Scheme {
	case None, Float32:
		return nil
	case Delta:
		if c.KeyframeEvery < 0 {
			return fmt.Errorf("compress: delta keyframe cadence %d must be ≥ 0", c.KeyframeEvery)
		}
		return nil
	case TopK:
		if !(c.TopKFrac > 0 && c.TopKFrac <= 1) {
			return fmt.Errorf("compress: topk fraction %g outside (0, 1]", c.TopKFrac)
		}
		return nil
	default:
		return fmt.Errorf("compress: unknown scheme %d", c.Scheme)
	}
}

// String renders the canonical spec ParseSpec accepts.
func (c Config) String() string {
	switch c.Scheme {
	case TopK:
		return fmt.Sprintf("topk:k=%g", c.TopKFrac)
	case Delta:
		if c.KeyframeEvery > 0 && c.KeyframeEvery != DefaultKeyframeEvery {
			return fmt.Sprintf("delta:key=%d", c.KeyframeEvery)
		}
		return "delta"
	default:
		return c.Scheme.String()
	}
}

func (c Config) keyframeEvery() int {
	if c.KeyframeEvery > 0 {
		return c.KeyframeEvery
	}
	return DefaultKeyframeEvery
}

// ParseSpec parses a compression spec in the registry syntax used
// throughout the repo ("name" or "name:key=value,..."): "none" (or ""),
// "float32", "delta", "delta:key=8", "topk:k=0.01".
func ParseSpec(spec string) (Config, error) {
	name, rest, hasParams := strings.Cut(strings.TrimSpace(spec), ":")
	name = strings.TrimSpace(name)
	params := make(map[string]float64)
	if hasParams {
		for _, kv := range strings.Split(rest, ",") {
			if kv = strings.TrimSpace(kv); kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			if !ok || k == "" || v == "" {
				return Config{}, fmt.Errorf("compress: bad parameter %q in spec %q (want key=value)", kv, spec)
			}
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Config{}, fmt.Errorf("compress: parameter %s in spec %q: %v", k, spec, err)
			}
			if _, dup := params[k]; dup {
				return Config{}, fmt.Errorf("compress: duplicate parameter %q in spec %q", k, spec)
			}
			params[k] = x
		}
	}
	take := func(key string, def float64) float64 {
		if v, ok := params[key]; ok {
			delete(params, key)
			return v
		}
		return def
	}
	var cfg Config
	switch name {
	case "", "none":
		cfg = Config{}
	case "float32", "f32":
		cfg = Config{Scheme: Float32}
	case "delta":
		cfg = Config{Scheme: Delta, KeyframeEvery: int(take("key", 0))}
	case "topk":
		cfg = Config{Scheme: TopK, TopKFrac: take("k", 0.01)}
	default:
		return Config{}, fmt.Errorf("compress: unknown scheme %q (want none, float32, delta or topk)", name)
	}
	for k := range params {
		return Config{}, fmt.Errorf("compress: scheme %q does not take parameter %q", name, k)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// TopKCount is the number of {index, value} pairs the topk scheme keeps
// for an n-coordinate range: ceil(frac·n), clamped to [1, n].
func TopKCount(frac float64, n int) int {
	if n <= 0 {
		return 0
	}
	k := int(frac * float64(n))
	if float64(k) < frac*float64(n) {
		k++
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// PayloadBytes is the steady-state encoded payload size for an
// n-coordinate range under c — the number the bandwidth experiment and the
// simulator's cost model use (delta counts a delta frame, not the periodic
// keyframe; `none` counts the raw 8-byte coordinates).
func (c Config) PayloadBytes(n int) int {
	switch c.Scheme {
	case Float32:
		return 4 * n
	case Delta:
		return deltaTagSize + deltaBaseSize + 4*n
	case TopK:
		return topkHeaderSize + topkEntrySize*TopKCount(c.TopKFrac, n)
	default:
		return 8 * n
	}
}
