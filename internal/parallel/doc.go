// Package parallel is the shared worker-pool subsystem behind every hot
// kernel in this repository: batch gradients, the Krum score matrix, the
// coordinate-wise aggregation kernels (whole-vector and shard-streaming
// forms alike), and the experiment suite all execute through it.
//
// Three properties drive the design:
//
//   - Determinism. Parallel execution must never change results. Every
//     kernel built on this package either decomposes into element-independent
//     work (each output cell written by exactly one chunk, e.g. a coordinate
//     range of a median) or uses fixed, size-derived chunk boundaries with an
//     ordered reduction (e.g. BatchGradient's example chunks). Chunk
//     boundaries handed to a Runner depend only on (n, grain) — never on the
//     worker count — and chunks are pulled dynamically, so scheduling varies
//     run to run while values never do.
//
//   - Zero steady-state allocation. The parameter-server aggregation loop is
//     allocation-free (asserted by the guanyu/gar AllocsPerRun tests), so the
//     pool must be too: workers are persistent goroutines, dispatch sends a
//     pre-existing *Runner over a buffered channel, and the per-call state
//     (cursor, worker-slot counter, WaitGroup) lives inside the reusable
//     Runner. A kernel that owns a Runner parallelises without allocating.
//
//   - Size awareness. Below the grain size a call collapses to a direct
//     inline invocation — tiny inputs pay zero synchronisation overhead, and
//     GrainFor derives grains from per-item work so callers state intent
//     ("about 64k flops per chunk") instead of magic constants.
//
// One region runs at a time: a global guard makes nested or concurrent
// regions execute inline on their caller's goroutine instead of deadlocking
// or oversubscribing the pool. Coarse parallelism therefore wins
// automatically — when the experiment suite fans out whole simulation runs
// via Do, the kernels inside them run serially.
//
// The process-wide parallelism knob is SetWorkers (surfaced publicly as
// guanyu.SetParallelism / guanyu.WithParallelism and the -parallel flag on
// the commands). SetWorkers(1) restores fully serial execution; by
// construction it produces bit-identical results to any other setting.
package parallel
