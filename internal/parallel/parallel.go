package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxPool bounds the number of persistent workers (and therefore worker
// slots handed to ForWorker bodies). It exists so per-worker scratch tables
// stay small; no realistic machine exceeds it.
const maxPool = 256

var (
	workersN atomic.Int64 // desired parallelism; see Workers
	active   atomic.Int64 // >0 while a region runs; guards nesting
	poolMu   sync.Mutex
	spawned  int
	jobs     = make(chan *Runner, maxPool)
)

func init() { workersN.Store(int64(defaultWorkers())) }

func defaultWorkers() int {
	n := runtime.NumCPU()
	if n > maxPool {
		n = maxPool
	}
	return n
}

// Workers returns the current worker count. 1 means fully serial execution.
func Workers() int { return int(workersN.Load()) }

// SetWorkers sets the process-wide worker count and returns the previous
// value. n ≤ 0 restores the default (runtime.NumCPU()). The count is clamped
// to [1, 256]. Changing it never changes results — only how many chunks run
// concurrently. Change it between computations, not while kernels are
// running: kernels may size per-worker state from one read of Workers.
func SetWorkers(n int) int {
	if n <= 0 {
		n = defaultWorkers()
	}
	if n > maxPool {
		n = maxPool
	}
	return int(workersN.Swap(int64(n)))
}

// Busy reports whether a parallel region is currently executing. Kernels
// with a cheaper serial variant (e.g. the one-pass convolution backward) use
// it to skip a restructured parallel variant that would run inline anyway.
// It is advisory: both variants must produce identical results.
func Busy() bool { return active.Load() > 0 }

// GrainFor returns a chunk grain such that one chunk performs roughly
// targetWork units, given perItem work units per loop iteration. The result
// is at least 1. Callers pick targetWork near the point where chunk compute
// dominates dispatch cost (~tens of microseconds).
func GrainFor(perItem, targetWork int) int {
	if perItem <= 0 {
		perItem = 1
	}
	g := targetWork / perItem
	if g < 1 {
		g = 1
	}
	return g
}

// ChunkCount returns the number of fixed chunks [i·grain, min((i+1)·grain, n))
// that Runner.Run, For and ForWorker split [0, n) into. It depends only on
// (n, grain) — ordered reductions rely on that.
func ChunkCount(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// Runner is a reusable parallel-for handle: construct it once with the loop
// body, call Run per invocation. After the pool is warm, Run performs no
// allocations — hot aggregation kernels own a Runner for exactly that
// reason. A Runner must not be shared by concurrent callers.
type Runner struct {
	body   func(w, lo, hi int)
	n      int
	grain  int
	cursor atomic.Int64
	slots  atomic.Int64
	wg     sync.WaitGroup
}

// NewRunner builds a Runner around body. The body receives a worker slot
// w — unique among the workers of one Run and smaller than the worker count
// — and a chunk [lo, hi). It must treat chunks as independent: any cell it
// writes must be owned by exactly one chunk.
func NewRunner(body func(w, lo, hi int)) *Runner {
	return &Runner{body: body}
}

// Run executes body over [0, n) in grain-sized chunks. With one worker, one
// chunk, or while another region is active, the body runs inline as the
// single span body(0, 0, n) — callers needing per-chunk structure regardless
// of scheduling (ordered reductions) iterate chunk indices instead, see
// ForWorker's package examples.
func (r *Runner) Run(n, grain int) { r.RunMax(n, grain, maxPool) }

// RunMax is Run with a worker-slot ceiling: no body invocation receives a
// slot ≥ maxWorkers, even if SetWorkers raises the global count between the
// caller sizing its per-worker scratch and this dispatch reading the knob.
// Callers with per-worker state pass its length here.
func (r *Runner) RunMax(n, grain, maxWorkers int) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	w := Workers()
	if w > maxWorkers {
		w = maxWorkers
	}
	if w > chunks {
		w = chunks
	}
	if w <= 1 || !tryEnter() {
		r.body(0, 0, n)
		return
	}
	defer active.Add(-1)
	ensure(w - 1)
	r.n, r.grain = n, grain
	r.cursor.Store(0)
	r.slots.Store(0)
	r.wg.Add(w - 1)
	for i := 1; i < w; i++ {
		jobs <- r
	}
	r.work() // the caller is a worker too
	r.wg.Wait()
}

// tryEnter claims the single parallel region, failing when one is active.
func tryEnter() bool {
	if active.Add(1) == 1 {
		return true
	}
	active.Add(-1)
	return false
}

// work claims a worker slot and drains chunks until the cursor passes n.
func (r *Runner) work() {
	w := int(r.slots.Add(1)) - 1
	n, g := r.n, r.grain
	for {
		c := int(r.cursor.Add(1)) - 1
		lo := c * g
		if lo >= n {
			return
		}
		hi := lo + g
		if hi > n {
			hi = n
		}
		r.body(w, lo, hi)
	}
}

// ensure spawns persistent pool workers until at least k exist.
func ensure(k int) {
	poolMu.Lock()
	for spawned < k {
		spawned++
		go worker()
	}
	poolMu.Unlock()
}

func worker() {
	for r := range jobs {
		r.work()
		r.wg.Done()
	}
}

// For executes body over [0, n) in grain-sized chunks, possibly in
// parallel. It is the convenience form of Runner for call sites where a few
// allocations per call are acceptable; the body must be element-independent
// (each output cell written by exactly one chunk), which makes the result
// identical however the chunks are scheduled — including the serial
// single-span fallback.
func For(n, grain int, body func(lo, hi int)) {
	r := Runner{body: func(_, lo, hi int) { body(lo, hi) }}
	r.Run(n, grain)
}

// ForWorker is For with a worker slot: body(w, lo, hi) may index per-worker
// scratch by w, which is unique per concurrent worker and smaller than both
// the worker count and maxWorkers — callers pass the length of their
// per-worker scratch as maxWorkers, making a concurrent SetWorkers raise
// harmless. Ordered reductions use ForWorker over *chunk indices* with
// grain 1 — the chunk list is fixed by the problem size, each body call
// writes per-chunk output slots, and the caller folds the slots in chunk
// order afterwards; results are then bit-identical at every worker count.
func ForWorker(n, grain, maxWorkers int, body func(w, lo, hi int)) {
	r := Runner{body: body}
	r.RunMax(n, grain, maxWorkers)
}

// Do runs the tasks concurrently, bounded by the worker count, and returns
// the error of the lowest-indexed failing task (deterministic regardless of
// scheduling). With one worker, one task, or inside an active region, tasks
// run sequentially in order — in that case a failing task short-circuits
// the rest, so tasks must not rely on all of them running. Do fans out whole
// independent computations (e.g. the curves of one figure); kernels inside
// the tasks see the active region and stay serial.
func Do(tasks ...func() error) error {
	if len(tasks) == 0 {
		return nil
	}
	w := Workers()
	if w > len(tasks) {
		w = len(tasks)
	}
	if w <= 1 || !tryEnter() {
		for _, t := range tasks {
			if err := t(); err != nil {
				return err
			}
		}
		return nil
	}
	defer active.Add(-1)
	errs := make([]error, len(tasks))
	sem := make(chan struct{}, w)
	var wg sync.WaitGroup
	for i, t := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, t func() error) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = t()
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
