package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := SetWorkers(n)
	t.Cleanup(func() { SetWorkers(prev) })
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			for _, grain := range []int{1, 3, 64, 5000} {
				t.Run(fmt.Sprintf("w=%d n=%d g=%d", workers, n, grain), func(t *testing.T) {
					withWorkers(t, workers)
					hits := make([]int32, n)
					For(n, grain, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
					for i, h := range hits {
						if h != 1 {
							t.Fatalf("index %d visited %d times", i, h)
						}
					}
				})
			}
		}
	}
}

func TestForWorkerSlotsAreUniqueAndInRange(t *testing.T) {
	withWorkers(t, 4)
	const n, grain = 1024, 8
	// Per-worker scratch: if two chunks with the same worker slot ran
	// concurrently, the race detector would flag these counters.
	scratch := make([]int, Workers())
	var seen [maxPool]int32
	ForWorker(n, grain, len(scratch), func(w, lo, hi int) {
		if w < 0 || w >= Workers() {
			panic(fmt.Sprintf("worker slot %d out of range", w))
		}
		atomic.AddInt32(&seen[w], 1)
		scratch[w] += hi - lo
	})
	total := 0
	for _, s := range scratch {
		total += s
	}
	if total != n {
		t.Fatalf("scratch accounted for %d of %d items", total, n)
	}
}

// TestOrderedChunkReductionIsWorkerCountInvariant exercises the pattern the
// gradient kernel uses: fixed chunks derived from the problem size, per-chunk
// outputs, ordered fold. The folded result must be bit-identical at every
// worker count even though float addition is non-associative — because the
// chunk boundaries and the fold order never change.
func TestOrderedChunkReductionIsWorkerCountInvariant(t *testing.T) {
	const n, grain = 103, 4
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1 / float64(i+3)
	}
	sum := func(workers int) float64 {
		withWorkers(t, workers)
		chunks := ChunkCount(n, grain)
		partial := make([]float64, chunks)
		ForWorker(chunks, 1, maxPool, func(_, lo, hi int) {
			for c := lo; c < hi; c++ {
				s := 0.0
				for i := c * grain; i < n && i < (c+1)*grain; i++ {
					s += xs[i]
				}
				partial[c] = s
			}
		})
		var total float64
		for _, p := range partial {
			total += p
		}
		return total
	}
	want := sum(1)
	for _, w := range []int{2, 3, 4, 8} {
		if got := sum(w); got != want {
			t.Fatalf("workers=%d changed the reduction: %v vs %v", w, got, want)
		}
	}
}

func TestForWorkerRespectsSlotCeiling(t *testing.T) {
	withWorkers(t, 8)
	// Per-worker scratch of length 2: no slot may reach 2 even though the
	// global worker count is higher (the guard against SetWorkers racing a
	// caller's scratch sizing).
	var maxSlot atomic.Int32
	ForWorker(1024, 1, 2, func(w, lo, hi int) {
		for {
			cur := maxSlot.Load()
			if int32(w) <= cur || maxSlot.CompareAndSwap(cur, int32(w)) {
				return
			}
		}
	})
	if maxSlot.Load() >= 2 {
		t.Fatalf("worker slot %d exceeded ceiling 2", maxSlot.Load())
	}
}

func TestNestedRegionsRunInline(t *testing.T) {
	withWorkers(t, 4)
	var outer, inner int32
	For(8, 1, func(lo, hi int) {
		atomic.AddInt32(&outer, int32(hi-lo))
		// The nested call must execute inline (single span) without
		// deadlocking on the pool.
		For(16, 1, func(lo, hi int) {
			if lo != 0 || hi != 16 {
				panic("nested For did not collapse to a single span")
			}
			atomic.AddInt32(&inner, int32(hi-lo))
		})
	})
	if outer != 8 || inner != 8*16 {
		t.Fatalf("outer=%d inner=%d", outer, inner)
	}
}

func TestRunnerIsZeroAllocAfterWarmup(t *testing.T) {
	withWorkers(t, 4)
	dst := make([]float64, 4096)
	r := NewRunner(func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += 1
		}
	})
	r.Run(len(dst), 256) // warm-up: spawns pool workers
	allocs := testing.AllocsPerRun(10, func() {
		r.Run(len(dst), 256)
	})
	if allocs != 0 {
		t.Fatalf("Runner.Run allocated %.1f times per run, want 0", allocs)
	}
}

func TestDoRunsAllTasksAndReturnsLowestIndexedError(t *testing.T) {
	withWorkers(t, 4)
	errA := errors.New("a")
	errB := errors.New("b")
	var ran int32
	err := Do(
		func() error { atomic.AddInt32(&ran, 1); return nil },
		func() error { atomic.AddInt32(&ran, 1); return errA },
		func() error { atomic.AddInt32(&ran, 1); return errB },
		func() error { atomic.AddInt32(&ran, 1); return nil },
	)
	if !errors.Is(err, errA) {
		t.Fatalf("want lowest-indexed error %v, got %v", errA, err)
	}
	if ran != 4 {
		t.Fatalf("parallel Do ran %d of 4 tasks", ran)
	}
}

func TestDoSerialFallbackShortCircuits(t *testing.T) {
	withWorkers(t, 1)
	boom := errors.New("boom")
	var ran int32
	err := Do(
		func() error { atomic.AddInt32(&ran, 1); return boom },
		func() error { atomic.AddInt32(&ran, 1); return nil },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if ran != 1 {
		t.Fatalf("serial Do ran %d tasks after an error", ran)
	}
}

func TestSetWorkersClampsAndRestoresDefault(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 || Workers() > maxPool {
		t.Fatalf("default workers out of range: %d", Workers())
	}
	SetWorkers(1 << 20)
	if Workers() != maxPool {
		t.Fatalf("clamp failed: %d", Workers())
	}
}

func TestGrainForAndChunkCount(t *testing.T) {
	if g := GrainFor(100, 1000); g != 10 {
		t.Fatalf("GrainFor(100,1000) = %d", g)
	}
	if g := GrainFor(1_000_000, 1000); g != 1 {
		t.Fatalf("huge perItem: %d", g)
	}
	if g := GrainFor(0, 1000); g != 1000 {
		t.Fatalf("zero perItem: %d", g)
	}
	if c := ChunkCount(10, 4); c != 3 {
		t.Fatalf("ChunkCount(10,4) = %d", c)
	}
	if c := ChunkCount(0, 4); c != 0 {
		t.Fatalf("ChunkCount(0,4) = %d", c)
	}
}

func TestBusyReflectsActiveRegion(t *testing.T) {
	withWorkers(t, 4)
	if Busy() {
		t.Fatal("Busy before any region")
	}
	var sawBusy atomic.Bool
	For(64, 1, func(lo, hi int) {
		if Busy() {
			sawBusy.Store(true)
		}
	})
	if !sawBusy.Load() {
		t.Fatal("Busy false inside a parallel region")
	}
	if Busy() {
		t.Fatal("Busy after the region ended")
	}
}
