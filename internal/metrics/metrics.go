// Package metrics is the live ops surface of a running deployment: a
// lock-free per-node counter registry that the transport and cluster
// layers publish into while training is in flight.
//
// The hardening counters that make Byzantine behaviour visible —
// forged frames, unnegotiated compression, beyond-horizon steps,
// malformed shards, mailbox overflow — used to be snapshotted into
// cluster.NodeStats by a defer on clean return, which meant they died
// with the process and lied after a cancellation. Here every component
// keeps its own counter (so exact-count tests and accessors keep their
// semantics) and additionally mirrors each increment into a
// *NodeMetrics handle. All handle state is atomic: writers never take
// a lock on the hot path, and a scraper reading mid-run sees values
// that are current, monotonic, and race-clean.
//
// A Registry owns one NodeMetrics per node ID. Snapshot returns a
// stable-ordered copy for rendering; CheckHealth derives quorum
// liveness (has every non-done node made progress within the stall
// window?). The HTTP exposition on top — GET /metrics in Prometheus
// text format and GET /healthz — lives in http.go.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// NodeMetrics is one node's live counter handle. Counter fields are
// exported atomics so the publishing layers (transport collectors,
// mailboxes, couriers, TCP read loops, cluster step loops) can
// increment them directly without a method call per event.
//
// All counters are cumulative and monotonic for the lifetime of the
// handle; gauges (peak bytes, queue depth, last step) move as the run
// does. A nil *NodeMetrics is never published into — call sites guard
// with `if m != nil`.
type NodeMetrics struct {
	// Validation drops, summed across the whole collector and the
	// sharded collector (and, for malformed, the TCP decode path):
	// frames claiming a step beyond the collection horizon, and frames
	// whose payload fails structural validation.
	DroppedFuture    atomic.Uint64
	DroppedMalformed atomic.Uint64

	// TCP hardening drops: frames whose From field disagrees with the
	// connection's hello-authenticated identity, and frames using a
	// compression scheme the sender never negotiated.
	ForgedDropped       atomic.Uint64
	DroppedUnnegotiated atomic.Uint64

	// Membership drops: hello handshakes rejected by the admission
	// check (an identity outside the roster, or a roster intent the
	// node refuses), and collected frames discarded because their
	// sender was not a member of the roster in force at the frame's
	// step.
	DroppedUnadmitted atomic.Uint64
	DroppedRoster     atomic.Uint64

	// Mailbox drops. DroppedOverflow counts inbound per-sender queue
	// evictions (drop-oldest) and rejections (drop-newest) at this
	// node's own mailbox; CourierDropped counts the same events on the
	// node's outbound courier links. They are kept separate so inbound
	// backpressure accounting stays exact under rogue floods.
	DroppedOverflow atomic.Uint64
	CourierDropped  atomic.Uint64
	DroppedClosed   atomic.Uint64

	// Steps counts completed protocol steps (server: contraction round
	// applied; worker: gradient broadcast for the step).
	Steps atomic.Uint64

	peakBytes    atomic.Int64
	queueDepth   atomic.Int64
	lastStep     atomic.Int64 // -1 until the first completed step
	lastProgress atomic.Int64 // unix nanoseconds of last liveness signal
	done         atomic.Uint32
	addr         atomic.Pointer[string]
}

func newNodeMetrics() *NodeMetrics {
	m := &NodeMetrics{}
	m.lastStep.Store(-1)
	//lint:allow-clock liveness timestamps are genuinely wall-clock, never protocol state
	m.lastProgress.Store(time.Now().UnixNano())
	return m
}

// ObservePeak records a collector buffer high-water mark. The handle
// keeps the maximum across all collectors publishing into it.
func (m *NodeMetrics) ObservePeak(n int) {
	v := int64(n)
	for {
		cur := m.peakBytes.Load()
		if v <= cur || m.peakBytes.CompareAndSwap(cur, v) {
			return
		}
	}
}

// StepDone marks protocol step as completed: bumps the step counter,
// advances the last-step gauge, and refreshes the liveness clock.
func (m *NodeMetrics) StepDone(step int) {
	m.Steps.Add(1)
	m.lastStep.Store(int64(step))
	m.Progress()
}

// Progress refreshes the liveness clock without completing a step —
// called when a quorum phase makes headway so a long step under
// partial faults does not read as a stall.
func (m *NodeMetrics) Progress() {
	//lint:allow-clock liveness timestamps are genuinely wall-clock, never protocol state
	m.lastProgress.Store(time.Now().UnixNano())
}

// MarkDone flags the node as cleanly finished; CheckHealth stops
// expecting progress from it.
func (m *NodeMetrics) MarkDone() {
	m.done.Store(1)
	m.Progress()
}

// SetAddr records the node's listen address for the
// guanyu_node_info{node,addr} exposition.
func (m *NodeMetrics) SetAddr(addr string) { m.addr.Store(&addr) }

// SetQueueDepth publishes the node's current inbound mailbox depth.
func (m *NodeMetrics) SetQueueDepth(n int) { m.queueDepth.Store(int64(n)) }

// PeakBytes returns the largest collector buffer high-water mark seen.
func (m *NodeMetrics) PeakBytes() int { return int(m.peakBytes.Load()) }

// QueueDepth returns the last published inbound mailbox depth.
func (m *NodeMetrics) QueueDepth() int { return int(m.queueDepth.Load()) }

// LastStep returns the last completed step, or -1 before the first.
func (m *NodeMetrics) LastStep() int { return int(m.lastStep.Load()) }

// SinceProgress returns the time elapsed since the node last signalled
// liveness (step completion, quorum headway, or clean finish).
func (m *NodeMetrics) SinceProgress() time.Duration {
	//lint:allow-clock stall detection measures real elapsed time by design
	return time.Duration(time.Now().UnixNano() - m.lastProgress.Load())
}

// Done reports whether the node finished its run cleanly.
func (m *NodeMetrics) Done() bool { return m.done.Load() != 0 }

// Addr returns the node's recorded listen address, or "".
func (m *NodeMetrics) Addr() string {
	if p := m.addr.Load(); p != nil {
		return *p
	}
	return ""
}

// Snapshot is a plain-value copy of one node's handle, safe to render
// after the handle keeps moving.
type Snapshot struct {
	ID                  string
	Addr                string
	DroppedFuture       uint64
	DroppedMalformed    uint64
	ForgedDropped       uint64
	DroppedUnnegotiated uint64
	DroppedUnadmitted   uint64
	DroppedRoster       uint64
	DroppedOverflow     uint64
	CourierDropped      uint64
	DroppedClosed       uint64
	Steps               uint64
	PeakBytes           int
	QueueDepth          int
	LastStep            int
	SinceProgress       time.Duration
	Done                bool
}

// Registry owns the per-node handles of one deployment. Node is
// get-or-create, so the façade can hand out handles before the node
// goroutines start and scrape while they run.
type Registry struct {
	mu    sync.Mutex
	nodes map[string]*NodeMetrics
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{nodes: make(map[string]*NodeMetrics)}
}

// Node returns the handle for id, creating it on first use. Handles
// are never removed; the registry lives exactly as long as the run.
func (r *Registry) Node(id string) *NodeMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.nodes[id]
	if !ok {
		m = newNodeMetrics()
		r.nodes[id] = m
		r.order = append(r.order, id)
	}
	return m
}

// IDs returns the registered node IDs in registration order.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// Snapshot copies every handle into plain values, in registration
// order. Each field is loaded atomically; the set of fields is not a
// consistent cut, which is fine for monotonic counters.
func (r *Registry) Snapshot() []Snapshot {
	r.mu.Lock()
	ids := append([]string(nil), r.order...)
	handles := make([]*NodeMetrics, len(ids))
	for i, id := range ids {
		handles[i] = r.nodes[id]
	}
	r.mu.Unlock()

	out := make([]Snapshot, len(ids))
	for i, m := range handles {
		out[i] = Snapshot{
			ID:                  ids[i],
			Addr:                m.Addr(),
			DroppedFuture:       m.DroppedFuture.Load(),
			DroppedMalformed:    m.DroppedMalformed.Load(),
			ForgedDropped:       m.ForgedDropped.Load(),
			DroppedUnnegotiated: m.DroppedUnnegotiated.Load(),
			DroppedUnadmitted:   m.DroppedUnadmitted.Load(),
			DroppedRoster:       m.DroppedRoster.Load(),
			DroppedOverflow:     m.DroppedOverflow.Load(),
			CourierDropped:      m.CourierDropped.Load(),
			DroppedClosed:       m.DroppedClosed.Load(),
			Steps:               m.Steps.Load(),
			PeakBytes:           m.PeakBytes(),
			QueueDepth:          m.QueueDepth(),
			LastStep:            m.LastStep(),
			SinceProgress:       m.SinceProgress(),
			Done:                m.Done(),
		}
	}
	return out
}

// NodeHealth is one node's liveness verdict inside a Health report.
type NodeHealth struct {
	ID            string
	LastStep      int
	SinceProgress time.Duration
	QueueDepth    int
	Done          bool
	Stalled       bool
}

// Health is the quorum-liveness verdict CheckHealth derives from the
// registry: the deployment is healthy iff no live node has gone
// stallAfter without progress. Nodes that finished cleanly are never
// stalled; an empty registry is healthy (nothing has started yet).
type Health struct {
	Healthy bool
	Stalled []string
	Nodes   []NodeHealth
}

// CheckHealth evaluates liveness with the given stall window.
func (r *Registry) CheckHealth(stallAfter time.Duration) Health {
	snaps := r.Snapshot()
	h := Health{Healthy: true, Nodes: make([]NodeHealth, 0, len(snaps))}
	for _, s := range snaps {
		stalled := !s.Done && s.SinceProgress > stallAfter
		if stalled {
			h.Healthy = false
			h.Stalled = append(h.Stalled, s.ID)
		}
		h.Nodes = append(h.Nodes, NodeHealth{
			ID:            s.ID,
			LastStep:      s.LastStep,
			SinceProgress: s.SinceProgress,
			QueueDepth:    s.QueueDepth,
			Done:          s.Done,
			Stalled:       stalled,
		})
	}
	return h
}
