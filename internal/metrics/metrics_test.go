package metrics

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryNodeIsGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Node("ps0")
	b := r.Node("ps0")
	if a != b {
		t.Fatal("Node must return the same handle for the same id")
	}
	r.Node("wrk0")
	ids := r.IDs()
	if len(ids) != 2 || ids[0] != "ps0" || ids[1] != "wrk0" {
		t.Fatalf("IDs = %v, want [ps0 wrk0] in registration order", ids)
	}
}

func TestSnapshotCarriesCountersAndLiveness(t *testing.T) {
	r := NewRegistry()
	h := r.Node("ps0")
	h.DroppedOverflow.Add(3)
	h.ForgedDropped.Add(2)
	h.ObservePeak(100)
	h.ObservePeak(50) // must not regress the high-water mark
	h.SetQueueDepth(7)
	h.SetAddr("127.0.0.1:999")
	h.StepDone(4)
	h.MarkDone()

	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(snaps))
	}
	s := snaps[0]
	if s.ID != "ps0" || s.Addr != "127.0.0.1:999" {
		t.Fatalf("identity fields wrong: %+v", s)
	}
	if s.DroppedOverflow != 3 || s.ForgedDropped != 2 || s.Steps != 1 {
		t.Fatalf("counter fields wrong: %+v", s)
	}
	if s.PeakBytes != 100 || s.QueueDepth != 7 || s.LastStep != 4 || !s.Done {
		t.Fatalf("gauge fields wrong: %+v", s)
	}
	if s.SinceProgress > time.Minute {
		t.Fatalf("SinceProgress %v not refreshed by StepDone", s.SinceProgress)
	}
}

func TestObservePeakIsConcurrentMax(t *testing.T) {
	h := NewRegistry().Node("ps0")
	var wg sync.WaitGroup
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			h.ObservePeak(n)
		}(i)
	}
	wg.Wait()
	if h.PeakBytes() != 64 {
		t.Fatalf("peak = %d, want 64", h.PeakBytes())
	}
}

func TestCheckHealthFlagsStalledNodes(t *testing.T) {
	r := NewRegistry()
	if !r.CheckHealth(time.Millisecond).Healthy {
		t.Fatal("empty registry must be healthy")
	}
	stuck := r.Node("ps0")
	done := r.Node("ps1")
	done.MarkDone()
	_ = stuck

	time.Sleep(5 * time.Millisecond)
	h := r.CheckHealth(time.Millisecond)
	if h.Healthy {
		t.Fatal("registry with a silent running node must be unhealthy")
	}
	if len(h.Stalled) != 1 || h.Stalled[0] != "ps0" {
		t.Fatalf("Stalled = %v, want [ps0] (done nodes never stall)", h.Stalled)
	}

	stuck.Progress()
	if h := r.CheckHealth(time.Minute); !h.Healthy {
		t.Fatalf("health must recover after progress: %+v", h)
	}
}

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Node("ps0")
	h.ForgedDropped.Add(5)
	h.DroppedOverflow.Add(9)
	h.SetAddr("127.0.0.1:7000")
	h.StepDone(3)
	r.Node("wrk0").CourierDropped.Add(2)

	var b strings.Builder
	WritePrometheus(&b, r)
	out := b.String()

	for _, want := range []string{
		"# HELP guanyu_forged_dropped_total",
		"# TYPE guanyu_forged_dropped_total counter",
		`guanyu_forged_dropped_total{node="ps0"} 5`,
		`guanyu_mailbox_dropped_total{node="ps0"} 9`,
		`guanyu_courier_dropped_total{node="wrk0"} 2`,
		`guanyu_steps_total{node="ps0"} 1`,
		`guanyu_last_step{node="ps0"} 3`,
		`guanyu_node_info{node="ps0",addr="127.0.0.1:7000"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHealthzFlipsUnderStall drives the HTTP surface through the liveness
// transition an operator would see: 200 while the node progresses, 503
// once it goes silent past the stall window, 200 again after it resumes.
func TestHealthzFlipsUnderStall(t *testing.T) {
	r := NewRegistry()
	h := r.Node("ps0")
	h.Progress()

	srv, err := Serve("127.0.0.1:0", r, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("fresh node: got %d %q, want 200 ok", code, body)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := get("/healthz")
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "stalled: ps0") {
				t.Fatalf("503 body %q must name the stalled node", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped to 503 after the node went silent")
		}
		time.Sleep(10 * time.Millisecond)
	}

	h.StepDone(1)
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d after progress resumed, want 200", code)
	}

	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, `guanyu_steps_total{node="ps0"} 1`) {
		t.Fatalf("metrics during the same session: %d %q", code, body)
	}
}

// TestExpositionRaceClean hammers one handle from writers while scraping
// the full exposition — the torn-read check behind `go test -race`.
func TestExpositionRaceClean(t *testing.T) {
	r := NewRegistry()
	h := r.Node("ps0")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.DroppedOverflow.Add(1)
			h.ObservePeak(i)
			h.StepDone(i)
			h.SetQueueDepth(i % 8)
			h.SetAddr(fmt.Sprintf("127.0.0.1:%d", 7000+i%10))
		}
	}()
	var prev uint64
	for i := 0; i < 200; i++ {
		var b strings.Builder
		WritePrometheus(&b, r)
		snap := r.Snapshot()[0]
		if snap.DroppedOverflow < prev {
			t.Fatalf("counter regressed across scrapes: %d < %d", snap.DroppedOverflow, prev)
		}
		prev = snap.DroppedOverflow
	}
	close(stop)
	wg.Wait()
}
