package metrics

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"
)

// DefaultStallAfter is the healthz stall window when the caller does
// not choose one: a node that reports no progress for this long while
// not done marks the deployment unhealthy.
const DefaultStallAfter = 60 * time.Second

// counterFamilies maps exposition family names to their snapshot
// accessor, in a fixed order so scrapes diff cleanly.
var counterFamilies = []struct {
	name, help string
	value      func(Snapshot) uint64
}{
	{"guanyu_dropped_future_total",
		"Frames dropped for claiming a step beyond the collection horizon.",
		func(s Snapshot) uint64 { return s.DroppedFuture }},
	{"guanyu_dropped_malformed_total",
		"Frames dropped by structural validation (bad shard tags, undecodable payloads).",
		func(s Snapshot) uint64 { return s.DroppedMalformed }},
	{"guanyu_forged_dropped_total",
		"Frames dropped because From disagreed with the connection's hello identity.",
		func(s Snapshot) uint64 { return s.ForgedDropped }},
	{"guanyu_dropped_unnegotiated_total",
		"Frames dropped for using a compression scheme the sender never negotiated.",
		func(s Snapshot) uint64 { return s.DroppedUnnegotiated }},
	{"guanyu_dropped_unadmitted_total",
		"Hello handshakes rejected by the roster admission check.",
		func(s Snapshot) uint64 { return s.DroppedUnadmitted }},
	{"guanyu_dropped_roster_total",
		"Frames dropped because the sender was outside the roster in force at the frame's step.",
		func(s Snapshot) uint64 { return s.DroppedRoster }},
	{"guanyu_mailbox_dropped_total",
		"Frames evicted or rejected by the node's bounded inbound mailbox.",
		func(s Snapshot) uint64 { return s.DroppedOverflow }},
	{"guanyu_courier_dropped_total",
		"Frames evicted or rejected by the node's outbound courier links.",
		func(s Snapshot) uint64 { return s.CourierDropped }},
	{"guanyu_closed_dropped_total",
		"Frames dropped because the mailbox had already closed.",
		func(s Snapshot) uint64 { return s.DroppedClosed }},
	{"guanyu_steps_total",
		"Completed protocol steps.",
		func(s Snapshot) uint64 { return s.Steps }},
}

var gaugeFamilies = []struct {
	name, help string
	value      func(Snapshot) float64
}{
	{"guanyu_collector_peak_bytes",
		"High-water mark of collector buffer bytes.",
		func(s Snapshot) float64 { return float64(s.PeakBytes) }},
	{"guanyu_mailbox_depth",
		"Last published inbound mailbox depth.",
		func(s Snapshot) float64 { return float64(s.QueueDepth) }},
	{"guanyu_last_step",
		"Last completed protocol step (-1 before the first).",
		func(s Snapshot) float64 { return float64(s.LastStep) }},
	{"guanyu_since_last_quorum_seconds",
		"Seconds since the node last made quorum progress.",
		func(s Snapshot) float64 { return s.SinceProgress.Seconds() }},
	{"guanyu_node_done",
		"1 once the node finished its run cleanly.",
		func(s Snapshot) float64 {
			if s.Done {
				return 1
			}
			return 0
		}},
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format: HELP/TYPE headers per family, one sample per
// node labelled node="<id>", plus a guanyu_node_info info-metric that
// carries each node's listen address as a label.
func WritePrometheus(w io.Writer, r *Registry) {
	snaps := r.Snapshot()
	for _, f := range counterFamilies {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", f.name, f.help, f.name)
		for _, s := range snaps {
			fmt.Fprintf(w, "%s{node=%q} %d\n", f.name, s.ID, f.value(s))
		}
	}
	for _, f := range gaugeFamilies {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", f.name, f.help, f.name)
		for _, s := range snaps {
			fmt.Fprintf(w, "%s{node=%q} %g\n", f.name, s.ID, f.value(s))
		}
	}
	fmt.Fprintf(w, "# HELP guanyu_node_info Node identity and listen address.\n# TYPE guanyu_node_info gauge\n")
	for _, s := range snaps {
		fmt.Fprintf(w, "guanyu_node_info{node=%q,addr=%q} 1\n", s.ID, s.Addr)
	}
}

// writeHealth renders the healthz body: a verdict line followed by one
// line per node. Sorted by ID so the output is stable for tests.
func writeHealth(w io.Writer, h Health) {
	if h.Healthy {
		fmt.Fprintln(w, "ok")
	} else {
		fmt.Fprintf(w, "stalled: %s\n", strings.Join(h.Stalled, ","))
	}
	nodes := append([]NodeHealth(nil), h.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		state := "running"
		if n.Done {
			state = "done"
		} else if n.Stalled {
			state = "stalled"
		}
		fmt.Fprintf(w, "%s %s last_step=%d since_quorum=%.1fs mailbox_depth=%d\n",
			n.ID, state, n.LastStep, n.SinceProgress.Seconds(), n.QueueDepth)
	}
}

// Server is a live /metrics + /healthz listener over one registry.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Handler returns the HTTP handler serving /metrics and /healthz for
// reg, so callers embedding the ops surface in their own mux can.
func Handler(reg *Registry, stallAfter time.Duration) http.Handler {
	if stallAfter <= 0 {
		stallAfter = DefaultStallAfter
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, reg)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := reg.CheckHealth(stallAfter)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !h.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeHealth(w, h)
	})
	return mux
}

// Serve starts the ops listener on addr (use port 0 to pick a free
// one; Addr reports the bound address). The listener runs until Close.
func Serve(addr string, reg *Registry, stallAfter time.Duration) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(reg, stallAfter)}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down and terminates in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
