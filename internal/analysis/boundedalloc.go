package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// BoundedAlloc enforces the WIRE.md hardening rule in the transport
// and compress packages: a frame-decoding path must not allocate a
// slice whose size derives from wire input without first checking that
// size against a bound — otherwise a 15-byte header can reserve 512
// MiB on the receiver's behalf.
//
// Scope: functions that plausibly consume wire bytes — the name
// matches (?i)decode|read|parse|unpack|unmarshal|hello, or a []byte
// parameter is named like wire input (payload, data, body, buf,
// frame, raw). Inside those, every make([]T, n) / make([]T, len, cap)
// whose size is not a constant and not derived from len/cap of an
// in-memory value must be preceded (within the same function) by a
// condition — if/for/switch — that mentions the size variable. The
// check is lexical, not a value analysis: it catches the historically
// observed bug shape (allocate first, validate later or never) while
// accepting every bounded-staging idiom the codec uses. Escape hatch:
// //lint:allow-unbounded, for sizes validated by the caller.
var BoundedAlloc = &Analyzer{
	Name: "boundedalloc",
	Doc:  "flag wire-derived make([]T, n) without a preceding bound check in decode paths",
	Run:  runBoundedAlloc,
}

var (
	decodeFuncRe  = regexp.MustCompile(`(?i)decode|read|parse|unpack|unmarshal|hello`)
	wireParamRe   = regexp.MustCompile(`^(payload|data|body|buf|frame|raw|wire)$`)
	boundedScopes = map[string]bool{"transport": true, "compress": true}
)

func runBoundedAlloc(p *Pass) {
	if !boundedScopes[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !p.isDecodeFunc(fd) {
				continue
			}
			p.checkAllocs(fd)
		}
	}
}

// isDecodeFunc reports whether fd plausibly consumes wire input.
func (p *Pass) isDecodeFunc(fd *ast.FuncDecl) bool {
	if decodeFuncRe.MatchString(fd.Name.Name) {
		return true
	}
	for _, field := range fd.Type.Params.List {
		t := p.Info.Types[field.Type].Type
		if t == nil {
			continue
		}
		slice, ok := t.Underlying().(*types.Slice)
		if !ok {
			continue
		}
		basic, ok := slice.Elem().Underlying().(*types.Basic)
		if !ok || basic.Kind() != types.Byte {
			continue
		}
		for _, name := range field.Names {
			if wireParamRe.MatchString(name.Name) {
				return true
			}
		}
	}
	return false
}

// checkAllocs inspects every slice-make in fd against the bound-check
// requirement.
func (p *Pass) checkAllocs(fd *ast.FuncDecl) {
	guards := p.collectGuards(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltin(p.Info, call, "make") || len(call.Args) < 2 {
			return true
		}
		t := p.Info.Types[call.Args[0]].Type
		if t == nil {
			return true
		}
		if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
			return true
		}
		if p.Allowed("unbounded", call.Pos()) {
			return true
		}
		for _, size := range call.Args[1:] {
			for _, id := range p.unboundedIdents(size, guards, call.Pos()) {
				p.Reportf(call.Pos(),
					"make sized by %q without a preceding bound check in this decode path (WIRE.md hardening rule; annotate //lint:allow-unbounded if the caller validates it)",
					id.Name)
			}
		}
		return true
	})
}

// collectGuards maps every variable mentioned in a condition (if/for
// condition, if init, switch tag/init, case expression) to the
// positions of those conditions.
func (p *Pass) collectGuards(fd *ast.FuncDecl) map[types.Object][]token.Pos {
	guards := make(map[types.Object][]token.Pos)
	addExpr := func(e ast.Expr, at token.Pos) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					guards[obj] = append(guards[obj], at)
				}
			}
			return true
		})
	}
	addStmt := func(s ast.Stmt, at token.Pos) {
		if s == nil {
			return
		}
		ast.Inspect(s, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					guards[obj] = append(guards[obj], at)
				}
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			addStmt(n.Init, n.Pos())
			addExpr(n.Cond, n.Pos())
		case *ast.ForStmt:
			addExpr(n.Cond, n.Pos())
		case *ast.SwitchStmt:
			addStmt(n.Init, n.Pos())
			addExpr(n.Tag, n.Pos())
		case *ast.CaseClause:
			for _, e := range n.List {
				addExpr(e, n.Pos())
			}
		}
		return true
	})
	return guards
}

// unboundedIdents returns the identifiers in the size expression that
// are neither constant, nor len/cap-derived, nor guarded by a
// condition positioned before the allocation.
func (p *Pass) unboundedIdents(size ast.Expr, guards map[types.Object][]token.Pos, before token.Pos) []*ast.Ident {
	if tv, ok := p.Info.Types[size]; ok && tv.Value != nil {
		return nil // constant size
	}
	var out []*ast.Ident
	ast.Inspect(size, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok &&
			(isBuiltin(p.Info, call, "len") || isBuiltin(p.Info, call, "cap")) {
			return false // sizes of in-memory values are already paid for
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true // constants, types, fields of checked structs
		}
		for _, at := range guards[obj] {
			if at < before {
				return true
			}
		}
		out = append(out, id)
		return true
	})
	return out
}
