// Package analysis is the repo's custom static-analysis suite: five
// vet-style analyzers encoding the load-bearing invariants every
// correctness claim in this reproduction rests on, each of which has
// been violated — and fixed — at least once in the repo's history.
//
//   - cloneboundary: transport.Message values must be Clone()d before
//     crossing a send boundary (goroutine capture, timer callback,
//     channel send) — the race shape fixed in PRs 2, 3 and 7.
//   - counterparity: every Dropped*/Forged*/Steps event counted in
//     internal/transport or internal/cluster must mirror the increment
//     into its internal/metrics handle at increment time — the
//     dropped-counter plumbing fixed in PR 8.
//   - nodeterminism: the deterministic packages (gar, compress,
//     tensor, stats, transport, trace, metrics) must not read the wall
//     clock, use unseeded math/rand, or let Go-map iteration order
//     flow into an ordered aggregate — the quorum-order bug fixed in
//     PR 4. The `//lint:allow-clock` / `//lint:allow-maporder` escape
//     hatches mark the sites where wall-clock or unordered iteration
//     is genuinely correct.
//   - boundedalloc: make([]T, n) in wire-decoding paths needs a bound
//     check on n before the allocation — the WIRE.md hardening rule
//     that keeps a 15-byte header from reserving 512 MiB.
//   - noparallelnest: entering a parallel region from inside a
//     parallel worker body silently serialises (the runtime guard
//     degrades, it does not fail); the analyzer rejects the lexical
//     nesting statically.
//
// The suite is deliberately built on the standard library alone
// (go/ast, go/types, go/importer): dependencies are type-checked from
// the build cache's export data via `go list -deps -export -json`, the
// package under analysis from source. Only non-test Go files are
// linted. Analyzers are heuristic where full dataflow would be needed
// (documented per analyzer); the escape-hatch comments exist exactly
// so a reviewed, justified exception is visible in the diff instead of
// living in reviewer memory.
//
// Drive the suite with `go run ./cmd/guanyu-lint ./...` (the CI lint
// job) and see LINT.md for the invariant → analyzer → historical-bug
// mapping.
package analysis
