package analysis

import (
	"go/ast"
	"go/types"
)

// NoParallelNest statically rejects entering a parallel region from
// inside a parallel worker body. The runtime guard (parallel.tryEnter)
// makes nesting safe but silently serial: the inner region runs inline
// on one worker, so the mistake costs the whole speedup of the inner
// kernel without failing a single test. This analyzer turns the
// lexical form of that mistake into a lint failure.
//
// A "region entry" is a call to parallel.For, parallel.ForWorker,
// parallel.Do, or the Run/RunMax methods of parallel.Runner. A "worker
// body" is a function literal passed to one of those calls (or to
// parallel.NewRunner). Only lexical nesting is detected — a body that
// calls a helper which itself enters a region needs the runtime guard
// (and parallel.Busy) as before. Escape hatch:
// //lint:allow-parallelnest, for bodies that intentionally call an
// entry point documented to degrade gracefully.
var NoParallelNest = &Analyzer{
	Name: "noparallelnest",
	Doc:  "reject parallel region entry from inside a parallel worker body",
	Run:  runNoParallelNest,
}

func runNoParallelNest(p *Pass) {
	for _, f := range p.Files {
		// First pass: collect every function literal that is a worker body.
		bodies := make(map[*ast.FuncLit]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !p.isParallelCall(call, true) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					bodies[lit] = true
				}
			}
			return true
		})
		if len(bodies) == 0 {
			continue
		}
		// Second pass: flag region entries lexically inside a worker body.
		var inBody int
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && bodies[lit] {
				inBody++
				ast.Inspect(lit.Body, walk)
				inBody--
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && inBody > 0 && p.isParallelCall(call, false) {
				if !p.Allowed("parallelnest", call.Pos()) {
					p.Reportf(call.Pos(),
						"parallel region entered from inside a parallel worker body: the inner region silently serialises")
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
}

// isParallelCall reports whether call enters a parallel region (or,
// with includeCtors, merely installs a worker body via NewRunner).
func (p *Pass) isParallelCall(call *ast.CallExpr, includeCtors bool) bool {
	obj := calleeObj(p.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "parallel" {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if !namedFromPkg(recv.Type(), "parallel", "Runner") {
			return false
		}
		return obj.Name() == "Run" || obj.Name() == "RunMax"
	}
	switch obj.Name() {
	case "For", "ForWorker", "Do":
		return true
	case "NewRunner":
		return includeCtors
	}
	return false
}
