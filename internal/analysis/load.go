package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// ImportPath is the package's import path (module path for real
	// packages, src-relative path for fixtures).
	ImportPath string
	// Dir is the directory the files were read from.
	Dir string
	// Fset maps positions.
	Fset *token.FileSet
	// Files are the parsed non-test Go files.
	Files []*ast.File
	// Types is the checked package.
	Types *types.Package
	// Info holds the checker's facts.
	Info *types.Info
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// listedPkg is the subset of `go list -json` output the loaders use.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir over the given
// patterns and returns the decoded package records. Export data for
// every dependency comes from the build cache, so the tree must
// compile — the same precondition every vet-style tool has.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Name,Export,GoFiles,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s", p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer that resolves every import
// from the given import-path → export-file map.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
}

func parseDir(fset *token.FileSet, dir string, goFiles []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load loads and type-checks the packages matching patterns, resolved
// relative to dir (the module root). Each matched package is checked
// from source; its dependencies — in-module and standard library alike
// — come from compiled export data, which makes loading the whole tree
// a parse + check of only the packages under analysis.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		files, err := parseDir(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      pkg,
			Info:       info,
		})
	}
	return out, nil
}

// --- fixture loading -----------------------------------------------------

// fixtureLoader type-checks a self-contained tree of fixture packages
// rooted at src: the package in directory src/<path> has import path
// <path>, fixture packages may import each other by those paths, and
// any other import resolves to the standard library through export
// data listed on demand.
type fixtureLoader struct {
	src  string
	fset *token.FileSet
	pkgs map[string]*Package
	std  types.Importer
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if p, err := l.load(path); err == nil {
		return p.Types, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return l.std.Import(path)
}

func (l *fixtureLoader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("analysis: fixture package %s has no Go files", path)
	}
	files, err := parseDir(l.fset, dir, goFiles)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check fixture %s: %v", path, err)
	}
	p := &Package{ImportPath: path, Dir: dir, Fset: l.fset, Files: files, Types: pkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// stdImports collects the non-fixture import paths used anywhere under
// src, so one `go list` call can resolve them all to export data.
func stdImports(src string) ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if info, statErr := os.Stat(filepath.Join(src, filepath.FromSlash(p))); statErr == nil && info.IsDir() {
				continue // fixture-local import
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}

// LoadFixture loads every fixture package under the src root (see
// fixtureLoader). Packages are returned in import-path order.
func LoadFixture(src string) ([]*Package, error) {
	abs, err := filepath.Abs(src)
	if err != nil {
		return nil, err
	}
	std, err := stdImports(abs)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	if len(std) > 0 {
		listed, err := goList(abs, std)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	l := &fixtureLoader{
		src:  abs,
		fset: fset,
		pkgs: make(map[string]*Package),
		std:  exportImporter(fset, exports),
	}
	var paths []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(abs, filepath.Dir(path))
		if err != nil {
			return err
		}
		paths = append(paths, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*Package
	seen := make(map[string]bool)
	for _, p := range paths {
		if p == "." || seen[p] {
			continue
		}
		seen[p] = true
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
