// Package atest is the analysistest-style harness for the repo's
// static-analysis suite: it loads a self-contained fixture tree with
// analysis.LoadFixture, runs a set of analyzers over every package in
// it, and matches the diagnostics one-to-one against `// want "re"`
// markers in the fixture sources. An unexpected diagnostic and an
// unsatisfied marker both fail the test, so each fixture is a
// regression test in both directions: the analyzer must flag the bad
// lines and stay silent on the good ones — and the test fails outright
// if the analyzer it exercises is disabled.
package atest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one parsed want marker.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture tree rooted at src, runs the given analyzers
// over it, and reports mismatches between the resulting diagnostics
// and the fixtures' want markers as test errors.
func Run(t *testing.T, src string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.LoadFixture(src)
	if err != nil {
		t.Fatalf("atest: load fixture %s: %v", src, err)
	}
	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatalf("atest: %v", err)
	}
	for _, d := range analysis.RunAnalyzers(pkgs, analyzers) {
		if w := match(wants, d); w != nil {
			w.hit = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// match finds the first unconsumed expectation on the diagnostic's
// line whose regexp matches its message.
func match(wants []*expectation, d analysis.Diagnostic) *expectation {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

// collectWants scans every fixture file's comments for markers of the
// form `// want "re"` — one or more quoted regexps, each expecting one
// diagnostic on the marker's line whose message it matches.
func collectWants(pkgs []*analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
					if !ok {
						continue
					}
					position := pkg.Fset.Position(c.Pos())
					for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
						q, err := strconv.QuotedPrefix(rest)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: malformed want marker %q", position.Filename, position.Line, c.Text)
						}
						pat, err := strconv.Unquote(q)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: %v", position.Filename, position.Line, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want regexp: %v", position.Filename, position.Line, err)
						}
						wants = append(wants, &expectation{file: position.Filename, line: position.Line, re: re})
						rest = rest[len(q):]
					}
				}
			}
		}
	}
	return wants, nil
}
