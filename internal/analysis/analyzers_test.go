package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atest"
)

func fixture(name string) string { return filepath.Join("testdata", name, "src") }

func TestCloneBoundary(t *testing.T) {
	atest.Run(t, fixture("cloneboundary"), analysis.CloneBoundary)
}

func TestCounterParity(t *testing.T) {
	atest.Run(t, fixture("counterparity"), analysis.CounterParity)
}

func TestNoDeterminism(t *testing.T) {
	atest.Run(t, fixture("nodeterminism"), analysis.NoDeterminism)
}

func TestBoundedAlloc(t *testing.T) {
	atest.Run(t, fixture("boundedalloc"), analysis.BoundedAlloc)
}

func TestNoParallelNest(t *testing.T) {
	atest.Run(t, fixture("noparallelnest"), analysis.NoParallelNest)
}
