package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoDeterminism enforces the bit-identical-results contract of the
// deterministic packages (gar, compress, tensor, stats, transport,
// trace, metrics): the contraction guarantees of the source paper only
// hold if the aggregation kernels are pure functions of their inputs,
// and the wire/quorum layers must produce the same frames and the same
// "first q received" decisions on every replay.
//
// Three bug classes are rejected:
//
//   - wall-clock reads (time.Now / time.Since / time.Until). Timeout
//     deadlines and progress timestamps are genuinely wall-clock;
//     those sites carry //lint:allow-clock with a justification.
//   - unseeded randomness: calls to math/rand (and math/rand/v2)
//     package-level functions, which draw from the shared global
//     source. Constructing an explicitly seeded generator (rand.New,
//     rand.NewSource, ...) stays legal.
//   - map-iteration order flowing into an ordered aggregate: a `range`
//     over a map whose body appends to an outer slice or sends on a
//     channel — the Go-map-order quorum bug fixed in PR 4. Appending
//     is exempt when the very same enclosing block sorts the slice
//     afterwards (sort.* / slices.Sort*). Escape hatch:
//     //lint:allow-maporder, for iterations whose downstream order is
//     genuinely immaterial (e.g. closing every endpoint).
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall-clock, unseeded rand and map-order leaks in deterministic packages",
	Run:  runNoDeterminism,
}

// deterministicPkgs names the packages (by package name) whose results
// must be bit-identical across runs, parallelism and replay.
var deterministicPkgs = map[string]bool{
	"gar":       true,
	"compress":  true,
	"tensor":    true,
	"stats":     true,
	"transport": true,
	"trace":     true,
	"metrics":   true,
}

func runNoDeterminism(p *Pass) {
	if !deterministicPkgs[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				p.checkClockAndRand(n)
			case *ast.RangeStmt:
				p.checkMapRange(n, f)
			}
			return true
		})
	}
}

func (p *Pass) checkClockAndRand(call *ast.CallExpr) {
	if isPkgFunc(p.Info, call, "time", "Now", "Since", "Until") {
		if !p.Allowed("clock", call.Pos()) {
			p.Reportf(call.Pos(),
				"wall-clock read in a deterministic package (annotate //lint:allow-clock if this is genuinely wall-clock)")
		}
		return
	}
	obj := calleeObj(p.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	if path := obj.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return // methods on an explicitly constructed *rand.Rand are fine
	}
	if len(obj.Name()) >= 3 && obj.Name()[:3] == "New" {
		return // seeded-generator constructors
	}
	p.Reportf(call.Pos(),
		"%s.%s draws from the unseeded global source; construct a seeded generator instead", obj.Pkg().Name(), obj.Name())
}

// checkMapRange flags map iterations whose body builds an ordered
// aggregate.
func (p *Pass) checkMapRange(rng *ast.RangeStmt, file *ast.File) {
	t := p.Info.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if p.Allowed("maporder", rng.Pos()) {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !p.Allowed("maporder", n.Pos()) {
				p.Reportf(n.Arrow,
					"channel send inside a map range: delivery order would follow Go's randomized map iteration")
			}
			return false
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(p.Info, call, "append") || i >= len(n.Lhs) {
					continue
				}
				target, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Uses[target]
				if obj == nil {
					obj = p.Info.Defs[target]
				}
				if obj == nil || insideNode(obj.Pos(), rng) {
					continue // loop-local accumulator: order cannot escape
				}
				if p.sortedAfter(rng, obj, file) || p.Allowed("maporder", n.Pos()) {
					continue
				}
				p.Reportf(n.Pos(),
					"append to %q inside a map range: element order would follow Go's randomized map iteration (sort it in this block or annotate //lint:allow-maporder)",
					target.Name)
			}
		}
		return true
	})
}

func insideNode(pos token.Pos, n ast.Node) bool { return pos >= n.Pos() && pos <= n.End() }

// sortedAfter reports whether a statement after rng in the same
// enclosing block passes the appended-to variable into a sort.* or
// slices.Sort* call — the idiom that launders map order back into a
// deterministic sequence.
func (p *Pass) sortedAfter(rng *ast.RangeStmt, obj types.Object, file *ast.File) bool {
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		if sorted {
			return false
		}
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		idx := -1
		for i, stmt := range block.List {
			if stmt == ast.Stmt(rng) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return true
		}
		for _, stmt := range block.List[idx+1:] {
			ast.Inspect(stmt, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || sorted {
					return !sorted
				}
				callee := calleeObj(p.Info, call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				if name := callee.Pkg().Name(); name != "sort" && name != "slices" {
					return true
				}
				for _, arg := range call.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok && p.Info.Uses[id] == obj {
						sorted = true
					}
				}
				return !sorted
			})
		}
		return false
	})
	return sorted
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
