// Package transport exercises BoundedAlloc in frame-decoding paths:
// wire-derived sizes must be bounds-checked before allocation.
package transport

import "encoding/binary"

const maxDim = 1 << 20

// DecodeVec allocates whatever the header claims — the 15-byte frame
// that reserves 512 MiB on the receiver's behalf.
func DecodeVec(payload []byte) []float64 {
	n := int(binary.BigEndian.Uint32(payload))
	return make([]float64, n) // want "without a preceding bound check"
}

// DecodeVecBounded checks the claimed dimension first.
func DecodeVecBounded(payload []byte) ([]float64, bool) {
	n := int(binary.BigEndian.Uint32(payload))
	if n < 0 || n > maxDim {
		return nil, false
	}
	return make([]float64, n), true
}

// DecodeInto sizes by an in-memory value — already paid for.
func DecodeInto(payload []byte) []byte {
	out := make([]byte, len(payload))
	copy(out, payload)
	return out
}

// DecodeTrusted documents that its caller validated n.
func DecodeTrusted(payload []byte, n int) []float64 {
	//lint:allow-unbounded fixture: n is validated by the caller
	return make([]float64, n)
}

// Stage is not a decode path — no wire input — so its unchecked size
// is out of scope.
func Stage(n int) []float64 {
	return make([]float64, n)
}
