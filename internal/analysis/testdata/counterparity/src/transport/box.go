// Package transport exercises CounterParity: every recognised
// increment shape of a hardening counter, with and without its
// internal/metrics mirror.
package transport

import (
	"sync/atomic"

	"metrics"
)

// Box counts the frames it rejects.
type Box struct {
	droppedOverflow uint64
	droppedFuture   uint64
	forged          uint64
	steps           int
	sink            *metrics.NodeMetrics
}

// RejectOverflow drops a frame without telling the live registry —
// the bug shape this analyzer exists for.
func (b *Box) RejectOverflow() {
	atomic.AddUint64(&b.droppedOverflow, 1) // want "incremented without mirroring"
}

// RejectFuture mirrors the drop at increment time.
func (b *Box) RejectFuture() {
	atomic.AddUint64(&b.droppedFuture, 1)
	if b.sink != nil {
		b.sink.DroppedFuture.Add(1)
	}
}

// CountForged uses the ++ shape, unmirrored.
func (b *Box) CountForged() {
	b.forged++ // want "incremented without mirroring"
}

// Step uses the += 1 shape with a method-call mirror.
func (b *Box) Step() {
	b.steps += 1
	if b.sink != nil {
		b.sink.StepDone(b.steps)
	}
}

// Restep is mirrored by its only caller, which holds the lock the
// mirror needs — the escape hatch documents that.
func (b *Box) Restep() {
	b.steps += 1 //lint:allow-unmirrored fixture: caller mirrors under its lock
}

// Snapshot sums an already-mirrored counter into a result — an
// aggregation, not an event, so it is not flagged.
func (b *Box) Snapshot(droppedOverflow *uint64) {
	*droppedOverflow += atomic.LoadUint64(&b.droppedOverflow)
}
