// Package metrics is the fixture stand-in for the live counter
// registry; CounterParity matches metrics.NodeMetrics by package and
// type name.
package metrics

// Counter is a minimal atomic-counter stand-in.
type Counter struct{ n uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.n += n }

// NodeMetrics models the per-node live handle.
type NodeMetrics struct {
	DroppedFuture Counter
	Forged        Counter
	Steps         Counter
}

// StepDone records one completed protocol step.
func (m *NodeMetrics) StepDone(step int) { m.Steps.Add(1) }
