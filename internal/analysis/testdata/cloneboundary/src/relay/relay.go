// Package relay exercises every send boundary CloneBoundary checks —
// channel sends, goroutine arguments and captures, time.AfterFunc
// captures — in both shared and owned form.
package relay

import (
	"time"

	"transport"
)

// Forward is clean: a parameter arrives with the caller's clone
// obligation already discharged.
func Forward(ch chan transport.Message, m transport.Message) {
	ch <- m
}

// FanOut shares one buffer with every receiver in the first loop and
// clones per receiver in the second.
func FanOut(ch chan transport.Message, msgs []transport.Message) {
	for _, m := range msgs {
		ch <- m // want "sent on a channel without Clone"
	}
	for _, m := range msgs {
		ch <- m.Clone()
	}
}

// Launch hands the shared buffer to new goroutines three ways: as a
// call argument, cloned, and as a closure capture.
func Launch(ch chan transport.Message, msgs []transport.Message) {
	for _, m := range msgs {
		go send(ch, m) // want "handed to a goroutine without Clone"
		go send(ch, m.Clone())
		go func() {
			use(m) // want "captured by a goroutine without Clone"
		}()
	}
}

// Later schedules a callback over the shared buffer.
func Later(msgs []transport.Message) {
	for _, m := range msgs {
		time.AfterFunc(time.Millisecond, func() {
			use(m) // want "captured by a time.AfterFunc callback"
		})
	}
}

// Owned messages — fresh literals, call results — cross boundaries
// clean, and //lint:allow-share waives a justified share.
func Owned(ch chan transport.Message, msgs []transport.Message) {
	fresh := transport.Message{From: "a"}
	ch <- fresh
	for _, m := range msgs {
		held := m
		//lint:allow-share fixture: receiver is read-only by contract
		ch <- held
	}
}

func send(ch chan transport.Message, m transport.Message) { ch <- m }

func use(transport.Message) {}
