// Package transport is the fixture stand-in for the wire message
// type; CloneBoundary matches transport.Message by package and type
// name.
package transport

// Message mimics the wire message: Vec is the aliasable payload.
type Message struct {
	From string
	Step int
	Vec  []float64
}

// Clone returns a deep copy whose Vec shares nothing with m.
func (m Message) Clone() Message {
	out := m
	out.Vec = append([]float64(nil), m.Vec...)
	return out
}
