// Package metrics is the fixture stand-in for the live counter
// registry; the analyzers match its NodeMetrics type by package and
// type name.
package metrics

// Counter is a minimal atomic-counter stand-in.
type Counter struct{ n uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.n += n }

// NodeMetrics models the per-node live handle.
type NodeMetrics struct {
	DroppedFuture Counter
	Steps         Counter
}
