// Package transport reproduces, in miniature, the three historical
// bug shapes the lint suite was built to catch: the un-cloned send
// (the PR 2/3/7 races), the un-mirrored hardening counter (the PR 8
// scrape gap), and quorum order following Go's randomized map
// iteration (the PR 4 aggregation bug).
package transport

import (
	"sync/atomic"

	"metrics"
)

// Message mimics the wire message; the analyzers match it by package
// and type name.
type Message struct {
	From string
	Step int
	Vec  []float64
}

// Clone returns a deep copy whose Vec shares nothing with m.
func (m Message) Clone() Message {
	out := m
	out.Vec = append([]float64(nil), m.Vec...)
	return out
}

// Collector buffers one step's messages by sender.
type Collector struct {
	byPeer        map[string]Message
	droppedFuture uint64
	sink          *metrics.NodeMetrics
}

// Broadcast fans a buffered message out to every peer without cloning
// — each receiver's Vec aliases the one buffer the collector keeps
// mutating in place.
func (c *Collector) Broadcast(from string, outs []chan Message) {
	held := c.byPeer[from]
	for _, ch := range outs {
		ch <- held // want "sent on a channel without Clone"
	}
}

// RejectFuture counts a dropped future-step frame but forgets the
// live mirror: a mid-run scraper reads zero drops.
func (c *Collector) RejectFuture() {
	atomic.AddUint64(&c.droppedFuture, 1) // want "incremented without mirroring"
}

// Quorum returns the first q buffered messages in map-iteration order
// — the aggregate's input order changes run to run.
func (c *Collector) Quorum(q int) []Message {
	var out []Message
	for _, m := range c.byPeer {
		out = append(out, m) // want "inside a map range"
	}
	if len(out) > q {
		out = out[:q]
	}
	return out
}
