// Package parallel is the fixture stand-in for the repo's worker-pool
// API; NoParallelNest matches its entry points by package name.
package parallel

// For runs body(i) for every i in [0, n).
func For(n int, body func(i int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}

// Do runs every task.
func Do(tasks ...func()) {
	for _, task := range tasks {
		task()
	}
}

// Runner is a reusable region entry point.
type Runner struct{ body func(i int) }

// NewRunner returns a Runner over the given worker body.
func NewRunner(body func(i int)) *Runner { return &Runner{body: body} }

// Run enters the region for n items.
func (r *Runner) Run(n int) {
	for i := 0; i < n; i++ {
		r.body(i)
	}
}
