// Package grid exercises NoParallelNest: region entries lexically
// inside a worker body silently serialise and are rejected.
package grid

import "parallel"

// Nested enters an inner region from inside the outer worker body.
func Nested(rows, cols int, cell func(r, c int)) {
	parallel.For(rows, func(r int) {
		parallel.For(cols, func(c int) { // want "inside a parallel worker body"
			cell(r, c)
		})
	})
}

// Flat collapses both dimensions into one region.
func Flat(rows, cols int, cell func(r, c int)) {
	parallel.For(rows*cols, func(i int) {
		cell(i/cols, i%cols)
	})
}

// NestedDo nests through the task-list entry point.
func NestedDo(tasks []func()) {
	parallel.Do(func() {
		parallel.Do(tasks...) // want "inside a parallel worker body"
	})
}

// RunnerNest nests through a constructed runner's worker body.
func RunnerNest(rows, cols int, cell func(r, c int)) {
	r := parallel.NewRunner(func(i int) {
		parallel.For(cols, func(c int) { // want "inside a parallel worker body"
			cell(i, c)
		})
	})
	r.Run(rows)
}

// Sequential entries are fine, and the escape hatch waives a
// documented graceful degradation.
func Sequential(n int, f, g func(i int)) {
	parallel.For(n, f)
	parallel.For(n, g)
	parallel.For(n, func(i int) {
		//lint:allow-parallelnest fixture: inner entry degrades gracefully by design
		parallel.Do(func() { f(i) })
	})
}
