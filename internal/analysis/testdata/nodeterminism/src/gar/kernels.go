// Package gar exercises NoDeterminism inside a deterministic-scoped
// package: wall-clock reads, unseeded randomness, and map-iteration
// order leaking into ordered aggregates.
package gar

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock from a kernel — nondeterministic.
func Stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock read"
}

// Uptime is genuinely wall-clock and says so.
func Uptime(start time.Time) time.Duration {
	//lint:allow-clock fixture: elapsed wall time is the point
	return time.Since(start)
}

// Pick draws from the shared global source — unseeded.
func Pick(n int) int {
	return rand.Intn(n) // want "unseeded global source"
}

// PickSeeded constructs its generator explicitly.
func PickSeeded(seed int64, n int) int {
	return rand.New(rand.NewSource(seed)).Intn(n)
}

// Keys leaks map order into the returned slice.
func Keys(set map[string]bool) []string {
	var out []string
	for k := range set {
		out = append(out, k) // want "inside a map range"
	}
	return out
}

// KeysSorted launders map order through a sort in the same block.
func KeysSorted(set map[string]bool) []string {
	var out []string
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CloseAll collects in whatever order the map gives — immaterial for
// closing, and annotated as such.
func CloseAll(chans map[string]chan struct{}) {
	var all []chan struct{}
	for _, ch := range chans {
		//lint:allow-maporder fixture: close order is immaterial
		all = append(all, ch)
	}
	for _, ch := range all {
		close(ch)
	}
}
