package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atest"
)

// TestHistoricalBugs runs the full suite over a fixture tree that
// reproduces each historical bug shape in miniature: the un-cloned
// send, the un-mirrored hardening counter, and map-iteration order
// deciding a quorum. Every bug must be flagged by exactly the marker
// on its line, and nothing else in the fixture may be flagged.
func TestHistoricalBugs(t *testing.T) {
	atest.Run(t, fixture("histbugs"), analysis.All()...)
}

// TestHistoricalBugsRequireEachAnalyzer proves each finding is
// attributable: with any one analyzer disabled, exactly that
// analyzer's findings — and no others — disappear from the
// historical-bug fixture.
func TestHistoricalBugsRequireEachAnalyzer(t *testing.T) {
	pkgs, err := analysis.LoadFixture(fixture("histbugs"))
	if err != nil {
		t.Fatal(err)
	}
	full := analysis.RunAnalyzers(pkgs, analysis.All())
	counts := make(map[string]int)
	for _, d := range full {
		counts[d.Analyzer]++
	}
	for _, name := range []string{"cloneboundary", "counterparity", "nodeterminism"} {
		if counts[name] == 0 {
			t.Errorf("full suite found no %s diagnostic in the historical-bug fixture", name)
		}
	}
	for _, disabled := range analysis.All() {
		var kept []*analysis.Analyzer
		for _, a := range analysis.All() {
			if a != disabled {
				kept = append(kept, a)
			}
		}
		got := analysis.RunAnalyzers(pkgs, kept)
		if want := len(full) - counts[disabled.Name]; len(got) != want {
			t.Errorf("with %s disabled: got %d findings, want %d", disabled.Name, len(got), want)
		}
	}
}
