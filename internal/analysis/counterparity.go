package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// CounterParity flags event-counter increments in the transport and
// cluster packages that do not mirror the event into the
// internal/metrics live registry at increment time. Before PR 8 the
// hardening counters were snapshotted into NodeStats only on clean
// return, so a scraper mid-run (or after a cancellation) read zeros —
// this analyzer makes that bug class unrepresentable.
//
// An "event increment" is an increment-by-one of a struct field whose
// name contains dropped/forged/unnegotiated/malformed (or is Steps):
// x.f++, x.f += 1, atomic.AddUint64(&x.f, 1), or x.f.Add(1). Summing
// already-mirrored counters into a result struct (res.X += n) is not
// an event and is not flagged.
//
// The mirror must be lexically present in the innermost block (or
// case body) containing the increment, and must name-match the
// counter: a call to a mirror* helper, an increment of a
// metrics.NodeMetrics counter field, or a NodeMetrics method call
// (StepDone, ...). Escape hatch: //lint:allow-unmirrored.
var CounterParity = &Analyzer{
	Name: "counterparity",
	Doc:  "flag Dropped*/Forged*/Steps increments not mirrored into internal/metrics",
	Run:  runCounterParity,
}

var counterWords = []string{"dropped", "forged", "unnegotiated", "malformed"}

// isCounterName reports whether a field name identifies an event
// counter under this analyzer's contract.
func isCounterName(name string) bool {
	l := strings.ToLower(name)
	for _, w := range counterWords {
		if strings.Contains(l, w) {
			return true
		}
	}
	return l == "steps"
}

// counterMatches reports whether the mirror name plausibly mirrors the
// counter name: after lowercasing and stripping the dropped/mirror
// prefixes and a plural s, one must contain the other.
func counterMatches(counter, mirror string) bool {
	for _, c := range counterStems(counter) {
		for _, m := range counterStems(mirror) {
			if strings.Contains(m, c) || strings.Contains(c, m) {
				return true
			}
		}
	}
	return false
}

func counterStems(name string) []string {
	l := strings.ToLower(name)
	stems := []string{l}
	for _, prefix := range []string{"dropped", "mirror", "courier"} {
		if s := strings.TrimPrefix(l, prefix); s != l && s != "" {
			stems = append(stems, s)
		}
	}
	if s := strings.TrimSuffix(l, "s"); s != l && s != "" {
		stems = append(stems, s)
	}
	return stems
}

func runCounterParity(p *Pass) {
	if name := p.Pkg.Name(); name != "transport" && name != "cluster" {
		return
	}
	for _, f := range p.Files {
		// blocks tracks the innermost statement list enclosing the walk.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			field, pos, ok := p.counterIncrement(n)
			if !ok {
				return true
			}
			if p.Allowed("unmirrored", pos) {
				return true
			}
			if block := innermostStmtList(stack); block != nil && p.blockMirrors(block, field) {
				return true
			}
			p.Reportf(pos,
				"counter %s incremented without mirroring into its internal/metrics handle in the same block", field)
			return true
		})
	}
}

// counterIncrement recognises the event-increment statement shapes and
// returns the incremented field's name.
func (p *Pass) counterIncrement(n ast.Node) (field string, pos token.Pos, ok bool) {
	switch n := n.(type) {
	case *ast.IncDecStmt:
		if n.Tok != token.INC {
			return "", 0, false
		}
		if name, ok := p.counterField(n.X); ok {
			return name, n.Pos(), true
		}
	case *ast.AssignStmt:
		if n.Tok != token.ADD_ASSIGN || len(n.Lhs) != 1 || !isIntLit(p, n.Rhs[0], 1) {
			return "", 0, false
		}
		if name, ok := p.counterField(n.Lhs[0]); ok {
			return name, n.Pos(), true
		}
	case *ast.CallExpr:
		// atomic.AddUint64(&x.f, 1) / atomic.AddUint32(&x.f, 1)
		if isPkgFunc(p.Info, n, "atomic", "AddUint64", "AddUint32", "AddInt64", "AddInt32") && len(n.Args) == 2 {
			if u, isAddr := ast.Unparen(n.Args[0]).(*ast.UnaryExpr); isAddr && u.Op == token.AND && isIntLit(p, n.Args[1], 1) {
				if name, ok := p.counterField(u.X); ok {
					return name, n.Pos(), true
				}
			}
		}
		// x.f.Add(1) where f is an atomic counter field of a non-metrics
		// struct (NodeMetrics fields ARE the mirror side).
		if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Add" &&
			len(n.Args) == 1 && isIntLit(p, n.Args[0], 1) {
			if name, ok := p.counterField(sel.X); ok && !p.onNodeMetrics(sel.X) {
				return name, n.Pos(), true
			}
		}
	}
	return "", 0, false
}

// counterField returns the selected field name when e selects a struct
// field whose name marks an event counter.
func (p *Pass) counterField(e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	if !isCounterName(sel.Sel.Name) {
		return "", false
	}
	return sel.Sel.Name, true
}

// onNodeMetrics reports whether the selection's base is (a field chain
// rooted in) a metrics.NodeMetrics value.
func (p *Pass) onNodeMetrics(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if t := p.Info.Types[sel.X].Type; t != nil && namedFromPkg(t, "metrics", "NodeMetrics") {
		return true
	}
	return false
}

func isIntLit(p *Pass, e ast.Expr, want int64) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return exact && v == want
}

// innermostStmtList walks the node stack from the inside out and
// returns the nearest enclosing statement list (block, case body or
// comm body).
func innermostStmtList(stack []ast.Node) []ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.BlockStmt:
			return n.List
		case *ast.CaseClause:
			return n.Body
		case *ast.CommClause:
			return n.Body
		}
	}
	return nil
}

// blockMirrors reports whether any statement in the block subtree
// mirrors the named counter into metrics.
func (p *Pass) blockMirrors(block []ast.Stmt, counter string) bool {
	found := false
	for _, stmt := range block {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			// mirror* helper whose name matches the counter.
			if strings.HasPrefix(strings.ToLower(name), "mirror") && counterMatches(counter, name) {
				found = true
				return false
			}
			// NodeMetrics counter field increment: x.DroppedFoo.Add(n).
			if name == "Add" && p.onNodeMetrics(sel.X) {
				if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && counterMatches(counter, inner.Sel.Name) {
					found = true
					return false
				}
			}
			// NodeMetrics method call (StepDone, ObservePeak, ...).
			if t := p.Info.Types[sel.X].Type; t != nil && namedFromPkg(t, "metrics", "NodeMetrics") &&
				counterMatches(counter, name) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
