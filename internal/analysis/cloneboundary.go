package analysis

import (
	"go/ast"
	"go/types"
)

// CloneBoundary flags transport.Message values that cross a send
// boundary without a Clone: the sender keeps mutating its parameter
// vector in place, so a Message whose Vec aliases the sender's buffer
// races the moment another goroutine can read it. This is the exact
// shape of the races fixed in PRs 2, 3 and 7.
//
// Checked boundaries:
//
//   - channel sends of a Message (or *Message) value;
//   - `go` statements: Message-typed call arguments and Message-typed
//     free variables captured by a launched function literal;
//   - time.AfterFunc callbacks: Message-typed free variables captured
//     by the function literal.
//
// A Message is considered owned (no finding) when it is the result of
// a call (x.Clone(), box.Recv(), ...), a fresh composite literal, or a
// parameter of the enclosing function — parameters shift the clone
// obligation to the caller, which is the ownership convention
// transport.ChanNetwork.deliver documents. The analyzer is lexical: it
// does not track a message through reassignments or across function
// calls (the race detector and the transport tests cover that
// remainder). Escape hatch: //lint:allow-share.
var CloneBoundary = &Analyzer{
	Name: "cloneboundary",
	Doc:  "flag transport.Message values crossing a send boundary without Clone()",
	Run:  runCloneBoundary,
}

func runCloneBoundary(p *Pass) {
	for _, f := range p.Files {
		var enclosing []*ast.FuncType // innermost last: funcs the walk is inside
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				enclosing = append(enclosing, n.Type)
				ast.Inspect(n.Body, walk)
				enclosing = enclosing[:len(enclosing)-1]
				return false
			case *ast.FuncLit:
				enclosing = append(enclosing, n.Type)
				ast.Inspect(n.Body, walk)
				enclosing = enclosing[:len(enclosing)-1]
				return false
			case *ast.SendStmt:
				if isMessageType(p.Info.Types[n.Value].Type) && !p.ownedExpr(n.Value, enclosing) &&
					!p.Allowed("share", n.Arrow) {
					p.Reportf(n.Arrow,
						"transport.Message sent on a channel without Clone(): the payload aliases the sender's buffer")
				}
			case *ast.GoStmt:
				p.checkLaunch(n.Call, enclosing)
			case *ast.CallExpr:
				if isPkgFunc(p.Info, n, "time", "AfterFunc") && len(n.Args) == 2 {
					if lit, ok := ast.Unparen(n.Args[1]).(*ast.FuncLit); ok {
						p.checkCaptures(lit, enclosing, "time.AfterFunc callback")
					}
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
}

// checkLaunch examines one `go` call: its Message-typed arguments and,
// for a directly launched literal, its Message-typed captures.
func (p *Pass) checkLaunch(call *ast.CallExpr, enclosing []*ast.FuncType) {
	for _, arg := range call.Args {
		if isMessageType(p.Info.Types[arg].Type) && !p.ownedExpr(arg, enclosing) &&
			!p.Allowed("share", arg.Pos()) {
			p.Reportf(arg.Pos(),
				"transport.Message handed to a goroutine without Clone(): the payload aliases the sender's buffer")
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		p.checkCaptures(lit, enclosing, "goroutine")
	}
}

// checkCaptures flags Message-typed free variables of lit that are not
// owned at their declaration.
func (p *Pass) checkCaptures(lit *ast.FuncLit, enclosing []*ast.FuncType, what string) {
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || reported[obj] || !isMessageType(obj.Type()) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the literal, not a capture
		}
		if obj.IsField() || p.ownedObj(obj, enclosing) || p.Allowed("share", id.Pos()) {
			return true
		}
		reported[obj] = true
		p.Reportf(id.Pos(),
			"transport.Message %q captured by a %s without Clone(): the payload aliases the sender's buffer", obj.Name(), what)
		return true
	})
}

// ownedExpr reports whether e evaluates to an owned Message: a call
// result (Clone, Recv, constructors), a fresh composite literal, or a
// variable that is owned per ownedObj.
func (p *Pass) ownedExpr(e ast.Expr, enclosing []*ast.FuncType) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return true
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr: // &Message{...}
		return p.ownedExpr(e.X, enclosing)
	case *ast.Ident:
		if obj, ok := p.Info.Uses[e].(*types.Var); ok {
			return p.ownedObj(obj, enclosing)
		}
	}
	return false
}

// ownedObj reports whether the variable is owned where it was born: a
// parameter of one of the enclosing functions (the caller already owed
// us a clone) or a local whose defining expression was itself owned
// (m := x.Clone(); m, ok := box.Recv(...)).
func (p *Pass) ownedObj(obj *types.Var, enclosing []*ast.FuncType) bool {
	for _, ft := range enclosing {
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if p.Info.Defs[name] == obj {
					return true
				}
			}
		}
	}
	return p.definedByCall(obj)
}

// definedByCall reports whether obj's defining statement assigns it
// from a call or composite literal.
func (p *Pass) definedByCall(obj *types.Var) bool {
	for _, f := range p.Files {
		if f.Pos() > obj.Pos() || obj.Pos() > f.End() {
			continue
		}
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || p.Info.Defs[id] != obj {
						continue
					}
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					switch ast.Unparen(rhs).(type) {
					case *ast.CallExpr, *ast.CompositeLit, *ast.TypeAssertExpr:
						found = true
					}
					return false
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if p.Info.Defs[name] != obj || i >= len(n.Values) {
						continue
					}
					switch ast.Unparen(n.Values[i]).(type) {
					case *ast.CallExpr, *ast.CompositeLit:
						found = true
					}
					return false
				}
			}
			return true
		})
		return found
	}
	return false
}
