package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a type-checked
// package through its Pass and reports diagnostics; it must not retain
// the Pass past the call.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description (first line = summary).
	Doc string
	// Run performs the check over one package.
	Run func(*Pass)
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message states the violated invariant at this site.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one package's syntax and types through an analyzer run.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed non-test Go files.
	Files []*ast.File
	// Pkg is the source-checked package.
	Pkg *types.Package
	// Info holds the type-checker's facts for Files.
	Info *types.Info

	allow map[string]map[int]bool // filename → line → has some allow; key includes directive
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether the given position is covered by a
// `//lint:allow-<key>` directive: a directive suppresses findings on
// its own source line and on the line directly below it (so it can
// trail the statement or sit on its own line above).
func (p *Pass) Allowed(key string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	lines := p.allow[directiveKey(position.Filename, key)]
	return lines[position.Line] || lines[position.Line-1]
}

func directiveKey(filename, key string) string { return filename + "\x00" + key }

// scanDirectives indexes every `//lint:allow-<key> <justification>`
// comment in the pass's files.
func (p *Pass) scanDirectives() {
	p.allow = make(map[string]map[int]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow-")
				if !ok {
					continue
				}
				key, _, _ := strings.Cut(text, " ")
				key = strings.TrimSpace(key)
				if key == "" {
					continue
				}
				position := p.Fset.Position(c.Pos())
				k := directiveKey(position.Filename, key)
				if p.allow[k] == nil {
					p.allow[k] = make(map[int]bool)
				}
				p.allow[k][position.Line] = true
			}
		}
	}
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			pass.scanDirectives()
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		CloneBoundary,
		CounterParity,
		NoDeterminism,
		BoundedAlloc,
		NoParallelNest,
	}
}

// --- shared type helpers -------------------------------------------------

// namedFromPkg reports whether t (after stripping one pointer) is a
// named type with the given name whose defining package is named
// pkgName. Matching by package NAME rather than full import path keeps
// the analyzers applicable to both the real tree (repro/internal/...)
// and self-contained test fixtures that model the same packages.
func namedFromPkg(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// isMessageType reports whether t is transport.Message (by value or
// pointer).
func isMessageType(t types.Type) bool {
	return t != nil && namedFromPkg(t, "transport", "Message")
}

// calleeObj resolves the called function/method object of a call, or
// nil for calls through non-identifier expressions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether the call invokes the named package-level
// function of a package with the given name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgName string, fnNames ...string) bool {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != pkgName {
		return false
	}
	if fn, ok := obj.(*types.Func); !ok || fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range fnNames {
		if obj.Name() == n {
			return true
		}
	}
	return false
}
