package attack

import (
	"math"
	"testing"

	"repro/internal/gar"
	"repro/internal/tensor"
)

// honestCloud builds a deterministic honest vector set clustered around a
// common mean — the shape omniscient attacks exploit.
func honestCloud(n, d int, seed uint64) []tensor.Vector {
	rng := tensor.NewRNG(seed)
	base := rng.NormVec(make([]float64, d), 1, 0.5)
	out := make([]tensor.Vector, n)
	for i := range out {
		v := tensor.Clone(base)
		noise := rng.NormVec(make([]float64, d), 0, 0.1)
		tensor.AddInPlace(v, noise)
		out[i] = v
	}
	return out
}

func TestALIECraftsMeanMinusZSigma(t *testing.T) {
	honest := honestCloud(10, 6, 3)
	a := &ALIE{Z: 1.5}
	a.Observe(NewStepView(4, honest, 3, 3))
	got := a.Corrupt(honest[0], 4, "ps0")
	mean, std := coordMeanStd(honest)
	for i := range got {
		want := mean[i] - 1.5*std[i]
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("coordinate %d: got %v want %v", i, got[i], want)
		}
	}
	// Same step, different receiver: the colluders' lie is one vector.
	again := a.Corrupt(honest[1], 4, "ps1")
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("ALIE must send the same crafted vector to every receiver in a step")
		}
	}
}

func TestALIEAutoZIsPositive(t *testing.T) {
	if z := alieZMax(18, 5); z <= 0 || math.IsNaN(z) {
		t.Fatalf("auto z for (18,5) = %v, want positive", z)
	}
	// Degenerate populations fall back to a sane constant instead of NaN.
	if z := alieZMax(2, 5); z != 1 {
		t.Fatalf("degenerate auto z = %v, want 1", z)
	}
}

func TestALIEFallsBackWithoutView(t *testing.T) {
	a := &ALIE{Z: 1}
	honest := tensor.Vector{1, 2, 3}
	got := a.Corrupt(honest, 0, "ps0")
	for i := range honest {
		if got[i] != honest[i] {
			t.Fatal("without a view ALIE should pass the honest vector through")
		}
	}
}

func TestInnerProductNegatesHonestMean(t *testing.T) {
	honest := honestCloud(8, 5, 7)
	a := &InnerProduct{Eps: 2}
	a.Observe(NewStepView(1, honest, 2, 2))
	got := a.Corrupt(honest[0], 1, "ps0")
	mean := tensor.Mean(honest)
	if dot := tensor.Dot(got, mean); dot >= 0 {
		t.Fatalf("crafted vector should oppose the honest mean, dot=%v", dot)
	}
	for i := range got {
		if math.Abs(got[i]+2*mean[i]) > 1e-12 {
			t.Fatalf("coordinate %d: got %v want %v", i, got[i], -2*mean[i])
		}
	}
	// Fallback without a view: negate the local honest vector.
	b := &InnerProduct{Eps: 2}
	local := tensor.Vector{1, -1}
	if got := b.Corrupt(local, 0, "x"); got[0] != -2 || got[1] != 2 {
		t.Fatalf("fallback = %v, want [-2 2]", got)
	}
}

func TestMimicReplaysAnHonestVector(t *testing.T) {
	honest := honestCloud(6, 4, 9)
	a := &Mimic{Victim: 2}
	a.Observe(NewStepView(0, honest, 1, 1))
	got := a.Corrupt(honest[0], 0, "ps0")
	for i := range got {
		if got[i] != honest[2][i] {
			t.Fatalf("mimic should replay honest[2], got %v", got)
		}
	}
}

func TestAntiKrumCraftIsSelectedByKrum(t *testing.T) {
	honest := honestCloud(13, 8, 13)
	const colluders, f = 5, 5
	a := &AntiKrum{}
	a.Observe(NewStepView(2, honest, f, colluders))
	crafted := a.Corrupt(honest[0], 2, "ps0")

	// Re-run the server's own defence: the crafted vector, submitted by
	// all colluders, must win the Krum selection.
	pool := make([]tensor.Vector, 0, colluders+len(honest))
	for i := 0; i < colluders; i++ {
		pool = append(pool, crafted)
	}
	pool = append(pool, honest...)
	scores, err := gar.KrumScores(pool, f)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i, s := range scores {
		if s < scores[best] {
			best = i
		}
	}
	if best >= colluders {
		t.Fatalf("crafted vector not Krum-selected (best=%d)", best)
	}
	// And it must actually deviate from the honest mean (λ > 0).
	if d := tensor.Distance(crafted, tensor.Mean(honest)); d <= 0 {
		t.Fatalf("crafted vector does not deviate (distance %v)", d)
	}
}

func TestEquivocateLiesDifferentlyPerReceiverDeterministically(t *testing.T) {
	honest := tensor.Vector{1, 2, 3, 4}
	a := Equivocate{Std: 1, Seed: 5}
	v1 := a.Corrupt(honest, 3, "wrk1")
	v2 := a.Corrupt(honest, 3, "wrk2")
	if tensor.Distance(v1, v2) == 0 {
		t.Fatal("equivocate sent the same vector to two receivers")
	}
	v1again := a.Corrupt(honest, 3, "wrk1")
	for i := range v1 {
		if v1[i] != v1again[i] {
			t.Fatal("equivocation must be deterministic per (step, receiver)")
		}
	}
	if tensor.Distance(v1, honest) == 0 {
		t.Fatal("equivocate did not corrupt")
	}
}

func TestStaleReplayServesOldVectors(t *testing.T) {
	a := &StaleReplay{Age: 2}
	vecAt := func(step int) tensor.Vector { return tensor.Vector{float64(step)} }
	// Steps 0 and 1: no history yet → honest behaviour.
	if got := a.Corrupt(vecAt(0), 0, "x"); got[0] != 0 {
		t.Fatalf("step 0: got %v", got)
	}
	if got := a.Corrupt(vecAt(1), 1, "x"); got[0] != 1 {
		t.Fatalf("step 1: got %v", got)
	}
	// From step 2 on: replay step−2.
	for step := 2; step < 6; step++ {
		if got := a.Corrupt(vecAt(step), step, "x"); got[0] != float64(step-2) {
			t.Fatalf("step %d: got %v, want %d", step, got, step-2)
		}
	}
}

func TestSlowDriftGrowsLinearly(t *testing.T) {
	a := &SlowDrift{Delta: 0.1, Seed: 4}
	honest := make(tensor.Vector, 5)
	d10 := tensor.Distance(a.Corrupt(honest, 10, "x"), honest)
	d20 := tensor.Distance(a.Corrupt(honest, 20, "x"), honest)
	if math.Abs(d10-1.0) > 1e-9 || math.Abs(d20-2.0) > 1e-9 {
		t.Fatalf("drift distances %v/%v, want 1.0/2.0 (unit direction × Δ × step)", d10, d20)
	}
}

func TestSharedViewPublishSnapshot(t *testing.T) {
	v := NewSharedView(2, 3)
	if got := v.Snapshot(0); len(got.Honest()) != 0 {
		t.Fatal("fresh view should be empty")
	}
	vec := tensor.Vector{1, 2}
	v.Publish(0, vec)
	vec[0] = 99 // the view must have cloned
	snap := v.Snapshot(0)
	if len(snap.Honest()) != 1 || snap.Honest()[0][0] != 1 {
		t.Fatalf("snapshot = %+v, want the cloned [1 2]", snap.Honest())
	}
	if snap.F() != 2 || snap.Colluders() != 3 {
		t.Fatalf("view metadata lost: f=%d colluders=%d", snap.F(), snap.Colluders())
	}
}

func TestRegistrySpecs(t *testing.T) {
	for _, name := range Names() {
		mk, err := FromSpec(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a := mk(0); a == nil {
			t.Fatalf("%s: nil attack", name)
		}
	}
	mk, err := FromSpec("alie:z=1.25", 1)
	if err != nil {
		t.Fatal(err)
	}
	if a := mk(0).(*ALIE); a.Z != 1.25 {
		t.Fatalf("alie z = %v, want 1.25", a.Z)
	}
	mk, err = FromSpec("stale:age=9", 1)
	if err != nil {
		t.Fatal(err)
	}
	if a := mk(0).(*StaleReplay); a.Age != 9 {
		t.Fatalf("stale age = %v, want 9", a.Age)
	}
	for _, bad := range []string{"", "nosuch", "alie:zz=1", "alie:z", "alie:z=x", "alie:z=1,z=2"} {
		if _, err := FromSpec(bad, 1); err == nil {
			t.Fatalf("spec %q should be rejected", bad)
		}
	}
}

func TestInvNormCDFKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.8413447460685429, 1}, {0.15865525393145707, -1},
	}
	for _, c := range cases {
		if got := invNormCDF(c.p); math.Abs(got-c.want) > 1e-6 {
			t.Fatalf("Φ⁻¹(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}
