package attack

import (
	"sync"

	"repro/internal/tensor"
)

// This file implements the Byzantine *parameter-server* behaviours of the
// threat model: a corrupt server does not fabricate gradients, it abuses
// its broadcast position — telling different workers different things
// (equivocation), serving models from the past (stale replay), or nudging
// the model off-course so slowly that no single message is an outlier
// (slow drift). All three also type-check as worker behaviours; they are
// catalogued here because their leverage comes from the server role.

// Equivocate sends a *different* corruption to every receiver: the honest
// vector plus Gaussian noise drawn from a generator keyed on (step,
// receiver). Unlike TwoFaced — which partitions receivers into two fixed
// camps — no two receivers ever see the same vector, the strongest form of
// the paper's "different (bad) models to different workers" behaviour. The
// keying makes the attack deterministic: the same (step, receiver) pair
// always produces the same lie, in any runtime at any parallelism.
type Equivocate struct {
	// Std is the per-coordinate noise magnitude (default 1 when 0).
	Std float64
	// Seed isolates this node's lies from other equivocators'.
	Seed uint64
}

var _ Attack = Equivocate{}

// Name implements Attack.
func (Equivocate) Name() string { return "equivocate" }

// Corrupt implements Attack.
func (a Equivocate) Corrupt(honest tensor.Vector, step int, receiver string) tensor.Vector {
	std := a.Std
	if std == 0 {
		std = 1
	}
	rng := tensor.NewRNG(mix(a.Seed, uint64(step)+1, hashString(receiver)))
	out := tensor.Clone(honest)
	noise := rng.NormVec(make([]float64, len(out)), 0, std)
	tensor.AddInPlace(out, noise)
	return out
}

// StaleReplay records the honest vector of every step and replays the one
// from Age steps ago — a server that is not lying about values, only about
// *time*. Against plain averaging this drags the cluster toward stale
// models; quorum-based runtimes should absorb it like any slow node.
// Until enough history exists the node behaves honestly.
type StaleReplay struct {
	// Age is how many steps old the replayed vector is (default 5 when 0).
	Age int

	mu   sync.Mutex
	hist map[int]tensor.Vector
}

var _ Attack = (*StaleReplay)(nil)

// Name implements Attack.
func (*StaleReplay) Name() string { return "stale-replay" }

// Corrupt implements Attack.
func (a *StaleReplay) Corrupt(honest tensor.Vector, step int, _ string) tensor.Vector {
	age := a.Age
	if age <= 0 {
		age = 5
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.hist == nil {
		a.hist = make(map[int]tensor.Vector)
	}
	if _, ok := a.hist[step]; !ok {
		a.hist[step] = tensor.Clone(honest)
		for old := range a.hist {
			if old < step-age-sharedViewWindow {
				delete(a.hist, old)
			}
		}
	}
	if stale, ok := a.hist[step-age]; ok {
		return tensor.Clone(stale)
	}
	return tensor.Clone(honest)
}

// SlowDrift sends the honest vector plus a bias that grows linearly with
// the step count, always along one fixed random direction. Each individual
// message deviates too little for outlier filters to flag, but the bias
// compounds — the stealth profile of a long-game model-poisoning server.
type SlowDrift struct {
	// Delta is the per-step drift magnitude (default 0.01 when 0).
	Delta float64
	// Seed picks the drift direction.
	Seed uint64

	mu  sync.Mutex
	dir tensor.Vector
}

var _ Attack = (*SlowDrift)(nil)

// Name implements Attack.
func (*SlowDrift) Name() string { return "slow-drift" }

// Corrupt implements Attack.
func (a *SlowDrift) Corrupt(honest tensor.Vector, step int, _ string) tensor.Vector {
	delta := a.Delta
	if delta == 0 {
		delta = 0.01
	}
	a.mu.Lock()
	if len(a.dir) != len(honest) {
		rng := tensor.NewRNG(mix(a.Seed, 0x5d1f7, 0))
		a.dir = rng.NormVec(make([]float64, len(honest)), 0, 1)
		if n := tensor.Norm2(a.dir); n > 0 {
			tensor.ScaleInPlace(a.dir, 1/n)
		}
	}
	dir := a.dir
	a.mu.Unlock()
	out := tensor.Clone(honest)
	tensor.AXPY(out, delta*float64(step), dir)
	return out
}

// mix folds three words into one 64-bit seed (splitmix64 finalisers).
func mix(a, b, c uint64) uint64 {
	x := a ^ (b * 0x9e3779b97f4a7c15) ^ (c * 0xbf58476d1ce4e5b9)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
