package attack

import (
	"math"
	"sync"

	"repro/internal/tensor"
)

// Attack transforms the message a Byzantine node sends. Implementations are
// safe for concurrent use (a node broadcasts to many receivers).
type Attack interface {
	// Name identifies the attack in logs and experiment tables.
	Name() string
	// Corrupt returns the vector actually sent to receiver at the given
	// step, given the vector an honest node would have sent. Returning nil
	// means "send nothing to this receiver".
	Corrupt(honest tensor.Vector, step int, receiver string) tensor.Vector
}

// RandomGaussian replaces the honest vector with i.i.d. Gaussian noise of
// the given standard deviation — the paper's "totally corrupted data
// compared to the correct one" behaviour.
type RandomGaussian struct {
	mu  sync.Mutex
	std float64
	rng *tensor.RNG
}

var _ Attack = (*RandomGaussian)(nil)

// NewRandomGaussian builds the attack with its own seeded generator.
func NewRandomGaussian(std float64, seed uint64) *RandomGaussian {
	return &RandomGaussian{std: std, rng: tensor.NewRNG(seed)}
}

// Name implements Attack.
func (*RandomGaussian) Name() string { return "random-gaussian" }

// Corrupt implements Attack.
func (a *RandomGaussian) Corrupt(honest tensor.Vector, _ int, _ string) tensor.Vector {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rng.NormVec(make(tensor.Vector, len(honest)), 0, a.std)
}

// SignFlip sends −Scale times the honest vector: a gradient-ascent attack
// that actively pushes the model away from convergence.
type SignFlip struct {
	// Scale multiplies the negated vector (≥ 1 amplifies the push).
	Scale float64
}

var _ Attack = SignFlip{}

// Name implements Attack.
func (SignFlip) Name() string { return "sign-flip" }

// Corrupt implements Attack.
func (a SignFlip) Corrupt(honest tensor.Vector, _ int, _ string) tensor.Vector {
	return tensor.Scale(honest, -a.Scale)
}

// ScaledNorm blows the honest vector up by a large factor, attempting to
// dominate any averaging-style aggregation.
type ScaledNorm struct {
	// Factor is the amplification applied to the honest vector.
	Factor float64
}

var _ Attack = ScaledNorm{}

// Name implements Attack.
func (ScaledNorm) Name() string { return "scaled-norm" }

// Corrupt implements Attack.
func (a ScaledNorm) Corrupt(honest tensor.Vector, _ int, _ string) tensor.Vector {
	return tensor.Scale(honest, a.Factor)
}

// Zero sends the all-zero vector: a stealthy attack that slows learning by
// diluting the aggregate rather than poisoning it outright.
type Zero struct{}

var _ Attack = Zero{}

// Name implements Attack.
func (Zero) Name() string { return "zero" }

// Corrupt implements Attack.
func (Zero) Corrupt(honest tensor.Vector, _ int, _ string) tensor.Vector {
	return make(tensor.Vector, len(honest))
}

// NaNInjection sends vectors containing NaNs, probing whether honest nodes
// sanitise network input before feeding it into arithmetic.
type NaNInjection struct{}

var _ Attack = NaNInjection{}

// Name implements Attack.
func (NaNInjection) Name() string { return "nan-injection" }

// Corrupt implements Attack.
func (NaNInjection) Corrupt(honest tensor.Vector, _ int, _ string) tensor.Vector {
	out := make(tensor.Vector, len(honest))
	for i := range out {
		out[i] = math.NaN()
	}
	return out
}

// TwoFaced equivocates: it sends the honest vector to half the receivers
// (by receiver-name hash) and an inner attack's corruption to the rest —
// the paper's "sends different (bad) models to different workers in the
// same iteration" server behaviour.
type TwoFaced struct {
	// Inner generates the corrupted face. Must be non-nil.
	Inner Attack
}

var _ Attack = TwoFaced{}

// Name implements Attack.
func (a TwoFaced) Name() string { return "two-faced(" + a.Inner.Name() + ")" }

// Corrupt implements Attack.
func (a TwoFaced) Corrupt(honest tensor.Vector, step int, receiver string) tensor.Vector {
	if hashString(receiver)%2 == 0 {
		return tensor.Clone(honest)
	}
	return a.Inner.Corrupt(honest, step, receiver)
}

// Silent never responds. The paper notes this is the weakest behaviour —
// asynchrony already forces the protocol to tolerate missing replies — but
// it exercises the quorum/liveness path, so it is kept for failure
// injection.
type Silent struct{}

var _ Attack = Silent{}

// Name implements Attack.
func (Silent) Name() string { return "silent" }

// Corrupt implements Attack. It returns nil, meaning "send nothing".
func (Silent) Corrupt(tensor.Vector, int, string) tensor.Vector { return nil }

// Delayed forwards the honest vector but only every Period steps, starving
// receivers of timely input without being fully silent.
type Delayed struct {
	// Period is the step interval at which the node actually responds.
	Period int
}

var _ Attack = Delayed{}

// Name implements Attack.
func (Delayed) Name() string { return "delayed" }

// Corrupt implements Attack.
func (a Delayed) Corrupt(honest tensor.Vector, step int, _ string) tensor.Vector {
	if a.Period <= 1 || step%a.Period == 0 {
		return tensor.Clone(honest)
	}
	return nil
}

// hashString is FNV-1a, inlined to avoid importing hash/fnv for two lines.
func hashString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
