package attack

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The registry maps stable behaviour names to factories so command-line
// flags, configs and the scenario-matrix experiment arm deployments by
// string. A spec is a name with optional parameters:
//
//	signflip              — defaults
//	alie:z=1.2            — one override
//	stale:age=10          — integer-valued parameters parse from floats
//
// Factories take the Byzantine node's index so stateful attacks never
// share generators or history across nodes.

// spec describes one registered behaviour family.
type spec struct {
	// defaults lists the accepted parameter keys with their default
	// values; parsing rejects unknown keys.
	defaults map[string]float64
	// build constructs the attack for node index i from the merged
	// parameters.
	build func(p map[string]float64, seed uint64, i int) Attack
}

var registry = map[string]spec{
	"random": {
		defaults: map[string]float64{"std": 100},
		build: func(p map[string]float64, seed uint64, i int) Attack {
			return NewRandomGaussian(p["std"], seed+uint64(i))
		},
	},
	"signflip": {
		defaults: map[string]float64{"scale": 2},
		build: func(p map[string]float64, _ uint64, _ int) Attack {
			return SignFlip{Scale: p["scale"]}
		},
	},
	"scaled": {
		defaults: map[string]float64{"factor": 1e6},
		build: func(p map[string]float64, _ uint64, _ int) Attack {
			return ScaledNorm{Factor: p["factor"]}
		},
	},
	"zero": {
		build: func(map[string]float64, uint64, int) Attack { return Zero{} },
	},
	"nan": {
		build: func(map[string]float64, uint64, int) Attack { return NaNInjection{} },
	},
	"silent": {
		build: func(map[string]float64, uint64, int) Attack { return Silent{} },
	},
	"delayed": {
		defaults: map[string]float64{"period": 3},
		build: func(p map[string]float64, _ uint64, _ int) Attack {
			return Delayed{Period: int(p["period"])}
		},
	},
	"twofaced": {
		defaults: map[string]float64{"std": 100},
		build: func(p map[string]float64, seed uint64, i int) Attack {
			return TwoFaced{Inner: NewRandomGaussian(p["std"], seed+uint64(i))}
		},
	},
	"alie": {
		defaults: map[string]float64{"z": 0},
		build: func(p map[string]float64, _ uint64, _ int) Attack {
			return &ALIE{Z: p["z"]}
		},
	},
	"ipm": {
		defaults: map[string]float64{"eps": 0.5},
		build: func(p map[string]float64, _ uint64, _ int) Attack {
			return &InnerProduct{Eps: p["eps"]}
		},
	},
	"mimic": {
		defaults: map[string]float64{"victim": 0},
		build: func(p map[string]float64, _ uint64, _ int) Attack {
			return &Mimic{Victim: int(p["victim"])}
		},
	},
	"antikrum": {
		defaults: map[string]float64{"colluders": 0},
		build: func(p map[string]float64, _ uint64, _ int) Attack {
			return &AntiKrum{Colluders: int(p["colluders"])}
		},
	},
	"equivocate": {
		defaults: map[string]float64{"std": 1},
		build: func(p map[string]float64, seed uint64, i int) Attack {
			return Equivocate{Std: p["std"], Seed: seed + uint64(i)}
		},
	},
	"stale": {
		defaults: map[string]float64{"age": 5},
		build: func(p map[string]float64, _ uint64, _ int) Attack {
			return &StaleReplay{Age: int(p["age"])}
		},
	},
	"drift": {
		defaults: map[string]float64{"delta": 0.01},
		build: func(p map[string]float64, seed uint64, i int) Attack {
			return &SlowDrift{Delta: p["delta"], Seed: seed + uint64(i)}
		},
	},
}

// Names lists every registered behaviour name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FromSpec resolves a behaviour spec ("name" or "name:k=v,k=v") into a
// per-node factory. The factory takes the node index, ensuring stateful
// attacks do not share generators or history.
func FromSpec(specStr string, seed uint64) (func(i int) Attack, error) {
	name, params, err := ParseSpec(specStr)
	if err != nil {
		return nil, err
	}
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("attack: unknown attack %q (known: %v)", name, Names())
	}
	merged := make(map[string]float64, len(s.defaults))
	for k, v := range s.defaults {
		merged[k] = v
	}
	for k, v := range params {
		if _, ok := s.defaults[k]; !ok {
			keys := make([]string, 0, len(s.defaults))
			for dk := range s.defaults {
				keys = append(keys, dk)
			}
			sort.Strings(keys)
			return nil, fmt.Errorf("attack: %s: unknown parameter %q (accepted: %v)", name, k, keys)
		}
		merged[k] = v
	}
	return func(i int) Attack { return s.build(merged, seed, i) }, nil
}

// ParseSpec splits "name:k=v,k=v" into the behaviour name and its
// parameter overrides. The same syntax drives fault-profile specs (see
// transport.FaultFromSpec), so deployment flags stay uniform.
func ParseSpec(specStr string) (name string, params map[string]float64, err error) {
	name, rest, hasParams := strings.Cut(strings.TrimSpace(specStr), ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil, fmt.Errorf("attack: empty spec")
	}
	params = make(map[string]float64)
	if !hasParams {
		return name, params, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return "", nil, fmt.Errorf("attack: bad parameter %q in spec %q (want key=value)", kv, specStr)
		}
		x, perr := strconv.ParseFloat(v, 64)
		if perr != nil {
			return "", nil, fmt.Errorf("attack: parameter %s in spec %q: %v", k, specStr, perr)
		}
		if _, dup := params[k]; dup {
			return "", nil, fmt.Errorf("attack: duplicate parameter %q in spec %q", k, specStr)
		}
		params[k] = x
	}
	return name, params, nil
}
