package attack

import (
	"math"
	"sync"

	"repro/internal/gar"
	"repro/internal/tensor"
)

// This file implements the state-of-the-art *omniscient* attacks from the
// post-Krum literature: behaviours that observe the honest vectors of the
// whole cluster (via ClusterView) before choosing their corruption, rather
// than perturbing blindly. They are the adversaries the paper's threat
// model actually admits — arbitrarily fast, fully informed, colluding —
// and they are what separates robust aggregation rules that merely filter
// outliers from rules that survive adaptive collusion.

// omniBase carries the shared Observe/state machinery of the omniscient
// attacks: the latest view, and a per-step cache of the crafted vector so
// Corrupt (called once per receiver) computes it only once per step.
type omniBase struct {
	mu       sync.Mutex
	view     ClusterView
	cacheKey int
	cached   tensor.Vector
}

// Observe implements Omniscient. Accepting a view invalidates the crafted
// cache, so a refresh within a step (the runtimes re-feed server attacks
// before the phase-3 contraction round with the updated honest thetas) is
// actually acted on by the next Corrupt.
func (b *omniBase) Observe(v ClusterView) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.view == nil || v.Step() > b.view.Step() ||
		(v.Step() == b.view.Step() && len(v.Honest()) >= len(b.view.Honest())) {
		b.view = v
		b.cached = nil
	}
}

// craft returns the attack vector for step, computing it with mk at most
// once per step from the current view's honest set. When no honest vectors
// are visible (no view yet, or a live snapshot that raced ahead of every
// honest sender), it falls back to fallback(honest).
func (b *omniBase) craft(honest tensor.Vector, step int,
	mk func(view ClusterView) tensor.Vector,
	fallback func(honest tensor.Vector) tensor.Vector) tensor.Vector {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cached != nil && b.cacheKey == step {
		return b.cached
	}
	if b.view == nil || len(b.view.Honest()) == 0 {
		// Degraded view: do not cache, a later Observe may complete it.
		return fallback(honest)
	}
	b.cacheKey = step
	b.cached = mk(b.view)
	return b.cached
}

// ALIE is "A Little Is Enough" (Baruch, Baruch, Goldberg — NeurIPS 2019):
// the colluders agree on a vector that deviates from the honest coordinate
// mean by only z standard deviations per coordinate. The deviation is small
// enough to sit inside the honest point cloud — defeating distance-based
// filters like Krum — yet, applied by every colluder in the same direction,
// biases the aggregate persistently.
type ALIE struct {
	// Z is the per-coordinate deviation in honest standard deviations.
	// 0 selects the paper's z_max from the population sizes in the view.
	Z float64

	omniBase
}

var _ Omniscient = (*ALIE)(nil)

// Name implements Attack.
func (*ALIE) Name() string { return "alie" }

// Corrupt implements Attack.
func (a *ALIE) Corrupt(honest tensor.Vector, step int, _ string) tensor.Vector {
	return a.craft(honest, step, func(view ClusterView) tensor.Vector {
		hv := view.Honest()
		mean, std := coordMeanStd(hv)
		z := a.Z
		if z <= 0 {
			z = alieZMax(len(hv)+view.Colluders(), maxInt(view.F(), view.Colluders()))
		}
		out := make(tensor.Vector, len(mean))
		for i := range out {
			out[i] = mean[i] - z*std[i]
		}
		return out
	}, tensor.Clone)
}

// alieZMax is the z the ALIE paper derives: the largest deviation such that
// the crafted vector still has more supporters (honest vectors within z
// standard deviations) than a majority filter needs.
func alieZMax(n, f int) float64 {
	s := n/2 + 1 - f // supporters required
	if n-f <= 0 || s <= 0 || n-f-s <= 0 {
		return 1
	}
	return invNormCDF(float64(n-f-s) / float64(n-f))
}

// InnerProduct is the inner-product manipulation attack (Xie, Koyejo, Gupta
// — UAI 2020): the colluders send −ε times the honest mean. For small ε the
// vector is well inside the honest cloud (robust rules keep it), but it
// drags the aggregate toward a negative inner product with the true
// gradient, stalling or reversing descent.
type InnerProduct struct {
	// Eps scales the negated honest mean (default 0.5 when 0).
	Eps float64

	omniBase
}

var _ Omniscient = (*InnerProduct)(nil)

// Name implements Attack.
func (*InnerProduct) Name() string { return "inner-product" }

// Corrupt implements Attack.
func (a *InnerProduct) Corrupt(honest tensor.Vector, step int, _ string) tensor.Vector {
	eps := a.Eps
	if eps <= 0 {
		eps = 0.5
	}
	return a.craft(honest, step, func(view ClusterView) tensor.Vector {
		return tensor.Scale(tensor.Mean(view.Honest()), -eps)
	}, func(h tensor.Vector) tensor.Vector { return tensor.Scale(h, -eps) })
}

// Mimic is the mimic attack (Karimireddy, He, Jaggi — ICLR 2022): every
// colluder replays one fixed honest participant's vector. Nothing about the
// copies is an outlier — they are literal honest values — but the victim's
// sampling noise is amplified n-fold in the aggregate, starving the other
// honest contributions. It specifically defeats rules whose guarantee rests
// on outlier filtering.
type Mimic struct {
	// Victim indexes the honest vector to replay (mod the visible set).
	Victim int

	omniBase
}

var _ Omniscient = (*Mimic)(nil)

// Name implements Attack.
func (*Mimic) Name() string { return "mimic" }

// Corrupt implements Attack.
func (a *Mimic) Corrupt(honest tensor.Vector, step int, _ string) tensor.Vector {
	return a.craft(honest, step, func(view ClusterView) tensor.Vector {
		hv := view.Honest()
		v := a.Victim
		if v < 0 {
			v = -v
		}
		return tensor.Clone(hv[v%len(hv)])
	}, tensor.Clone)
}

// AntiKrum is the local-model poisoning attack of Fang et al. (USENIX
// Security 2020), specialised against Krum-family aggregation: the
// colluders push in the direction −sign(mean) by the largest magnitude λ
// such that (simulating the server's own rule) one of their copies is
// still *selected* by Krum. The server's defence is turned into the
// adversary's oracle.
type AntiKrum struct {
	// Colluders overrides the number of coordinated copies assumed in the
	// simulation (0 = the view's count).
	Colluders int

	omniBase
}

var _ Omniscient = (*AntiKrum)(nil)

// Name implements Attack.
func (*AntiKrum) Name() string { return "anti-krum" }

// Corrupt implements Attack.
func (a *AntiKrum) Corrupt(honest tensor.Vector, step int, _ string) tensor.Vector {
	return a.craft(honest, step, func(view ClusterView) tensor.Vector {
		hv := view.Honest()
		c := a.Colluders
		if c <= 0 {
			c = maxInt(view.Colluders(), 1)
		}
		f := maxInt(view.F(), c)
		mean := tensor.Mean(hv)
		dir := make(tensor.Vector, len(mean))
		for i, x := range mean {
			if math.Signbit(x) {
				dir[i] = -1
			} else {
				dir[i] = 1
			}
		}
		lambda := maxKrumLambda(hv, dir, mean, c, f)
		out := tensor.Clone(mean)
		tensor.AXPY(out, -lambda, dir)
		return out
	}, func(h tensor.Vector) tensor.Vector {
		// No view yet: plain gradient ascent at unit scale.
		return tensor.Scale(h, -1)
	})
}

// maxKrumLambda binary-searches the largest λ for which a crafted vector
// mean − λ·dir, submitted by c colluders alongside the honest vectors, is
// still Krum-selected at declared bound f. λ = 0 duplicates the honest mean
// (always in the densest neighbourhood), so the search is anchored at an
// accepted point.
func maxKrumLambda(honest []tensor.Vector, dir, mean tensor.Vector, c, f int) float64 {
	accepted := func(lambda float64) bool {
		v := tensor.Clone(mean)
		tensor.AXPY(v, -lambda, dir)
		pool := make([]tensor.Vector, 0, c+len(honest))
		for i := 0; i < c; i++ {
			pool = append(pool, v)
		}
		pool = append(pool, honest...)
		scores, err := gar.KrumScores(pool, f)
		if err != nil {
			// Too few vectors to simulate the defence; treat any λ as
			// accepted and rely on the upper bound to stay moderate.
			return true
		}
		best := 0
		for i, s := range scores {
			if s < scores[best] {
				best = i
			}
		}
		return best < c // one of the colluders' copies wins
	}

	var scale float64
	for _, x := range mean {
		scale += math.Abs(x)
	}
	hi := 2*scale/float64(len(mean)+1) + 1 // generous upper bound on useful λ
	if accepted(hi) {
		return hi
	}
	lo := 0.0
	for i := 0; i < 24; i++ {
		mid := (lo + hi) / 2
		if accepted(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// coordMeanStd returns the per-coordinate mean and (population) standard
// deviation of the vectors.
func coordMeanStd(vs []tensor.Vector) (mean, std tensor.Vector) {
	mean = tensor.Mean(vs)
	std = make(tensor.Vector, len(mean))
	if len(vs) < 2 {
		return mean, std
	}
	for _, v := range vs {
		for i, x := range v {
			d := x - mean[i]
			std[i] += d * d
		}
	}
	inv := 1 / float64(len(vs))
	for i := range std {
		std[i] = math.Sqrt(std[i] * inv)
	}
	return mean, std
}

// invNormCDF is the Acklam rational approximation of the standard normal
// quantile function Φ⁻¹(p), accurate to ~1e-9 — enough for choosing an
// attack magnitude.
func invNormCDF(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
