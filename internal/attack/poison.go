package attack

import (
	"repro/internal/dataset"
	"repro/internal/tensor"
)

// FlipLabels returns a copy of d in which a fraction frac of the labels have
// been rotated to the next class — classic data poisoning. This models the
// paper's motivating scenario (mislabeled content poisoning a learner)
// upstream of the gradient-level attacks: a Byzantine worker can equivalently
// be an honest worker trained on poisoned data.
func FlipLabels(d *dataset.Dataset, frac float64, seed uint64) *dataset.Dataset {
	rng := tensor.NewRNG(seed)
	out := &dataset.Dataset{
		X:          d.X, // features shared; labels copied
		Labels:     append([]int(nil), d.Labels...),
		NumClasses: d.NumClasses,
		FeatureDim: d.FeatureDim,
	}
	for i := range out.Labels {
		if rng.Float64() < frac {
			out.Labels[i] = (out.Labels[i] + 1) % d.NumClasses
		}
	}
	return out
}
