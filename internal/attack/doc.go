// Package attack implements the Byzantine behaviours evaluated in the paper
// (Section 5.1/5.4) and the stronger adversary engine grown around them:
// corrupted gradients and parameter vectors, different replies to different
// participants (two-faced / equivocation), silence, state-of-the-art
// omniscient attacks (ALIE, inner-product manipulation, mimic, anti-Krum),
// and Byzantine-server behaviours (stale replay, slow drift).
//
// # Adversary model and contract
//
// The adversary in the model is omniscient (it may read every honest value)
// but not omnipotent (it can only speak through the nodes it controls);
// accordingly, every Attack receives the honest vector the node would have
// sent and returns an arbitrary replacement — nil means silence toward that
// receiver. Implementations must be safe for concurrent use: a Byzantine
// node broadcasts to many receivers at once.
//
// Omniscience is mediated by ClusterView/SharedView: honest nodes publish
// their per-step vectors into a shared view, Byzantine nodes snapshot it
// before corrupting. The deterministic simulator feeds complete per-step
// honest sets (the strongest adversary); the live runtimes publish
// concurrently, so snapshots may be partial — omniscient, not clairvoyant.
// Multi-process deployments run without a view (an adversary spanning OS
// processes would need its own covert channel), in which case omniscient
// attacks degrade to their documented local-knowledge fallbacks.
//
// # Registry
//
// Every attack is constructible by name with parameter overrides
// ("alie:z=1.2" — see ParseSpec and FromSpec); the registry backs
// guanyu.AttackByName, the -attack/-byzantine flags on the commands, and
// the scenario-matrix experiment's grid axis. Stateful attacks are built
// once per node so generators are never shared.
package attack
