package attack

import (
	"sync"

	"repro/internal/tensor"
)

// ClusterView is the omniscient adversary's window onto the honest cluster
// at one protocol step. The model grants the adversary full knowledge — it
// may read every honest value — but not omnipotence: it can only speak
// through the nodes it controls. Accordingly a view is read-only: attacks
// must not modify the vectors it exposes.
//
// The runtimes feed views with the honest vectors of the message class the
// Byzantine node is about to corrupt: gradients for a worker, parameter
// vectors for a server. The deterministic simulator supplies the complete
// honest set every step; the live runtimes publish honest vectors as they
// are produced, so a concurrently-running Byzantine node may observe only
// the subset already available — omniscience degraded by real asynchrony.
// Attacks therefore must tolerate an empty Honest() set (falling back to
// the honest basis vector Corrupt receives).
type ClusterView interface {
	// Step is the protocol step the view belongs to.
	Step() int
	// Honest returns the honest vectors visible this step. The slice and
	// its vectors are read-only. May be empty.
	Honest() []tensor.Vector
	// F is the declared Byzantine bound of the sender population the
	// Byzantine node belongs to (f̄ for workers, f for servers).
	F() int
	// Colluders is the number of actually-Byzantine senders coordinating
	// with this node (itself included).
	Colluders() int
}

// Omniscient marks attacks that adapt to the honest cluster state. Runtimes
// call Observe with the current step's view before invoking Corrupt for
// that step. Observe may be called multiple times per step (the live
// runtimes refresh the view as honest vectors arrive); implementations keep
// the latest view and must be safe for concurrent use.
type Omniscient interface {
	Attack
	// Observe hands the attack its view of the honest cluster.
	Observe(v ClusterView)
}

// StepView is the ClusterView of the deterministic runtimes: a complete
// immutable snapshot of the honest vectors of one step.
type StepView struct {
	step      int
	honest    []tensor.Vector
	f         int
	colluders int
}

var _ ClusterView = StepView{}

// NewStepView builds a view over the given honest vectors. The slice is
// retained, not copied: callers guarantee it stays unmodified while any
// attack may read it (the simulator's per-step honest sets satisfy this).
func NewStepView(step int, honest []tensor.Vector, f, colluders int) StepView {
	return StepView{step: step, honest: honest, f: f, colluders: colluders}
}

// Step implements ClusterView.
func (v StepView) Step() int { return v.step }

// Honest implements ClusterView.
func (v StepView) Honest() []tensor.Vector { return v.honest }

// F implements ClusterView.
func (v StepView) F() int { return v.f }

// Colluders implements ClusterView.
func (v StepView) Colluders() int { return v.colluders }

// ObserveAll feeds the view to every Omniscient attack in the map. The
// runtimes call it once per step and message class.
func ObserveAll(attacks map[int]Attack, v ClusterView) {
	for _, a := range attacks {
		if o, ok := a.(Omniscient); ok {
			o.Observe(v)
		}
	}
}

// sharedViewWindow bounds how many steps of history a SharedView retains;
// old steps are garbage-collected as new ones are published.
const sharedViewWindow = 16

// SharedView implements omniscience for the live runtimes: the runtime
// publishes every honest node's outbound vector of a step (once per step,
// cloned at publication so senders may keep mutating their buffers), and
// Byzantine nodes snapshot the set published so far. Because nodes run
// concurrently, a snapshot may be partial — the faithful "arbitrarily fast
// but not clairvoyant" adversary.
type SharedView struct {
	f         int
	colluders int

	mu    sync.Mutex
	steps map[int][]tensor.Vector
}

// NewSharedView builds an empty view for one message class (gradients or
// parameter vectors) with the population's declared bound f and the number
// of colluding Byzantine senders.
func NewSharedView(f, colluders int) *SharedView {
	return &SharedView{f: f, colluders: colluders, steps: make(map[int][]tensor.Vector)}
}

// Publish records one honest node's vector for the given step. The vector
// is cloned.
func (s *SharedView) Publish(step int, vec tensor.Vector) {
	clone := tensor.Clone(vec)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.steps[step] = append(s.steps[step], clone)
	for old := range s.steps {
		if old < step-sharedViewWindow {
			delete(s.steps, old)
		}
	}
}

// Snapshot returns the view of one step: the honest vectors published so
// far. The returned vectors are the published clones and are read-only.
func (s *SharedView) Snapshot(step int) ClusterView {
	s.mu.Lock()
	honest := append([]tensor.Vector(nil), s.steps[step]...)
	s.mu.Unlock()
	return NewStepView(step, honest, s.f, s.colluders)
}
