package attack

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

var honest = tensor.Vector{1, -2, 3}

func TestRandomGaussianShapeAndRandomness(t *testing.T) {
	a := NewRandomGaussian(100, 1)
	v1 := a.Corrupt(honest, 0, "s1")
	v2 := a.Corrupt(honest, 0, "s1")
	if len(v1) != len(honest) {
		t.Fatalf("corrupted length %d", len(v1))
	}
	same := true
	for i := range v1 {
		if v1[i] != v2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("two corruptions identical; attack is not random")
	}
	// honest untouched
	if honest[0] != 1 {
		t.Fatal("attack mutated honest vector")
	}
}

func TestSignFlip(t *testing.T) {
	v := SignFlip{Scale: 2}.Corrupt(honest, 0, "")
	want := tensor.Vector{-2, 4, -6}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("sign-flip = %v, want %v", v, want)
		}
	}
}

func TestScaledNorm(t *testing.T) {
	v := ScaledNorm{Factor: 1e6}.Corrupt(honest, 0, "")
	if v[0] != 1e6 || v[2] != 3e6 {
		t.Fatalf("scaled = %v", v)
	}
}

func TestZeroAttack(t *testing.T) {
	v := Zero{}.Corrupt(honest, 0, "")
	for _, x := range v {
		if x != 0 {
			t.Fatalf("zero attack sent %v", v)
		}
	}
}

func TestNaNInjection(t *testing.T) {
	v := NaNInjection{}.Corrupt(honest, 0, "")
	if tensor.IsFinite(v) {
		t.Fatalf("NaN injection produced finite vector %v", v)
	}
	if len(v) != len(honest) {
		t.Fatalf("length %d", len(v))
	}
}

func TestTwoFacedEquivocates(t *testing.T) {
	a := TwoFaced{Inner: SignFlip{Scale: 1}}
	// Find two receivers with different parities to prove equivocation.
	var honestSeen, corruptSeen bool
	for _, r := range []string{"w0", "w1", "w2", "w3", "w4", "w5"} {
		v := a.Corrupt(honest, 3, r)
		if v[0] == honest[0] {
			honestSeen = true
		} else if v[0] == -honest[0] {
			corruptSeen = true
		} else {
			t.Fatalf("unexpected face %v", v)
		}
	}
	if !honestSeen || !corruptSeen {
		t.Fatalf("two-faced attack showed only one face (honest=%v corrupt=%v)",
			honestSeen, corruptSeen)
	}
	// Deterministic per receiver (same face within a step and across steps).
	v1 := a.Corrupt(honest, 1, "w0")
	v2 := a.Corrupt(honest, 2, "w0")
	if v1[0] != v2[0] {
		t.Fatal("two-faced face not stable per receiver")
	}
}

func TestSilent(t *testing.T) {
	if v := (Silent{}).Corrupt(honest, 0, ""); v != nil {
		t.Fatalf("silent attack sent %v", v)
	}
}

func TestDelayed(t *testing.T) {
	a := Delayed{Period: 3}
	if v := a.Corrupt(honest, 0, ""); v == nil {
		t.Fatal("delayed attack should respond at step 0")
	}
	if v := a.Corrupt(honest, 1, ""); v != nil {
		t.Fatal("delayed attack should be silent at step 1")
	}
	if v := a.Corrupt(honest, 3, ""); v == nil {
		t.Fatal("delayed attack should respond at step 3")
	}
	// Period ≤ 1 degrades to always responding.
	if v := (Delayed{Period: 1}).Corrupt(honest, 5, ""); v == nil {
		t.Fatal("period-1 delayed attack should always respond")
	}
}

func TestAttackNames(t *testing.T) {
	attacks := []Attack{
		NewRandomGaussian(1, 0), SignFlip{}, ScaledNorm{}, Zero{},
		NaNInjection{}, TwoFaced{Inner: Zero{}}, Silent{}, Delayed{},
	}
	seen := map[string]bool{}
	for _, a := range attacks {
		n := a.Name()
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate attack name %q", n)
		}
		seen[n] = true
	}
}

func TestFlipLabels(t *testing.T) {
	d := dataset.Blobs(1000, 4, 3, 0.5, 1)
	p := FlipLabels(d, 0.5, 2)
	flipped := 0
	for i := range d.Labels {
		if p.Labels[i] != d.Labels[i] {
			if p.Labels[i] != (d.Labels[i]+1)%4 {
				t.Fatalf("label %d flipped to %d, want next class", d.Labels[i], p.Labels[i])
			}
			flipped++
		}
	}
	frac := float64(flipped) / float64(len(d.Labels))
	if math.Abs(frac-0.5) > 0.06 {
		t.Fatalf("flip fraction %v, want ≈0.5", frac)
	}
	// Original dataset unharmed; features shared.
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if &p.X[0][0] != &d.X[0][0] {
		t.Fatal("FlipLabels should share feature storage")
	}
	// frac 0 is the identity.
	id := FlipLabels(d, 0, 3)
	for i := range d.Labels {
		if id.Labels[i] != d.Labels[i] {
			t.Fatal("frac=0 flipped a label")
		}
	}
}
