package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/gar"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/transport"
)

// validator returns the inbound-message filter every honest node installs:
// messages must carry a sender identity (the TCP transport pins it to the
// connection's hello-authenticated peer; an empty From could otherwise
// occupy a quorum slot as a phantom sender) and payloads must have the
// deployment's dimension and contain only finite values. Anything else is
// treated as silence from that sender. Frame-level sanity (bounded lengths,
// well-formed floats) is the wire codec's job — see transport/codec.go.
func validator(dim int) func(transport.Message) bool {
	return func(m transport.Message) bool {
		return m.From != "" && len(m.Vec) == dim && tensor.IsFinite(m.Vec)
	}
}

// shardValidator is the sharded path's inbound filter: sender identity and
// finite payload, applied per frame (whole vector or single shard).
// Dimension and shard-extent checks are the ShardCollector's layout job.
func shardValidator(m transport.Message) bool {
	return m.From != "" && tensor.IsFinite(m.Vec)
}

// send transmits vec to the named receiver, routing it through att when the
// node is Byzantine. A nil attack means honest. A positive shardSize streams
// the vector as chunk frames (see transport.SendSharded); corruption
// happens on the whole vector first, so a Byzantine payload shards exactly
// like an honest one. Send errors are deliberately dropped: the network
// model is best-effort and the quorum discipline tolerates missing
// messages. Payload immutability is the transport's job: every Endpoint
// delivers a snapshot (the in-process network clones, TCP copies by
// serialising), so a sender may keep mutating vec afterwards.
func send(ep transport.Endpoint, att attack.Attack, kind transport.Kind,
	step int, to string, vec tensor.Vector, shardSize int) {
	out := vec
	if att != nil {
		out = att.Corrupt(vec, step, to)
		if out == nil {
			return // silent this message
		}
	}
	m := transport.Message{Kind: kind, Step: step, Vec: out}
	if shardSize > 0 {
		_ = transport.SendSharded(ep, to, m, shardSize)
		return
	}
	_ = ep.Send(to, m)
}

// collectStreamed runs one incremental shard quorum: every completed shard
// feeds the rule's streamer as it arrives, and the aggregate materialises
// the moment the last shard's quorum closes. Returns the pinned sender
// order (nil for per-shard quorums), the streamer's selected indices when
// the rule is selective (Multi-Krum's accountability signal), and the
// aggregated vector.
//
// Pinned-quorum liveness failover: a pinned membership needs every pinned
// member's every shard to arrive within the round, so a pinned member that
// crashes mid-round stalls the collection where a whole-vector quorum
// would have substituted another sender. When a pinned collection times
// out, the round is reset (transport.ShardCollector.ResetRound) and
// retried once with a fresh streamer — the retry's first-q pin is drawn
// from the senders still alive, which in a churning deployment is the
// epoch's surviving (or next) roster. A second timeout is returned to the
// caller: at that point the deployment is below quorum, not unlucky.
func collectStreamed(col *transport.ShardCollector, kind transport.Kind, step, q int,
	self tensor.Vector, selfID string, rule gar.StreamingRule, timeout time.Duration,
) (senders []string, kept []int, out tensor.Vector, err error) {
	st := rule.NewStreamer(col.Layout.Dim)
	fold := func(lo, hi int, _ []string, inputs []tensor.Vector) error {
		return st.Fold(lo, hi, inputs)
	}
	senders, err = col.Collect(kind, step, q, self, selfID, rule.PinnedQuorum(), fold, timeout)
	if err != nil && rule.PinnedQuorum() && errors.Is(err, transport.ErrQuorumTimeout) {
		col.ResetRound(kind, step)
		st = rule.NewStreamer(col.Layout.Dim)
		senders, err = col.Collect(kind, step, q, self, selfID, true, fold, timeout)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	out, err = st.Result()
	if err != nil {
		return nil, nil, nil, err
	}
	if sel, ok := st.(interface{ SelectedIndices() []int }); ok {
		kept = sel.SelectedIndices()
	}
	return senders, kept, out, nil
}

// NodeStats is the unified per-node hardening counter snapshot a run
// leaves behind: the quorum-collector drops (what validation discarded
// after the transport let it through), the transport-level drops (what
// the TCP read loop and the bounded mailbox shed before the collector
// ever saw it), and the node's progress. Attach one per node via
// ServerConfig.Stats / WorkerConfig.Stats; the node fills it when its
// loop returns — on success or error — and, when a Metrics handle is
// attached, the same values are readable live at any moment through
// the handle (NodeStats is then just its final reading).
type NodeStats struct {
	// DroppedFuture counts messages discarded for claiming a step beyond
	// the collector's buffering horizon (step-spraying senders).
	DroppedFuture int
	// DroppedMalformed counts frames discarded for inconsistent shard
	// framing (changed counts, non-tiling offsets, oversized assemblies)
	// plus — with a Metrics handle on a TCP node — undecodable or
	// oversized compressed payloads dropped at the read loop.
	DroppedMalformed int
	// PeakBytes is the collector's buffered-payload high-water mark.
	PeakBytes int
	// ForgedDropped counts inbound frames whose From field disagreed
	// with the TCP connection's hello-authenticated identity. Zero
	// without a Metrics handle (the counter lives on the transport).
	ForgedDropped uint64
	// DroppedUnnegotiated counts inbound compressed frames using a
	// scheme the sender never announced. Zero without a Metrics handle.
	DroppedUnnegotiated uint64
	// DroppedOverflow counts inbound frames the node's bounded mailbox
	// shed under a drop policy. Zero without a Metrics handle.
	DroppedOverflow uint64
	// DroppedClosed counts inbound frames that arrived after the node's
	// mailbox closed. Zero without a Metrics handle.
	DroppedClosed uint64
	// DroppedRoster counts frames discarded because their sender was not
	// a member of the roster in force at the frame's step.
	DroppedRoster int
	// DroppedUnadmitted counts hello handshakes the admission check
	// refused. Zero without a Metrics handle (the counter lives on the
	// transport).
	DroppedUnadmitted uint64
	// Steps is how many protocol steps the node completed. Zero without
	// a Metrics handle.
	Steps uint64
}

// recordStats copies the node's counters into st (nil-safe). With a
// live handle attached the whole snapshot comes from it — current even
// when the run is being torn down by cancellation; otherwise only the
// collector-level counters are available.
func recordStats(st *NodeStats, col *transport.Collector, scol *transport.ShardCollector,
	m *metrics.NodeMetrics) {
	if st == nil {
		return
	}
	switch {
	case scol != nil:
		st.DroppedFuture = scol.DroppedFuture()
		st.DroppedMalformed = scol.DroppedMalformed()
		st.DroppedRoster = scol.DroppedRoster()
		st.PeakBytes = scol.PeakBytes()
	case col != nil:
		st.DroppedFuture = col.DroppedFuture()
		st.DroppedMalformed = col.DroppedMalformed()
		st.DroppedRoster = col.DroppedRoster()
		st.PeakBytes = col.PeakBytes()
	}
	if m == nil {
		return
	}
	st.DroppedFuture = int(m.DroppedFuture.Load())
	st.DroppedMalformed = int(m.DroppedMalformed.Load())
	st.DroppedRoster = int(m.DroppedRoster.Load())
	if pb := m.PeakBytes(); pb > st.PeakBytes {
		st.PeakBytes = pb
	}
	st.ForgedDropped = m.ForgedDropped.Load()
	st.DroppedUnnegotiated = m.DroppedUnnegotiated.Load()
	st.DroppedOverflow = m.DroppedOverflow.Load()
	st.DroppedClosed = m.DroppedClosed.Load()
	st.DroppedUnadmitted = m.DroppedUnadmitted.Load()
	st.Steps = m.Steps.Load()
}

// ServerConfig parameterises one parameter-server node.
type ServerConfig struct {
	// ID is this node's network identifier.
	ID string
	// Workers lists the worker node IDs (broadcast targets for phase 1).
	Workers []string
	// Peers lists the other parameter servers (phase 3 targets).
	Peers []string
	// Init is the shared initial parameter vector θ₀.
	Init tensor.Vector
	// GradRule aggregates worker gradients (the paper's F, Multi-Krum).
	GradRule gar.Rule
	// ParamRule aggregates peer parameter vectors (the paper's M, median).
	ParamRule gar.Rule
	// QuorumGradients is q̄, the number of gradients awaited each step.
	QuorumGradients int
	// QuorumParams is q, the number of parameter vectors (own included)
	// aggregated in the contraction round. 1 disables the exchange.
	QuorumParams int
	// Steps is the number of learning steps to run.
	Steps int
	// LR returns the learning rate η_t for step t.
	LR func(step int) float64
	// Timeout bounds each quorum wait; ≤ 0 means wait forever (the faithful
	// asynchronous setting).
	Timeout time.Duration
	// Attack, when non-nil, makes this server Byzantine: every outbound
	// message passes through it.
	Attack attack.Attack
	// View, when non-nil, is the omniscient adversary's window onto the
	// honest servers' parameter vectors: honest servers publish their θ to
	// it each step, Byzantine servers running an attack.Omniscient snapshot
	// it before corrupting. In-process runtimes share one view per message
	// class; multi-process deployments leave it nil (an adversary spanning
	// processes would need its own covert channel), in which case
	// omniscient attacks degrade to their local-knowledge fallback.
	View *attack.SharedView
	// Suspicion, when non-nil and GradRule is selective (e.g. Multi-Krum),
	// accumulates which workers' gradients the rule excluded each round —
	// the accountability signal that surfaces actually-Byzantine senders.
	Suspicion *stats.Suspicion
	// Trace, when non-nil, records protocol events for post-mortem
	// analysis (nil is a valid no-op recorder).
	Trace *trace.Recorder
	// Momentum, when positive, applies heavy-ball momentum to the local
	// update: v ← β·v + F(...); θ ← θ − η_t·v (extension beyond the
	// paper's plain SGD; mirrors core.Config.Momentum).
	Momentum float64
	// ShardSize, when positive, streams every outbound vector as chunk
	// frames of that many coordinates and — when both rules support
	// streaming — aggregates inbound shards incrementally as their quorums
	// fill (see transport.ShardCollector). Results are bit-identical to the
	// whole-vector path. Peak receive buffering drops from O(n·d) to
	// O(q·shard) for coordinate-wise rules; Multi-Krum's streamer retains
	// its q pinned inputs until the post-selection mean (an O(q·d) floor,
	// still the n→q drop with the distance pass overlapped). Zero keeps
	// whole-vector framing.
	ShardSize int
	// Stats, when non-nil, receives the node's collector counters when the
	// run ends (on success or error).
	Stats *NodeStats
	// Metrics, when non-nil, is this node's live registry handle: the
	// collectors mirror their counters into it as they increment, and the
	// loop publishes step completion / quorum progress — the ops surface a
	// scraper reads mid-run. Attach the same handle to the node's transport
	// (TCPNode.SetMetrics, ChanNetwork.SetNodeMetrics, Couriers.SetMetrics)
	// to fold the wire-level drops into the same view.
	Metrics *metrics.NodeMetrics
	// Checkpoint, when non-nil with a positive cadence, persists the
	// server's resumable state (step, θ, velocity, horizon) into
	// Checkpoint.Dir every Checkpoint.Every steps, atomically — see
	// checkpoint.go. A persistence failure aborts the run: a server that
	// silently stops checkpointing would advertise crash-recovery it no
	// longer has.
	Checkpoint *CheckpointSpec
	// Restore, when non-nil, resumes the loop from a previously persisted
	// state instead of Init: θ (and velocity) are adopted and the loop
	// starts at Restore.Step+1. The checkpoint's ID and dimension must
	// match the config's.
	Restore *Checkpoint
	// Rejoin, with Restore set, makes the restart elastic: before
	// resuming, the server listens to the live contraction-round traffic
	// and adopts the coordinate-wise median of QuorumParams−1 peers'
	// states at whatever step the cluster has reached (RejoinMedian),
	// falling back to the plain Restore state if no quorum materialises
	// within Timeout. Requires whole-vector framing (ShardSize 0): the
	// discovery phase must buffer, not consume, the frames of the step it
	// resumes into.
	Rejoin bool
	// Roster, when non-nil, scopes every quorum to the membership in
	// force at each frame's step (see Roster in checkpoint.go): frames
	// from senders outside that epoch's roster are dropped and counted,
	// never aggregated.
	Roster *Roster
}

// RunServer executes the server loop and returns the node's final parameter
// vector. It returns an error if a quorum cannot be assembled before the
// timeout or the endpoint closes.
func RunServer(ep transport.Endpoint, cfg ServerConfig) (tensor.Vector, error) {
	dim := len(cfg.Init)
	// With a shard size set and both rules streaming-capable, inbound
	// traffic is consumed shard-by-shard through a ShardCollector;
	// otherwise the classic whole-vector Collector runs (it reassembles
	// chunk frames, so sharded senders interoperate either way).
	var (
		col                     *transport.Collector
		scol                    *transport.ShardCollector
		gradStream, paramStream gar.StreamingRule
	)
	if cfg.ShardSize > 0 {
		g, gOK := cfg.GradRule.(gar.StreamingRule)
		p, pOK := cfg.ParamRule.(gar.StreamingRule)
		if gOK && pOK {
			gradStream, paramStream = g, p
			scol = transport.NewShardCollector(ep, transport.NewShardLayout(dim, cfg.ShardSize))
			scol.Validator = shardValidator
		}
	}
	if scol == nil {
		col = transport.NewCollector(ep)
		col.Validator = validator(dim)
	}
	if cfg.Metrics != nil {
		if scol != nil {
			scol.Metrics = cfg.Metrics
		} else {
			col.Metrics = cfg.Metrics
		}
	}
	if cfg.Roster != nil {
		if scol != nil {
			scol.Membership = cfg.Roster.Allows
		} else {
			col.Membership = cfg.Roster.Allows
		}
	}
	defer recordStats(cfg.Stats, col, scol, cfg.Metrics)
	theta := tensor.Clone(cfg.Init)
	var velocity tensor.Vector
	if cfg.Momentum > 0 {
		velocity = make(tensor.Vector, dim)
	}

	start := 0
	if cfg.Restore != nil {
		r := cfg.Restore
		if r.ID != cfg.ID {
			return nil, fmt.Errorf("server %s: restore checkpoint belongs to %q", cfg.ID, r.ID)
		}
		if len(r.Theta) != dim {
			return nil, fmt.Errorf("server %s: restore dimension %d, deployment is %d", cfg.ID, len(r.Theta), dim)
		}
		theta = tensor.Clone(r.Theta)
		start = r.Step + 1
		if cfg.Momentum > 0 && r.Velocity != nil {
			if len(r.Velocity) != dim {
				return nil, fmt.Errorf("server %s: restore velocity dimension %d, deployment is %d", cfg.ID, len(r.Velocity), dim)
			}
			velocity = tensor.Clone(r.Velocity)
		}
		if col != nil && r.Horizon > 0 {
			col.Horizon = r.Horizon
		}
		if cfg.Rejoin {
			if col == nil {
				return nil, fmt.Errorf("server %s: median rejoin requires whole-vector framing (ShardSize 0)", cfg.ID)
			}
			// Catch up to wherever the live cluster is: adopt the median
			// of a peer-params quorum at the first step ≥ our checkpoint
			// that completes one. Discovery shares the loop's collector,
			// so frames for the resumed step stay buffered for phase 3.
			// No quorum before the timeout means the cluster is not ahead
			// of us (or not alive): resume from the checkpoint alone.
			med, at, err := RejoinMedian(col, start, cfg.QuorumParams-1, dim, cfg.Timeout)
			switch {
			case err == nil:
				theta = med
				start = at + 1
				if cfg.Momentum > 0 {
					velocity = make(tensor.Vector, dim) // stale momentum would fight the adopted state
				}
				cfg.Trace.Recordf(cfg.ID, at, trace.EventUpdate, "rejoined via median of %d peers", cfg.QuorumParams-1)
			case errors.Is(err, transport.ErrQuorumTimeout):
				cfg.Trace.Recordf(cfg.ID, start, trace.EventUpdate, "rejoin quorum timeout; resuming from checkpoint")
			default:
				return nil, fmt.Errorf("server %s: %w", cfg.ID, err)
			}
		}
	}

	for t := start; t < cfg.Steps; t++ {
		if scol != nil {
			scol.Advance(t)
		} else {
			col.Advance(t)
		}
		cfg.Trace.Record(cfg.ID, t, trace.EventStepStart, "")

		// Phase 1: publish the current model to every worker. Honest servers
		// expose θ to the omniscient adversary's view; a Byzantine server
		// snapshots whatever honest state is already visible this step.
		if cfg.View != nil {
			if cfg.Attack == nil {
				cfg.View.Publish(t, theta)
			} else if o, ok := cfg.Attack.(attack.Omniscient); ok {
				o.Observe(cfg.View.Snapshot(t))
			}
		}
		for _, w := range cfg.Workers {
			send(ep, cfg.Attack, transport.KindParams, t, w, theta, cfg.ShardSize)
		}
		cfg.Trace.Recordf(cfg.ID, t, trace.EventBroadcast, "params to %d workers", len(cfg.Workers))

		// Phase 2: gather a quorum of gradients and update locally. On the
		// sharded path the aggregation streams: partial distance/median work
		// runs while later shards are still in flight.
		var agg tensor.Vector
		if scol != nil {
			senders, kept, a, err := collectStreamed(scol, transport.KindGradient, t,
				cfg.QuorumGradients, nil, "", gradStream, cfg.Timeout)
			if err != nil {
				cfg.Trace.Recordf(cfg.ID, t, trace.EventError, "%v", err)
				return nil, fmt.Errorf("server %s step %d: %w", cfg.ID, t, err)
			}
			cfg.Trace.Recordf(cfg.ID, t, trace.EventQuorumComplete, "q̄=%d gradients (sharded)", cfg.QuorumGradients)
			agg = a
			if cfg.Suspicion != nil && kept != nil && len(senders) > 0 {
				keptIDs := make([]string, len(kept))
				for i, k := range kept {
					keptIDs[i] = senders[k]
				}
				cfg.Suspicion.Observe(senders, keptIDs)
			}
		} else {
			msgs, err := col.Collect(transport.KindGradient, t, cfg.QuorumGradients, cfg.Timeout)
			if err != nil {
				cfg.Trace.Recordf(cfg.ID, t, trace.EventError, "%v", err)
				return nil, fmt.Errorf("server %s step %d: %w", cfg.ID, t, err)
			}
			cfg.Trace.Recordf(cfg.ID, t, trace.EventQuorumComplete, "q̄=%d gradients", len(msgs))
			grads := make([]tensor.Vector, len(msgs))
			senders := make([]string, len(msgs))
			for i, m := range msgs {
				grads[i] = m.Vec
				senders[i] = m.From
			}
			agg, err = cfg.GradRule.Aggregate(grads)
			if err != nil {
				return nil, fmt.Errorf("server %s step %d: aggregate gradients: %w", cfg.ID, t, err)
			}
			if cfg.Suspicion != nil {
				if sel, ok := cfg.GradRule.(gar.SelectiveRule); ok {
					if kept, err := sel.SelectIndices(grads); err == nil {
						keptIDs := make([]string, len(kept))
						for i, k := range kept {
							keptIDs[i] = senders[k]
						}
						cfg.Suspicion.Observe(senders, keptIDs)
					}
				}
			}
		}
		if cfg.Metrics != nil {
			cfg.Metrics.Progress() // gradient quorum made headway this step
		}
		if cfg.Momentum > 0 {
			tensor.ScaleInPlace(velocity, cfg.Momentum)
			tensor.AddInPlace(velocity, agg)
			agg = velocity
		}
		tensor.AXPY(theta, -cfg.LR(t), agg)
		cfg.Trace.Recordf(cfg.ID, t, trace.EventUpdate, "η=%g rule=%s", cfg.LR(t), cfg.GradRule.Name())

		// Phase 3: contraction round across servers.
		if cfg.QuorumParams > 1 && len(cfg.Peers) > 0 {
			if cfg.View != nil {
				if att, ok := cfg.Attack.(attack.Omniscient); ok {
					att.Observe(cfg.View.Snapshot(t))
				}
			}
			for _, p := range cfg.Peers {
				send(ep, cfg.Attack, transport.KindPeerParams, t, p, theta, cfg.ShardSize)
			}
			if scol != nil {
				// The node's own θ rides along as input 0 of every shard —
				// "its own vector included" without a loopback message.
				_, _, newTheta, err := collectStreamed(scol, transport.KindPeerParams, t,
					cfg.QuorumParams-1, theta, cfg.ID, paramStream, cfg.Timeout)
				if err != nil {
					return nil, fmt.Errorf("server %s step %d: %w", cfg.ID, t, err)
				}
				theta = newTheta
			} else {
				peerMsgs, err := col.Collect(transport.KindPeerParams, t, cfg.QuorumParams-1, cfg.Timeout)
				if err != nil {
					return nil, fmt.Errorf("server %s step %d: %w", cfg.ID, t, err)
				}
				vecs := make([]tensor.Vector, 0, len(peerMsgs)+1)
				vecs = append(vecs, theta)
				for _, m := range peerMsgs {
					vecs = append(vecs, m.Vec)
				}
				theta, err = cfg.ParamRule.Aggregate(vecs)
				if err != nil {
					return nil, fmt.Errorf("server %s step %d: aggregate params: %w", cfg.ID, t, err)
				}
			}
		}
		if cfg.Checkpoint != nil && cfg.Checkpoint.Every > 0 && (t+1)%cfg.Checkpoint.Every == 0 {
			horizon := 0
			if col != nil {
				horizon = col.Horizon
			}
			ckpt := Checkpoint{ID: cfg.ID, Step: t, Theta: theta, Velocity: velocity, Horizon: horizon}
			if err := ckpt.WriteFile(cfg.Checkpoint.Dir); err != nil {
				return nil, fmt.Errorf("server %s step %d: %w", cfg.ID, t, err)
			}
			cfg.Trace.Recordf(cfg.ID, t, trace.EventUpdate, "checkpoint written to %s", cfg.Checkpoint.Dir)
		}
		if cfg.Metrics != nil {
			cfg.Metrics.StepDone(t)
		}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.MarkDone()
	}
	return theta, nil
}

// WorkerConfig parameterises one worker node.
type WorkerConfig struct {
	// ID is this node's network identifier.
	ID string
	// Servers lists the parameter-server IDs (gradient broadcast targets).
	Servers []string
	// Model is this worker's private model replica (mutated in place).
	Model *nn.Sequential
	// Sampler draws this worker's mini-batches (its gradient distribution
	// G^(j); each worker owns an independently seeded sampler).
	Sampler *dataset.Sampler
	// Batch is the mini-batch size.
	Batch int
	// ParamRule aggregates received parameter vectors (the paper's M).
	ParamRule gar.Rule
	// QuorumParams is q, the number of parameter vectors awaited.
	QuorumParams int
	// Steps is the number of learning steps.
	Steps int
	// Timeout bounds each quorum wait; ≤ 0 waits forever.
	Timeout time.Duration
	// Attack, when non-nil, makes this worker Byzantine.
	Attack attack.Attack
	// View mirrors ServerConfig.View for the gradient message class:
	// honest workers publish their gradient each step, omniscient
	// Byzantine workers snapshot the set published so far.
	View *attack.SharedView
	// ShardSize mirrors ServerConfig.ShardSize for the worker's traffic.
	ShardSize int
	// Stats mirrors ServerConfig.Stats.
	Stats *NodeStats
	// Metrics mirrors ServerConfig.Metrics.
	Metrics *metrics.NodeMetrics
	// Roster mirrors ServerConfig.Roster: parameter vectors from servers
	// outside the roster in force at their step are dropped and counted.
	Roster *Roster
}

// RunWorker executes the worker loop.
func RunWorker(ep transport.Endpoint, cfg WorkerConfig) error {
	dim := cfg.Model.ParamCount()
	var (
		col         *transport.Collector
		scol        *transport.ShardCollector
		paramStream gar.StreamingRule
	)
	if cfg.ShardSize > 0 {
		if p, ok := cfg.ParamRule.(gar.StreamingRule); ok {
			paramStream = p
			scol = transport.NewShardCollector(ep, transport.NewShardLayout(dim, cfg.ShardSize))
			scol.Validator = shardValidator
		}
	}
	if scol == nil {
		col = transport.NewCollector(ep)
		col.Validator = validator(dim)
	}
	if cfg.Metrics != nil {
		if scol != nil {
			scol.Metrics = cfg.Metrics
		} else {
			col.Metrics = cfg.Metrics
		}
	}
	if cfg.Roster != nil {
		if scol != nil {
			scol.Membership = cfg.Roster.Allows
		} else {
			col.Membership = cfg.Roster.Allows
		}
	}
	defer recordStats(cfg.Stats, col, scol, cfg.Metrics)

	for t := 0; t < cfg.Steps; t++ {
		var agg tensor.Vector
		if scol != nil {
			scol.Advance(t)
			// Phase 1 (sharded): aggregate each parameter shard the moment
			// its quorum fills.
			_, _, a, err := collectStreamed(scol, transport.KindParams, t,
				cfg.QuorumParams, nil, "", paramStream, cfg.Timeout)
			if err != nil {
				return fmt.Errorf("worker %s step %d: %w", cfg.ID, t, err)
			}
			agg = a
		} else {
			col.Advance(t)
			// Phase 1: await a quorum of parameter vectors and aggregate.
			msgs, err := col.Collect(transport.KindParams, t, cfg.QuorumParams, cfg.Timeout)
			if err != nil {
				return fmt.Errorf("worker %s step %d: %w", cfg.ID, t, err)
			}
			params := make([]tensor.Vector, len(msgs))
			for i, m := range msgs {
				params[i] = m.Vec
			}
			agg, err = cfg.ParamRule.Aggregate(params)
			if err != nil {
				return fmt.Errorf("worker %s step %d: aggregate params: %w", cfg.ID, t, err)
			}
		}
		if err := cfg.Model.SetParamVector(agg); err != nil {
			return fmt.Errorf("worker %s step %d: %w", cfg.ID, t, err)
		}

		// Estimate the gradient at the aggregated parameters.
		xs, labels := cfg.Sampler.Batch(cfg.Batch)
		_, grad := nn.BatchGradient(cfg.Model, xs, labels)

		// Phase 2: broadcast the gradient to every server. Honest workers
		// expose it to the adversary's view first; omniscient Byzantine
		// workers snapshot the honest gradients visible so far.
		if cfg.View != nil {
			if cfg.Attack == nil {
				cfg.View.Publish(t, grad)
			} else if o, ok := cfg.Attack.(attack.Omniscient); ok {
				o.Observe(cfg.View.Snapshot(t))
			}
		}
		for _, s := range cfg.Servers {
			send(ep, cfg.Attack, transport.KindGradient, t, s, grad, cfg.ShardSize)
		}
		if cfg.Metrics != nil {
			cfg.Metrics.StepDone(t)
		}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.MarkDone()
	}
	return nil
}
