package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/gar"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// TestGuanYuOverTCP runs a complete Byzantine deployment over real TCP
// sockets on localhost: 6 servers (1 silent-Byzantine) and 6 workers
// (1 sign-flipping), verifying end-to-end that the node loops, the binary
// wire transport and the quorum discipline compose into a converging
// system.
func TestGuanYuOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up 12 TCP listeners")
	}
	const (
		numServers, fServers = 6, 1
		numWorkers, fWorkers = 6, 1
		steps, batch         = 40, 16
	)
	model, train, test := testProblem(4242)
	theta0 := model.ParamVector()

	ids := make([]string, 0, numServers+numWorkers)
	for i := 0; i < numServers; i++ {
		ids = append(ids, ServerID(i))
	}
	for j := 0; j < numWorkers; j++ {
		ids = append(ids, WorkerID(j))
	}
	nodes := make(map[string]*transport.TCPNode, len(ids))
	for _, id := range ids {
		n, err := transport.ListenTCP(id, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, id := range ids {
			if id != n.ID() {
				if err := n.AddPeer(id, nodes[id].Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	serverIDs, workerIDs := ids[:numServers], ids[numServers:]
	rng := tensor.NewRNG(77)

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		finals []tensor.Vector
		errs   []error
	)
	for i := 0; i < numServers; i++ {
		peers := make([]string, 0, numServers-1)
		for k, id := range serverIDs {
			if k != i {
				peers = append(peers, id)
			}
		}
		scfg := ServerConfig{
			ID: serverIDs[i], Workers: workerIDs, Peers: peers,
			Init:     theta0,
			GradRule: gar.MultiKrum{F: fWorkers}, ParamRule: gar.Median{},
			QuorumGradients: gar.MinQuorum(fWorkers),
			QuorumParams:    gar.MinQuorum(fServers),
			Steps:           steps,
			LR:              func(int) float64 { return 0.2 },
			Timeout:         time.Minute,
		}
		if i == numServers-1 {
			scfg.Attack = attack.Silent{}
		}
		ep := nodes[serverIDs[i]]
		byz := scfg.Attack != nil
		wg.Add(1)
		go func() {
			defer wg.Done()
			theta, err := RunServer(ep, scfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			if !byz {
				finals = append(finals, theta)
			}
		}()
	}
	for j := 0; j < numWorkers; j++ {
		wcfg := WorkerConfig{
			ID: workerIDs[j], Servers: serverIDs,
			Model:   model.Clone(),
			Sampler: dataset.NewSampler(train, rng.Split()),
			Batch:   batch, ParamRule: gar.Median{},
			QuorumParams: gar.MinQuorum(fServers),
			Steps:        steps,
			Timeout:      time.Minute,
		}
		if j == numWorkers-1 {
			wcfg.Attack = attack.SignFlip{Scale: 10}
		}
		ep := nodes[workerIDs[j]]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ep, wcfg); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("TCP deployment failed: %v", errs[0])
	}
	if len(finals) != numServers-1 {
		t.Fatalf("expected %d honest finals, got %d", numServers-1, len(finals))
	}
	final, err := gar.Median{}.Aggregate(finals)
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalFinal(t, model, final, test); acc < 0.85 {
		t.Fatalf("TCP deployment failed to converge: accuracy %.3f", acc)
	}
}
