package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/gar"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// TestChaosTCPClusterSurvivesFaultsAndEquivocation is the race/chaos probe
// of the live runtime: a full TCP deployment where every node's send path
// runs through a FaultInjector (real drops, duplicates, reordering, delay
// spikes) while one server equivocates — a different lie to every
// receiver, every step. The deployment must finish its fixed step count,
// and the honest servers must end within contraction distance of each
// other: the Phase-3 median exchange has to keep pulling them together
// even when the network loses and reorders its traffic.
//
// Quorums are declared with slack (f=0 → q=3 of 6 per role): a dropped
// message is never retransmitted, so a zero-slack quorum would deadlock on
// the first lost link — the matching simulator-side behaviour is the
// scenario matrix's partition breakdown column.
func TestChaosTCPClusterSurvivesFaultsAndEquivocation(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up 12 TCP listeners")
	}
	const (
		numServers, numWorkers = 6, 6
		steps, batch           = 30, 16
		quorum                 = 3 // per role: slack for real message loss
	)
	model, train, test := testProblem(909)
	theta0 := model.ParamVector()

	inj := transport.NewFaultInjector(transport.FaultConfig{
		Seed: 77, Drop: 0.03, Duplicate: 0.05, Reorder: 0.1,
		DelayRate: 0.1, DelaySpike: 0.002,
	})

	ids := make([]string, 0, numServers+numWorkers)
	for i := 0; i < numServers; i++ {
		ids = append(ids, ServerID(i))
	}
	for j := 0; j < numWorkers; j++ {
		ids = append(ids, WorkerID(j))
	}
	nodes := make(map[string]*transport.TCPNode, len(ids))
	for _, id := range ids {
		n, err := transport.ListenTCP(id, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, id := range ids {
			if id != n.ID() {
				if err := n.AddPeer(id, nodes[id].Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	serverIDs, workerIDs := ids[:numServers], ids[numServers:]
	rng := tensor.NewRNG(31)

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		finals []tensor.Vector
		errs   []error
	)
	for i := 0; i < numServers; i++ {
		peers := make([]string, 0, numServers-1)
		for k, id := range serverIDs {
			if k != i {
				peers = append(peers, id)
			}
		}
		scfg := ServerConfig{
			ID: serverIDs[i], Workers: workerIDs, Peers: peers,
			Init: theta0,
			// Median on both paths: legal at the slack quorum of 3 (the
			// Krum family would need 2f+3 inputs) and robust against the
			// equivocating server's per-receiver lies.
			GradRule: gar.Median{}, ParamRule: gar.Median{},
			QuorumGradients: quorum,
			QuorumParams:    quorum,
			Steps:           steps,
			LR:              func(int) float64 { return 0.2 },
			Timeout:         time.Minute,
		}
		if i == numServers-1 {
			// The Byzantine server: a different corruption per receiver.
			scfg.Attack = attack.Equivocate{Std: 0.5, Seed: 13}
		}
		ep := inj.Wrap(nodes[serverIDs[i]])
		byz := scfg.Attack != nil
		wg.Add(1)
		go func() {
			defer wg.Done()
			theta, err := RunServer(ep, scfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			if !byz {
				finals = append(finals, theta)
			}
		}()
	}
	for j := 0; j < numWorkers; j++ {
		wcfg := WorkerConfig{
			ID: workerIDs[j], Servers: serverIDs,
			Model:   model.Clone(),
			Sampler: dataset.NewSampler(train, rng.Split()),
			Batch:   batch, ParamRule: gar.Median{},
			QuorumParams: quorum,
			Steps:        steps,
			Timeout:      time.Minute,
		}
		ep := inj.Wrap(nodes[workerIDs[j]])
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ep, wcfg); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("chaos deployment failed: %v (and %d more)", errs[0], len(errs)-1)
	}
	if len(finals) != numServers-1 {
		t.Fatalf("expected %d honest finals, got %d", numServers-1, len(finals))
	}

	// The Phase-3 contraction property must survive real faults: every
	// honest final is finite, and the honest servers sit within contraction
	// distance of each other — far tighter than the O(1) scale of the
	// parameters themselves, which is where they would drift without the
	// median exchange (see the experiments' Contraction ablation).
	for i, f := range finals {
		if !tensor.IsFinite(f) {
			t.Fatalf("honest final %d contains non-finite values", i)
		}
	}
	drift := tensor.MaxPairwiseDistance(finals)
	scale := tensor.Norm2(finals[0])
	if drift > 0.25*(1+scale) {
		t.Fatalf("honest servers outside contraction distance: drift %.4f at parameter scale %.4f",
			drift, scale)
	}

	// And the model the cluster agreed on must still have learned.
	final, err := gar.Median{}.Aggregate(finals)
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalFinal(t, model, final, test); acc < 0.80 {
		t.Fatalf("chaos deployment failed to converge: accuracy %.3f", acc)
	}
}

// TestLiveOmniscientAttackGetsSharedView checks the live runtimes' side of
// the ClusterView contract: in an in-process deployment, honest nodes
// publish their vectors to the shared view and an omniscient Byzantine
// worker actually observes non-empty honest state while the cluster still
// converges around it.
func TestLiveOmniscientAttackGetsSharedView(t *testing.T) {
	if testing.Short() {
		t.Skip("full live run")
	}
	model, train, test := testProblem(707)
	probe := &viewProbe{inner: &attack.ALIE{Z: 1.5}}
	cfg := LiveConfig{
		Model: model, Train: train,
		NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1,
		WorkerAttacks: map[int]attack.Attack{0: probe},
		Steps:         25, Batch: 16,
		LR:      func(int) float64 { return 0.2 },
		Timeout: time.Minute,
		Seed:    3,
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if probe.maxHonest() == 0 {
		t.Fatal("omniscient worker never observed any honest gradient")
	}
	if acc := evalFinal(t, model, res.Final, test); acc < 0.85 {
		t.Fatalf("cluster did not converge around the ALIE colluder: accuracy %.3f", acc)
	}
}

// viewProbe wraps an Omniscient attack and records the richest view seen.
type viewProbe struct {
	inner attack.Omniscient

	mu   sync.Mutex
	best int
}

func (p *viewProbe) Name() string { return p.inner.Name() }

func (p *viewProbe) Observe(v attack.ClusterView) {
	p.mu.Lock()
	if n := len(v.Honest()); n > p.best {
		p.best = n
	}
	p.mu.Unlock()
	p.inner.Observe(v)
}

func (p *viewProbe) Corrupt(honest tensor.Vector, step int, receiver string) tensor.Vector {
	return p.inner.Corrupt(honest, step, receiver)
}

func (p *viewProbe) maxHonest() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.best
}
