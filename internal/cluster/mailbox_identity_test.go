package cluster

import (
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/gar"
	"repro/internal/transport"
)

// TestMailboxPoliciesBitIdenticalWithoutOverflow pins the acceptance
// property the zero-value escape hatch rests on: when no overflow occurs,
// the mailbox bound and its policy are invisible — whole-vector, sharded
// and compressed live runs all produce byte-for-byte the same final model
// under every policy as with the unbounded default.
//
// The deployment is made schedule-independent on purpose: full quorums (q
// = n, so every run folds the same message set) and Median everywhere (a
// per-coordinate sort, indifferent to arrival order). What remains to vary
// across runs is exactly the mailbox configuration — so any difference in
// the result is the policy leaking into delivery, which is the bug this
// test exists to catch.
func TestMailboxPoliciesBitIdenticalWithoutOverflow(t *testing.T) {
	model, train, _ := testProblem(900)
	base := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 3, FServers: 0,
		NumWorkers: 3, FWorkers: 0,
		QuorumServers: 3, QuorumWorkers: 3,
		Rule: gar.Median{}, ParamRule: gar.Median{},
		Steps: 20, Batch: 16,
		LR:      func(int) float64 { return 0.2 },
		Timeout: 60 * time.Second,
		Seed:    9,
	}
	variants := []struct {
		name string
		mut  func(*LiveConfig)
	}{
		{"whole", func(*LiveConfig) {}},
		{"sharded", func(c *LiveConfig) { c.ShardSize = 13 }},
		{"compressed", func(c *LiveConfig) { c.Compression = compress.Config{Scheme: compress.Float32} }},
	}
	policies := []struct {
		name string
		cfg  transport.MailboxConfig
	}{
		{"unbounded", transport.MailboxConfig{}},
		{"backpressure", transport.MailboxConfig{Cap: 64, Policy: transport.Backpressure}},
		{"drop-newest", transport.MailboxConfig{Cap: 64, Policy: transport.DropNewest}},
		{"drop-oldest", transport.MailboxConfig{Cap: 64, Policy: transport.DropOldest}},
	}
	for _, v := range variants {
		var reference *LiveResult
		for _, p := range policies {
			cfg := base
			v.mut(&cfg)
			cfg.Mailbox = p.cfg
			res, err := RunLive(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", v.name, p.name, err)
			}
			if res.DroppedOverflow != 0 {
				t.Fatalf("%s/%s: %d overflow drops in a schedule that must not overflow",
					v.name, p.name, res.DroppedOverflow)
			}
			if reference == nil {
				reference = res
				continue
			}
			if len(res.Final) != len(reference.Final) {
				t.Fatalf("%s/%s: final dimension %d vs %d",
					v.name, p.name, len(res.Final), len(reference.Final))
			}
			for i := range res.Final {
				if res.Final[i] != reference.Final[i] {
					t.Fatalf("%s/%s: final[%d] = %v, unbounded run had %v — the policy leaked into delivery",
						v.name, p.name, i, res.Final[i], reference.Final[i])
				}
			}
		}
	}
}
