package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/gar"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/transport"
)

// testProblem builds a 3-class blob task and a small MLP for it.
func testProblem(seed uint64) (*nn.Sequential, *dataset.Dataset, *dataset.Dataset) {
	data := dataset.Blobs(600, 3, 3, 0.5, seed)
	train, test := data.Split(0.8, tensor.NewRNG(seed+1))
	model := nn.NewMLP(tensor.NewRNG(seed+2), 2, 16, 3)
	return model, train, test
}

func evalFinal(t *testing.T, model *nn.Sequential, final tensor.Vector,
	test *dataset.Dataset) float64 {
	t.Helper()
	m := model.Clone()
	if err := m.SetParamVector(final); err != nil {
		t.Fatal(err)
	}
	return nn.Accuracy(m, test.X, test.Labels)
}

func TestLiveGuanYuConvergesNonByzantine(t *testing.T) {
	model, train, test := testProblem(100)
	cfg := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1,
		Steps: 80, Batch: 16,
		LR:      func(int) float64 { return 0.2 },
		Timeout: 60 * time.Second,
		Seed:    1,
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ServerParams) != 6 {
		t.Fatalf("expected 6 honest finals, got %d", len(res.ServerParams))
	}
	if acc := evalFinal(t, model, res.Final, test); acc < 0.9 {
		t.Fatalf("GuanYu failed to converge: accuracy %.3f", acc)
	}
	// Honest servers must have contracted to nearby models.
	finals := make([]tensor.Vector, 0, len(res.ServerParams))
	for _, v := range res.ServerParams {
		finals = append(finals, v)
	}
	if drift := tensor.MaxPairwiseDistance(finals); drift > 1.0 {
		t.Fatalf("honest servers drifted apart: max distance %.3f", drift)
	}
}

func TestLiveGuanYuSurvivesByzantineWorkersAndServer(t *testing.T) {
	model, train, test := testProblem(200)
	cfg := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1,
		ServerAttacks: map[int]attack.Attack{
			5: attack.TwoFaced{Inner: attack.NewRandomGaussian(50, 7)},
		},
		WorkerAttacks: map[int]attack.Attack{
			5: attack.ScaledNorm{Factor: 1e6},
		},
		Steps: 80, Batch: 16,
		LR:      func(int) float64 { return 0.2 },
		Timeout: 60 * time.Second,
		Seed:    2,
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ServerParams) != 5 {
		t.Fatalf("expected 5 honest finals, got %d", len(res.ServerParams))
	}
	if acc := evalFinal(t, model, res.Final, test); acc < 0.9 {
		t.Fatalf("GuanYu collapsed under attack: accuracy %.3f", acc)
	}
}

func TestLiveVanillaDivergesUnderSingleByzantineWorker(t *testing.T) {
	model, train, test := testProblem(300)
	vanilla := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 1, FServers: 0,
		NumWorkers: 5, FWorkers: 0,
		QuorumServers: 1, QuorumWorkers: 5,
		Rule:      gar.Mean{},
		ParamRule: gar.Mean{}, // single vector; identity either way
		// A gradient-ascent attack: it scales with the honest gradients, so
		// the honest majority cannot out-correct it (fixed-magnitude noise
		// gets self-healed on easy tasks), yet arithmetic stays finite and
		// the run completes so we can observe the collapse.
		WorkerAttacks: map[int]attack.Attack{
			4: attack.SignFlip{Scale: 10},
		},
		Steps: 40, Batch: 16,
		LR:             func(int) float64 { return 0.2 },
		Timeout:        60 * time.Second,
		Seed:           3,
		SkipValidation: true, // vanilla deliberately ignores the theory bounds
	}
	res, err := RunLive(vanilla)
	if err != nil {
		t.Fatal(err)
	}
	acc := evalFinal(t, model, res.Final, test)
	if tensor.IsFinite(res.Final) && acc > 0.6 {
		t.Fatalf("vanilla survived a Byzantine worker (accuracy %.3f); it must not", acc)
	}
}

func TestLiveVanillaConvergesWithoutAttack(t *testing.T) {
	model, train, test := testProblem(400)
	vanilla := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 1, FServers: 0,
		NumWorkers: 5, FWorkers: 0,
		QuorumServers: 1, QuorumWorkers: 5,
		Rule:  gar.Mean{},
		Steps: 80, Batch: 16,
		LR:             func(int) float64 { return 0.2 },
		Timeout:        60 * time.Second,
		Seed:           4,
		SkipValidation: true,
	}
	res, err := RunLive(vanilla)
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalFinal(t, model, res.Final, test); acc < 0.9 {
		t.Fatalf("vanilla baseline failed to converge: accuracy %.3f", acc)
	}
}

func TestLiveSilentServerDoesNotBlockProgress(t *testing.T) {
	model, train, test := testProblem(500)
	cfg := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1,
		ServerAttacks: map[int]attack.Attack{2: attack.Silent{}},
		Steps:         60, Batch: 16,
		LR:      func(int) float64 { return 0.2 },
		Timeout: 60 * time.Second,
		Seed:    5,
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalFinal(t, model, res.Final, test); acc < 0.85 {
		t.Fatalf("silent server stalled learning: accuracy %.3f", acc)
	}
}

func TestLiveNaNInjectionIsFilteredAtReceipt(t *testing.T) {
	model, train, test := testProblem(600)
	cfg := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1,
		WorkerAttacks: map[int]attack.Attack{0: attack.NaNInjection{}},
		Steps:         60, Batch: 16,
		LR:      func(int) float64 { return 0.2 },
		Timeout: 60 * time.Second,
		Seed:    6,
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.IsFinite(res.Final) {
		t.Fatal("NaN leaked into the final model")
	}
	if acc := evalFinal(t, model, res.Final, test); acc < 0.85 {
		t.Fatalf("NaN injection degraded learning: accuracy %.3f", acc)
	}
}

func TestLiveWithInjectedAsynchrony(t *testing.T) {
	model, train, test := testProblem(700)
	lat := transport.NewLatencyModel(1e-3, 1.0, 0, 9) // heavy-tailed ms-scale
	cfg := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1,
		Delay: lat.DelayFunc(0, 1),
		Steps: 40, Batch: 16,
		LR:      func(int) float64 { return 0.2 },
		Timeout: 120 * time.Second,
		Seed:    7,
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalFinal(t, model, res.Final, test); acc < 0.8 {
		t.Fatalf("asynchrony broke convergence: accuracy %.3f", acc)
	}
}

func TestLiveValidationRejectsIllegalDeployments(t *testing.T) {
	model, train, _ := testProblem(800)
	bad := []LiveConfig{
		{Model: model, Train: train, NumServers: 5, FServers: 1,
			NumWorkers: 6, FWorkers: 1, Steps: 1, Batch: 1}, // n < 3f+3
		{Model: model, Train: train, NumServers: 6, FServers: 1,
			NumWorkers: 5, FWorkers: 1, Steps: 1, Batch: 1}, // n̄ < 3f̄+3
		{Model: model, Train: train, NumServers: 6, FServers: 1,
			NumWorkers: 6, FWorkers: 1, QuorumServers: 6, Steps: 1, Batch: 1}, // q > n−f
		{Model: model, Train: train, NumServers: 6, FServers: 1,
			NumWorkers: 6, FWorkers: 1, QuorumWorkers: 4, Steps: 1, Batch: 1}, // q̄ < 2f̄+3
	}
	for i, cfg := range bad {
		if _, err := RunLive(cfg); err == nil {
			t.Fatalf("case %d: illegal deployment accepted", i)
		}
	}
	// Positive sizes enforced too.
	ok := LiveConfig{Model: model, Train: train, NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1}
	if _, err := RunLive(ok); err == nil || !strings.Contains(err.Error(), "Steps") {
		t.Fatalf("zero steps accepted: %v", err)
	}
}

func TestLiveQuorumTimeoutSurfacesAsError(t *testing.T) {
	model, train, _ := testProblem(900)
	// Two actually-silent servers with f=1 and q = n−f = 5: only 4 servers
	// speak, the worker quorum can never complete. The run must fail fast
	// with a timeout error, not hang.
	cfg := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1,
		ServerAttacks: map[int]attack.Attack{
			1: attack.Silent{},
			2: attack.Silent{},
		},
		Steps: 3, Batch: 4,
		LR:      func(int) float64 { return 0.1 },
		Timeout: 300 * time.Millisecond,
		Seed:    8,
	}
	if _, err := RunLive(cfg); err == nil {
		t.Fatal("expected quorum timeout, run succeeded")
	}
}

func TestLiveDelayedServerToleratedByQuorums(t *testing.T) {
	model, train, test := testProblem(1000)
	cfg := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1,
		ServerAttacks: map[int]attack.Attack{4: attack.Delayed{Period: 4}},
		Steps:         48, Batch: 16,
		LR:      func(int) float64 { return 0.2 },
		Timeout: 60 * time.Second,
		Seed:    9,
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalFinal(t, model, res.Final, test); acc < 0.8 {
		t.Fatalf("delayed server broke convergence: accuracy %.3f", acc)
	}
}

func TestSuspicionIdentifiesByzantineWorker(t *testing.T) {
	model, train, _ := testProblem(1100)
	susp := stats.NewSuspicion()
	cfg := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1,
		WorkerAttacks: map[int]attack.Attack{3: attack.ScaledNorm{Factor: 1e4}},
		Steps:         40, Batch: 16,
		LR:        func(int) float64 { return 0.2 },
		Timeout:   60 * time.Second,
		Seed:      10,
		Suspicion: susp,
	}
	if _, err := RunLive(cfg); err != nil {
		t.Fatal(err)
	}
	ranks := susp.Ranking()
	if len(ranks) == 0 {
		t.Fatal("no suspicion data collected")
	}
	if ranks[0].Sender != WorkerID(3) {
		t.Fatalf("most-suspected sender is %s (rate %.2f), want %s\n%s",
			ranks[0].Sender, ranks[0].Rate, WorkerID(3), susp.Format())
	}
	if ranks[0].Rate < 0.9 {
		t.Fatalf("Byzantine worker only excluded %.0f%% of rounds", 100*ranks[0].Rate)
	}
}

func TestLiveTraceRecordsProtocolEvents(t *testing.T) {
	model, train, _ := testProblem(1200)
	rec := trace.NewRecorder(4096)
	cfg := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1,
		Steps: 5, Batch: 8,
		LR:      func(int) float64 { return 0.1 },
		Timeout: 60 * time.Second,
		Seed:    11,
		Trace:   rec,
	}
	if _, err := RunLive(cfg); err != nil {
		t.Fatal(err)
	}
	// 6 servers × 5 steps × 4 event kinds.
	if rec.Total() < 6*5*4 {
		t.Fatalf("only %d events recorded", rec.Total())
	}
	if len(rec.Filter(ServerID(0), trace.EventQuorumComplete)) == 0 {
		t.Fatal("no quorum events for ps0")
	}
	if len(rec.Filter("", trace.EventError)) != 0 {
		t.Fatalf("unexpected error events:\n%s", rec.Dump())
	}
}

func TestLiveMomentumConverges(t *testing.T) {
	model, train, test := testProblem(1300)
	cfg := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1,
		Steps: 60, Batch: 16,
		LR:       func(int) float64 { return 0.05 },
		Momentum: 0.9,
		Timeout:  60 * time.Second,
		Seed:     12,
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalFinal(t, model, res.Final, test); acc < 0.85 {
		t.Fatalf("momentum run failed to converge: %.3f", acc)
	}
}

func TestNodeIDs(t *testing.T) {
	if ServerID(3) != "ps3" || WorkerID(0) != "wrk0" {
		t.Fatalf("unexpected IDs %s %s", ServerID(3), WorkerID(0))
	}
}
