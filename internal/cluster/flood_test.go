package cluster

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gar"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// floodHeapSampler tracks the HeapAlloc high-water mark while the deployment
// under flood runs.
type floodHeapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startFloodSampler() *floodHeapSampler {
	s := &floodHeapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms runtime.MemStats
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > s.peak {
				s.peak = ms.HeapAlloc
			}
			select {
			case <-s.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

func (s *floodHeapSampler) Peak() uint64 {
	close(s.stop)
	<-s.done
	return s.peak
}

// TestFloodBoundedMemoryAndLiveness is the chaos/soak check the bounded
// mailboxes exist for: a Byzantine-rate sender sprays oversized junk frames
// at one parameter server over real TCP, as fast as loopback allows, for
// the whole training run. Two properties must hold at once:
//
//  1. Memory stays bounded: peak heap remains under a budget derived from
//     nodes × mailboxCap × frameSize — the attacker occupies at most its
//     per-sender quota at the receiver, however fast it sends. Before this
//     runtime, every sprayed frame accumulated in an unbounded inbox.
//  2. The quorum path stays live: training converges, because drop-oldest
//     evicts only within the flooder's own per-sender queue and the junk
//     frames (wrong dimension) die at the validator, never in a quorum.
func TestFloodBoundedMemoryAndLiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up 7 TCP listeners and sprays loopback for the whole run")
	}
	const (
		numServers, numWorkers = 3, 3
		steps, batch           = 40, 16
		mailboxCap             = 16
		floodDim               = 4096 // ~32 KiB per junk frame
	)
	model, train, test := testProblem(500)
	theta0 := model.ParamVector()
	mbox := transport.MailboxConfig{Cap: mailboxCap, Policy: transport.DropOldest}

	ids := make([]string, 0, numServers+numWorkers)
	for i := 0; i < numServers; i++ {
		ids = append(ids, ServerID(i))
	}
	for j := 0; j < numWorkers; j++ {
		ids = append(ids, WorkerID(j))
	}
	nodes := make(map[string]*transport.TCPNode, len(ids))
	for _, id := range ids {
		n, err := transport.ListenTCP(id, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		if err := n.SetMailbox(mbox); err != nil {
			t.Fatal(err)
		}
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, id := range ids {
			if id != n.ID() {
				if err := n.AddPeer(id, nodes[id].Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	target := nodes[ServerID(0)]

	// The flooder dials the target like any peer; the target's read loop
	// accepts any authenticated hello, which is exactly the surface a
	// Byzantine stranger has.
	flood, err := transport.ListenTCP("flood", "127.0.0.1:0",
		map[string]string{target.ID(): target.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer flood.Close()
	var sprayed atomic.Uint64
	stopFlood := make(chan struct{})
	floodDone := make(chan struct{})
	junk := make(tensor.Vector, floodDim)
	go func() {
		defer close(floodDone)
		for {
			select {
			case <-stopFlood:
				return
			default:
			}
			if err := flood.Send(target.ID(), transport.Message{
				Kind: transport.KindGradient, Step: 1, Vec: junk,
			}); err != nil {
				return
			}
			sprayed.Add(1)
		}
	}()

	// Phase 1 — before anyone drains the target, the spray must hit the
	// per-sender cap and overflow deterministically: the bound is doing the
	// work, not the server's drain rate.
	deadline := time.Now().Add(10 * time.Second)
	for target.DroppedOverflow() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if target.DroppedOverflow() == 0 {
		t.Fatal("flood never overflowed the per-sender bound")
	}

	// Phase 2 — run the full deployment with the spray still going.
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	// nodes is the whole population the target could buffer for: the
	// deployment plus the flooder.
	frameBytes := uint64(8*floodDim + 128)
	budget := base.HeapAlloc + (32 << 20) +
		8*uint64(numServers+numWorkers+1)*mailboxCap*frameBytes
	sampler := startFloodSampler()

	serverIDs, workerIDs := ids[:numServers], ids[numServers:]
	rng := tensor.NewRNG(11)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		finals []tensor.Vector
		errs   []error
	)
	for i := 0; i < numServers; i++ {
		peers := make([]string, 0, numServers-1)
		for k, id := range serverIDs {
			if k != i {
				peers = append(peers, id)
			}
		}
		scfg := ServerConfig{
			ID: serverIDs[i], Workers: workerIDs, Peers: peers,
			Init:     theta0,
			GradRule: gar.MultiKrum{F: 0}, ParamRule: gar.Median{},
			QuorumGradients: gar.MinQuorum(0),
			QuorumParams:    gar.MinQuorum(0),
			Steps:           steps,
			LR:              func(int) float64 { return 0.2 },
			Timeout:         time.Minute,
		}
		ep := nodes[serverIDs[i]]
		wg.Add(1)
		go func() {
			defer wg.Done()
			theta, err := RunServer(ep, scfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			finals = append(finals, theta)
		}()
	}
	for j := 0; j < numWorkers; j++ {
		wcfg := WorkerConfig{
			ID: workerIDs[j], Servers: serverIDs,
			Model:   model.Clone(),
			Sampler: dataset.NewSampler(train, rng.Split()),
			Batch:   batch, ParamRule: gar.Median{},
			QuorumParams: gar.MinQuorum(0),
			Steps:        steps,
			Timeout:      time.Minute,
		}
		ep := nodes[workerIDs[j]]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ep, wcfg); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(stopFlood)
	<-floodDone
	peak := sampler.Peak()

	if len(errs) > 0 {
		t.Fatalf("deployment under flood failed: %v", errs[0])
	}
	if len(finals) != numServers {
		t.Fatalf("expected %d finals, got %d", numServers, len(finals))
	}
	final, err := gar.Median{}.Aggregate(finals)
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalFinal(t, model, final, test); acc < 0.8 {
		t.Fatalf("quorum path lost liveness under flood: accuracy %.3f", acc)
	}
	if n := sprayed.Load(); n < 1000 {
		t.Fatalf("flooder only managed %d frames; not a Byzantine-rate spray", n)
	}
	if peak > budget {
		t.Fatalf("peak heap %d exceeded the n×cap×frame budget %d (base %d)",
			peak, budget, base.HeapAlloc)
	}
	t.Logf("sprayed %d junk frames (%d dropped at the bound), peak heap %.1f MiB of %.1f MiB budget",
		sprayed.Load(), target.DroppedOverflow(),
		float64(peak)/(1<<20), float64(budget)/(1<<20))
}
