package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/gar"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// TestLiveShardedConverges runs the full live protocol with every vector
// streamed as chunk frames (a prime shard size that does not divide the
// model dimension) and incremental shard quorums on the receive side.
func TestLiveShardedConverges(t *testing.T) {
	model, train, test := testProblem(100)
	cfg := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 6, FWorkers: 1,
		Steps: 80, Batch: 16,
		LR:        func(int) float64 { return 0.2 },
		Timeout:   60 * time.Second,
		Seed:      1,
		ShardSize: 13,
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ServerParams) != 6 {
		t.Fatalf("expected 6 honest finals, got %d", len(res.ServerParams))
	}
	if acc := evalFinal(t, model, res.Final, test); acc < 0.9 {
		t.Fatalf("sharded GuanYu failed to converge: accuracy %.3f", acc)
	}
}

// TestLiveShardedSurvivesByzantineAndFaults arms Byzantine workers AND
// per-shard-frame network faults at once: the incremental quorums must
// absorb duplicated and delay-spiked chunk frames while Multi-Krum's
// streaming two-pass path filters the attacked gradients. Faults that can
// defer a frame past its round (drops, reorder holds) are excluded here:
// a pinned membership cannot substitute senders, so its liveness needs
// within-round delivery — see the ShardCollector doc and
// TestLiveShardedMedianSurvivesDrops for the lossy-link mode.
func TestLiveShardedSurvivesByzantineAndFaults(t *testing.T) {
	model, train, test := testProblem(200)
	sus := stats.NewSuspicion()
	cfg := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 6, FServers: 1,
		NumWorkers: 9, FWorkers: 2,
		Steps: 60, Batch: 16,
		LR:      func(int) float64 { return 0.2 },
		Timeout: 60 * time.Second,
		Seed:    2,
		WorkerAttacks: map[int]attack.Attack{
			0: attack.SignFlip{Scale: 30},
			1: attack.SignFlip{Scale: 30},
		},
		Faults: transport.NewFaultInjector(transport.FaultConfig{
			Seed: 3, Duplicate: 0.05, DelayRate: 0.1, DelaySpike: 0.002,
		}),
		Suspicion: sus,
		ShardSize: 13,
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalFinal(t, model, res.Final, test); acc < 0.85 {
		t.Fatalf("sharded GuanYu under attack+faults: accuracy %.3f", acc)
	}
	// The streaming Multi-Krum path must keep feeding the accountability
	// signal: the attacked workers should top the exclusion ranking.
	ranking := sus.Ranking()
	if len(ranking) < 2 {
		t.Fatalf("no suspicion recorded on the sharded path")
	}
	top := map[string]bool{ranking[0].Sender: true, ranking[1].Sender: true}
	if !top[WorkerID(0)] || !top[WorkerID(1)] {
		t.Fatalf("attacked workers not top-ranked: %v", ranking[:2])
	}
}

// TestLiveShardedMedianSurvivesDrops covers the lossy-link case: with a
// coordinate-wise gradient rule, every shard's quorum is its own first q
// arrivals, so a dropped or reorder-held chunk frame costs its sender one
// shard's slot and nothing else — the per-shard counterpart of the
// whole-vector quorum margin. Populations are sized for real margins
// (n−q = 3 servers, n̄−q̄ = 5 workers), because every lost frame consumes
// margin exactly as a silent sender would.
func TestLiveShardedMedianSurvivesDrops(t *testing.T) {
	model, train, test := testProblem(400)
	cfg := LiveConfig{
		Model:      model,
		Train:      train,
		NumServers: 8, FServers: 1,
		NumWorkers: 12, FWorkers: 2,
		Steps: 40, Batch: 16,
		LR:      func(int) float64 { return 0.2 },
		Timeout: 60 * time.Second,
		Seed:    5,
		Rule:    gar.Median{},
		Faults: transport.NewFaultInjector(transport.FaultConfig{
			Seed: 6, Drop: 0.01, Duplicate: 0.02, Reorder: 0.02,
		}),
		ShardSize: 13,
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalFinal(t, model, res.Final, test); acc < 0.85 {
		t.Fatalf("sharded median under drops: accuracy %.3f", acc)
	}
}

// TestShardedOverTCP runs sharded node loops over real TCP sockets: chunk
// frames on the wire, hello-authenticated connections, incremental shard
// quorums at the receivers, plus one whole-vector (unsharded) worker to
// prove the two framings interoperate inside one deployment.
func TestShardedOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up 12 TCP listeners")
	}
	const (
		numServers, fServers = 6, 1
		numWorkers, fWorkers = 6, 1
		steps, batch         = 30, 16
	)
	model, train, test := testProblem(300)
	theta0 := model.ParamVector()
	dim := len(theta0)
	shardSize := dim/3 + 1 // three shards, the last a short remainder

	ids := make([]string, 0, numServers+numWorkers)
	for i := 0; i < numServers; i++ {
		ids = append(ids, ServerID(i))
	}
	for j := 0; j < numWorkers; j++ {
		ids = append(ids, WorkerID(j))
	}
	nodes := make(map[string]*transport.TCPNode, len(ids))
	for _, id := range ids {
		n, err := transport.ListenTCP(id, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, id := range ids {
			if id != n.ID() {
				if err := n.AddPeer(id, nodes[id].Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	serverIDs, workerIDs := ids[:numServers], ids[numServers:]
	rng := tensor.NewRNG(77)

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		finals []tensor.Vector
		errs   []error
	)
	for i := 0; i < numServers; i++ {
		peers := make([]string, 0, numServers-1)
		for k, id := range serverIDs {
			if k != i {
				peers = append(peers, id)
			}
		}
		scfg := ServerConfig{
			ID: serverIDs[i], Workers: workerIDs, Peers: peers,
			Init:     theta0,
			GradRule: gar.MultiKrum{F: fWorkers}, ParamRule: gar.Median{},
			QuorumGradients: gar.MinQuorum(fWorkers),
			QuorumParams:    gar.MinQuorum(fServers),
			Steps:           steps,
			LR:              func(int) float64 { return 0.2 },
			Timeout:         time.Minute,
			ShardSize:       shardSize,
		}
		ep := nodes[serverIDs[i]]
		wg.Add(1)
		go func() {
			defer wg.Done()
			theta, err := RunServer(ep, scfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			finals = append(finals, theta)
		}()
	}
	for j := 0; j < numWorkers; j++ {
		wcfg := WorkerConfig{
			ID: workerIDs[j], Servers: serverIDs,
			Model:   model.Clone(),
			Sampler: dataset.NewSampler(train, rng.Split()),
			Batch:   batch, ParamRule: gar.Median{},
			QuorumParams: gar.MinQuorum(fServers),
			Steps:        steps,
			Timeout:      time.Minute,
			ShardSize:    shardSize,
		}
		if j == numWorkers-1 {
			wcfg.ShardSize = 0 // whole-vector node inside a sharded deployment
		}
		ep := nodes[workerIDs[j]]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ep, wcfg); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("sharded TCP deployment failed: %v", errs[0])
	}
	if len(finals) != numServers {
		t.Fatalf("expected %d finals, got %d", numServers, len(finals))
	}
	final, err := gar.Median{}.Aggregate(finals)
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalFinal(t, model, final, test); acc < 0.8 {
		t.Fatalf("sharded TCP deployment failed to converge: accuracy %.3f", acc)
	}
}

// TestShardedTCPDropCountersUnderRogue arms one sharded live TCP run so
// that every inbound drop class fires independently, and asserts each
// through its own counter:
//
//   - DroppedOverflow: a rogue peer bursts 100 malformed frames at ps0
//     before anyone drains — with a drop-oldest cap of 8, exactly the
//     excess is evicted at the mailbox, deterministically.
//   - DroppedFuture: the rogue's last frames claim a step far beyond the
//     collector's horizon; the survivors of the burst are consumed at
//     server startup and counted there.
//   - DroppedMalformed: the remaining survivors carry shard tags that
//     disagree with the deployment layout and die in the shard collector.
//   - ForgedDropped: a second raw connection hellos as "rogue2" and sends
//     frames whose From claims another identity — dropped at the read
//     loop before any mailbox.
//   - DroppedUnnegotiated: the same connection sends compressed frames
//     under a scheme its hello never announced.
//
// All five classes must come back, exactly, both live through the metrics
// registry handle and in the unified NodeStats after the run. Training
// then converges anyway: every drop class lands in the rogues' own
// per-sender queues or in validation, never in an honest quorum slot.
func TestShardedTCPDropCountersUnderRogue(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up 7 TCP listeners")
	}
	const (
		numServers, numWorkers = 3, 3
		steps, batch           = 40, 16
		shardSize              = 13
		mailboxCap             = 8
		burst                  = 100
		futureFrames           = 4
		forgedFrames           = 5
		unnegFrames            = 3
	)
	model, train, test := testProblem(700)
	theta0 := model.ParamVector()

	ids := make([]string, 0, numServers+numWorkers)
	for i := 0; i < numServers; i++ {
		ids = append(ids, ServerID(i))
	}
	for j := 0; j < numWorkers; j++ {
		ids = append(ids, WorkerID(j))
	}
	nodes := make(map[string]*transport.TCPNode, len(ids))
	for _, id := range ids {
		n, err := transport.ListenTCP(id, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		if err := n.SetMailbox(transport.MailboxConfig{
			Cap: mailboxCap, Policy: transport.DropOldest,
		}); err != nil {
			t.Fatal(err)
		}
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, id := range ids {
			if id != n.ID() {
				if err := n.AddPeer(id, nodes[id].Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	target := nodes[ServerID(0)]
	// The live registry handle, attached before any rogue traffic so every
	// drop below is mirrored as it happens; NodeStats must report the same
	// exact counts through it after the run.
	handle := metrics.NewRegistry().Node(target.ID())
	target.SetMetrics(handle)

	rogue, err := transport.ListenTCP("rogue", "127.0.0.1:0",
		map[string]string{target.ID(): target.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	// The burst: malformed shard tags (a count no honest layout produces),
	// then frames claiming a step far beyond the horizon. Nobody drains
	// ps0 yet, so drop-oldest must evict exactly the excess, leaving the
	// newest mailboxCap frames: futureFrames future ones preceded by
	// malformed ones.
	for i := 0; i < burst; i++ {
		if err := rogue.Send(target.ID(), transport.Message{
			Kind: transport.KindGradient, Step: 0,
			Vec:   tensor.Vector{1},
			Shard: transport.ShardMeta{Index: 0, Count: 99, Offset: 0},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < futureFrames; i++ {
		if err := rogue.Send(target.ID(), transport.Message{
			Kind: transport.KindGradient, Step: 5000, Vec: tensor.Vector{1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	const wantOverflow = burst + futureFrames - mailboxCap
	deadline := time.Now().Add(10 * time.Second)
	for target.DroppedOverflow() < wantOverflow && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := target.DroppedOverflow(); got != wantOverflow {
		t.Fatalf("DroppedOverflow = %d, want %d before the run starts", got, wantOverflow)
	}

	// A second adversary speaks the raw wire protocol: hello as "rogue2",
	// then frames forging other senders (dropped at the read loop, exactly
	// counted) and compressed frames under a scheme the hello never
	// announced (dropped as un-negotiated). Neither class ever reaches a
	// mailbox or collector, so the exact counts above are undisturbed.
	raw, err := net.Dial("tcp", target.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	stream, err := transport.AppendHello(nil, "rogue2", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < forgedFrames; i++ {
		stream, err = transport.AppendMessage(stream, &transport.Message{
			From: "wrk0", Kind: transport.KindGradient, Step: 0, Vec: tensor.Vector{1},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < unnegFrames; i++ {
		stream, err = transport.AppendMessage(stream, &transport.Message{
			From: "rogue2", Kind: transport.KindGradient, Step: 0,
			Comp: transport.CompMeta{Scheme: 1, Dim: 1, Data: []byte{0, 0, 0, 0}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := raw.Write(stream); err != nil {
		t.Fatal(err)
	}
	for (target.ForgedDropped() < forgedFrames ||
		target.DroppedUnnegotiated() < unnegFrames) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := target.ForgedDropped(); got != forgedFrames {
		t.Fatalf("ForgedDropped = %d, want %d before the run starts", got, forgedFrames)
	}
	if got := target.DroppedUnnegotiated(); got != unnegFrames {
		t.Fatalf("DroppedUnnegotiated = %d, want %d before the run starts", got, unnegFrames)
	}

	serverIDs, workerIDs := ids[:numServers], ids[numServers:]
	rng := tensor.NewRNG(23)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		finals []tensor.Vector
		errs   []error
	)
	var targetStats NodeStats
	for i := 0; i < numServers; i++ {
		peers := make([]string, 0, numServers-1)
		for k, id := range serverIDs {
			if k != i {
				peers = append(peers, id)
			}
		}
		scfg := ServerConfig{
			ID: serverIDs[i], Workers: workerIDs, Peers: peers,
			Init:     theta0,
			GradRule: gar.MultiKrum{F: 0}, ParamRule: gar.Median{},
			QuorumGradients: gar.MinQuorum(0),
			QuorumParams:    gar.MinQuorum(0),
			Steps:           steps,
			LR:              func(int) float64 { return 0.2 },
			Timeout:         time.Minute,
			ShardSize:       shardSize,
		}
		if i == 0 {
			scfg.Stats = &targetStats
			scfg.Metrics = handle
		}
		ep := nodes[serverIDs[i]]
		wg.Add(1)
		go func() {
			defer wg.Done()
			theta, err := RunServer(ep, scfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			finals = append(finals, theta)
		}()
	}
	for j := 0; j < numWorkers; j++ {
		wcfg := WorkerConfig{
			ID: workerIDs[j], Servers: serverIDs,
			Model:   model.Clone(),
			Sampler: dataset.NewSampler(train, rng.Split()),
			Batch:   batch, ParamRule: gar.Median{},
			QuorumParams: gar.MinQuorum(0),
			Steps:        steps,
			Timeout:      time.Minute,
			ShardSize:    shardSize,
		}
		ep := nodes[workerIDs[j]]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ep, wcfg); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("sharded deployment under rogue failed: %v", errs[0])
	}
	if len(finals) != numServers {
		t.Fatalf("expected %d finals, got %d", numServers, len(finals))
	}

	if targetStats.DroppedFuture != futureFrames {
		t.Errorf("DroppedFuture = %d, want %d", targetStats.DroppedFuture, futureFrames)
	}
	if want := mailboxCap - futureFrames; targetStats.DroppedMalformed != want {
		t.Errorf("DroppedMalformed = %d, want %d", targetStats.DroppedMalformed, want)
	}
	if got := target.DroppedOverflow(); got != wantOverflow {
		t.Errorf("DroppedOverflow moved during the run: %d, want %d (honest traffic must not overflow)",
			got, wantOverflow)
	}
	// The unified NodeStats must carry every transport-layer class too,
	// read back from the live registry handle — not just the collector's
	// two counters.
	if targetStats.ForgedDropped != forgedFrames {
		t.Errorf("NodeStats.ForgedDropped = %d, want %d", targetStats.ForgedDropped, forgedFrames)
	}
	if targetStats.DroppedUnnegotiated != unnegFrames {
		t.Errorf("NodeStats.DroppedUnnegotiated = %d, want %d",
			targetStats.DroppedUnnegotiated, unnegFrames)
	}
	if targetStats.DroppedOverflow != wantOverflow {
		t.Errorf("NodeStats.DroppedOverflow = %d, want %d", targetStats.DroppedOverflow, wantOverflow)
	}
	if targetStats.Steps != steps {
		t.Errorf("NodeStats.Steps = %d, want %d", targetStats.Steps, steps)
	}
	final, err := gar.Median{}.Aggregate(finals)
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalFinal(t, model, final, test); acc < 0.8 {
		t.Fatalf("rogue drops broke convergence: accuracy %.3f", acc)
	}
}
