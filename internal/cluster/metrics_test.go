package cluster

import (
	"testing"
	"time"

	"repro/internal/gar"
	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// TestCancelledServerStillReportsLiveCounters is the regression for the
// snapshot-at-exit stats bug: counters used to exist only inside the
// collector, so nothing could be read mid-run and a cancelled node's
// NodeStats were whatever the deferred snapshot caught. With the live
// registry handle, the drops a rogue feeder provokes are visible WHILE the
// server is still blocked on its quorum, and when the network is torn down
// under it the same exact totals come back through NodeStats — error path
// included. A cancelled node must also never read as cleanly done, so a
// /healthz scrape reports it stalled instead of finished.
func TestCancelledServerStillReportsLiveCounters(t *testing.T) {
	const futureFrames = 7
	network := transport.NewChanNetwork(nil)
	defer network.Close()
	ep, err := network.Register("ps0")
	if err != nil {
		t.Fatal(err)
	}
	feeder, err := network.Register("wrk0")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	handle := reg.Node("ps0")
	network.SetNodeMetrics("ps0", handle)

	var st NodeStats
	done := make(chan error, 1)
	go func() {
		_, err := RunServer(ep, ServerConfig{
			ID: "ps0", Workers: []string{"wrk0"},
			Init:     tensor.Vector{0, 0},
			GradRule: gar.Mean{}, ParamRule: gar.Median{},
			QuorumGradients: 1, QuorumParams: 1,
			Steps: 3, LR: func(int) float64 { return 0.1 },
			Timeout: time.Minute,
			Stats:   &st, Metrics: handle,
		})
		done <- err
	}()

	// The feeder sends only beyond-horizon junk, so the server stays
	// blocked on its step-0 gradient quorum while the drops accumulate.
	for i := 0; i < futureFrames; i++ {
		if err := feeder.Send("ps0", transport.Message{
			Kind: transport.KindGradient, Step: 5000, Vec: tensor.Vector{1, 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for handle.DroppedFuture.Load() < futureFrames && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// The mid-run read the old defer-only plumbing could not provide.
	if got := handle.DroppedFuture.Load(); got != futureFrames {
		t.Fatalf("live DroppedFuture = %d mid-run, want %d", got, futureFrames)
	}

	// Tear the network down under the blocked server.
	network.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("server must fail when its endpoint closes mid-quorum")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not return after network close")
	}

	if st.DroppedFuture != futureFrames {
		t.Fatalf("NodeStats.DroppedFuture = %d after cancellation, want %d",
			st.DroppedFuture, futureFrames)
	}
	if st.Steps != 0 {
		t.Fatalf("NodeStats.Steps = %d for a run cancelled at step 0, want 0", st.Steps)
	}
	if handle.Done() {
		t.Fatal("a cancelled run must not read as cleanly done")
	}
	if h := reg.CheckHealth(time.Nanosecond); h.Healthy {
		t.Fatal("a cancelled, never-finished node must report unhealthy under a tiny stall window")
	}
}
