package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/gar"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Crash-recovery and elastic membership. A parameter server's entire
// protocol-relevant state is (step, θ, momentum velocity, collector
// horizon): everything else — collector buffers, compression stream
// state — is per-connection and rebuilt from live traffic after a
// restart (TCP redials reset both ends' codec streams; in-process
// deployments call Compressor.Reset). The Checkpoint codec below
// serialises that state with bit-exact float round-tripping, the
// persistence helpers write it atomically so a crash mid-write can never
// leave a half-checkpoint behind, and RejoinMedian lets a restarted
// server catch up to the live cluster by adopting the coordinate-wise
// median of a quorum of peers' contraction-round broadcasts — the same
// aggregation the paper's phase 3 applies every step, so the adopted
// state is within the contraction bound of the honest servers' states
// whenever at most f of the q sampled peers are Byzantine.
//
// The Roster type is the membership side: a step-indexed sequence of
// member sets, changed only at step boundaries by join/leave/replace
// announcements (hello v3 frames, see transport/codec.go and WIRE.md §10).
// Collectors consult Roster.Allows so quorum math is always evaluated
// against the roster in force at the step a frame claims, and the TCP
// admission gate consults Roster.AdmitHello so a departed node cannot
// even re-establish a connection.

// checkpointMagic brands every checkpoint file; a decoder rejects
// anything else before reading a single length field.
const checkpointMagic = "GYCK"

// checkpointVersion is the current format version. Decoders reject other
// versions outright — checkpoint files are node-local scratch state, not
// an interchange format, so there is no cross-version migration path.
const checkpointVersion = 1

// checkpoint format flag bits.
const ckptFlagVelocity = 1 << 0 // a momentum velocity vector follows θ

// Checkpoint is one server's resumable state after completing Step.
type Checkpoint struct {
	// ID is the node the checkpoint belongs to; restores refuse a
	// mismatched ID so two servers sharing a directory cannot adopt each
	// other's state.
	ID string
	// Step is the last fully completed protocol step; a restore resumes
	// at Step+1.
	Step int
	// Theta is the parameter vector θ after Step's update (and, when the
	// exchange ran, contraction).
	Theta tensor.Vector
	// Velocity is the heavy-ball momentum accumulator, nil when the run
	// uses plain SGD.
	Velocity tensor.Vector
	// Horizon is the collector's future-step buffering bound in force
	// when the checkpoint was taken (0 means transport.DefaultHorizon),
	// restored so a resumed node buffers exactly as widely as before.
	Horizon int
}

// EncodeCheckpoint serialises c. Floats are stored as raw little-endian
// IEEE-754 bits, so NaN and ±Inf coordinates round-trip bit-exactly; the
// trailing CRC-32 catches torn or corrupted files before any coordinate
// reaches arithmetic.
func EncodeCheckpoint(c Checkpoint) ([]byte, error) {
	if c.ID == "" || len(c.ID) > transport.MaxFromLen {
		return nil, fmt.Errorf("cluster: checkpoint ID length %d outside [1,%d]", len(c.ID), transport.MaxFromLen)
	}
	if c.Step < 0 {
		return nil, fmt.Errorf("cluster: negative checkpoint step %d", c.Step)
	}
	if c.Horizon < 0 {
		return nil, fmt.Errorf("cluster: negative checkpoint horizon %d", c.Horizon)
	}
	if len(c.Theta) == 0 || len(c.Theta) > transport.MaxVecLen {
		return nil, fmt.Errorf("cluster: checkpoint dimension %d outside [1,%d]", len(c.Theta), transport.MaxVecLen)
	}
	if c.Velocity != nil && len(c.Velocity) != len(c.Theta) {
		return nil, fmt.Errorf("cluster: velocity dimension %d != θ dimension %d", len(c.Velocity), len(c.Theta))
	}
	var flags uint8
	if c.Velocity != nil {
		flags |= ckptFlagVelocity
	}
	size := 4 + 2 + 1 + 1 + len(c.ID) + 8 + 4 + 4 + 8*len(c.Theta) + 8*len(c.Velocity) + 4
	buf := make([]byte, 0, size)
	buf = append(buf, checkpointMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, checkpointVersion)
	buf = append(buf, flags, uint8(len(c.ID)))
	buf = append(buf, c.ID...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Step))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Horizon))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Theta)))
	for _, v := range c.Theta {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range c.Velocity {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// DecodeCheckpoint parses an encoded checkpoint. Every length is bounded
// and the expected total size is computed and compared before any
// dimension-sized allocation, so a truncated, oversized or corrupted file
// is rejected without allocating what its header claims.
func DecodeCheckpoint(data []byte) (Checkpoint, error) {
	var c Checkpoint
	// Fixed prefix through the ID length byte.
	if len(data) < 4+2+1+1 {
		return c, fmt.Errorf("cluster: checkpoint truncated at %d bytes", len(data))
	}
	if string(data[:4]) != checkpointMagic {
		return c, fmt.Errorf("cluster: bad checkpoint magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != checkpointVersion {
		return c, fmt.Errorf("cluster: unsupported checkpoint version %d (want %d)", v, checkpointVersion)
	}
	flags := data[6]
	if flags&^uint8(ckptFlagVelocity) != 0 {
		return c, fmt.Errorf("cluster: unknown checkpoint flags %#x", flags)
	}
	idLen := int(data[7])
	if idLen == 0 {
		return c, fmt.Errorf("cluster: empty checkpoint ID")
	}
	off := 8
	if len(data) < off+idLen+8+4+4 {
		return c, fmt.Errorf("cluster: checkpoint truncated at %d bytes", len(data))
	}
	c.ID = string(data[off : off+idLen])
	off += idLen
	step := binary.LittleEndian.Uint64(data[off : off+8])
	off += 8
	if step > math.MaxInt64/2 {
		return c, fmt.Errorf("cluster: absurd checkpoint step %d", step)
	}
	c.Step = int(step)
	c.Horizon = int(binary.LittleEndian.Uint32(data[off : off+4]))
	off += 4
	dim := int(binary.LittleEndian.Uint32(data[off : off+4]))
	off += 4
	if dim == 0 || dim > transport.MaxVecLen {
		return c, fmt.Errorf("cluster: checkpoint dimension %d outside [1,%d]", dim, transport.MaxVecLen)
	}
	vecs := 1
	if flags&ckptFlagVelocity != 0 {
		vecs = 2
	}
	// Exact-size check before allocating dim coordinates: a file that is
	// one byte short or long is corrupt, not approximately right.
	if want := off + vecs*8*dim + 4; len(data) != want {
		return c, fmt.Errorf("cluster: checkpoint is %d bytes, format says %d", len(data), want)
	}
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != sum {
		return c, fmt.Errorf("cluster: checkpoint checksum mismatch (stored %#x, computed %#x)", sum, got)
	}
	c.Theta = make(tensor.Vector, dim)
	for i := range c.Theta {
		c.Theta[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
		off += 8
	}
	if flags&ckptFlagVelocity != 0 {
		c.Velocity = make(tensor.Vector, dim)
		for i := range c.Velocity {
			c.Velocity[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
			off += 8
		}
	}
	return c, nil
}

// CheckpointPath returns the canonical file path for a node's checkpoint
// in dir. One file per node, overwritten in place (atomically) at every
// cadence — a restore always reads the newest complete state.
func CheckpointPath(dir, id string) string {
	return filepath.Join(dir, id+".ckpt")
}

// WriteFile persists c into dir (created if absent) with a
// write-to-temp, fsync, rename sequence: the visible file is always a
// complete checkpoint, never a torn one, because rename is atomic on
// POSIX filesystems and the data is durable before the rename makes it
// the current checkpoint.
func (c Checkpoint) WriteFile(dir string) error {
	data, err := EncodeCheckpoint(c)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cluster: checkpoint dir: %w", err)
	}
	final := CheckpointPath(dir, c.ID)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: checkpoint write: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cluster: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cluster: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: checkpoint rename: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates the node's checkpoint from dir,
// refusing one that belongs to a different node ID.
func LoadCheckpoint(dir, id string) (Checkpoint, error) {
	data, err := os.ReadFile(CheckpointPath(dir, id))
	if err != nil {
		return Checkpoint{}, fmt.Errorf("cluster: checkpoint read: %w", err)
	}
	c, err := DecodeCheckpoint(data)
	if err != nil {
		return Checkpoint{}, err
	}
	if c.ID != id {
		return Checkpoint{}, fmt.Errorf("cluster: checkpoint belongs to %q, not %q", c.ID, id)
	}
	return c, nil
}

// CheckpointSpec configures periodic checkpointing on a server.
type CheckpointSpec struct {
	// Dir is the directory checkpoints are written into (one file per
	// node ID, atomically replaced).
	Dir string
	// Every is the cadence in steps: the server persists its state after
	// completing steps Every−1, 2·Every−1, … (i.e. every Every steps).
	// Values ≤ 0 disable periodic writes.
	Every int
}

// RejoinMedian is the restarted server's catch-up path: listen to the
// live contraction-round traffic (KindPeerParams) already flowing between
// the surviving servers, latch onto the first step ≥ minStep for which q
// distinct senders' vectors arrive, and adopt their coordinate-wise
// median. That is exactly the aggregation every server applies in phase 3,
// so with at most f Byzantine among the q sampled peers the adopted θ is
// within the contraction bound of the honest servers' states — the
// rejoiner re-enters the protocol as a full participant, not as a straggler
// replaying from a stale checkpoint. Returns the adopted vector and the
// step it was sampled at (the rejoiner resumes at step+1).
//
// col must be the same collector the server loop will keep using:
// CollectAny buffers every frame at or above its floor, so traffic for the
// resumed step survives the discovery phase instead of being consumed and
// lost. On timeout (no step ever fills q) the error wraps
// transport.ErrQuorumTimeout and the caller falls back to resuming from
// the checkpoint alone.
func RejoinMedian(col *transport.Collector, minStep, q, dim int, timeout time.Duration) (tensor.Vector, int, error) {
	if q <= 0 {
		return nil, 0, fmt.Errorf("cluster: rejoin needs a positive quorum, got %d", q)
	}
	msgs, step, err := col.CollectAny(transport.KindPeerParams, minStep, q, timeout)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: rejoin: %w", err)
	}
	vecs := make([]tensor.Vector, len(msgs))
	for i, m := range msgs {
		if len(m.Vec) != dim {
			return nil, 0, fmt.Errorf("cluster: rejoin: peer %s sent dimension %d, deployment is %d", m.From, len(m.Vec), dim)
		}
		vecs[i] = m.Vec
	}
	theta, err := gar.Median{}.Aggregate(vecs)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: rejoin median: %w", err)
	}
	return theta, step, nil
}

// rosterEpoch is one contiguous step range's member set: in force from
// step (inclusive) until the next epoch's step.
type rosterEpoch struct {
	step    int
	members map[string]struct{}
}

// Roster is the step-indexed membership of a deployment: a sequence of
// epochs, each a member set in force from its effective step until the
// next change. Changes are announced ahead of their effective step
// (hello v3 join/leave/replace frames) and always land on step
// boundaries, so every honest node evaluates step t's quorum against the
// same member set regardless of when the announcement physically arrived.
//
// Safe for concurrent use: collectors call Allows from the node loop
// while the transport's admission callback calls AdmitHello/Apply from
// accept goroutines.
type Roster struct {
	mu     sync.RWMutex
	epochs []rosterEpoch // ascending by step; epochs[0].step == 0
}

// NewRoster builds a roster whose initial members are in force from step 0.
func NewRoster(members ...string) *Roster {
	set := make(map[string]struct{}, len(members))
	for _, id := range members {
		set[id] = struct{}{}
	}
	return &Roster{epochs: []rosterEpoch{{step: 0, members: set}}}
}

// epochAt returns the member set in force at step (callers hold r.mu).
func (r *Roster) epochAt(step int) map[string]struct{} {
	// Epochs are few (one per membership change); scan from the newest.
	for i := len(r.epochs) - 1; i >= 0; i-- {
		if r.epochs[i].step <= step {
			return r.epochs[i].members
		}
	}
	return r.epochs[0].members
}

// Allows reports whether id is a member of the roster in force at step —
// the Membership hook both collector types consume.
func (r *Roster) Allows(step int, id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.epochAt(step)[id]
	return ok
}

// Members returns the sorted member set in force at step.
func (r *Roster) Members(step int) []string {
	r.mu.RLock()
	set := r.epochAt(step)
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// AdmitHello is the connection-admission policy derived from the roster's
// LATEST epoch (the membership in force going forward — admission happens
// at handshake time, before any frame carries a step):
//
//   - member: the node must already be a member,
//   - join:   the node must NOT already be a member,
//   - leave:  only members may announce departures,
//   - replace: the replaced node must be a member and the replacement
//     must not.
//
// AdmitHello only checks; an accepted roster-changing hello takes effect
// when the caller passes it to Apply. Plug the pair into
// transport.TCPNode.SetAdmission:
//
//	node.SetAdmission(func(h transport.Hello) bool {
//	        if !roster.AdmitHello(h) { return false }
//	        if h.Intent != transport.IntentMember { _ = roster.Apply(h) }
//	        return true
//	})
func (r *Roster) AdmitHello(h transport.Hello) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	latest := r.epochs[len(r.epochs)-1].members
	_, isMember := latest[h.ID]
	switch h.Intent {
	case transport.IntentMember:
		return isMember
	case transport.IntentJoin:
		return !isMember
	case transport.IntentLeave:
		return isMember
	case transport.IntentReplace:
		_, replacedIsMember := latest[h.Replaces]
		return replacedIsMember && !isMember
	default:
		return false
	}
}

// Apply folds one roster-changing announcement into the roster, effective
// at h.EffectiveStep. The change must not predate the newest existing
// epoch (membership history is append-only; retroactive edits would let
// two nodes disagree about a past step's quorum). Announcements with
// IntentMember are no-ops. Idempotent: re-applying an announcement that
// already took effect (a rejoining node re-sends its hello on every
// redial) is accepted without growing the epoch list.
func (r *Roster) Apply(h transport.Hello) error {
	if err := h.Validate(); err != nil {
		return err
	}
	if h.Intent == transport.IntentMember {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	newest := &r.epochs[len(r.epochs)-1]
	base := newest.members
	_, isMember := base[h.ID]
	// Idempotency first: a change already reflected in the newest epoch is
	// accepted as a no-op even when its effective step is long past (the
	// re-announce path), BEFORE the append-only guard below can reject it.
	switch h.Intent {
	case transport.IntentJoin:
		if isMember {
			return nil
		}
	case transport.IntentLeave:
		if !isMember {
			return nil
		}
	case transport.IntentReplace:
		if _, replacedIsMember := base[h.Replaces]; isMember && !replacedIsMember {
			return nil
		}
	}
	if h.EffectiveStep < newest.step {
		return fmt.Errorf("cluster: roster change at step %d predates epoch at step %d", h.EffectiveStep, newest.step)
	}
	next := make(map[string]struct{}, len(base)+1)
	for id := range base {
		next[id] = struct{}{}
	}
	switch h.Intent {
	case transport.IntentJoin:
		next[h.ID] = struct{}{}
	case transport.IntentLeave:
		delete(next, h.ID)
	case transport.IntentReplace:
		if _, replacedIsMember := base[h.Replaces]; !replacedIsMember {
			return fmt.Errorf("cluster: replace of non-member %q", h.Replaces)
		}
		delete(next, h.Replaces)
		next[h.ID] = struct{}{}
	}
	if h.EffectiveStep == newest.step {
		newest.members = next // same boundary: amend the epoch in place
		return nil
	}
	r.epochs = append(r.epochs, rosterEpoch{step: h.EffectiveStep, members: next})
	return nil
}
