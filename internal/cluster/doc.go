// Package cluster implements the live node runtime of GuanYu: one goroutine
// per parameter server and per worker, communicating through a
// transport.Endpoint (in-process or TCP), executing the three-phase protocol
// of the paper with quorum-based progress — no timing assumptions beyond the
// per-collect safety timeout used to convert bugs into test failures.
//
// Protocol, per step t (Figure 2 of the paper):
//
//  1. each server broadcasts its parameter vector to every worker; each
//     worker aggregates the first q received with the coordinate-wise
//     median and computes a stochastic gradient there;
//  2. each worker broadcasts its gradient to every server; each server
//     aggregates the first q̄ received with Multi-Krum and applies a local
//     SGD update;
//  3. each server broadcasts its updated vector to its peers and aggregates
//     the first q received (its own vector included) with the median —
//     the contraction round.
//
// Byzantine nodes run the same loops but pass every outbound vector through
// an attack.Attack, which may replace it (corruption, equivocation) or
// suppress it (silence).
//
// # Wire framing
//
// With ShardSize set (ServerConfig/WorkerConfig/LiveConfig), every
// broadcast streams as fixed coordinate shards and every quorum collects
// incrementally through a transport.ShardCollector feeding the rule's
// gar.ShardStreamer: each shard aggregates the moment its first-q set
// completes, so peak receive memory is O(q·shard) instead of O(n·d) and
// aggregation overlaps the network receive. Aggregates are bit-identical
// to the whole-vector path at any shard size and parallelism (the
// regression suite asserts it). Rules without a streaming path — and
// deployments mixing sharded and whole-vector nodes — fall back to the
// classic Collector, which reassembles inbound chunk streams per sender,
// so the two framings interoperate within one deployment.
//
// # Actor runtime
//
// Each node is an actor: its loop consumes one bounded per-sender inbound
// mailbox (LiveConfig.Mailbox, applied to every endpoint via SetMailbox
// → transport.Mailbox) and broadcasts through per-link couriers
// (transport.Couriers), one goroutine and one bounded outbox per
// destination, so a slow or dead peer delays only its own link. The
// zero-value configuration keeps the historical unbounded behaviour; when
// a bound is set, drop-oldest is the protocol-safe lossy policy — quorums
// only ever admit a sender's freshest step, so evicting that sender's
// oldest queued frame discards exactly what the collector would have
// rejected as stale, and the per-sender accounting means a flooding
// Byzantine node can never evict honest traffic. When no overflow occurs
// the bound is invisible: the regression suite asserts whole-vector,
// sharded and compressed runs are bit-identical under every policy.
// LiveResult surfaces the full drop taxonomy (DroppedOverflow /
// DroppedClosed / ForgedDropped / DroppedUnnegotiated), ServerConfig.Stats
// exposes the per-node collector counters to tests, and every counter is
// mirrored into an optional internal/metrics.NodeMetrics handle
// (LiveConfig.Metrics / ServerConfig.Metrics) the moment it increments —
// so a /metrics scrape observes live values mid-run instead of a
// snapshot written at node exit, and a cancelled node's totals are exact.
// The flood soak test (flood_test.go) pins the memory bound: peak heap
// under a Byzantine-rate TCP spray stays within the
// nodes × cap × frame-size budget while training converges.
//
// # Invariants
//
//   - Quorum membership and order are decided by arrival time alone; the
//     inbound validator discards malformed payloads (wrong dimension,
//     non-finite values, anonymous senders) so they act as silence, never
//     as poison.
//   - Send errors are dropped: the network model is best-effort and the
//     quorum discipline tolerates missing messages.
//   - Payload immutability from the Send boundary on is the transport's
//     job; node loops mutate their one parameter vector freely between
//     broadcasts.
package cluster
