package cluster

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// FuzzInboundValidator pins down the message-boundary sanitisation every
// honest node installs: payloads of the wrong dimension — including
// zero-length — or containing NaN/±Inf must be REJECTED (treated as
// silence), and everything else accepted; the decision must never panic.
// This boundary is why the aggregation kernels downstream may assume
// shape-consistent inputs (see the internal/gar fuzz targets).
func FuzzInboundValidator(f *testing.F) {
	f.Add(3, []byte{})
	f.Add(0, []byte{})
	f.Add(2, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	nan := make([]byte, 16)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(nan[8:], math.Float64bits(1))
	f.Add(2, nan)

	f.Fuzz(func(t *testing.T, dim int, payload []byte) {
		if dim < 0 || dim > 1024 {
			return
		}
		vec := make(tensor.Vector, len(payload)/8)
		for i := range vec {
			vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8 : i*8+8]))
		}
		m := transport.Message{From: "wrk0", Kind: transport.KindGradient, Step: 1, Vec: vec}
		ok := validator(dim)(m)
		wellFormed := len(vec) == dim && tensor.IsFinite(vec)
		if ok != wellFormed {
			t.Fatalf("validator(%d) = %v for len=%d finite=%v",
				dim, ok, len(vec), tensor.IsFinite(vec))
		}
		// A message with no sender identity must never occupy a quorum slot,
		// whatever its payload looks like.
		m.From = ""
		if validator(dim)(m) {
			t.Fatalf("validator(%d) accepted an anonymous message", dim)
		}
	})
}
