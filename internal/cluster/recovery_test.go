package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/gar"
	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// TestCrashRecoveryOverTCP is the crash-recovery regression: a live TCP
// deployment (6 servers, 6 workers, one sign-flipping Byzantine worker)
// has one honest server killed mid-run — listener and all connections torn
// down — and restarted from its on-disk checkpoint with median rejoin. The
// f=1 server quorum margin carries the cluster through the outage, the
// restarted server catches up to the live step by adopting the
// coordinate-wise median of its peers' contraction-round broadcasts, and
// at the end every honest final (the recovered server's included) must sit
// within contraction distance of the others.
func TestCrashRecoveryOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up 12 TCP listeners and a restart")
	}
	const (
		numServers, fServers = 6, 1
		numWorkers, fWorkers = 6, 1
		steps, batch         = 40, 16
		ckptEvery            = 5
		killAfterStep        = 9 // at least two checkpoints on disk by then
	)
	ckptDir := t.TempDir()
	model, train, test := testProblem(4242)
	theta0 := model.ParamVector()

	ids := make([]string, 0, numServers+numWorkers)
	for i := 0; i < numServers; i++ {
		ids = append(ids, ServerID(i))
	}
	for j := 0; j < numWorkers; j++ {
		ids = append(ids, WorkerID(j))
	}
	nodes := make(map[string]*transport.TCPNode, len(ids))
	for _, id := range ids {
		n, err := transport.ListenTCP(id, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[id] = n
	}
	addrs := make(map[string]string, len(ids))
	for _, id := range ids {
		addrs[id] = nodes[id].Addr()
	}
	for _, n := range nodes {
		for _, id := range ids {
			if id != n.ID() {
				if err := n.AddPeer(id, addrs[id]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	serverIDs, workerIDs := ids[:numServers], ids[numServers:]
	victim := serverIDs[0]
	rng := tensor.NewRNG(77)

	serverCfg := func(i int) ServerConfig {
		peers := make([]string, 0, numServers-1)
		for k, id := range serverIDs {
			if k != i {
				peers = append(peers, id)
			}
		}
		return ServerConfig{
			ID: serverIDs[i], Workers: workerIDs, Peers: peers,
			Init:     theta0,
			GradRule: gar.MultiKrum{F: fWorkers}, ParamRule: gar.Median{},
			QuorumGradients: gar.MinQuorum(fWorkers),
			QuorumParams:    gar.MinQuorum(fServers),
			Steps:           steps,
			LR:              func(int) float64 { return 0.2 },
			Timeout:         time.Minute,
		}
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		finals []tensor.Vector
		errs   []error
	)
	// The survivors: servers 1..5, all honest.
	for i := 1; i < numServers; i++ {
		ep, scfg := nodes[serverIDs[i]], serverCfg(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			theta, err := RunServer(ep, scfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			finals = append(finals, theta)
		}()
	}
	for j := 0; j < numWorkers; j++ {
		wcfg := WorkerConfig{
			ID: workerIDs[j], Servers: serverIDs,
			Model:   model.Clone(),
			Sampler: dataset.NewSampler(train, rng.Split()),
			Batch:   batch, ParamRule: gar.Median{},
			QuorumParams: gar.MinQuorum(fServers),
			Steps:        steps,
			Timeout:      time.Minute,
		}
		if j == numWorkers-1 {
			wcfg.Attack = attack.SignFlip{Scale: 10}
		}
		ep := nodes[workerIDs[j]]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ep, wcfg); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}()
	}

	// The victim runs with periodic checkpointing until we tear its node
	// down mid-run; the endpoint closure surfaces as an error, which is the
	// crash, not a failure.
	vm := &metrics.NodeMetrics{}
	vcfg := serverCfg(0)
	vcfg.Checkpoint = &CheckpointSpec{Dir: ckptDir, Every: ckptEvery}
	vcfg.Metrics = vm
	victimDone := make(chan error, 1)
	go func() {
		_, err := RunServer(nodes[victim], vcfg)
		victimDone <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	for vm.LastStep() < killAfterStep {
		if time.Now().After(deadline) {
			t.Fatalf("victim never reached step %d (at %d)", killAfterStep, vm.LastStep())
		}
		time.Sleep(2 * time.Millisecond)
	}
	nodes[victim].Close() // the crash: listener and every connection die
	if err := <-victimDone; err == nil {
		t.Fatal("victim survived its own crash")
	}

	// Recovery: rebind the same address, restore the newest checkpoint, and
	// rejoin by adopting the median of a live peer-params quorum.
	ckpt, err := LoadCheckpoint(ckptDir, victim)
	if err != nil {
		t.Fatalf("no usable checkpoint after crash: %v", err)
	}
	if ckpt.Step < ckptEvery-1 {
		t.Fatalf("checkpoint at step %d, cadence says ≥ %d", ckpt.Step, ckptEvery-1)
	}
	reborn, err := transport.ListenTCP(victim, addrs[victim], nil)
	if err != nil {
		t.Fatalf("rebind %s: %v", addrs[victim], err)
	}
	defer reborn.Close()
	for _, id := range ids {
		if id != victim {
			if err := reborn.AddPeer(id, addrs[id]); err != nil {
				t.Fatal(err)
			}
		}
	}
	rm := &metrics.NodeMetrics{}
	var rst NodeStats
	rcfg := serverCfg(0)
	rcfg.Checkpoint = &CheckpointSpec{Dir: ckptDir, Every: ckptEvery}
	rcfg.Restore = &ckpt
	rcfg.Rejoin = true
	rcfg.Metrics = rm
	rcfg.Stats = &rst
	theta, err := RunServer(reborn, rcfg)
	if err != nil {
		t.Fatalf("recovered server failed: %v", err)
	}
	mu.Lock()
	finals = append(finals, theta)
	mu.Unlock()

	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("deployment failed around the crash: %v", errs[0])
	}
	if len(finals) != numServers {
		t.Fatalf("expected %d honest finals, got %d", numServers, len(finals))
	}

	// The recovered server's metrics must be exact: it finished the run
	// (last step, done flag) and completed no more steps than remained
	// after its newest checkpoint.
	if last := rm.LastStep(); last != steps-1 {
		t.Fatalf("recovered server's last step %d, want %d", last, steps-1)
	}
	if !rm.Done() {
		t.Fatal("recovered server never marked done")
	}
	if rst.Steps == 0 || rst.Steps > uint64(steps-ckpt.Step-1) {
		t.Fatalf("recovered server completed %d steps, want 1..%d", rst.Steps, steps-ckpt.Step-1)
	}

	// Contraction: every honest final — the recovered one included — within
	// contraction distance of the others, and the deployment converged.
	drift := tensor.MaxPairwiseDistance(finals)
	scale := tensor.Norm2(finals[0])
	if drift > 0.25*(1+scale) {
		t.Fatalf("recovered server outside contraction distance: drift %.4f at scale %.4f", drift, scale)
	}
	final, err := gar.Median{}.Aggregate(finals)
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalFinal(t, model, final, test); acc < 0.85 {
		t.Fatalf("deployment with crash-recovery failed to converge: accuracy %.3f", acc)
	}
}

// TestLiveChurnKillRestart drives LiveConfig.Churn end to end on the
// in-process network: one honest server checkpoints, is killed mid-protocol
// once it reaches the kill step, restarts under the same ID from its newest
// checkpoint with median rejoin, and the deployment finishes with all six
// honest finals inside contraction distance — while the shared metrics
// registry stays healthy across the restart.
func TestLiveChurnKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 12-node live deployment with a restart")
	}
	reg := metrics.NewRegistry()
	model, train, test := testProblem(911)
	cfg := LiveConfig{
		Model: model, Train: train,
		NumServers: 6, FServers: 0,
		NumWorkers: 6, FWorkers: 0,
		QuorumServers: 3, QuorumWorkers: 3,
		Rule: gar.Median{}, ParamRule: gar.Median{},
		Steps: 30, Batch: 16,
		LR:      func(int) float64 { return 0.2 },
		Timeout: time.Minute,
		Seed:    7,
		Metrics: reg,
		// A few milliseconds of link latency keep the in-process run slow
		// enough that the kill watcher reliably fires mid-run rather than
		// after the 30 steps have already flashed past.
		Delay: func(string, string) time.Duration { return 2 * time.Millisecond },
		Churn: &LiveChurn{Server: 0, KillAtStep: 8, CheckpointEvery: 3, Dir: t.TempDir()},
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ServerParams) != cfg.NumServers {
		t.Fatalf("got %d honest finals, want %d (did the churned server finish?)", len(res.ServerParams), cfg.NumServers)
	}
	finals := make([]tensor.Vector, 0, cfg.NumServers)
	for _, v := range res.ServerParams {
		finals = append(finals, v)
	}
	drift := tensor.MaxPairwiseDistance(finals)
	scale := tensor.Norm2(res.Final)
	if drift > 0.25*(1+scale) {
		t.Fatalf("churned server outside contraction distance: drift %.4f at scale %.4f", drift, scale)
	}
	if acc := evalFinal(t, model, res.Final, test); acc < 0.85 {
		t.Fatalf("deployment with live churn failed to converge: accuracy %.3f", acc)
	}
	// The victim's registry handle spans both incarnations: the step counter
	// kept climbing through the restart and the node finished the run.
	vm := reg.Node(ServerID(0))
	if !vm.Done() || vm.LastStep() != cfg.Steps-1 {
		t.Fatalf("churned server's registry handle: done=%v lastStep=%d, want done at %d",
			vm.Done(), vm.LastStep(), cfg.Steps-1)
	}
	if h := reg.CheckHealth(time.Minute); !h.Healthy {
		t.Fatalf("registry unhealthy after churn: %+v", h)
	}
	// And a restart actually happened — the kill fired before the run ended
	// and the second incarnation came back through checkpoint + rejoin.
	if !res.ChurnRestarted {
		t.Fatal("churn victim was never killed and restarted (run outran the kill watcher)")
	}
	// Median rejoin skips the outage: the second incarnation adopts the live
	// frontier instead of replaying from the checkpoint step, so the two
	// incarnations together perform fewer steps than the run has.
	if got := vm.Steps.Load(); got >= uint64(cfg.Steps) {
		t.Fatalf("victim performed %d steps for a %d-step run: rejoin should have skipped the outage", got, cfg.Steps)
	}
}

// TestLiveChurnRejectsBadCycles covers the churn validation surface.
func TestLiveChurnRejectsBadCycles(t *testing.T) {
	model, train, _ := testProblem(912)
	base := func() LiveConfig {
		return LiveConfig{
			Model: model, Train: train,
			NumServers: 6, FServers: 0,
			NumWorkers: 6, FWorkers: 0,
			QuorumServers: 3, QuorumWorkers: 3,
			Rule: gar.Median{}, ParamRule: gar.Median{},
			Steps: 20, Batch: 8,
			Churn: &LiveChurn{Server: 0, KillAtStep: 5, CheckpointEvery: 2, Dir: "ckpt"},
		}
	}
	mutations := map[string]func(*LiveConfig){
		"server out of range": func(c *LiveConfig) { c.Churn.Server = 6 },
		"byzantine victim":    func(c *LiveConfig) { c.ServerAttacks = map[int]attack.Attack{0: attack.Zero{}} },
		"kill at step 0":      func(c *LiveConfig) { c.Churn.KillAtStep = 0 },
		"kill past the run":   func(c *LiveConfig) { c.Churn.KillAtStep = 20 },
		"cadence too slow":    func(c *LiveConfig) { c.Churn.CheckpointEvery = 6 },
		"no directory":        func(c *LiveConfig) { c.Churn.Dir = "" },
		"sharded streaming":   func(c *LiveConfig) { c.ShardSize = 4 },
	}
	for name, mutate := range mutations {
		cfg := base()
		mutate(&cfg)
		if _, err := RunLive(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestPinnedStreamFailover pins down the cluster-level answer to the
// pinned-membership liveness caveat: a streamed Multi-Krum round whose
// pinned member goes silent mid-round must fail over — reset, re-pin from
// the senders still alive, and complete — rather than deadlock or give up
// on the first timeout.
func TestPinnedStreamFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("exercises a real quorum timeout")
	}
	const (
		dim, shard = 4, 2
		q          = 5 // Multi-Krum F=1 needs n ≥ 2F+3
		timeout    = 2 * time.Second
	)
	net := transport.NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("srv")
	eps := make(map[string]transport.Endpoint, 6)
	for _, id := range []string{"w0", "w1", "w2", "w3", "w4", "w5"} {
		eps[id], _ = net.Register(id)
	}
	layout := transport.NewShardLayout(dim, shard)
	col := transport.NewShardCollector(recv, layout)

	vec := func(x float64) tensor.Vector { return tensor.Vector{x, x, x, x} }
	sendShard := func(id string, idx int, v tensor.Vector) {
		lo, hi := layout.Bounds(idx)
		if err := eps[id].Send("srv", transport.Message{
			Kind: transport.KindGradient, Step: 3, Vec: v[lo:hi],
			Shard: transport.ShardMeta{Index: idx, Count: layout.Count(), Offset: lo},
		}); err != nil {
			t.Error(err)
		}
	}
	// Round 1 traffic: w0..w4 complete shard 0 (so the pin is w0..w4), then
	// w0 crashes — its shard 1 never arrives, and the pinned round stalls.
	for i, id := range []string{"w0", "w1", "w2", "w3", "w4"} {
		sendShard(id, 0, vec(float64(i)))
	}
	for i, id := range []string{"w1", "w2", "w3", "w4"} {
		sendShard(id, 1, vec(float64(i+1)))
	}
	// The failover traffic arrives only after the first attempt has timed
	// out: the surviving senders re-send (whole vectors deliver every shard
	// at once) and w5 takes the crashed sender's slot.
	inputs := map[string]tensor.Vector{
		"w1": vec(1), "w2": vec(2), "w3": vec(3), "w4": vec(4), "w5": vec(10),
	}
	go func() {
		time.Sleep(timeout + timeout/2)
		for id, v := range inputs {
			if err := eps[id].Send("srv", transport.Message{Kind: transport.KindGradient, Step: 3, Vec: v}); err != nil {
				t.Error(err)
			}
		}
	}()

	rule := gar.MultiKrum{F: 1}
	start := time.Now()
	senders, _, out, err := collectStreamed(col, transport.KindGradient, 3, q, nil, "", rule, timeout)
	if err != nil {
		t.Fatalf("pinned round did not fail over: %v (after %s)", err, time.Since(start))
	}
	if len(senders) != q {
		t.Fatalf("failover pinned %v, want %d members", senders, q)
	}
	for _, id := range senders {
		if id == "w0" {
			t.Fatalf("crashed sender re-pinned after failover: %v", senders)
		}
	}
	// The failover aggregate must be exactly Multi-Krum over the retry's
	// pinned inputs, in pinned order.
	ordered := make([]tensor.Vector, len(senders))
	for i, id := range senders {
		ordered[i] = inputs[id]
	}
	want, err := rule.Aggregate(ordered)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("failover aggregate %v, want %v (pin %v)", out, want, senders)
		}
	}
}
