package cluster

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// TestCheckpointRoundTrip: encode→decode is the identity on every field,
// bit-for-bit on the floats — including NaN payload bits, ±Inf and
// negative zero, which a text codec would flatten.
func TestCheckpointRoundTrip(t *testing.T) {
	weirdNaN := math.Float64frombits(0x7ff8_dead_beef_0001) // non-default NaN payload
	cases := []Checkpoint{
		{ID: "ps0", Step: 0, Theta: tensor.Vector{1, 2, 3}, Horizon: 64},
		{ID: "ps1", Step: 12345, Theta: tensor.Vector{0.5, -0.25}, Velocity: tensor.Vector{1e-9, -1e300}},
		{ID: "s", Step: 7, Theta: tensor.Vector{weirdNaN, math.Inf(1), math.Inf(-1), math.Copysign(0, -1)}},
	}
	for _, want := range cases {
		data, err := EncodeCheckpoint(want)
		if err != nil {
			t.Fatalf("%s: %v", want.ID, err)
		}
		got, err := DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("%s: %v", want.ID, err)
		}
		if got.ID != want.ID || got.Step != want.Step || got.Horizon != want.Horizon {
			t.Fatalf("header mismatch: %+v vs %+v", got, want)
		}
		sameBits := func(a, b tensor.Vector) bool {
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					return false
				}
			}
			return true
		}
		if !sameBits(got.Theta, want.Theta) {
			t.Fatalf("%s: θ not bit-exact: %v vs %v", want.ID, got.Theta, want.Theta)
		}
		if !sameBits(got.Velocity, want.Velocity) {
			t.Fatalf("%s: velocity not bit-exact: %v vs %v", want.ID, got.Velocity, want.Velocity)
		}
	}
}

// TestCheckpointRejections: every malformed input class is rejected, and
// the size check runs before any dimension-sized allocation.
func TestCheckpointRejections(t *testing.T) {
	good, err := EncodeCheckpoint(Checkpoint{ID: "ps0", Step: 3, Theta: tensor.Vector{1, 2}, Horizon: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Truncation at every length.
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeCheckpoint(good[:cut]); err == nil {
			t.Fatalf("checkpoint truncated at %d bytes accepted", cut)
		}
	}
	// One trailing byte too many.
	if _, err := DecodeCheckpoint(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("oversized checkpoint accepted")
	}
	// Wrong magic / wrong version / unknown flags.
	for _, mut := range []struct {
		name string
		off  int
		b    byte
	}{
		{"magic", 0, 'X'},
		{"version", 4, 99},
		{"flags", 6, 0x80},
	} {
		bad := append([]byte{}, good...)
		bad[mut.off] = mut.b
		if _, err := DecodeCheckpoint(bad); err == nil {
			t.Fatalf("checkpoint with bad %s accepted", mut.name)
		}
	}
	// Flipped payload bit: the checksum must catch it.
	bad := append([]byte{}, good...)
	bad[len(bad)-6] ^= 0x01
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Fatal("corrupted checkpoint passed the checksum")
	}
	// A header claiming a huge dimension on a tiny file must be rejected
	// by the exact-size check, never allocated.
	tiny := append([]byte{}, good[:8+3+8]...)   // through the step field
	tiny = append(tiny, 0, 0, 0, 0)             // horizon
	tiny = append(tiny, 0xff, 0xff, 0xff, 0x03) // dim claiming MaxVecLen
	if _, err := DecodeCheckpoint(tiny); err == nil {
		t.Fatal("huge-dimension claim on a tiny file accepted")
	}
	// Encoder-side rejections.
	for _, c := range []Checkpoint{
		{ID: "", Step: 0, Theta: tensor.Vector{1}},
		{ID: "x", Step: -1, Theta: tensor.Vector{1}},
		{ID: "x", Step: 0, Theta: nil},
		{ID: "x", Step: 0, Theta: tensor.Vector{1}, Horizon: -1},
		{ID: "x", Step: 0, Theta: tensor.Vector{1, 2}, Velocity: tensor.Vector{1}},
	} {
		if _, err := EncodeCheckpoint(c); err == nil {
			t.Fatalf("EncodeCheckpoint accepted %+v", c)
		}
	}
}

// TestCheckpointPersistence: WriteFile is atomic (no temp residue, old
// file intact until the new one is complete) and LoadCheckpoint refuses a
// foreign node's state.
func TestCheckpointPersistence(t *testing.T) {
	dir := t.TempDir()
	c1 := Checkpoint{ID: "ps0", Step: 4, Theta: tensor.Vector{1, 2, 3}}
	if err := c1.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(dir, "ps0")
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 4 {
		t.Fatalf("loaded step %d, want 4", got.Step)
	}
	// Overwrite with newer state; the file is replaced, not appended.
	c2 := Checkpoint{ID: "ps0", Step: 9, Theta: tensor.Vector{7, 8, 9}}
	if err := c2.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	got, err = LoadCheckpoint(dir, "ps0")
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 9 || got.Theta[0] != 7 {
		t.Fatalf("overwrite not visible: %+v", got)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	// A different node must not adopt this state.
	if _, err := LoadCheckpoint(dir, "ps1"); err == nil {
		t.Fatal("foreign checkpoint adopted")
	}
	// A torn write (partial temp promoted by hand) is caught on load.
	data, _ := os.ReadFile(CheckpointPath(dir, "ps0"))
	if err := os.WriteFile(CheckpointPath(dir, "ps0"), data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(dir, "ps0"); err == nil {
		t.Fatal("torn checkpoint loaded")
	}
}

// TestRosterEpochs: membership is evaluated against the epoch in force at
// each step, changes land on boundaries, history is append-only.
func TestRosterEpochs(t *testing.T) {
	r := NewRoster("ps0", "ps1", "ps2")
	// ps3 joins at step 10; ps0 leaves at step 20; ps4 replaces ps1 at 30.
	mustApply := func(h transport.Hello) {
		t.Helper()
		if err := r.Apply(h); err != nil {
			t.Fatal(err)
		}
	}
	mustApply(transport.Hello{ID: "ps3", Intent: transport.IntentJoin, EffectiveStep: 10})
	mustApply(transport.Hello{ID: "ps0", Intent: transport.IntentLeave, EffectiveStep: 20})
	mustApply(transport.Hello{ID: "ps4", Intent: transport.IntentReplace, Replaces: "ps1", EffectiveStep: 30})

	checks := []struct {
		step int
		id   string
		want bool
	}{
		{0, "ps0", true}, {0, "ps3", false},
		{9, "ps3", false}, {10, "ps3", true},
		{19, "ps0", true}, {20, "ps0", false},
		{29, "ps1", true}, {30, "ps1", false}, {30, "ps4", true},
		{1000, "ps2", true},
	}
	for _, c := range checks {
		if got := r.Allows(c.step, c.id); got != c.want {
			t.Fatalf("Allows(%d, %s) = %v, want %v", c.step, c.id, got, c.want)
		}
	}
	if got := r.Members(30); fmt.Sprint(got) != "[ps2 ps3 ps4]" {
		t.Fatalf("Members(30) = %v", got)
	}

	// Idempotency: a rejoining node re-sends its announcement on redial.
	mustApply(transport.Hello{ID: "ps3", Intent: transport.IntentJoin, EffectiveStep: 10})
	if got := len(r.Members(1000)); got != 3 {
		t.Fatalf("re-applied join changed the roster: %d members", got)
	}

	// Retroactive changes are refused.
	if err := r.Apply(transport.Hello{ID: "ps9", Intent: transport.IntentJoin, EffectiveStep: 5}); err == nil {
		t.Fatal("retroactive roster change accepted")
	}
	// Replacing a non-member is refused.
	if err := r.Apply(transport.Hello{ID: "ps9", Intent: transport.IntentReplace, Replaces: "ghost", EffectiveStep: 40}); err == nil {
		t.Fatal("replace of non-member accepted")
	}
}

// TestRosterAdmission: the handshake-time policy derived from the latest
// epoch.
func TestRosterAdmission(t *testing.T) {
	r := NewRoster("ps0", "ps1")
	cases := []struct {
		h    transport.Hello
		want bool
	}{
		{transport.Hello{ID: "ps0", Intent: transport.IntentMember}, true},
		{transport.Hello{ID: "ghost", Intent: transport.IntentMember}, false},
		{transport.Hello{ID: "ps2", Intent: transport.IntentJoin, EffectiveStep: 5}, true},
		{transport.Hello{ID: "ps0", Intent: transport.IntentJoin, EffectiveStep: 5}, false},
		{transport.Hello{ID: "ps1", Intent: transport.IntentLeave, EffectiveStep: 5}, true},
		{transport.Hello{ID: "ghost", Intent: transport.IntentLeave, EffectiveStep: 5}, false},
		{transport.Hello{ID: "ps9", Intent: transport.IntentReplace, Replaces: "ps0", EffectiveStep: 5}, true},
		{transport.Hello{ID: "ps1", Intent: transport.IntentReplace, Replaces: "ps0", EffectiveStep: 5}, false},
		{transport.Hello{ID: "ps9", Intent: transport.IntentReplace, Replaces: "ghost", EffectiveStep: 5}, false},
	}
	for _, c := range cases {
		if got := r.AdmitHello(c.h); got != c.want {
			t.Fatalf("AdmitHello(%+v) = %v, want %v", c.h, got, c.want)
		}
	}
}

// TestRejoinMedian: the restarted server adopts the coordinate-wise
// median of a live peer quorum and learns the cluster's current step.
func TestRejoinMedian(t *testing.T) {
	net := transport.NewChanNetwork(nil)
	defer net.Close()
	recv, _ := net.Register("ps0")
	peers := make([]transport.Endpoint, 3)
	for i := range peers {
		peers[i], _ = net.Register(fmt.Sprintf("ps%d", i+1))
	}
	// The cluster is at step 40 — ahead of ps0's checkpoint at step 12 —
	// with one outlier peer (Byzantine or just divergent).
	vecs := []tensor.Vector{{1, 10}, {2, 20}, {1000, -1000}}
	for i, p := range peers {
		if err := p.Send("ps0", transport.Message{Kind: transport.KindPeerParams, Step: 40, Vec: vecs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	col := transport.NewCollector(recv)
	theta, step, err := RejoinMedian(col, 13, 3, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if step != 40 {
		t.Fatalf("rejoined at step %d, want 40", step)
	}
	if theta[0] != 2 || theta[1] != 10 {
		t.Fatalf("median = %v, want [2 10]", theta)
	}

	// Timeout without a quorum wraps the sentinel the server loop's
	// fallback branch matches on.
	_, _, err = RejoinMedian(col, 41, 3, 2, 50*time.Millisecond)
	if err == nil {
		t.Fatal("rejoin without live traffic succeeded")
	}
}

// FuzzCheckpointDecode: the decoder must never panic, never allocate past
// its bounds, and on success the codec must be canonical — re-encoding a
// decoded checkpoint reproduces the input byte-for-byte.
func FuzzCheckpointDecode(f *testing.F) {
	seed := func(c Checkpoint) []byte {
		data, err := EncodeCheckpoint(c)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(seed(Checkpoint{ID: "ps0", Step: 3, Theta: tensor.Vector{1, 2}, Horizon: 64}))
	f.Add(seed(Checkpoint{ID: "ps1", Step: 0, Theta: tensor.Vector{math.NaN(), math.Inf(1)}, Velocity: tensor.Vector{0, -0.5}}))
	f.Add([]byte(checkpointMagic))
	f.Add([]byte("GYCKxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		re, err := EncodeCheckpoint(c)
		if err != nil {
			t.Fatalf("decoded checkpoint does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("codec not canonical:\n in  %x\n out %x", data, re)
		}
	})
}
